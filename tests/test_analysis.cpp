// Tests for PCA and t-SNE (the Fig. 2a embedding machinery).

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/pca.hpp"
#include "analysis/tsne.hpp"
#include "common/rng.hpp"
#include "support/test_support.hpp"

namespace nitho {
namespace {

TEST(Pca, RecoversDominantDirection) {
  // Anisotropic Gaussian stretched along (1, 1)/sqrt(2).
  Rng rng(1);
  const int n = 300;
  Grid<double> data(n, 2);
  for (int i = 0; i < n; ++i) {
    const double major = rng.normal(0.0, 5.0);
    const double minor = rng.normal(0.0, 0.5);
    data(i, 0) = (major + minor) / std::sqrt(2.0) + 3.0;
    data(i, 1) = (major - minor) / std::sqrt(2.0) - 1.0;
  }
  const PcaResult r = pca(data, 2);
  EXPECT_NEAR(std::abs(r.components(0, 0)), 1.0 / std::sqrt(2.0), 0.05);
  EXPECT_NEAR(std::abs(r.components(0, 1)), 1.0 / std::sqrt(2.0), 0.05);
  EXPECT_GT(r.variances[0], 5.0 * r.variances[1]);
  EXPECT_NEAR(r.mean[0], 3.0, 0.5);
  EXPECT_NEAR(r.mean[1], -1.0, 0.5);
}

TEST(Pca, ComponentsOrthonormal) {
  Rng rng(2);
  const Grid<double> data = test::random_grid(50, 8, rng);
  const PcaResult r = pca(data, 4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      double dot = 0.0;
      for (int c = 0; c < 8; ++c) dot += r.components(i, c) * r.components(j, c);
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-6);
    }
  }
}

TEST(Pca, ProjectionShapeAndCentering) {
  Rng rng(3);
  Grid<double> data(40, 6);
  for (auto& v : data) v = rng.normal(2.0, 1.0);
  const PcaResult r = pca(data, 3);
  EXPECT_EQ(r.projected.rows(), 40);
  EXPECT_EQ(r.projected.cols(), 3);
  // Scores are centered.
  for (int c = 0; c < 3; ++c) {
    double m = 0.0;
    for (int i = 0; i < 40; ++i) m += r.projected(i, c);
    EXPECT_NEAR(m / 40.0, 0.0, 1e-9);
  }
}

TEST(Pca, RejectsBadArguments) {
  Grid<double> tiny(1, 3);
  EXPECT_THROW(pca(tiny, 1), check_error);
  Grid<double> ok(10, 3);
  EXPECT_THROW(pca(ok, 5), check_error);
}

TEST(Tsne, SeparatesWellSeparatedClusters) {
  Rng rng(4);
  const int per = 30;
  Grid<double> data(2 * per, 5);
  for (int i = 0; i < per; ++i)
    for (int c = 0; c < 5; ++c) data(i, c) = rng.normal(0.0, 0.3);
  for (int i = per; i < 2 * per; ++i)
    for (int c = 0; c < 5; ++c) data(i, c) = rng.normal(8.0, 0.3);

  TsneConfig cfg;
  cfg.perplexity = 10.0;
  cfg.iters = 300;
  const Grid<double> y = tsne(data, cfg);
  ASSERT_EQ(y.rows(), 2 * per);
  ASSERT_EQ(y.cols(), 2);

  // Centroid distance must dominate intra-cluster spread.
  double c0[2] = {0, 0}, c1[2] = {0, 0};
  for (int i = 0; i < per; ++i) {
    c0[0] += y(i, 0) / per;
    c0[1] += y(i, 1) / per;
    c1[0] += y(per + i, 0) / per;
    c1[1] += y(per + i, 1) / per;
  }
  const double between = std::hypot(c0[0] - c1[0], c0[1] - c1[1]);
  double within = 0.0;
  for (int i = 0; i < per; ++i) {
    within += std::hypot(y(i, 0) - c0[0], y(i, 1) - c0[1]);
    within += std::hypot(y(per + i, 0) - c1[0], y(per + i, 1) - c1[1]);
  }
  within /= (2.0 * per);
  EXPECT_GT(between, 3.0 * within);
}

TEST(Tsne, DeterministicForSeed) {
  Rng rng(5);
  const Grid<double> data = test::random_grid(20, 3, rng);
  TsneConfig cfg;
  cfg.perplexity = 5.0;
  cfg.iters = 50;
  const Grid<double> a = tsne(data, cfg);
  const Grid<double> b = tsne(data, cfg);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Tsne, RejectsBadPerplexity) {
  Grid<double> data(10, 2, 0.0);
  TsneConfig cfg;
  cfg.perplexity = 50.0;  // >= n
  EXPECT_THROW(tsne(data, cfg), check_error);
}

}  // namespace
}  // namespace nitho
