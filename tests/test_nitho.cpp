// Tests for the Nitho core: positional encodings, CMLP, model, the
// Algorithm-1 trainer and the fast-lithography engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <functional>
#include <limits>
#include <numeric>
#include <sstream>

#include "fft/spectral.hpp"
#include "layout/raster.hpp"
#include "litho/golden.hpp"
#include "metrics/metrics.hpp"
#include "nitho/cmlp.hpp"
#include "nitho/encoding.hpp"
#include "nitho/fast_litho.hpp"
#include "nitho/model.hpp"
#include "nitho/trainer.hpp"
#include "bench/train_ref.hpp"
#include "nn/ops.hpp"
#include "nn/ops_fft.hpp"
#include "nn/optimizer.hpp"
#include "support/test_support.hpp"

namespace nitho {
namespace {

LithoConfig small_config() {
  LithoConfig cfg;
  cfg.tile_nm = 512;
  cfg.raster_px = 512;
  cfg.analysis_px = 64;
  cfg.sim_px = 32;
  cfg.spectrum_crop = 31;
  cfg.max_rank = 200;
  return cfg;
}

const GoldenEngine& engine() {
  static const GoldenEngine e{small_config()};
  return e;
}

NithoConfig small_model_config() {
  NithoConfig cfg;
  cfg.rank = 12;
  cfg.encoding.features = 64;
  cfg.hidden = 32;
  cfg.blocks = 2;
  return cfg;
}

TEST(Encoding, ShapesAndDeterminism) {
  EncodingConfig cfg;
  cfg.features = 32;
  const nn::Tensor a = encode_coordinates(5, 7, cfg);
  ASSERT_EQ(a.ndim(), 3);
  EXPECT_EQ(a.dim(0), 35);
  EXPECT_EQ(a.dim(1), 32);
  EXPECT_EQ(a.dim(2), 2);
  const nn::Tensor b = encode_coordinates(5, 7, cfg);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Encoding, RffIsOnePlusJComplexified) {
  EncodingConfig cfg;
  cfg.kind = EncodingKind::GaussianRff;
  cfg.features = 16;
  const nn::Tensor t = encode_coordinates(4, 4, cfg);
  // (1+j) complexification: re == im for every feature (Eq. 15).
  for (std::int64_t i = 0; i < t.numel(); i += 2) EXPECT_EQ(t[i], t[i + 1]);
  // cos features bounded.
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_LE(std::abs(t[i]), 1.0f);
  }
}

TEST(Encoding, NerfUsesPowersOfTwo) {
  EncodingConfig cfg;
  cfg.kind = EncodingKind::NerfPe;
  cfg.features = 16;  // L = 4 levels
  const nn::Tensor t = encode_coordinates(1, 3, cfg);
  // Point (x=1, y=0.5): first sin feature is sin(pi * x) = ~0.
  // Coordinates row-major: index 2 is (r=0,c=2) -> x=1.
  const int f = 16;
  EXPECT_NEAR(t[(2 * f + 0) * 2], std::sin(kPi * 1.0), 1e-6);
  EXPECT_NEAR(t[(2 * f + 1) * 2], std::cos(kPi * 1.0), 1e-6);
}

TEST(Encoding, DistinctKindsDiffer) {
  EncodingConfig a, b;
  a.features = b.features = 32;
  a.kind = EncodingKind::GaussianRff;
  b.kind = EncodingKind::None;
  const nn::Tensor ta = encode_coordinates(4, 4, a);
  const nn::Tensor tb = encode_coordinates(4, 4, b);
  double diff = 0.0;
  for (std::int64_t i = 0; i < ta.numel(); ++i) diff += std::abs(ta[i] - tb[i]);
  EXPECT_GT(diff, 1.0);
}

TEST(Encoding, Names) {
  EXPECT_EQ(encoding_name(EncodingKind::None), "None");
  EXPECT_EQ(encoding_name(EncodingKind::NerfPe), "NeRF-PE");
  EXPECT_EQ(encoding_name(EncodingKind::GaussianRff), "Gaussian-RFF");
}

TEST(Encoding, RejectsBadFeatureCounts) {
  EncodingConfig cfg;
  cfg.features = 7;
  EXPECT_THROW(encode_coordinates(3, 3, cfg), check_error);
  cfg.kind = EncodingKind::NerfPe;
  cfg.features = 10;  // not divisible by 4
  EXPECT_THROW(encode_coordinates(3, 3, cfg), check_error);
}

TEST(Cmlp, OutputShapeAndParameterCount) {
  CmlpConfig cfg;
  cfg.in_features = 8;
  cfg.hidden = 6;
  cfg.blocks = 2;
  cfg.out = 3;
  Cmlp mlp(cfg);
  // Complex params: (8*6+6) + 2*(6*6+6) + (6*3+3) = 54 + 84 + 21 = 159.
  EXPECT_EQ(mlp.parameter_count(), 2 * 159);
  nn::Var in = nn::make_leaf(nn::Tensor({5, 8, 2}, 0.1f), false);
  nn::Var out = mlp.forward(in);
  ASSERT_EQ(out->value.ndim(), 3);
  EXPECT_EQ(out->value.dim(0), 5);
  EXPECT_EQ(out->value.dim(1), 3);
  EXPECT_EQ(out->value.dim(2), 2);
}

// Double-precision replica of Cmlp::forward followed by L = sum |out|^2,
// operating on flattened copies of the network parameters in parameters()
// order (all weights, then all biases).  Used to finite-difference the full
// complex MLP against float backprop at 1e-5 — re and im slots alike.
double cmlp_ref_loss(const CmlpConfig& cfg,
                     const std::vector<std::vector<double>>& params,
                     const std::vector<double>& input, int P,
                     double* min_preact = nullptr) {
  const int layers = cfg.blocks + 2;
  std::vector<int> fan_in{cfg.in_features}, fan_out{cfg.hidden};
  for (int b = 0; b < cfg.blocks; ++b) {
    fan_in.push_back(cfg.hidden);
    fan_out.push_back(cfg.hidden);
  }
  fan_in.push_back(cfg.hidden);
  fan_out.push_back(cfg.out);

  double min_abs = std::numeric_limits<double>::infinity();
  std::vector<double> h = input;  // [P, fan_in[0], 2]
  for (int l = 0; l < layers; ++l) {
    const std::vector<double>& w = params[static_cast<std::size_t>(l)];
    const std::vector<double>& b =
        params[static_cast<std::size_t>(layers + l)];
    const int in = fan_in[l], out = fan_out[l];
    std::vector<double> next(static_cast<std::size_t>(P) * out * 2);
    for (int p = 0; p < P; ++p) {
      for (int o = 0; o < out; ++o) {
        double re = b[2 * o], im = b[2 * o + 1];
        for (int i = 0; i < in; ++i) {
          const double xr = h[(p * in + i) * 2], xi = h[(p * in + i) * 2 + 1];
          const double wr = w[(i * out + o) * 2], wi = w[(i * out + o) * 2 + 1];
          re += xr * wr - xi * wi;
          im += xr * wi + xi * wr;
        }
        const bool activated = l >= 1 && l <= cfg.blocks;  // CReLU blocks
        if (activated) {
          min_abs = std::min({min_abs, std::abs(re), std::abs(im)});
          re = re > 0.0 ? re : 0.0;
          im = im > 0.0 ? im : 0.0;
        }
        next[(p * out + o) * 2] = re;
        next[(p * out + o) * 2 + 1] = im;
      }
    }
    h = std::move(next);
  }
  if (min_preact) *min_preact = min_abs;
  double loss = 0.0;
  for (double v : h) loss += v * v;
  return loss;
}

TEST(Cmlp, FiniteDifferenceGradientsMatchBackprop) {
  CmlpConfig cfg;
  cfg.in_features = 2;
  cfg.hidden = 3;
  cfg.blocks = 1;
  cfg.out = 2;
  cfg.seed = 77;
  const Cmlp mlp(cfg);
  const int P = 4;

  Rng rng = test::make_rng(9);
  nn::Tensor in_t({P, cfg.in_features, 2});
  for (std::int64_t i = 0; i < in_t.numel(); ++i) {
    in_t[i] = static_cast<float>(rng.normal());
  }
  nn::Var input = nn::make_leaf(in_t, true);

  nn::Var loss = nn::sum(nn::square(mlp.forward(input)));
  nn::backward(loss);

  const std::vector<nn::Var> params = mlp.parameters();
  std::vector<std::vector<double>> pv(params.size());
  for (std::size_t li = 0; li < params.size(); ++li) {
    const nn::Tensor& t = params[li]->value;
    for (std::int64_t i = 0; i < t.numel(); ++i) {
      pv[li].push_back(static_cast<double>(t[i]));
    }
  }
  std::vector<double> iv;
  for (std::int64_t i = 0; i < in_t.numel(); ++i) {
    iv.push_back(static_cast<double>(in_t[i]));
  }

  // Finite differences are only meaningful away from the CReLU kink.
  double min_preact = 0.0;
  cmlp_ref_loss(cfg, pv, iv, P, &min_preact);
  ASSERT_GT(min_preact, 1e-3);

  const double eps = 1e-6;
  const auto check_leaf = [&](const nn::Tensor& grad, std::size_t n,
                              const std::function<double(std::size_t, double)>&
                                  eval_perturbed,
                              const char* what) {
    ASSERT_EQ(grad.numel(), static_cast<std::int64_t>(n)) << what;
    for (std::size_t i = 0; i < n; ++i) {
      const double fd =
          (eval_perturbed(i, eps) - eval_perturbed(i, -eps)) / (2.0 * eps);
      const double analytic = static_cast<double>(grad[static_cast<std::int64_t>(i)]);
      const char* slot = (i % 2 == 0) ? "re" : "im";
      EXPECT_NEAR(analytic, fd,
                  1e-5 * (1.0 + std::abs(analytic) + std::abs(fd)))
          << what << " elem " << i << " (" << slot << " slot)";
    }
  };

  for (std::size_t li = 0; li < params.size(); ++li) {
    check_leaf(
        params[li]->grad, pv[li].size(),
        [&](std::size_t i, double delta) {
          std::vector<std::vector<double>> p = pv;
          p[li][i] += delta;
          return cmlp_ref_loss(cfg, p, iv, P);
        },
        li < params.size() / 2 ? "weight" : "bias");
  }
  check_leaf(
      input->grad, iv.size(),
      [&](std::size_t i, double delta) {
        std::vector<double> x = iv;
        x[i] += delta;
        return cmlp_ref_loss(cfg, pv, x, P);
      },
      "input");
}

TEST(Cmlp, LearnsComplexRegression) {
  CmlpConfig cfg;
  cfg.in_features = 4;
  cfg.hidden = 16;
  cfg.blocks = 1;
  cfg.out = 2;
  Cmlp mlp(cfg);
  Rng rng(3);
  nn::Tensor input({12, 4, 2});
  input.randn(rng, 1.0f);
  nn::Tensor target({12, 2, 2});
  target.randn(rng, 1.0f);
  nn::Adam opt(mlp.parameters(), 1e-2f);
  double first = 0.0, last = 0.0;
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    nn::Var loss = nn::mse_loss(mlp.forward(nn::make_leaf(input, false)), target);
    nn::backward(loss);
    opt.step();
    if (i == 0) first = loss->value[0];
    last = loss->value[0];
  }
  EXPECT_LT(last, 0.1 * first);
}

TEST(Model, DerivesKernelDimFromPhysics) {
  NithoModel m(small_model_config(), 512, 193.0, 1.35);
  EXPECT_EQ(m.kernel_dim(), 15);
  EXPECT_EQ(m.rank(), 12);
  const nn::Var k = m.predict_kernels();
  ASSERT_EQ(k->value.ndim(), 4);
  EXPECT_EQ(k->value.dim(0), 12);
  EXPECT_EQ(k->value.dim(1), 15);
  EXPECT_EQ(k->value.dim(2), 15);
  EXPECT_EQ(k->value.dim(3), 2);
}

TEST(Model, ExplicitKernelDimOverrides) {
  NithoConfig cfg = small_model_config();
  cfg.kernel_dim = 9;
  NithoModel m(cfg, 512, 193.0, 1.35);
  EXPECT_EQ(m.kernel_dim(), 9);
}

TEST(Model, ExportMatchesPrediction) {
  NithoModel m(small_model_config(), 512, 193.0, 1.35);
  const nn::Var k = m.predict_kernels();
  const std::vector<Grid<cd>> exported = m.export_kernels();
  ASSERT_EQ(exported.size(), 12u);
  const std::int64_t plane = 15 * 15;
  for (int i = 0; i < 3; ++i) {
    for (std::int64_t p = 0; p < plane; ++p) {
      EXPECT_FLOAT_EQ(static_cast<float>(exported[i][p].real()),
                      k->value[(i * plane + p) * 2]);
      EXPECT_FLOAT_EQ(static_cast<float>(exported[i][p].imag()),
                      k->value[(i * plane + p) * 2 + 1]);
    }
  }
}

TEST(Model, SaveLoadRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "nitho_model_test";
  std::filesystem::create_directories(dir);
  NithoModel a(small_model_config(), 512, 193.0, 1.35);
  a.save((dir / "m.bin").string());
  NithoConfig cfg = small_model_config();
  cfg.seed = 777;  // different init
  NithoModel b(cfg, 512, 193.0, 1.35);
  b.load((dir / "m.bin").string());
  const auto ka = a.export_kernels(), kb = b.export_kernels();
  for (std::size_t i = 0; i < ka.size(); ++i) EXPECT_EQ(ka[i], kb[i]);
  std::filesystem::remove_all(dir);
}

class TrainedNitho : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dataset_ = new Dataset(engine().make_dataset(DatasetKind::B2v, 10, 1234));
    model_ = new NithoModel(small_model_config(), 512, 193.0, 1.35);
    std::vector<const Sample*> train;
    for (int i = 0; i < 8; ++i) train.push_back(&dataset_->samples[i]);
    NithoTrainConfig cfg;
    cfg.epochs = 30;
    cfg.batch = 4;
    cfg.train_px = 32;
    stats_ = train_nitho(*model_, train, cfg);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete dataset_;
    model_ = nullptr;
    dataset_ = nullptr;
  }

  static Dataset* dataset_;
  static NithoModel* model_;
  static TrainStats stats_;
};

Dataset* TrainedNitho::dataset_ = nullptr;
NithoModel* TrainedNitho::model_ = nullptr;
TrainStats TrainedNitho::stats_;

TEST_F(TrainedNitho, LossDecreasesByOrdersOfMagnitude) {
  ASSERT_FALSE(stats_.epoch_losses.empty());
  EXPECT_LT(stats_.final_loss, 0.05 * stats_.epoch_losses.front());
  EXPECT_EQ(stats_.steps, 30 * 2);
}

TEST_F(TrainedNitho, GeneralizesToHeldOutMasks) {
  // Samples 8..9 were never trained on.
  for (int i = 8; i < 10; ++i) {
    const Sample& s = dataset_->samples[static_cast<std::size_t>(i)];
    const Grid<double> pred = predict_aerial(*model_, s, 64);
    EXPECT_GT(psnr(s.aerial, pred), 22.0) << "held-out sample " << i;
  }
}

TEST_F(TrainedNitho, BeatsUntrainedModel) {
  NithoModel fresh(small_model_config(), 512, 193.0, 1.35);
  const Sample& s = dataset_->samples[9];
  EXPECT_GT(psnr(s.aerial, predict_aerial(*model_, s, 64)),
            psnr(s.aerial, predict_aerial(fresh, s, 64)) + 5.0);
}

TEST_F(TrainedNitho, FastLithoMatchesModelPrediction) {
  const FastLitho fast = FastLitho::from_model(*model_);
  EXPECT_EQ(fast.kernel_dim(), 15);
  EXPECT_EQ(fast.rank(), 12);
  const Sample& s = dataset_->samples[5];
  const Grid<cd> crop = center_crop(s.spectrum, 15, 15);
  const Grid<double> a = fast.aerial_from_spectrum(crop, 64);
  const Grid<double> b = predict_aerial(*model_, s, 64);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-9);
}

TEST_F(TrainedNitho, FastLithoFullPipelineFromMask) {
  Rng rng(9);
  const Layout l = make_layout(DatasetKind::B2v, 512, rng);
  const Grid<double> mask = rasterize(l, 1);
  const Sample s = engine().make_sample(mask);
  const FastLitho fast = FastLitho::from_model(*model_);
  const Grid<double> aerial = fast.aerial_from_mask(mask, 64);
  EXPECT_GT(psnr(s.aerial, aerial), 22.0);
  const Grid<double> resist = fast.resist_from_mask(mask, 64);
  for (std::size_t i = 0; i < resist.size(); ++i) {
    EXPECT_TRUE(resist[i] == 0.0 || resist[i] == 1.0);
  }
}

TEST_F(TrainedNitho, KernelPersistenceRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "nitho_fast_test";
  std::filesystem::create_directories(dir);
  const FastLitho fast = FastLitho::from_model(*model_);
  fast.save((dir / "kernels.bin").string());
  const FastLitho back = FastLitho::load((dir / "kernels.bin").string());
  EXPECT_EQ(back.rank(), fast.rank());
  const Sample& s = dataset_->samples[0];
  const Grid<cd> crop = center_crop(s.spectrum, 15, 15);
  EXPECT_EQ(back.aerial_from_spectrum(crop, 32),
            fast.aerial_from_spectrum(crop, 32));
  std::filesystem::remove_all(dir);
}

TEST(Trainer, DeterministicAcrossRuns) {
  const Dataset ds = engine().make_dataset(DatasetKind::B1, 4, 55);
  auto run = [&]() {
    NithoConfig mc = small_model_config();
    NithoModel m(mc, 512, 193.0, 1.35);
    NithoTrainConfig cfg;
    cfg.epochs = 4;
    cfg.batch = 2;
    cfg.train_px = 32;
    return train_nitho(m, sample_ptrs(ds), cfg).final_loss;
  };
  EXPECT_EQ(run(), run());
}

TEST(Trainer, SeedDeterminesFullLossTrajectory) {
  const Dataset ds = engine().make_dataset(DatasetKind::B2v, 5, 31);
  auto run = [&]() {
    NithoModel m(small_model_config(), 512, 193.0, 1.35);
    NithoTrainConfig cfg;
    cfg.epochs = 3;
    cfg.batch = 2;
    cfg.train_px = 32;
    cfg.seed = 4242;
    return train_nitho(m, sample_ptrs(ds), cfg).epoch_losses;
  };
  const std::vector<double> a = run();
  const std::vector<double> b = run();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(a, b);
}

// The verbatim reimplementation of the pre-batching per-mask training loop
// (one socs_field/abs2_sum0/mse_loss chain per mask per step, reduced
// through add()) lives in bench/train_ref.hpp, shared with
// bench_train/bench_micro so the pin and the throughput baseline always
// measure the same legacy arithmetic.  The tensor-batched trainer must
// reproduce its loss trajectory and trained weights bit for bit at a fixed
// seed — the repo-wide invariant.
void expect_bit_identical_training(const Dataset& ds,
                                   const NithoTrainConfig& cfg) {
  NithoModel legacy(small_model_config(), 512, 193.0, 1.35);
  NithoModel batched(small_model_config(), 512, 193.0, 1.35);
  const TrainingSet set = prepare_training_set(
      sample_ptrs(ds), legacy.kernel_dim(), cfg.train_px);
  const TrainStats sl = bench::legacy_train_nitho(legacy, set, cfg);
  const TrainStats sb = train_nitho(batched, set, cfg);
  ASSERT_EQ(sl.epoch_losses.size(), sb.epoch_losses.size());
  for (std::size_t e = 0; e < sl.epoch_losses.size(); ++e) {
    EXPECT_EQ(sl.epoch_losses[e], sb.epoch_losses[e]) << "epoch " << e;
  }
  EXPECT_EQ(sl.steps, sb.steps);
  // Golden predict_kernels-after-training check: identical weights after
  // identical updates, so the predicted kernel stacks match bit for bit.
  const auto kl = legacy.export_kernels();
  const auto kb = batched.export_kernels();
  ASSERT_EQ(kl.size(), kb.size());
  for (std::size_t i = 0; i < kl.size(); ++i) EXPECT_EQ(kl[i], kb[i]);
}

TEST(Trainer, BatchedMatchesLegacyPerMaskLoopBitwise) {
  // 6 samples with batch 4 exercises a ragged tail batch every epoch.
  const Dataset ds = engine().make_dataset(DatasetKind::B2v, 6, 77);
  NithoTrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch = 4;
  cfg.train_px = 32;
  cfg.seed = 5;
  expect_bit_identical_training(ds, cfg);
}

TEST(Trainer, BatchedMatchesLegacyOnBluesteinGrid) {
  // train_px 33 routes the differentiable FFTs through the Bluestein path
  // (and its workspace scratch) instead of radix-2.
  const Dataset ds = engine().make_dataset(DatasetKind::B1, 3, 13);
  NithoTrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch = 2;
  cfg.train_px = 33;
  cfg.seed = 9;
  expect_bit_identical_training(ds, cfg);
}

TEST(Trainer, TinyEpochSmoke) {
  // CI smoke for the batched path: 2 epochs over 8 samples (the ci.sh
  // Debug/-Werror leg runs this via ctest).
  const Dataset ds = engine().make_dataset(DatasetKind::B1, 8, 3);
  NithoModel m(small_model_config(), 512, 193.0, 1.35);
  NithoTrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch = 4;
  cfg.train_px = 32;
  const TrainStats st = train_nitho(m, sample_ptrs(ds), cfg);
  ASSERT_EQ(st.epoch_losses.size(), 2u);
  EXPECT_EQ(st.steps, 4);
  for (double l : st.epoch_losses) EXPECT_TRUE(std::isfinite(l));
  EXPECT_LE(st.epoch_losses[1], st.epoch_losses[0]);
  EXPECT_GE(st.forward_seconds, 0.0);
  EXPECT_GE(st.backward_seconds, 0.0);
  EXPECT_GE(st.step_seconds, 0.0);
}

TEST(Trainer, PrepareTrainingSetShapesAndReuse) {
  const Dataset ds = engine().make_dataset(DatasetKind::B1, 3, 21);
  const TrainingSet set = prepare_training_set(sample_ptrs(ds), 15, 32);
  EXPECT_EQ(set.size(), 3);
  EXPECT_EQ(set.kernel_dim, 15);
  EXPECT_EQ(set.train_px, 32);
  ASSERT_EQ(set.spectra.size(), 3u);
  EXPECT_EQ(set.spectra[0].shape(), (std::vector<int>{15, 15, 2}));
  EXPECT_EQ(set.targets[0].shape(), (std::vector<int>{32, 32}));
  // The auto rule: 0 resolves to the smallest pow2 >= max(64, 2 * kdim).
  EXPECT_EQ(prepare_training_set(sample_ptrs(ds), 15).train_px, 64);
  // Training twice from one prepared set reproduces the data-owning entry
  // point exactly.
  NithoTrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch = 2;
  cfg.train_px = 32;
  NithoModel a(small_model_config(), 512, 193.0, 1.35);
  NithoModel b(small_model_config(), 512, 193.0, 1.35);
  const TrainStats sa = train_nitho(a, set, cfg);
  const TrainStats sb = train_nitho(b, sample_ptrs(ds), cfg);
  EXPECT_EQ(sa.epoch_losses, sb.epoch_losses);
}

// The stop/serialize/restore/resume protocol must be invisible in the
// arithmetic: training n epochs straight through and training k, shipping
// the trainer state through a stream into a fresh model + trainer (with a
// different init and different config — both fully overwritten), then
// resuming to n, must produce the same losses and weights bit for bit.
// This is the guarantee rollout replica adoption (src/rollout/) rides.
TEST(Trainer, SerializeRestoreResumeIsBitIdentical) {
  const Dataset ds = engine().make_dataset(DatasetKind::B2v, 5, 42);
  NithoTrainConfig cfg;
  cfg.epochs = 5;
  cfg.batch = 2;
  cfg.train_px = 32;
  cfg.seed = 11;

  NithoModel full(small_model_config(), 512, 193.0, 1.35);
  const TrainingSet set =
      prepare_training_set(sample_ptrs(ds), full.kernel_dim(), cfg.train_px);
  NithoTrainer uninterrupted(full, set, cfg);
  while (!uninterrupted.done()) uninterrupted.run_epoch();

  // Train to epoch 2, checkpoint, restore into a *differently initialized*
  // model under a *different* config — load_state must overwrite both.
  NithoModel part(small_model_config(), 512, 193.0, 1.35);
  NithoTrainer interrupted(part, set, cfg);
  interrupted.run_epoch();
  interrupted.run_epoch();
  std::stringstream state;
  interrupted.save_state(state);

  NithoConfig other_init = small_model_config();
  other_init.seed = 999;
  NithoModel fresh(other_init, 512, 193.0, 1.35);
  NithoTrainConfig other_cfg = cfg;
  other_cfg.lr = 123.0f;
  other_cfg.seed = 1;
  other_cfg.epochs = 2;
  NithoTrainer resumed(fresh, set, other_cfg);
  resumed.load_state(state);
  EXPECT_EQ(resumed.epochs_done(), 2);
  EXPECT_EQ(resumed.config().lr, cfg.lr);
  EXPECT_EQ(resumed.config().epochs, cfg.epochs);
  ASSERT_FALSE(resumed.done());
  while (!resumed.done()) resumed.run_epoch();

  ASSERT_EQ(resumed.epoch_losses().size(),
            uninterrupted.epoch_losses().size());
  for (std::size_t e = 0; e < resumed.epoch_losses().size(); ++e) {
    EXPECT_EQ(resumed.epoch_losses()[e], uninterrupted.epoch_losses()[e])
        << "epoch " << e;
  }
  EXPECT_EQ(resumed.stats().steps, uninterrupted.stats().steps);
  const auto ka = full.export_kernels();
  const auto kb = fresh.export_kernels();
  ASSERT_EQ(ka.size(), kb.size());
  for (std::size_t i = 0; i < ka.size(); ++i) EXPECT_EQ(ka[i], kb[i]);
}

TEST(Trainer, LoadStateRejectsIncompatibleStateWithoutPartialRestore) {
  const Dataset ds = engine().make_dataset(DatasetKind::B1, 3, 8);
  NithoTrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch = 2;
  cfg.train_px = 32;
  NithoModel m(small_model_config(), 512, 193.0, 1.35);
  const TrainingSet set =
      prepare_training_set(sample_ptrs(ds), m.kernel_dim(), cfg.train_px);
  NithoTrainer t(m, set, cfg);
  t.run_epoch();
  std::stringstream state;
  t.save_state(state);
  const std::string bytes = state.str();

  // A trainer over a different kernel support must reject the checkpoint
  // and keep its own weights untouched.
  NithoConfig smaller = small_model_config();
  smaller.kernel_dim = 9;
  NithoModel m2(smaller, 512, 193.0, 1.35);
  const TrainingSet set2 =
      prepare_training_set(sample_ptrs(ds), m2.kernel_dim(), cfg.train_px);
  NithoTrainer t2(m2, set2, cfg);
  const auto before = m2.export_kernels();
  std::stringstream wrong(bytes);
  EXPECT_THROW(t2.load_state(wrong), check_error);
  const auto after = m2.export_kernels();
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], after[i]);
  }
  EXPECT_EQ(t2.epochs_done(), 0);

  // Truncated checkpoint: throw, never zero-fill.
  std::stringstream cut(bytes.substr(0, bytes.size() / 3));
  NithoTrainer t3(m2, set2, cfg);
  EXPECT_THROW(t3.load_state(cut), check_error);
}

TEST(Trainer, EvaluateNithoIsDeterministicAndTracksTraining) {
  const Dataset ds = engine().make_dataset(DatasetKind::B1, 4, 77);
  NithoModel m(small_model_config(), 512, 193.0, 1.35);
  const TrainingSet set =
      prepare_training_set(sample_ptrs(ds), m.kernel_dim(), 32);
  const double before = evaluate_nitho(m, set);
  EXPECT_EQ(before, evaluate_nitho(m, set));
  EXPECT_TRUE(std::isfinite(before));
  NithoTrainConfig cfg;
  cfg.epochs = 6;
  cfg.batch = 2;
  cfg.train_px = 32;
  train_nitho(m, set, cfg);
  EXPECT_LT(evaluate_nitho(m, set), before);
}

TEST(Trainer, ScheduledLrMatchesRunEpochSchedule) {
  NithoTrainConfig cfg;
  cfg.epochs = 10;
  cfg.lr = 4e-3f;
  EXPECT_EQ(NithoTrainer::scheduled_lr(cfg, 0), cfg.lr);
  // End of the run: cosine decayed to 10% of base.
  EXPECT_FLOAT_EQ(NithoTrainer::scheduled_lr(cfg, 10), 0.1f * cfg.lr);
  // Monotone non-increasing across the run.
  for (int e = 1; e <= 10; ++e) {
    EXPECT_LE(NithoTrainer::scheduled_lr(cfg, e),
              NithoTrainer::scheduled_lr(cfg, e - 1));
  }
  EXPECT_THROW(NithoTrainer::scheduled_lr(cfg, 11), check_error);
}

TEST(Trainer, SamplePtrsHelpers) {
  const Dataset a = engine().make_dataset(DatasetKind::B1, 3, 1);
  const Dataset b = engine().make_dataset(DatasetKind::B2v, 2, 2);
  EXPECT_EQ(sample_ptrs(a).size(), 3u);
  EXPECT_EQ(sample_ptrs(a, 2).size(), 2u);
  EXPECT_EQ(sample_ptrs({&a, &b}).size(), 5u);
  EXPECT_EQ(sample_ptrs({&a, &b}, 1).size(), 2u);
}

TEST(Trainer, RejectsEmptyData) {
  NithoModel m(small_model_config(), 512, 193.0, 1.35);
  EXPECT_THROW(train_nitho(m, std::vector<const Sample*>{}, NithoTrainConfig{}),
               check_error);
}

}  // namespace
}  // namespace nitho
