#pragma once
// Shared test scaffolding: grid/tensor comparators with tolerance, golden
// fixture helpers, reference DFTs and seeded RNG factories.  Every suite
// should pull comparison helpers from here instead of re-implementing them.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "math/cplx.hpp"
#include "math/grid.hpp"
#include "nn/tensor.hpp"

namespace nitho::test {

/// Fixed seed used by default across suites so failures reproduce exactly.
inline constexpr std::uint64_t kTestSeed = 0xC0FFEEull;

/// Fresh deterministic generator; pass a salt to decorrelate sub-streams.
Rng make_rng(std::uint64_t salt = 0);

/// Max absolute elementwise difference (shape mismatch reports +inf).
double max_abs_diff(const Grid<double>& a, const Grid<double>& b);
double max_abs_diff(const Grid<cd>& a, const Grid<cd>& b);
double max_abs_diff(const std::vector<cd>& a, const std::vector<cd>& b);
double max_abs_diff(const nn::Tensor& a, const nn::Tensor& b);

/// gtest assertions: pass iff shapes match and max|a-b| <= tol.
::testing::AssertionResult grids_close(const Grid<double>& a,
                                       const Grid<double>& b, double tol);
::testing::AssertionResult grids_close(const Grid<cd>& a, const Grid<cd>& b,
                                       double tol);
::testing::AssertionResult vectors_close(const std::vector<cd>& a,
                                         const std::vector<cd>& b, double tol);
::testing::AssertionResult tensors_close(const nn::Tensor& a,
                                         const nn::Tensor& b, double tol);

/// O(n^2) reference DFT (forward: negative exponent, no normalisation).
std::vector<cd> dft_reference(const std::vector<cd>& x);
/// O(n^2) reference inverse DFT (positive exponent, 1/n normalisation).
std::vector<cd> idft_reference(const std::vector<cd>& x);

/// Random complex signal / grids for property tests.
std::vector<cd> random_signal(int n, Rng& rng);
Grid<cd> random_cgrid(int rows, int cols, Rng& rng);
Grid<double> random_grid(int rows, int cols, Rng& rng);
/// Random binary mask with the given fill probability.
Grid<double> random_mask(int rows, int cols, Rng& rng, double p = 0.5);
/// Random complex kernel stack (count kernels of kdim x kdim).  With
/// dark_border (and kdim >= 5), a one-pixel border ring is zeroed so the
/// kernels have structurally dark rows/columns like real pupil-limited
/// SOCS kernels — what the engine's row pruning keys on.
std::vector<Grid<cd>> random_kernels(int count, int kdim, Rng& rng,
                                     bool dark_border = false);
/// Random Hermitian n x n matrix (real diagonal, conjugate-symmetric).
Grid<cd> random_hermitian(int n, Rng& rng);
/// Hermitian-symmetric centered spectrum of a real mask; DC ~ density.
Grid<cd> random_spectrum(int crop, Rng& rng, double scale = 0.05);

/// Golden-fixture helpers: write/read a grid under the test's temp dir and
/// compare against a freshly computed value.  Path is created on demand.
std::string golden_dir();
std::string golden_path(const std::string& name);
void write_golden(const std::string& name, const Grid<double>& g);
bool read_golden(const std::string& name, Grid<double>* out);

}  // namespace nitho::test
