#include "support/test_support.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <limits>

#include "io/tensor_io.hpp"

namespace nitho::test {

Rng make_rng(std::uint64_t salt) { return Rng(kTestSeed + salt * 0x9E3779B9ull); }

namespace {

template <typename Container>
double max_abs_diff_impl(const Container& a, const Container& b) {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, static_cast<double>(std::abs(a[i] - b[i])));
  }
  return m;
}

::testing::AssertionResult close_impl(double tol, bool same_shape,
                                      double diff) {
  if (!same_shape) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  if (diff <= tol) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "max|a-b| = " << diff << " exceeds tol = " << tol;
}

}  // namespace

double max_abs_diff(const Grid<double>& a, const Grid<double>& b) {
  if (!a.same_shape(b)) return std::numeric_limits<double>::infinity();
  return max_abs_diff_impl(a, b);
}

double max_abs_diff(const Grid<cd>& a, const Grid<cd>& b) {
  if (!a.same_shape(b)) return std::numeric_limits<double>::infinity();
  return max_abs_diff_impl(a, b);
}

double max_abs_diff(const std::vector<cd>& a, const std::vector<cd>& b) {
  return max_abs_diff_impl(a, b);
}

double max_abs_diff(const nn::Tensor& a, const nn::Tensor& b) {
  if (!a.same_shape(b)) return std::numeric_limits<double>::infinity();
  double m = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    m = std::max(m, static_cast<double>(std::fabs(a[i] - b[i])));
  }
  return m;
}

::testing::AssertionResult grids_close(const Grid<double>& a,
                                       const Grid<double>& b, double tol) {
  return close_impl(tol, a.same_shape(b), max_abs_diff(a, b));
}

::testing::AssertionResult grids_close(const Grid<cd>& a, const Grid<cd>& b,
                                       double tol) {
  return close_impl(tol, a.same_shape(b), max_abs_diff(a, b));
}

::testing::AssertionResult vectors_close(const std::vector<cd>& a,
                                         const std::vector<cd>& b, double tol) {
  return close_impl(tol, a.size() == b.size(), max_abs_diff(a, b));
}

::testing::AssertionResult tensors_close(const nn::Tensor& a,
                                         const nn::Tensor& b, double tol) {
  return close_impl(tol, a.same_shape(b), max_abs_diff(a, b));
}

std::vector<cd> dft_reference(const std::vector<cd>& x) {
  const int n = static_cast<int>(x.size());
  std::vector<cd> out(n);
  for (int k = 0; k < n; ++k) {
    cd acc{};
    for (int j = 0; j < n; ++j) {
      const double ang = -2.0 * kPi * static_cast<double>(k) * j / n;
      acc += x[j] * cd(std::cos(ang), std::sin(ang));
    }
    out[k] = acc;
  }
  return out;
}

std::vector<cd> idft_reference(const std::vector<cd>& x) {
  const int n = static_cast<int>(x.size());
  std::vector<cd> out(n);
  for (int k = 0; k < n; ++k) {
    cd acc{};
    for (int j = 0; j < n; ++j) {
      const double ang = 2.0 * kPi * static_cast<double>(k) * j / n;
      acc += x[j] * cd(std::cos(ang), std::sin(ang));
    }
    out[k] = acc / static_cast<double>(n);
  }
  return out;
}

std::vector<cd> random_signal(int n, Rng& rng) {
  std::vector<cd> x(n);
  for (auto& v : x) v = cd(rng.normal(), rng.normal());
  return x;
}

Grid<cd> random_cgrid(int rows, int cols, Rng& rng) {
  Grid<cd> g(rows, cols);
  for (auto& v : g) v = cd(rng.normal(), rng.normal());
  return g;
}

Grid<double> random_grid(int rows, int cols, Rng& rng) {
  Grid<double> g(rows, cols);
  for (auto& v : g) v = rng.normal();
  return g;
}

Grid<double> random_mask(int rows, int cols, Rng& rng, double p) {
  Grid<double> g(rows, cols);
  for (auto& v : g) v = rng.bernoulli(p) ? 1.0 : 0.0;
  return g;
}

std::vector<Grid<cd>> random_kernels(int count, int kdim, Rng& rng,
                                     bool dark_border) {
  std::vector<Grid<cd>> kernels;
  kernels.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Grid<cd> k = random_cgrid(kdim, kdim, rng);
    if (dark_border && kdim >= 5) {
      for (int j = 0; j < kdim; ++j) {
        k(0, j) = k(kdim - 1, j) = cd(0.0, 0.0);
        k(j, 0) = k(j, kdim - 1) = cd(0.0, 0.0);
      }
    }
    kernels.push_back(std::move(k));
  }
  return kernels;
}

Grid<cd> random_hermitian(int n, Rng& rng) {
  Grid<cd> a(n, n);
  for (int i = 0; i < n; ++i) {
    a(i, i) = cd(rng.normal(), 0.0);
    for (int j = i + 1; j < n; ++j) {
      const cd v(rng.normal(), rng.normal());
      a(i, j) = v;
      a(j, i) = std::conj(v);
    }
  }
  return a;
}

Grid<cd> random_spectrum(int crop, Rng& rng, double scale) {
  check(crop % 2 == 1, "random_spectrum requires an odd centered crop");
  Grid<cd> spec(crop, crop, cd(0.0, 0.0));
  const int h = crop / 2;
  spec(h, h) = cd(0.3, 0.0);
  for (int r = 0; r < crop; ++r) {
    for (int c = 0; c < crop; ++c) {
      const int sr = r - h, sc = c - h;
      if (sr < 0 || (sr == 0 && sc <= 0)) continue;
      const cd v(rng.normal() * scale, rng.normal() * scale);
      spec(r, c) = v;
      spec(h - sr, h - sc) = std::conj(v);
    }
  }
  return spec;
}

std::string golden_dir() {
  // One fresh directory per test process: goldens never leak between runs,
  // code revisions or users sharing a machine.
  static const std::string dir = [] {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "nitho_golden_XXXXXX")
            .string();
    char* made = mkdtemp(tmpl.data());
    check(made != nullptr, "failed to create golden fixture directory");
    return std::string(made);
  }();
  return dir;
}

std::string golden_path(const std::string& name) {
  return golden_dir() + "/" + name;
}

void write_golden(const std::string& name, const Grid<double>& g) {
  save_grid(golden_path(name), g);
}

bool read_golden(const std::string& name, Grid<double>* out) {
  namespace fs = std::filesystem;
  const std::string path = golden_path(name);
  if (!fs::exists(path)) return false;
  *out = load_grid(path);
  return true;
}

}  // namespace nitho::test
