// Tests for src/serve/: RequestQueue backpressure/shutdown semantics,
// MicroBatcher flush policy, and the LithoServer contract — every served
// result bit-identical to the corresponding direct FastLitho call under
// concurrent mixed load, deadline-triggered partial batches, backpressure
// with a full queue, kernel hot-swap mid-stream, and clean shutdown with
// all futures resolved.  This suite also runs under the `tsan` preset.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <latch>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "metrics/metrics.hpp"
#include "serve/batcher.hpp"
#include "serve/request_queue.hpp"
#include "serve/server.hpp"
#include "support/test_support.hpp"

namespace nitho {
namespace {

using serve::Batch;
using serve::BatchPolicy;
using serve::LithoServer;
using serve::MicroBatcher;
using serve::RequestKind;
using serve::RequestQueue;
using serve::RouteMode;
using serve::ServeOptions;
using serve::ServeRequest;
using serve::ShardStats;
using test::make_rng;
using test::random_kernels;
using test::random_mask;

using Clock = std::chrono::steady_clock;

ServeRequest make_req(int tag, std::shared_ptr<const FastLitho> litho,
                      int out_px = 16,
                      Clock::time_point deadline = serve::kNoDeadline) {
  ServeRequest req;
  req.mask = Grid<double>(1, 1, static_cast<double>(tag));
  req.out_px = out_px;
  req.litho = std::move(litho);
  req.deadline = deadline;
  return req;
}

std::shared_ptr<const FastLitho> dummy_litho(std::uint64_t salt) {
  Rng rng = make_rng(salt);
  return std::make_shared<const FastLitho>(
      FastLitho(random_kernels(1, 3, rng)));
}

// ---------------------------------------------------------------------------
// RequestQueue
// ---------------------------------------------------------------------------

TEST(RequestQueue, FifoOrderAndDepth) {
  RequestQueue q(4);
  const auto litho = dummy_litho(1);
  for (int i = 0; i < 3; ++i) {
    ServeRequest r = make_req(i, litho);
    ASSERT_TRUE(q.push(r));
  }
  EXPECT_EQ(q.depth(), 3u);
  for (int i = 0; i < 3; ++i) {
    ServeRequest out;
    ASSERT_EQ(q.pop(out), RequestQueue::PopResult::kItem);
    EXPECT_EQ(out.mask(0, 0), static_cast<double>(i));
  }
  EXPECT_EQ(q.depth(), 0u);
}

TEST(RequestQueue, TryPushFailsWhenFullAndKeepsRequest) {
  RequestQueue q(2);
  const auto litho = dummy_litho(2);
  ServeRequest a = make_req(0, litho), b = make_req(1, litho);
  ASSERT_EQ(q.try_push(a), RequestQueue::PushResult::kOk);
  ASSERT_EQ(q.try_push(b), RequestQueue::PushResult::kOk);
  ServeRequest c = make_req(42, litho);
  // Full is retryable backpressure, distinct from kClosed (terminal).
  EXPECT_EQ(q.try_push(c), RequestQueue::PushResult::kFull);
  // The rejected request is intact: the caller can retry or fail it.
  EXPECT_EQ(c.mask(0, 0), 42.0);
  EXPECT_TRUE(c.litho != nullptr);
}

TEST(RequestQueue, PushBlocksUntilPopMakesRoom) {
  RequestQueue q(1);
  const auto litho = dummy_litho(3);
  ServeRequest first = make_req(0, litho);
  ASSERT_TRUE(q.push(first));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ServeRequest second = make_req(1, litho);
    ASSERT_TRUE(q.push(second));  // must block until the pop below
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // still blocked on the full queue
  ServeRequest out;
  ASSERT_EQ(q.pop(out), RequestQueue::PopResult::kItem);
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_EQ(q.pop(out), RequestQueue::PopResult::kItem);
  EXPECT_EQ(out.mask(0, 0), 1.0);
}

TEST(RequestQueue, CloseDrainsAcceptedItemsThenReportsClosed) {
  RequestQueue q(4);
  const auto litho = dummy_litho(4);
  ServeRequest a = make_req(7, litho);
  ASSERT_TRUE(q.push(a));
  q.close();
  ServeRequest b = make_req(8, litho);
  EXPECT_FALSE(q.push(b));      // refused, request intact
  EXPECT_EQ(q.try_push(b), RequestQueue::PushResult::kClosed);
  EXPECT_EQ(b.mask(0, 0), 8.0);
  ServeRequest out;
  ASSERT_EQ(q.pop(out), RequestQueue::PopResult::kItem);  // drains
  EXPECT_EQ(out.mask(0, 0), 7.0);
  EXPECT_EQ(q.pop(out), RequestQueue::PopResult::kClosed);
  EXPECT_EQ(q.pop_until(out, Clock::now() + std::chrono::milliseconds(5)),
            RequestQueue::PopResult::kClosed);
}

TEST(RequestQueue, CloseWakesBlockedProducerAndConsumer) {
  RequestQueue q(1);
  const auto litho = dummy_litho(5);
  ServeRequest fill = make_req(0, litho);
  ASSERT_TRUE(q.push(fill));
  std::thread producer([&] {
    ServeRequest r = make_req(1, litho);
    EXPECT_FALSE(q.push(r));  // blocked on full, then woken by close
  });
  RequestQueue empty(1);
  std::thread consumer([&] {
    ServeRequest out;
    EXPECT_EQ(empty.pop(out), RequestQueue::PopResult::kClosed);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  empty.close();
  producer.join();
  consumer.join();
}

TEST(RequestQueue, PopUntilTimesOutOnEmptyQueue) {
  RequestQueue q(2);
  ServeRequest out;
  EXPECT_EQ(q.pop_until(out, Clock::now() + std::chrono::milliseconds(5)),
            RequestQueue::PopResult::kTimeout);
}

// ---------------------------------------------------------------------------
// MicroBatcher
// ---------------------------------------------------------------------------

TEST(MicroBatcher, SizeFlushAtMaxBatch) {
  MicroBatcher batcher({.max_batch = 3, .max_delay = std::chrono::hours(1)});
  const auto litho = dummy_litho(10);
  const auto now = Clock::now();
  EXPECT_FALSE(batcher.add(make_req(0, litho), now).has_value());
  EXPECT_FALSE(batcher.add(make_req(1, litho), now).has_value());
  auto full = batcher.add(make_req(2, litho), now);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->requests.size(), 3u);
  EXPECT_EQ(full->out_px, 16);
  EXPECT_EQ(full->litho.get(), litho.get());
  EXPECT_EQ(batcher.pending_requests(), 0u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(full->requests[static_cast<std::size_t>(i)].mask(0, 0),
              static_cast<double>(i));
  }
}

TEST(MicroBatcher, MaxBatchOneFlushesImmediately) {
  MicroBatcher batcher({.max_batch = 1, .max_delay = std::chrono::hours(1)});
  auto batch = batcher.add(make_req(0, dummy_litho(11)), Clock::now());
  ASSERT_TRUE(batch.has_value());
  EXPECT_EQ(batch->requests.size(), 1u);
  EXPECT_EQ(batcher.pending_buckets(), 0u);
}

TEST(MicroBatcher, SeparateBucketsPerOutPxAndKernelSet) {
  MicroBatcher batcher({.max_batch = 8, .max_delay = std::chrono::hours(1)});
  const auto lithoA = dummy_litho(12);
  const auto lithoB = dummy_litho(13);
  const auto now = Clock::now();
  EXPECT_FALSE(batcher.add(make_req(0, lithoA, 16), now).has_value());
  EXPECT_FALSE(batcher.add(make_req(1, lithoA, 32), now).has_value());
  EXPECT_FALSE(batcher.add(make_req(2, lithoB, 16), now).has_value());
  EXPECT_EQ(batcher.pending_buckets(), 3u);  // (A,16) (A,32) (B,16)
  EXPECT_FALSE(batcher.add(make_req(3, lithoA, 16), now).has_value());
  EXPECT_EQ(batcher.pending_buckets(), 3u);  // coalesced into (A,16)
  EXPECT_EQ(batcher.pending_requests(), 4u);
}

TEST(MicroBatcher, DeadlinePollFlushesOldestFirst) {
  const auto delay = std::chrono::milliseconds(10);
  MicroBatcher batcher({.max_batch = 8, .max_delay = delay});
  const auto lithoA = dummy_litho(14);
  const auto lithoB = dummy_litho(15);
  const auto t0 = Clock::now();
  EXPECT_FALSE(batcher.add(make_req(0, lithoA, 16), t0).has_value());
  EXPECT_FALSE(batcher.add(make_req(1, lithoB, 20), t0 + delay).has_value());
  ASSERT_TRUE(batcher.next_deadline().has_value());
  EXPECT_EQ(*batcher.next_deadline(), t0 + delay);
  EXPECT_FALSE(batcher.poll(t0 + delay / 2).has_value());  // nothing expired
  auto first = batcher.poll(t0 + 3 * delay);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->litho.get(), lithoA.get());  // older bucket first
  auto second = batcher.poll(t0 + 3 * delay);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->litho.get(), lithoB.get());
  EXPECT_FALSE(batcher.poll(t0 + 3 * delay).has_value());
  EXPECT_FALSE(batcher.next_deadline().has_value());
}

TEST(MicroBatcher, DrainFlushesEverythingRegardlessOfDeadline) {
  MicroBatcher batcher({.max_batch = 8, .max_delay = std::chrono::hours(1)});
  const auto now = Clock::now();
  EXPECT_FALSE(batcher.add(make_req(0, dummy_litho(16), 16), now).has_value());
  EXPECT_FALSE(batcher.add(make_req(1, dummy_litho(17), 24), now).has_value());
  const std::vector<Batch> all = batcher.drain();
  EXPECT_EQ(all.size(), 2u);
  EXPECT_EQ(batcher.pending_requests(), 0u);
}

TEST(MicroBatcher, TrickleLoadCannotStarveTheFlushDeadline) {
  // A bucket's flush deadline is set by its *oldest* request and must not
  // slide as later requests coalesce into it: under trickle load arriving
  // just under max_delay apart, a sliding deadline would starve the bucket
  // forever.
  const auto delay = std::chrono::milliseconds(10);
  MicroBatcher batcher({.max_batch = 64, .max_delay = delay});
  const auto litho = dummy_litho(18);
  const auto t0 = Clock::now();
  EXPECT_FALSE(batcher.add(make_req(0, litho), t0).has_value());
  ASSERT_TRUE(batcher.next_deadline().has_value());
  EXPECT_EQ(*batcher.next_deadline(), t0 + delay);
  // Keep trickling into the same bucket right up to (and past) the flush
  // point; the deadline must stay anchored at t0 + delay throughout.
  EXPECT_FALSE(batcher.add(make_req(1, litho), t0 + delay / 2).has_value());
  EXPECT_EQ(*batcher.next_deadline(), t0 + delay);
  EXPECT_FALSE(
      batcher.add(make_req(2, litho), t0 + 9 * delay / 10).has_value());
  EXPECT_EQ(*batcher.next_deadline(), t0 + delay);
  // At the anchored deadline the bucket flushes with everything coalesced.
  auto flushed = batcher.poll(t0 + delay);
  ASSERT_TRUE(flushed.has_value());
  EXPECT_EQ(flushed->requests.size(), 3u);
  EXPECT_EQ(batcher.pending_requests(), 0u);
}

TEST(MicroBatcher, ShedsExpiredRequestOnDequeueForCallerResolution) {
  MicroBatcher batcher({.max_batch = 8, .max_delay = std::chrono::hours(1)});
  const auto litho = dummy_litho(19);
  const auto t0 = Clock::now();
  // Expired while queued: never filed, set aside intact via take_shed().
  // The batcher leaves the promise pending so its owner can account the
  // shed before the client can observe the future resolve.
  ServeRequest expired = make_req(7, litho, 16, t0);
  std::future<Grid<double>> fut = expired.result.get_future();
  EXPECT_FALSE(
      batcher.add(std::move(expired), t0 + std::chrono::milliseconds(1))
          .has_value());
  EXPECT_EQ(batcher.pending_requests(), 0u);
  std::vector<ServeRequest> shed = batcher.take_shed();
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0].mask(0, 0), 7.0);  // request intact, promise pending
  EXPECT_EQ(fut.wait_for(std::chrono::seconds(0)),
            std::future_status::timeout);
  shed[0].result.set_exception(std::make_exception_ptr(
      serve::DeadlineExceeded("shed")));
  EXPECT_THROW(fut.get(), serve::DeadlineExceeded);
  EXPECT_TRUE(batcher.take_shed().empty());  // drained
  // A live deadline and the kNoDeadline default are both filed normally.
  EXPECT_FALSE(batcher
                   .add(make_req(1, litho, 16,
                                 t0 + std::chrono::hours(2)),
                        t0)
                   .has_value());
  EXPECT_FALSE(batcher.add(make_req(2, litho), t0).has_value());
  EXPECT_EQ(batcher.pending_requests(), 2u);
  EXPECT_TRUE(batcher.take_shed().empty());
}

TEST(MicroBatcher, SetPolicyHotSwapsTheFlushThresholds) {
  MicroBatcher batcher({.max_batch = 8, .max_delay = std::chrono::hours(1)});
  const auto litho = dummy_litho(20);
  const auto t0 = Clock::now();
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(batcher.add(make_req(i, litho), t0).has_value());
  }
  // The autotuner's hot-swap point: lowering max_batch makes the existing
  // bucket flush on its next add.
  batcher.set_policy({.max_batch = 2, .max_delay = std::chrono::hours(1)});
  EXPECT_EQ(batcher.policy().max_batch, 2);
  auto full = batcher.add(make_req(3, litho), t0);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->requests.size(), 4u);
  // New buckets use the new max_delay for their flush deadline.
  batcher.set_policy({.max_batch = 8, .max_delay = std::chrono::milliseconds(3)});
  EXPECT_FALSE(batcher.add(make_req(4, litho), t0).has_value());
  ASSERT_TRUE(batcher.next_deadline().has_value());
  EXPECT_EQ(*batcher.next_deadline(), t0 + std::chrono::milliseconds(3));
}

// ---------------------------------------------------------------------------
// LithoServer
// ---------------------------------------------------------------------------

/// Shared fixture state: one kernel set plus an independent reference
/// FastLitho (same kernel values => bit-identical arithmetic) that all
/// expectations are computed against.
struct ServerHarness {
  explicit ServerHarness(std::uint64_t seed, int rank = 12, int kdim = 9)
      : rng(make_rng(seed)),
        kernels(random_kernels(rank, kdim, rng)),
        reference(std::vector<Grid<cd>>(kernels)) {}

  FastLitho make_litho() const { return FastLitho(std::vector<Grid<cd>>(kernels)); }

  Grid<double> expected(const Grid<double>& mask, int out_px,
                        RequestKind kind) const {
    return kind == RequestKind::kResist
               ? reference.resist_from_mask(mask, out_px)
               : reference.aerial_from_mask(mask, out_px);
  }

  Rng rng;
  std::vector<Grid<cd>> kernels;
  FastLitho reference;
};

TEST(LithoServer, ServesBitIdenticalResultsUnderConcurrentMixedLoad) {
  ServerHarness h(101);
  for (const auto route : {RouteMode::kOutPxAffinity, RouteMode::kRoundRobin}) {
    ServeOptions opts;
    opts.shards = 2;
    opts.queue_capacity = 32;
    opts.batch.max_batch = 4;
    opts.batch.max_delay = std::chrono::microseconds(200);
    opts.route = route;
    LithoServer server(h.make_litho(), opts);

    constexpr int kClients = 4;
    constexpr int kPerClient = 24;
    const int out_pxs[] = {16, 20, 33};
    struct Expect {
      Grid<double> mask;
      int out_px;
      RequestKind kind;
      std::future<Grid<double>> fut;
    };
    std::vector<std::vector<Expect>> per_client(kClients);
    // Pre-generate masks on the main thread (Rng is not thread-safe).
    std::vector<std::vector<Grid<double>>> masks(kClients);
    for (int c = 0; c < kClients; ++c) {
      for (int i = 0; i < kPerClient; ++i) {
        masks[static_cast<std::size_t>(c)].push_back(random_mask(32, 32, h.rng));
      }
    }
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        auto& mine = per_client[static_cast<std::size_t>(c)];
        for (int i = 0; i < kPerClient; ++i) {
          Expect e;
          e.mask = masks[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)];
          e.out_px = out_pxs[(c + i) % 3];
          e.kind = ((c + i) % 4 == 0) ? RequestKind::kResist
                                      : RequestKind::kAerial;
          e.fut = server.submit(e.mask, e.out_px, e.kind);
          mine.push_back(std::move(e));
        }
      });
    }
    for (auto& t : clients) t.join();
    for (int c = 0; c < kClients; ++c) {
      for (auto& e : per_client[static_cast<std::size_t>(c)]) {
        EXPECT_EQ(e.fut.get(), h.expected(e.mask, e.out_px, e.kind))
            << "client " << c << " out_px " << e.out_px;
      }
    }
    const ShardStats total = server.stats();
    EXPECT_EQ(total.submitted, static_cast<std::uint64_t>(kClients * kPerClient));
    EXPECT_EQ(total.completed, total.submitted);
    EXPECT_GE(total.batches, 1u);
    EXPECT_GE(total.mean_batch_occupancy, 1.0);
    EXPECT_LE(total.p50_latency_us, total.p99_latency_us);
    server.stop();
    EXPECT_EQ(server.stats().queue_depth, 0u);
  }
}

TEST(LithoServer, ObsEnabledServingIsBitIdenticalAndMetricsMirrorStats) {
  // ISSUE 8 acceptance pin: with the observability layer fully on (shared
  // registry, tracing at default sampling), every served result is still
  // byte-for-byte the direct FastLitho computation — instrumentation is
  // timing-only and never touches the arithmetic.
  ServerHarness h(115);
  auto registry = std::make_shared<obs::MetricsRegistry>();
  ServeOptions opts;
  opts.shards = 2;
  opts.batch.max_batch = 4;
  opts.metrics = registry;
  opts.trace.enabled = true;  // default sample_every = 16
  LithoServer server(h.make_litho(), opts);

  constexpr int kRequests = 48;
  std::vector<Grid<double>> masks;
  std::vector<std::future<Grid<double>>> futs;
  for (int i = 0; i < kRequests; ++i) {
    masks.push_back(random_mask(32, 32, h.rng));
    const auto kind =
        (i % 3 == 0) ? RequestKind::kResist : RequestKind::kAerial;
    futs.push_back(server.submit(masks.back(), 16, kind));
  }
  for (int i = 0; i < kRequests; ++i) {
    const auto kind =
        (i % 3 == 0) ? RequestKind::kResist : RequestKind::kAerial;
    ASSERT_EQ(futs[static_cast<std::size_t>(i)].get(),
              h.expected(masks[static_cast<std::size_t>(i)], 16, kind))
        << "request " << i;
  }

  // The registry mirrors the authoritative shard accounting.
  const ShardStats total = server.stats();
  EXPECT_EQ(total.completed, static_cast<std::uint64_t>(kRequests));
  const obs::MetricsSnapshot snap = registry->snapshot();
  std::uint64_t m_submitted = 0, m_completed = 0, m_hist = 0;
  for (int s = 0; s < server.shards(); ++s) {
    const std::string prefix = "serve.shard" + std::to_string(s) + ".";
    const auto* sub = snap.find(prefix + "submitted");
    const auto* comp = snap.find(prefix + "completed");
    const auto* lat = snap.find(prefix + "latency_us");
    ASSERT_NE(sub, nullptr);
    ASSERT_NE(comp, nullptr);
    ASSERT_NE(lat, nullptr);
    m_submitted += static_cast<std::uint64_t>(sub->value);
    m_completed += static_cast<std::uint64_t>(comp->value);
    m_hist += lat->hist.count;
  }
  EXPECT_EQ(m_submitted, total.submitted);
  EXPECT_EQ(m_completed, total.completed);
  EXPECT_EQ(m_hist, total.completed);  // every completion recorded a latency

  // Default 1/16 sampling over 48 requests traced at least one request,
  // i.e. the tracer retained spans.
  EXPECT_FALSE(server.tracer().events().empty());
  server.stop();
}

TEST(LithoServer, StatsSwitchToHistogramPercentilesPastExactWindow) {
  // Past the per-shard exact window the percentiles come from the
  // lifetime log-bucket histogram: pin that the reported values equal the
  // histogram's own quantiles (the 3.1% relative error bound is test_obs's
  // claim; here we pin the switchover itself).
  ServerHarness h(116);
  auto registry = std::make_shared<obs::MetricsRegistry>();
  ServeOptions opts;
  opts.shards = 1;
  opts.batch.max_batch = 4;
  opts.metrics = registry;
  LithoServer server(h.make_litho(), opts);

  constexpr int kRequests = 80;  // > kExactWindow (64) on the one shard
  std::vector<std::future<Grid<double>>> futs;
  Grid<double> mask = random_mask(32, 32, h.rng);
  for (int i = 0; i < kRequests; ++i) {
    futs.push_back(server.submit(mask, 16));
  }
  for (auto& f : futs) (void)f.get();

  const ShardStats st = server.shard_stats(0);
  EXPECT_EQ(st.latency_samples, static_cast<std::uint64_t>(kRequests));
  const obs::MetricsSnapshot snap = registry->snapshot();
  const auto* lat = snap.find("serve.shard0.latency_us");
  ASSERT_NE(lat, nullptr);
  ASSERT_EQ(lat->hist.count, static_cast<std::uint64_t>(kRequests));
  EXPECT_DOUBLE_EQ(st.p50_latency_us, lat->hist.quantile(50));
  EXPECT_DOUBLE_EQ(st.p99_latency_us, lat->hist.quantile(99));
  EXPECT_LE(st.p50_latency_us, st.p99_latency_us);
  server.stop();
}

TEST(LithoServer, DeadlineFlushResolvesPartialBatches) {
  ServerHarness h(102);
  ServeOptions opts;
  opts.batch.max_batch = 64;  // never fills by size
  opts.batch.max_delay = std::chrono::milliseconds(2);
  LithoServer server(h.make_litho(), opts);
  std::vector<Grid<double>> masks;
  std::vector<std::future<Grid<double>>> futs;
  for (int i = 0; i < 3; ++i) {
    masks.push_back(random_mask(32, 32, h.rng));
    futs.push_back(server.submit(masks.back(), 16));
  }
  // Only the latency deadline can flush this batch of 3.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(),
              h.expected(masks[static_cast<std::size_t>(i)], 16,
                         RequestKind::kAerial));
  }
  const ShardStats st = server.stats();
  EXPECT_EQ(st.completed, 3u);
  EXPECT_GE(st.batches, 1u);
  EXPECT_LE(st.batches, 3u);
}

TEST(LithoServer, BackpressureBlocksAndTrySubmitShedsWhenQueueFull) {
  // Occupy the shared pool so the shard worker blocks mid-execute: the
  // queue then fills deterministically.  rank 17 -> 3 kernel chunks, so
  // the engine sweep must take the pool's dispatch lock (workers == 2).
  set_parallel_workers(2);
  ServerHarness h(103, /*rank=*/17, /*kdim=*/9);
  ServeOptions opts;
  opts.queue_capacity = 2;
  opts.batch.max_batch = 1;  // execute immediately on pop
  LithoServer server(h.make_litho(), opts);

  std::latch pool_entered(2);
  std::latch release_pool(1);
  std::thread pool_hog([&] {
    parallel_for(2, [&](std::int64_t) {
      pool_entered.count_down();
      release_pool.wait();
    });
  });
  pool_entered.wait();  // both pool slots are now blocked

  struct Pending {
    Grid<double> mask;
    std::future<Grid<double>> fut;
  };
  std::vector<Pending> accepted;
  // Probe request: once the worker has popped it (queue depth back to 0),
  // it is committed to an execute that cannot finish while the pool is
  // held — from here on, nothing drains the queue.
  {
    Grid<double> mask = random_mask(32, 32, h.rng);
    accepted.push_back({mask, server.submit(std::move(mask), 16)});
    while (server.shard_stats(0).queue_depth != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  bool shed = false;
  for (int i = 0; i < 8 && !shed; ++i) {
    Grid<double> mask = random_mask(32, 32, h.rng);
    Grid<double> copy = mask;
    if (auto fut = server.try_submit(mask, 16)) {
      accepted.push_back({std::move(copy), std::move(*fut)});
    } else {
      shed = true;
      EXPECT_FALSE(mask.empty());  // rejected mask handed back intact
    }
  }
  EXPECT_TRUE(shed);
  // The probe in the worker plus exactly queue_capacity queued requests.
  EXPECT_EQ(accepted.size(), 3u);

  // A blocking submit must park on the full queue instead of failing...
  std::atomic<bool> unblocked{false};
  Grid<double> blocked_mask = random_mask(32, 32, h.rng);
  Pending blocked;
  blocked.mask = blocked_mask;
  std::thread blocked_client([&] {
    blocked.fut = server.submit(std::move(blocked_mask), 16);
    unblocked.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(unblocked.load());

  // ...and everything resolves once the pool frees up.
  release_pool.count_down();
  pool_hog.join();
  blocked_client.join();
  EXPECT_TRUE(unblocked.load());
  for (auto& p : accepted) {
    EXPECT_EQ(p.fut.get(), h.expected(p.mask, 16, RequestKind::kAerial));
  }
  EXPECT_EQ(blocked.fut.get(), h.expected(blocked.mask, 16, RequestKind::kAerial));
  server.stop();
  set_parallel_workers(0);
}

TEST(LithoServer, KernelHotSwapMidStreamKeepsSnapshotSemantics) {
  Rng rng = make_rng(104);
  const std::vector<Grid<cd>> kernels_a = random_kernels(10, 9, rng);
  const std::vector<Grid<cd>> kernels_b = random_kernels(5, 13, rng);
  const FastLitho ref_a{std::vector<Grid<cd>>(kernels_a)};
  const FastLitho ref_b{std::vector<Grid<cd>>(kernels_b)};

  ServeOptions opts;
  opts.batch.max_batch = 64;
  opts.batch.max_delay = std::chrono::milliseconds(50);
  LithoServer server(FastLitho{std::vector<Grid<cd>>(kernels_a)}, opts);

  // Wave A parks in the batcher (deadline far away)...
  std::vector<Grid<double>> masks_a, masks_b;
  std::vector<std::future<Grid<double>>> futs_a, futs_b;
  for (int i = 0; i < 4; ++i) {
    masks_a.push_back(random_mask(32, 32, rng));
    futs_a.push_back(server.submit(masks_a.back(), 16));
  }
  // ...the swap lands mid-stream...
  server.swap_kernels(FastLitho{std::vector<Grid<cd>>(kernels_b)});
  EXPECT_EQ(server.snapshot()->kernel_dim(), 13);
  // ...and wave B follows on the new kernels.
  for (int i = 0; i < 4; ++i) {
    masks_b.push_back(random_mask(32, 32, rng));
    futs_b.push_back(server.submit(masks_b.back(), 16));
  }
  // Every request is served by the snapshot captured at its submit time,
  // bit-identically, no matter when its batch actually executed.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(futs_a[static_cast<std::size_t>(i)].get(),
              ref_a.aerial_from_mask(masks_a[static_cast<std::size_t>(i)], 16));
    EXPECT_EQ(futs_b[static_cast<std::size_t>(i)].get(),
              ref_b.aerial_from_mask(masks_b[static_cast<std::size_t>(i)], 16));
  }
}

TEST(LithoServer, StopDrainsEveryAcceptedRequestAndRefusesNewOnes) {
  ServerHarness h(105);
  ServeOptions opts;
  opts.batch.max_batch = 64;
  opts.batch.max_delay = std::chrono::seconds(5);  // only drain can flush
  LithoServer server(h.make_litho(), opts);
  std::vector<Grid<double>> masks;
  std::vector<std::future<Grid<double>>> futs;
  for (int i = 0; i < 6; ++i) {
    masks.push_back(random_mask(32, 32, h.rng));
    futs.push_back(server.submit(masks.back(), 16, RequestKind::kResist));
  }
  const auto t0 = Clock::now();
  server.stop();  // must not wait out the 5 s deadline
  EXPECT_LT(Clock::now() - t0, std::chrono::seconds(4));
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(),
              h.expected(masks[static_cast<std::size_t>(i)], 16,
                         RequestKind::kResist));
  }
  EXPECT_EQ(server.stats().completed, 6u);
  EXPECT_THROW(server.submit(random_mask(32, 32, h.rng), 16), check_error);
  // try_submit must not report a stopped server as mere backpressure — a
  // shed-and-retry loop would spin forever.
  Grid<double> m = random_mask(32, 32, h.rng);
  EXPECT_THROW(server.try_submit(m, 16), check_error);
  server.stop();  // idempotent
}

TEST(LithoServer, DestructorResolvesOutstandingFutures) {
  ServerHarness h(106);
  std::vector<Grid<double>> masks;
  std::vector<std::future<Grid<double>>> futs;
  {
    ServeOptions opts;
    opts.batch.max_batch = 64;
    opts.batch.max_delay = std::chrono::seconds(5);
    LithoServer server(h.make_litho(), opts);
    for (int i = 0; i < 3; ++i) {
      masks.push_back(random_mask(32, 32, h.rng));
      futs.push_back(server.submit(masks.back(), 16));
    }
  }  // ~LithoServer == stop()
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(),
              h.expected(masks[static_cast<std::size_t>(i)], 16,
                         RequestKind::kAerial));
  }
}

TEST(LithoServer, RejectsInvalidSubmissions) {
  ServerHarness h(107);  // kdim 9
  LithoServer server(h.make_litho());
  EXPECT_THROW(server.submit(Grid<double>(), 16), check_error);
  EXPECT_THROW(server.submit(random_mask(32, 32, h.rng), 8), check_error);
  // Validation failures leave the caller's mask intact (like a full-queue
  // rejection), so a shed-and-retry loop can retry the same request.
  Grid<double> mask = random_mask(32, 32, h.rng);
  const Grid<double> copy = mask;
  EXPECT_THROW(server.try_submit(mask, 8), check_error);
  EXPECT_EQ(mask, copy);
  EXPECT_EQ(server.stats().submitted, 0u);  // rejected work is not counted
}

TEST(LithoServer, ExecuteTimeFailureResolvesFutureWithException) {
  ServerHarness h(108);  // kdim 9: a 4x4 mask cannot host the spectrum crop
  LithoServer server(h.make_litho());
  auto bad = server.submit(Grid<double>(4, 4, 1.0), 16);
  EXPECT_THROW(bad.get(), check_error);
  // The failure is contained: the worker survives and serves the next
  // request normally.
  Grid<double> good_mask = random_mask(32, 32, h.rng);
  auto good = server.submit(good_mask, 16);
  EXPECT_EQ(good.get(), h.expected(good_mask, 16, RequestKind::kAerial));
}

TEST(LithoServer, FreshServerReportsNoLatencySamples) {
  // Regression pin: an empty latency window used to report p50/p99 as
  // 0.0 µs, indistinguishable from a genuinely instant server.
  ServerHarness h(115);
  LithoServer server(h.make_litho());
  ShardStats st = server.stats();
  EXPECT_EQ(st.latency_samples, 0u);
  EXPECT_TRUE(std::isnan(st.p50_latency_us));
  EXPECT_TRUE(std::isnan(st.p99_latency_us));
  EXPECT_EQ(st.shed.goodput_rps, 0.0);
  st = server.shard_stats(0);
  EXPECT_EQ(st.latency_samples, 0u);
  EXPECT_TRUE(std::isnan(st.p99_latency_us));
  Grid<double> mask = random_mask(32, 32, h.rng);
  (void)server.submit(mask, 16).get();
  st = server.stats();
  EXPECT_EQ(st.latency_samples, 1u);
  EXPECT_FALSE(std::isnan(st.p50_latency_us));
  EXPECT_FALSE(std::isnan(st.p99_latency_us));
  EXPECT_GT(st.shed.goodput_rps, 0.0);
  EXPECT_GT(st.est_service_us, 0.0);
}

TEST(LithoServer, PercentileIndexIsNearestRankEvenForTinyWindows) {
  // Regression pin for the small-window p99 underestimate: the old
  // floor-style (99 * (n - 1)) / 100 returned the *minimum* of a 2-sample
  // window as its p99.  Nearest rank is ceil(p/100 * n) - 1.
  EXPECT_EQ(serve::percentile_index(1, 50), 0u);
  EXPECT_EQ(serve::percentile_index(1, 99), 0u);
  EXPECT_EQ(serve::percentile_index(2, 99), 1u);  // max, not min
  EXPECT_EQ(serve::percentile_index(3, 99), 2u);
  EXPECT_EQ(serve::percentile_index(100, 99), 98u);
  EXPECT_EQ(serve::percentile_index(101, 99), 99u);
  EXPECT_EQ(serve::percentile_index(200, 99), 197u);
  // p50 agrees with the old median for every window size.
  EXPECT_EQ(serve::percentile_index(2, 50), 0u);
  EXPECT_EQ(serve::percentile_index(3, 50), 1u);
  EXPECT_EQ(serve::percentile_index(4, 50), 1u);
  EXPECT_EQ(serve::percentile_index(5, 50), 2u);
  EXPECT_EQ(serve::percentile_index(100, 50), 49u);
  EXPECT_EQ(serve::percentile_index(100, 100), 99u);
  EXPECT_THROW(serve::percentile_index(0, 99), check_error);
  EXPECT_THROW(serve::percentile_index(10, 0), check_error);
}

TEST(LithoServer, TinyWindowP99ReportsTheSlowestSample) {
  // Two completed requests: p99 must be the slower one (the old floor
  // formula reported the faster).  Latencies are noisy, so assert the
  // ordering property rather than values: p99 >= p50 always, and with
  // n == 2 the p99 index is the maximum sample.
  ServerHarness h(116);
  LithoServer server(h.make_litho());
  for (int i = 0; i < 2; ++i) {
    Grid<double> mask = random_mask(32, 32, h.rng);
    (void)server.submit(std::move(mask), 16).get();
  }
  const ShardStats st = server.stats();
  ASSERT_EQ(st.latency_samples, 2u);
  EXPECT_GE(st.p99_latency_us, st.p50_latency_us);
}

TEST(LithoServer, ShedsAtSubmitWhenDeadlineIsHopeless) {
  // Per-request deadlines work without any SloPolicy installed: a
  // deadline already in the past is hopeless no matter the queue state.
  ServerHarness h(116);
  LithoServer server(h.make_litho());
  auto doomed =
      server.submit(random_mask(32, 32, h.rng), 16, RequestKind::kAerial,
                    Clock::now() - std::chrono::milliseconds(1));
  EXPECT_THROW(doomed.get(), serve::DeadlineExceeded);
  ShardStats st = server.stats();
  EXPECT_EQ(st.shed.shed_at_submit, 1u);
  EXPECT_EQ(st.submitted, 0u);  // shed requests never enter the queue
  // try_submit sheds the same way: an answered future, not nullopt (which
  // would read as retryable backpressure).
  Grid<double> m = random_mask(32, 32, h.rng);
  auto tfut = server.try_submit(m, 16, RequestKind::kAerial,
                                Clock::now() - std::chrono::milliseconds(1));
  ASSERT_TRUE(tfut.has_value());
  EXPECT_THROW(tfut->get(), serve::DeadlineExceeded);
  EXPECT_EQ(server.stats().shed.shed_at_submit, 2u);
  // A live deadline serves normally, bit-identically.
  Grid<double> mask = random_mask(32, 32, h.rng);
  auto ok = server.submit(mask, 16, RequestKind::kAerial,
                          Clock::now() + std::chrono::seconds(10));
  EXPECT_EQ(ok.get(), h.expected(mask, 16, RequestKind::kAerial));
}

TEST(LithoServer, EstimatedWaitShedsAtSubmitUnderBacklog) {
  // The estimate-driven admission point: with a backlog of N requests and
  // a measured per-request pace, a deadline shorter than the estimated
  // wait is rejected at submit.  The worker is wedged on the shared pool
  // so the backlog (and the estimate) are frozen while we probe.
  set_parallel_workers(2);
  ServerHarness h(117, /*rank=*/17, /*kdim=*/9);
  ServeOptions opts;
  opts.queue_capacity = 8;
  opts.batch.max_batch = 1;
  LithoServer server(h.make_litho(), opts);

  // Complete one request so the service-time EWMA is primed.
  {
    Grid<double> warm = random_mask(32, 32, h.rng);
    EXPECT_EQ(server.submit(warm, 16).get(),
              h.expected(warm, 16, RequestKind::kAerial));
  }
  const double est = server.shard_stats(0).est_service_us;
  ASSERT_GT(est, 0.0);

  std::latch pool_entered(2);
  std::latch release_pool(1);
  std::thread pool_hog([&] {
    parallel_for(2, [&](std::int64_t) {
      pool_entered.count_down();
      release_pool.wait();
    });
  });
  pool_entered.wait();

  struct Pending {
    Grid<double> mask;
    std::future<Grid<double>> fut;
  };
  std::vector<Pending> accepted;
  // Probe request: once popped (depth back to 0) the worker is committed
  // to an execute that cannot finish while the pool is held.
  {
    Grid<double> mask = random_mask(32, 32, h.rng);
    accepted.push_back({mask, server.submit(std::move(mask), 16)});
    while (server.shard_stats(0).queue_depth != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  // Backlog of 8 no-deadline requests (no SloPolicy: they can never shed).
  for (int i = 0; i < 8; ++i) {
    Grid<double> mask = random_mask(32, 32, h.rng);
    accepted.push_back({mask, server.submit(std::move(mask), 16)});
  }
  ASSERT_EQ(server.shard_stats(0).queue_depth, 8u);
  // Estimated wait is est * 8; a deadline of est * 4 from now is hopeless
  // (and would stay hopeless even for an estimate half as large).
  auto doomed = server.submit(
      random_mask(32, 32, h.rng), 16, RequestKind::kAerial,
      Clock::now() + std::chrono::microseconds(std::lround(est * 4)));
  EXPECT_THROW(doomed.get(), serve::DeadlineExceeded);
  EXPECT_EQ(server.shard_stats(0).shed.shed_at_submit, 1u);

  release_pool.count_down();
  pool_hog.join();
  // Every accepted (deadline-free) request still resolves bit-identically.
  for (auto& p : accepted) {
    EXPECT_EQ(p.fut.get(), h.expected(p.mask, 16, RequestKind::kAerial));
  }
  server.stop();
  const ShardStats st = server.stats();
  EXPECT_EQ(st.completed, st.submitted);
  EXPECT_EQ(st.shed.shed_in_queue, 0u);
  set_parallel_workers(0);
}

TEST(LithoServer, OverloadShedsExpireInQueueAndEveryFutureResolves) {
  // Overload shed test: requests that expire while queued resolve with
  // DeadlineExceeded — never silently, never dropped.
  set_parallel_workers(2);
  ServerHarness h(118, /*rank=*/17, /*kdim=*/9);
  ServeOptions opts;
  opts.queue_capacity = 8;
  opts.batch.max_batch = 1;
  serve::SloPolicy slo;
  slo.target_p99 = std::chrono::milliseconds(50);
  slo.max_queue_wait = std::chrono::milliseconds(25);
  opts.slo = slo;
  LithoServer server(h.make_litho(), opts);

  std::latch pool_entered(2);
  std::latch release_pool(1);
  std::thread pool_hog([&] {
    parallel_for(2, [&](std::int64_t) {
      pool_entered.count_down();
      release_pool.wait();
    });
  });
  pool_entered.wait();

  // Probe commits the worker to a pool-wedged execute; the EWMA is still 0
  // (no batch has completed), so the queue fills without submit sheds.
  Grid<double> probe_mask = random_mask(32, 32, h.rng);
  Grid<double> probe_copy = probe_mask;
  auto probe = server.submit(std::move(probe_mask), 16);
  while (server.shard_stats(0).queue_depth != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::vector<std::future<Grid<double>>> queued;
  for (int i = 0; i < 4; ++i) {
    queued.push_back(server.submit(random_mask(32, 32, h.rng), 16));
  }
  // Let every queued deadline (submit + 25 ms) expire, then unwedge.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  release_pool.count_down();
  pool_hog.join();

  EXPECT_EQ(probe.get(), h.expected(probe_copy, 16, RequestKind::kAerial));
  for (auto& f : queued) {
    EXPECT_THROW(f.get(), serve::DeadlineExceeded);
  }
  server.stop();
  const ShardStats st = server.stats();
  EXPECT_EQ(st.shed.shed_in_queue, 4u);
  EXPECT_EQ(st.completed, st.submitted);  // sheds are completions too
  EXPECT_EQ(st.latency_samples, 1u);      // only the probe was served
  set_parallel_workers(0);
}

TEST(LithoServer, SloWithAutotuneServesBitIdenticalAcceptedResults) {
  // The acceptance-criterion pin: with admission control and the
  // autotuner on, every accepted result equals the direct synchronous
  // call bit for bit, even as the tuner hot-swaps (max_batch, max_delay)
  // mid-stream.
  ServerHarness h(119);
  ServeOptions opts;
  opts.shards = 2;
  opts.queue_capacity = 32;
  opts.batch.max_batch = 4;
  opts.batch.max_delay = std::chrono::microseconds(200);
  serve::SloPolicy slo;
  slo.target_p99 = std::chrono::milliseconds(5);
  slo.max_queue_wait = std::chrono::seconds(10);  // nothing sheds
  slo.autotune = true;
  slo.tuner.tune_every = 8;  // force frequent decisions
  opts.slo = slo;
  LithoServer server(h.make_litho(), opts);

  constexpr int kClients = 4;
  constexpr int kPerClient = 24;
  const int out_pxs[] = {16, 20, 33};
  struct Expect {
    Grid<double> mask;
    int out_px;
    RequestKind kind;
    std::future<Grid<double>> fut;
  };
  std::vector<std::vector<Expect>> per_client(kClients);
  std::vector<std::vector<Grid<double>>> masks(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kPerClient; ++i) {
      masks[static_cast<std::size_t>(c)].push_back(random_mask(32, 32, h.rng));
    }
  }
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto& mine = per_client[static_cast<std::size_t>(c)];
      for (int i = 0; i < kPerClient; ++i) {
        Expect e;
        e.mask = masks[static_cast<std::size_t>(c)][static_cast<std::size_t>(i)];
        e.out_px = out_pxs[(c + i) % 3];
        e.kind = ((c + i) % 4 == 0) ? RequestKind::kResist
                                    : RequestKind::kAerial;
        e.fut = server.submit(e.mask, e.out_px, e.kind);
        mine.push_back(std::move(e));
      }
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    for (auto& e : per_client[static_cast<std::size_t>(c)]) {
      EXPECT_EQ(e.fut.get(), h.expected(e.mask, e.out_px, e.kind))
          << "client " << c << " out_px " << e.out_px;
    }
  }
  const ShardStats total = server.stats();
  EXPECT_EQ(total.submitted,
            static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(total.completed, total.submitted);
  EXPECT_EQ(total.shed.shed_at_submit, 0u);
  EXPECT_EQ(total.shed.shed_in_queue, 0u);
  EXPECT_GE(total.max_batch, 1);
  EXPECT_GT(total.max_delay_us, 0.0);
  server.stop();
}

TEST(LithoServer, SwapSloHotSwapsAdmissionControl) {
  ServerHarness h(120);
  ServeOptions opts;
  opts.batch.max_batch = 1;
  LithoServer server(h.make_litho(), opts);
  EXPECT_EQ(server.slo(), nullptr);
  // No policy: no default deadline, requests serve no matter how long the
  // queue wait was.
  Grid<double> before = random_mask(32, 32, h.rng);
  EXPECT_EQ(server.submit(before, 16).get(),
            h.expected(before, 16, RequestKind::kAerial));

  // Swap a zero-wait policy in: the default deadline is the submit
  // instant, so dequeue (strictly later) sheds.
  serve::SloPolicy strict;
  strict.max_queue_wait = std::chrono::microseconds(0);
  server.swap_slo(strict);
  ASSERT_NE(server.slo(), nullptr);
  EXPECT_EQ(server.slo()->max_queue_wait.count(), 0);
  auto shed = server.submit(random_mask(32, 32, h.rng), 16);
  EXPECT_THROW(shed.get(), serve::DeadlineExceeded);
  EXPECT_GE(server.stats().shed.shed_in_queue, 1u);

  // Swap back out: requests are deadline-free again.
  server.swap_slo(std::nullopt);
  EXPECT_EQ(server.slo(), nullptr);
  Grid<double> after = random_mask(32, 32, h.rng);
  EXPECT_EQ(server.submit(after, 16).get(),
            h.expected(after, 16, RequestKind::kAerial));
}

TEST(LithoServer, OutPxAffinityRoutesStably) {
  ServerHarness h(109);
  ServeOptions opts;
  opts.shards = 3;
  LithoServer server(h.make_litho(), opts);
  const int s16 = server.shard_of(16);
  EXPECT_EQ(server.shard_of(16), s16);  // deterministic
  EXPECT_GE(s16, 0);
  EXPECT_LT(s16, 3);
  // Every shard snapshot shares one kernel vector (no copies).
  EXPECT_EQ(server.snapshot(0)->kernels_shared().get(),
            server.snapshot(2)->kernels_shared().get());
}

}  // namespace
}  // namespace nitho
