// Unit tests for src/math: Grid container, statistics and the Hermitian
// eigensolvers (Householder+QL against Jacobi and analytic cases).

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "math/cplx.hpp"
#include "math/grid.hpp"
#include "math/hermitian_eig.hpp"
#include "math/stats.hpp"
#include "support/test_support.hpp"

namespace nitho {
namespace {

using test::random_hermitian;

TEST(Grid, ConstructionAndIndexing) {
  Grid<double> g(3, 4, 1.5);
  EXPECT_EQ(g.rows(), 3);
  EXPECT_EQ(g.cols(), 4);
  EXPECT_EQ(g.size(), 12u);
  EXPECT_DOUBLE_EQ(g(2, 3), 1.5);
  g(1, 2) = -7.0;
  EXPECT_DOUBLE_EQ(g(1, 2), -7.0);
  EXPECT_DOUBLE_EQ(g[1 * 4 + 2], -7.0);
}

TEST(Grid, OutOfRangeThrows) {
  Grid<double> g(2, 2);
  EXPECT_THROW(g(2, 0), check_error);
  EXPECT_THROW(g(0, -1), check_error);
}

TEST(Grid, SumMaxMinCast) {
  Grid<double> g(2, 2);
  g(0, 0) = 1;
  g(0, 1) = -3;
  g(1, 0) = 5;
  g(1, 1) = 2;
  EXPECT_DOUBLE_EQ(grid_sum(g), 5.0);
  EXPECT_DOUBLE_EQ(grid_max(g), 5.0);
  EXPECT_DOUBLE_EQ(grid_min(g), -3.0);
  Grid<float> f = grid_cast<float>(g);
  EXPECT_FLOAT_EQ(f(1, 0), 5.0f);
}

TEST(Grid, RowPointerMatchesIndexing) {
  Grid<int> g(3, 3);
  int v = 0;
  for (auto& x : g) x = v++;
  EXPECT_EQ(g.row(1)[2], g(1, 2));
}

TEST(Grid, EqualityAndShape) {
  Grid<double> a(2, 3, 1.0), b(2, 3, 1.0), c(3, 2, 1.0);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
  b(0, 0) = 2.0;
  EXPECT_FALSE(a == b);
}

TEST(Stats, SummaryOfKnownSample) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Stats, MedianEvenOdd) {
  EXPECT_DOUBLE_EQ(median_of({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median_of({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median_of({}), 0.0);
}

TEST(Eigh, DiagonalMatrix) {
  Grid<cd> a(3, 3);
  a(0, 0) = cd(3.0, 0.0);
  a(1, 1) = cd(-1.0, 0.0);
  a(2, 2) = cd(2.0, 0.0);
  const EighResult r = eigh(a);
  ASSERT_EQ(r.eigenvalues.size(), 3u);
  EXPECT_NEAR(r.eigenvalues[0], -1.0, 1e-12);
  EXPECT_NEAR(r.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(r.eigenvalues[2], 3.0, 1e-12);
}

TEST(Eigh, TwoByTwoAnalytic) {
  // [[2, i], [-i, 2]] has eigenvalues 1 and 3.
  Grid<cd> a(2, 2);
  a(0, 0) = cd(2.0, 0.0);
  a(0, 1) = cd(0.0, 1.0);
  a(1, 0) = cd(0.0, -1.0);
  a(1, 1) = cd(2.0, 0.0);
  const EighResult r = eigh(a);
  EXPECT_NEAR(r.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(r.eigenvalues[1], 3.0, 1e-12);
  EXPECT_LT(eigh_residual(a, r), 1e-10);
}

TEST(Eigh, ResidualSmallOnRandomMatrices) {
  Rng rng(19);
  for (int n : {1, 2, 3, 5, 8, 17, 40}) {
    const Grid<cd> a = random_hermitian(n, rng);
    const EighResult r = eigh(a);
    EXPECT_LT(eigh_residual(a, r), 1e-9 * std::max(1, n)) << "n=" << n;
    for (std::size_t i = 1; i < r.eigenvalues.size(); ++i) {
      EXPECT_LE(r.eigenvalues[i - 1], r.eigenvalues[i] + 1e-12);
    }
  }
}

TEST(Eigh, EigenvectorsOrthonormal) {
  Rng rng(23);
  const int n = 20;
  const Grid<cd> a = random_hermitian(n, rng);
  const EighResult r = eigh(a);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      cd dot{};
      for (int k = 0; k < n; ++k)
        dot += std::conj(r.eigenvectors(k, i)) * r.eigenvectors(k, j);
      EXPECT_NEAR(std::abs(dot), i == j ? 1.0 : 0.0, 1e-9) << i << "," << j;
    }
  }
}

TEST(Eigh, MatchesJacobiEigenvalues) {
  Rng rng(31);
  const int n = 24;
  const Grid<cd> a = random_hermitian(n, rng);
  const EighResult h = eigh(a);
  const EighResult j = eigh_jacobi(a);
  ASSERT_EQ(h.eigenvalues.size(), j.eigenvalues.size());
  for (std::size_t i = 0; i < h.eigenvalues.size(); ++i) {
    EXPECT_NEAR(h.eigenvalues[i], j.eigenvalues[i], 1e-8);
  }
  EXPECT_LT(eigh_residual(a, j), 1e-8);
}

TEST(Eigh, TraceAndSumOfEigenvaluesAgree) {
  Rng rng(37);
  const int n = 15;
  const Grid<cd> a = random_hermitian(n, rng);
  const EighResult r = eigh(a);
  double trace = 0.0, sum = 0.0;
  for (int i = 0; i < n; ++i) trace += a(i, i).real();
  for (double w : r.eigenvalues) sum += w;
  EXPECT_NEAR(trace, sum, 1e-9);
}

TEST(Eigh, PsdRankOneSums) {
  // Gram-like accumulation (as the TCC builder does) must yield
  // non-negative eigenvalues.
  Rng rng(41);
  const int n = 12;
  Grid<cd> a(n, n, cd(0.0, 0.0));
  for (int s = 0; s < 5; ++s) {
    std::vector<cd> v(n);
    for (auto& x : v) x = cd(rng.normal(), rng.normal());
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) a(i, j) += v[i] * std::conj(v[j]);
  }
  const EighResult r = eigh(a);
  for (double w : r.eigenvalues) EXPECT_GE(w, -1e-9);
  // Rank is at most 5.
  int positive = 0;
  for (double w : r.eigenvalues)
    if (w > 1e-9) ++positive;
  EXPECT_LE(positive, 5);
}

TEST(Eigh, DegenerateEigenvaluesHandled) {
  // Identity has a fully degenerate spectrum.
  const int n = 6;
  Grid<cd> a(n, n);
  for (int i = 0; i < n; ++i) a(i, i) = cd(1.0, 0.0);
  const EighResult r = eigh(a);
  for (double w : r.eigenvalues) EXPECT_NEAR(w, 1.0, 1e-12);
  EXPECT_LT(eigh_residual(a, r), 1e-10);
}

TEST(Eigh, RejectsNonSquare) {
  Grid<cd> a(2, 3);
  EXPECT_THROW(eigh(a), check_error);
  EXPECT_THROW(eigh_jacobi(a), check_error);
}

class EighSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(EighSizeSweep, ResidualAndOrthogonality) {
  Rng rng(100 + GetParam());
  const int n = GetParam();
  const Grid<cd> a = random_hermitian(n, rng);
  const EighResult r = eigh(a);
  EXPECT_LT(eigh_residual(a, r), 1e-9 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EighSizeSweep,
                         ::testing::Values(2, 4, 9, 16, 25, 49, 64, 100));

}  // namespace
}  // namespace nitho
