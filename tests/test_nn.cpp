// Tests for the autodiff engine: forward values against references,
// numerical gradient checks for every op, optimizers and serialization.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "litho/simulator.hpp"
#include "nn/autodiff.hpp"
#include "nn/ops.hpp"
#include "nn/ops_conv.hpp"
#include "nn/ops_fft.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"

namespace nitho::nn {
namespace {

using LossFn = std::function<Var(const std::vector<Var>&)>;

std::vector<Var> as_leaves(const std::vector<Tensor>& ts) {
  std::vector<Var> leaves;
  for (const Tensor& t : ts) leaves.push_back(make_leaf(t, true));
  return leaves;
}

// Central-difference gradient check of a scalar loss built by f.
void expect_gradcheck(const std::vector<Tensor>& init, const LossFn& f,
                      float eps = 1e-2f, float tol = 3e-2f) {
  std::vector<Var> leaves = as_leaves(init);
  Var loss = f(leaves);
  ASSERT_EQ(loss->value.numel(), 1);
  backward(loss);

  for (std::size_t li = 0; li < init.size(); ++li) {
    ASSERT_EQ(leaves[li]->grad.numel(), leaves[li]->value.numel())
        << "no gradient reached leaf " << li;
    for (std::int64_t i = 0; i < init[li].numel(); ++i) {
      auto eval = [&](float delta) {
        std::vector<Tensor> perturbed = init;
        perturbed[li][i] += delta;
        std::vector<Var> pl = as_leaves(perturbed);
        return f(pl)->value[0];
      };
      const float numeric = (eval(eps) - eval(-eps)) / (2.0f * eps);
      const float analytic = leaves[li]->grad[i];
      EXPECT_NEAR(analytic, numeric, tol * (1.0f + std::abs(analytic) +
                                            std::abs(numeric)))
          << "leaf " << li << " elem " << i;
    }
  }
}

Tensor random_tensor(std::vector<int> shape, Rng& rng, float scale = 1.0f,
                     float offset = 0.0f) {
  Tensor t(std::move(shape));
  for (std::int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.normal(0.0, scale)) + offset;
  return t;
}

TEST(Tensor, ShapeAndReshape) {
  Tensor t({2, 3, 2});
  EXPECT_EQ(t.numel(), 12);
  EXPECT_EQ(t.dim(1), 3);
  Tensor r = t.reshaped({6, 2});
  EXPECT_EQ(r.dim(0), 6);
  EXPECT_THROW(t.reshaped({5, 2}), check_error);
  EXPECT_EQ(t.shape_str(), "[2,3,2]");
}

TEST(Autodiff, SimpleChainRule) {
  Tensor x({3});
  x[0] = 1.0f;
  x[1] = -2.0f;
  x[2] = 0.5f;
  Var vx = make_leaf(x, true);
  Var loss = sum(square(vx));
  backward(loss);
  EXPECT_FLOAT_EQ(loss->value[0], 1.0f + 4.0f + 0.25f);
  EXPECT_FLOAT_EQ(vx->grad[0], 2.0f);
  EXPECT_FLOAT_EQ(vx->grad[1], -4.0f);
  EXPECT_FLOAT_EQ(vx->grad[2], 1.0f);
}

TEST(Autodiff, DiamondGraphAccumulates) {
  Tensor x({1});
  x[0] = 3.0f;
  Var vx = make_leaf(x, true);
  Var a = scale(vx, 2.0f);
  Var b = scale(vx, 5.0f);
  Var loss = sum(add(a, b));  // d/dx (2x + 5x) = 7
  backward(loss);
  EXPECT_FLOAT_EQ(vx->grad[0], 7.0f);
}

TEST(Autodiff, ConstantsGetNoGradient) {
  Var c = make_leaf(Tensor({2}, 1.0f), false);
  Var p = make_leaf(Tensor({2}, 2.0f), true);
  Var loss = sum(mul(c, p));
  backward(loss);
  EXPECT_EQ(c->grad.numel(), 0);
  EXPECT_EQ(p->grad.numel(), 2);
}

TEST(Autodiff, BackwardRequiresScalar) {
  Var p = make_leaf(Tensor({3}, 1.0f), true);
  EXPECT_THROW(backward(p), check_error);
}

TEST(GradCheck, ElementwiseOps) {
  Rng rng(1);
  const std::vector<Tensor> init = {random_tensor({2, 3}, rng, 1.0f, 0.3f),
                                    random_tensor({2, 3}, rng, 1.0f, -0.2f)};
  expect_gradcheck(init, [](const std::vector<Var>& v) {
    Var t = add(v[0], v[1]);
    t = mul(t, sub(v[0], v[1]));
    t = add(t, scale(v[0], 0.5f));
    return mean(square(t));
  });
}

TEST(GradCheck, Activations) {
  Rng rng(2);
  // Keep values away from the ReLU kink for clean finite differences.
  Tensor x = random_tensor({3, 4}, rng, 1.0f);
  for (std::int64_t i = 0; i < x.numel(); ++i)
    if (std::abs(x[i]) < 0.15f) x[i] = 0.3f;
  expect_gradcheck({x}, [](const std::vector<Var>& v) {
    Var a = relu(v[0]);
    Var b = leaky_relu(v[0], 0.2f);
    Var c = sigmoid(v[0]);
    Var d = tanh_op(v[0]);
    return mean(add(add(a, b), add(c, d)));
  });
}

TEST(GradCheck, BiasAndReductions) {
  Rng rng(3);
  const std::vector<Tensor> init = {random_tensor({4, 3, 2}, rng),
                                    random_tensor({3, 2}, rng)};
  expect_gradcheck(init, [](const std::vector<Var>& v) {
    return mean(square(add_bias(v[0], v[1])));
  });
}

TEST(GradCheck, MseLoss) {
  Rng rng(4);
  Tensor target = random_tensor({3, 3}, rng);
  expect_gradcheck({random_tensor({3, 3}, rng)},
                   [target](const std::vector<Var>& v) {
                     return mse_loss(v[0], target);
                   });
}

TEST(Matmul, KnownProduct) {
  Tensor a({2, 2});
  a[0] = 1;
  a[1] = 2;
  a[2] = 3;
  a[3] = 4;
  Tensor b({2, 2});
  b[0] = 5;
  b[1] = 6;
  b[2] = 7;
  b[3] = 8;
  Var out = matmul(make_leaf(a), make_leaf(b));
  EXPECT_FLOAT_EQ(out->value[0], 19);
  EXPECT_FLOAT_EQ(out->value[1], 22);
  EXPECT_FLOAT_EQ(out->value[2], 43);
  EXPECT_FLOAT_EQ(out->value[3], 50);
}

TEST(GradCheck, Matmul) {
  Rng rng(5);
  const std::vector<Tensor> init = {random_tensor({3, 4}, rng),
                                    random_tensor({4, 2}, rng)};
  expect_gradcheck(init, [](const std::vector<Var>& v) {
    return mean(square(matmul(v[0], v[1])));
  });
}

TEST(Cmatmul, MatchesComplexReference) {
  Rng rng(6);
  const int m = 3, k = 4, n = 2;
  Tensor a = random_tensor({m, k, 2}, rng);
  Tensor b = random_tensor({k, n, 2}, rng);
  Var out = cmatmul(make_leaf(a), make_leaf(b));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      std::complex<float> acc{};
      for (int p = 0; p < k; ++p) {
        const std::complex<float> av(a[(i * k + p) * 2], a[(i * k + p) * 2 + 1]);
        const std::complex<float> bv(b[(p * n + j) * 2], b[(p * n + j) * 2 + 1]);
        acc += av * bv;
      }
      EXPECT_NEAR(out->value[(i * n + j) * 2], acc.real(), 1e-4);
      EXPECT_NEAR(out->value[(i * n + j) * 2 + 1], acc.imag(), 1e-4);
    }
  }
}

TEST(GradCheck, Cmatmul) {
  Rng rng(7);
  const std::vector<Tensor> init = {random_tensor({2, 3, 2}, rng),
                                    random_tensor({3, 2, 2}, rng)};
  expect_gradcheck(init, [](const std::vector<Var>& v) {
    return mean(square(cmatmul(v[0], v[1])));
  });
}

TEST(GradCheck, CmulConstWithBroadcast) {
  Rng rng(8);
  Tensor c = random_tensor({3, 3, 2}, rng);
  expect_gradcheck({random_tensor({2, 3, 3, 2}, rng)},
                   [c](const std::vector<Var>& v) {
                     return mean(square(cmul_const(v[0], c)));
                   });
}

TEST(GradCheck, ShapeOps) {
  Rng rng(9);
  const std::vector<Tensor> init = {random_tensor({2, 3, 2}, rng),
                                    random_tensor({1, 3, 2}, rng)};
  expect_gradcheck(init, [](const std::vector<Var>& v) {
    Var t = concat0(v[0], v[1]);           // [3,3,2]
    t = transpose01(t);                     // [3,3,2]
    t = slice0(t, 1, 3);                    // [2,3,2]
    t = reshape(t, {12});
    return mean(square(t));
  });
}

TEST(GradCheck, SocsFieldAndIntensity) {
  Rng rng(10);
  Tensor spectrum = random_tensor({3, 3, 2}, rng, 0.3f);
  const std::vector<Tensor> init = {random_tensor({2, 3, 3, 2}, rng, 0.5f)};
  Tensor target({8, 8});
  for (std::int64_t i = 0; i < target.numel(); ++i)
    target[i] = static_cast<float>(rng.uniform());
  expect_gradcheck(init, [spectrum, target](const std::vector<Var>& v) {
    Var fields = socs_field(v[0], spectrum, 8);
    return mse_loss(abs2_sum0(fields), target);
  });
}

TEST(SocsField, MatchesPhysicsSubstrate) {
  // The differentiable SOCS path must agree with litho::socs_aerial on the
  // same kernels and spectrum — this pins all FFT scaling conventions.
  Rng rng(11);
  const int r = 3, n = 5, out = 16;
  Tensor kt = random_tensor({r, n, n, 2}, rng, 0.5f);
  Tensor st = random_tensor({n, n, 2}, rng, 0.3f);
  std::vector<Grid<cd>> kernels;
  Grid<cd> spectrum(n, n);
  for (int i = 0; i < r; ++i) {
    Grid<cd> k(n, n);
    for (int a = 0; a < n * n; ++a) {
      k[a] = cd(kt[(i * n * n + a) * 2], kt[(i * n * n + a) * 2 + 1]);
    }
    kernels.push_back(std::move(k));
  }
  for (int a = 0; a < n * n; ++a) spectrum[a] = cd(st[a * 2], st[a * 2 + 1]);

  const Grid<double> expected = socs_aerial(kernels, spectrum, out);
  Var fields = socs_field(make_leaf(kt), st, out);
  Var intensity = abs2_sum0(fields);
  for (int a = 0; a < out * out; ++a) {
    EXPECT_NEAR(intensity->value[a], expected[a],
                1e-3 * (1.0 + std::abs(expected[a])))
        << a;
  }
}

// The batched training ops must reproduce the per-mask graph chain bit for
// bit: same forward values, same loss, and — because the batched backward
// accumulates the batch in descending order, matching the reverse
// topological order of the chained graph — the same kernel gradients.
void expect_batched_matches_chain(int batch, int r, int n, int out_px) {
  Rng rng(23);
  Tensor kt = random_tensor({r, n, n, 2}, rng, 0.5f);
  Tensor spectra = random_tensor({batch, n, n, 2}, rng, 0.3f);
  Tensor targets = random_tensor({batch, out_px, out_px}, rng, 0.2f, 0.5f);

  // Legacy: one socs_field/abs2_sum0/mse_loss chain per sample.
  Var k_legacy = make_leaf(kt, true);
  Var loss_legacy;
  const std::int64_t splane = static_cast<std::int64_t>(n) * n * 2;
  const std::int64_t tplane = static_cast<std::int64_t>(out_px) * out_px;
  std::vector<Var> preds;
  for (int b = 0; b < batch; ++b) {
    Tensor spec({n, n, 2});
    for (std::int64_t i = 0; i < splane; ++i) spec[i] = spectra[b * splane + i];
    Tensor tgt({out_px, out_px});
    for (std::int64_t i = 0; i < tplane; ++i) tgt[i] = targets[b * tplane + i];
    Var pred = abs2_sum0(socs_field(k_legacy, spec, out_px));
    preds.push_back(pred);
    Var l = mse_loss(pred, tgt);
    loss_legacy = loss_legacy ? add(loss_legacy, l) : l;
  }
  backward(loss_legacy);

  // Batched: one graph over the stacked constants.
  Var k_batched = make_leaf(kt, true);
  Var fields = socs_field_batch(k_batched, spectra, out_px);
  Var pred_b = abs2_sum0_batch(fields);
  Var loss_batched = mse_loss_batch_ordered(pred_b, targets);
  backward(loss_batched);

  EXPECT_EQ(loss_legacy->value[0], loss_batched->value[0]);
  for (int b = 0; b < batch; ++b) {
    const Tensor& pv = preds[static_cast<std::size_t>(b)]->value;
    for (std::int64_t i = 0; i < tplane; ++i) {
      ASSERT_EQ(pv[i], pred_b->value[b * tplane + i])
          << "intensity sample " << b << " elem " << i;
    }
  }
  ASSERT_EQ(k_legacy->grad.numel(), k_batched->grad.numel());
  for (std::int64_t i = 0; i < k_legacy->grad.numel(); ++i) {
    ASSERT_EQ(k_legacy->grad[i], k_batched->grad[i]) << "kernel grad " << i;
  }
}

TEST(BatchedSocs, BitIdenticalToPerMaskChainPow2) {
  expect_batched_matches_chain(/*batch=*/3, /*r=*/2, /*n=*/5, /*out_px=*/16);
}

TEST(BatchedSocs, BitIdenticalToPerMaskChainBluestein) {
  // out_px 12 and 15 are non-pow2: the float Bluestein plans and their
  // workspace scratch are exercised.
  expect_batched_matches_chain(3, 2, 5, 12);
  expect_batched_matches_chain(2, 3, 5, 15);
}

TEST(BatchedSocs, SingleSampleBatchDegeneratesToChain) {
  expect_batched_matches_chain(1, 2, 3, 8);
}

TEST(BatchedSocs, BitIdenticalUnderWorkerPool) {
  // Force the shared pool on (this box is 1-core, where parallel_for runs
  // inline): the batched backward's per-kernel tasks and the workspace
  // pool must not change any bit.
  set_parallel_workers(4);
  expect_batched_matches_chain(3, 5, 5, 16);
  set_parallel_workers(0);
}

TEST(GradCheck, BatchedSocsPipeline) {
  Rng rng(29);
  Tensor spectra = random_tensor({2, 3, 3, 2}, rng, 0.3f);
  const std::vector<Tensor> init = {random_tensor({2, 3, 3, 2}, rng, 0.5f)};
  Tensor targets = random_tensor({2, 8, 8}, rng, 0.2f, 0.5f);
  expect_gradcheck(init, [spectra, targets](const std::vector<Var>& v) {
    Var pred = abs2_sum0_batch(socs_field_batch(v[0], spectra, 8));
    return scale(mse_loss_batch_ordered(pred, targets), 0.5f);
  });
}

TEST(GraphArena, RecyclesNodesAndBuffersWithoutChangingResults) {
  Rng rng(31);
  const Tensor kt = random_tensor({2, 3, 3, 2}, rng, 0.5f);
  const Tensor spectra = random_tensor({2, 3, 3, 2}, rng, 0.3f);
  const Tensor targets = random_tensor({2, 8, 8}, rng, 0.2f, 0.5f);

  auto run_step = [&](const Tensor& k) {
    Var leaf = make_leaf(k, true);
    Var loss = mse_loss_batch_ordered(
        abs2_sum0_batch(socs_field_batch(leaf, spectra, 8)), targets);
    backward(loss);
    return std::pair<float, Tensor>(loss->value[0], leaf->grad);
  };

  const auto [plain_loss, plain_grad] = run_step(kt);

  GraphArena arena;
  std::size_t warm_capacity = 0;
  for (int step = 0; step < 4; ++step) {
    arena.reset();
    GraphArena::Scope scope(arena);
    const auto [loss, grad] = run_step(kt);
    EXPECT_EQ(loss, plain_loss) << "step " << step;
    ASSERT_EQ(grad.numel(), plain_grad.numel());
    for (std::int64_t i = 0; i < grad.numel(); ++i) {
      ASSERT_EQ(grad[i], plain_grad[i]) << "step " << step << " elem " << i;
    }
    if (step == 1) warm_capacity = arena.node_capacity();
  }
  // After warmup the pool stops growing and buffers actually recycle.
  EXPECT_EQ(arena.node_capacity(), warm_capacity);
  EXPECT_GT(arena.tensors_reused(), 0u);
}

TEST(GraphArena, EvictsExternallyHeldNodes) {
  GraphArena arena;
  Var kept;
  {
    GraphArena::Scope scope(arena);
    kept = make_leaf(Tensor({3}, 2.0f), false);
  }
  arena.reset();  // kept is still referenced: evicted, not recycled
  EXPECT_EQ(kept->value.numel(), 3);
  EXPECT_EQ(kept->value[0], 2.0f);
  {
    GraphArena::Scope scope(arena);
    Var fresh = make_leaf(Tensor({3}, 7.0f), false);
    EXPECT_NE(fresh.get(), kept.get());
  }
  arena.reset();
  EXPECT_EQ(kept->value[2], 2.0f);
}

TEST(GradCheck, Fft2cCrop) {
  Rng rng(20);
  expect_gradcheck({random_tensor({8, 8}, rng)},
                   [](const std::vector<Var>& v) {
                     return mean(square(fft2c_crop(v[0], 5)));
                   });
}

TEST(Fft2cCrop, DcIsMean) {
  Rng rng(21);
  Tensor mask = random_tensor({8, 8}, rng, 1.0f, 0.5f);
  Var spec = fft2c_crop(make_leaf(mask), 3);
  float mean_v = 0.0f;
  for (std::int64_t i = 0; i < mask.numel(); ++i) mean_v += mask[i];
  mean_v /= 64.0f;
  // Centered crop: DC sits at (1,1) of the 3x3 crop.
  EXPECT_NEAR(spec->value[(1 * 3 + 1) * 2], mean_v, 1e-5);
  EXPECT_NEAR(spec->value[(1 * 3 + 1) * 2 + 1], 0.0f, 1e-5);
}

TEST(GradCheck, SocsFieldFromSpectrum) {
  Rng rng(22);
  Tensor kernels = random_tensor({2, 3, 3, 2}, rng, 0.5f);
  expect_gradcheck({random_tensor({3, 3, 2}, rng, 0.3f)},
                   [kernels](const std::vector<Var>& v) {
                     return mean(square(
                         abs2_sum0(socs_field_from_spectrum(v[0], kernels, 8))));
                   });
}

TEST(SocsFieldFromSpectrum, MatchesKernelSidePath) {
  // Swapping which argument is differentiable must not change the value.
  Rng rng(23);
  Tensor kernels = random_tensor({3, 5, 5, 2}, rng, 0.5f);
  Tensor spectrum = random_tensor({5, 5, 2}, rng, 0.3f);
  Var a = socs_field(make_leaf(kernels), spectrum, 16);
  Var b = socs_field_from_spectrum(make_leaf(spectrum), kernels, 16);
  for (std::int64_t i = 0; i < a->value.numel(); ++i) {
    EXPECT_NEAR(a->value[i], b->value[i], 1e-5);
  }
}

TEST(GradCheck, SpectralConv) {
  Rng rng(12);
  const std::vector<Tensor> init = {random_tensor({2, 8, 8}, rng, 0.5f),
                                    random_tensor({2, 2, 3, 3, 2}, rng, 0.5f)};
  expect_gradcheck(init, [](const std::vector<Var>& v) {
    return mean(square(spectral_conv2d(v[0], v[1])));
  });
}

TEST(SpectralConv, DcWeightScalesMean) {
  // With a single mode (DC) and unit weight, the op averages the input.
  Tensor x({1, 4, 4});
  Rng rng(13);
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = static_cast<float>(rng.uniform());
  Tensor w({1, 1, 1, 1, 2});
  w[0] = 1.0f;  // real unit weight
  Var y = spectral_conv2d(make_leaf(x), make_leaf(w));
  float mean_x = 0.0f;
  for (std::int64_t i = 0; i < x.numel(); ++i) mean_x += x[i];
  mean_x /= 16.0f;
  for (int i = 0; i < 16; ++i) EXPECT_NEAR(y->value[i], mean_x, 1e-5);
}

TEST(GradCheck, Conv2d) {
  Rng rng(14);
  const std::vector<Tensor> init = {random_tensor({2, 5, 5}, rng, 0.5f),
                                    random_tensor({3, 2, 3, 3}, rng, 0.5f),
                                    random_tensor({3}, rng, 0.5f)};
  expect_gradcheck(init, [](const std::vector<Var>& v) {
    return mean(square(conv2d(v[0], v[1], v[2])));
  });
}

TEST(Conv2d, IdentityKernel) {
  Rng rng(15);
  Tensor x = random_tensor({1, 4, 4}, rng);
  Tensor w({1, 1, 3, 3}, 0.0f);
  w[4] = 1.0f;  // center tap
  Tensor b({1}, 0.0f);
  Var y = conv2d(make_leaf(x), make_leaf(w), make_leaf(b));
  for (std::int64_t i = 0; i < x.numel(); ++i)
    EXPECT_FLOAT_EQ(y->value[i], x[i]);
}

TEST(GradCheck, PoolAndUpsample) {
  Rng rng(16);
  expect_gradcheck({random_tensor({2, 4, 4}, rng)},
                   [](const std::vector<Var>& v) {
                     return mean(square(upsample2(avg_pool2(v[0]))));
                   });
}

TEST(Optimizer, AdamMinimizesQuadratic) {
  Tensor x({4}, 5.0f);
  Var vx = make_leaf(x, true);
  Adam opt({vx}, 0.2f);
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    Var loss = sum(square(vx));
    backward(loss);
    opt.step();
  }
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(vx->value[i], 0.0f, 1e-2f);
}

TEST(Optimizer, SgdWithMomentumMinimizes) {
  Tensor x({2}, 3.0f);
  Var vx = make_leaf(x, true);
  Sgd opt({vx}, 0.05f, 0.9f);
  for (int i = 0; i < 300; ++i) {
    opt.zero_grad();
    Var loss = sum(square(vx));
    backward(loss);
    opt.step();
  }
  for (int i = 0; i < 2; ++i) EXPECT_NEAR(vx->value[i], 0.0f, 1e-2f);
}

TEST(Optimizer, RejectsConstants) {
  Var c = make_leaf(Tensor({1}), false);
  EXPECT_THROW(Adam({c}), check_error);
}

TEST(Serialize, RoundTrip) {
  Rng rng(17);
  Var a = make_leaf(random_tensor({3, 2}, rng), true);
  Var b = make_leaf(random_tensor({4}, rng), true);
  const std::vector<Var> params = {a, b};
  const std::vector<float> blob = dump_parameters(params);
  EXPECT_EQ(blob.size(), 10u);
  EXPECT_EQ(parameter_count(params), 10);
  EXPECT_EQ(parameter_bytes(params), 40);

  Var a2 = make_leaf(Tensor({3, 2}), true);
  Var b2 = make_leaf(Tensor({4}), true);
  load_parameters(std::vector<Var>{a2, b2}, blob);
  for (int i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(a2->value[i], a->value[i]);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(b2->value[i], b->value[i]);

  EXPECT_THROW(load_parameters(std::vector<Var>{a2}, blob), check_error);
}

// --------------------------------------------------------------------------
// Double-precision finite differences for the complex MLP building block
// (CLinear -> CReLU, i.e. cmatmul + add_bias + relu).  The float-based
// expect_gradcheck above can only certify ~3e-2; here the loss is replicated
// in double so central differences resolve the gradient to ~1e-9 and the
// float backprop must match to 1e-5 on both real and imaginary slots.
// --------------------------------------------------------------------------

// Loss of the block in double: L = sum |CReLU(x w + b)|^2 over all points.
// x: [P, in, 2], w: [in, out, 2], b: [out, 2], all flattened row-major.
// min_preact (optional) receives the smallest |component| entering the ReLU
// so tests can assert the evaluation point is safely away from the kink.
double complex_block_loss(const std::vector<double>& x,
                          const std::vector<double>& w,
                          const std::vector<double>& b, int P, int in, int out,
                          double* min_preact = nullptr) {
  double loss = 0.0;
  double min_abs = std::numeric_limits<double>::infinity();
  for (int p = 0; p < P; ++p) {
    for (int o = 0; o < out; ++o) {
      double re = b[2 * o], im = b[2 * o + 1];
      for (int i = 0; i < in; ++i) {
        const double xr = x[(p * in + i) * 2], xi = x[(p * in + i) * 2 + 1];
        const double wr = w[(i * out + o) * 2], wi = w[(i * out + o) * 2 + 1];
        re += xr * wr - xi * wi;
        im += xr * wi + xi * wr;
      }
      min_abs = std::min({min_abs, std::abs(re), std::abs(im)});
      const double ar = re > 0.0 ? re : 0.0;  // CReLU acts per component
      const double ai = im > 0.0 ? im : 0.0;
      loss += ar * ar + ai * ai;
    }
  }
  if (min_preact) *min_preact = min_abs;
  return loss;
}

TEST(GradCheck, ComplexBlockRealImagPerturbationTight) {
  const int P = 4, in = 3, out = 3;
  Rng rng(21);
  const std::vector<Tensor> init = {random_tensor({P, in, 2}, rng),
                                    random_tensor({in, out, 2}, rng, 0.5f),
                                    random_tensor({out, 2}, rng, 0.5f)};

  std::vector<Var> leaves = as_leaves(init);
  Var loss = sum(square(relu(add_bias(cmatmul(leaves[0], leaves[1]), leaves[2]))));
  backward(loss);

  // Double copies of the float parameters (exact conversion).
  std::vector<std::vector<double>> params(3);
  for (int li = 0; li < 3; ++li) {
    for (std::int64_t i = 0; i < init[li].numel(); ++i) {
      params[li].push_back(static_cast<double>(init[li][i]));
    }
  }
  // The check is only valid away from the ReLU kink; guard against future
  // seed changes silently landing on it.
  double min_preact = 0.0;
  complex_block_loss(params[0], params[1], params[2], P, in, out, &min_preact);
  ASSERT_GT(min_preact, 1e-3);

  const double eps = 1e-6;
  for (int li = 0; li < 3; ++li) {
    for (std::size_t i = 0; i < params[li].size(); ++i) {
      auto eval = [&](double delta) {
        std::vector<std::vector<double>> p = params;
        p[li][i] += delta;
        return complex_block_loss(p[0], p[1], p[2], P, in, out);
      };
      const double fd = (eval(eps) - eval(-eps)) / (2.0 * eps);
      const double analytic = static_cast<double>(leaves[li]->grad[i]);
      const char* slot = (i % 2 == 0) ? "re" : "im";
      EXPECT_NEAR(analytic, fd, 1e-5 * (1.0 + std::abs(analytic) + std::abs(fd)))
          << "leaf " << li << " elem " << i << " (" << slot << " slot)";
    }
  }
}

}  // namespace
}  // namespace nitho::nn
