// Tests for the OPC stack: the rule-based decoration fixes (SRAF/SRAF
// clearance, inverted-bar guard, tile clipping), the EPE metric, and the
// batched OpcEngine contract — per-mask bit-identity, checkpoint/restore
// bit-identity, and serving OPC jobs next to aerial traffic through
// LithoServer.  This suite also runs under the `tsan` preset.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "fft/spectral.hpp"
#include "layout/datasets.hpp"
#include "layout/opc.hpp"
#include "layout/raster.hpp"
#include "litho/golden.hpp"
#include "metrics/metrics.hpp"
#include "nitho/fast_litho.hpp"
#include "nn/ops.hpp"
#include "nn/ops_fft.hpp"
#include "nn/optimizer.hpp"
#include "opc/engine.hpp"
#include "serve/server.hpp"
#include "support/test_support.hpp"

namespace nitho {
namespace {

using opc::OpcCheckpoint;
using opc::OpcConfig;
using opc::OpcEngine;
using serve::LithoServer;
using serve::OpcJobHandle;
using serve::OpcJobOptions;
using serve::OpcJobResult;
using serve::ServeOptions;
using test::make_rng;
using test::random_kernels;
using test::random_mask;

// ---------------------------------------------------------------------------
// Rule-based OPC (layout/opc.cpp).
// ---------------------------------------------------------------------------

TEST(RuleOpc, SerifsAddedAtEveryCorner) {
  Layout in;
  in.tile_nm = 1024;
  in.main.push_back(Rect{200, 200, 400, 400});
  OpcRules rules;
  rules.sraf_width_nm = 0;  // isolate the serif stage
  const Layout out = apply_rule_based_opc(in, rules);
  // Biased body + one serif per corner of the biased rect.
  ASSERT_EQ(out.main.size(), 5u);
  EXPECT_EQ(out.main[0], (Rect{194, 194, 406, 406}));
  const int h = rules.serif_size_nm / 2;
  for (int cx : {194, 406}) {
    for (int cy : {194, 406}) {
      const Rect serif{cx - h, cy - h, cx - h + rules.serif_size_nm,
                       cy - h + rules.serif_size_nm};
      EXPECT_NE(std::find(out.main.begin(), out.main.end(), serif),
                out.main.end())
          << "missing serif at (" << cx << ", " << cy << ")";
    }
  }
}

TEST(RuleOpc, SrafsClearEachOtherNotJustMains) {
  // Two stacked features whose facing assist bars pass every main-feature
  // clearance test but overlap *each other*: A's bottom bar spans
  // y [258, 276), B's top bar y [254, 272).  Before SRAFs were checked
  // against already placed SRAFs both survived; now the later one drops.
  Layout in;
  in.tile_nm = 1024;
  in.main.push_back(Rect{100, 100, 400, 200});  // A
  in.main.push_back(Rect{100, 330, 400, 430});  // B
  const Layout out = apply_rule_based_opc(in);

  ASSERT_EQ(out.sraf.size(), 3u);
  EXPECT_EQ(out.sraf[0], (Rect{112, 24, 388, 42}));    // above A
  EXPECT_EQ(out.sraf[1], (Rect{112, 258, 388, 276}));  // below A (kept)
  EXPECT_EQ(out.sraf[2], (Rect{112, 488, 388, 506}));  // below B
  for (std::size_t i = 0; i < out.sraf.size(); ++i) {
    for (std::size_t j = i + 1; j < out.sraf.size(); ++j) {
      EXPECT_FALSE(out.sraf[i].intersects(out.sraf[j]))
          << "SRAFs " << i << " and " << j << " overlap";
    }
  }
}

TEST(RuleOpc, InvertedBarsNeverPlacedOrBlocking) {
  // A feature barely above sraf_min_edge but narrower than twice the bar
  // width emits *inverted* horizontal bars (x0 > x1).  An inverted rect
  // never intersects anything, so before the valid() guard it sailed
  // through the clearance checks into out.sraf — invisible in the output
  // (clip_to_tile drops it) but poisoning later candidates, whose
  // *expanded* rect does intersect the phantom.
  OpcRules rules;
  rules.sraf_min_edge_nm = 16;
  Layout in;
  in.tile_nm = 1024;
  in.main.push_back(Rect{500, 100, 520, 400});  // narrow: phantom emitter
  in.main.push_back(Rect{300, 520, 700, 560});  // its top bar meets the phantom
  const Layout out = apply_rule_based_opc(in, rules);

  for (const Rect& r : out.sraf) {
    EXPECT_TRUE(r.valid()) << "invalid SRAF in output";
  }
  // Narrow feature: vertical bars only; wide feature: all four.
  ASSERT_EQ(out.sraf.size(), 6u);
  const Rect wide_top{312, 444, 688, 462};
  EXPECT_NE(std::find(out.sraf.begin(), out.sraf.end(), wide_top),
            out.sraf.end())
      << "bar blocked by a phantom inverted SRAF";
}

TEST(RuleOpc, ClipToTileClampsAndDropsDegenerates) {
  Layout l;
  l.tile_nm = 100;
  l.main.push_back(Rect{-10, -10, 50, 50});   // overhangs the corner
  l.main.push_back(Rect{100, 10, 120, 30});   // starts exactly at the edge
  l.sraf.push_back(Rect{90, 20, 130, 40});    // clipped to the edge
  l.sraf.push_back(Rect{-30, -30, -5, -5});   // fully outside
  l.sraf.push_back(Rect{40, 60, 30, 70});     // inverted
  l.clip_to_tile();
  ASSERT_EQ(l.main.size(), 1u);
  EXPECT_EQ(l.main[0], (Rect{0, 0, 50, 50}));
  ASSERT_EQ(l.sraf.size(), 1u);
  EXPECT_EQ(l.sraf[0], (Rect{90, 20, 100, 40}));
}

TEST(RuleOpc, GoldenPrintFidelitySmoke) {
  // End to end: decorate a B1 tile, rasterize, print through the golden
  // simulator, and check the decoration did not wreck fidelity.
  LithoConfig cfg;
  cfg.tile_nm = 512;
  cfg.raster_px = 512;
  cfg.analysis_px = 64;
  cfg.sim_px = 32;
  cfg.spectrum_crop = 31;
  cfg.optics.source_oversample = 2;
  cfg.max_rank = 64;
  const GoldenEngine engine(cfg);

  Rng rng = make_rng(42);
  const Layout design = make_b1_layout(cfg.tile_nm, rng);
  const Layout decorated = apply_rule_based_opc(design);
  for (const Rect& r : decorated.all()) {
    EXPECT_TRUE(r.valid());
    EXPECT_TRUE(r.x0 >= 0 && r.y0 >= 0 && r.x1 <= cfg.tile_nm &&
                r.y1 <= cfg.tile_nm);
  }

  const Grid<double> intent =
      binarize(downsample_area(rasterize(design, 1), 512 / 64), 0.5);
  const Sample plain = engine.make_sample(rasterize(design, 1));
  const Sample opcd = engine.make_sample(rasterize(decorated, 1));
  const double fidelity_plain = miou(intent, plain.resist);
  const double fidelity_opc = miou(intent, opcd.resist);
  EXPECT_GT(grid_sum(opcd.resist), 0.0) << "decorated mask printed nothing";
  // Untuned rules trade fidelity for process-window robustness, so this
  // is an integrity smoke, not an improvement claim: both masks must
  // still print the intent recognizably.
  EXPECT_GE(fidelity_plain, 0.5);
  EXPECT_GE(fidelity_opc, 0.5);
}

// ---------------------------------------------------------------------------
// EPE metric.
// ---------------------------------------------------------------------------

Grid<double> block(int n, int r0, int c0, int r1, int c1) {
  Grid<double> g(n, n, 0.0);
  for (int r = r0; r < r1; ++r) {
    for (int c = c0; c < c1; ++c) g(r, c) = 1.0;
  }
  return g;
}

TEST(Epe, ZeroForPerfectPrintAndForEmptyIntent) {
  const Grid<double> intended = block(8, 2, 2, 6, 6);
  EXPECT_DOUBLE_EQ(opc::mean_edge_placement_error(intended, intended), 0.0);
  const Grid<double> empty(8, 8, 0.0);
  EXPECT_DOUBLE_EQ(opc::mean_edge_placement_error(empty, empty), 0.0);
}

TEST(Epe, MissingPrintScoresLineLength) {
  const Grid<double> intended = block(8, 2, 2, 6, 6);
  const Grid<double> printed(8, 8, 0.0);
  // Every intended edge (8 row-scan + 8 column-scan) misses -> length 8.
  EXPECT_DOUBLE_EQ(opc::mean_edge_placement_error(printed, intended), 8.0);
}

TEST(Epe, OnePixelShiftAveragesExactly) {
  const Grid<double> intended = block(8, 2, 2, 6, 6);
  const Grid<double> printed = block(8, 2, 3, 6, 7);  // shifted right by 1
  // Row scans: 4 lines x 2 edges, each 1 px off -> 8 edges, total 8.
  // Column scans: intended col 2 has 2 edges with no printed edge in that
  // column (-> 8 each); cols 3..5 match exactly -> 8 edges, total 16.
  EXPECT_DOUBLE_EQ(opc::mean_edge_placement_error(printed, intended),
                   24.0 / 16.0);
}

// ---------------------------------------------------------------------------
// OpcEngine.
// ---------------------------------------------------------------------------

OpcConfig small_opc_config() {
  OpcConfig cfg;
  cfg.mask_px = 32;
  cfg.sim_px = 16;
  return cfg;
}

std::shared_ptr<const std::vector<Grid<cd>>> shared_kernels(int rank, int kdim,
                                                            std::uint64_t salt) {
  Rng rng = make_rng(salt);
  return std::make_shared<const std::vector<Grid<cd>>>(
      random_kernels(rank, kdim, rng));
}

std::vector<Grid<double>> random_intents(int count, int px, std::uint64_t salt) {
  Rng rng = make_rng(salt);
  std::vector<Grid<double>> out;
  for (int i = 0; i < count; ++i) out.push_back(random_mask(px, px, rng, 0.4));
  return out;
}

/// The legacy per-mask ILT loop (examples/inverse_litho.cpp structure),
/// run to `iters` for one intent — the bit-identity reference.
std::vector<float> per_mask_reference(const std::vector<Grid<cd>>& kernels,
                                      const Grid<double>& intended,
                                      const OpcConfig& cfg, int iters) {
  const int kdim = kernels[0].rows();
  const int s = cfg.mask_px;
  nn::Tensor kt({static_cast<int>(kernels.size()), kdim, kdim, 2});
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    for (std::size_t p = 0; p < kernels[i].size(); ++p) {
      const std::int64_t base =
          static_cast<std::int64_t>((i * kernels[i].size() + p) * 2);
      kt[base] = static_cast<float>(kernels[i][p].real());
      kt[base + 1] = static_cast<float>(kernels[i][p].imag());
    }
  }
  nn::Tensor target({cfg.sim_px, cfg.sim_px});
  const Grid<double> down = downsample_area(intended, s / cfg.sim_px);
  for (std::size_t i = 0; i < down.size(); ++i) {
    target[static_cast<std::int64_t>(i)] =
        down[i] > 0.5 ? cfg.target_bright : cfg.target_dark;
  }
  nn::Tensor theta({s, s});
  for (std::size_t i = 0; i < intended.size(); ++i) {
    theta[static_cast<std::int64_t>(i)] =
        intended[i] > 0.5 ? cfg.theta_init : -cfg.theta_init;
  }
  nn::Var vtheta = nn::make_leaf(theta, true);
  nn::Adam opt({vtheta}, cfg.lr);
  for (int it = 0; it < iters; ++it) {
    opt.zero_grad();
    nn::Var mask = nn::sigmoid(vtheta);
    nn::Var spectrum = nn::fft2c_crop(mask, kdim);
    nn::Var aerial =
        nn::abs2_sum0(nn::socs_field_from_spectrum(spectrum, kt, cfg.sim_px));
    nn::Var fit = nn::mse_loss(aerial, target);
    nn::Var bin = nn::sub(nn::mean(mask), nn::mean(nn::square(mask)));
    nn::Var loss = nn::add(fit, nn::scale(bin, cfg.bin_weight));
    nn::backward(loss);
    opt.step();
  }
  const float* p = vtheta->value.data();
  return std::vector<float>(p, p + vtheta->value.numel());
}

TEST(OpcEngine, BatchedStepBitIdenticalToPerMaskLoop) {
  const auto kernels = shared_kernels(3, 7, 101);
  const OpcConfig cfg = small_opc_config();
  const std::vector<Grid<double>> intents = random_intents(3, cfg.mask_px, 7);
  const int iters = 4;

  OpcEngine engine(kernels, cfg);
  engine.start(intents);
  for (int it = 0; it < iters; ++it) engine.step();
  const std::vector<float> batched = engine.theta();

  const std::size_t n = static_cast<std::size_t>(cfg.mask_px) * cfg.mask_px;
  for (std::size_t b = 0; b < intents.size(); ++b) {
    const std::vector<float> ref =
        per_mask_reference(*kernels, intents[b], cfg, iters);
    ASSERT_EQ(ref.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(batched[b * n + i], ref[i])
          << "theta diverged at mask " << b << " element " << i;
    }
  }
}

TEST(OpcEngine, LossesDecreaseAndMasksBinarize) {
  const auto kernels = shared_kernels(3, 7, 202);
  const OpcConfig cfg = small_opc_config();
  OpcEngine engine(kernels, cfg);
  engine.start(random_intents(2, cfg.mask_px, 8));
  for (int it = 0; it < 12; ++it) engine.step();
  ASSERT_EQ(engine.losses().size(), 12u);
  EXPECT_LT(engine.losses().back(), engine.losses().front());
  EXPECT_TRUE(std::isfinite(engine.mean_epe_px()));
  const std::vector<Grid<double>> masks = engine.masks();
  ASSERT_EQ(masks.size(), 2u);
  for (const Grid<double>& m : masks) {
    EXPECT_EQ(m.rows(), cfg.mask_px);
    for (const double v : m) {
      EXPECT_TRUE(v >= 0.0 && v <= 1.0);
    }
  }
  const std::vector<Grid<double>> prints = engine.printed();
  ASSERT_EQ(prints.size(), 2u);
  EXPECT_EQ(prints[0].rows(), cfg.sim_px);
}

TEST(OpcEngine, CheckpointRestoreResumesBitIdentically) {
  const auto kernels = shared_kernels(3, 7, 303);
  const OpcConfig cfg = small_opc_config();
  const std::vector<Grid<double>> intents = random_intents(2, cfg.mask_px, 9);

  OpcEngine straight(kernels, cfg);
  straight.start(intents);
  for (int it = 0; it < 6; ++it) straight.step();

  OpcEngine first(kernels, cfg);
  first.start(intents);
  for (int it = 0; it < 3; ++it) first.step();
  const std::string path = test::golden_path("opc_checkpoint.bin");
  first.checkpoint().save(path);
  const OpcCheckpoint loaded = OpcCheckpoint::load(path);
  EXPECT_EQ(loaded.iteration, 3);
  EXPECT_EQ(loaded.adam_step, 3);

  // Restore into an engine configured differently: the checkpoint's
  // config must win.
  OpcConfig other = cfg;
  other.lr = 123.0f;
  other.mask_px = 16;
  OpcEngine resumed(kernels, other);
  resumed.restore(loaded);
  EXPECT_EQ(resumed.iteration(), 3);
  for (int it = 0; it < 3; ++it) resumed.step();

  EXPECT_EQ(straight.theta(), resumed.theta());
  EXPECT_EQ(straight.losses(), resumed.losses());
  const OpcCheckpoint a = straight.checkpoint();
  const OpcCheckpoint b = resumed.checkpoint();
  EXPECT_EQ(a.adam_m, b.adam_m);
  EXPECT_EQ(a.adam_v, b.adam_v);
  EXPECT_EQ(a.adam_step, b.adam_step);
}

// ---------------------------------------------------------------------------
// Serving OPC jobs through LithoServer.
// ---------------------------------------------------------------------------

FastLitho serving_litho(std::uint64_t salt) {
  Rng rng = make_rng(salt);
  return FastLitho(random_kernels(2, 5, rng));
}

TEST(ServeOpc, JobCompletesNextToAerialTraffic) {
  FastLitho litho = serving_litho(11);
  const auto kernels = litho.kernels_shared();
  FastLitho reference(kernels);
  LithoServer server(std::move(litho), ServeOptions{});

  OpcJobOptions opts;
  opts.config = small_opc_config();
  opts.iterations = 8;
  opts.epe_every = 4;
  OpcJobHandle job =
      server.submit_opc(random_intents(2, opts.config.mask_px, 21), opts);

  // Aerial traffic stays live (and bit-identical) while the job runs.
  Rng rng = make_rng(99);
  for (int i = 0; i < 16; ++i) {
    Grid<double> mask = random_mask(16, 16, rng);
    const Grid<double> expect = reference.aerial_from_mask(mask, 16);
    std::future<Grid<double>> fut = server.submit(std::move(mask), 16);
    EXPECT_EQ(fut.get(), expect);
  }

  const OpcJobResult result = job.result().get();
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.iterations_done, 8);
  ASSERT_EQ(result.masks.size(), 2u);
  EXPECT_EQ(result.checkpoint.batch, 2);
  const auto progress = job.progress();
  EXPECT_TRUE(progress.done);
  EXPECT_FALSE(progress.cancelled);
  EXPECT_EQ(progress.iteration, 8);
  EXPECT_TRUE(std::isfinite(progress.fit_loss));
  EXPECT_TRUE(std::isfinite(progress.mean_epe_px));  // epe_every hit at 4, 8

  // Served job == local engine on the same snapshot, bit for bit.
  OpcEngine local(kernels, opts.config);
  local.start(random_intents(2, opts.config.mask_px, 21));
  for (int it = 0; it < 8; ++it) local.step();
  EXPECT_EQ(result.checkpoint.theta, local.theta());
}

TEST(ServeOpc, CancelThenResumeLandsExactlyWhereStraightRunDoes) {
  FastLitho litho = serving_litho(12);
  const auto kernels = litho.kernels_shared();
  LithoServer server(std::move(litho), ServeOptions{});

  OpcJobOptions opts;
  opts.config = small_opc_config();
  opts.iterations = 1000000;  // far more than the test ever runs
  OpcJobHandle job =
      server.submit_opc(random_intents(2, opts.config.mask_px, 22), opts);
  while (job.progress().iteration < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  job.cancel();
  const OpcJobResult partial = job.result().get();
  EXPECT_FALSE(partial.completed);
  EXPECT_TRUE(job.progress().cancelled);
  ASSERT_GE(partial.iterations_done, 1);
  ASSERT_EQ(partial.checkpoint.batch, 2);

  const long total = partial.iterations_done + 3;
  OpcJobOptions more = opts;
  more.iterations = total;
  OpcJobHandle resumed = server.resume_opc(partial.checkpoint, more);
  const OpcJobResult final_result = resumed.result().get();
  EXPECT_TRUE(final_result.completed);
  EXPECT_EQ(final_result.iterations_done, total);

  OpcEngine straight(kernels, opts.config);
  straight.start(random_intents(2, opts.config.mask_px, 22));
  for (long it = 0; it < total; ++it) straight.step();
  EXPECT_EQ(final_result.checkpoint.theta, straight.theta());
  EXPECT_EQ(final_result.checkpoint.losses, straight.losses());
}

TEST(ServeOpc, StopResolvesEveryJobFuture) {
  LithoServer server(serving_litho(13), ServeOptions{});
  OpcJobOptions opts;
  opts.config = small_opc_config();
  opts.iterations = 1000000;
  OpcJobHandle a =
      server.submit_opc(random_intents(1, opts.config.mask_px, 23), opts);
  OpcJobHandle b =
      server.submit_opc(random_intents(1, opts.config.mask_px, 24), opts);
  server.stop();
  const OpcJobResult ra = a.result().get();
  const OpcJobResult rb = b.result().get();
  EXPECT_FALSE(ra.completed);
  EXPECT_FALSE(rb.completed);
  EXPECT_TRUE(a.progress().done);
  EXPECT_TRUE(b.progress().done);
  // A started job hands back a resumable checkpoint; an unstarted one
  // reports batch == 0 (resubmit the original request).
  for (const OpcJobResult* r : {&ra, &rb}) {
    if (r->checkpoint.batch > 0) {
      EXPECT_EQ(r->checkpoint.batch, 1);
      EXPECT_EQ(r->checkpoint.iteration, r->iterations_done);
    } else {
      EXPECT_EQ(r->iterations_done, 0);
      EXPECT_TRUE(r->masks.empty());
    }
  }
  EXPECT_THROW(
      server.submit_opc(random_intents(1, opts.config.mask_px, 25), opts),
      check_error);
}

}  // namespace
}  // namespace nitho
