# Negative-compilation harness for the clang thread-safety preset
# (DESIGN.md §14).  Runs one fixture through `clang++ -fsyntax-only
# -Wthread-safety -Werror=thread-safety` and asserts the expected outcome:
#
#   cmake -DCLANGXX=<clang++> -DSRC_DIR=<repo>/src
#         -DCASE=<fixture.cpp> -DEXPECT=FAIL|PASS -P harness.cmake
#
# EXPECT=FAIL additionally requires the diagnostic to be a thread-safety
# one — a fixture that fails to compile for any other reason (a typo, a
# missing include) is a broken test, not a proven violation.

foreach(var CLANGXX SRC_DIR CASE EXPECT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "harness.cmake: -D${var}=... is required")
  endif()
endforeach()

execute_process(
  COMMAND ${CLANGXX} -std=c++20 -fsyntax-only
          -Wthread-safety -Werror=thread-safety
          -I${SRC_DIR} ${CASE}
  RESULT_VARIABLE rv
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(EXPECT STREQUAL "FAIL")
  if(rv EQUAL 0)
    message(FATAL_ERROR
            "expected a thread-safety violation, but ${CASE} compiled clean "
            "— the annotations (or the preset flags) have lost their teeth")
  endif()
  if(NOT err MATCHES "thread-safety" AND NOT err MATCHES "-Wthread-safety")
    message(FATAL_ERROR
            "${CASE} failed to compile, but not with a thread-safety "
            "diagnostic — the fixture is broken, not the invariant:\n${err}")
  endif()
elseif(EXPECT STREQUAL "PASS")
  if(NOT rv EQUAL 0)
    message(FATAL_ERROR
            "control case ${CASE} must compile clean under the preset, "
            "but failed:\n${err}")
  endif()
else()
  message(FATAL_ERROR "harness.cmake: EXPECT must be FAIL or PASS")
endif()
