// Must NOT compile under -Wthread-safety -Werror=thread-safety: calls a
// REQUIRES(mu_) helper without holding the capability.  The ctest harness
// asserts the compiler rejects this with a thread-safety diagnostic.
#include "common/mutex.hpp"

namespace {

class Counter {
 public:
  void bump_without_lock() {
    bump_locked();  // violation: caller does not hold mu_
  }

 private:
  void bump_locked() NITHO_REQUIRES(mu_) { ++n_; }

  nitho::Mutex mu_;
  long n_ NITHO_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump_without_lock();
  return 0;
}
