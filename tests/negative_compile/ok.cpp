// Control case: correctly disciplined code must compile clean under
// -Wthread-safety -Werror=thread-safety, or the FAIL cases prove nothing
// (a harness that rejects everything would also "reject" the violations).
#include "common/mutex.hpp"

namespace {

class Counter {
 public:
  void bump() {
    nitho::LockGuard lk(mu_);
    ++n_;
    bump_locked();
  }
  long value() const {
    nitho::LockGuard lk(mu_);
    return n_;
  }
  void wait_nonzero() {
    nitho::UniqueLock lk(mu_);
    while (n_ == 0) cv_.wait(lk);
  }

 private:
  void bump_locked() NITHO_REQUIRES(mu_) { ++n_; }

  mutable nitho::Mutex mu_;
  nitho::CondVar cv_;
  long n_ NITHO_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return c.value() == 2 ? 0 : 1;
}
