// Must NOT compile under -Wthread-safety -Werror=thread-safety: writes a
// GUARDED_BY field without holding its mutex.  The ctest harness asserts
// the compiler rejects this with a thread-safety diagnostic.
#include "common/mutex.hpp"

namespace {

class Counter {
 public:
  void bump_unlocked() {
    ++n_;  // violation: mu_ is not held
  }

 private:
  nitho::Mutex mu_;
  long n_ NITHO_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump_unlocked();
  return 0;
}
