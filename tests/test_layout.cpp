// Unit tests for src/layout: geometry, rasterization, OPC decoration and the
// four dataset-family generators.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "layout/datasets.hpp"
#include "layout/opc.hpp"
#include "layout/raster.hpp"

namespace nitho {
namespace {

TEST(Rect, BasicProperties) {
  const Rect r{10, 20, 40, 50};
  EXPECT_EQ(r.width(), 30);
  EXPECT_EQ(r.height(), 30);
  EXPECT_EQ(r.area(), 900);
  EXPECT_TRUE(r.valid());
  EXPECT_FALSE((Rect{5, 5, 5, 9}).valid());
}

TEST(Rect, ExpansionAndIntersection) {
  const Rect a{0, 0, 10, 10};
  EXPECT_EQ(a.expanded(2), (Rect{-2, -2, 12, 12}));
  EXPECT_TRUE(a.intersects(Rect{5, 5, 15, 15}));
  EXPECT_FALSE(a.intersects(Rect{10, 0, 20, 10}));  // half-open: touching is no overlap
}

TEST(Layout, ClipToTileDropsOutside) {
  Layout l;
  l.tile_nm = 100;
  l.main = {Rect{-10, -10, 5, 5}, Rect{200, 200, 300, 300}, Rect{10, 10, 20, 20}};
  l.clip_to_tile();
  ASSERT_EQ(l.main.size(), 2u);
  EXPECT_EQ(l.main[0], (Rect{0, 0, 5, 5}));
  EXPECT_EQ(l.main[1], (Rect{10, 10, 20, 20}));
}

TEST(Raster, ExactAt1nm) {
  Layout l;
  l.tile_nm = 16;
  l.main = {Rect{2, 3, 6, 5}};
  const Grid<double> img = rasterize(l, 1);
  ASSERT_EQ(img.rows(), 16);
  double drawn = grid_sum(img);
  EXPECT_DOUBLE_EQ(drawn, 4.0 * 2.0);
  EXPECT_DOUBLE_EQ(img(3, 2), 1.0);
  EXPECT_DOUBLE_EQ(img(4, 5), 1.0);
  EXPECT_DOUBLE_EQ(img(5, 2), 0.0);  // y = 5 is outside [3,5)
  EXPECT_DOUBLE_EQ(img(3, 6), 0.0);
}

TEST(Raster, UnionOfOverlappingRects) {
  Layout l;
  l.tile_nm = 8;
  l.main = {Rect{0, 0, 4, 4}, Rect{2, 2, 6, 6}};
  const Grid<double> img = rasterize(l, 1);
  EXPECT_DOUBLE_EQ(grid_sum(img), 16.0 + 16.0 - 4.0);
}

TEST(Raster, CoarsePixelUsesCenters) {
  Layout l;
  l.tile_nm = 8;
  l.main = {Rect{0, 0, 3, 8}};  // covers centers of column 0 (1.0) not col 1 (3.0)?
  const Grid<double> img = rasterize(l, 2);
  ASSERT_EQ(img.rows(), 4);
  // Pixel col 0 centre at 1.0 -> inside [0,3). Col 1 centre at 3.0 -> outside.
  EXPECT_DOUBLE_EQ(img(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(img(0, 1), 0.0);
}

TEST(Raster, DensityMatchesDrawnFraction) {
  Layout l;
  l.tile_nm = 32;
  l.main = {Rect{0, 0, 16, 32}};
  const Grid<double> img = rasterize(l, 1);
  EXPECT_DOUBLE_EQ(pattern_density(img), 0.5);
}

TEST(Opc, BiasGrowsFeatures) {
  Layout l;
  l.tile_nm = 512;
  l.main = {Rect{200, 200, 300, 260}};
  OpcRules rules;
  rules.serif_size_nm = 0;
  rules.sraf_width_nm = 0;
  const Layout o = apply_rule_based_opc(l, rules);
  ASSERT_EQ(o.main.size(), 1u);
  EXPECT_EQ(o.main[0], (Rect{194, 194, 306, 266}));
}

TEST(Opc, SerifsAddedAtCorners) {
  Layout l;
  l.tile_nm = 512;
  l.main = {Rect{200, 200, 300, 260}};
  OpcRules rules;
  rules.sraf_width_nm = 0;
  const Layout o = apply_rule_based_opc(l, rules);
  EXPECT_EQ(o.main.size(), 1u + 4u);
}

TEST(Opc, SrafsPlacedOnLongEdgesOnly) {
  Layout l;
  l.tile_nm = 1024;
  l.main = {Rect{400, 400, 700, 460}};  // 300 wide, 60 tall
  OpcRules rules;
  rules.serif_size_nm = 0;
  const Layout o = apply_rule_based_opc(l, rules);
  // Width 312 >= 160 -> top/bottom bars; height 72 < 160 -> no side bars.
  EXPECT_EQ(o.sraf.size(), 2u);
  for (const Rect& s : o.sraf) {
    EXPECT_EQ(s.height(), rules.sraf_width_nm);
  }
}

TEST(Opc, SrafsSkippedWhenBlocked) {
  Layout l;
  l.tile_nm = 1024;
  // Two long bars closer than the SRAF offset: bars between them must drop.
  l.main = {Rect{100, 400, 700, 460}, Rect{100, 480, 700, 540}};
  const Layout o = apply_rule_based_opc(l);
  for (const Rect& s : o.sraf) {
    for (const Rect& m : o.main) {
      EXPECT_FALSE(s.intersects(m)) << "SRAF overlaps a main feature";
    }
  }
}

TEST(Opc, IncreasesMaskArea) {
  Rng rng(5);
  const Layout base = make_b1_layout(1024, rng);
  const Layout opc = apply_rule_based_opc(base);
  const double d0 = pattern_density(rasterize(base, 1));
  const double d1 = pattern_density(rasterize(opc, 1));
  EXPECT_GT(d1, d0);
}

class FamilyTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(FamilyTest, GeneratesNonEmptyInBoundsLayouts) {
  Rng rng(11);
  for (int i = 0; i < 5; ++i) {
    const Layout l = make_layout(GetParam(), 1024, rng);
    EXPECT_FALSE(l.main.empty());
    for (const Rect& r : l.all()) {
      EXPECT_TRUE(r.valid());
      EXPECT_GE(r.x0, 0);
      EXPECT_GE(r.y0, 0);
      EXPECT_LE(r.x1, 1024);
      EXPECT_LE(r.y1, 1024);
    }
    const double density = pattern_density(rasterize(l, 1));
    EXPECT_GT(density, 0.001);
    EXPECT_LT(density, 0.8);
  }
}

TEST_P(FamilyTest, DeterministicForSameSeed) {
  Rng a(77), b(77);
  const Layout la = make_layout(GetParam(), 1024, a);
  const Layout lb = make_layout(GetParam(), 1024, b);
  EXPECT_EQ(la.main.size(), lb.main.size());
  for (std::size_t i = 0; i < la.main.size(); ++i)
    EXPECT_EQ(la.main[i], lb.main[i]);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilyTest,
                         ::testing::Values(DatasetKind::B1, DatasetKind::B1opc,
                                           DatasetKind::B2m, DatasetKind::B2v));

TEST(Families, NamesAreStable) {
  EXPECT_EQ(dataset_name(DatasetKind::B1), "B1");
  EXPECT_EQ(dataset_name(DatasetKind::B1opc), "B1opc");
  EXPECT_EQ(dataset_name(DatasetKind::B2m), "B2m");
  EXPECT_EQ(dataset_name(DatasetKind::B2v), "B2v");
}

TEST(Families, ViaLayerIsSmallSquares) {
  Rng rng(13);
  const Layout l = make_b2v_layout(1024, rng);
  for (const Rect& r : l.main) {
    EXPECT_EQ(r.width(), r.height());
    EXPECT_LE(r.width(), 90);
    EXPECT_GE(r.width(), 55);
  }
}

TEST(Families, MetalLayerHasLongWires) {
  Rng rng(17);
  const Layout l = make_b2m_layout(1024, rng);
  int long_wires = 0;
  for (const Rect& r : l.main) {
    if (std::max(r.width(), r.height()) >= 200) ++long_wires;
  }
  EXPECT_GT(long_wires, 0);
}

TEST(Families, StatisticsDifferAcrossFamilies) {
  // Mean feature area separates chunky B1 metal from small vias — the same
  // distributional gap that drives Fig. 2a.
  Rng rng(19);
  double b1_area = 0.0, b2v_area = 0.0;
  int b1_n = 0, b2v_n = 0;
  const int trials = 8;
  for (int i = 0; i < trials; ++i) {
    for (const Rect& r : make_b1_layout(1024, rng).main) {
      b1_area += static_cast<double>(r.area());
      ++b1_n;
    }
    for (const Rect& r : make_b2v_layout(1024, rng).main) {
      b2v_area += static_cast<double>(r.area());
      ++b2v_n;
    }
  }
  ASSERT_GT(b1_n, 0);
  ASSERT_GT(b2v_n, 0);
  EXPECT_GT(b1_area / b1_n, 2.0 * b2v_area / b2v_n);
}

TEST(Families, OpcVersionDecoratesBaseDesign) {
  Rng a(123), b(123);
  const Layout plain = make_layout(DatasetKind::B1, 1024, a);
  const Layout opc = make_layout(DatasetKind::B1opc, 1024, b);
  EXPECT_GT(opc.main.size(), plain.main.size());  // serifs added
}

}  // namespace
}  // namespace nitho
