// Tests for src/litho: SOCS / Abbe / direct-Hopkins agreement, physical
// invariants of aerial images, resist development, and the golden engine.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "fft/spectral.hpp"
#include "layout/raster.hpp"
#include "litho/golden.hpp"
#include "litho/resist.hpp"
#include "litho/simulator.hpp"
#include "metrics/metrics.hpp"
#include "optics/resolution.hpp"
#include "support/test_support.hpp"

namespace nitho {
namespace {

constexpr double kLambda = 193.0;
constexpr double kNa = 1.35;
constexpr int kTile = 512;

LithoConfig small_config() {
  LithoConfig cfg;
  cfg.tile_nm = kTile;
  cfg.raster_px = 512;
  cfg.analysis_px = 64;
  cfg.sim_px = 32;
  cfg.spectrum_crop = 31;
  cfg.optics.source_oversample = 2;
  cfg.max_rank = 200;
  return cfg;
}

// Shared across tests: TCC build + eigendecomposition once.
const GoldenEngine& engine() {
  static const GoldenEngine e{small_config()};
  return e;
}

Grid<cd> clear_field_spectrum(int crop) {
  Grid<cd> spec(crop, crop, cd(0.0, 0.0));
  spec(crop / 2, crop / 2) = cd(1.0, 0.0);  // DC = mean transmission 1
  return spec;
}

using test::random_spectrum;

TEST(Simulator, ClearFieldImagesToUnity) {
  const auto& e = engine();
  const Grid<double> aerial =
      socs_aerial(e.kernels().kernels, clear_field_spectrum(31), 32);
  for (std::size_t i = 0; i < aerial.size(); ++i) {
    EXPECT_NEAR(aerial[i], 1.0, 1e-6);
  }
}

TEST(Simulator, DarkFieldImagesToZero) {
  const auto& e = engine();
  Grid<cd> spec(31, 31, cd(0.0, 0.0));
  const Grid<double> aerial = socs_aerial(e.kernels().kernels, spec, 32);
  for (std::size_t i = 0; i < aerial.size(); ++i) {
    EXPECT_NEAR(aerial[i], 0.0, 1e-15);
  }
}

TEST(Simulator, AerialIsNonNegative) {
  Rng rng(4);
  const auto& e = engine();
  const Grid<double> aerial =
      socs_aerial(e.kernels().kernels, random_spectrum(31, rng), 64);
  for (std::size_t i = 0; i < aerial.size(); ++i) {
    EXPECT_GE(aerial[i], 0.0);
  }
}

TEST(Simulator, SocsMatchesAbbe) {
  // The SOCS decomposition path and the direct per-source-point Abbe path
  // are independent implementations of the same physics.
  Rng rng(5);
  const auto cfg = small_config();
  const auto& e = engine();
  const Grid<cd> spec = random_spectrum(e.kernel_dim(), rng);
  const Grid<double> socs = socs_aerial(e.kernels().kernels, spec, 32);
  const Grid<double> abbe = abbe_aerial(cfg.optics, kTile, spec, 32);
  for (std::size_t i = 0; i < socs.size(); ++i) {
    EXPECT_NEAR(socs[i], abbe[i], 1e-8) << i;
  }
}

TEST(Simulator, SocsMatchesDirectHopkins) {
  Rng rng(6);
  const auto& e = engine();
  const int kdim = e.kernel_dim();
  const Grid<cd> spec = random_spectrum(kdim, rng);
  const Grid<double> socs = socs_aerial(e.kernels().kernels, spec, 32);
  const Grid<double> hopkins = hopkins_aerial_direct(e.tcc(), kdim, spec, 32);
  for (std::size_t i = 0; i < socs.size(); ++i) {
    EXPECT_NEAR(socs[i], hopkins[i], 1e-8) << i;
  }
}

TEST(Simulator, ThreeWayAgreementOnRandomMask) {
  // All three simulator paths documented in litho/simulator.hpp — SOCS
  // (production), Abbe (per-source-point) and direct Hopkins (TCC quadratic
  // form) — must agree on the spectrum of an actual random binary mask, not
  // just on synthetic Hermitian noise.
  Rng rng = test::make_rng(42);
  const auto cfg = small_config();
  const auto& e = engine();
  const int kdim = e.kernel_dim();

  const int raster = 64;
  const Grid<double> mask = test::random_mask(raster, raster, rng);
  Grid<cd> spec = fft2_crop_centered(mask, kdim);
  const double inv_n2 = 1.0 / (static_cast<double>(raster) * raster);
  for (auto& z : spec) z *= inv_n2;  // DC = mean transmission

  const Grid<double> socs = socs_aerial(e.kernels().kernels, spec, 32);
  const Grid<double> abbe = abbe_aerial(cfg.optics, kTile, spec, 32);
  const Grid<double> hopkins = hopkins_aerial_direct(e.tcc(), kdim, spec, 32);

  EXPECT_TRUE(test::grids_close(socs, abbe, 1e-8));
  EXPECT_TRUE(test::grids_close(socs, hopkins, 1e-8));
  EXPECT_TRUE(test::grids_close(abbe, hopkins, 1e-8));
}

TEST(Simulator, TruncatedSocsApproachesFullRank) {
  Rng rng(7);
  const auto& e = engine();
  const Grid<cd> spec = random_spectrum(e.kernel_dim(), rng);
  const Grid<double> full = socs_aerial(e.kernels().kernels, spec, 32);
  auto truncated = [&](int r) {
    std::vector<Grid<cd>> ks(e.kernels().kernels.begin(),
                             e.kernels().kernels.begin() + r);
    return socs_aerial(ks, spec, 32);
  };
  const double err8 = mse(full, truncated(8));
  const double err24 = mse(full, truncated(24));
  const double err64 = mse(full, truncated(64));
  EXPECT_LT(err24, err8);
  EXPECT_LT(err64, err24);
}

TEST(Simulator, OutputGridConsistency) {
  // Computing at 32 and upsampling must equal computing directly at 64:
  // both sample the same band-limited intensity.
  Rng rng(8);
  const auto& e = engine();
  const Grid<cd> spec = random_spectrum(e.kernel_dim(), rng);
  const Grid<double> low = socs_aerial(e.kernels().kernels, spec, 32);
  const Grid<double> high = socs_aerial(e.kernels().kernels, spec, 64);
  const Grid<double> up = spectral_resample(low, 64, 64);
  for (std::size_t i = 0; i < up.size(); ++i) {
    EXPECT_NEAR(up[i], high[i], 1e-9);
  }
}

TEST(Simulator, RejectsUndersizedOutput) {
  const auto& e = engine();
  EXPECT_THROW(socs_aerial(e.kernels().kernels, clear_field_spectrum(31), 8),
               check_error);
}

TEST(Simulator, IntensityQuadraticInMaskAmplitude) {
  // Scaling the mask transmission by a scales the intensity by a^2 (the
  // imaging operator is a quadratic form, Eq. 1).
  Rng rng(12);
  const auto& e = engine();
  const Grid<cd> spec = random_spectrum(e.kernel_dim(), rng);
  Grid<cd> scaled = spec;
  for (auto& z : scaled) z *= 0.5;
  const Grid<double> full = socs_aerial(e.kernels().kernels, spec, 32);
  const Grid<double> half = socs_aerial(e.kernels().kernels, scaled, 32);
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_NEAR(half[i], 0.25 * full[i], 1e-10 + 1e-9 * full[i]);
  }
}

TEST(Simulator, TranslationEquivariance) {
  // A phase ramp on the mask spectrum translates the aerial image
  // cyclically: shift by one output pixel = W/out_px nm.
  Rng rng(13);
  const auto& e = engine();
  const int kdim = e.kernel_dim();
  const int out = 32;
  const Grid<cd> spec = random_spectrum(kdim, rng);
  Grid<cd> shifted(kdim, kdim);
  const int half = kdim / 2;
  for (int r = 0; r < kdim; ++r) {
    for (int c = 0; c < kdim; ++c) {
      // exp(-2 pi i k_x / out): one-pixel shift along x on the out grid.
      const double ang = 2.0 * kPi * (c - half) / out;
      shifted(r, c) = spec(r, c) * cd(std::cos(ang), std::sin(ang));
    }
  }
  const Grid<double> base = socs_aerial(e.kernels().kernels, spec, out);
  const Grid<double> moved = socs_aerial(e.kernels().kernels, shifted, out);
  // c_k -> c_k e^{+2 pi i k / out} gives E'_j = E_{j+1}: a one-pixel shift
  // toward smaller x.
  for (int r = 0; r < out; ++r) {
    for (int c = 0; c < out; ++c) {
      EXPECT_NEAR(moved(r, (c + out - 1) % out), base(r, c), 1e-9)
          << r << "," << c;
    }
  }
}

TEST(Simulator, SourceShapeChangesImaging) {
  // Different illumination -> different aerial image for the same mask
  // (the system information Nitho must learn actually varies).
  Rng rng(14);
  const auto cfg = small_config();
  const Grid<cd> spec = random_spectrum(15, rng);
  OpticalSystem quad = cfg.optics;
  quad.source.shape = SourceShape::Quadrupole;
  const Grid<double> a = abbe_aerial(cfg.optics, kTile, spec, 32);
  const Grid<double> b = abbe_aerial(quad, kTile, spec, 32);
  EXPECT_GT(mse(a, b), 1e-6);
}

TEST(Simulator, DefocusPreservesTotalEnergyApproximately) {
  // Phase-only pupil aberrations redistribute intensity; the DC term of the
  // intensity spectrum (mean intensity) is preserved for a clear field.
  const auto cfg = small_config();
  OpticalSystem defocused = cfg.optics;
  defocused.pupil.defocus_nm = 80.0;
  const Grid<double> clear =
      abbe_aerial(defocused, kTile, clear_field_spectrum(15), 32);
  for (std::size_t i = 0; i < clear.size(); ++i) {
    EXPECT_NEAR(clear[i], 1.0, 1e-9);
  }
}

TEST(Resist, HardThreshold) {
  Grid<double> aerial(2, 2);
  aerial(0, 0) = 0.1;
  aerial(0, 1) = 0.3;
  aerial(1, 0) = 0.25;
  aerial(1, 1) = 0.0;
  ResistModel m;  // threshold 0.25
  const Grid<double> z = develop(aerial, m);
  EXPECT_DOUBLE_EQ(z(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(z(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(z(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(z(1, 1), 0.0);
}

TEST(Resist, SigmoidIsMonotoneAndBounded) {
  Grid<double> aerial(1, 3);
  aerial(0, 0) = 0.1;
  aerial(0, 1) = 0.25;
  aerial(0, 2) = 0.4;
  ResistModel m;
  m.steepness = 30.0;
  const Grid<double> z = develop(aerial, m);
  EXPECT_LT(z(0, 0), z(0, 1));
  EXPECT_LT(z(0, 1), z(0, 2));
  EXPECT_NEAR(z(0, 1), 0.5, 1e-9);
  EXPECT_GT(z(0, 0), 0.0);
  EXPECT_LT(z(0, 2), 1.0);
}

TEST(Golden, EngineReportsPhysicalKernelDim) {
  EXPECT_EQ(engine().kernel_dim(), kernel_dim(kTile, kLambda, kNa));
  EXPECT_EQ(engine().kernel_dim(), 15);
}

TEST(Golden, SampleShapesAndRanges) {
  Rng rng(9);
  const Layout l = make_layout(DatasetKind::B1, kTile, rng);
  const Sample s = engine().make_sample(rasterize(l, 1));
  EXPECT_EQ(s.spectrum.rows(), 31);
  EXPECT_EQ(s.mask_coarse.rows(), 64);
  EXPECT_EQ(s.aerial.rows(), 64);
  EXPECT_EQ(s.resist.rows(), 64);
  // DC Fourier coefficient equals the pattern density.
  const double density = pattern_density(rasterize(l, 1));
  EXPECT_NEAR(s.spectrum(15, 15).real(), density, 1e-9);
  for (std::size_t i = 0; i < s.resist.size(); ++i) {
    EXPECT_TRUE(s.resist[i] == 0.0 || s.resist[i] == 1.0);
  }
  EXPECT_GE(grid_min(s.aerial), -1e-9);
}

TEST(Golden, DatasetDeterministicAndSized) {
  const Dataset a = engine().make_dataset(DatasetKind::B2v, 3, 42);
  const Dataset b = engine().make_dataset(DatasetKind::B2v, 3, 42);
  ASSERT_EQ(a.samples.size(), 3u);
  EXPECT_EQ(a.name, "B2v");
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(a.samples[i].aerial, b.samples[i].aerial);
  }
}

TEST(Golden, ReferenceAerialMatchesSample) {
  // The rigorous Abbe reference and the production SOCS path must agree.
  Rng rng(10);
  const Layout l = make_layout(DatasetKind::B2m, kTile, rng);
  const Grid<double> mask = rasterize(l, 1);
  const Sample s = engine().make_sample(mask);
  const Grid<double> ref = engine().reference_aerial(mask);
  double worst = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i)
    worst = std::max(worst, std::abs(ref[i] - s.aerial[i]));
  EXPECT_LT(worst, 2e-4);  // golden truncates at rank_tol; tail is tiny
}

TEST(Golden, PrintsSomeResist) {
  // At the default threshold real layouts print features (not all-0/all-1).
  const Dataset ds = engine().make_dataset(DatasetKind::B1, 2, 7);
  for (const Sample& s : ds.samples) {
    const double frac = grid_sum(s.resist) / static_cast<double>(s.resist.size());
    EXPECT_GT(frac, 0.005);
    EXPECT_LT(frac, 0.95);
  }
}

}  // namespace
}  // namespace nitho
