// Unit tests for src/common: checks, RNG, flags, parallel_for.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/flags.hpp"
#include "common/mutex.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace nitho {
namespace {

TEST(Check, PassesOnTrue) { EXPECT_NO_THROW(check(true, "fine")); }

TEST(Check, ThrowsWithMessageAndLocation) {
  try {
    check(false, "bad thing");
    FAIL() << "expected check_error";
  } catch (const check_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bad thing"), std::string::npos);
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.randint(0, 1000000) == b.randint(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(-2.5, 3.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 3.5);
  }
}

TEST(Rng, RandintInclusiveBounds) {
  Rng r(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = r.randint(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    saw_lo = saw_lo || v == 3;
    saw_hi = saw_hi || v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng r(11);
  double sum = 0.0, sum2 = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(1.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.08);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(Rng, ForkIndependence) {
  Rng parent(5);
  Rng child = parent.fork();
  // Child stream differs from the parent's continued stream.
  EXPECT_NE(child.randint(0, 1 << 30), parent.randint(0, 1 << 30));
}

TEST(Rng, ShufflePermutes) {
  Rng r(3);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto orig = v;
  r.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
}

TEST(Flags, ParsesAllSyntaxes) {
  const char* argv[] = {"prog",      "--alpha=3", "--beta", "7",
                        "--gamma",   "--name",    "hello",  "--rate=0.5"};
  Flags f(8, const_cast<char**>(argv));
  EXPECT_EQ(f.get_int("alpha", 0), 3);
  EXPECT_EQ(f.get_int("beta", 0), 7);
  EXPECT_TRUE(f.get_bool("gamma"));
  EXPECT_EQ(f.get("name"), "hello");
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0.0), 0.5);
  EXPECT_FALSE(f.has("missing"));
  EXPECT_EQ(f.get_int("missing", 42), 42);
}

TEST(Flags, BoolFalseValues) {
  const char* argv[] = {"prog", "--x=0", "--y=false"};
  Flags f(3, const_cast<char**>(argv));
  EXPECT_FALSE(f.get_bool("x", true));
  EXPECT_FALSE(f.get_bool("y", true));
}

TEST(Parallel, CoversAllIndicesExactlyOnce) {
  const int n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, [&](std::int64_t i) { hits[i].fetch_add(1); });
  for (int i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Parallel, HandlesEmptyAndSingle) {
  std::atomic<int> count{0};
  parallel_for(0, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  parallel_for(1, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
}

TEST(Parallel, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(100,
                   [&](std::int64_t i) {
                     if (i == 57) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
}

TEST(Parallel, ReusableAfterException) {
  try {
    parallel_for(10, [&](std::int64_t) { throw std::runtime_error("x"); });
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  parallel_for(100, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(Parallel, ChunkedCoversRange) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_chunked(1000, 64, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Parallel, WorkerOverride) {
  set_parallel_workers(1);
  EXPECT_EQ(parallel_workers(), 1);
  std::atomic<int> count{0};
  parallel_for(50, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50);
  set_parallel_workers(0);
  EXPECT_GE(parallel_workers(), 1);
}

TEST(Parallel, WorkerOverrideSafeConcurrentWithDispatch) {
  // set_parallel_workers is documented safe to call while parallel_for is
  // in flight on other threads (the serving shards and the shared pool
  // coexist this way): every dispatch must still cover its range exactly
  // once, whatever worker count it snapshot.  Run under the tsan preset,
  // this also proves the override itself is race-free.
  std::atomic<bool> done{false};
  std::thread toggler([&] {
    int n = 1;
    while (!done.load(std::memory_order_relaxed)) {
      set_parallel_workers(n);
      n = n % 4 + 1;
    }
  });
  for (int round = 0; round < 50; ++round) {
    const int size = 257;
    std::vector<std::atomic<int>> hits(size);
    parallel_for(size, [&](std::int64_t i) { hits[i].fetch_add(1); });
    for (int i = 0; i < size; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
  }
  done.store(true);
  toggler.join();
  set_parallel_workers(0);
}

TEST(Parallel, ConcurrentDispatchersFromPlainThreadsSerialize) {
  // Multiple long-lived threads (like pinned serving shards) may each call
  // parallel_for; dispatches serialize on the pool without deadlock or
  // lost indices.
  set_parallel_workers(2);
  constexpr int kThreads = 4;
  constexpr int kRounds = 25;
  std::vector<std::atomic<int>> hits(kThreads * kRounds * 7);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        const int base = (t * kRounds + r) * 7;
        parallel_for(7, [&](std::int64_t i) {
          hits[static_cast<std::size_t>(base + i)].fetch_add(1);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
  set_parallel_workers(0);
}

TEST(Mutex, GuardsCountsAcrossContendingThreads) {
  // The annotated wrappers must behave exactly like the std primitives
  // they forward to: mutual exclusion (no lost increments), try_lock
  // refusal while held, and CondVar wakeups through UniqueLock.
  struct Counted {
    Mutex mu;
    long n NITHO_GUARDED_BY(mu) = 0;
  } state;
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        LockGuard lk(state.mu);
        ++state.n;
      }
    });
  }
  for (auto& th : threads) th.join();
  LockGuard lk(state.mu);
  EXPECT_EQ(state.n, static_cast<long>(kThreads) * kIters);
}

TEST(Mutex, TryLockRefusesWhileHeld) {
  Mutex mu;
  mu.lock();
  std::thread probe([&] {
    EXPECT_FALSE(mu.try_lock());
  });
  probe.join();
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(CondVar, ExplicitWaitLoopObservesNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // guarded by mu (local, so no annotation to attach)
  std::thread producer([&] {
    {
      LockGuard lk(mu);
      ready = true;
    }
    cv.notify_one();
  });
  {
    UniqueLock lk(mu);
    while (!ready) cv.wait(lk);
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(CondVar, WaitUntilTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  UniqueLock lk(mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  EXPECT_EQ(cv.wait_until(lk, deadline), std::cv_status::timeout);
  EXPECT_TRUE(lk.owns_lock());  // a timed-out wait re-acquires
}

TEST(Timer, MeasuresForwardTime) {
  WallTimer t;
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_LT(t.seconds(), 10.0);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

}  // namespace
}  // namespace nitho
