// Tests for litho/engine.hpp: the batched AerialEngine must reproduce the
// pre-refactor socs_aerial arithmetic bit for bit (the legacy loop is
// reimplemented here as the pinned reference), across odd/even output grids
// and prime (Bluestein) kernel dimensions, under batching, and under
// concurrent callers.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/check.hpp"
#include "fft/fft.hpp"
#include "fft/spectral.hpp"
#include "litho/engine.hpp"
#include "litho/simulator.hpp"
#include "nitho/fast_litho.hpp"
#include "support/test_support.hpp"

namespace nitho {
namespace {

using test::make_rng;
using test::random_cgrid;
using test::random_mask;
using test::random_spectrum;

// Verbatim reimplementation of the pre-AerialEngine socs_aerial hot loop
// (per-kernel allocations, ifftshift(center_embed(...)), full-grid inverse
// transform, grain-8 ordered reduction).  The engine must match it exactly:
// any bitwise drift here is a regression against historical golden data.
Grid<double> legacy_socs_aerial(const std::vector<Grid<cd>>& kernels,
                                const Grid<cd>& spectrum, int out_px) {
  const int kdim = kernels[0].rows();
  const Grid<cd> c = center_crop(spectrum, kdim, kdim);
  const std::int64_t n = static_cast<std::int64_t>(kernels.size());
  const std::int64_t grain = 8;
  const std::int64_t chunks = (n + grain - 1) / grain;
  std::vector<Grid<double>> partial(static_cast<std::size_t>(chunks));
  for (std::int64_t ci = 0; ci < chunks; ++ci) {
    Grid<double> local(out_px, out_px, 0.0);
    const std::int64_t begin = ci * grain;
    const std::int64_t end = std::min(n, begin + grain);
    for (std::int64_t i = begin; i < end; ++i) {
      const Grid<cd>& k = kernels[static_cast<std::size_t>(i)];
      Grid<cd> prod(kdim, kdim);
      for (std::size_t a = 0; a < prod.size(); ++a) prod[a] = k[a] * c[a];
      Grid<cd> e = ifftshift(center_embed(prod, out_px, out_px));
      ifft2_inplace(e);
      const double scale = static_cast<double>(out_px) * out_px;
      for (auto& z : e) z *= scale;
      for (std::size_t a = 0; a < local.size(); ++a) local[a] += norm2(e[a]);
    }
    partial[static_cast<std::size_t>(ci)] = std::move(local);
  }
  Grid<double> intensity(out_px, out_px, 0.0);
  for (const Grid<double>& p : partial) {
    for (std::size_t a = 0; a < intensity.size(); ++a) intensity[a] += p[a];
  }
  return intensity;
}

std::vector<Grid<cd>> random_kernels(int count, int kdim, Rng& rng) {
  std::vector<Grid<cd>> kernels;
  kernels.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    Grid<cd> k = random_cgrid(kdim, kdim, rng);
    // Zero a border ring so kernels have structurally dark rows/columns,
    // like real pupil-limited SOCS kernels.
    if (kdim >= 5) {
      for (int j = 0; j < kdim; ++j) {
        k(0, j) = k(kdim - 1, j) = cd(0.0, 0.0);
        k(j, 0) = k(j, kdim - 1) = cd(0.0, 0.0);
      }
    }
    kernels.push_back(std::move(k));
  }
  return kernels;
}

TEST(AerialEngine, BitIdenticalToLegacyAcrossOutputSizes) {
  Rng rng = make_rng(71);
  // Prime kdim exercises the Bluestein path for the kernel support; the
  // out_px list covers even, odd and prime (Bluestein) output grids.
  for (const int kdim : {13, 9}) {
    const std::vector<Grid<cd>> kernels = random_kernels(11, kdim, rng);
    const Grid<cd> spectrum = random_spectrum(kdim + 8, rng);
    for (const int out_px : {kdim, kdim + 1, 17, 32, 33}) {
      if (out_px < kdim) continue;
      const AerialEngine engine(kernels, out_px);
      const Grid<double> got = engine.aerial(spectrum);
      const Grid<double> want = legacy_socs_aerial(kernels, spectrum, out_px);
      EXPECT_EQ(got, want) << "kdim=" << kdim << " out_px=" << out_px;
    }
  }
}

TEST(AerialEngine, SocsAerialStillMatchesLegacy) {
  Rng rng = make_rng(72);
  const std::vector<Grid<cd>> kernels = random_kernels(10, 11, rng);
  const Grid<cd> spectrum = random_spectrum(11, rng);
  EXPECT_EQ(socs_aerial(kernels, spectrum, 24),
            legacy_socs_aerial(kernels, spectrum, 24));
}

TEST(AerialEngine, BatchBitIdenticalToSingle) {
  Rng rng = make_rng(73);
  const std::vector<Grid<cd>> kernels = random_kernels(20, 13, rng);
  const AerialEngine engine(kernels, 32);
  std::vector<Grid<cd>> spectra;
  for (int i = 0; i < 5; ++i) spectra.push_back(random_spectrum(21, rng));
  const std::vector<Grid<double>> batch = engine.aerial_batch(spectra);
  ASSERT_EQ(batch.size(), spectra.size());
  for (std::size_t i = 0; i < spectra.size(); ++i) {
    EXPECT_EQ(batch[i], engine.aerial(spectra[i])) << "mask " << i;
    EXPECT_EQ(batch[i], socs_aerial(kernels, spectra[i], 32)) << "mask " << i;
  }
}

TEST(AerialEngine, ConcurrentBatchesAreRaceFree) {
  Rng rng = make_rng(74);
  const std::vector<Grid<cd>> kernels = random_kernels(17, 9, rng);
  const AerialEngine engine(kernels, 20);
  std::vector<std::vector<Grid<cd>>> inputs;
  std::vector<std::vector<Grid<double>>> expected;
  for (int t = 0; t < 4; ++t) {
    std::vector<Grid<cd>> spectra;
    for (int i = 0; i < 3; ++i) spectra.push_back(random_spectrum(9, rng));
    expected.push_back(engine.aerial_batch(spectra));
    inputs.push_back(std::move(spectra));
  }
  for (int round = 0; round < 3; ++round) {
    std::vector<std::vector<Grid<double>>> got(4);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        got[static_cast<std::size_t>(t)] =
            engine.aerial_batch(inputs[static_cast<std::size_t>(t)]);
      });
    }
    for (auto& th : threads) th.join();
    for (int t = 0; t < 4; ++t) {
      ASSERT_EQ(got[static_cast<std::size_t>(t)].size(),
                expected[static_cast<std::size_t>(t)].size());
      for (std::size_t i = 0; i < expected[static_cast<std::size_t>(t)].size();
           ++i) {
        EXPECT_EQ(got[static_cast<std::size_t>(t)][i],
                  expected[static_cast<std::size_t>(t)][i])
            << "thread " << t << " mask " << i;
      }
    }
  }
}

TEST(AerialEngine, FastLithoBatchMatchesSingleMaskCalls) {
  Rng rng = make_rng(75);
  const FastLitho fast(random_kernels(12, 13, rng));
  std::vector<Grid<double>> masks;
  for (int i = 0; i < 4; ++i) masks.push_back(random_mask(64, 64, rng));
  const std::vector<Grid<double>> batch = fast.aerial_batch(masks, 32);
  ASSERT_EQ(batch.size(), masks.size());
  for (std::size_t i = 0; i < masks.size(); ++i) {
    EXPECT_EQ(batch[i], fast.aerial_from_mask(masks[i], 32)) << "mask " << i;
  }
}

TEST(AerialEngine, RejectsBadConfigurations) {
  Rng rng = make_rng(76);
  EXPECT_THROW(AerialEngine(std::vector<Grid<cd>>{}, 16), check_error);
  const std::vector<Grid<cd>> kernels = random_kernels(3, 9, rng);
  EXPECT_THROW(AerialEngine(kernels, 8), check_error);  // out_px < kdim
  const AerialEngine engine(kernels, 16);
  EXPECT_THROW(engine.aerial(random_spectrum(7, rng)), check_error);
}

TEST(AerialEngine, EmptyBatchReturnsEmpty) {
  Rng rng = make_rng(77);
  const AerialEngine engine(random_kernels(3, 9, rng), 16);
  EXPECT_TRUE(engine.aerial_batch(std::vector<Grid<cd>>{}).empty());
}

TEST(ReduceOrdered, SkipsEmptyPartialsAndKeepsOrder) {
  std::vector<Grid<double>> partials;
  partials.emplace_back(2, 2, 1.0);
  partials.emplace_back();  // chunk that contributed nothing
  partials.emplace_back(2, 2, 2.5);
  const Grid<double> sum =
      reduce_ordered(partials.data(), partials.size(), 2);
  for (std::size_t a = 0; a < sum.size(); ++a) EXPECT_EQ(sum[a], 3.5);
}

}  // namespace
}  // namespace nitho
