// Tests for litho/engine.hpp: the batched AerialEngine must reproduce the
// pre-refactor socs_aerial arithmetic bit for bit (the legacy loop is
// reimplemented here as the pinned reference), across odd/even output grids
// and prime (Bluestein) kernel dimensions, under batching, and under
// concurrent callers.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "fft/fft.hpp"
#include "fft/spectral.hpp"
#include "litho/engine.hpp"
#include "litho/simulator.hpp"
#include "nitho/fast_litho.hpp"
#include "support/test_support.hpp"

namespace nitho {
namespace {

using test::make_rng;
using test::random_mask;
using test::random_spectrum;

// Verbatim reimplementation of the pre-AerialEngine socs_aerial hot loop
// (per-kernel allocations, ifftshift(center_embed(...)), full-grid inverse
// transform, grain-8 ordered reduction).  The engine must match it exactly:
// any bitwise drift here is a regression against historical golden data.
Grid<double> legacy_socs_aerial(const std::vector<Grid<cd>>& kernels,
                                const Grid<cd>& spectrum, int out_px) {
  const int kdim = kernels[0].rows();
  const Grid<cd> c = center_crop(spectrum, kdim, kdim);
  const std::int64_t n = static_cast<std::int64_t>(kernels.size());
  const std::int64_t grain = 8;
  const std::int64_t chunks = (n + grain - 1) / grain;
  std::vector<Grid<double>> partial(static_cast<std::size_t>(chunks));
  for (std::int64_t ci = 0; ci < chunks; ++ci) {
    Grid<double> local(out_px, out_px, 0.0);
    const std::int64_t begin = ci * grain;
    const std::int64_t end = std::min(n, begin + grain);
    for (std::int64_t i = begin; i < end; ++i) {
      const Grid<cd>& k = kernels[static_cast<std::size_t>(i)];
      Grid<cd> prod(kdim, kdim);
      for (std::size_t a = 0; a < prod.size(); ++a) prod[a] = k[a] * c[a];
      Grid<cd> e = ifftshift(center_embed(prod, out_px, out_px));
      ifft2_inplace(e);
      const double scale = static_cast<double>(out_px) * out_px;
      for (auto& z : e) z *= scale;
      for (std::size_t a = 0; a < local.size(); ++a) local[a] += norm2(e[a]);
    }
    partial[static_cast<std::size_t>(ci)] = std::move(local);
  }
  Grid<double> intensity(out_px, out_px, 0.0);
  for (const Grid<double>& p : partial) {
    for (std::size_t a = 0; a < intensity.size(); ++a) intensity[a] += p[a];
  }
  return intensity;
}

std::vector<Grid<cd>> random_kernels(int count, int kdim, Rng& rng) {
  // Dark borders exercise the engine's structurally-zero row pruning.
  return test::random_kernels(count, kdim, rng, /*dark_border=*/true);
}

TEST(AerialEngine, BitIdenticalToLegacyAcrossOutputSizes) {
  Rng rng = make_rng(71);
  // Prime kdim exercises the Bluestein path for the kernel support; the
  // out_px list covers even, odd and prime (Bluestein) output grids.
  for (const int kdim : {13, 9}) {
    const std::vector<Grid<cd>> kernels = random_kernels(11, kdim, rng);
    const Grid<cd> spectrum = random_spectrum(kdim + 8, rng);
    for (const int out_px : {kdim, kdim + 1, 17, 32, 33}) {
      if (out_px < kdim) continue;
      const AerialEngine engine(kernels, out_px);
      const Grid<double> got = engine.aerial(spectrum);
      const Grid<double> want = legacy_socs_aerial(kernels, spectrum, out_px);
      EXPECT_EQ(got, want) << "kdim=" << kdim << " out_px=" << out_px;
    }
  }
}

TEST(AerialEngine, SocsAerialStillMatchesLegacy) {
  Rng rng = make_rng(72);
  const std::vector<Grid<cd>> kernels = random_kernels(10, 11, rng);
  const Grid<cd> spectrum = random_spectrum(11, rng);
  EXPECT_EQ(socs_aerial(kernels, spectrum, 24),
            legacy_socs_aerial(kernels, spectrum, 24));
}

TEST(AerialEngine, BatchBitIdenticalToSingle) {
  Rng rng = make_rng(73);
  const std::vector<Grid<cd>> kernels = random_kernels(20, 13, rng);
  const AerialEngine engine(kernels, 32);
  std::vector<Grid<cd>> spectra;
  for (int i = 0; i < 5; ++i) spectra.push_back(random_spectrum(21, rng));
  const std::vector<Grid<double>> batch = engine.aerial_batch(spectra);
  ASSERT_EQ(batch.size(), spectra.size());
  for (std::size_t i = 0; i < spectra.size(); ++i) {
    EXPECT_EQ(batch[i], engine.aerial(spectra[i])) << "mask " << i;
    EXPECT_EQ(batch[i], socs_aerial(kernels, spectra[i], 32)) << "mask " << i;
  }
}

TEST(AerialEngine, ConcurrentBatchesAreRaceFree) {
  Rng rng = make_rng(74);
  const std::vector<Grid<cd>> kernels = random_kernels(17, 9, rng);
  const AerialEngine engine(kernels, 20);
  std::vector<std::vector<Grid<cd>>> inputs;
  std::vector<std::vector<Grid<double>>> expected;
  for (int t = 0; t < 4; ++t) {
    std::vector<Grid<cd>> spectra;
    for (int i = 0; i < 3; ++i) spectra.push_back(random_spectrum(9, rng));
    expected.push_back(engine.aerial_batch(spectra));
    inputs.push_back(std::move(spectra));
  }
  for (int round = 0; round < 3; ++round) {
    std::vector<std::vector<Grid<double>>> got(4);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        got[static_cast<std::size_t>(t)] =
            engine.aerial_batch(inputs[static_cast<std::size_t>(t)]);
      });
    }
    for (auto& th : threads) th.join();
    for (int t = 0; t < 4; ++t) {
      ASSERT_EQ(got[static_cast<std::size_t>(t)].size(),
                expected[static_cast<std::size_t>(t)].size());
      for (std::size_t i = 0; i < expected[static_cast<std::size_t>(t)].size();
           ++i) {
        EXPECT_EQ(got[static_cast<std::size_t>(t)][i],
                  expected[static_cast<std::size_t>(t)][i])
            << "thread " << t << " mask " << i;
      }
    }
  }
}

TEST(AerialEngine, FastLithoBatchMatchesSingleMaskCalls) {
  Rng rng = make_rng(75);
  const FastLitho fast(random_kernels(12, 13, rng));
  std::vector<Grid<double>> masks;
  for (int i = 0; i < 4; ++i) masks.push_back(random_mask(64, 64, rng));
  const std::vector<Grid<double>> batch = fast.aerial_batch(masks, 32);
  ASSERT_EQ(batch.size(), masks.size());
  for (std::size_t i = 0; i < masks.size(); ++i) {
    EXPECT_EQ(batch[i], fast.aerial_from_mask(masks[i], 32)) << "mask " << i;
  }
}

TEST(AerialEngine, RejectsBadConfigurations) {
  Rng rng = make_rng(76);
  EXPECT_THROW(AerialEngine(std::vector<Grid<cd>>{}, 16), check_error);
  const std::vector<Grid<cd>> kernels = random_kernels(3, 9, rng);
  EXPECT_THROW(AerialEngine(kernels, 8), check_error);  // out_px < kdim
  const AerialEngine engine(kernels, 16);
  EXPECT_THROW(engine.aerial(random_spectrum(7, rng)), check_error);
}

TEST(AerialEngine, EmptyBatchReturnsEmpty) {
  Rng rng = make_rng(77);
  const AerialEngine engine(random_kernels(3, 9, rng), 16);
  EXPECT_TRUE(engine.aerial_batch(std::vector<Grid<cd>>{}).empty());
}

TEST(FastLitho, EngineCacheIsBoundedLru) {
  Rng rng = make_rng(78);
  FastLitho fast(random_kernels(6, 9, rng));
  fast.set_engine_cache_capacity(2);
  EXPECT_EQ(fast.engine_cache_capacity(), 2);
  const Grid<double> mask = random_mask(64, 64, rng);
  // Record the results once, then sweep more resolutions than the cap.
  std::vector<Grid<double>> first;
  for (const int px : {16, 20, 24, 32}) {
    first.push_back(fast.aerial_from_mask(mask, px));
  }
  EXPECT_EQ(fast.engine_cache_size(), 2);
  EXPECT_EQ(fast.engine_cache_pxs(), (std::vector<int>{24, 32}));
  // A hit refreshes recency: 24 survives the next insertion, 32 does not.
  (void)fast.aerial_from_mask(mask, 24);
  (void)fast.aerial_from_mask(mask, 16);
  EXPECT_EQ(fast.engine_cache_pxs(), (std::vector<int>{24, 16}));
  // Rebuilt engines reproduce the evicted engines' results bit for bit.
  std::size_t i = 0;
  for (const int px : {16, 20, 24, 32}) {
    EXPECT_EQ(fast.aerial_from_mask(mask, px), first[i++]) << "px " << px;
  }
  // Shrinking evicts immediately.
  fast.set_engine_cache_capacity(1);
  EXPECT_EQ(fast.engine_cache_size(), 1);
  EXPECT_THROW(fast.set_engine_cache_capacity(0), check_error);
}

TEST(FastLitho, SharedKernelSiblingsMatchBitForBit) {
  Rng rng = make_rng(79);
  FastLitho owner(random_kernels(8, 13, rng));
  // A sibling built from kernels_shared() shares the arrays (no copy) but
  // keeps its own engine cache — the serving shards are built this way.
  FastLitho sibling(owner.kernels_shared(), owner.resist_threshold());
  EXPECT_EQ(&sibling.kernels(), &owner.kernels());
  const Grid<double> mask = random_mask(64, 64, rng);
  EXPECT_EQ(sibling.aerial_from_mask(mask, 32), owner.aerial_from_mask(mask, 32));
  EXPECT_EQ(sibling.resist_from_mask(mask, 32), owner.resist_from_mask(mask, 32));
}

TEST(FastLitho, MaskPointerBatchMatchesOwningBatch) {
  Rng rng = make_rng(80);
  const FastLitho fast(random_kernels(9, 9, rng));
  std::vector<Grid<double>> masks;
  for (int i = 0; i < 3; ++i) masks.push_back(random_mask(48, 48, rng));
  std::vector<const Grid<double>*> ptrs;
  for (const Grid<double>& m : masks) ptrs.push_back(&m);
  EXPECT_EQ(fast.aerial_batch(ptrs, 24), fast.aerial_batch(masks, 24));
  std::vector<const Grid<double>*> with_null = ptrs;
  with_null.push_back(nullptr);
  EXPECT_THROW(fast.aerial_batch(with_null, 24), check_error);
}

TEST(FastLitho, ResistFromMaskMatchesThresholdedAerial) {
  Rng rng = make_rng(81);
  const std::vector<Grid<cd>> kernels = random_kernels(7, 13, rng);
  const Grid<double> mask = random_mask(64, 64, rng);
  for (const int out_px : {32, 33}) {  // even and odd output grids
    const FastLitho fast{std::vector<Grid<cd>>(kernels)};
    const Grid<double> aerial = fast.aerial_from_mask(mask, out_px);
    const Grid<double> resist = fast.resist_from_mask(mask, out_px);
    ASSERT_EQ(resist.rows(), out_px);
    ASSERT_EQ(resist.cols(), out_px);
    for (std::size_t a = 0; a < resist.size(); ++a) {
      EXPECT_TRUE(resist[a] == 0.0 || resist[a] == 1.0);
      EXPECT_EQ(resist[a], aerial[a] >= fast.resist_threshold() ? 1.0 : 0.0);
    }
  }
}

TEST(FastLitho, ResistThresholdBoundaryIsInclusive) {
  Rng rng = make_rng(82);
  const std::vector<Grid<cd>> kernels = random_kernels(5, 9, rng);
  const Grid<double> mask = random_mask(48, 48, rng);
  const Grid<double> aerial =
      FastLitho{std::vector<Grid<cd>>(kernels)}.aerial_from_mask(mask, 24);
  // Pin the threshold to an exact intensity value: >= keeps that pixel lit.
  const double pivot = aerial(7, 11);
  const FastLitho at{std::vector<Grid<cd>>(kernels), pivot};
  EXPECT_EQ(at.resist_threshold(), pivot);
  EXPECT_EQ(at.resist_from_mask(mask, 24)(7, 11), 1.0);
  // An infinitesimally higher threshold flips exactly the boundary pixels.
  const FastLitho above{
      std::vector<Grid<cd>>(kernels),
      std::nextafter(pivot, std::numeric_limits<double>::infinity())};
  EXPECT_EQ(above.resist_from_mask(mask, 24)(7, 11), 0.0);
  // Degenerate thresholds: everything clears / nothing does.
  const FastLitho zero{std::vector<Grid<cd>>(kernels), 0.0};
  const Grid<double> all_on = zero.resist_from_mask(mask, 24);
  for (std::size_t a = 0; a < all_on.size(); ++a) EXPECT_EQ(all_on[a], 1.0);
  const FastLitho huge{std::vector<Grid<cd>>(kernels), 1e300};
  const Grid<double> all_off = huge.resist_from_mask(mask, 24);
  for (std::size_t a = 0; a < all_off.size(); ++a) EXPECT_EQ(all_off[a], 0.0);
}

TEST(ReduceOrdered, SkipsEmptyPartialsAndKeepsOrder) {
  std::vector<Grid<double>> partials;
  partials.emplace_back(2, 2, 1.0);
  partials.emplace_back();  // chunk that contributed nothing
  partials.emplace_back(2, 2, 2.5);
  const Grid<double> sum =
      reduce_ordered(partials.data(), partials.size(), 2);
  for (std::size_t a = 0; a < sum.size(); ++a) EXPECT_EQ(sum[a], 3.5);
}

}  // namespace
}  // namespace nitho
