// Tests for serve/autotune: the AIMD max_delay rule, the occupancy-driven
// max_batch rule, clamping, window consumption and the deadband where the
// policy holds still.  The tuner is pure single-threaded decision logic;
// its wiring into the shard worker (hot-swap via MicroBatcher::set_policy,
// stats export) is covered by tests/test_serve.cpp.  This suite also runs
// under the `tsan` preset alongside the serving tests.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "serve/autotune.hpp"

namespace nitho {
namespace {

using serve::AutotuneConfig;
using serve::BatchPolicy;
using serve::SloAutotuner;
using serve::TuneWindow;
using std::chrono::microseconds;

constexpr microseconds kTarget{10000};

AutotuneConfig config() {
  AutotuneConfig cfg;
  cfg.low_watermark = 0.6;
  cfg.delay_step = microseconds(50);
  cfg.delay_backoff = 0.5;
  cfg.min_delay = microseconds(20);
  cfg.max_delay = microseconds(5000);
  cfg.min_batch = 1;
  cfg.max_batch = 64;
  cfg.occupancy_high = 0.85;
  cfg.occupancy_low = 0.35;
  cfg.tune_every = 16;
  return cfg;
}

BatchPolicy initial() {
  return {.max_batch = 8, .max_delay = microseconds(300)};
}

/// A window whose p99 is `p99_us` (constant latencies) with the given
/// completions spread over `batches` flushes.
TuneWindow window_of(double p99_us, std::uint64_t completed,
                     std::uint64_t batches) {
  TuneWindow w;
  for (std::uint64_t b = 0; b < batches; ++b) {
    w.record_batch(std::vector<double>(
        static_cast<std::size_t>(completed / batches), p99_us));
  }
  return w;
}

TEST(SloAutotuner, BacksOffDelayMultiplicativelyOnOvershoot) {
  SloAutotuner tuner(kTarget, config(), initial());
  // p99 over target, occupancy in the neutral band (4 of 8): only the
  // delay moves, halved.
  TuneWindow w = window_of(15000.0, 32, 8);
  EXPECT_TRUE(tuner.update(w));
  EXPECT_EQ(tuner.policy().max_delay, microseconds(150));
  EXPECT_EQ(tuner.policy().max_batch, 8);
  EXPECT_EQ(tuner.updates(), 1u);
  // Repeated overshoot clamps at min_delay, then stops reporting change.
  for (int i = 0; i < 8; ++i) {
    TuneWindow again = window_of(15000.0, 32, 8);
    tuner.update(again);
  }
  EXPECT_EQ(tuner.policy().max_delay, config().min_delay);
  TuneWindow floor = window_of(15000.0, 32, 8);
  EXPECT_FALSE(tuner.update(floor));
}

TEST(SloAutotuner, ProbesDelayAdditivelyUnderTheWatermark) {
  SloAutotuner tuner(kTarget, config(), initial());
  // p99 well under the watermark (0.6 * 10 ms): +step per decision.
  TuneWindow w = window_of(1000.0, 32, 8);
  EXPECT_TRUE(tuner.update(w));
  EXPECT_EQ(tuner.policy().max_delay, microseconds(350));
  TuneWindow w2 = window_of(1000.0, 32, 8);
  EXPECT_TRUE(tuner.update(w2));
  EXPECT_EQ(tuner.policy().max_delay, microseconds(400));
}

TEST(SloAutotuner, DelayClampsAtConfiguredMax) {
  AutotuneConfig cfg = config();
  cfg.max_delay = microseconds(420);
  SloAutotuner tuner(kTarget, cfg, initial());
  for (int i = 0; i < 8; ++i) {
    TuneWindow w = window_of(1000.0, 32, 8);
    tuner.update(w);
  }
  EXPECT_EQ(tuner.policy().max_delay, microseconds(420));
}

TEST(SloAutotuner, HoldsStillInsideTheDeadband) {
  // p99 between the watermark and the target, occupancy in the neutral
  // band: a healthy steady state must not oscillate.
  SloAutotuner tuner(kTarget, config(), initial());
  TuneWindow w = window_of(8000.0, 32, 8);
  EXPECT_FALSE(tuner.update(w));
  EXPECT_EQ(tuner.policy().max_batch, initial().max_batch);
  EXPECT_EQ(tuner.policy().max_delay, initial().max_delay);
  EXPECT_EQ(tuner.updates(), 0u);
}

TEST(SloAutotuner, GrowsBatchOnFullOccupancyOnlyWithSloHeadroom) {
  // Batches routinely full AND p99 under the watermark: double max_batch.
  SloAutotuner tuner(kTarget, config(), initial());
  TuneWindow w = window_of(1000.0, 32, 4);  // occupancy 8 of 8
  EXPECT_TRUE(tuner.update(w));
  EXPECT_EQ(tuner.policy().max_batch, 16);
  // Full occupancy without headroom (p99 between watermark and target)
  // must NOT grow the batch — growing always adds latency.
  SloAutotuner cautious(kTarget, config(), initial());
  TuneWindow w2 = window_of(8000.0, 32, 4);
  EXPECT_FALSE(cautious.update(w2));
  EXPECT_EQ(cautious.policy().max_batch, 8);
  // Growth clamps at the configured max_batch.
  AutotuneConfig cfg = config();
  cfg.max_batch = 12;
  SloAutotuner clamped(kTarget, cfg, initial());
  TuneWindow w3 = window_of(1000.0, 32, 4);
  EXPECT_TRUE(clamped.update(w3));
  EXPECT_EQ(clamped.policy().max_batch, 12);
}

TEST(SloAutotuner, ShrinksBatchTowardObservedOccupancyWhenSizeFlushesStarve) {
  // Occupancy far under max_batch: size flushes never fire, so requests
  // always wait out max_delay.  Shrink max_batch to just above occupancy
  // so size flushes can fire again.
  AutotuneConfig cfg = config();
  SloAutotuner tuner(kTarget, cfg,
                     {.max_batch = 64, .max_delay = microseconds(300)});
  TuneWindow w = window_of(8000.0, 8, 4);  // occupancy 2 of 64
  EXPECT_TRUE(tuner.update(w));
  EXPECT_EQ(tuner.policy().max_batch, 3);  // ceil(2) + 1
  // Shrink respects min_batch.
  cfg.min_batch = 6;
  SloAutotuner floored(kTarget, cfg,
                       {.max_batch = 64, .max_delay = microseconds(300)});
  TuneWindow w2 = window_of(8000.0, 8, 4);
  EXPECT_TRUE(floored.update(w2));
  EXPECT_EQ(floored.policy().max_batch, 6);
}

TEST(SloAutotuner, UpdateConsumesTheWindow) {
  SloAutotuner tuner(kTarget, config(), initial());
  TuneWindow w = window_of(15000.0, 32, 8);
  EXPECT_TRUE(tuner.ready(w));  // 32 completions >= tune_every (16)
  tuner.update(w);
  EXPECT_EQ(w.completed, 0u);
  EXPECT_EQ(w.batches, 0u);
  EXPECT_TRUE(w.latencies_us.empty());
  EXPECT_FALSE(tuner.ready(w));
  // An empty window is a no-op, not a crash or a spurious change.
  EXPECT_FALSE(tuner.update(w));
}

TEST(SloAutotuner, ClampsInitialPolicyIntoItsBounds) {
  AutotuneConfig cfg = config();
  cfg.max_batch = 16;
  cfg.max_delay = microseconds(1000);
  SloAutotuner tuner(kTarget, cfg,
                     {.max_batch = 128, .max_delay = microseconds(9000)});
  EXPECT_EQ(tuner.policy().max_batch, 16);
  EXPECT_EQ(tuner.policy().max_delay, microseconds(1000));
}

TEST(SloAutotuner, RejectsNonsenseConfiguration) {
  EXPECT_THROW(SloAutotuner(microseconds(0), config(), initial()),
               check_error);
  AutotuneConfig bad = config();
  bad.delay_backoff = 1.5;
  EXPECT_THROW(SloAutotuner(kTarget, bad, initial()), check_error);
  bad = config();
  bad.min_delay = microseconds(9000);  // > max_delay
  EXPECT_THROW(SloAutotuner(kTarget, bad, initial()), check_error);
  bad = config();
  bad.occupancy_low = 0.9;  // >= occupancy_high
  EXPECT_THROW(SloAutotuner(kTarget, bad, initial()), check_error);
}

TEST(TuneWindow, RecordBatchAccumulates) {
  TuneWindow w;
  w.record_batch({100.0, 200.0});
  w.record_batch({300.0});
  EXPECT_EQ(w.completed, 3u);
  EXPECT_EQ(w.batches, 2u);
  ASSERT_EQ(w.latencies_us.size(), 3u);
  EXPECT_EQ(w.latencies_us[2], 300.0);
  w.clear();
  EXPECT_EQ(w.completed, 0u);
  EXPECT_EQ(w.batches, 0u);
  EXPECT_TRUE(w.latencies_us.empty());
}

}  // namespace
}  // namespace nitho
