// End-to-end integration: golden data -> Nitho training -> evaluation,
// including the paper's headline claim (out-of-distribution generalization,
// Table IV / Fig. 2b) at miniature scale.

#include <gtest/gtest.h>

#include "baselines/doinn.hpp"
#include "layout/raster.hpp"
#include "litho/golden.hpp"
#include "metrics/metrics.hpp"
#include "nitho/fast_litho.hpp"
#include "nitho/model.hpp"
#include "nitho/trainer.hpp"

namespace nitho {
namespace {

LithoConfig small_config() {
  LithoConfig cfg;
  cfg.tile_nm = 512;
  cfg.raster_px = 512;
  cfg.analysis_px = 64;
  cfg.sim_px = 32;
  cfg.spectrum_crop = 31;
  cfg.max_rank = 200;
  return cfg;
}

class Pipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    engine_ = new GoldenEngine(small_config());
    train_vias_ = new Dataset(engine_->make_dataset(DatasetKind::B2v, 24, 100));
    test_vias_ = new Dataset(engine_->make_dataset(DatasetKind::B2v, 3, 200));
    test_metal_ = new Dataset(engine_->make_dataset(DatasetKind::B2m, 3, 300));

    NithoConfig mc;
    mc.rank = 14;
    mc.encoding.features = 64;
    mc.hidden = 32;
    mc.blocks = 2;
    model_ = new NithoModel(mc, 512, 193.0, 1.35);
    NithoTrainConfig tc;
    tc.epochs = 100;
    tc.batch = 4;
    tc.train_px = 32;
    train_nitho(*model_, sample_ptrs(*train_vias_), tc);
  }
  static void TearDownTestSuite() {
    delete model_;
    delete test_metal_;
    delete test_vias_;
    delete train_vias_;
    delete engine_;
  }

  static double avg_psnr(const NithoModel& m, const Dataset& ds) {
    double acc = 0.0;
    for (const Sample& s : ds.samples) acc += psnr(s.aerial, predict_aerial(m, s, 64));
    return acc / static_cast<double>(ds.samples.size());
  }

  static GoldenEngine* engine_;
  static Dataset *train_vias_, *test_vias_, *test_metal_;
  static NithoModel* model_;
};

GoldenEngine* Pipeline::engine_ = nullptr;
Dataset* Pipeline::train_vias_ = nullptr;
Dataset* Pipeline::test_vias_ = nullptr;
Dataset* Pipeline::test_metal_ = nullptr;
NithoModel* Pipeline::model_ = nullptr;

TEST_F(Pipeline, InDistributionAccuracy) {
  EXPECT_GT(avg_psnr(*model_, *test_vias_), 35.0);
}

TEST_F(Pipeline, OutOfDistributionGeneralization) {
  // The paper's key claim: kernels learned on one mask family transfer to a
  // completely different family because they encode the optical system, not
  // the masks.  (Table IV: B2v -> B2m with ~1% drop for Nitho.)
  const double ood = avg_psnr(*model_, *test_metal_);
  EXPECT_GT(ood, 25.0);
}

TEST_F(Pipeline, ResistMetricsHigh) {
  for (const Sample& s : test_metal_->samples) {
    const EvalResult r = evaluate(s.aerial, predict_aerial(*model_, s, 64),
                                  small_config().resist.threshold);
    // Thresholds are loose relative to the paper's 99% because the test
    // analysis grid is 64^2: single boundary-pixel flips cost ~1% here.
    EXPECT_GT(r.mpa, 0.85);
    EXPECT_GT(r.miou, 0.78);
  }
}

TEST_F(Pipeline, LearnedKernelsApproximateGoldenTcc) {
  // Compare the learned rank-14 imaging against the golden full-rank imaging
  // on a fresh mask: agreement in aerial space implies the CMLP recovered
  // the dominant TCC structure (not just memorized training tiles).
  Rng rng(7);
  const Layout l = make_layout(DatasetKind::B1, 512, rng);  // third family
  const Sample s = engine_->make_sample(rasterize(l, 1));
  const Grid<double> pred = predict_aerial(*model_, s, 64);
  EXPECT_GT(psnr(s.aerial, pred), 22.0);
}

TEST_F(Pipeline, NithoBeatsQuicklyTrainedBaselineOod) {
  // A baseline trained with the same tiny budget on vias collapses on metal
  // (the Fig. 2b story); Nitho does not.
  DoinnModel doinn;
  ImageTrainConfig cfg;
  cfg.epochs = 10;
  cfg.px = 32;
  train_image_model(doinn, sample_ptrs(*train_vias_), cfg);
  double nitho_ood = 0.0, doinn_ood = 0.0;
  for (const Sample& s : test_metal_->samples) {
    nitho_ood += psnr(s.aerial, predict_aerial(*model_, s, 64));
    doinn_ood += psnr(s.aerial, predict_aerial(doinn, s, 32, 64));
  }
  EXPECT_GT(nitho_ood, doinn_ood + 3.0 * test_metal_->samples.size());
}

}  // namespace
}  // namespace nitho
