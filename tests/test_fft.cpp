// Unit and property tests for src/fft: 1-D plans (radix-2 + Bluestein),
// 2-D transforms, shifts, centered crop/embed, and spectral resampling.

#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "fft/fft.hpp"
#include "fft/spectral.hpp"
#include "support/test_support.hpp"

namespace nitho {
namespace {

using test::dft_reference;
using test::idft_reference;
using test::random_signal;

class FftSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(FftSizeSweep, MatchesReferenceDft) {
  const int n = GetParam();
  Rng rng(n);
  std::vector<cd> x = random_signal(n, rng);
  const std::vector<cd> ref = dft_reference(x);
  fft_plan_d(n).forward(x.data());
  for (int k = 0; k < n; ++k) {
    EXPECT_NEAR(x[k].real(), ref[k].real(), 1e-8 * n) << "n=" << n << " k=" << k;
    EXPECT_NEAR(x[k].imag(), ref[k].imag(), 1e-8 * n);
  }
}

TEST_P(FftSizeSweep, RoundTripIsIdentity) {
  const int n = GetParam();
  Rng rng(7 * n + 1);
  const std::vector<cd> orig = random_signal(n, rng);
  std::vector<cd> x = orig;
  fft_plan_d(n).forward(x.data());
  fft_plan_d(n).inverse(x.data());
  for (int k = 0; k < n; ++k) {
    EXPECT_NEAR(std::abs(x[k] - orig[k]), 0.0, 1e-9 * n);
  }
}

TEST_P(FftSizeSweep, ParsevalHolds) {
  const int n = GetParam();
  Rng rng(13 * n + 5);
  std::vector<cd> x = random_signal(n, rng);
  double time_energy = 0.0;
  for (const cd& v : x) time_energy += norm2(v);
  fft_plan_d(n).forward(x.data());
  double freq_energy = 0.0;
  for (const cd& v : x) freq_energy += norm2(v);
  EXPECT_NEAR(freq_energy, time_energy * n, 1e-7 * time_energy * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 15, 16, 29, 31,
                                           63, 64, 100, 128, 243, 256));

// Large prime sizes exercise the Bluestein chirp-z path exclusively: no
// radix-2 or mixed-radix decomposition exists for them, so regressions in
// the chirp convolution show up here and nowhere else.
class PrimeSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(PrimeSizeSweep, BluesteinMatchesReferenceDft) {
  const int n = GetParam();
  Rng rng = test::make_rng(static_cast<std::uint64_t>(n));
  std::vector<cd> x = random_signal(n, rng);
  const std::vector<cd> ref = dft_reference(x);
  fft_plan_d(n).forward(x.data());
  EXPECT_TRUE(test::vectors_close(x, ref, 1e-8 * n));
}

TEST_P(PrimeSizeSweep, InverseMatchesReferenceIdft) {
  const int n = GetParam();
  Rng rng = test::make_rng(3 * static_cast<std::uint64_t>(n) + 1);
  std::vector<cd> x = random_signal(n, rng);
  const std::vector<cd> ref = idft_reference(x);
  fft_plan_d(n).inverse(x.data());
  EXPECT_TRUE(test::vectors_close(x, ref, 1e-8 * n));
}

TEST_P(PrimeSizeSweep, ForwardInverseRoundTripIsIdentity) {
  const int n = GetParam();
  Rng rng = test::make_rng(7 * static_cast<std::uint64_t>(n) + 5);
  const std::vector<cd> orig = random_signal(n, rng);
  std::vector<cd> x = orig;
  fft_plan_d(n).forward(x.data());
  fft_plan_d(n).inverse(x.data());
  EXPECT_TRUE(test::vectors_close(x, orig, 1e-9 * n));
}

TEST_P(PrimeSizeSweep, ParsevalHolds) {
  const int n = GetParam();
  Rng rng = test::make_rng(11 * static_cast<std::uint64_t>(n) + 3);
  std::vector<cd> x = random_signal(n, rng);
  double time_energy = 0.0;
  for (const cd& v : x) time_energy += norm2(v);
  fft_plan_d(n).forward(x.data());
  double freq_energy = 0.0;
  for (const cd& v : x) freq_energy += norm2(v);
  EXPECT_NEAR(freq_energy, time_energy * n, 1e-7 * time_energy * n);
}

INSTANTIATE_TEST_SUITE_P(BluesteinPrimes, PrimeSizeSweep,
                         ::testing::Values(97, 251, 509));

TEST(Fft, ImpulseGivesFlatSpectrum) {
  const int n = 32;
  std::vector<cd> x(n, cd(0.0, 0.0));
  x[0] = cd(1.0, 0.0);
  fft_plan_d(n).forward(x.data());
  for (const cd& v : x) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, LinearityProperty) {
  const int n = 48;  // Bluestein path
  Rng rng(3);
  std::vector<cd> a = random_signal(n, rng), b = random_signal(n, rng);
  std::vector<cd> combo(n);
  const cd alpha(2.0, -1.0), beta(0.5, 3.0);
  for (int i = 0; i < n; ++i) combo[i] = alpha * a[i] + beta * b[i];
  fft_plan_d(n).forward(a.data());
  fft_plan_d(n).forward(b.data());
  fft_plan_d(n).forward(combo.data());
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(combo[i] - (alpha * a[i] + beta * b[i])), 0.0, 1e-8);
  }
}

TEST(Fft, FloatPlanAgreesWithDouble) {
  const int n = 64;
  Rng rng(9);
  std::vector<cd> xd = random_signal(n, rng);
  std::vector<cf> xf(n);
  for (int i = 0; i < n; ++i)
    xf[i] = cf(static_cast<float>(xd[i].real()), static_cast<float>(xd[i].imag()));
  fft_plan_d(n).forward(xd.data());
  fft_plan_f(n).forward(xf.data());
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(xf[i].real(), xd[i].real(), 1e-3);
    EXPECT_NEAR(xf[i].imag(), xd[i].imag(), 1e-3);
  }
}

TEST(Fft2, RoundTrip2D) {
  Rng rng(17);
  Grid<cd> g(16, 8);
  for (auto& v : g) v = cd(rng.normal(), rng.normal());
  const Grid<cd> orig = g;
  fft2_inplace(g);
  ifft2_inplace(g);
  for (std::size_t i = 0; i < g.size(); ++i)
    EXPECT_NEAR(std::abs(g[i] - orig[i]), 0.0, 1e-10);
}

TEST(Fft2, DcBinIsSum) {
  Grid<double> g(8, 8);
  Rng rng(21);
  for (auto& v : g) v = rng.uniform();
  const Grid<cd> spec = fft2(g);
  EXPECT_NEAR(spec(0, 0).real(), grid_sum(g), 1e-9);
  EXPECT_NEAR(spec(0, 0).imag(), 0.0, 1e-9);
}

TEST(Fft2, SeparableHarmonic) {
  // e^{2 pi i (3x/N + 5y/M)} transforms to a single bin.
  const int rows = 16, cols = 32;
  Grid<cd> g(rows, cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      const double ang = 2.0 * kPi * (5.0 * r / rows + 3.0 * c / cols);
      g(r, c) = cd(std::cos(ang), std::sin(ang));
    }
  fft2_inplace(g);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      const double expected = (r == 5 && c == 3) ? rows * cols : 0.0;
      EXPECT_NEAR(std::abs(g(r, c)), expected, 1e-8) << r << "," << c;
    }
}

TEST(Spectral, FftshiftMovesDcToCenter) {
  for (int n : {7, 8}) {
    Grid<double> g(n, n, 0.0);
    g(0, 0) = 1.0;
    const Grid<double> s = fftshift(g);
    EXPECT_DOUBLE_EQ(s(n / 2, n / 2), 1.0);
  }
}

TEST(Spectral, ShiftRoundTripEvenAndOdd) {
  Rng rng(5);
  for (int n : {6, 7, 9, 12}) {
    Grid<double> g(n, n);
    for (auto& v : g) v = rng.normal();
    EXPECT_EQ(ifftshift(fftshift(g)), g) << n;
    EXPECT_EQ(fftshift(ifftshift(g)), g) << n;
  }
}

TEST(Spectral, CropEmbedInverse) {
  Rng rng(6);
  Grid<cd> small(5, 5);
  for (auto& v : small) v = cd(rng.normal(), rng.normal());
  const Grid<cd> big = center_embed(small, 12, 12);
  const Grid<cd> back = center_crop(big, 5, 5);
  EXPECT_EQ(back, small);
}

TEST(Spectral, CropKeepsDcAligned) {
  // DC of a shifted 16-spectrum sits at 8; cropping to 5 must put it at 2.
  Grid<cd> g(16, 16, cd(0.0, 0.0));
  g(8, 8) = cd(42.0, 0.0);
  const Grid<cd> c = center_crop(g, 5, 5);
  EXPECT_DOUBLE_EQ(c(2, 2).real(), 42.0);
}

TEST(Spectral, CropRejectsLargerTarget) {
  Grid<cd> g(4, 4);
  EXPECT_THROW(center_crop(g, 5, 5), check_error);
  EXPECT_THROW(center_embed(g, 3, 3), check_error);
}

TEST(Spectral, ResampleBandLimitedIsExact) {
  // A signal band-limited to +-3 cycles survives 32 -> 64 -> 32 exactly.
  const int n = 32;
  Grid<double> g(n, n);
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < n; ++c)
      g(r, c) = 1.0 + 0.5 * std::cos(2.0 * kPi * 3.0 * r / n) +
                0.25 * std::sin(2.0 * kPi * 2.0 * c / n);
  const Grid<double> up = spectral_resample(g, 2 * n, 2 * n);
  // Upsampled grid interpolates: original samples are preserved.
  for (int r = 0; r < n; ++r)
    for (int c = 0; c < n; ++c)
      EXPECT_NEAR(up(2 * r, 2 * c), g(r, c), 1e-9);
  const Grid<double> back = spectral_resample(up, n, n);
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_NEAR(back[i], g[i], 1e-9);
}

TEST(Spectral, CroppedFftMatchesFullPath) {
  Rng rng(8);
  Grid<double> img(64, 64);
  for (auto& v : img) v = rng.uniform();
  for (int crop : {1, 5, 15, 31}) {
    const Grid<cd> fast = fft2_crop_centered(img, crop);
    const Grid<cd> full = center_crop(fftshift(fft2(img)), crop, crop);
    ASSERT_EQ(fast.rows(), crop);
    for (std::size_t i = 0; i < fast.size(); ++i)
      EXPECT_NEAR(std::abs(fast[i] - full[i]), 0.0, 1e-8) << crop;
  }
}

TEST(Spectral, CroppedFftOddRowCountMatchesFullPath) {
  // Odd image sizes leave an unpaired row in the conjugate-symmetric
  // row-pairing scheme; the tail row must transform on its own.
  Rng rng(88);
  Grid<double> img(33, 33);
  for (auto& v : img) v = rng.uniform();
  for (int crop : {3, 9, 17}) {
    const Grid<cd> fast = fft2_crop_centered(img, crop);
    const Grid<cd> full = center_crop(fftshift(fft2(img)), crop, crop);
    for (std::size_t i = 0; i < fast.size(); ++i)
      EXPECT_NEAR(std::abs(fast[i] - full[i]), 0.0, 1e-8) << crop;
  }
}

TEST(Fft2, WorkspaceVariantBitIdentical) {
  // The workspace-taking 2-D transforms must match the plain entry points
  // bit for bit, across power-of-two and Bluestein sizes and with one
  // workspace reused (and re-sized) across all of them.
  Rng rng(89);
  Fft2Workspace ws;
  for (const auto& [rows, cols] :
       {std::pair{8, 8}, {16, 4}, {12, 10}, {31, 17}, {9, 32}}) {
    Grid<cd> g(rows, cols);
    for (auto& v : g) v = cd(rng.normal(), rng.normal());
    Grid<cd> plain = g, with_ws = g;
    fft2_inplace(plain);
    fft2_inplace(with_ws, ws);
    EXPECT_EQ(plain, with_ws) << rows << "x" << cols;
    ifft2_inplace(plain);
    ifft2_inplace(with_ws, ws);
    EXPECT_EQ(plain, with_ws) << rows << "x" << cols;
  }
}

TEST(FftPlan, ScratchOverloadBitIdentical) {
  Rng rng(90);
  for (const int n : {16, 31, 97}) {
    const FftPlan<double>& plan = fft_plan_d(n);
    std::vector<cd> scratch(static_cast<std::size_t>(plan.scratch_size()));
    cd* sc = scratch.empty() ? nullptr : scratch.data();
    std::vector<cd> plain = random_signal(n, rng);
    std::vector<cd> with_scratch = plain;
    plan.forward(plain.data());
    plan.forward(with_scratch.data(), sc);
    EXPECT_EQ(plain, with_scratch) << "forward n=" << n;
    plan.inverse(plain.data());
    plan.inverse(with_scratch.data(), sc);
    EXPECT_EQ(plain, with_scratch) << "inverse n=" << n;
  }
}

TEST(FftPlan, ManyMatchesPerSegmentBitwise) {
  // forward_many/inverse_many over contiguous segments must match calling
  // the single-segment overloads per segment bit for bit, on radix-2 and
  // Bluestein sizes alike.
  Rng rng(91);
  for (const int n : {8, 64, 31}) {
    const int count = 5;
    const FftPlan<double>& plan = fft_plan_d(n);
    std::vector<cd> scratch(static_cast<std::size_t>(plan.scratch_size()));
    cd* sc = scratch.empty() ? nullptr : scratch.data();
    std::vector<cd> many = random_signal(n * count, rng);
    std::vector<cd> single = many;
    plan.forward_many(many.data(), count, sc);
    for (int t = 0; t < count; ++t) plan.forward(single.data() + t * n, sc);
    EXPECT_EQ(many, single) << "forward n=" << n;
    plan.inverse_many(many.data(), count, sc);
    for (int t = 0; t < count; ++t) plan.inverse(single.data() + t * n, sc);
    EXPECT_EQ(many, single) << "inverse n=" << n;
  }
}

TEST(FftPlan, PrerevMatchesPermutedInputBitwise) {
  // Writing segment elements to their bit-reversed positions and calling
  // the *_prerev entry points must reproduce the plain transforms bit for
  // bit — the skipped permutation pass is pure data movement.
  Rng rng(92);
  for (const int n : {8, 64}) {
    const int count = 3;
    const FftPlan<double>& plan = fft_plan_d(n);
    const int* rev = plan.bitrev_table();
    ASSERT_NE(rev, nullptr) << "radix-2 plans expose their permutation";
    const std::vector<cd> x = random_signal(n * count, rng);
    std::vector<cd> plain = x;
    std::vector<cd> pre(x.size());
    for (int t = 0; t < count; ++t) {
      for (int i = 0; i < n; ++i) pre[t * n + rev[i]] = x[t * n + i];
    }
    std::vector<cd> pre_fwd = pre;
    plan.forward_many(plain.data(), count, nullptr);
    plan.forward_many_prerev(pre_fwd.data(), count, nullptr);
    EXPECT_EQ(plain, pre_fwd) << "forward n=" << n;
    std::vector<cd> plain_inv = x;
    std::vector<cd> pre_inv = pre;
    plan.inverse_many(plain_inv.data(), count, nullptr);
    plan.inverse_many_prerev(pre_inv.data(), count, nullptr);
    EXPECT_EQ(plain_inv, pre_inv) << "inverse n=" << n;
  }
  // Bluestein sizes have no exposed permutation and reject prerev calls.
  const FftPlan<double>& bs = fft_plan_d(31);
  EXPECT_EQ(bs.bitrev_table(), nullptr);
  std::vector<cd> x = random_signal(31, rng);
  EXPECT_THROW(bs.forward_many_prerev(x.data(), 1, nullptr), check_error);
}

TEST(Spectral, DownsampleAreaAverages) {
  Grid<double> g(4, 4, 1.0);
  g(0, 0) = 5.0;
  const Grid<double> d = downsample_area(g, 2);
  ASSERT_EQ(d.rows(), 2);
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);  // (5+1+1+1)/4
  EXPECT_DOUBLE_EQ(d(1, 1), 1.0);
}

TEST(Spectral, DownsampleRejectsBadFactor) {
  Grid<double> g(5, 5, 0.0);
  EXPECT_THROW(downsample_area(g, 2), check_error);
}

TEST(Spectral, UpsampleNearestReplicates) {
  Grid<double> g(2, 2);
  g(0, 0) = 1;
  g(0, 1) = 2;
  g(1, 0) = 3;
  g(1, 1) = 4;
  const Grid<double> u = upsample_nearest(g, 3);
  ASSERT_EQ(u.rows(), 6);
  EXPECT_DOUBLE_EQ(u(0, 0), 1);
  EXPECT_DOUBLE_EQ(u(2, 2), 1);
  EXPECT_DOUBLE_EQ(u(0, 5), 2);
  EXPECT_DOUBLE_EQ(u(5, 0), 3);
  EXPECT_DOUBLE_EQ(u(5, 5), 4);
}

TEST(Spectral, AbsAndRealHelpers) {
  Grid<cd> g(1, 2);
  g(0, 0) = cd(3.0, 4.0);
  g(0, 1) = cd(-1.0, 1.0);
  const Grid<double> a = abs2(g);
  EXPECT_DOUBLE_EQ(a(0, 0), 25.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 2.0);
  const Grid<double> re = real_part(g);
  EXPECT_DOUBLE_EQ(re(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(re(0, 1), -1.0);
}

}  // namespace
}  // namespace nitho
