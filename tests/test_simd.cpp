// Tests for the SIMD dispatch layer (common/simd.hpp): every vector arm the
// build carries must be *bit-identical* to the scalar arm on every kernel —
// across odd/even lengths, unaligned pointers, prime Bluestein FFT sizes,
// odd/even engine output grids, and concurrent batched callers (the tsan
// preset runs this suite).  Also pins the aligned-buffer contract
// (common/aligned.hpp, DESIGN.md §13.3).

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "common/aligned.hpp"
#include "common/simd.hpp"
#include "fft/fft.hpp"
#include "litho/engine.hpp"
#include "nn/gemm.hpp"
#include "support/test_support.hpp"

namespace nitho {
namespace {

using test::make_rng;
using test::random_kernels;
using test::random_spectrum;

// Restores the CPU-detected arm when a test scope ends, so a failing
// EXPECT cannot leak a forced arm into later tests.
struct ArmGuard {
  ~ArmGuard() { simd::force_arm(simd::detected_arm()); }
};

// The non-scalar arms this build + CPU can actually run.
std::vector<simd::Arm> vector_arms() {
  std::vector<simd::Arm> arms;
  if (!simd::simd_compiled()) return arms;
  arms.push_back(simd::Arm::kSse2);
  if (simd::detected_arm() == simd::Arm::kAvx2) {
    arms.push_back(simd::Arm::kAvx2);
  }
  return arms;
}

template <typename T>
::testing::AssertionResult bits_equal(const std::vector<T>& a,
                                      const std::vector<T>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure() << "size mismatch";
  }
  if (std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) != 0) {
    return ::testing::AssertionFailure() << "bit mismatch";
  }
  return ::testing::AssertionSuccess();
}

template <typename C>
std::vector<C> random_cvec(int n, Rng& rng) {
  std::vector<C> v(static_cast<std::size_t>(n));
  for (auto& z : v) {
    z = C(static_cast<typename C::value_type>(rng.normal()),
          static_cast<typename C::value_type>(rng.normal()));
  }
  return v;
}

std::vector<float> random_fvec(int n, Rng& rng) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

TEST(Simd, DispatchAndForce) {
  ArmGuard guard;
  EXPECT_EQ(simd::active_arm(), simd::detected_arm());
  if (!simd::simd_compiled()) {
    // Scalar-only build: every request clamps to scalar.
    EXPECT_EQ(simd::detected_arm(), simd::Arm::kScalar);
    EXPECT_EQ(simd::force_arm(simd::Arm::kAvx2), simd::Arm::kScalar);
    return;
  }
  EXPECT_EQ(simd::force_arm(simd::Arm::kScalar), simd::Arm::kScalar);
  EXPECT_EQ(simd::active_arm(), simd::Arm::kScalar);
  // Requests above what the CPU has clamp to the detected arm.
  EXPECT_LE(static_cast<int>(simd::force_arm(simd::Arm::kAvx2)),
            static_cast<int>(simd::detected_arm()));
}

TEST(Simd, ArmNames) {
  EXPECT_STREQ(simd::arm_name(simd::Arm::kScalar), "scalar");
  EXPECT_STREQ(simd::arm_name(simd::Arm::kSse2), "sse2");
  EXPECT_STREQ(simd::arm_name(simd::Arm::kAvx2), "avx2");
}

TEST(Simd, AlignedVectorContract) {
  aligned_vector<float> f(3);
  aligned_vector<cd> zd(5);
  aligned_vector<cf> zf(7);
  EXPECT_TRUE(is_aligned(f.data()));
  EXPECT_TRUE(is_aligned(zd.data()));
  EXPECT_TRUE(is_aligned(zf.data()));
  // Reallocation preserves alignment.
  f.resize(1000);
  EXPECT_TRUE(is_aligned(f.data()));
}

TEST(Simd, FftWorkspaceBuffersAligned) {
  Fft2Workspace wd;
  EXPECT_TRUE(is_aligned(wd.col_buffer(33)));
  EXPECT_TRUE(is_aligned(wd.scratch_for(fft_plan_d(97))));
  Fft2WorkspaceF wf;
  EXPECT_TRUE(is_aligned(wf.col_buffer(64)));
  EXPECT_TRUE(is_aligned(wf.scratch_for(fft_plan_f(251))));
  // Power-of-two plans need no Bluestein scratch.
  EXPECT_EQ(wd.scratch_for(fft_plan_d(64)), nullptr);
}

// Element kernels: scalar-arm output is the reference; every vector arm
// must reproduce it bit for bit, including at unaligned offsets and with
// lengths that leave every possible vector tail.
template <typename Fn>
void for_each_vector_arm(const Fn& fn) {
  ArmGuard guard;
  for (simd::Arm arm : vector_arms()) {
    simd::force_arm(arm);
    fn(arm);
  }
}

TEST(Simd, CmulBitIdentical) {
  Rng rng = make_rng(1);
  for (const int n : {1, 2, 3, 4, 7, 8, 64, 97}) {
    const auto ad = random_cvec<cd>(n + 1, rng);
    const auto bd = random_cvec<cd>(n + 1, rng);
    const auto af = random_cvec<cf>(n + 1, rng);
    const auto bf = random_cvec<cf>(n + 1, rng);
    std::vector<cd> refd(ad.size());
    std::vector<cf> reff(af.size());
    {
      ArmGuard guard;
      simd::force_arm(simd::Arm::kScalar);
      // Offset +1 exercises the unaligned path on both operands.
      simd::cmul(refd.data() + 1, ad.data() + 1, bd.data() + 1, n);
      simd::cmul(reff.data() + 1, af.data() + 1, bf.data() + 1, n);
    }
    for_each_vector_arm([&](simd::Arm) {
      std::vector<cd> outd(ad.size());
      std::vector<cf> outf(af.size());
      simd::cmul(outd.data() + 1, ad.data() + 1, bd.data() + 1, n);
      simd::cmul(outf.data() + 1, af.data() + 1, bf.data() + 1, n);
      EXPECT_EQ(std::memcmp(outd.data() + 1, refd.data() + 1,
                            static_cast<std::size_t>(n) * sizeof(cd)),
                0)
          << "cd n=" << n;
      EXPECT_EQ(std::memcmp(outf.data() + 1, reff.data() + 1,
                            static_cast<std::size_t>(n) * sizeof(cf)),
                0)
          << "cf n=" << n;
      // In-place variant aliases dst == a.
      std::vector<cd> ind = ad;
      simd::cmul_inplace(ind.data() + 1, bd.data() + 1, n);
      EXPECT_EQ(std::memcmp(ind.data() + 1, refd.data() + 1,
                            static_cast<std::size_t>(n) * sizeof(cd)),
                0);
    });
  }
}

TEST(Simd, FftStageBitIdentical) {
  // Every radix-2 stage geometry a pow2 transform can produce: block count
  // len/(2*half) from many blocks of tiny halves down to one block of
  // half = len/2, covering every vector tail in the k-within-block lanes.
  Rng rng = make_rng(11);
  for (const int len : {8, 16, 64}) {
    for (int half = 1; half < len; half <<= 1) {
      const auto xd0 = random_cvec<cd>(len, rng);
      const auto xf0 = random_cvec<cf>(len, rng);
      // fft_stage contracts only on bit-identity across arms, not on the
      // table's values — random twiddles exercise it just as well.
      const auto twd = random_cvec<cd>(half, rng);
      const auto twf = random_cvec<cf>(half, rng);
      std::vector<cd> refd = xd0;
      std::vector<cf> reff = xf0;
      {
        ArmGuard guard;
        simd::force_arm(simd::Arm::kScalar);
        simd::fft_stage(refd.data(), len, half, twd.data());
        simd::fft_stage(reff.data(), len, half, twf.data());
      }
      for_each_vector_arm([&](simd::Arm arm) {
        std::vector<cd> xd = xd0;
        std::vector<cf> xf = xf0;
        simd::fft_stage(xd.data(), len, half, twd.data());
        simd::fft_stage(xf.data(), len, half, twf.data());
        EXPECT_TRUE(bits_equal(xd, refd))
            << "cd len=" << len << " half=" << half << " arm="
            << simd::arm_name(arm);
        EXPECT_TRUE(bits_equal(xf, reff))
            << "cf len=" << len << " half=" << half << " arm="
            << simd::arm_name(arm);
      });
    }
  }
}

TEST(Simd, Abs2ScaleAccumBitIdentical) {
  Rng rng = make_rng(2);
  for (const int n : {1, 3, 4, 5, 8, 33, 100}) {
    const auto z = random_cvec<cd>(n, rng);
    const auto acc0 = [&] {
      std::vector<double> a(static_cast<std::size_t>(n));
      for (auto& x : a) x = rng.normal();
      return a;
    }();
    const double scale = 1089.0;  // 33^2, the engine's out^2 undo factor
    std::vector<double> ref = acc0;
    {
      ArmGuard guard;
      simd::force_arm(simd::Arm::kScalar);
      simd::abs2_scale_accum(ref.data(), z.data(), scale, n);
    }
    for_each_vector_arm([&](simd::Arm) {
      std::vector<double> acc = acc0;
      simd::abs2_scale_accum(acc.data(), z.data(), scale, n);
      EXPECT_TRUE(bits_equal(acc, ref)) << "n=" << n;
    });
  }
}

TEST(Simd, Abs2AccumBitIdentical) {
  Rng rng = make_rng(3);
  for (const int n : {1, 2, 5, 8, 9, 16, 63}) {
    const auto e = random_fvec(2 * n, rng);
    const auto acc0 = random_fvec(n, rng);
    std::vector<float> ref = acc0;
    {
      ArmGuard guard;
      simd::force_arm(simd::Arm::kScalar);
      simd::abs2_accum(ref.data(), e.data(), n);
    }
    for_each_vector_arm([&](simd::Arm) {
      std::vector<float> acc = acc0;
      simd::abs2_accum(acc.data(), e.data(), n);
      EXPECT_TRUE(bits_equal(acc, ref)) << "n=" << n;
    });
  }
}

TEST(Simd, AxpyAddInplaceBitIdentical) {
  Rng rng = make_rng(4);
  for (const int n : {1, 3, 7, 8, 15, 64, 101}) {
    const auto b = random_fvec(n + 1, rng);
    const auto c0 = random_fvec(n + 1, rng);
    const float a = static_cast<float>(rng.normal());
    std::vector<float> ref = c0, ref2 = c0;
    {
      ArmGuard guard;
      simd::force_arm(simd::Arm::kScalar);
      simd::axpy(ref.data() + 1, a, b.data() + 1, n);
      simd::add_inplace(ref2.data() + 1, b.data() + 1, n);
    }
    for_each_vector_arm([&](simd::Arm) {
      std::vector<float> c = c0, c2 = c0;
      simd::axpy(c.data() + 1, a, b.data() + 1, n);
      simd::add_inplace(c2.data() + 1, b.data() + 1, n);
      EXPECT_TRUE(bits_equal(c, ref)) << "n=" << n;
      EXPECT_TRUE(bits_equal(c2, ref2)) << "n=" << n;
    });
  }
}

// The register-blocked panel kernel: every row height, both A layouts
// (gemm_nn's row-major strides and gemm_tn's transposed strides), and
// column counts that leave 16-, 8-, 4-wide and scalar tails.
TEST(Simd, GemmPanelBitIdentical) {
  Rng rng = make_rng(9);
  for (const std::int64_t mr : {1, 2, 3, 4}) {
    for (const std::int64_t n : {1, 5, 8, 16, 17, 33}) {
      const std::int64_t k = 7;
      const auto a = random_fvec(static_cast<int>(mr * k), rng);
      const auto b = random_fvec(static_cast<int>(k * n), rng);
      const auto c0 = random_fvec(static_cast<int>(mr * n), rng);
      // Layouts: (ars=k, aps=1) reads a row-major; (ars=1, aps=mr) reads
      // the same buffer as a column-major (gemm_tn's A^T view).
      struct Layout {
        std::int64_t ars, aps;
      };
      for (const Layout lay : {Layout{k, 1}, Layout{1, mr}}) {
        std::vector<float> ref = c0;
        {
          ArmGuard guard;
          simd::force_arm(simd::Arm::kScalar);
          simd::gemm_panel(ref.data(), n, a.data(), lay.ars, lay.aps,
                           b.data(), n, mr, k, n);
        }
        for_each_vector_arm([&](simd::Arm arm) {
          std::vector<float> c = c0;
          simd::gemm_panel(c.data(), n, a.data(), lay.ars, lay.aps, b.data(),
                           n, mr, k, n);
          EXPECT_TRUE(bits_equal(c, ref))
              << "mr=" << mr << " n=" << n << " ars=" << lay.ars
              << " arm=" << simd::arm_name(arm);
        });
      }
    }
  }
}

TEST(Simd, Abs2BackpropBitIdentical) {
  Rng rng = make_rng(10);
  for (const int n : {1, 2, 3, 4, 7, 8, 63}) {
    const auto e = random_fvec(2 * (n + 1), rng);
    const auto gy = random_fvec(n + 1, rng);
    const auto g0 = random_fvec(2 * (n + 1), rng);
    std::vector<float> ref = g0;
    {
      ArmGuard guard;
      simd::force_arm(simd::Arm::kScalar);
      simd::abs2_backprop(ref.data() + 2, e.data() + 2, gy.data() + 1, n);
    }
    for_each_vector_arm([&](simd::Arm arm) {
      std::vector<float> g = g0;
      simd::abs2_backprop(g.data() + 2, e.data() + 2, gy.data() + 1, n);
      EXPECT_TRUE(bits_equal(g, ref))
          << "n=" << n << " arm=" << simd::arm_name(arm);
    });
  }
}

// Whole-transform pins: forward and inverse FFTs of every plan family
// (radix-2 and prime Bluestein sizes) must not change a single bit across
// arms — butterflies, stage tables, and the Bluestein pointwise multiply
// all sit under the dispatch layer.
template <typename R>
void fft_bit_identity(const FftPlan<R>& plan, int salt) {
  Rng rng = make_rng(100 + salt);
  const int n = plan.size();
  const auto x0 = random_cvec<std::complex<R>>(n, rng);
  std::vector<std::complex<R>> fwd_ref = x0, inv_ref = x0;
  {
    ArmGuard guard;
    simd::force_arm(simd::Arm::kScalar);
    plan.forward(fwd_ref.data());
    plan.inverse(inv_ref.data());
  }
  for_each_vector_arm([&](simd::Arm arm) {
    std::vector<std::complex<R>> fwd = x0, inv = x0;
    plan.forward(fwd.data());
    plan.inverse(inv.data());
    EXPECT_TRUE(bits_equal(fwd, fwd_ref))
        << "forward n=" << n << " arm=" << simd::arm_name(arm);
    EXPECT_TRUE(bits_equal(inv, inv_ref))
        << "inverse n=" << n << " arm=" << simd::arm_name(arm);
  });
}

TEST(Simd, FftBitIdenticalAcrossArms) {
  int salt = 0;
  for (const int n : {8, 64, 97, 251, 509, 512}) {
    fft_bit_identity(fft_plan_d(n), ++salt);
    fft_bit_identity(fft_plan_f(n), ++salt);
  }
}

// Dense GEMM pins: the vector axpy path and the packed gemm_nt path (both
// above and below its pack thresholds) must match the scalar arm bitwise,
// with and without accumulation.
TEST(Simd, GemmBitIdenticalAcrossArms) {
  Rng rng = make_rng(5);
  struct Shape {
    std::int64_t m, n, k;
  };
  // (8, 32, 32) crosses the gemm_nt pack threshold; (3, 5, 4) stays under
  // it; (5, 17, 9) leaves odd vector tails everywhere.
  for (const Shape sh : {Shape{3, 5, 4}, Shape{5, 17, 9}, Shape{8, 32, 32}}) {
    const auto a = random_fvec(static_cast<int>(sh.m * sh.k), rng);
    const auto b_nn = random_fvec(static_cast<int>(sh.k * sh.n), rng);
    const auto b_nt = random_fvec(static_cast<int>(sh.n * sh.k), rng);
    const auto a_tn = random_fvec(static_cast<int>(sh.k * sh.m), rng);
    const auto c0 = random_fvec(static_cast<int>(sh.m * sh.n), rng);
    for (const bool accumulate : {false, true}) {
      std::vector<float> ref_nn = c0, ref_nt = c0, ref_tn = c0;
      {
        ArmGuard guard;
        simd::force_arm(simd::Arm::kScalar);
        nn::gemm_nn<false>(sh.m, sh.n, sh.k, a.data(), b_nn.data(),
                           ref_nn.data(), accumulate);
        nn::gemm_nt(sh.m, sh.n, sh.k, a.data(), b_nt.data(), ref_nt.data(),
                    accumulate);
        nn::gemm_tn<false>(sh.m, sh.n, sh.k, a_tn.data(), b_nn.data(),
                           ref_tn.data(), accumulate);
      }
      for_each_vector_arm([&](simd::Arm arm) {
        std::vector<float> c_nn = c0, c_nt = c0, c_tn = c0;
        nn::gemm_nn<false>(sh.m, sh.n, sh.k, a.data(), b_nn.data(),
                           c_nn.data(), accumulate);
        nn::gemm_nt(sh.m, sh.n, sh.k, a.data(), b_nt.data(), c_nt.data(),
                    accumulate);
        nn::gemm_tn<false>(sh.m, sh.n, sh.k, a_tn.data(), b_nn.data(),
                           c_tn.data(), accumulate);
        EXPECT_TRUE(bits_equal(c_nn, ref_nn))
            << "nn m=" << sh.m << " acc=" << accumulate
            << " arm=" << simd::arm_name(arm);
        EXPECT_TRUE(bits_equal(c_nt, ref_nt))
            << "nt m=" << sh.m << " acc=" << accumulate
            << " arm=" << simd::arm_name(arm);
        EXPECT_TRUE(bits_equal(c_tn, ref_tn))
            << "tn m=" << sh.m << " acc=" << accumulate
            << " arm=" << simd::arm_name(arm);
      });
    }
  }
}

// The skip-zero GEMM variants stay scalar by design, but their std::fill
// zero-fill must still produce exact zeros with the skip path engaged.
TEST(Simd, AdamUpdateBitIdentical) {
  // Every op in the update (mul, add, sub, div, sqrt) is IEEE
  // exactly-rounded in scalar and vector form, so the arms must agree bit
  // for bit on all three written streams, including vector tails.
  Rng rng = make_rng(9);
  const float beta1 = 0.9f, beta2 = 0.999f, lr = 1e-3f, eps = 1e-8f;
  const float bc1 = 0.2f, bc2 = 0.05f;
  for (const int n : {1, 3, 7, 8, 15, 64, 97}) {
    const auto g = random_fvec(n, rng);
    const auto p0 = random_fvec(n, rng);
    const auto m0 = random_fvec(n, rng);
    auto v0 = random_fvec(n, rng);
    for (auto& x : v0) x *= x;  // second moments are nonnegative
    std::vector<float> pr = p0, mr = m0, vr = v0;
    {
      ArmGuard guard;
      simd::force_arm(simd::Arm::kScalar);
      simd::adam_update(pr.data(), mr.data(), vr.data(), g.data(), n, beta1,
                        beta2, bc1, bc2, lr, eps);
    }
    for_each_vector_arm([&](simd::Arm arm) {
      std::vector<float> p = p0, m = m0, v = v0;
      simd::adam_update(p.data(), m.data(), v.data(), g.data(), n, beta1,
                        beta2, bc1, bc2, lr, eps);
      EXPECT_TRUE(bits_equal(p, pr)) << simd::arm_name(arm) << " n=" << n;
      EXPECT_TRUE(bits_equal(m, mr)) << simd::arm_name(arm) << " n=" << n;
      EXPECT_TRUE(bits_equal(v, vr)) << simd::arm_name(arm) << " n=" << n;
    });
  }
}

TEST(Simd, GemmSkipZeroLhsUnchanged) {
  Rng rng = make_rng(6);
  const std::int64_t m = 4, n = 9, k = 6;
  auto a = random_fvec(static_cast<int>(m * k), rng);
  for (std::size_t i = 0; i < a.size(); i += 2) a[i] = 0.0f;  // ReLU-sparse
  const auto b = random_fvec(static_cast<int>(k * n), rng);
  std::vector<float> dense(static_cast<std::size_t>(m * n));
  std::vector<float> sparse(static_cast<std::size_t>(m * n));
  ArmGuard guard;
  simd::force_arm(simd::Arm::kScalar);
  nn::gemm_nn<false>(m, n, k, a.data(), b.data(), dense.data(), false);
  simd::force_arm(simd::detected_arm());
  nn::gemm_nn<true>(m, n, k, a.data(), b.data(), sparse.data(), false);
  // Skipping av == 0 terms only removes exact-zero contributions of the
  // form 0 * b, which cannot change the sum when b is finite.
  EXPECT_TRUE(bits_equal(dense, sparse));
}

// Engine-level pin: the whole aerial pipeline (fused scatter, pruned FFTs,
// abs2-scale accumulate, ordered reduction) across arms, on odd and even
// output grids (odd/even change the scatter wrap split point).
TEST(Simd, EngineAerialBitIdenticalAcrossArms) {
  Rng rng = make_rng(7);
  for (const int out_px : {32, 33}) {
    const int kdim = 9;
    AerialEngine engine(random_kernels(5, kdim, rng, /*dark_border=*/true),
                        out_px);
    const Grid<cd> spectrum = random_spectrum(kdim + 4, rng);
    Grid<double> ref;
    {
      ArmGuard guard;
      simd::force_arm(simd::Arm::kScalar);
      ref = engine.aerial(spectrum);
    }
    for_each_vector_arm([&](simd::Arm arm) {
      const Grid<double> got = engine.aerial(spectrum);
      ASSERT_EQ(got.size(), ref.size());
      EXPECT_EQ(std::memcmp(got.data(), ref.data(),
                            ref.size() * sizeof(double)),
                0)
          << "out_px=" << out_px << " arm=" << simd::arm_name(arm);
    });
  }
}

// Concurrency: four threads hammer aerial_batch under the detected arm
// (bit-compared against the scalar arm's serial answer).  Run under the
// tsan preset, this also proves the dispatch atomic and workspace pool are
// race-free with the SIMD kernels in play.
TEST(Simd, ConcurrentAerialBatchBitIdentical) {
  Rng rng = make_rng(8);
  const int out_px = 24, kdim = 7;
  AerialEngine engine(random_kernels(4, kdim, rng, /*dark_border=*/true),
                      out_px);
  std::vector<Grid<cd>> spectra;
  for (int i = 0; i < 4; ++i) spectra.push_back(random_spectrum(kdim + 2, rng));
  std::vector<Grid<double>> ref;
  {
    ArmGuard guard;
    simd::force_arm(simd::Arm::kScalar);
    ref = engine.aerial_batch(spectra);
  }
  std::vector<std::vector<Grid<double>>> got(4);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] { got[static_cast<std::size_t>(t)] =
                                      engine.aerial_batch(spectra); });
  }
  for (auto& th : threads) th.join();
  for (const auto& batch : got) {
    ASSERT_EQ(batch.size(), ref.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(std::memcmp(batch[i].data(), ref[i].data(),
                            ref[i].size() * sizeof(double)),
                0);
    }
  }
}

}  // namespace
}  // namespace nitho
