// Tests for src/rollout/: the LTFB-style replica tournament, replica
// serialize/restore, and the generation-tagged hot-swap contract with a
// live LithoServer — every served result is bit-identical to the direct
// FastLitho computation of exactly one published kernel generation, even
// when swaps race submits.  This suite also runs under the `tsan` preset.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "litho/golden.hpp"
#include "nitho/fast_litho.hpp"
#include "nitho/trainer.hpp"
#include "rollout/rollout.hpp"
#include "serve/server.hpp"
#include "support/test_support.hpp"

namespace nitho {
namespace {

using rollout::RolloutConfig;
using rollout::RolloutController;
using rollout::RolloutStats;
using rollout::RoundResult;
using rollout::TrainerReplica;
using serve::LithoServer;
using serve::ServeOptions;
using test::make_rng;
using test::random_kernels;
using test::random_mask;

LithoConfig small_litho_config() {
  LithoConfig cfg;
  cfg.tile_nm = 512;
  cfg.raster_px = 512;
  cfg.analysis_px = 64;
  cfg.sim_px = 32;
  cfg.spectrum_crop = 31;
  cfg.max_rank = 200;
  return cfg;
}

const GoldenEngine& engine() {
  static const GoldenEngine e{small_litho_config()};
  return e;
}

RolloutConfig tiny_rollout_config() {
  RolloutConfig cfg;
  cfg.replicas = 2;
  cfg.rounds = 2;
  cfg.epochs_per_round = 1;
  cfg.model.kernel_dim = 9;
  cfg.model.rank = 4;
  cfg.model.encoding.features = 16;
  cfg.model.hidden = 8;
  cfg.model.blocks = 1;
  cfg.train.batch = 2;
  cfg.train.train_px = 32;
  cfg.eval_batch = 2;
  return cfg;
}

/// Shared train/holdout split over one small golden dataset, built once.
struct Sets {
  TrainingSet train;
  TrainingSet holdout;
};

const Sets& tiny_sets() {
  static const Sets sets = [] {
    const Dataset ds = engine().make_dataset(DatasetKind::B1, 6, 1234);
    std::vector<const Sample*> train, holdout;
    for (int i = 0; i < 4; ++i) train.push_back(&ds.samples[i]);
    for (int i = 4; i < 6; ++i) holdout.push_back(&ds.samples[i]);
    Sets s;
    s.train = prepare_training_set(train, 9, 32);
    s.holdout = prepare_training_set(holdout, 9, 32);
    return s;
  }();
  return sets;
}

TEST(Rollout, ValidatesConfigAndSets) {
  RolloutConfig cfg = tiny_rollout_config();
  cfg.replicas = 0;
  EXPECT_THROW(RolloutController(cfg, tiny_sets().train, tiny_sets().holdout),
               check_error);
  cfg = tiny_rollout_config();
  cfg.lr_spread = 0.5f;
  EXPECT_THROW(RolloutController(cfg, tiny_sets().train, tiny_sets().holdout),
               check_error);
  cfg = tiny_rollout_config();
  const TrainingSet other = [] {
    const Dataset ds = engine().make_dataset(DatasetKind::B1, 1, 5);
    return prepare_training_set({&ds.samples[0]}, 11, 32);
  }();
  EXPECT_THROW(RolloutController(cfg, tiny_sets().train, other), check_error);
}

TEST(Rollout, TournamentIsDeterministic) {
  const auto run = [] {
    RolloutController ctl(tiny_rollout_config(), tiny_sets().train,
                          tiny_sets().holdout);
    const RolloutStats stats = ctl.run(nullptr);
    return std::make_pair(stats, ctl.replica(0).model().export_kernels());
  };
  const auto [sa, ka] = run();
  const auto [sb, kb] = run();
  ASSERT_EQ(sa.rounds.size(), 2u);
  ASSERT_EQ(sb.rounds.size(), 2u);
  for (std::size_t r = 0; r < sa.rounds.size(); ++r) {
    EXPECT_EQ(sa.rounds[r].winner, sb.rounds[r].winner);
    EXPECT_EQ(sa.rounds[r].eval_losses, sb.rounds[r].eval_losses);
    EXPECT_EQ(sa.rounds[r].winner_lr, sb.rounds[r].winner_lr);
  }
  EXPECT_EQ(sa.final_winner, sb.final_winner);
  ASSERT_EQ(ka.size(), kb.size());
  for (std::size_t i = 0; i < ka.size(); ++i) EXPECT_EQ(ka[i], kb[i]);
}

TEST(Rollout, LosersAdoptTheWinnersWeightsEachRound) {
  RolloutController ctl(tiny_rollout_config(), tiny_sets().train,
                        tiny_sets().holdout);
  const RoundResult res = ctl.run_round(nullptr);
  ASSERT_EQ(res.eval_losses.size(), 2u);
  for (double l : res.eval_losses) EXPECT_TRUE(std::isfinite(l));
  EXPECT_EQ(res.winner_loss, res.eval_losses[static_cast<std::size_t>(
                                 res.winner)]);
  EXPECT_EQ(res.generation, 0u);  // no server attached
  // After adoption every replica carries the winner's weights bit for bit
  // and sits at the same epoch cursor.
  const auto kw = ctl.replica(res.winner).model().export_kernels();
  for (int i = 0; i < ctl.replica_count(); ++i) {
    const auto ki = ctl.replica(i).model().export_kernels();
    ASSERT_EQ(ki.size(), kw.size());
    for (std::size_t k = 0; k < kw.size(); ++k) {
      EXPECT_EQ(ki[k], kw[k]) << "replica " << i << " kernel " << k;
    }
    EXPECT_EQ(ctl.replica(i).trainer().epochs_done(), 1);
    EXPECT_EQ(ctl.replica(i).trainer().config().epochs, 2);
  }
  EXPECT_FALSE(ctl.done());
  ctl.run_round(nullptr);
  EXPECT_TRUE(ctl.done());
  EXPECT_THROW(ctl.run_round(nullptr), check_error);
}

TEST(Rollout, ReplicaStateRoundTripsIntoAFreshReplica) {
  RolloutConfig cfg = tiny_rollout_config();
  RolloutController ctl(cfg, tiny_sets().train, tiny_sets().holdout);
  ctl.run_round(nullptr);
  TrainerReplica& donor = ctl.replica(1);
  std::stringstream state;
  donor.save_state(state);

  NithoTrainConfig tc = cfg.train;
  tc.epochs = cfg.rounds * cfg.epochs_per_round;
  cfg.model.seed = 31337;  // different init — must be overwritten
  TrainerReplica restored(7, cfg, tiny_sets().train, tc);
  restored.load_state(state);
  EXPECT_EQ(restored.trainer().epochs_done(), donor.trainer().epochs_done());
  EXPECT_EQ(restored.evaluate(tiny_sets().holdout, 2),
            donor.evaluate(tiny_sets().holdout, 2));
  const auto ka = donor.model().export_kernels();
  const auto kb = restored.model().export_kernels();
  for (std::size_t i = 0; i < ka.size(); ++i) EXPECT_EQ(ka[i], kb[i]);
}

// ---------------------------------------------------------------------------
// Generation-tagged hot swap (LithoServer)
// ---------------------------------------------------------------------------

TEST(GenerationSwap, SwapReturnsMonotonicGenerationsAndStatsTrackThem) {
  Rng rng = make_rng(21);
  LithoServer server(FastLitho(random_kernels(2, 5, rng)));
  EXPECT_EQ(server.generation(), 0u);
  EXPECT_EQ(server.stats().kernel_generation, 0u);
  EXPECT_EQ(server.swap_kernels(FastLitho(random_kernels(2, 5, rng))), 1u);
  EXPECT_EQ(server.generation(), 1u);
  EXPECT_EQ(server.swap_kernels(FastLitho(random_kernels(2, 5, rng))), 2u);
  EXPECT_EQ(server.generation(), 2u);
  EXPECT_EQ(server.stats().kernel_generation, 2u);
  EXPECT_EQ(server.shard_stats(0).kernel_generation, 2u);
}

TEST(GenerationSwap, CaptureAtSubmitPinsRequestsToTheirGeneration) {
  Rng rng = make_rng(33);
  const auto kernels_a = random_kernels(2, 5, rng);
  const auto kernels_b = random_kernels(2, 5, rng);
  const Grid<double> mask = random_mask(24, 24, rng);
  const FastLitho direct_a(kernels_a);
  const FastLitho direct_b(kernels_b);
  const Grid<double> want_a = direct_a.aerial_from_mask(mask, 16);
  const Grid<double> want_b = direct_b.aerial_from_mask(mask, 16);

  ServeOptions opt;
  opt.shards = 1;
  opt.queue_capacity = 64;
  LithoServer server(FastLitho(kernels_a), opt);
  // Queue a burst, swap immediately, queue another burst: whatever the
  // worker's progress, pre-swap submissions must serve generation 0 and
  // post-swap submissions generation 1 — never a mixture.
  std::vector<std::future<Grid<double>>> before, after;
  for (int i = 0; i < 8; ++i) {
    before.push_back(server.submit(mask, 16));
  }
  EXPECT_EQ(server.swap_kernels(FastLitho(kernels_b)), 1u);
  for (int i = 0; i < 8; ++i) {
    after.push_back(server.submit(mask, 16));
  }
  for (auto& f : before) EXPECT_EQ(f.get(), want_a);
  for (auto& f : after) EXPECT_EQ(f.get(), want_b);
}

TEST(Rollout, HotSwapIntoLiveServerServesExactGenerations) {
  RolloutConfig cfg = tiny_rollout_config();
  RolloutController ctl(cfg, tiny_sets().train, tiny_sets().holdout);

  // Serve from replica 0's untrained kernels as generation 0.
  ServeOptions opt;
  opt.shards = 2;
  LithoServer server(
      FastLitho::from_model(ctl.replica(0).model(), cfg.resist_threshold),
      opt);
  Rng rng = make_rng(55);
  const Grid<double> mask = random_mask(32, 32, rng);
  const int out_px = 16;

  // Open-loop traffic riding across both tournament swaps.
  std::atomic<bool> stop{false};
  std::vector<std::future<Grid<double>>> results;
  std::thread traffic([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      Grid<double> m = mask;
      if (auto fut = server.try_submit(m, out_px)) {
        results.push_back(std::move(*fut));
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // Snapshot each published generation's kernels as the swaps happen.
  std::vector<std::shared_ptr<const FastLitho>> snaps{server.snapshot()};
  const RolloutStats stats = [&] {
    RolloutStats st;
    while (!ctl.done()) {
      const RoundResult res = ctl.run_round(&server);
      EXPECT_EQ(res.generation, static_cast<std::uint64_t>(res.round));
      snaps.push_back(server.snapshot());
      st = ctl.stats();
    }
    return st;
  }();
  stop.store(true, std::memory_order_relaxed);
  traffic.join();

  EXPECT_EQ(stats.swaps, 2u);
  EXPECT_EQ(server.generation(), 2u);
  ASSERT_EQ(snaps.size(), 3u);

  // Every served result must equal the direct computation of exactly one
  // published generation, bit for bit — a swap mid-batch would break this.
  std::vector<Grid<double>> expected;
  for (const auto& snap : snaps) {
    expected.push_back(snap->aerial_from_mask(mask, out_px));
  }
  ASSERT_FALSE(results.empty());
  int matched[3] = {0, 0, 0};
  for (auto& f : results) {
    const Grid<double> got = f.get();
    int hits = 0;
    for (std::size_t g = 0; g < expected.size(); ++g) {
      if (got == expected[g]) {
        ++matched[g];
        ++hits;
        break;
      }
    }
    EXPECT_EQ(hits, 1) << "result matches no published generation";
  }
  // The last generation keeps serving after the tournament, so at least
  // the tail of the traffic must have landed on it.
  server.stop();
  SUCCEED() << "gen hits: " << matched[0] << "/" << matched[1] << "/"
            << matched[2];
}

}  // namespace
}  // namespace nitho
