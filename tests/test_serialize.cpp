// Round-trip suite for the checked stream-record serialization substrate
// (nn/serialize) and its consumers (Adam, Rng, Cmlp/NithoModel weights):
// every state object is serialized, restored into a differently-initialized
// peer, and asserted bit-equal — and every truncation/corruption of the
// stream must throw check_error rather than zero-fill state (the LBANN
// serialize-then-CHECK-equal test shape).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "nitho/cmlp.hpp"
#include "nitho/model.hpp"
#include "nn/ops.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"
#include "support/test_support.hpp"

namespace nitho {
namespace {

using nn::Tensor;
using nn::Var;

// Bit-exact float comparison: NaN payloads and signed zeros must survive
// the round trip unchanged, which operator== cannot check.
bool bits_equal(float a, float b) {
  std::uint32_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof ba);
  std::memcpy(&bb, &b, sizeof bb);
  return ba == bb;
}

::testing::AssertionResult tensors_bit_equal(const Tensor& a,
                                             const Tensor& b) {
  if (a.shape() != b.shape()) {
    return ::testing::AssertionFailure()
           << "shape " << a.shape_str() << " vs " << b.shape_str();
  }
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    if (!bits_equal(a[i], b[i])) {
      return ::testing::AssertionFailure() << "element " << i << ": " << a[i]
                                           << " vs " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

Tensor random_tensor(std::vector<int> shape, std::uint64_t salt) {
  Rng rng = test::make_rng(salt);
  Tensor t(std::move(shape));
  t.randn(rng, 1.0f);
  return t;
}

TEST(SerializeRecords, ScalarsRoundTrip) {
  std::stringstream ss;
  nn::write_u64(ss, 0);
  nn::write_u64(ss, std::numeric_limits<std::uint64_t>::max());
  nn::write_f32(ss, -0.0f);
  nn::write_f32(ss, std::numeric_limits<float>::quiet_NaN());
  nn::write_string(ss, "");
  nn::write_string(ss, std::string("nul\0byte", 8));
  EXPECT_EQ(nn::read_u64(ss), 0u);
  EXPECT_EQ(nn::read_u64(ss), std::numeric_limits<std::uint64_t>::max());
  const float neg_zero = nn::read_f32(ss);
  EXPECT_TRUE(bits_equal(neg_zero, -0.0f));
  EXPECT_TRUE(std::isnan(nn::read_f32(ss)));
  EXPECT_EQ(nn::read_string(ss), "");
  EXPECT_EQ(nn::read_string(ss), std::string("nul\0byte", 8));
}

TEST(SerializeRecords, VectorsRoundTrip) {
  std::stringstream ss;
  const std::vector<float> f{1.5f, -2.25f, 0.0f};
  const std::vector<double> d{1e-300, -3.7, 0.0};
  nn::write_floats(ss, f);
  nn::write_floats(ss, {});
  nn::write_doubles(ss, d);
  nn::write_doubles(ss, {});
  EXPECT_EQ(nn::read_floats(ss), f);
  EXPECT_EQ(nn::read_floats(ss), std::vector<float>{});
  EXPECT_EQ(nn::read_doubles(ss), d);
  EXPECT_EQ(nn::read_doubles(ss), std::vector<double>{});
}

TEST(SerializeRecords, TensorsRoundTripAcrossShapes) {
  // Prime dims, a Bluestein-favorite odd size, a zero-size shape and a
  // rank-0 tensor: the shape vector itself must survive, not just the
  // payload.
  const std::vector<std::vector<int>> shapes{
      {7, 11}, {33, 33}, {3, 0, 5}, {}, {1}, {2, 3, 4, 2}};
  std::stringstream ss;
  std::vector<Tensor> originals;
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    originals.push_back(random_tensor(shapes[i], i + 1));
    nn::write_tensor(ss, originals.back());
  }
  for (const Tensor& t : originals) {
    EXPECT_TRUE(tensors_bit_equal(nn::read_tensor(ss), t));
  }
}

TEST(SerializeRecords, NanAndInfPayloadsSurviveBitExactly) {
  Tensor t({2, 3});
  t[0] = std::numeric_limits<float>::quiet_NaN();
  t[1] = std::numeric_limits<float>::infinity();
  t[2] = -std::numeric_limits<float>::infinity();
  t[3] = -0.0f;
  t[4] = std::numeric_limits<float>::denorm_min();
  t[5] = 1.0f;
  std::stringstream ss;
  nn::write_tensor(ss, t);
  EXPECT_TRUE(tensors_bit_equal(nn::read_tensor(ss), t));
}

TEST(SerializeRecords, TruncatedStreamsThrowNotZeroFill) {
  std::stringstream full;
  nn::write_tensor(full, random_tensor({4, 5}, 3));
  const std::string bytes = full.str();
  // Every strict prefix must throw: header-only, shape-only, half payload.
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{3}, std::size_t{8}, std::size_t{20},
        bytes.size() - 1}) {
    std::stringstream cut_ss(bytes.substr(0, cut));
    EXPECT_THROW(nn::read_tensor(cut_ss), check_error) << "cut at " << cut;
  }
  // Same for primitive records.
  std::stringstream u64s;
  nn::write_u64(u64s, 42);
  std::stringstream cut_u64(u64s.str().substr(0, u64s.str().size() - 1));
  EXPECT_THROW(nn::read_u64(cut_u64), check_error);
}

TEST(SerializeRecords, CorruptMagicAndKindThrow) {
  std::stringstream ss;
  nn::write_f32(ss, 1.0f);
  std::string bytes = ss.str();
  {
    std::string bad = bytes;
    bad[0] ^= 0x5A;  // flip magic bits
    std::stringstream bad_ss(bad);
    EXPECT_THROW(nn::read_f32(bad_ss), check_error);
  }
  {
    // Intact stream read as the wrong record kind.
    std::stringstream kind_ss(bytes);
    EXPECT_THROW(nn::read_u64(kind_ss), check_error);
  }
}

TEST(SerializeRecords, HostileSizesThrowBeforeAllocating) {
  // A tensor record claiming rank 200.
  std::stringstream rank_ss;
  const std::uint32_t magic = 0x4E535452u, kind = 1, rank = 200;
  rank_ss.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  rank_ss.write(reinterpret_cast<const char*>(&kind), sizeof kind);
  rank_ss.write(reinterpret_cast<const char*>(&rank), sizeof rank);
  EXPECT_THROW(nn::read_tensor(rank_ss), check_error);
  // Dims whose product overflows int64 must throw in the guard, not wrap.
  std::stringstream dim_ss;
  const std::uint32_t rank2 = 4;
  dim_ss.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  dim_ss.write(reinterpret_cast<const char*>(&kind), sizeof kind);
  dim_ss.write(reinterpret_cast<const char*>(&rank2), sizeof rank2);
  const std::int64_t huge = std::numeric_limits<int>::max();
  for (int i = 0; i < 4; ++i) {
    dim_ss.write(reinterpret_cast<const char*>(&huge), sizeof huge);
  }
  EXPECT_THROW(nn::read_tensor(dim_ss), check_error);
  // A float-vector record claiming 2^62 elements.
  std::stringstream count_ss;
  const std::uint32_t fkind = 2;
  const std::int64_t absurd = std::int64_t{1} << 62;
  count_ss.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  count_ss.write(reinterpret_cast<const char*>(&fkind), sizeof fkind);
  count_ss.write(reinterpret_cast<const char*>(&absurd), sizeof absurd);
  EXPECT_THROW(nn::read_floats(count_ss), check_error);
}

TEST(SerializeParameters, CmlpWeightsRoundTripIntoDifferentInit) {
  CmlpConfig cfg;
  cfg.in_features = 6;
  cfg.hidden = 5;
  cfg.blocks = 2;
  cfg.out = 3;
  cfg.seed = 1;
  const Cmlp stateful(cfg);
  cfg.seed = 999;  // deliberately different init, as in LBANN's
  const Cmlp fresh(cfg);  // Stateful-vs-Default builder comparison

  std::stringstream ss;
  nn::write_parameters(ss, stateful.parameters());
  nn::read_parameters(ss, fresh.parameters());
  const auto pa = stateful.parameters();
  const auto pb = fresh.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(tensors_bit_equal(pa[i]->value, pb[i]->value)) << "param " << i;
  }
}

TEST(SerializeParameters, NithoModelWeightsRoundTrip) {
  NithoConfig cfg;
  cfg.rank = 4;
  cfg.encoding.features = 16;
  cfg.hidden = 8;
  cfg.blocks = 1;
  cfg.kernel_dim = 9;
  NithoModel a(cfg, 512, 193.0, 1.35);
  cfg.seed = 31337;
  NithoModel b(cfg, 512, 193.0, 1.35);

  std::stringstream ss;
  nn::write_parameters(ss, a.parameters());
  nn::read_parameters(ss, b.parameters());
  const auto ka = a.export_kernels();
  const auto kb = b.export_kernels();
  ASSERT_EQ(ka.size(), kb.size());
  for (std::size_t i = 0; i < ka.size(); ++i) EXPECT_EQ(ka[i], kb[i]);
}

TEST(SerializeParameters, WrongCountAndWrongShapeThrow) {
  const Var p1 = nn::make_leaf(random_tensor({3, 4}, 1), true);
  const Var p2 = nn::make_leaf(random_tensor({5}, 2), true);
  std::stringstream ss;
  nn::write_parameters(ss, std::vector<Var>{p1, p2});
  const std::string bytes = ss.str();

  // Restoring into fewer parameters than stored.
  std::stringstream fewer(bytes);
  EXPECT_THROW(nn::read_parameters(fewer, std::vector<Var>{p1}), check_error);
  // Restoring into a parameter of a different shape — same element count,
  // so a flat loader would silently accept it.
  const Var wrong = nn::make_leaf(Tensor({4, 3}), true);
  std::stringstream reshaped(bytes);
  EXPECT_THROW(nn::read_parameters(reshaped, std::vector<Var>{wrong, p2}),
               check_error);
  // A failed restore must not have clobbered the target.
  EXPECT_TRUE(tensors_bit_equal(wrong->value, Tensor({4, 3})));
}

// Builds a tiny optimization problem and runs `steps` Adam updates so the
// moments and step count are non-trivial.
struct AdamFixture {
  explicit AdamFixture(std::uint64_t seed, float lr = 1e-2f)
      : w(nn::make_leaf(random_tensor({3, 2, 2}, seed), true)),
        b(nn::make_leaf(random_tensor({2}, seed + 1), true)),
        opt({w, b}, lr) {}

  void run(int steps) {
    for (int i = 0; i < steps; ++i) {
      opt.zero_grad();
      nn::Var loss = nn::add(nn::sum(nn::square(w)), nn::sum(nn::square(b)));
      nn::backward(loss);
      opt.step();
    }
  }

  Var w, b;
  nn::Adam opt;
};

TEST(SerializeAdam, StateRoundTripsAndResumesIdentically) {
  AdamFixture a(7);
  a.run(5);
  std::stringstream state;
  a.opt.save_state(state);
  nn::write_parameters(state, std::vector<Var>{a.w, a.b});

  // Restore into an optimizer with different history and hyperparameters.
  AdamFixture b(1234, 5e-4f);
  b.run(2);
  b.opt.load_state(state);
  nn::read_parameters(state, std::vector<Var>{b.w, b.b});
  EXPECT_EQ(b.opt.step_count(), a.opt.step_count());
  EXPECT_EQ(b.opt.lr(), a.opt.lr());
  const std::vector<float> ma = a.opt.dump_state();
  const std::vector<float> mb = b.opt.dump_state();
  ASSERT_EQ(ma.size(), mb.size());
  for (std::size_t i = 0; i < ma.size(); ++i) {
    EXPECT_TRUE(bits_equal(ma[i], mb[i])) << "moment " << i;
  }
  // Resumed trajectories stay bit-identical.
  a.run(3);
  b.run(3);
  EXPECT_TRUE(tensors_bit_equal(a.w->value, b.w->value));
  EXPECT_TRUE(tensors_bit_equal(a.b->value, b.b->value));
}

TEST(SerializeAdam, MismatchedStateThrowsWithoutPartialRestore) {
  AdamFixture a(7);
  a.run(3);
  std::stringstream state;
  a.opt.save_state(state);

  // An optimizer bound to differently-shaped parameters must reject the
  // stream and keep its own moments untouched.
  const Var other = nn::make_leaf(random_tensor({4, 4}, 9), true);
  const Var other2 = nn::make_leaf(random_tensor({2}, 10), true);
  nn::Adam wrong({other, other2}, 1e-2f);
  const std::vector<float> before = wrong.dump_state();
  EXPECT_THROW(wrong.load_state(state), check_error);
  EXPECT_EQ(wrong.dump_state(), before);
  EXPECT_EQ(wrong.step_count(), 0);

  // Wrong parameter count.
  std::stringstream state2;
  a.opt.save_state(state2);
  nn::Adam fewer({other}, 1e-2f);
  EXPECT_THROW(fewer.load_state(state2), check_error);

  // Truncated mid-moments.
  std::stringstream full;
  a.opt.save_state(full);
  const std::string bytes = full.str();
  std::stringstream cut(bytes.substr(0, bytes.size() / 2));
  AdamFixture c(7);
  EXPECT_THROW(c.opt.load_state(cut), check_error);
}

TEST(SerializeRng, StateRoundTripContinuesTheExactStream) {
  Rng a = test::make_rng(5);
  for (int i = 0; i < 100; ++i) a.uniform();
  const std::string state = a.state();
  Rng b = test::make_rng(999);  // different seed, fully overwritten
  b.set_state(state);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.engine()(), b.engine()()) << "draw " << i;
  }
}

TEST(SerializeRng, MalformedStateThrows) {
  Rng r = test::make_rng(1);
  EXPECT_THROW(r.set_state(""), check_error);
  EXPECT_THROW(r.set_state("not a generator state"), check_error);
  // A truncated state string (the standard format is 624+ numbers).
  const std::string good = r.state();
  EXPECT_THROW(r.set_state(good.substr(0, good.size() / 2)), check_error);
}

TEST(SerializeFlat, FlatBlobStaysWireCompatible) {
  // The historical flat format must keep working alongside the records.
  const Var p = nn::make_leaf(random_tensor({2, 3}, 8), true);
  const std::vector<float> blob = nn::dump_parameters(std::vector<Var>{p});
  ASSERT_EQ(blob.size(), 6u);
  const Var q = nn::make_leaf(Tensor({2, 3}), true);
  nn::load_parameters(std::vector<Var>{q}, blob);
  EXPECT_TRUE(tensors_bit_equal(p->value, q->value));
  EXPECT_THROW(nn::load_parameters(std::vector<Var>{q},
                                   std::vector<float>(5, 0.0f)),
               check_error);
}

}  // namespace
}  // namespace nitho
