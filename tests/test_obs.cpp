// Tests for src/obs/: the metrics registry (counters / gauges / log-bucket
// histograms), the span tracer, and the exporters (DESIGN.md §12).
//
// The load-bearing claims pinned here:
//   * bucket edges are exact — an edge value starts its own bucket — and
//     quantile estimates stay within the documented 1/(2·kSub) relative
//     error of the true nearest-rank sample;
//   * concurrent record()/inc() never tear a snapshot (sum of bucket
//     counts can only run ahead of the total, never behind);
//   * trace rings overwrite oldest-first, count their drops, and the
//     Chrome trace_event exporter emits schema-valid JSON (the end-to-end
//     parse check lives in tests/validate_trace.py).
//
// This suite also runs under the `tsan` preset.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nitho {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::HistogramSnapshot;
using obs::LogHistogram;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::TraceConfig;
using obs::TraceEvent;
using obs::Tracer;

// ---------------------------------------------------------------------------
// nearest_rank_index: the one rank rule shared by exact percentiles and
// histogram quantiles.
// ---------------------------------------------------------------------------

TEST(NearestRank, MatchesCeilDefinition) {
  // ceil(p/100 * n) - 1, pinned against the float formula across a sweep.
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                        std::size_t{64}, std::size_t{100}, std::size_t{4096}}) {
    for (int p : {1, 25, 50, 90, 99, 100}) {
      const auto expect = static_cast<std::size_t>(
          std::ceil(p / 100.0 * static_cast<double>(n))) - 1;
      EXPECT_EQ(obs::nearest_rank_index(n, p), expect) << "n=" << n << " p=" << p;
    }
  }
  // The pins the serving layer has always relied on.
  EXPECT_EQ(obs::nearest_rank_index(1, 50), 0u);
  EXPECT_EQ(obs::nearest_rank_index(1, 99), 0u);
  EXPECT_EQ(obs::nearest_rank_index(100, 50), 49u);
  EXPECT_EQ(obs::nearest_rank_index(100, 99), 98u);
  EXPECT_EQ(obs::nearest_rank_index(4096, 99), 4055u);
}

TEST(NearestRank, RejectsDegenerateInputs) {
  EXPECT_THROW(obs::nearest_rank_index(0, 50), check_error);
  EXPECT_THROW(obs::nearest_rank_index(10, 0), check_error);
  EXPECT_THROW(obs::nearest_rank_index(10, 101), check_error);
}

// ---------------------------------------------------------------------------
// LogHistogram bucket geometry.
// ---------------------------------------------------------------------------

TEST(LogHistogram, BucketEdgesAreExact) {
  // Every bucket's inclusive lower edge maps to that bucket, buckets tile
  // the range ([upper of i] == [lower of i+1]), and the value just below
  // the upper edge still belongs to bucket i.
  for (int i = 0; i < LogHistogram::kBuckets; ++i) {
    const double lo = LogHistogram::bucket_lower(i);
    const double hi = LogHistogram::bucket_upper(i);
    ASSERT_LT(lo, hi);
    EXPECT_EQ(LogHistogram::bucket_index(lo), i) << "lower edge of " << i;
    const double just_below = std::nextafter(hi, lo);
    EXPECT_EQ(LogHistogram::bucket_index(just_below), i)
        << "below upper edge of " << i;
    if (i + 1 < LogHistogram::kBuckets) {
      EXPECT_DOUBLE_EQ(hi, LogHistogram::bucket_lower(i + 1));
      EXPECT_EQ(LogHistogram::bucket_index(hi), i + 1) << "upper edge of " << i;
    }
  }
}

TEST(LogHistogram, BucketWidthBoundsRelativeError) {
  // Width of every bucket is at most 1/kSub of its lower edge — the fact
  // the 1/(2·kSub) quantile error bound rests on.
  for (int i = 0; i < LogHistogram::kBuckets; ++i) {
    const double lo = LogHistogram::bucket_lower(i);
    const double width = LogHistogram::bucket_upper(i) - lo;
    EXPECT_LE(width / lo, 1.0 / LogHistogram::kSub + 1e-12) << "bucket " << i;
  }
}

TEST(LogHistogram, TailsClampButCount) {
  EXPECT_EQ(LogHistogram::bucket_index(0.0), 0);
  EXPECT_EQ(LogHistogram::bucket_index(-3.5), 0);
  EXPECT_EQ(LogHistogram::bucket_index(std::nan("")), 0);
  // Below the bottom edge (2^kMinExp) clamps down, past the top clamps up.
  EXPECT_EQ(LogHistogram::bucket_index(std::ldexp(1.0, LogHistogram::kMinExp - 2)),
            0);
  EXPECT_EQ(LogHistogram::bucket_index(1e300), LogHistogram::kBuckets - 1);

  LogHistogram h;
  h.record(-1.0);
  h.record(std::nan(""));
  h.record(1e300);
  EXPECT_EQ(h.count(), 3u);  // tails are counted, never dropped
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.counts.front(), 2u);
  EXPECT_EQ(s.counts.back(), 1u);
}

// ---------------------------------------------------------------------------
// Quantiles: exactness of rank, boundedness of value.
// ---------------------------------------------------------------------------

TEST(LogHistogram, QuantileMatchesExactRankWithinBound) {
  // Deterministic log-uniform samples over ~6 decades: the regime the
  // latency histogram actually sees (tens of us to seconds).
  Rng rng(1234);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(std::exp(rng.uniform(std::log(10.0), std::log(3.0e6))));
  }
  LogHistogram h;
  for (const double v : samples) h.record(v);
  std::sort(samples.begin(), samples.end());

  const HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.count, samples.size());
  const double bound = 1.0 / (2.0 * LogHistogram::kSub);  // documented: 3.125%
  for (const int p : {1, 10, 25, 50, 75, 90, 99, 100}) {
    const double exact = samples[obs::nearest_rank_index(samples.size(), p)];
    const double est = s.quantile(p);
    EXPECT_LE(std::abs(est - exact) / exact, bound + 1e-9)
        << "p" << p << " exact=" << exact << " est=" << est;
  }
}

TEST(LogHistogram, QuantileDegenerateCases) {
  LogHistogram h;
  EXPECT_TRUE(std::isnan(h.snapshot().quantile(50)));
  EXPECT_TRUE(std::isnan(h.snapshot().mean()));
  h.record(42.0);
  const HistogramSnapshot s = h.snapshot();
  // One sample: every percentile is that sample's bucket midpoint.
  const int b = LogHistogram::bucket_index(42.0);
  const double mid =
      0.5 * (LogHistogram::bucket_lower(b) + LogHistogram::bucket_upper(b));
  EXPECT_DOUBLE_EQ(s.quantile(1), mid);
  EXPECT_DOUBLE_EQ(s.quantile(99), mid);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(HistogramSnapshot, MergeEqualsCombinedRecording) {
  Rng rng(77);
  LogHistogram a, b, both;
  for (int i = 0; i < 500; ++i) {
    const double v = std::exp(rng.uniform(0.0, 10.0));
    ((i % 2 == 0) ? a : b).record(v);
    both.record(v);
  }
  HistogramSnapshot merged = a.snapshot();
  merged += b.snapshot();
  const HistogramSnapshot expect = both.snapshot();
  EXPECT_EQ(merged.count, expect.count);
  EXPECT_DOUBLE_EQ(merged.sum, expect.sum);
  EXPECT_EQ(merged.counts, expect.counts);
  EXPECT_DOUBLE_EQ(merged.quantile(99), expect.quantile(99));
}

// ---------------------------------------------------------------------------
// Concurrency: snapshots taken mid-flight are never torn.
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, ConcurrentRecordsNeverTearSnapshots) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test.events");
  LogHistogram& h = reg.histogram("test.latency");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50000;

  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.inc();
        h.record(static_cast<double>(1 + (i + static_cast<std::uint64_t>(t)) % 1000));
      }
    });
  }
  go.store(true, std::memory_order_release);

  // record() bumps the bucket before the total, so any snapshot must see
  // at least as many bucketed values as its total claims.
  std::uint64_t last_count = 0;
  for (int i = 0; i < 200; ++i) {
    const HistogramSnapshot s = h.snapshot();
    std::uint64_t bucketed = 0;
    for (const std::uint64_t n : s.counts) bucketed += n;
    EXPECT_GE(bucketed, s.count);
    EXPECT_GE(s.count, last_count);  // totals are monotone
    last_count = s.count;
  }
  for (std::thread& w : writers) w.join();

  EXPECT_EQ(c.value(), kThreads * kPerThread);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  std::uint64_t bucketed = 0;
  for (const std::uint64_t n : s.counts) bucketed += n;
  EXPECT_EQ(bucketed, s.count);
}

TEST(MetricsRegistry, GetOrCreateAndKindClash) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x.count");
  a.inc(3);
  EXPECT_EQ(&reg.counter("x.count"), &a);  // same name, same metric
  EXPECT_EQ(reg.counter("x.count").value(), 3u);
  EXPECT_THROW(reg.gauge("x.count"), check_error);      // kind clash
  EXPECT_THROW(reg.histogram("x.count"), check_error);  // kind clash
  reg.gauge("x.depth").set(7.5);
  EXPECT_EQ(reg.size(), 2u);

  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 2u);
  // Name-sorted, and find() resolves by name.
  EXPECT_EQ(snap.metrics[0].name, "x.count");
  EXPECT_EQ(snap.metrics[1].name, "x.depth");
  ASSERT_NE(snap.find("x.depth"), nullptr);
  EXPECT_DOUBLE_EQ(snap.find("x.depth")->value, 7.5);
  EXPECT_EQ(snap.find("no.such"), nullptr);
}

TEST(Gauge, ConcurrentAddsNeverLoseUpdates) {
  Gauge g;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) g.add(1.0);
    });
  }
  for (std::thread& w : writers) w.join();
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kThreads * kPerThread));
}

// ---------------------------------------------------------------------------
// Tracer: sampling, ring overflow, ordering.
// ---------------------------------------------------------------------------

TEST(Tracer, DisabledIsInert) {
  TraceConfig cfg;  // enabled == false by default
  Tracer t(cfg, 2);
  EXPECT_FALSE(t.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(t.sample());
  t.record({"x", "test", 1, 0, 0, 1});
  EXPECT_TRUE(t.events().empty());
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, SamplingAdmitsFirstAndEveryNth) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.sample_every = 4;
  Tracer t(cfg, 1);
  int admitted = 0;
  for (int i = 0; i < 16; ++i) {
    const bool s = t.sample();
    if (i % 4 == 0) {
      EXPECT_TRUE(s) << "call " << i;
    }
    admitted += s ? 1 : 0;
  }
  EXPECT_EQ(admitted, 4);
}

TEST(Tracer, RingOverwritesOldestAndCountsDrops) {
  TraceConfig cfg;
  cfg.enabled = true;
  cfg.ring_capacity = 8;
  Tracer t(cfg, 1);
  for (std::uint64_t i = 0; i < 20; ++i) {
    t.record({"span", "test", i, 0, static_cast<std::int64_t>(i), 1});
  }
  const std::vector<TraceEvent> evs = t.events();
  ASSERT_EQ(evs.size(), 8u);
  EXPECT_EQ(t.dropped(), 12u);
  // The retained spans are the 8 newest, oldest-first.
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].id, 12 + i);
    EXPECT_EQ(evs[i].start_us, static_cast<std::int64_t>(12 + i));
  }
}

TEST(Tracer, EventsSortedByStartAcrossTracksStably) {
  TraceConfig cfg;
  cfg.enabled = true;
  Tracer t(cfg, 3);
  t.record({"late", "test", 1, 2, 100, 5});
  t.record({"parent", "test", 2, 0, 10, 50});  // recorded before child...
  t.record({"child", "test", 2, 0, 10, 20});   // ...same start: stays after
  t.record({"early", "test", 3, 1, 1, 2});
  const std::vector<TraceEvent> evs = t.events();
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_STREQ(evs[0].name, "early");
  EXPECT_STREQ(evs[1].name, "parent");  // stable: parent precedes child
  EXPECT_STREQ(evs[2].name, "child");
  EXPECT_STREQ(evs[3].name, "late");
}

TEST(Tracer, RejectsDegenerateConfig) {
  TraceConfig cfg;
  cfg.sample_every = 0;
  EXPECT_THROW(Tracer(cfg, 1), check_error);
  cfg.sample_every = 1;
  cfg.ring_capacity = 0;
  EXPECT_THROW(Tracer(cfg, 1), check_error);
  cfg.ring_capacity = 1;
  EXPECT_THROW(Tracer(cfg, 0), check_error);
}

// ---------------------------------------------------------------------------
// Exporters.
// ---------------------------------------------------------------------------

TEST(Export, ChromeTraceJsonSchema) {
  TraceConfig cfg;
  cfg.enabled = true;
  Tracer t(cfg, 2);
  t.record({"compute", "serve", 7, 1, 100, 250});
  t.record({"with\"quote\nand\ttab", "test", 8, 0, 400, 10});

  std::ostringstream os;
  obs::write_chrome_trace(os, t);
  const std::string json = os.str();

  // Structural pins of the trace_event "JSON object format".
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"compute\",\"cat\":\"serve\",\"ph\":\"X\","
                      "\"ts\":100,\"dur\":250,\"pid\":1,\"tid\":1,"
                      "\"args\":{\"id\":7}"),
            std::string::npos);
  // Control characters and quotes in names come out escaped.
  EXPECT_NE(json.find("with\\\"quote\\nand\\ttab"), std::string::npos);
  // Balanced braces — cheap well-formedness check (full JSON parsing is
  // validate_trace.py's job).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Export, MultiTracerAssignsProcessIds) {
  TraceConfig cfg;
  cfg.enabled = true;
  Tracer a(cfg, 1), b(cfg, 1);
  a.record({"sa", "x", 1, 0, 5, 1});
  b.record({"sb", "y", 2, 0, 6, 1});
  std::ostringstream os;
  obs::write_chrome_trace(os, {&a, nullptr, &b});  // nulls are skipped
  const std::string json = os.str();
  EXPECT_NE(json.find("\"name\":\"sa\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"sb\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);  // index 2 -> pid 3
  EXPECT_EQ(json.find("\"pid\":2"), std::string::npos);
}

TEST(Export, MetricsTextAndCsv) {
  MetricsRegistry reg;
  reg.counter("a.count").inc(5);
  reg.gauge("b.depth").set(2.5);
  reg.histogram("c.lat").record(100.0);
  const MetricsSnapshot snap = reg.snapshot();

  std::ostringstream text;
  obs::write_metrics_text(text, snap);
  EXPECT_NE(text.str().find("a.count counter 5\n"), std::string::npos);
  EXPECT_NE(text.str().find("b.depth gauge 2.5\n"), std::string::npos);
  EXPECT_NE(text.str().find("c.lat hist count=1"), std::string::npos);

  std::ostringstream csv;
  obs::write_metrics_csv(csv, snap);
  EXPECT_EQ(csv.str().rfind("name,kind,value,count,mean,p50,p99\n", 0), 0u);
  EXPECT_NE(csv.str().find("a.count,counter,5,,,,\n"), std::string::npos);
  EXPECT_NE(csv.str().find("b.depth,gauge,2.5,,,,\n"), std::string::npos);
  EXPECT_NE(csv.str().find("c.lat,hist,,1,100,"), std::string::npos);
}

TEST(Export, TraceFileRoundTrips) {
  TraceConfig cfg;
  cfg.enabled = true;
  Tracer t(cfg, 1);
  t.record({"s", "x", 1, 0, 1, 1});
  const std::string path = ::testing::TempDir() + "obs_trace_roundtrip.json";
  obs::write_chrome_trace_file(path, t);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  std::ostringstream direct;
  obs::write_chrome_trace(direct, t);
  EXPECT_EQ(ss.str(), direct.str());
  EXPECT_THROW(obs::write_chrome_trace_file("/no/such/dir/t.json", t),
               check_error);
}

}  // namespace
}  // namespace nitho
