// Unit tests for src/optics: source sampling, pupil, resolution rule,
// TCC construction and SOCS decomposition.

#include <gtest/gtest.h>

#include <cmath>

#include "optics/pupil.hpp"
#include "optics/resolution.hpp"
#include "optics/socs.hpp"
#include "optics/source.hpp"
#include "optics/tcc.hpp"
#include "support/test_support.hpp"

namespace nitho {
namespace {

constexpr double kLambda = 193.0;
constexpr double kNa = 1.35;

TEST(Resolution, RayleighElement) {
  EXPECT_NEAR(resolution_element_nm(kLambda, kNa), 0.5 * 193.0 / 1.35, 1e-12);
}

TEST(Resolution, KernelDimMatchesPaperScaling) {
  // Paper: m ~ 0.028 * W for lambda=193, NA=1.35.
  EXPECT_EQ(kernel_dim(1024, kLambda, kNa), 29);
  EXPECT_EQ(kernel_dim(512, kLambda, kNa), 15);
  EXPECT_EQ(kernel_dim(2000, kLambda, kNa), 55);
  // Always odd.
  for (int w : {300, 511, 777, 1500}) {
    EXPECT_EQ(kernel_dim(w, kLambda, kNa) % 2, 1) << w;
  }
}

TEST(Resolution, PupilOrderIsHalfKernelRange) {
  const int w = 1024;
  EXPECT_EQ(pupil_order(w, kLambda, kNa), 7);
  EXPECT_EQ(kernel_dim(w, kLambda, kNa) / 2, 14);  // 2x pupil support
}

TEST(Source, WeightsNormalized) {
  for (auto shape : {SourceShape::Circular, SourceShape::Annular,
                     SourceShape::Quadrupole}) {
    SourceSpec spec;
    spec.shape = shape;
    const auto pts = sample_source(spec, kLambda, kNa, 1024, 2);
    EXPECT_FALSE(pts.empty());
    double total = 0.0;
    for (const auto& p : pts) total += p.weight;
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(Source, AnnularPointsInsideAnnulus) {
  SourceSpec spec;  // annular 0.5 / 0.8
  const auto pts = sample_source(spec, kLambda, kNa, 1024, 3);
  const double f_pupil = kNa / kLambda;
  for (const auto& p : pts) {
    const double r = std::hypot(p.fx, p.fy) / f_pupil;
    EXPECT_GE(r, spec.sigma_in - 1e-9);
    EXPECT_LE(r, spec.sigma_out + 1e-9);
  }
}

TEST(Source, CircularContainsDc) {
  SourceSpec spec;
  spec.shape = SourceShape::Circular;
  spec.sigma_in = 0.0;
  const auto pts = sample_source(spec, kLambda, kNa, 1024, 1);
  bool has_dc = false;
  for (const auto& p : pts) has_dc = has_dc || (p.fx == 0.0 && p.fy == 0.0);
  EXPECT_TRUE(has_dc);
}

TEST(Source, OversamplingRefinesQuadrature) {
  SourceSpec spec;
  const auto coarse = sample_source(spec, kLambda, kNa, 1024, 1);
  const auto fine = sample_source(spec, kLambda, kNa, 1024, 3);
  EXPECT_GT(fine.size(), 4 * coarse.size());
}

TEST(Source, QuadrupoleHasFourPoles) {
  SourceSpec spec;
  spec.shape = SourceShape::Quadrupole;
  const auto pts = sample_source(spec, kLambda, kNa, 2048, 2);
  int quads[4] = {0, 0, 0, 0};
  for (const auto& p : pts) {
    const int q = (p.fx >= 0 ? 0 : 1) + (p.fy >= 0 ? 0 : 2);
    ++quads[q];
  }
  for (int q = 0; q < 4; ++q) EXPECT_GT(quads[q], 0);
}

TEST(Source, RejectsBadSigmas) {
  SourceSpec spec;
  spec.sigma_in = 0.9;
  spec.sigma_out = 0.8;
  EXPECT_THROW(sample_source(spec, kLambda, kNa, 1024, 2), check_error);
}

TEST(Pupil, DiskCutoff) {
  const Pupil p(kLambda, kNa);
  EXPECT_EQ(p(0.0, 0.0), cd(1.0, 0.0));
  const double f = p.cutoff();
  EXPECT_EQ(p(f * 1.01, 0.0), cd(0.0, 0.0));
  EXPECT_NE(p(f * 0.99, 0.0), cd(0.0, 0.0));
}

TEST(Pupil, DefocusIsPhaseOnly) {
  PupilSpec spec;
  spec.defocus_nm = 50.0;
  const Pupil p(kLambda, kNa, spec);
  const cd v = p(0.004, 0.002);
  EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
  EXPECT_NE(v.imag(), 0.0);
}

TEST(Pupil, DefocusSignSymmetric) {
  PupilSpec plus, minus;
  plus.defocus_nm = 40.0;
  minus.defocus_nm = -40.0;
  const Pupil pp(kLambda, kNa, plus), pm(kLambda, kNa, minus);
  const cd a = pp(0.003, 0.001), b = pm(0.003, 0.001);
  EXPECT_NEAR(a.real(), b.real(), 1e-12);
  EXPECT_NEAR(a.imag(), -b.imag(), 1e-12);
}

class TccTest : public ::testing::Test {
 protected:
  static constexpr int kTile = 512;
  OpticalSystem sys_;  // defaults: annular, oversample 2
  int kdim_ = kernel_dim(kTile, kLambda, kNa);  // 15
};

TEST_F(TccTest, MatrixIsHermitian) {
  const Grid<cd> t = build_tcc(sys_, kTile, kdim_);
  ASSERT_EQ(t.rows(), kdim_ * kdim_);
  for (int i = 0; i < t.rows(); ++i) {
    for (int j = i; j < t.cols(); ++j) {
      EXPECT_NEAR(std::abs(t(i, j) - std::conj(t(j, i))), 0.0, 1e-12);
    }
  }
}

TEST_F(TccTest, DcEntryIsUnityForContainedSource) {
  // All annular source points pass the pupil, so T(dc, dc) = sum J = 1.
  const Grid<cd> t = build_tcc(sys_, kTile, kdim_);
  const int dc = (kdim_ / 2) * kdim_ + kdim_ / 2;
  EXPECT_NEAR(t(dc, dc).real(), 1.0, 1e-12);
  EXPECT_NEAR(t(dc, dc).imag(), 0.0, 1e-12);
}

TEST_F(TccTest, PositiveSemiDefinite) {
  const Grid<cd> t = build_tcc(sys_, kTile, kdim_);
  const SocsKernels socs = socs_decompose(t, kdim_, 1e-12, -1);
  for (double l : socs.eigenvalues) EXPECT_GE(l, 0.0);
}

TEST_F(TccTest, EigenvaluesDecayFast) {
  const Grid<cd> t = build_tcc(sys_, kTile, kdim_);
  const SocsKernels socs = socs_decompose(t, kdim_, 0.0, -1);
  ASSERT_GT(socs.rank(), 24);
  // Paper keeps r < 60 on tiles twice this size; by kernel 24 the spectrum
  // must have decayed by two orders of magnitude.
  EXPECT_LT(socs.eigenvalues[24], 0.05 * socs.eigenvalues[0]);
  for (int i = 1; i < socs.rank(); ++i) {
    EXPECT_LE(socs.eigenvalues[i], socs.eigenvalues[i - 1] + 1e-12);
  }
}

TEST_F(TccTest, SocsReconstructsTcc) {
  const Grid<cd> t = build_tcc(sys_, kTile, kdim_);
  const SocsKernels socs = socs_decompose(t, kdim_, 1e-12, -1);
  const Grid<cd> back = tcc_from_kernels(socs);
  EXPECT_TRUE(test::grids_close(t, back, 1e-9));
  EXPECT_NEAR(captured_energy(socs, t), 1.0, 1e-9);
}

TEST_F(TccTest, TruncationCapturesMostEnergy) {
  const Grid<cd> t = build_tcc(sys_, kTile, kdim_);
  const SocsKernels socs = socs_decompose(t, kdim_, 0.0, 24);
  EXPECT_EQ(socs.rank(), 24);
  EXPECT_GT(captured_energy(socs, t), 0.85);
}

TEST_F(TccTest, CoherentSourceGivesRankOne) {
  OpticalSystem coherent = sys_;
  coherent.source.shape = SourceShape::Circular;
  coherent.source.sigma_in = 0.0;
  coherent.source.sigma_out = 1e-6;  // single on-axis point
  coherent.source_oversample = 1;
  const Grid<cd> t = build_tcc(coherent, kTile, kdim_);
  const SocsKernels socs = socs_decompose(t, kdim_, 1e-9, -1);
  EXPECT_EQ(socs.rank(), 1);
}

TEST_F(TccTest, RejectsEvenKdim) {
  EXPECT_THROW(build_tcc(sys_, kTile, 8), check_error);
}

TEST(Socs, RejectsMismatchedSize) {
  Grid<cd> t(9, 9);
  EXPECT_THROW(socs_decompose(t, 5), check_error);
}

}  // namespace
}  // namespace nitho
