// Unit tests for src/metrics: Eqs. (5)-(8) on hand-computed cases.

#include <gtest/gtest.h>

#include <cmath>

#include "metrics/metrics.hpp"
#include "support/test_support.hpp"

namespace nitho {
namespace {

Grid<double> make(std::initializer_list<double> vals, int rows, int cols) {
  Grid<double> g(rows, cols);
  int i = 0;
  for (double v : vals) g[i++] = v;
  return g;
}

TEST(Metrics, MseOfIdenticalIsZero) {
  const Grid<double> a(3, 3, 0.7);
  EXPECT_DOUBLE_EQ(mse(a, a), 0.0);
}

TEST(Metrics, MseHandComputed) {
  const Grid<double> t = make({1.0, 2.0, 3.0, 4.0}, 2, 2);
  const Grid<double> p = make({1.5, 2.0, 2.0, 4.0}, 2, 2);
  EXPECT_DOUBLE_EQ(mse(t, p), (0.25 + 0.0 + 1.0 + 0.0) / 4.0);
}

TEST(Metrics, MsePropertiesOnRandomGrids) {
  Rng rng = test::make_rng(1);
  const Grid<double> a = test::random_grid(8, 8, rng);
  const Grid<double> b = test::random_grid(8, 8, rng);
  EXPECT_DOUBLE_EQ(mse(a, a), 0.0);
  EXPECT_GT(mse(a, b), 0.0);
  EXPECT_DOUBLE_EQ(mse(a, b), mse(b, a));
  const double worst = test::max_abs_diff(a, b);
  EXPECT_LE(mse(a, b), worst * worst);
}

TEST(Metrics, MseShapeMismatchThrows) {
  Grid<double> a(2, 2), b(2, 3);
  EXPECT_THROW(mse(a, b), check_error);
}

TEST(Metrics, PsnrKnownValue) {
  // max = 1, mse = 0.01 -> 20 dB.
  Grid<double> t(10, 10, 0.0);
  t(0, 0) = 1.0;
  Grid<double> p = t;
  for (std::size_t i = 0; i < p.size(); ++i) p[i] += 0.1;
  EXPECT_NEAR(psnr(t, p), 10.0 * std::log10(1.0 / 0.01), 1e-9);
}

TEST(Metrics, PsnrIdenticalClamped) {
  const Grid<double> a(4, 4, 0.3);
  EXPECT_DOUBLE_EQ(psnr(a, a), 150.0);
}

TEST(Metrics, MaxErrorFindsWorstPixel) {
  const Grid<double> t = make({0.0, 0.0, 0.0, 0.0}, 2, 2);
  const Grid<double> p = make({0.1, -0.4, 0.2, 0.0}, 2, 2);
  EXPECT_DOUBLE_EQ(max_error(t, p), 0.4);
}

TEST(Metrics, BinarizeThreshold) {
  const Grid<double> a = make({0.1, 0.25, 0.3, 0.0}, 2, 2);
  const Grid<double> z = binarize(a, 0.25);
  EXPECT_DOUBLE_EQ(z[0], 0.0);
  EXPECT_DOUBLE_EQ(z[1], 1.0);  // >= is printed
  EXPECT_DOUBLE_EQ(z[2], 1.0);
  EXPECT_DOUBLE_EQ(z[3], 0.0);
}

TEST(Metrics, MiouPerfect) {
  const Grid<double> z = make({1, 0, 0, 1}, 2, 2);
  EXPECT_DOUBLE_EQ(miou(z, z), 1.0);
  EXPECT_DOUBLE_EQ(mpa(z, z), 1.0);
}

TEST(Metrics, MiouHandComputed) {
  // truth: [1 1 0 0], pred: [1 0 0 0]
  // class1: inter 1, union 2 -> 0.5 ; class0: inter 2, union 3 -> 2/3.
  const Grid<double> t = make({1, 1, 0, 0}, 2, 2);
  const Grid<double> p = make({1, 0, 0, 0}, 2, 2);
  EXPECT_NEAR(miou(t, p), 0.5 * (0.5 + 2.0 / 3.0), 1e-12);
  // mPA: class1 1/2, class0 2/2.
  EXPECT_NEAR(mpa(t, p), 0.5 * (0.5 + 1.0), 1e-12);
}

TEST(Metrics, MiouEmptyClassCountsAsPerfect) {
  // No foreground anywhere: class 1 empty in both -> IOU 1 by convention.
  const Grid<double> z(3, 3, 0.0);
  EXPECT_DOUBLE_EQ(miou(z, z), 1.0);
}

TEST(Metrics, MiouCompleteMissIsZeroForegroundIou) {
  const Grid<double> t = make({1, 1, 1, 1}, 2, 2);
  const Grid<double> p = make({0, 0, 0, 0}, 2, 2);
  // class1: inter 0 / union 4 = 0. class0: inter 0, union 4 -> 0.
  EXPECT_DOUBLE_EQ(miou(t, p), 0.0);
}

TEST(Metrics, EvaluateBundlesEverything) {
  const Grid<double> t = make({0.4, 0.1, 0.3, 0.2}, 2, 2);
  const Grid<double> p = make({0.4, 0.1, 0.1, 0.2}, 2, 2);
  const EvalResult r = evaluate(t, p, 0.25);
  EXPECT_NEAR(r.mse, 0.04 / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.max_error, 0.2);
  EXPECT_GT(r.psnr, 0.0);
  EXPECT_LT(r.miou, 1.0);  // the 0.3 pixel flips below threshold
}

TEST(Metrics, AverageOfResults) {
  EvalResult a, b;
  a.mse = 1.0;
  b.mse = 3.0;
  a.psnr = 10;
  b.psnr = 30;
  a.miou = 0.5;
  b.miou = 1.0;
  const EvalResult avg = average({a, b});
  EXPECT_DOUBLE_EQ(avg.mse, 2.0);
  EXPECT_DOUBLE_EQ(avg.psnr, 20.0);
  EXPECT_DOUBLE_EQ(avg.miou, 0.75);
  EXPECT_DOUBLE_EQ(average({}).mse, 0.0);
}

}  // namespace
}  // namespace nitho
