// Tests for the image-to-image baselines: architecture sanity, parameter
// ordering (TEMPO > DOINN > Nitho, Table I), trainability, and the
// bit-identity pin of the GraphArena-backed trainer against per-step heap
// graphs.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "baselines/doinn.hpp"
#include "baselines/tempo.hpp"
#include "common/rng.hpp"
#include "fft/spectral.hpp"
#include "litho/golden.hpp"
#include "math/cplx.hpp"
#include "metrics/metrics.hpp"
#include "nitho/model.hpp"
#include "nn/ops.hpp"
#include "nn/optimizer.hpp"

namespace nitho {
namespace {

LithoConfig small_config() {
  LithoConfig cfg;
  cfg.tile_nm = 512;
  cfg.raster_px = 512;
  cfg.analysis_px = 64;
  cfg.sim_px = 32;
  cfg.spectrum_crop = 31;
  cfg.max_rank = 200;
  return cfg;
}

const GoldenEngine& engine() {
  static const GoldenEngine e{small_config()};
  return e;
}

TEST(Baselines, ForwardShapes) {
  TempoModel tempo;
  DoinnModel doinn;
  nn::Var in = nn::make_leaf(nn::Tensor({1, 32, 32}, 0.5f), false);
  for (const ImageModel* m :
       std::initializer_list<const ImageModel*>{&tempo, &doinn}) {
    nn::Var out = m->forward(in);
    ASSERT_EQ(out->value.ndim(), 3) << m->name();
    EXPECT_EQ(out->value.dim(0), 1);
    EXPECT_EQ(out->value.dim(1), 32);
    EXPECT_EQ(out->value.dim(2), 32);
    // Final ReLU: intensities are non-negative.
    for (std::int64_t i = 0; i < out->value.numel(); ++i) {
      EXPECT_GE(out->value[i], 0.0f);
    }
  }
}

TEST(Baselines, ParameterOrderingMatchesTableI) {
  TempoModel tempo;
  DoinnModel doinn;
  NithoConfig ncfg;  // defaults: rank 24, features 128, hidden 64
  NithoModel nitho(ncfg, 1024, 193.0, 1.35);
  const auto t = tempo.parameter_count();
  const auto d = doinn.parameter_count();
  const auto n = nitho.parameter_count();
  EXPECT_GT(t, 3 * d);   // paper: 31 MB vs 1.3 MB
  EXPECT_GT(d, 2 * n);   // paper: 1.3 MB vs 0.41 MB
}

TEST(Baselines, TrainingReducesLoss) {
  const Dataset ds = engine().make_dataset(DatasetKind::B2v, 4, 21);
  ImageTrainConfig cfg;
  cfg.epochs = 8;
  cfg.px = 32;
  cfg.lr = 2e-3f;
  DoinnModel doinn;
  std::vector<const Sample*> train;
  for (const Sample& s : ds.samples) train.push_back(&s);
  const TrainStats stats = train_image_model(doinn, train, cfg);
  ASSERT_EQ(stats.epoch_losses.size(), 8u);
  EXPECT_LT(stats.final_loss, stats.epoch_losses.front());
  EXPECT_LT(stats.final_loss, 0.05);  // aerials live in [0, ~1.4]
}

TEST(Baselines, ArenaTrainerBitIdenticalToPerStepHeapGraphs) {
  // train_image_model now recycles its per-step graphs through an
  // nn::GraphArena (as the Algorithm-1 trainer does, DESIGN.md §8).  The
  // arena is a storage optimization only: against a verbatim
  // reimplementation of the pre-arena loop — fresh heap graph per step,
  // identical data prep, shuffle and LR schedule — the per-epoch losses
  // and every trained weight must match bit for bit.
  const Dataset ds = engine().make_dataset(DatasetKind::B2v, 3, 51);
  std::vector<const Sample*> train;
  for (const Sample& s : ds.samples) train.push_back(&s);
  ImageTrainConfig cfg;
  cfg.epochs = 2;
  cfg.px = 32;
  cfg.lr = 2e-3f;

  DoinnModel arena_model;     // identical init: DoinnConfig seeds the RNG
  DoinnModel legacy_model;
  const TrainStats stats = train_image_model(arena_model, train, cfg);

  // --- verbatim legacy loop (no arena) -----------------------------------
  const auto sized_to = [](const Grid<double>& img, int px) {
    if (img.rows() == px) return img;
    if (img.rows() % px == 0) return downsample_area(img, img.rows() / px);
    return spectral_resample(img, px, px);
  };
  const auto grid_tensor = [](const Grid<double>& g, std::vector<int> shape) {
    nn::Tensor t(std::move(shape));
    for (std::size_t i = 0; i < g.size(); ++i) {
      t[static_cast<std::int64_t>(i)] = static_cast<float>(g[i]);
    }
    return t;
  };
  const int n = static_cast<int>(train.size());
  std::vector<nn::Tensor> inputs, targets;
  for (const Sample* s : train) {
    inputs.push_back(mask_input(*s, cfg.px));
    targets.push_back(
        grid_tensor(sized_to(s->aerial, cfg.px), {1, cfg.px, cfg.px}));
  }
  nn::Adam opt(legacy_model.parameters(), cfg.lr);
  Rng rng(cfg.seed);
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> legacy_epoch_losses;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    for (int i : order) {
      opt.zero_grad();
      nn::Var pred = legacy_model.forward(
          nn::make_leaf(inputs[static_cast<std::size_t>(i)], false));
      nn::Var loss = nn::mse_loss(pred, targets[static_cast<std::size_t>(i)]);
      nn::backward(loss);
      opt.step();
      epoch_loss += loss->value[0];
    }
    legacy_epoch_losses.push_back(epoch_loss / n);
    const double t = static_cast<double>(epoch + 1) / cfg.epochs;
    opt.set_lr(
        static_cast<float>(cfg.lr * (0.1 + 0.45 * (1.0 + std::cos(kPi * t)))));
  }

  ASSERT_EQ(stats.epoch_losses.size(), legacy_epoch_losses.size());
  for (std::size_t e = 0; e < legacy_epoch_losses.size(); ++e) {
    EXPECT_EQ(stats.epoch_losses[e], legacy_epoch_losses[e]) << "epoch " << e;
  }
  const auto arena_params = arena_model.parameters();
  const auto legacy_params = legacy_model.parameters();
  ASSERT_EQ(arena_params.size(), legacy_params.size());
  for (std::size_t p = 0; p < arena_params.size(); ++p) {
    const nn::Tensor& a = arena_params[p]->value;
    const nn::Tensor& b = legacy_params[p]->value;
    ASSERT_EQ(a.numel(), b.numel()) << "param " << p;
    for (std::int64_t i = 0; i < a.numel(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "param " << p << " elem " << i;
    }
  }
}

TEST(Baselines, PredictAerialUpsamples) {
  const Dataset ds = engine().make_dataset(DatasetKind::B1, 1, 31);
  DoinnModel doinn;
  const Grid<double> pred = predict_aerial(doinn, ds.samples[0], 32, 64);
  EXPECT_EQ(pred.rows(), 64);
  EXPECT_EQ(pred.cols(), 64);
}

TEST(Baselines, MaskInputIsBinaryDensity) {
  const Dataset ds = engine().make_dataset(DatasetKind::B2m, 1, 41);
  const nn::Tensor in = mask_input(ds.samples[0], 32);
  ASSERT_EQ(in.ndim(), 3);
  EXPECT_EQ(in.dim(0), 1);
  EXPECT_EQ(in.dim(1), 32);
  float lo = 1e9f, hi = -1e9f;
  for (std::int64_t i = 0; i < in.numel(); ++i) {
    lo = std::min(lo, in[i]);
    hi = std::max(hi, in[i]);
  }
  EXPECT_GE(lo, 0.0f);
  EXPECT_LE(hi, 1.0f);
  EXPECT_GT(hi, 0.2f);  // features present
}

TEST(Baselines, TempoDeeperThanDoinnInFlops) {
  // Structural proxy: TEMPO's widest conv dominates DOINN's conv stack.
  TempoModel tempo;
  DoinnModel doinn;
  EXPECT_GT(tempo.parameter_count(), doinn.parameter_count());
}

}  // namespace
}  // namespace nitho
