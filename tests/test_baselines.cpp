// Tests for the image-to-image baselines: architecture sanity, parameter
// ordering (TEMPO > DOINN > Nitho, Table I), and trainability.

#include <gtest/gtest.h>

#include "baselines/doinn.hpp"
#include "baselines/tempo.hpp"
#include "litho/golden.hpp"
#include "metrics/metrics.hpp"
#include "nitho/model.hpp"

namespace nitho {
namespace {

LithoConfig small_config() {
  LithoConfig cfg;
  cfg.tile_nm = 512;
  cfg.raster_px = 512;
  cfg.analysis_px = 64;
  cfg.sim_px = 32;
  cfg.spectrum_crop = 31;
  cfg.max_rank = 200;
  return cfg;
}

const GoldenEngine& engine() {
  static const GoldenEngine e{small_config()};
  return e;
}

TEST(Baselines, ForwardShapes) {
  TempoModel tempo;
  DoinnModel doinn;
  nn::Var in = nn::make_leaf(nn::Tensor({1, 32, 32}, 0.5f), false);
  for (const ImageModel* m :
       std::initializer_list<const ImageModel*>{&tempo, &doinn}) {
    nn::Var out = m->forward(in);
    ASSERT_EQ(out->value.ndim(), 3) << m->name();
    EXPECT_EQ(out->value.dim(0), 1);
    EXPECT_EQ(out->value.dim(1), 32);
    EXPECT_EQ(out->value.dim(2), 32);
    // Final ReLU: intensities are non-negative.
    for (std::int64_t i = 0; i < out->value.numel(); ++i) {
      EXPECT_GE(out->value[i], 0.0f);
    }
  }
}

TEST(Baselines, ParameterOrderingMatchesTableI) {
  TempoModel tempo;
  DoinnModel doinn;
  NithoConfig ncfg;  // defaults: rank 24, features 128, hidden 64
  NithoModel nitho(ncfg, 1024, 193.0, 1.35);
  const auto t = tempo.parameter_count();
  const auto d = doinn.parameter_count();
  const auto n = nitho.parameter_count();
  EXPECT_GT(t, 3 * d);   // paper: 31 MB vs 1.3 MB
  EXPECT_GT(d, 2 * n);   // paper: 1.3 MB vs 0.41 MB
}

TEST(Baselines, TrainingReducesLoss) {
  const Dataset ds = engine().make_dataset(DatasetKind::B2v, 4, 21);
  ImageTrainConfig cfg;
  cfg.epochs = 8;
  cfg.px = 32;
  cfg.lr = 2e-3f;
  DoinnModel doinn;
  std::vector<const Sample*> train;
  for (const Sample& s : ds.samples) train.push_back(&s);
  const TrainStats stats = train_image_model(doinn, train, cfg);
  ASSERT_EQ(stats.epoch_losses.size(), 8u);
  EXPECT_LT(stats.final_loss, stats.epoch_losses.front());
  EXPECT_LT(stats.final_loss, 0.05);  // aerials live in [0, ~1.4]
}

TEST(Baselines, PredictAerialUpsamples) {
  const Dataset ds = engine().make_dataset(DatasetKind::B1, 1, 31);
  DoinnModel doinn;
  const Grid<double> pred = predict_aerial(doinn, ds.samples[0], 32, 64);
  EXPECT_EQ(pred.rows(), 64);
  EXPECT_EQ(pred.cols(), 64);
}

TEST(Baselines, MaskInputIsBinaryDensity) {
  const Dataset ds = engine().make_dataset(DatasetKind::B2m, 1, 41);
  const nn::Tensor in = mask_input(ds.samples[0], 32);
  ASSERT_EQ(in.ndim(), 3);
  EXPECT_EQ(in.dim(0), 1);
  EXPECT_EQ(in.dim(1), 32);
  float lo = 1e9f, hi = -1e9f;
  for (std::int64_t i = 0; i < in.numel(); ++i) {
    lo = std::min(lo, in[i]);
    hi = std::max(hi, in[i]);
  }
  EXPECT_GE(lo, 0.0f);
  EXPECT_LE(hi, 1.0f);
  EXPECT_GT(hi, 0.2f);  // features present
}

TEST(Baselines, TempoDeeperThanDoinnInFlops) {
  // Structural proxy: TEMPO's widest conv dominates DOINN's conv stack.
  TempoModel tempo;
  DoinnModel doinn;
  EXPECT_GT(tempo.parameter_count(), doinn.parameter_count());
}

}  // namespace
}  // namespace nitho
