// Unit tests for src/io: PGM round trips, CSV output, tensor serialization.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/rng.hpp"
#include "io/csv.hpp"
#include "io/pgm.hpp"
#include "io/tensor_io.hpp"
#include "support/test_support.hpp"

namespace nitho {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("nitho_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, PgmRoundTripPreservesStructure) {
  Grid<double> img(16, 24);
  Rng rng(1);
  for (auto& v : img) v = rng.uniform();
  write_pgm(path("a.pgm"), img, 0.0, 1.0);
  const Grid<double> back = read_pgm(path("a.pgm"));
  ASSERT_EQ(back.rows(), 16);
  ASSERT_EQ(back.cols(), 24);
  for (std::size_t i = 0; i < img.size(); ++i) {
    EXPECT_NEAR(back[i], img[i], 1.0 / 255.0 + 1e-9);
  }
}

TEST_F(IoTest, PgmAutoScales) {
  Grid<double> img(4, 4, -5.0);
  img(0, 0) = 5.0;
  write_pgm(path("b.pgm"), img);
  const Grid<double> back = read_pgm(path("b.pgm"));
  EXPECT_NEAR(back(0, 0), 1.0, 1e-9);
  EXPECT_NEAR(back(1, 1), 0.0, 1e-9);
}

TEST_F(IoTest, PgmConstantImageDoesNotDivideByZero) {
  Grid<double> img(4, 4, 3.0);
  EXPECT_NO_THROW(write_pgm(path("c.pgm"), img));
}

TEST_F(IoTest, PgmMontageDimensions) {
  Grid<double> a(8, 8, 0.0), b(8, 8, 1.0), c(8, 8, 0.5);
  write_pgm_montage(path("m.pgm"), {a, b, c});
  const Grid<double> m = read_pgm(path("m.pgm"));
  EXPECT_EQ(m.rows(), 8);
  EXPECT_EQ(m.cols(), 3 * 8 + 2 * 2);
}

TEST_F(IoTest, PgmMontageRejectsMismatchedPanels) {
  Grid<double> a(8, 8, 0.0), b(4, 4, 0.0);
  EXPECT_THROW(write_pgm_montage(path("x.pgm"), {a, b}), check_error);
}

TEST_F(IoTest, PgmReadRejectsBadMagic) {
  std::ofstream f(path("bad.pgm"));
  f << "P6\n2 2\n255\n....";
  f.close();
  EXPECT_THROW(read_pgm(path("bad.pgm")), check_error);
}

TEST_F(IoTest, CsvWritesHeaderAndRows) {
  {
    CsvWriter w(path("t.csv"), {"a", "b"});
    w.row({"1", "x"});
    w.row_numeric({2.5, 3.0});
  }
  std::ifstream f(path("t.csv"));
  std::stringstream ss;
  ss << f.rdbuf();
  EXPECT_EQ(ss.str(), "a,b\n1,x\n2.5,3\n");
}

TEST_F(IoTest, CsvRejectsWidthMismatch) {
  CsvWriter w(path("u.csv"), {"a", "b"});
  EXPECT_THROW(w.row({"only-one"}), check_error);
}

TEST_F(IoTest, GridRoundTrip) {
  Rng rng(2);
  const Grid<double> g = test::random_grid(7, 9, rng);
  save_grid(path("g.bin"), g);
  const Grid<double> back = load_grid(path("g.bin"));
  EXPECT_EQ(back, g);
}

TEST_F(IoTest, KernelsRoundTrip) {
  Rng rng(3);
  std::vector<Grid<cd>> ks;
  for (int i = 0; i < 4; ++i) ks.push_back(test::random_cgrid(5, 5, rng));
  save_kernels(path("k.bin"), ks);
  const auto back = load_kernels(path("k.bin"));
  ASSERT_EQ(back.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(back[i], ks[i]);
}

TEST_F(IoTest, KernelsRejectMixedShapes) {
  std::vector<Grid<cd>> ks;
  ks.emplace_back(3, 3);
  ks.emplace_back(5, 5);
  EXPECT_THROW(save_kernels(path("bad.bin"), ks), check_error);
}

TEST_F(IoTest, FloatsRoundTrip) {
  std::vector<float> xs = {1.0f, -2.5f, 3.25f};
  save_floats(path("f.bin"), xs);
  EXPECT_EQ(load_floats(path("f.bin")), xs);
}

TEST_F(IoTest, DtypeMismatchDetected) {
  save_floats(path("f.bin"), {1.0f});
  EXPECT_THROW(load_grid(path("f.bin")), check_error);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(load_grid(path("nope.bin")), check_error);
  EXPECT_THROW(read_pgm(path("nope.pgm")), check_error);
}

}  // namespace
}  // namespace nitho
