#!/usr/bin/env python3
"""End-to-end trace validation (ISSUE 8 acceptance): run example_serve_demo
with --trace and check the dump is a schema-valid Chrome trace_event JSON
object ("JSON object format") that Perfetto / chrome://tracing will load.

Usage: validate_trace.py <path-to-example_serve_demo>

The C++ unit tests (tests/test_obs.cpp) pin the exporter's escaping and
structure with substring checks; this script is the real parse: a strict
json.load plus per-event field checks, against a trace produced by an
actual serving run.  The demo's own exit code doubles as the bit-identity
check — it returns non-zero when the served spot check mismatches the
direct computation, tracing on or not.
"""

import json
import subprocess
import sys
import tempfile
from pathlib import Path

REQUIRED_FIELDS = {"name": str, "cat": str, "ph": str, "ts": (int, float),
                   "dur": (int, float), "pid": int, "tid": int, "args": dict}
# The request lifecycle the serving instrumentation promises (trace.hpp).
EXPECTED_SPANS = {"request", "queue_wait", "batch_assembly", "compute",
                  "resolve"}


def fail(msg: str) -> None:
    print(f"validate_trace: FAIL: {msg}")
    sys.exit(1)


def main() -> None:
    if len(sys.argv) != 2:
        fail(f"usage: {sys.argv[0]} <path-to-example_serve_demo>")
    demo = Path(sys.argv[1])
    if not demo.exists():
        fail(f"demo binary not found: {demo}")

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "trace.json"
        proc = subprocess.run([str(demo), f"--trace={trace_path}"],
                              capture_output=True, text=True, timeout=540)
        if proc.returncode != 0:
            fail("demo exited non-zero (served result no longer "
                 f"bit-identical with tracing on?):\n{proc.stdout}\n"
                 f"{proc.stderr}")
        if not trace_path.exists():
            fail(f"demo did not write {trace_path}")
        try:
            doc = json.loads(trace_path.read_text())
        except json.JSONDecodeError as e:
            fail(f"trace is not valid JSON: {e}")

    if not isinstance(doc, dict):
        fail("top level must be the trace_event JSON *object* format")
    if doc.get("displayTimeUnit") != "ms":
        fail(f"displayTimeUnit: expected 'ms', got {doc.get('displayTimeUnit')!r}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty list")

    last_ts = None
    for i, ev in enumerate(events):
        for field, ty in REQUIRED_FIELDS.items():
            if not isinstance(ev.get(field), ty):
                fail(f"event {i}: field {field!r} missing or mistyped: {ev}")
        if ev["ph"] != "X":
            fail(f"event {i}: expected complete events (ph 'X'), got {ev['ph']!r}")
        if ev["ts"] < 0 or ev["dur"] < 0:
            fail(f"event {i}: negative ts/dur: {ev}")
        if not isinstance(ev["args"].get("id"), int):
            fail(f"event {i}: args.id missing: {ev}")
        if last_ts is not None and ev["ts"] < last_ts:
            fail(f"event {i}: events not sorted by ts")
        last_ts = ev["ts"]

    names = {ev["name"] for ev in events}
    missing = EXPECTED_SPANS - names
    if missing:
        fail(f"request lifecycle spans missing from trace: {sorted(missing)}")

    # Every child span must lie inside its request's [ts, ts+dur] envelope
    # (same track, same id) — the nesting Perfetto renders.
    requests = {(ev["pid"], ev["tid"], ev["args"]["id"]): ev
                for ev in events if ev["name"] == "request"}
    for ev in events:
        if ev["name"] not in ("queue_wait", "batch_assembly"):
            continue
        parent = requests.get((ev["pid"], ev["tid"], ev["args"]["id"]))
        if parent is None:
            fail(f"{ev['name']} span with no matching request span: {ev}")
        if not (parent["ts"] <= ev["ts"]
                and ev["ts"] + ev["dur"] <= parent["ts"] + parent["dur"]):
            fail(f"{ev['name']} span escapes its request envelope: {ev}")

    print(f"validate_trace: OK ({len(events)} events, "
          f"{len(requests)} traced requests)")


if __name__ == "__main__":
    main()
