#include "nitho/encoding.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "math/cplx.hpp"

namespace nitho {

std::string encoding_name(EncodingKind kind) {
  switch (kind) {
    case EncodingKind::None:
      return "None";
    case EncodingKind::NerfPe:
      return "NeRF-PE";
    case EncodingKind::GaussianRff:
      return "Gaussian-RFF";
  }
  check_fail("unknown encoding kind", std::source_location::current());
}

nn::Tensor encode_coordinates(int n, int m, const EncodingConfig& cfg) {
  check(n >= 1 && m >= 1, "empty coordinate grid");
  check(cfg.features >= 2 && cfg.features % 2 == 0,
        "feature count must be even and >= 2");
  const int p = n * m;
  const int f = cfg.features;
  nn::Tensor out({p, f, 2});
  Rng rng(cfg.seed);

  auto coord = [&](int idx, double& x, double& y) {
    const int r = idx / m, c = idx % m;
    y = n > 1 ? static_cast<double>(r) / (n - 1) : 0.5;
    x = m > 1 ? static_cast<double>(c) / (m - 1) : 0.5;
  };

  switch (cfg.kind) {
    case EncodingKind::None: {
      // Linear Gaussian projection, complexified with the same (1+j) factor.
      std::vector<double> b(static_cast<std::size_t>(f) * 2);
      for (auto& v : b) v = rng.normal(0.0, 1.0);
      for (int i = 0; i < p; ++i) {
        double x, y;
        coord(i, x, y);
        for (int j = 0; j < f; ++j) {
          const double val = b[2 * j] * x + b[2 * j + 1] * y;
          out[(static_cast<std::int64_t>(i) * f + j) * 2] =
              static_cast<float>(val);
          out[(static_cast<std::int64_t>(i) * f + j) * 2 + 1] =
              static_cast<float>(val);
        }
      }
      break;
    }
    case EncodingKind::NerfPe: {
      // Eq. (14): per axis, L octaves of (sin, cos); F = 4L features.
      check(f % 4 == 0, "NeRF PE feature count must be divisible by 4");
      const int levels = f / 4;
      for (int i = 0; i < p; ++i) {
        double x, y;
        coord(i, x, y);
        int j = 0;
        for (int axis = 0; axis < 2; ++axis) {
          const double v = axis == 0 ? x : y;
          for (int l = 0; l < levels; ++l) {
            const double ang = std::pow(2.0, l) * kPi * v;
            const float s = static_cast<float>(std::sin(ang));
            const float c = static_cast<float>(std::cos(ang));
            out[(static_cast<std::int64_t>(i) * f + j) * 2] = s;
            out[(static_cast<std::int64_t>(i) * f + j) * 2 + 1] = s;
            ++j;
            out[(static_cast<std::int64_t>(i) * f + j) * 2] = c;
            out[(static_cast<std::int64_t>(i) * f + j) * 2 + 1] = c;
            ++j;
          }
        }
      }
      break;
    }
    case EncodingKind::GaussianRff: {
      // Eq. (15): isotropic Gaussian frequencies, (1+j) complexification.
      const int l = f / 2;
      std::vector<double> b(static_cast<std::size_t>(l) * 2);
      for (auto& v : b) v = rng.normal(0.0, cfg.sigma);
      for (int i = 0; i < p; ++i) {
        double x, y;
        coord(i, x, y);
        for (int k = 0; k < l; ++k) {
          const double ang = 2.0 * kPi * (b[2 * k] * x + b[2 * k + 1] * y);
          const float c = static_cast<float>(std::cos(ang));
          const float s = static_cast<float>(std::sin(ang));
          const std::int64_t base = (static_cast<std::int64_t>(i) * f + k) * 2;
          out[base] = c;
          out[base + 1] = c;
          const std::int64_t base2 =
              (static_cast<std::int64_t>(i) * f + l + k) * 2;
          out[base2] = s;
          out[base2 + 1] = s;
        }
      }
      break;
    }
  }
  return out;
}

}  // namespace nitho
