#pragma once
// The Nitho model: a coordinate-based complex neural field over the optical
// kernel support.  It owns the (constant) positional-encoded coordinates and
// the CMLP; predict_kernels() re-evaluates the field, export_kernels()
// detaches the prediction for the SOCS-only fast-lithography path.

#include <cstdint>
#include <string>
#include <vector>

#include "math/cplx.hpp"
#include "math/grid.hpp"
#include "nitho/cmlp.hpp"
#include "nitho/encoding.hpp"

namespace nitho {

struct NithoConfig {
  int kernel_dim = 0;   ///< odd; 0 derives Eq. 10 from (tile, lambda, NA)
  int rank = 24;        ///< number of predicted kernels r
  EncodingConfig encoding;
  int hidden = 64;
  int blocks = 2;
  std::uint64_t seed = 1;
};

class NithoModel {
 public:
  /// tile/lambda/na are used when cfg.kernel_dim == 0 (the physics-informed
  /// default); pass cfg.kernel_dim explicitly for the Fig. 6(b) sweep.
  NithoModel(NithoConfig cfg, int tile_nm, double wavelength_nm, double na);

  int kernel_dim() const { return kdim_; }
  int rank() const { return cfg_.rank; }
  const NithoConfig& config() const { return cfg_; }

  /// Differentiable kernel prediction: [r, n, m, 2] (Algorithm 1 line 8).
  nn::Var predict_kernels() const;

  /// Detached kernels in the litho substrate's format (fast lithography).
  std::vector<Grid<cd>> export_kernels() const;

  std::vector<nn::Var> parameters() const { return mlp_.parameters(); }
  std::int64_t parameter_count() const { return mlp_.parameter_count(); }
  std::int64_t parameter_bytes() const {
    return parameter_count() * static_cast<std::int64_t>(sizeof(float));
  }

  void save(const std::string& path) const;
  void load(const std::string& path);

 private:
  NithoConfig cfg_;
  int kdim_;
  nn::Tensor encoded_;   ///< constant [n*m, F, 2]
  nn::Var encoded_leaf_; ///< cached constant leaf over encoded_; built in the
                         ///< constructor (outside any GraphArena scope) so
                         ///< per-step training graphs neither copy the
                         ///< encoding nor recycle this node
  Cmlp mlp_;
};

}  // namespace nitho
