#pragma once
// Fast lithography (paper §III-C1): after training, the predicted kernels
// are exported as plain complex arrays and used exactly like calibrated TCC
// kernels — no network inference at simulation time.  The hot path is
// mask raster -> cropped-spectrum FFT -> batched SOCS on the AerialEngine
// (DESIGN.md §6), whose plans and workspaces are cached here per output
// resolution.

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.hpp"
#include "litho/engine.hpp"
#include "litho/golden.hpp"
#include "math/cplx.hpp"
#include "math/grid.hpp"
#include "nitho/model.hpp"

namespace nitho {

/// Move-only (the engine cache is not shareable); kernels themselves are
/// cheaply shared with every cached engine and with sibling FastLitho
/// instances built from kernels_shared() (the serving shards do this).
///
/// Memory model: engines are memoized per output resolution in an LRU cache
/// bounded by set_engine_cache_capacity() (default 8).  Each cached engine
/// holds its FFT plan references, scatter maps and a pool of per-thread
/// workspaces of ~out_px^2 complex doubles, so the worst-case footprint is
/// capacity * (parallel_workers() + 4) * out_px^2 * 16 bytes on top of the
/// shared kernels.  A caller sweeping more distinct out_px values than the
/// capacity evicts the least-recently-used engine; evicted engines stay
/// alive (shared_ptr) until every in-flight call through them finishes, so
/// eviction is safe under concurrency — it only costs the rebuilt plans and
/// workspaces on the next use of that resolution.
class FastLitho {
 public:
  explicit FastLitho(std::vector<Grid<cd>> kernels,
                     double resist_threshold = 0.25);

  /// Shared-kernel constructor: borrows an existing kernel vector without
  /// copying it.  Sibling instances built this way (one per serving shard)
  /// share the kernel arrays but keep private engine caches, so their
  /// workspaces never contend.
  explicit FastLitho(std::shared_ptr<const std::vector<Grid<cd>>> kernels,
                     double resist_threshold = 0.25);

  /// Detaches the model's current kernel prediction.
  static FastLitho from_model(const NithoModel& model,
                              double resist_threshold = 0.25);

  int kernel_dim() const { return kdim_; }
  int rank() const { return static_cast<int>(kernels_->size()); }
  const std::vector<Grid<cd>>& kernels() const { return *kernels_; }
  /// Shared ownership of the kernel vector, for handing the same arrays to
  /// another FastLitho (or engine) without a copy.
  std::shared_ptr<const std::vector<Grid<cd>>> kernels_shared() const {
    return kernels_;
  }
  double resist_threshold() const { return resist_threshold_; }

  /// Aerial image from a centered cropped spectrum (>= kernel support).
  Grid<double> aerial_from_spectrum(const Grid<cd>& spectrum, int out_px) const;

  /// Full pipeline from a mask raster (Fourier coefficients computed via the
  /// cropped FFT; this is what the Fig. 5 throughput bench times).
  Grid<double> aerial_from_mask(const Grid<double>& mask_raster,
                                int out_px) const;

  /// Batched pipeline: spectra for all masks, then one engine sweep over
  /// the (mask, kernel-chunk) task grid.  Each output is bit-identical to
  /// the corresponding aerial_from_mask call; plans, workspaces and pool
  /// dispatch are shared across the whole batch, and the task grid keeps
  /// every pool worker busy even when one mask alone could not.
  std::vector<Grid<double>> aerial_batch(
      const std::vector<Grid<double>>& mask_rasters, int out_px) const;
  /// Pointer variant: batches masks that live in caller-owned storage (the
  /// serving batcher flushes coalesced requests this way without copying).
  std::vector<Grid<double>> aerial_batch(
      const std::vector<const Grid<double>*>& mask_rasters, int out_px) const;

  Grid<double> resist_from_mask(const Grid<double>& mask_raster,
                                int out_px) const;

  /// Bounds the per-resolution engine cache (LRU, >= 1).  Shrinking evicts
  /// the least recently used engines immediately; in-flight calls holding
  /// an evicted engine finish safely on their shared_ptr.
  void set_engine_cache_capacity(int capacity);
  int engine_cache_capacity() const;
  /// Current cache occupancy / resolutions in LRU order (oldest first);
  /// exposed for tests and server stats.
  int engine_cache_size() const;
  std::vector<int> engine_cache_pxs() const;

  /// Kernel persistence — the stored format is identical to real TCC kernel
  /// files, so downstream tools cannot tell learned kernels apart.
  void save(const std::string& path) const;
  static FastLitho load(const std::string& path,
                        double resist_threshold = 0.25);

 private:
  /// Lazily built, memoized engine per output resolution (LRU).  Kernels
  /// are shared (not copied) with every engine; the returned shared_ptr
  /// keeps the engine alive across a concurrent eviction.
  std::shared_ptr<const AerialEngine> engine_for(int out_px) const;

  Grid<cd> spectrum_of(const Grid<double>& mask_raster) const;

  struct EngineCache {
    Mutex mu;
    int capacity NITHO_GUARDED_BY(mu) = 8;
    /// LRU order: front = least recently used, back = most recent.
    std::vector<std::pair<int, std::shared_ptr<const AerialEngine>>> engines
        NITHO_GUARDED_BY(mu);
  };

  /// LRU probe: returns the cached engine for out_px (rotating it to the
  /// most-recently-used slot) or null on a miss.  A named REQUIRES helper
  /// rather than a local lambda — the analysis treats lambda bodies as
  /// separate unannotated functions, so this is the only shape it can check.
  static std::shared_ptr<const AerialEngine> cache_lookup(EngineCache& cache,
                                                          int out_px)
      NITHO_REQUIRES(cache.mu);

  std::shared_ptr<const std::vector<Grid<cd>>> kernels_;
  int kdim_;
  double resist_threshold_;
  std::unique_ptr<EngineCache> engines_;
};

/// Model prediction for one dataset sample at out_px resolution (the
/// evaluation path shared by all benches).
Grid<double> predict_aerial(const NithoModel& model, const Sample& sample,
                            int out_px);

}  // namespace nitho
