#pragma once
// Fast lithography (paper §III-C1): after training, the predicted kernels
// are exported as plain complex arrays and used exactly like calibrated TCC
// kernels — no network inference at simulation time.  The hot path is
// mask raster -> cropped-spectrum FFT -> batched SOCS on the AerialEngine
// (DESIGN.md §6), whose plans and workspaces are cached here per output
// resolution.

#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "litho/engine.hpp"
#include "litho/golden.hpp"
#include "math/cplx.hpp"
#include "math/grid.hpp"
#include "nitho/model.hpp"

namespace nitho {

/// Move-only (the engine cache is not shareable); kernels themselves are
/// cheaply shared with every cached engine.  Engines are memoized per
/// output resolution for the lifetime of the object and never evicted —
/// callers sweeping many distinct out_px values hold one engine (plus its
/// per-thread workspaces, ~out_px^2 complex doubles each) per resolution
/// until the FastLitho is destroyed.
class FastLitho {
 public:
  FastLitho(std::vector<Grid<cd>> kernels, double resist_threshold = 0.25);

  /// Detaches the model's current kernel prediction.
  static FastLitho from_model(const NithoModel& model,
                              double resist_threshold = 0.25);

  int kernel_dim() const { return kdim_; }
  int rank() const { return static_cast<int>(kernels_->size()); }
  const std::vector<Grid<cd>>& kernels() const { return *kernels_; }

  /// Aerial image from a centered cropped spectrum (>= kernel support).
  Grid<double> aerial_from_spectrum(const Grid<cd>& spectrum, int out_px) const;

  /// Full pipeline from a mask raster (Fourier coefficients computed via the
  /// cropped FFT; this is what the Fig. 5 throughput bench times).
  Grid<double> aerial_from_mask(const Grid<double>& mask_raster,
                                int out_px) const;

  /// Batched pipeline: spectra for all masks, then one engine sweep over
  /// the (mask, kernel-chunk) task grid.  Each output is bit-identical to
  /// the corresponding aerial_from_mask call; plans, workspaces and pool
  /// dispatch are shared across the whole batch, and the task grid keeps
  /// every pool worker busy even when one mask alone could not.
  std::vector<Grid<double>> aerial_batch(
      const std::vector<Grid<double>>& mask_rasters, int out_px) const;

  Grid<double> resist_from_mask(const Grid<double>& mask_raster,
                                int out_px) const;

  /// Kernel persistence — the stored format is identical to real TCC kernel
  /// files, so downstream tools cannot tell learned kernels apart.
  void save(const std::string& path) const;
  static FastLitho load(const std::string& path,
                        double resist_threshold = 0.25);

 private:
  /// Lazily built, memoized engine per output resolution.  Kernels are
  /// shared (not copied) with every engine.
  const AerialEngine& engine_for(int out_px) const;

  Grid<cd> spectrum_of(const Grid<double>& mask_raster) const;

  struct EngineCache {
    std::mutex mu;
    std::vector<std::pair<int, std::unique_ptr<AerialEngine>>> engines;
  };

  std::shared_ptr<const std::vector<Grid<cd>>> kernels_;
  int kdim_;
  double resist_threshold_;
  std::unique_ptr<EngineCache> engines_;
};

/// Model prediction for one dataset sample at out_px resolution (the
/// evaluation path shared by all benches).
Grid<double> predict_aerial(const NithoModel& model, const Sample& sample,
                            int out_px);

}  // namespace nitho
