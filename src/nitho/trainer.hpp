#pragma once
// Algorithm 1: the forward training procedure of Nitho.
//
// Per optimization step the CMLP predicts the kernel stack once; for each
// mask in the batch the (precomputed, constant) cropped mask spectrum is
// multiplied in, inverse-transformed to coherent fields, converted to
// intensity and compared against the golden aerial image with MSE.  The
// complex weights are updated by Adam through the differentiable FFTs.

#include <cstdint>
#include <vector>

#include "litho/golden.hpp"
#include "nitho/model.hpp"

namespace nitho {

struct NithoTrainConfig {
  int epochs = 60;
  int batch = 4;
  float lr = 4e-3f;
  /// Training grid; 0 = smallest power of two >= max(64, 2 * kernel_dim)
  /// (keeps the squared field alias-free).
  int train_px = 0;
  std::uint64_t seed = 99;
  bool verbose = false;
};

struct TrainStats {
  std::vector<double> epoch_losses;  ///< mean MSE per epoch
  double final_loss = 0.0;
  double seconds = 0.0;
  int steps = 0;
};

/// Trains the model in place on (mask spectrum, golden aerial) pairs.
TrainStats train_nitho(NithoModel& model,
                       const std::vector<const Sample*>& data,
                       const NithoTrainConfig& cfg);

/// Convenience: pointer view over (at most max_count of) a dataset.
std::vector<const Sample*> sample_ptrs(const Dataset& ds, int max_count = -1);

/// Pointer view over multiple datasets (the merged "B2m+B2v" row).
std::vector<const Sample*> sample_ptrs(
    const std::vector<const Dataset*>& sets, int max_per_set = -1);

}  // namespace nitho
