#pragma once
// Algorithm 1: the forward training procedure of Nitho.
//
// Per optimization step the CMLP predicts the kernel stack once; the whole
// mask batch is then imaged in a single tensor-batched graph: the
// (precomputed, constant) cropped mask spectra are stacked [B, k, k, 2],
// multiplied in and inverse-transformed to coherent fields by
// nn::socs_field_batch, converted to intensity by nn::abs2_sum0_batch and
// compared against the golden aerials with an ordered per-sample MSE
// (DESIGN.md §8).  The complex weights are updated by Adam through the
// differentiable FFTs.  The loss trajectory is bit-identical to the
// historical one-graph-chain-per-mask loop at a fixed seed (pinned in
// tests/test_nitho.cpp against a verbatim legacy reimplementation).

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "litho/golden.hpp"
#include "nitho/model.hpp"
#include "nn/optimizer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nitho {

struct NithoTrainConfig {
  int epochs = 60;
  int batch = 4;
  float lr = 4e-3f;
  /// Training grid; 0 = smallest power of two >= max(64, 2 * kernel_dim)
  /// (keeps the squared field alias-free).
  int train_px = 0;
  std::uint64_t seed = 99;
  bool verbose = false;
};

struct TrainStats {
  std::vector<double> epoch_losses;  ///< mean MSE per epoch
  double final_loss = 0.0;
  double seconds = 0.0;
  double forward_seconds = 0.0;   ///< graph build + loss evaluation
  double backward_seconds = 0.0;  ///< reverse pass
  double step_seconds = 0.0;      ///< optimizer update
  int steps = 0;
};

/// Precomputed constant tensors of a training run: per sample the centered
/// kernel-support crop of the mask spectrum and the golden aerial resampled
/// to the training grid.  Building this is the expensive part of dataset
/// setup (spectral_resample per sample), so it is exposed separately:
/// benches that train several models on the same samples (Tables II-IV)
/// prepare once and reuse.
struct TrainingSet {
  int kernel_dim = 0;
  int train_px = 0;
  std::vector<nn::Tensor> spectra;  ///< per sample [kernel_dim, kernel_dim, 2]
  std::vector<nn::Tensor> targets;  ///< per sample [train_px, train_px]

  int size() const { return static_cast<int>(spectra.size()); }
};

/// Builds the constant tensors once.  train_px <= 0 applies the
/// NithoTrainConfig::train_px auto rule; aerials already on the training
/// grid are converted without a spectral resample.
TrainingSet prepare_training_set(const std::vector<const Sample*>& data,
                                 int kernel_dim, int train_px = 0);

/// Epoch-stepwise, checkpointable driver of the Algorithm-1 loop.  This is
/// the class train_nitho() runs on: constructing one and calling
/// run_epoch() until done() is arithmetic-for-arithmetic the historical
/// whole-run loop, so every bit-identity pin on train_nitho covers it.
///
/// The trainer's entire state — model weights, Adam moments + step count,
/// the shuffle RNG, the loss trajectory and the epoch cursor — round-trips
/// through save_state/load_state (nn/serialize records): a trainer stopped
/// after epoch k, serialized, restored into a fresh model + trainer and
/// resumed to epoch n produces bit-identical weights and losses to the
/// uninterrupted n-epoch run (pinned in tests/test_nitho.cpp).  This is
/// what lets rollout replicas (src/rollout/) be paused, shipped and
/// tournament-cloned.
///
/// The model and the training set are borrowed and must outlive the
/// trainer; the set must have been prepared for the model's kernel support.
class NithoTrainer {
 public:
  NithoTrainer(NithoModel& model, const TrainingSet& set,
               NithoTrainConfig cfg);

  /// One full pass over the set (cfg.epochs passes complete the run; extra
  /// calls throw).  Appends to epoch_losses() and advances the LR schedule.
  void run_epoch();

  bool done() const { return epoch_ >= cfg_.epochs; }
  int epochs_done() const { return epoch_; }
  const NithoTrainConfig& config() const { return cfg_; }
  NithoModel& model() { return model_; }
  const std::vector<double>& epoch_losses() const {
    return stats_.epoch_losses;
  }
  /// Accumulated stats so far (final_loss = last completed epoch's loss).
  const TrainStats& stats() const { return stats_; }

  /// The cosine-decay learning rate in force after `completed_epochs`
  /// epochs of a cfg run (bit-exactly the value run_epoch would have set).
  static float scheduled_lr(const NithoTrainConfig& cfg, int completed_epochs);

  /// Re-bases the LR schedule on a new base rate (tournament perturbation):
  /// cfg().lr becomes `lr` and the current rate is recomputed for the
  /// current epoch cursor.  Does not touch weights, moments or the RNG.
  void set_base_lr(float lr);

  /// Binds observability sinks (borrowed; must outlive the trainer — both
  /// may be null to unbind).  Each completed epoch publishes
  /// "<prefix>.epoch/loss/forward_seconds/backward_seconds/step_seconds"
  /// gauges and a "<prefix>.steps" counter; with a tracer, sampled steps
  /// emit forward/backward/opt_step spans on `track` (DESIGN.md §12.3).
  /// Observation is timing-only — the training arithmetic is untouched, so
  /// every bit-identity pin holds with or without an observer.  Not part
  /// of NithoTrainConfig on purpose: the config is serialized state
  /// (save_state), sinks are runtime wiring.
  void set_observer(obs::MetricsRegistry* registry,
                    obs::Tracer* tracer = nullptr, std::uint32_t track = 0,
                    const std::string& prefix = "train");

  /// Serializes config + epoch cursor + weights + Adam + RNG + trajectory.
  /// load_state adopts the stored config (like opc::OpcEngine::restore) and
  /// throws check_error when the stored state is structurally incompatible
  /// with the bound model/set (kernel support, grid, set size) or the
  /// stream is truncated/corrupt — it never partially restores.
  void save_state(std::ostream& os) const;
  void load_state(std::istream& is);

 private:
  NithoModel& model_;
  const TrainingSet& set_;
  NithoTrainConfig cfg_;
  nn::Adam opt_;
  Rng rng_;
  std::vector<int> order_;
  nn::GraphArena arena_;
  nn::Tensor batch_spectra_, batch_targets_;
  int epoch_ = 0;
  TrainStats stats_;
  /// Observability (set_observer); all borrowed, all optional.
  obs::Tracer* obs_tracer_ = nullptr;
  std::uint32_t obs_track_ = 0;
  obs::Gauge* g_epoch_ = nullptr;
  obs::Gauge* g_loss_ = nullptr;
  obs::Gauge* g_fwd_ = nullptr;
  obs::Gauge* g_bwd_ = nullptr;
  obs::Gauge* g_step_ = nullptr;
  obs::Counter* c_steps_ = nullptr;
};

/// Mean per-sample imaging MSE of the model on a prepared set, through the
/// same batched forward path the trainer optimizes (no gradients).  The
/// held-out metric rollout tournaments rank replicas by; deterministic for
/// a fixed batch size (ordered per-sample reduction, double accumulation).
double evaluate_nitho(const NithoModel& model, const TrainingSet& set,
                      int batch = 4);

/// Trains the model in place on (mask spectrum, golden aerial) pairs.
TrainStats train_nitho(NithoModel& model,
                       const std::vector<const Sample*>& data,
                       const NithoTrainConfig& cfg);

/// Same, over an already prepared set (cfg.train_px must be 0 or agree).
TrainStats train_nitho(NithoModel& model, const TrainingSet& set,
                       const NithoTrainConfig& cfg);

/// Convenience: pointer view over (at most max_count of) a dataset.
std::vector<const Sample*> sample_ptrs(const Dataset& ds, int max_count = -1);

/// Pointer view over multiple datasets (the merged "B2m+B2v" row).
std::vector<const Sample*> sample_ptrs(
    const std::vector<const Dataset*>& sets, int max_per_set = -1);

}  // namespace nitho
