#pragma once
// Algorithm 1: the forward training procedure of Nitho.
//
// Per optimization step the CMLP predicts the kernel stack once; the whole
// mask batch is then imaged in a single tensor-batched graph: the
// (precomputed, constant) cropped mask spectra are stacked [B, k, k, 2],
// multiplied in and inverse-transformed to coherent fields by
// nn::socs_field_batch, converted to intensity by nn::abs2_sum0_batch and
// compared against the golden aerials with an ordered per-sample MSE
// (DESIGN.md §8).  The complex weights are updated by Adam through the
// differentiable FFTs.  The loss trajectory is bit-identical to the
// historical one-graph-chain-per-mask loop at a fixed seed (pinned in
// tests/test_nitho.cpp against a verbatim legacy reimplementation).

#include <cstdint>
#include <vector>

#include "litho/golden.hpp"
#include "nitho/model.hpp"

namespace nitho {

struct NithoTrainConfig {
  int epochs = 60;
  int batch = 4;
  float lr = 4e-3f;
  /// Training grid; 0 = smallest power of two >= max(64, 2 * kernel_dim)
  /// (keeps the squared field alias-free).
  int train_px = 0;
  std::uint64_t seed = 99;
  bool verbose = false;
};

struct TrainStats {
  std::vector<double> epoch_losses;  ///< mean MSE per epoch
  double final_loss = 0.0;
  double seconds = 0.0;
  double forward_seconds = 0.0;   ///< graph build + loss evaluation
  double backward_seconds = 0.0;  ///< reverse pass
  double step_seconds = 0.0;      ///< optimizer update
  int steps = 0;
};

/// Precomputed constant tensors of a training run: per sample the centered
/// kernel-support crop of the mask spectrum and the golden aerial resampled
/// to the training grid.  Building this is the expensive part of dataset
/// setup (spectral_resample per sample), so it is exposed separately:
/// benches that train several models on the same samples (Tables II-IV)
/// prepare once and reuse.
struct TrainingSet {
  int kernel_dim = 0;
  int train_px = 0;
  std::vector<nn::Tensor> spectra;  ///< per sample [kernel_dim, kernel_dim, 2]
  std::vector<nn::Tensor> targets;  ///< per sample [train_px, train_px]

  int size() const { return static_cast<int>(spectra.size()); }
};

/// Builds the constant tensors once.  train_px <= 0 applies the
/// NithoTrainConfig::train_px auto rule; aerials already on the training
/// grid are converted without a spectral resample.
TrainingSet prepare_training_set(const std::vector<const Sample*>& data,
                                 int kernel_dim, int train_px = 0);

/// Trains the model in place on (mask spectrum, golden aerial) pairs.
TrainStats train_nitho(NithoModel& model,
                       const std::vector<const Sample*>& data,
                       const NithoTrainConfig& cfg);

/// Same, over an already prepared set (cfg.train_px must be 0 or agree).
TrainStats train_nitho(NithoModel& model, const TrainingSet& set,
                       const NithoTrainConfig& cfg);

/// Convenience: pointer view over (at most max_count of) a dataset.
std::vector<const Sample*> sample_ptrs(const Dataset& ds, int max_count = -1);

/// Pointer view over multiple datasets (the merged "B2m+B2v" row).
std::vector<const Sample*> sample_ptrs(
    const std::vector<const Dataset*>& sets, int max_per_set = -1);

}  // namespace nitho
