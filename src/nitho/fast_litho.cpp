#include "nitho/fast_litho.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "fft/spectral.hpp"
#include "io/tensor_io.hpp"
#include "litho/simulator.hpp"
#include "metrics/metrics.hpp"

namespace nitho {

FastLitho::FastLitho(std::vector<Grid<cd>> kernels, double resist_threshold)
    : FastLitho(std::make_shared<const std::vector<Grid<cd>>>(
                    std::move(kernels)),
                resist_threshold) {}

FastLitho::FastLitho(std::shared_ptr<const std::vector<Grid<cd>>> kernels,
                     double resist_threshold)
    : kernels_(std::move(kernels)),
      resist_threshold_(resist_threshold),
      engines_(std::make_unique<EngineCache>()) {
  check(kernels_ != nullptr && !kernels_->empty(),
        "FastLitho needs at least one kernel");
  kdim_ = (*kernels_)[0].rows();
  for (const auto& k : *kernels_) {
    check(k.rows() == kdim_ && k.cols() == kdim_, "kernel shape mismatch");
  }
}

FastLitho FastLitho::from_model(const NithoModel& model,
                                double resist_threshold) {
  return FastLitho(model.export_kernels(), resist_threshold);
}

std::shared_ptr<const AerialEngine> FastLitho::cache_lookup(EngineCache& cache,
                                                            int out_px) {
  auto& engines = cache.engines;
  for (std::size_t i = 0; i < engines.size(); ++i) {
    if (engines[i].first == out_px) {
      // Touch: rotate the hit to the back (most recently used).
      std::rotate(engines.begin() + static_cast<std::ptrdiff_t>(i),
                  engines.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                  engines.end());
      return engines.back().second;
    }
  }
  return nullptr;
}

std::shared_ptr<const AerialEngine> FastLitho::engine_for(int out_px) const {
  {
    LockGuard lk(engines_->mu);
    if (auto hit = cache_lookup(*engines_, out_px)) return hit;
  }
  // Miss: build outside the lock so concurrent callers (warm hits at other
  // resolutions included) are not stalled behind the plan/scatter setup,
  // then double-check — a racing builder may have inserted first, in which
  // case this copy is simply dropped (engines are immutable and cheap next
  // to the kernels they share).
  auto engine = std::make_shared<const AerialEngine>(kernels_, out_px);
  LockGuard lk(engines_->mu);
  if (auto hit = cache_lookup(*engines_, out_px)) return hit;
  auto& engines = engines_->engines;
  engines.emplace_back(out_px, engine);
  while (static_cast<int>(engines.size()) > engines_->capacity) {
    engines.erase(engines.begin());  // LRU lives at the front
  }
  return engine;
}

void FastLitho::set_engine_cache_capacity(int capacity) {
  check(capacity >= 1, "engine cache capacity must be >= 1");
  LockGuard lk(engines_->mu);
  engines_->capacity = capacity;
  auto& engines = engines_->engines;
  while (static_cast<int>(engines.size()) > capacity) {
    engines.erase(engines.begin());
  }
}

int FastLitho::engine_cache_capacity() const {
  LockGuard lk(engines_->mu);
  return engines_->capacity;
}

int FastLitho::engine_cache_size() const {
  LockGuard lk(engines_->mu);
  return static_cast<int>(engines_->engines.size());
}

std::vector<int> FastLitho::engine_cache_pxs() const {
  LockGuard lk(engines_->mu);
  std::vector<int> pxs;
  pxs.reserve(engines_->engines.size());
  for (const auto& [px, engine] : engines_->engines) pxs.push_back(px);
  return pxs;
}

Grid<cd> FastLitho::spectrum_of(const Grid<double>& mask_raster) const {
  Grid<cd> spectrum = fft2_crop_centered(mask_raster, kdim_);
  const double inv_n2 = 1.0 / (static_cast<double>(mask_raster.rows()) *
                               mask_raster.cols());
  for (auto& z : spectrum) z *= inv_n2;
  return spectrum;
}

Grid<double> FastLitho::aerial_from_spectrum(const Grid<cd>& spectrum,
                                             int out_px) const {
  return engine_for(out_px)->aerial(spectrum);
}

Grid<double> FastLitho::aerial_from_mask(const Grid<double>& mask_raster,
                                         int out_px) const {
  return engine_for(out_px)->aerial(spectrum_of(mask_raster));
}

std::vector<Grid<double>> FastLitho::aerial_batch(
    const std::vector<Grid<double>>& mask_rasters, int out_px) const {
  std::vector<const Grid<double>*> ptrs;
  ptrs.reserve(mask_rasters.size());
  for (const Grid<double>& m : mask_rasters) ptrs.push_back(&m);
  return aerial_batch(ptrs, out_px);
}

std::vector<Grid<double>> FastLitho::aerial_batch(
    const std::vector<const Grid<double>*>& mask_rasters, int out_px) const {
  for (const Grid<double>* m : mask_rasters) {
    check(m != nullptr, "aerial_batch: null mask");
  }
  // Phase 1: mask spectra across the pool (the row-paired cropped FFT is
  // the dominant per-mask cost at production raster sizes), then phase 2:
  // one engine sweep over every (mask, kernel-chunk) task.
  std::vector<Grid<cd>> spectra(mask_rasters.size());
  parallel_for(static_cast<std::int64_t>(mask_rasters.size()),
               [&](std::int64_t i) {
                 spectra[static_cast<std::size_t>(i)] =
                     spectrum_of(*mask_rasters[static_cast<std::size_t>(i)]);
               });
  return engine_for(out_px)->aerial_batch(spectra);
}

Grid<double> FastLitho::resist_from_mask(const Grid<double>& mask_raster,
                                         int out_px) const {
  return binarize(aerial_from_mask(mask_raster, out_px), resist_threshold_);
}

void FastLitho::save(const std::string& path) const {
  save_kernels(path, *kernels_);
}

FastLitho FastLitho::load(const std::string& path, double resist_threshold) {
  return FastLitho(load_kernels(path), resist_threshold);
}

Grid<double> predict_aerial(const NithoModel& model, const Sample& sample,
                            int out_px) {
  // A transient owning engine: export_kernels() materializes fresh kernel
  // grids anyway, so the engine adopts them instead of copying.  The engine
  // reads the kernel-support window of the sample spectrum in place (no
  // explicit center_crop).
  const AerialEngine engine(model.export_kernels(), out_px);
  return engine.aerial(sample.spectrum);
}

}  // namespace nitho
