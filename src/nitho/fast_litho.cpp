#include "nitho/fast_litho.hpp"

#include "common/check.hpp"
#include "fft/spectral.hpp"
#include "io/tensor_io.hpp"
#include "litho/simulator.hpp"
#include "metrics/metrics.hpp"

namespace nitho {

FastLitho::FastLitho(std::vector<Grid<cd>> kernels, double resist_threshold)
    : kernels_(std::move(kernels)), resist_threshold_(resist_threshold) {
  check(!kernels_.empty(), "FastLitho needs at least one kernel");
  kdim_ = kernels_[0].rows();
  for (const auto& k : kernels_) {
    check(k.rows() == kdim_ && k.cols() == kdim_, "kernel shape mismatch");
  }
}

FastLitho FastLitho::from_model(const NithoModel& model,
                                double resist_threshold) {
  return FastLitho(model.export_kernels(), resist_threshold);
}

Grid<double> FastLitho::aerial_from_spectrum(const Grid<cd>& spectrum,
                                             int out_px) const {
  return socs_aerial(kernels_, spectrum, out_px);
}

Grid<double> FastLitho::aerial_from_mask(const Grid<double>& mask_raster,
                                         int out_px) const {
  Grid<cd> spectrum = fft2_crop_centered(mask_raster, kdim_);
  const double inv_n2 = 1.0 / (static_cast<double>(mask_raster.rows()) *
                               mask_raster.cols());
  for (auto& z : spectrum) z *= inv_n2;
  return socs_aerial(kernels_, spectrum, out_px);
}

Grid<double> FastLitho::resist_from_mask(const Grid<double>& mask_raster,
                                         int out_px) const {
  return binarize(aerial_from_mask(mask_raster, out_px), resist_threshold_);
}

void FastLitho::save(const std::string& path) const {
  save_kernels(path, kernels_);
}

FastLitho FastLitho::load(const std::string& path, double resist_threshold) {
  return FastLitho(load_kernels(path), resist_threshold);
}

Grid<double> predict_aerial(const NithoModel& model, const Sample& sample,
                            int out_px) {
  const int kdim = model.kernel_dim();
  const Grid<cd> crop = center_crop(sample.spectrum, kdim, kdim);
  return socs_aerial(model.export_kernels(), crop, out_px);
}

}  // namespace nitho
