#include "nitho/fast_litho.hpp"

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "fft/spectral.hpp"
#include "io/tensor_io.hpp"
#include "litho/simulator.hpp"
#include "metrics/metrics.hpp"

namespace nitho {

FastLitho::FastLitho(std::vector<Grid<cd>> kernels, double resist_threshold)
    : kernels_(std::make_shared<const std::vector<Grid<cd>>>(
          std::move(kernels))),
      resist_threshold_(resist_threshold),
      engines_(std::make_unique<EngineCache>()) {
  check(!kernels_->empty(), "FastLitho needs at least one kernel");
  kdim_ = (*kernels_)[0].rows();
  for (const auto& k : *kernels_) {
    check(k.rows() == kdim_ && k.cols() == kdim_, "kernel shape mismatch");
  }
}

FastLitho FastLitho::from_model(const NithoModel& model,
                                double resist_threshold) {
  return FastLitho(model.export_kernels(), resist_threshold);
}

const AerialEngine& FastLitho::engine_for(int out_px) const {
  std::lock_guard<std::mutex> lk(engines_->mu);
  for (const auto& [px, engine] : engines_->engines) {
    if (px == out_px) return *engine;
  }
  engines_->engines.emplace_back(
      out_px, std::make_unique<AerialEngine>(kernels_, out_px));
  return *engines_->engines.back().second;
}

Grid<cd> FastLitho::spectrum_of(const Grid<double>& mask_raster) const {
  Grid<cd> spectrum = fft2_crop_centered(mask_raster, kdim_);
  const double inv_n2 = 1.0 / (static_cast<double>(mask_raster.rows()) *
                               mask_raster.cols());
  for (auto& z : spectrum) z *= inv_n2;
  return spectrum;
}

Grid<double> FastLitho::aerial_from_spectrum(const Grid<cd>& spectrum,
                                             int out_px) const {
  return engine_for(out_px).aerial(spectrum);
}

Grid<double> FastLitho::aerial_from_mask(const Grid<double>& mask_raster,
                                         int out_px) const {
  return engine_for(out_px).aerial(spectrum_of(mask_raster));
}

std::vector<Grid<double>> FastLitho::aerial_batch(
    const std::vector<Grid<double>>& mask_rasters, int out_px) const {
  // Phase 1: mask spectra across the pool (the row-paired cropped FFT is
  // the dominant per-mask cost at production raster sizes), then phase 2:
  // one engine sweep over every (mask, kernel-chunk) task.
  std::vector<Grid<cd>> spectra(mask_rasters.size());
  parallel_for(static_cast<std::int64_t>(mask_rasters.size()),
               [&](std::int64_t i) {
                 spectra[static_cast<std::size_t>(i)] =
                     spectrum_of(mask_rasters[static_cast<std::size_t>(i)]);
               });
  return engine_for(out_px).aerial_batch(spectra);
}

Grid<double> FastLitho::resist_from_mask(const Grid<double>& mask_raster,
                                         int out_px) const {
  return binarize(aerial_from_mask(mask_raster, out_px), resist_threshold_);
}

void FastLitho::save(const std::string& path) const {
  save_kernels(path, *kernels_);
}

FastLitho FastLitho::load(const std::string& path, double resist_threshold) {
  return FastLitho(load_kernels(path), resist_threshold);
}

Grid<double> predict_aerial(const NithoModel& model, const Sample& sample,
                            int out_px) {
  // A transient owning engine: export_kernels() materializes fresh kernel
  // grids anyway, so the engine adopts them instead of copying.  The engine
  // reads the kernel-support window of the sample spectrum in place (no
  // explicit center_crop).
  const AerialEngine engine(model.export_kernels(), out_px);
  return engine.aerial(sample.spectrum);
}

}  // namespace nitho
