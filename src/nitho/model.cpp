#include "nitho/model.hpp"

#include "common/check.hpp"
#include "nn/ops.hpp"
#include "nn/serialize.hpp"
#include "optics/resolution.hpp"

namespace nitho {
namespace {

CmlpConfig mlp_config(const NithoConfig& cfg) {
  CmlpConfig m;
  m.in_features = cfg.encoding.features;
  m.hidden = cfg.hidden;
  m.blocks = cfg.blocks;
  m.out = cfg.rank;
  m.seed = cfg.seed;
  return m;
}

}  // namespace

NithoModel::NithoModel(NithoConfig cfg, int tile_nm, double wavelength_nm,
                       double na)
    : cfg_(cfg),
      kdim_(cfg.kernel_dim > 0
                ? cfg.kernel_dim
                : ::nitho::kernel_dim(tile_nm, wavelength_nm, na)),
      encoded_(encode_coordinates(kdim_, kdim_, cfg.encoding)),
      encoded_leaf_(nn::make_leaf(encoded_, false)),
      mlp_(mlp_config(cfg)) {
  check(kdim_ % 2 == 1, "kernel dimension must be odd");
  check(cfg_.rank >= 1, "rank must be positive");
}

nn::Var NithoModel::predict_kernels() const {
  nn::Var out = mlp_.forward(encoded_leaf_);     // [P, r, 2]
  out = nn::transpose01(out);                    // [r, P, 2]
  return nn::reshape(out, {cfg_.rank, kdim_, kdim_, 2});
}

std::vector<Grid<cd>> NithoModel::export_kernels() const {
  const nn::Var k = predict_kernels();
  std::vector<Grid<cd>> out;
  out.reserve(static_cast<std::size_t>(cfg_.rank));
  const std::int64_t plane = static_cast<std::int64_t>(kdim_) * kdim_;
  for (int i = 0; i < cfg_.rank; ++i) {
    Grid<cd> g(kdim_, kdim_);
    const float* src = k->value.data() + i * plane * 2;
    for (std::int64_t p = 0; p < plane; ++p) {
      g[static_cast<std::size_t>(p)] = cd(src[2 * p], src[2 * p + 1]);
    }
    out.push_back(std::move(g));
  }
  return out;
}

void NithoModel::save(const std::string& path) const {
  nn::save_parameters_file(path, parameters());
}

void NithoModel::load(const std::string& path) {
  nn::load_parameters_file(path, parameters());
}

}  // namespace nitho
