#include "nitho/cmlp.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "nn/ops.hpp"

namespace nitho {

Cmlp::Cmlp(const CmlpConfig& cfg) : cfg_(cfg) {
  check(cfg.in_features >= 1 && cfg.hidden >= 1 && cfg.out >= 1 &&
            cfg.blocks >= 0,
        "bad CMLP configuration");
  Rng rng(cfg.seed);
  auto make_layer = [&](int fan_in, int fan_out) {
    // Complex Glorot-style init: each of re/im gets variance 1/(2 fan_in) so
    // the complex pre-activations keep unit scale through depth.
    nn::Tensor w({fan_in, fan_out, 2});
    w.randn(rng, static_cast<float>(1.0 / std::sqrt(2.0 * fan_in)));
    weights_.push_back(nn::make_leaf(std::move(w), true));
    biases_.push_back(nn::make_leaf(nn::Tensor({fan_out, 2}), true));
  };
  make_layer(cfg.in_features, cfg.hidden);
  for (int b = 0; b < cfg.blocks; ++b) make_layer(cfg.hidden, cfg.hidden);
  make_layer(cfg.hidden, cfg.out);
}

nn::Var Cmlp::forward(const nn::Var& input) const {
  check(input->value.ndim() == 3 && input->value.dim(2) == 2 &&
            input->value.dim(1) == cfg_.in_features,
        "CMLP input must be [P, in_features, 2]");
  // Entry CLinear (no activation, per Eq. 12).
  nn::Var h = nn::add_bias(nn::cmatmul(input, weights_[0]), biases_[0]);
  // (CLinear -> CReLU) x N.
  for (int b = 0; b < cfg_.blocks; ++b) {
    h = nn::add_bias(nn::cmatmul(h, weights_[static_cast<std::size_t>(b) + 1]),
                     biases_[static_cast<std::size_t>(b) + 1]);
    h = nn::relu(h);  // == CReLU on interleaved complex tensors
  }
  // Closing CLinear.
  h = nn::add_bias(nn::cmatmul(h, weights_.back()), biases_.back());
  return h;
}

std::vector<nn::Var> Cmlp::parameters() const {
  std::vector<nn::Var> out = weights_;
  out.insert(out.end(), biases_.begin(), biases_.end());
  return out;
}

std::int64_t Cmlp::parameter_count() const {
  return nn::parameter_count(parameters());
}

}  // namespace nitho
