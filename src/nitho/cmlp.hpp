#pragma once
// Complex-valued multilayer perceptron (paper Eq. 12):
//   CMLP : CLinear -> (CLinear -> CReLU) x N -> CLinear
// with CReLU(z) = ReLU(Re z) + i ReLU(Im z) (Eq. 11).  In the re/im tensor
// representation CReLU is exactly an elementwise ReLU over the trailing
// dimension, so the whole network is built from cmatmul / add_bias / relu.

#include <cstdint>
#include <vector>

#include "nn/autodiff.hpp"

namespace nitho {

struct CmlpConfig {
  int in_features = 128;  ///< complex input width
  int hidden = 64;        ///< complex hidden width
  int blocks = 2;         ///< N hidden (CLinear -> CReLU) blocks
  int out = 24;           ///< complex outputs per coordinate (kernel count r)
  std::uint64_t seed = 1;
};

class Cmlp {
 public:
  explicit Cmlp(const CmlpConfig& cfg);

  /// [P, in, 2] -> [P, out, 2].
  nn::Var forward(const nn::Var& input) const;

  std::vector<nn::Var> parameters() const;
  std::int64_t parameter_count() const;
  const CmlpConfig& config() const { return cfg_; }

 private:
  CmlpConfig cfg_;
  std::vector<nn::Var> weights_;  ///< [in, out, 2] per layer
  std::vector<nn::Var> biases_;   ///< [out, 2] per layer
};

}  // namespace nitho
