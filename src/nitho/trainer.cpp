#include "nitho/trainer.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <numeric>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "fft/spectral.hpp"
#include "nn/ops.hpp"
#include "nn/ops_fft.hpp"
#include "nn/optimizer.hpp"

namespace nitho {
namespace {

nn::Tensor spectrum_tensor(const Grid<cd>& spectrum, int kdim) {
  check(spectrum.rows() >= kdim && spectrum.cols() >= kdim,
        "stored spectrum crop smaller than the model's kernel support");
  const Grid<cd> crop = center_crop(spectrum, kdim, kdim);
  nn::Tensor t({kdim, kdim, 2});
  for (std::size_t i = 0; i < crop.size(); ++i) {
    t[static_cast<std::int64_t>(2 * i)] = static_cast<float>(crop[i].real());
    t[static_cast<std::int64_t>(2 * i + 1)] = static_cast<float>(crop[i].imag());
  }
  return t;
}

nn::Tensor aerial_tensor(const Grid<double>& aerial, int px) {
  const Grid<double> sized = aerial.rows() == px
                                 ? aerial
                                 : spectral_resample(aerial, px, px);
  nn::Tensor t({px, px});
  for (std::size_t i = 0; i < sized.size(); ++i) {
    t[static_cast<std::int64_t>(i)] = static_cast<float>(sized[i]);
  }
  return t;
}

int auto_train_px(int kdim, int requested) {
  if (requested > 0) return requested;
  int px = 64;
  while (px < 2 * kdim) px *= 2;
  return px;
}

// Copies sample tensors for the step's batch window into the stacked
// constants ([count, k, k, 2] spectra, [count, px, px] targets).
void gather_batch(const TrainingSet& set, const std::vector<int>& order,
                  int begin, int count, nn::Tensor& spectra,
                  nn::Tensor& targets) {
  const std::int64_t splane = set.spectra.front().numel();
  const std::int64_t tplane = set.targets.front().numel();
  if (spectra.ndim() == 0 || spectra.dim(0) != count) {
    spectra = nn::Tensor({count, set.kernel_dim, set.kernel_dim, 2});
    targets = nn::Tensor({count, set.train_px, set.train_px});
  }
  for (int j = 0; j < count; ++j) {
    const int i = order[static_cast<std::size_t>(begin + j)];
    std::memcpy(spectra.data() + j * splane,
                set.spectra[static_cast<std::size_t>(i)].data(),
                static_cast<std::size_t>(splane) * sizeof(float));
    std::memcpy(targets.data() + j * tplane,
                set.targets[static_cast<std::size_t>(i)].data(),
                static_cast<std::size_t>(tplane) * sizeof(float));
  }
}

}  // namespace

TrainingSet prepare_training_set(const std::vector<const Sample*>& data,
                                 int kernel_dim, int train_px) {
  check(!data.empty(), "training needs at least one sample");
  check(kernel_dim >= 1, "bad kernel dimension");
  TrainingSet set;
  set.kernel_dim = kernel_dim;
  set.train_px = auto_train_px(kernel_dim, train_px);
  set.spectra.reserve(data.size());
  set.targets.reserve(data.size());
  for (const Sample* s : data) {
    check(s != nullptr, "null sample");
    set.spectra.push_back(spectrum_tensor(s->spectrum, kernel_dim));
    set.targets.push_back(aerial_tensor(s->aerial, set.train_px));
  }
  return set;
}

TrainStats train_nitho(NithoModel& model,
                       const std::vector<const Sample*>& data,
                       const NithoTrainConfig& cfg) {
  return train_nitho(
      model, prepare_training_set(data, model.kernel_dim(), cfg.train_px),
      cfg);
}

TrainStats train_nitho(NithoModel& model, const TrainingSet& set,
                       const NithoTrainConfig& cfg) {
  const int n = set.size();
  check(n >= 1, "training needs at least one sample");
  check(cfg.epochs >= 1 && cfg.batch >= 1 && cfg.lr > 0.0f,
        "bad training configuration");
  check(set.kernel_dim == model.kernel_dim(),
        "training set prepared for a different kernel support");
  check(cfg.train_px <= 0 || cfg.train_px == set.train_px,
        "training set prepared for a different grid");
  // TrainingSet is a plain struct callers may fill by hand; gather_batch
  // memcpys by these shapes, so validate them before trusting them.
  const std::vector<int> spec_shape{set.kernel_dim, set.kernel_dim, 2};
  const std::vector<int> target_shape{set.train_px, set.train_px};
  check(set.targets.size() == set.spectra.size(),
        "training set spectra/targets size mismatch");
  for (int i = 0; i < n; ++i) {
    check(set.spectra[static_cast<std::size_t>(i)].shape() == spec_shape &&
              set.targets[static_cast<std::size_t>(i)].shape() == target_shape,
          "training set tensor shapes inconsistent with kernel_dim/train_px");
  }
  const int px = set.train_px;

  nn::Adam opt(model.parameters(), cfg.lr);
  Rng rng(cfg.seed);
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  // One graph per step over the whole mask batch; node shells and tensor
  // buffers are recycled across steps by the arena (DESIGN.md §8).
  nn::GraphArena arena;
  nn::Tensor batch_spectra, batch_targets;

  TrainStats stats;
  WallTimer timer;
  WallTimer phase;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    int batches = 0;
    for (int b = 0; b < n; b += cfg.batch) {
      const int count = std::min(cfg.batch, n - b);
      gather_batch(set, order, b, count, batch_spectra, batch_targets);
      arena.reset();
      nn::GraphArena::Scope scope(arena);
      opt.zero_grad();
      phase.reset();
      // One field evaluation per step (the kernels do not depend on masks),
      // then the batch images as a single chain of batched nodes.
      const nn::Var kernels = model.predict_kernels();
      nn::Var pred = nn::abs2_sum0_batch(
          nn::socs_field_batch(kernels, batch_spectra, px));
      nn::Var loss =
          nn::scale(nn::mse_loss_batch_ordered(pred, batch_targets),
                    1.0f / static_cast<float>(count));
      stats.forward_seconds += phase.seconds();
      phase.reset();
      nn::backward(loss);
      stats.backward_seconds += phase.seconds();
      phase.reset();
      opt.step();
      stats.step_seconds += phase.seconds();
      epoch_loss += loss->value[0];
      ++batches;
      ++stats.steps;
    }
    stats.epoch_losses.push_back(epoch_loss / std::max(1, batches));
    // Cosine decay to 10% of the base learning rate.
    const double t = static_cast<double>(epoch + 1) / cfg.epochs;
    opt.set_lr(static_cast<float>(cfg.lr * (0.1 + 0.45 * (1.0 + std::cos(kPi * t)))));
    if (cfg.verbose) {
      std::printf("  [nitho] epoch %3d/%d  loss %.3e\n", epoch + 1, cfg.epochs,
                  stats.epoch_losses.back());
      std::fflush(stdout);
    }
  }
  stats.final_loss = stats.epoch_losses.back();
  stats.seconds = timer.seconds();
  return stats;
}

std::vector<const Sample*> sample_ptrs(const Dataset& ds, int max_count) {
  std::vector<const Sample*> out;
  const int n = max_count < 0
                    ? static_cast<int>(ds.samples.size())
                    : std::min<int>(max_count, static_cast<int>(ds.samples.size()));
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(&ds.samples[static_cast<std::size_t>(i)]);
  return out;
}

std::vector<const Sample*> sample_ptrs(const std::vector<const Dataset*>& sets,
                                       int max_per_set) {
  std::vector<const Sample*> out;
  for (const Dataset* ds : sets) {
    check(ds != nullptr, "null dataset");
    auto ptrs = sample_ptrs(*ds, max_per_set);
    out.insert(out.end(), ptrs.begin(), ptrs.end());
  }
  return out;
}

}  // namespace nitho
