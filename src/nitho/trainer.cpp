#include "nitho/trainer.hpp"

#include <cmath>
#include <cstdio>
#include <numeric>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "fft/spectral.hpp"
#include "nn/ops.hpp"
#include "nn/ops_fft.hpp"
#include "nn/optimizer.hpp"

namespace nitho {
namespace {

nn::Tensor spectrum_tensor(const Grid<cd>& spectrum, int kdim) {
  check(spectrum.rows() >= kdim && spectrum.cols() >= kdim,
        "stored spectrum crop smaller than the model's kernel support");
  const Grid<cd> crop = center_crop(spectrum, kdim, kdim);
  nn::Tensor t({kdim, kdim, 2});
  for (std::size_t i = 0; i < crop.size(); ++i) {
    t[static_cast<std::int64_t>(2 * i)] = static_cast<float>(crop[i].real());
    t[static_cast<std::int64_t>(2 * i + 1)] = static_cast<float>(crop[i].imag());
  }
  return t;
}

nn::Tensor aerial_tensor(const Grid<double>& aerial, int px) {
  const Grid<double> sized = aerial.rows() == px
                                 ? aerial
                                 : spectral_resample(aerial, px, px);
  nn::Tensor t({px, px});
  for (std::size_t i = 0; i < sized.size(); ++i) {
    t[static_cast<std::int64_t>(i)] = static_cast<float>(sized[i]);
  }
  return t;
}

int auto_train_px(int kdim, int requested) {
  if (requested > 0) return requested;
  int px = 64;
  while (px < 2 * kdim) px *= 2;
  return px;
}

}  // namespace

TrainStats train_nitho(NithoModel& model,
                       const std::vector<const Sample*>& data,
                       const NithoTrainConfig& cfg) {
  check(!data.empty(), "training needs at least one sample");
  check(cfg.epochs >= 1 && cfg.batch >= 1 && cfg.lr > 0.0f,
        "bad training configuration");
  const int kdim = model.kernel_dim();
  const int px = auto_train_px(kdim, cfg.train_px);

  const int n = static_cast<int>(data.size());
  std::vector<nn::Tensor> specs, targets;
  specs.reserve(static_cast<std::size_t>(n));
  targets.reserve(static_cast<std::size_t>(n));
  for (const Sample* s : data) {
    check(s != nullptr, "null sample");
    specs.push_back(spectrum_tensor(s->spectrum, kdim));
    targets.push_back(aerial_tensor(s->aerial, px));
  }

  nn::Adam opt(model.parameters(), cfg.lr);
  Rng rng(cfg.seed);
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  TrainStats stats;
  WallTimer timer;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    int batches = 0;
    for (int b = 0; b < n; b += cfg.batch) {
      const int count = std::min(cfg.batch, n - b);
      opt.zero_grad();
      // One field evaluation per step (the kernels do not depend on masks).
      const nn::Var kernels = model.predict_kernels();
      nn::Var loss;
      for (int j = 0; j < count; ++j) {
        const int i = order[static_cast<std::size_t>(b + j)];
        nn::Var pred = nn::abs2_sum0(
            nn::socs_field(kernels, specs[static_cast<std::size_t>(i)], px));
        nn::Var l = nn::mse_loss(pred, targets[static_cast<std::size_t>(i)]);
        loss = loss ? nn::add(loss, l) : l;
      }
      loss = nn::scale(loss, 1.0f / static_cast<float>(count));
      nn::backward(loss);
      opt.step();
      epoch_loss += loss->value[0];
      ++batches;
      ++stats.steps;
    }
    stats.epoch_losses.push_back(epoch_loss / std::max(1, batches));
    // Cosine decay to 10% of the base learning rate.
    const double t = static_cast<double>(epoch + 1) / cfg.epochs;
    opt.set_lr(static_cast<float>(cfg.lr * (0.1 + 0.45 * (1.0 + std::cos(kPi * t)))));
    if (cfg.verbose) {
      std::printf("  [nitho] epoch %3d/%d  loss %.3e\n", epoch + 1, cfg.epochs,
                  stats.epoch_losses.back());
      std::fflush(stdout);
    }
  }
  stats.final_loss = stats.epoch_losses.back();
  stats.seconds = timer.seconds();
  return stats;
}

std::vector<const Sample*> sample_ptrs(const Dataset& ds, int max_count) {
  std::vector<const Sample*> out;
  const int n = max_count < 0
                    ? static_cast<int>(ds.samples.size())
                    : std::min<int>(max_count, static_cast<int>(ds.samples.size()));
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(&ds.samples[static_cast<std::size_t>(i)]);
  return out;
}

std::vector<const Sample*> sample_ptrs(const std::vector<const Dataset*>& sets,
                                       int max_per_set) {
  std::vector<const Sample*> out;
  for (const Dataset* ds : sets) {
    check(ds != nullptr, "null dataset");
    auto ptrs = sample_ptrs(*ds, max_per_set);
    out.insert(out.end(), ptrs.begin(), ptrs.end());
  }
  return out;
}

}  // namespace nitho
