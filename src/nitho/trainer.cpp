#include "nitho/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <numeric>
#include <utility>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "fft/spectral.hpp"
#include "nn/ops.hpp"
#include "nn/ops_fft.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"

namespace nitho {
namespace {

nn::Tensor spectrum_tensor(const Grid<cd>& spectrum, int kdim) {
  check(spectrum.rows() >= kdim && spectrum.cols() >= kdim,
        "stored spectrum crop smaller than the model's kernel support");
  const Grid<cd> crop = center_crop(spectrum, kdim, kdim);
  nn::Tensor t({kdim, kdim, 2});
  for (std::size_t i = 0; i < crop.size(); ++i) {
    t[static_cast<std::int64_t>(2 * i)] = static_cast<float>(crop[i].real());
    t[static_cast<std::int64_t>(2 * i + 1)] = static_cast<float>(crop[i].imag());
  }
  return t;
}

nn::Tensor aerial_tensor(const Grid<double>& aerial, int px) {
  const Grid<double> sized = aerial.rows() == px
                                 ? aerial
                                 : spectral_resample(aerial, px, px);
  nn::Tensor t({px, px});
  for (std::size_t i = 0; i < sized.size(); ++i) {
    t[static_cast<std::int64_t>(i)] = static_cast<float>(sized[i]);
  }
  return t;
}

int auto_train_px(int kdim, int requested) {
  if (requested > 0) return requested;
  int px = 64;
  while (px < 2 * kdim) px *= 2;
  return px;
}

// Copies sample tensors for the step's batch window into the stacked
// constants ([count, k, k, 2] spectra, [count, px, px] targets).
void gather_batch(const TrainingSet& set, const std::vector<int>& order,
                  int begin, int count, nn::Tensor& spectra,
                  nn::Tensor& targets) {
  const std::int64_t splane = set.spectra.front().numel();
  const std::int64_t tplane = set.targets.front().numel();
  if (spectra.ndim() == 0 || spectra.dim(0) != count) {
    spectra = nn::Tensor({count, set.kernel_dim, set.kernel_dim, 2});
    targets = nn::Tensor({count, set.train_px, set.train_px});
  }
  for (int j = 0; j < count; ++j) {
    const int i = order[static_cast<std::size_t>(begin + j)];
    std::memcpy(spectra.data() + j * splane,
                set.spectra[static_cast<std::size_t>(i)].data(),
                static_cast<std::size_t>(splane) * sizeof(float));
    std::memcpy(targets.data() + j * tplane,
                set.targets[static_cast<std::size_t>(i)].data(),
                static_cast<std::size_t>(tplane) * sizeof(float));
  }
}

}  // namespace

TrainingSet prepare_training_set(const std::vector<const Sample*>& data,
                                 int kernel_dim, int train_px) {
  check(!data.empty(), "training needs at least one sample");
  check(kernel_dim >= 1, "bad kernel dimension");
  TrainingSet set;
  set.kernel_dim = kernel_dim;
  set.train_px = auto_train_px(kernel_dim, train_px);
  set.spectra.reserve(data.size());
  set.targets.reserve(data.size());
  for (const Sample* s : data) {
    check(s != nullptr, "null sample");
    set.spectra.push_back(spectrum_tensor(s->spectrum, kernel_dim));
    set.targets.push_back(aerial_tensor(s->aerial, set.train_px));
  }
  return set;
}

TrainStats train_nitho(NithoModel& model,
                       const std::vector<const Sample*>& data,
                       const NithoTrainConfig& cfg) {
  return train_nitho(
      model, prepare_training_set(data, model.kernel_dim(), cfg.train_px),
      cfg);
}

NithoTrainer::NithoTrainer(NithoModel& model, const TrainingSet& set,
                           NithoTrainConfig cfg)
    : model_(model),
      set_(set),
      cfg_(cfg),
      opt_(model.parameters(), cfg.lr),
      rng_(cfg.seed),
      order_(static_cast<std::size_t>(set.size())) {
  const int n = set_.size();
  check(n >= 1, "training needs at least one sample");
  check(cfg_.epochs >= 1 && cfg_.batch >= 1 && cfg_.lr > 0.0f,
        "bad training configuration");
  check(set_.kernel_dim == model_.kernel_dim(),
        "training set prepared for a different kernel support");
  check(cfg_.train_px <= 0 || cfg_.train_px == set_.train_px,
        "training set prepared for a different grid");
  // TrainingSet is a plain struct callers may fill by hand; gather_batch
  // memcpys by these shapes, so validate them before trusting them.
  const std::vector<int> spec_shape{set_.kernel_dim, set_.kernel_dim, 2};
  const std::vector<int> target_shape{set_.train_px, set_.train_px};
  check(set_.targets.size() == set_.spectra.size(),
        "training set spectra/targets size mismatch");
  for (int i = 0; i < n; ++i) {
    check(set_.spectra[static_cast<std::size_t>(i)].shape() == spec_shape &&
              set_.targets[static_cast<std::size_t>(i)].shape() == target_shape,
          "training set tensor shapes inconsistent with kernel_dim/train_px");
  }
  std::iota(order_.begin(), order_.end(), 0);
}

float NithoTrainer::scheduled_lr(const NithoTrainConfig& cfg,
                                 int completed_epochs) {
  check(completed_epochs >= 0 && completed_epochs <= cfg.epochs,
        "scheduled_lr: epoch cursor out of range");
  if (completed_epochs == 0) return cfg.lr;
  // Cosine decay to 10% of the base learning rate; bit-exactly the
  // expression run_epoch evaluates at the end of each epoch.
  const double t = static_cast<double>(completed_epochs) / cfg.epochs;
  return static_cast<float>(cfg.lr *
                            (0.1 + 0.45 * (1.0 + std::cos(kPi * t))));
}

void NithoTrainer::set_observer(obs::MetricsRegistry* registry,
                                obs::Tracer* tracer, std::uint32_t track,
                                const std::string& prefix) {
  obs_tracer_ = tracer;
  obs_track_ = track;
  if (registry != nullptr) {
    g_epoch_ = &registry->gauge(prefix + ".epoch");
    g_loss_ = &registry->gauge(prefix + ".loss");
    g_fwd_ = &registry->gauge(prefix + ".forward_seconds");
    g_bwd_ = &registry->gauge(prefix + ".backward_seconds");
    g_step_ = &registry->gauge(prefix + ".step_seconds");
    c_steps_ = &registry->counter(prefix + ".steps");
  } else {
    g_epoch_ = g_loss_ = g_fwd_ = g_bwd_ = g_step_ = nullptr;
    c_steps_ = nullptr;
  }
}

void NithoTrainer::set_base_lr(float lr) {
  check(lr > 0.0f, "set_base_lr: learning rate must be positive");
  cfg_.lr = lr;
  opt_.set_lr(scheduled_lr(cfg_, epoch_));
}

void NithoTrainer::run_epoch() {
  check(!done(), "run_epoch: training already complete");
  const int n = set_.size();
  const int px = set_.train_px;
  WallTimer timer;
  WallTimer phase;
  rng_.shuffle(order_);
  double epoch_loss = 0.0;
  int batches = 0;
  for (int b = 0; b < n; b += cfg_.batch) {
    const int count = std::min(cfg_.batch, n - b);
    gather_batch(set_, order_, b, count, batch_spectra_, batch_targets_);
    arena_.reset();
    nn::GraphArena::Scope scope(arena_);
    opt_.zero_grad();
    // Sampled step spans (DESIGN.md §12.3): timing-only branches around the
    // existing phases, so the arithmetic below is byte-for-byte unchanged.
    const bool traced = obs_tracer_ != nullptr && obs_tracer_->sample();
    std::int64_t span_t0 = 0, span_t1 = 0, span_t2 = 0;
    if (traced) span_t0 = obs_tracer_->now_us();
    phase.reset();
    // One field evaluation per step (the kernels do not depend on masks),
    // then the batch images as a single chain of batched nodes
    // (DESIGN.md §8; node shells and buffers recycle through the arena).
    const nn::Var kernels = model_.predict_kernels();
    nn::Var pred = nn::abs2_sum0_batch(
        nn::socs_field_batch(kernels, batch_spectra_, px));
    nn::Var loss =
        nn::scale(nn::mse_loss_batch_ordered(pred, batch_targets_),
                  1.0f / static_cast<float>(count));
    stats_.forward_seconds += phase.seconds();
    if (traced) span_t1 = obs_tracer_->now_us();
    phase.reset();
    nn::backward(loss);
    stats_.backward_seconds += phase.seconds();
    if (traced) span_t2 = obs_tracer_->now_us();
    phase.reset();
    opt_.step();
    stats_.step_seconds += phase.seconds();
    if (traced) {
      const std::int64_t span_t3 = obs_tracer_->now_us();
      const std::uint64_t id = static_cast<std::uint64_t>(stats_.steps + 1);
      obs_tracer_->record({"forward", "train", id, obs_track_, span_t0,
                           span_t1 - span_t0});
      obs_tracer_->record({"backward", "train", id, obs_track_, span_t1,
                           span_t2 - span_t1});
      obs_tracer_->record({"opt_step", "train", id, obs_track_, span_t2,
                           span_t3 - span_t2});
    }
    epoch_loss += loss->value[0];
    ++batches;
    ++stats_.steps;
  }
  stats_.epoch_losses.push_back(epoch_loss / std::max(1, batches));
  stats_.final_loss = stats_.epoch_losses.back();
  ++epoch_;
  opt_.set_lr(scheduled_lr(cfg_, epoch_));
  stats_.seconds += timer.seconds();
  if (g_epoch_ != nullptr) {
    g_epoch_->set(static_cast<double>(epoch_));
    g_loss_->set(stats_.final_loss);
    g_fwd_->set(stats_.forward_seconds);
    g_bwd_->set(stats_.backward_seconds);
    g_step_->set(stats_.step_seconds);
    c_steps_->inc(static_cast<std::uint64_t>(batches));
  }
  if (cfg_.verbose) {
    std::printf("  [nitho] epoch %3d/%d  loss %.3e\n", epoch_, cfg_.epochs,
                stats_.epoch_losses.back());
    std::fflush(stdout);
  }
}

namespace {
constexpr std::uint64_t kTrainerStateVersion = 1;
}  // namespace

void NithoTrainer::save_state(std::ostream& os) const {
  nn::write_u64(os, kTrainerStateVersion);
  // Config: the run this state belongs to.  load_state adopts it.
  nn::write_u64(os, static_cast<std::uint64_t>(cfg_.epochs));
  nn::write_u64(os, static_cast<std::uint64_t>(cfg_.batch));
  nn::write_f32(os, cfg_.lr);
  nn::write_u64(os, static_cast<std::uint64_t>(
                        cfg_.train_px < 0 ? 0 : cfg_.train_px));
  nn::write_u64(os, cfg_.seed);
  // Structural fingerprint of the bound model + set: restoring against a
  // different kernel support / grid / sample count must fail loudly.
  nn::write_u64(os, static_cast<std::uint64_t>(model_.kernel_dim()));
  nn::write_u64(os, static_cast<std::uint64_t>(set_.train_px));
  nn::write_u64(os, static_cast<std::uint64_t>(set_.size()));
  // Cursor + state.
  nn::write_u64(os, static_cast<std::uint64_t>(epoch_));
  const std::vector<nn::Var> params = model_.parameters();
  nn::write_parameters(os, params);
  nn::write_string(os, rng_.state());
  // The shuffle permutation is state, not a derived value: run_epoch
  // shuffles order_ in place (the evolving permutation, matching the
  // legacy loop), so a resume that restarted from iota would draw a
  // different epoch ordering and diverge.
  std::vector<double> order(order_.size());
  for (std::size_t i = 0; i < order_.size(); ++i) {
    order[i] = static_cast<double>(order_[i]);
  }
  nn::write_doubles(os, order);
  nn::write_doubles(os, stats_.epoch_losses);
  nn::write_u64(os, static_cast<std::uint64_t>(stats_.steps));
  nn::write_doubles(os, {stats_.seconds, stats_.forward_seconds,
                         stats_.backward_seconds, stats_.step_seconds});
  // Adam last: load_state stages everything above in locals and commits
  // only after this record (itself all-or-nothing) has loaded, so a
  // truncated or corrupt stream can never leave the trainer half restored.
  opt_.save_state(os);  // moments (shape-tagged), step count, current lr
}

void NithoTrainer::load_state(std::istream& is) {
  const std::uint64_t version = nn::read_u64(is);
  check(version == kTrainerStateVersion,
        "NithoTrainer::load_state: unsupported state version");
  NithoTrainConfig cfg = cfg_;
  cfg.epochs = static_cast<int>(nn::read_u64(is));
  cfg.batch = static_cast<int>(nn::read_u64(is));
  cfg.lr = nn::read_f32(is);
  cfg.train_px = static_cast<int>(nn::read_u64(is));
  cfg.seed = nn::read_u64(is);
  check(cfg.epochs >= 1 && cfg.batch >= 1 && cfg.lr > 0.0f,
        "NithoTrainer::load_state: corrupt config");
  const auto kernel_dim = static_cast<int>(nn::read_u64(is));
  const auto train_px = static_cast<int>(nn::read_u64(is));
  const auto set_size = static_cast<int>(nn::read_u64(is));
  check(kernel_dim == model_.kernel_dim(),
        "NithoTrainer::load_state: state was captured for a different "
        "kernel support");
  check(train_px == set_.train_px && set_size == set_.size(),
        "NithoTrainer::load_state: state was captured over a different "
        "training set");
  const auto epoch = static_cast<int>(nn::read_u64(is));
  check(epoch >= 0 && epoch <= cfg.epochs,
        "NithoTrainer::load_state: epoch cursor out of range");
  // Stage everything in locals first: nothing of the trainer is mutated
  // until the whole stream has parsed and validated (the Adam record is
  // deliberately last in the stream and is itself all-or-nothing), so a
  // truncated or corrupt checkpoint never leaves a half-restored trainer.
  const std::vector<nn::Var> params = model_.parameters();
  const std::uint64_t stored = nn::read_u64(is);
  check(stored == params.size(),
        "NithoTrainer::load_state: stored parameter count does not match "
        "the model");
  std::vector<nn::Tensor> weights;
  weights.reserve(params.size());
  for (const nn::Var& p : params) {
    nn::Tensor t = nn::read_tensor(is);
    check(t.shape() == p->value.shape(),
          "NithoTrainer::load_state: stored parameter shape does not match "
          "the model");
    weights.push_back(std::move(t));
  }
  Rng staged_rng(0);
  staged_rng.set_state(nn::read_string(is));
  const std::vector<double> order_d = nn::read_doubles(is);
  check(order_d.size() == static_cast<std::size_t>(set_.size()),
        "NithoTrainer::load_state: shuffle permutation length disagrees "
        "with the training set");
  std::vector<int> order(order_d.size());
  std::vector<bool> seen(order_d.size(), false);
  for (std::size_t i = 0; i < order_d.size(); ++i) {
    const double v = order_d[i];
    const int idx = static_cast<int>(v);
    check(v == static_cast<double>(idx) && idx >= 0 &&
              idx < set_.size() && !seen[static_cast<std::size_t>(idx)],
          "NithoTrainer::load_state: corrupt shuffle permutation");
    seen[static_cast<std::size_t>(idx)] = true;
    order[i] = idx;
  }
  std::vector<double> losses = nn::read_doubles(is);
  check(static_cast<int>(losses.size()) == epoch,
        "NithoTrainer::load_state: loss trajectory length disagrees with "
        "the epoch cursor");
  const auto steps = static_cast<int>(nn::read_u64(is));
  const std::vector<double> seconds = nn::read_doubles(is);
  check(seconds.size() == 4,
        "NithoTrainer::load_state: malformed timing record");
  // Last mutating read; shape-checked against the bound parameters and
  // all-or-nothing by itself.
  opt_.load_state(is);

  // Commit.
  for (std::size_t i = 0; i < params.size(); ++i) {
    const nn::Tensor& t = weights[i];
    std::copy(t.data(), t.data() + t.numel(), params[i]->value.data());
  }
  rng_ = staged_rng;
  order_ = std::move(order);
  cfg_ = cfg;
  epoch_ = epoch;
  stats_.epoch_losses = std::move(losses);
  stats_.final_loss =
      stats_.epoch_losses.empty() ? 0.0 : stats_.epoch_losses.back();
  stats_.steps = steps;
  stats_.seconds = seconds[0];
  stats_.forward_seconds = seconds[1];
  stats_.backward_seconds = seconds[2];
  stats_.step_seconds = seconds[3];
}

double evaluate_nitho(const NithoModel& model, const TrainingSet& set,
                      int batch) {
  const int n = set.size();
  check(n >= 1, "evaluation needs at least one sample");
  check(batch >= 1, "bad evaluation batch size");
  check(set.kernel_dim == model.kernel_dim(),
        "evaluation set prepared for a different kernel support");
  const int px = set.train_px;
  nn::GraphArena arena;
  nn::Tensor spectra, targets;
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  double total = 0.0;
  for (int b = 0; b < n; b += batch) {
    const int count = std::min(batch, n - b);
    gather_batch(set, order, b, count, spectra, targets);
    arena.reset();
    nn::GraphArena::Scope scope(arena);
    const nn::Var kernels = model.predict_kernels();
    nn::Var pred =
        nn::abs2_sum0_batch(nn::socs_field_batch(kernels, spectra, px));
    nn::Var loss = nn::mse_loss_batch_ordered(pred, targets);
    // Unscaled: the batch loss is the ordered sum of per-sample MSEs;
    // accumulate the raw sums and divide once at the end.
    total += static_cast<double>(loss->value[0]);
  }
  return total / static_cast<double>(n);
}

TrainStats train_nitho(NithoModel& model, const TrainingSet& set,
                       const NithoTrainConfig& cfg) {
  NithoTrainer trainer(model, set, cfg);
  while (!trainer.done()) trainer.run_epoch();
  return trainer.stats();
}

std::vector<const Sample*> sample_ptrs(const Dataset& ds, int max_count) {
  std::vector<const Sample*> out;
  const int n = max_count < 0
                    ? static_cast<int>(ds.samples.size())
                    : std::min<int>(max_count, static_cast<int>(ds.samples.size()));
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(&ds.samples[static_cast<std::size_t>(i)]);
  return out;
}

std::vector<const Sample*> sample_ptrs(const std::vector<const Dataset*>& sets,
                                       int max_per_set) {
  std::vector<const Sample*> out;
  for (const Dataset* ds : sets) {
    check(ds != nullptr, "null dataset");
    auto ptrs = sample_ptrs(*ds, max_per_set);
    out.insert(out.end(), ptrs.begin(), ptrs.end());
  }
  return out;
}

}  // namespace nitho
