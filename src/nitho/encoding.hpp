#pragma once
// Positional encodings for optical-kernel coordinates (paper §III-B3).
//
// Three variants, matching the Table V ablation:
//   None        — a plain Gaussian linear projection of the coordinates
//                 ("remove the positional encoding layer by using a simple
//                 Gaussian matrix").
//   NerfPe      — NeRF's axis-aligned sin/cos pyramid (Eq. 14).
//   GaussianRff — the paper's complex Gaussian random Fourier features
//                 (Eq. 15): gamma(v) = [cos(2 pi B v), sin(2 pi B v)] * (1+j),
//                 B_ij ~ N(0, sigma^2).
//
// All produce a constant complex tensor [n*m, features, 2]; coordinates are
// normalized to [0, 1]^2 before encoding.

#include <cstdint>
#include <string>

#include "nn/tensor.hpp"

namespace nitho {

enum class EncodingKind { None, NerfPe, GaussianRff };

std::string encoding_name(EncodingKind kind);

struct EncodingConfig {
  EncodingKind kind = EncodingKind::GaussianRff;
  int features = 128;     ///< complex input width F fed to the CMLP
  /// RFF bandwidth (std-dev of B entries).  The TCC varies on the scale of
  /// the pupil radius (~half the normalized coordinate range), so sigma ~ 1
  /// maximizes out-of-distribution transfer: the field smoothly interpolates
  /// kernel values at frequencies the training masks under-constrain.
  double sigma = 1.0;
  std::uint64_t seed = 7; ///< B matrix seed (fixed per model)
};

/// Encodes the flattened kernel coordinate grid (row-major, matching
/// Algorithm 1 line 2) into [n*m, features, 2].
nn::Tensor encode_coordinates(int n, int m, const EncodingConfig& cfg);

}  // namespace nitho
