#pragma once
// Sum of Coherent Sources decomposition (Eq. 3): eigendecompose the
// Hermitian PSD TCC and return spectral-domain optical kernels ordered by
// decreasing eigenvalue, with sqrt(eigenvalue) folded into each kernel so
// the imaging sum is simply I = sum_i |F^-1(K_i . F(M))|^2 (Eq. 9).

#include <vector>

#include "math/grid.hpp"
#include "math/cplx.hpp"

namespace nitho {

struct SocsKernels {
  int kdim = 0;
  std::vector<double> eigenvalues;   ///< descending, matching kernels
  std::vector<Grid<cd>> kernels;     ///< kdim x kdim, sqrt(eigenvalue) folded in

  int rank() const { return static_cast<int>(kernels.size()); }
};

/// Decomposes a kdim^2 x kdim^2 TCC.  Keeps eigenpairs with
/// eigenvalue > rel_tol * max_eigenvalue (negative values from roundoff are
/// dropped); max_rank < 0 keeps everything above tolerance.
SocsKernels socs_decompose(const Grid<cd>& tcc, int kdim,
                           double rel_tol = 1e-7, int max_rank = -1);

/// Rebuilds sum_i K_i K_i^H for validation against the original TCC.
Grid<cd> tcc_from_kernels(const SocsKernels& socs);

/// Truncation tail weight: sum of retained eigenvalues / trace(TCC) in
/// [0, 1]; 1 means the decomposition captured everything.
double captured_energy(const SocsKernels& socs, const Grid<cd>& tcc);

}  // namespace nitho
