#pragma once
// Physical resolution limit and the paper's kernel-dimension rule (Eq. 10).

namespace nitho {

/// Rayleigh-style resolution element R = 0.5 * lambda / NA (nm).
double resolution_element_nm(double wavelength_nm, double na);

/// Eq. (10): kernel width for a tile of extent_nm, odd by construction:
///   m = floor(extent * 2 * NA / lambda) * 2 + 1.
/// The TCC support is |f| <= 2 NA/lambda; on the 1/extent frequency lattice
/// that is +-floor(extent * 2 NA / lambda) orders around DC.
int kernel_dim(int extent_nm, double wavelength_nm, double na);

/// Highest diffraction order that passes the pupil (|f| <= NA/lambda).
int pupil_order(int extent_nm, double wavelength_nm, double na);

}  // namespace nitho
