#pragma once
// Illumination source models (the J weight factor of Eq. 2).
//
// Source points are sampled on a regular lattice in spatial-frequency space;
// each point carries a non-negative weight.  Weights are normalized so the
// clear-field aerial intensity is exactly 1, which anchors the resist
// threshold across datasets.

#include <vector>

#include "math/cplx.hpp"

namespace nitho {

enum class SourceShape { Circular, Annular, Quadrupole };

struct SourceSpec {
  SourceShape shape = SourceShape::Annular;
  double sigma_out = 0.8;  ///< outer partial-coherence factor (<= 1)
  double sigma_in = 0.5;   ///< inner factor (annular / quadrupole)
  double pole_angle_deg = 45.0;  ///< quadrupole pole centres (from x-axis)
  double pole_half_angle_deg = 20.0;  ///< quadrupole pole angular half-width
};

/// One discretized source point: spatial frequency (fx, fy) in cycles/nm and
/// its quadrature weight.
struct SourcePoint {
  double fx = 0.0;
  double fy = 0.0;
  double weight = 0.0;
};

/// Samples the source on a lattice with spacing 1/(oversample * tile_nm),
/// keeping points inside the shape.  Weights sum to 1.
/// wavelength/na define the pupil-coordinate normalization (sigma = 1 maps
/// to frequency NA/lambda).
std::vector<SourcePoint> sample_source(const SourceSpec& spec,
                                       double wavelength_nm, double na,
                                       int tile_nm, int oversample);

}  // namespace nitho
