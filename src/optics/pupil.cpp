#include "optics/pupil.hpp"

#include <cmath>

#include "common/check.hpp"

namespace nitho {

Pupil::Pupil(double wavelength_nm, double na, PupilSpec spec)
    : wavelength_nm_(wavelength_nm), f_pupil_(na / wavelength_nm), spec_(spec) {
  check(wavelength_nm > 0 && na > 0, "bad pupil parameters");
}

cd Pupil::operator()(double fx, double fy) const {
  const double f2 = fx * fx + fy * fy;
  if (f2 > f_pupil_ * f_pupil_ * (1.0 + 1e-12)) return cd(0.0, 0.0);
  double phase = 0.0;
  if (spec_.defocus_nm != 0.0) {
    // Paraxial defocus OPD: pi * lambda * z * (fx^2 + fy^2).
    phase -= kPi * wavelength_nm_ * spec_.defocus_nm * f2;
  }
  if (spec_.spherical_waves != 0.0) {
    const double rho2 = f2 / (f_pupil_ * f_pupil_);
    phase += 2.0 * kPi * spec_.spherical_waves * rho2 * rho2;
  }
  if (phase == 0.0) return cd(1.0, 0.0);
  return cd(std::cos(phase), std::sin(phase));
}

}  // namespace nitho
