#pragma once
// Projector pupil function H (Eq. 2): an ideal low-pass disk of radius
// NA/lambda in spatial frequency, with optional defocus and spherical
// aberration phase terms so complex-valued kernels are exercised.

#include "math/cplx.hpp"

namespace nitho {

struct PupilSpec {
  double defocus_nm = 0.0;      ///< paraxial defocus z
  double spherical_waves = 0.0; ///< Z9-like rho^4 aberration, in waves
};

class Pupil {
 public:
  Pupil(double wavelength_nm, double na, PupilSpec spec = {});

  /// H(fx, fy); zero outside the NA disk, unit magnitude (phase-only
  /// aberrations) inside.
  cd operator()(double fx, double fy) const;

  double cutoff() const { return f_pupil_; }  ///< NA / lambda in cycles/nm

 private:
  double wavelength_nm_;
  double f_pupil_;
  PupilSpec spec_;
};

}  // namespace nitho
