#include "optics/resolution.hpp"

#include <cmath>

#include "common/check.hpp"

namespace nitho {

double resolution_element_nm(double wavelength_nm, double na) {
  check(wavelength_nm > 0 && na > 0, "bad optics parameters");
  return 0.5 * wavelength_nm / na;
}

int kernel_dim(int extent_nm, double wavelength_nm, double na) {
  check(extent_nm > 0 && wavelength_nm > 0 && na > 0, "bad optics parameters");
  const int half = static_cast<int>(
      std::floor(extent_nm * 2.0 * na / wavelength_nm));
  return 2 * half + 1;
}

int pupil_order(int extent_nm, double wavelength_nm, double na) {
  check(extent_nm > 0 && wavelength_nm > 0 && na > 0, "bad optics parameters");
  return static_cast<int>(std::floor(extent_nm * na / wavelength_nm));
}

}  // namespace nitho
