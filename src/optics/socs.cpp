#include "optics/socs.hpp"

#include <cmath>

#include "common/check.hpp"
#include "math/hermitian_eig.hpp"

namespace nitho {

SocsKernels socs_decompose(const Grid<cd>& tcc, int kdim, double rel_tol,
                           int max_rank) {
  const int n = kdim * kdim;
  check(tcc.rows() == n && tcc.cols() == n,
        "TCC size does not match kdim^2");
  const EighResult eig = eigh(tcc);

  SocsKernels out;
  out.kdim = kdim;
  const double lambda_max = eig.eigenvalues.empty() ? 0.0 : eig.eigenvalues.back();
  check(lambda_max > 0.0, "TCC has no positive eigenvalue");
  const double cutoff = rel_tol * lambda_max;

  // Eigenvalues come back ascending; walk from the top.
  for (int j = n - 1; j >= 0; --j) {
    const double lambda = eig.eigenvalues[j];
    if (lambda <= cutoff) break;
    if (max_rank >= 0 && out.rank() >= max_rank) break;
    const double scale = std::sqrt(lambda);
    Grid<cd> k(kdim, kdim);
    for (int a = 0; a < n; ++a) {
      k[a] = scale * eig.eigenvectors(a, j);
    }
    out.eigenvalues.push_back(lambda);
    out.kernels.push_back(std::move(k));
  }
  check(!out.kernels.empty(), "SOCS kept no kernels; check rel_tol");
  return out;
}

Grid<cd> tcc_from_kernels(const SocsKernels& socs) {
  const int n = socs.kdim * socs.kdim;
  Grid<cd> tcc(n, n, cd(0.0, 0.0));
  for (const Grid<cd>& k : socs.kernels) {
    for (int a = 0; a < n; ++a) {
      const cd ka = k[a];
      if (ka == cd(0.0, 0.0)) continue;
      cd* row = tcc.row(a);
      for (int b = 0; b < n; ++b) row[b] += ka * std::conj(k[b]);
    }
  }
  return tcc;
}

double captured_energy(const SocsKernels& socs, const Grid<cd>& tcc) {
  double trace = 0.0;
  for (int a = 0; a < tcc.rows(); ++a) trace += tcc(a, a).real();
  double kept = 0.0;
  for (double l : socs.eigenvalues) kept += l;
  return trace > 0.0 ? kept / trace : 0.0;
}

}  // namespace nitho
