#pragma once
// Transmission cross coefficient construction (Hopkins, Eq. 2).
//
// The TCC is assembled over the centered kdim x kdim window of the tile's
// frequency lattice (spacing 1/tile_nm).  Linear index a = r*kdim + c maps to
// the spatial-frequency pair (fy, fx) = ((r - kdim/2)/tile, (c - kdim/2)/tile),
// matching the centered (fftshifted) spectrum layout used everywhere else.
//
//   T(a, b) = sum_s J_s H(f_s + f_a) H*(f_s + f_b)
//
// accumulated as rank-1 outer products over discretized source points, so the
// result is Hermitian positive semi-definite by construction.

#include "math/grid.hpp"
#include "optics/pupil.hpp"
#include "optics/source.hpp"

namespace nitho {

/// Full description of the imaging system (source + pupil + sampling).
struct OpticalSystem {
  double wavelength_nm = 193.0;
  double na = 1.35;
  SourceSpec source;
  PupilSpec pupil;
  int source_oversample = 2;  ///< source lattice refinement vs 1/tile
};

/// Builds the kdim^2 x kdim^2 TCC matrix for a tile_nm tile.
Grid<cd> build_tcc(const OpticalSystem& sys, int tile_nm, int kdim);

/// Frequency (fy, fx) of kernel-grid position (r, c) in cycles/nm.
inline double kernel_freq(int index, int kdim, int tile_nm) {
  return static_cast<double>(index - kdim / 2) / tile_nm;
}

}  // namespace nitho
