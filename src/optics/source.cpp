#include "optics/source.hpp"

#include <cmath>

#include "common/check.hpp"

namespace nitho {
namespace {

bool inside_shape(const SourceSpec& s, double sx, double sy) {
  const double r = std::hypot(sx, sy);
  switch (s.shape) {
    case SourceShape::Circular:
      return r <= s.sigma_out;
    case SourceShape::Annular:
      return r >= s.sigma_in && r <= s.sigma_out;
    case SourceShape::Quadrupole: {
      if (r < s.sigma_in || r > s.sigma_out) return false;
      const double ang = std::atan2(sy, sx) * 180.0 / kPi;  // [-180, 180]
      const double half = s.pole_half_angle_deg;
      for (int k = 0; k < 4; ++k) {
        double centre = s.pole_angle_deg + 90.0 * k;
        double d = std::fmod(std::abs(ang - centre), 360.0);
        if (d > 180.0) d = 360.0 - d;
        if (d <= half) return true;
      }
      return false;
    }
  }
  return false;
}

}  // namespace

std::vector<SourcePoint> sample_source(const SourceSpec& spec,
                                       double wavelength_nm, double na,
                                       int tile_nm, int oversample) {
  check(wavelength_nm > 0 && na > 0 && tile_nm > 0 && oversample >= 1,
        "bad source sampling parameters");
  check(spec.sigma_out > 0 && spec.sigma_out <= 1.0,
        "sigma_out must lie in (0, 1]");
  check(spec.sigma_in >= 0 && spec.sigma_in < spec.sigma_out,
        "sigma_in must lie in [0, sigma_out)");

  const double df = 1.0 / (static_cast<double>(oversample) * tile_nm);
  const double f_pupil = na / wavelength_nm;  // sigma = 1 radius
  const int kmax = static_cast<int>(std::ceil(spec.sigma_out * f_pupil / df));

  std::vector<SourcePoint> pts;
  double total = 0.0;
  for (int ky = -kmax; ky <= kmax; ++ky) {
    for (int kx = -kmax; kx <= kmax; ++kx) {
      const double fx = kx * df, fy = ky * df;
      if (!inside_shape(spec, fx / f_pupil, fy / f_pupil)) continue;
      pts.push_back(SourcePoint{fx, fy, 1.0});
      total += 1.0;
    }
  }
  check(!pts.empty(), "source discretization produced no points");
  for (auto& p : pts) p.weight /= total;
  return pts;
}

}  // namespace nitho
