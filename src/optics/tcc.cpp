#include "optics/tcc.hpp"

#include <vector>

#include "common/check.hpp"

namespace nitho {

Grid<cd> build_tcc(const OpticalSystem& sys, int tile_nm, int kdim) {
  check(tile_nm > 0 && kdim >= 1 && kdim % 2 == 1,
        "kdim must be odd and positive");
  const Pupil pupil(sys.wavelength_nm, sys.na, sys.pupil);
  const std::vector<SourcePoint> src = sample_source(
      sys.source, sys.wavelength_nm, sys.na, tile_nm, sys.source_oversample);

  const int n = kdim * kdim;
  Grid<cd> tcc(n, n, cd(0.0, 0.0));

  // Per-source sparse pupil samples: h_s[a] = H(f_s + f_a) is nonzero only
  // where the shifted frequency stays inside the NA disk, which keeps the
  // rank-1 accumulation cheap.
  struct Entry {
    int index;
    cd value;
  };
  std::vector<Entry> h;
  h.reserve(static_cast<std::size_t>(n));

  for (const SourcePoint& s : src) {
    h.clear();
    for (int r = 0; r < kdim; ++r) {
      const double fy = s.fy + kernel_freq(r, kdim, tile_nm);
      for (int c = 0; c < kdim; ++c) {
        const double fx = s.fx + kernel_freq(c, kdim, tile_nm);
        const cd v = pupil(fx, fy);
        if (v != cd(0.0, 0.0)) h.push_back(Entry{r * kdim + c, v});
      }
    }
    for (const Entry& ea : h) {
      const cd wa = s.weight * ea.value;
      cd* row = tcc.row(ea.index);
      for (const Entry& eb : h) {
        row[eb.index] += wa * std::conj(eb.value);
      }
    }
  }
  return tcc;
}

}  // namespace nitho
