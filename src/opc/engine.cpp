#include "opc/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/check.hpp"
#include "fft/spectral.hpp"
#include "io/tensor_io.hpp"
#include "metrics/metrics.hpp"
#include "nn/ops.hpp"
#include "nn/ops_fft.hpp"

namespace nitho::opc {

namespace {

// Checkpoint header: see OpcCheckpoint doc.  Integers ride in floats, which
// is exact below 2^24 — far beyond any real iteration count (checked on
// save).  resist_threshold round-trips through float; OPC thresholds are
// short decimals and survive, but exotic doubles would lose low bits.
constexpr float kCheckpointVersion = 1.0f;
constexpr std::size_t kHeaderFloats = 13;
constexpr long kMaxExactLong = 1 << 24;

}  // namespace

void OpcCheckpoint::save(const std::string& path) const {
  const std::size_t n = intended.size();
  check(theta.size() == n && adam_m.size() == n && adam_v.size() == n,
        "OpcCheckpoint::save: inconsistent state sizes");
  check(iteration < kMaxExactLong && adam_step < kMaxExactLong,
        "OpcCheckpoint::save: step count exceeds float-exact range");
  std::vector<float> flat;
  flat.reserve(kHeaderFloats + 4 * n + losses.size());
  flat.push_back(kCheckpointVersion);
  flat.push_back(static_cast<float>(config.mask_px));
  flat.push_back(static_cast<float>(config.sim_px));
  flat.push_back(config.lr);
  flat.push_back(config.bin_weight);
  flat.push_back(config.theta_init);
  flat.push_back(config.target_bright);
  flat.push_back(config.target_dark);
  flat.push_back(static_cast<float>(config.resist_threshold));
  flat.push_back(static_cast<float>(batch));
  flat.push_back(static_cast<float>(iteration));
  flat.push_back(static_cast<float>(adam_step));
  flat.push_back(static_cast<float>(losses.size()));
  for (const std::vector<float>* part : {&intended, &theta, &adam_m, &adam_v,
                                         &losses}) {
    flat.insert(flat.end(), part->begin(), part->end());
  }
  save_floats(path, flat);
}

OpcCheckpoint OpcCheckpoint::load(const std::string& path) {
  const std::vector<float> flat = load_floats(path);
  check(flat.size() >= kHeaderFloats, "OpcCheckpoint::load: truncated file");
  check(flat[0] == kCheckpointVersion,
        "OpcCheckpoint::load: unsupported version");
  OpcCheckpoint ck;
  ck.config.mask_px = static_cast<int>(flat[1]);
  ck.config.sim_px = static_cast<int>(flat[2]);
  ck.config.lr = flat[3];
  ck.config.bin_weight = flat[4];
  ck.config.theta_init = flat[5];
  ck.config.target_bright = flat[6];
  ck.config.target_dark = flat[7];
  ck.config.resist_threshold = static_cast<double>(flat[8]);
  ck.batch = static_cast<int>(flat[9]);
  ck.iteration = static_cast<long>(flat[10]);
  ck.adam_step = static_cast<long>(flat[11]);
  const std::size_t losses = static_cast<std::size_t>(flat[12]);
  check(ck.config.mask_px > 0 && ck.config.sim_px > 0 && ck.batch > 0,
        "OpcCheckpoint::load: corrupt header");
  const std::size_t n = static_cast<std::size_t>(ck.batch) *
                        ck.config.mask_px * ck.config.mask_px;
  check(flat.size() == kHeaderFloats + 4 * n + losses,
        "OpcCheckpoint::load: size mismatch");
  auto take = [&](std::size_t offset, std::size_t count) {
    return std::vector<float>(flat.begin() + static_cast<std::ptrdiff_t>(offset),
                              flat.begin() +
                                  static_cast<std::ptrdiff_t>(offset + count));
  };
  ck.intended = take(kHeaderFloats, n);
  ck.theta = take(kHeaderFloats + n, n);
  ck.adam_m = take(kHeaderFloats + 2 * n, n);
  ck.adam_v = take(kHeaderFloats + 3 * n, n);
  ck.losses = take(kHeaderFloats + 4 * n, losses);
  return ck;
}

OpcEngine::OpcEngine(std::shared_ptr<const std::vector<Grid<cd>>> kernels,
                     OpcConfig config)
    : config_(config), kernels_(std::move(kernels)) {
  check(kernels_ != nullptr && !kernels_->empty(), "OpcEngine: no kernels");
  kdim_ = (*kernels_)[0].rows();
  check(kdim_ >= 1 && kdim_ % 2 == 1, "OpcEngine: kernel dim must be odd");
  for (const Grid<cd>& k : *kernels_) {
    check(k.rows() == kdim_ && k.cols() == kdim_,
          "OpcEngine: kernels must be square and uniform");
  }
  const int r = static_cast<int>(kernels_->size());
  kt_ = nn::Tensor({r, kdim_, kdim_, 2});
  for (int i = 0; i < r; ++i) {
    const Grid<cd>& k = (*kernels_)[i];
    for (std::size_t p = 0; p < k.size(); ++p) {
      const std::int64_t base =
          (static_cast<std::int64_t>(i) * static_cast<std::int64_t>(k.size()) +
           static_cast<std::int64_t>(p)) *
          2;
      kt_[base] = static_cast<float>(k[p].real());
      kt_[base + 1] = static_cast<float>(k[p].imag());
    }
  }
}

void OpcEngine::bind(int batch, std::vector<float> intended,
                     std::vector<float> theta) {
  const int s = config_.mask_px;
  check(config_.sim_px >= kdim_, "OpcEngine: sim_px below kernel support");
  check(s >= config_.sim_px && s % config_.sim_px == 0,
        "OpcEngine: mask_px must be a multiple of sim_px");
  check(s >= kdim_, "OpcEngine: mask_px below kernel support");
  const std::size_t n = static_cast<std::size_t>(batch) * s * s;
  check(intended.size() == n && theta.size() == n,
        "OpcEngine: state size mismatch");

  batch_ = batch;
  intended_ = std::move(intended);
  nn::Tensor t({batch, s, s});
  for (std::size_t i = 0; i < n; ++i)
    t[static_cast<std::int64_t>(i)] = theta[i];
  vtheta_ = nn::make_leaf(std::move(t), /*requires_grad=*/true);
  opt_ = std::make_unique<nn::Adam>(std::vector<nn::Var>{vtheta_}, config_.lr);

  // Desired aerial: bright where the design prints, dark elsewhere, pushed
  // past the resist threshold with margin (examples/inverse_litho.cpp).
  const int sim = config_.sim_px;
  const int factor = s / sim;
  targets_ = nn::Tensor({batch, sim, sim});
  for (int b = 0; b < batch; ++b) {
    Grid<double> g(s, s);
    for (std::size_t i = 0; i < g.size(); ++i)
      g[i] = intended_[static_cast<std::size_t>(b) * s * s + i];
    const Grid<double> down = downsample_area(g, factor);
    for (std::size_t i = 0; i < down.size(); ++i) {
      targets_[static_cast<std::int64_t>(b) * sim * sim +
               static_cast<std::int64_t>(i)] =
          down[i] > 0.5 ? config_.target_bright : config_.target_dark;
    }
  }
  iteration_ = 0;
  losses_.clear();
}

void OpcEngine::start(const std::vector<Grid<double>>& intended) {
  check(!intended.empty(), "OpcEngine::start: empty batch");
  const int s = config_.mask_px;
  const int batch = static_cast<int>(intended.size());
  std::vector<float> flat(static_cast<std::size_t>(batch) * s * s);
  std::vector<float> theta(flat.size());
  for (int b = 0; b < batch; ++b) {
    const Grid<double>& g = intended[static_cast<std::size_t>(b)];
    check(g.rows() == s && g.cols() == s,
          "OpcEngine::start: intended pattern must be mask_px square");
    for (std::size_t i = 0; i < g.size(); ++i) {
      const std::size_t j = static_cast<std::size_t>(b) * s * s + i;
      flat[j] = static_cast<float>(g[i]);
      theta[j] = g[i] > 0.5 ? config_.theta_init : -config_.theta_init;
    }
  }
  bind(batch, std::move(flat), std::move(theta));
}

void OpcEngine::restore(const OpcCheckpoint& ck) {
  check(ck.batch > 0, "OpcEngine::restore: empty checkpoint");
  config_ = ck.config;
  bind(ck.batch, ck.intended, ck.theta);
  const std::size_t n = ck.theta.size();
  check(ck.adam_m.size() == n && ck.adam_v.size() == n,
        "OpcEngine::restore: moment size mismatch");
  std::vector<float> state;
  state.reserve(2 * n);
  state.insert(state.end(), ck.adam_m.begin(), ck.adam_m.end());
  state.insert(state.end(), ck.adam_v.begin(), ck.adam_v.end());
  opt_->load_state(state);
  opt_->set_step_count(ck.adam_step);
  iteration_ = ck.iteration;
  losses_ = ck.losses;
}

OpcCheckpoint OpcEngine::checkpoint() const {
  check(batch_ > 0, "OpcEngine::checkpoint: no job bound");
  OpcCheckpoint ck;
  ck.config = config_;
  ck.batch = batch_;
  ck.iteration = iteration_;
  ck.adam_step = opt_->step_count();
  ck.intended = intended_;
  ck.theta = theta();
  const std::vector<float> state = opt_->dump_state();
  const std::size_t n = state.size() / 2;
  ck.adam_m.assign(state.begin(), state.begin() + static_cast<std::ptrdiff_t>(n));
  ck.adam_v.assign(state.begin() + static_cast<std::ptrdiff_t>(n), state.end());
  ck.losses = losses_;
  return ck;
}

OpcStepStats OpcEngine::step() {
  check(batch_ > 0, "OpcEngine::step: no job bound");
  const int s = config_.mask_px;
  arena_.reset();
  nn::GraphArena::Scope scope(arena_);
  opt_->zero_grad();
  nn::Var mask = nn::sigmoid(vtheta_);
  nn::Var spectra = nn::fft2c_crop_batch(mask, kdim_);
  nn::Var fields =
      nn::socs_field_from_spectrum_batch(spectra, kt_, config_.sim_px);
  nn::Var aerial = nn::abs2_sum0_batch(fields);
  nn::Var fit = nn::mse_loss_batch_ordered(aerial, targets_);
  // Binarization penalty, summed over the batch of per-mask means:
  // sum_b mean_b(m) - mean_b(m^2) == (sum(m) - sum(m^2)) / mask_px^2.
  // The 1/mask_px^2 constant and the backward arithmetic match the
  // per-mask mean() path exactly (mean == scale(sum, 1/numel)), which is
  // part of the per-mask bit-identity contract.
  const float inv = 1.0f / static_cast<float>(s * s);
  nn::Var bin =
      nn::scale(nn::sub(nn::sum(mask), nn::sum(nn::square(mask))), inv);
  nn::Var loss = nn::add(fit, nn::scale(bin, config_.bin_weight));
  nn::backward(loss);
  opt_->step();
  ++iteration_;
  OpcStepStats stats;
  stats.fit_loss = fit->value[0] / static_cast<float>(batch_);
  stats.total_loss = loss->value[0] / static_cast<float>(batch_);
  losses_.push_back(stats.fit_loss);
  return stats;
}

std::vector<float> OpcEngine::theta() const {
  check(batch_ > 0, "OpcEngine::theta: no job bound");
  const float* p = vtheta_->value.data();
  return std::vector<float>(p, p + vtheta_->value.numel());
}

void OpcEngine::load_theta(const std::vector<float>& theta) {
  check(batch_ > 0, "OpcEngine::load_theta: no job bound");
  check(static_cast<std::int64_t>(theta.size()) == vtheta_->value.numel(),
        "OpcEngine::load_theta: size mismatch");
  std::copy(theta.begin(), theta.end(), vtheta_->value.data());
}

std::vector<Grid<double>> OpcEngine::masks() const {
  check(batch_ > 0, "OpcEngine::masks: no job bound");
  const int s = config_.mask_px;
  std::vector<Grid<double>> out;
  out.reserve(static_cast<std::size_t>(batch_));
  for (int b = 0; b < batch_; ++b) {
    Grid<double> m(s, s);
    for (std::size_t i = 0; i < m.size(); ++i) {
      const float t = vtheta_->value[static_cast<std::int64_t>(b) * s * s +
                                     static_cast<std::int64_t>(i)];
      m[i] = 1.0 / (1.0 + std::exp(-static_cast<double>(t)));
    }
    out.push_back(std::move(m));
  }
  return out;
}

std::vector<Grid<double>> OpcEngine::binary_masks() const {
  std::vector<Grid<double>> out = masks();
  for (Grid<double>& m : out) {
    for (double& v : m) v = v > 0.5 ? 1.0 : 0.0;
  }
  return out;
}

nn::Tensor OpcEngine::forward_aerial() const {
  check(batch_ > 0, "OpcEngine::forward_aerial: no job bound");
  // No-grad evaluation through the same float forward the optimizer uses
  // (a constant copy of theta keeps backward closures from being built).
  nn::Var t = nn::make_leaf(vtheta_->value, /*requires_grad=*/false);
  nn::Var mask = nn::sigmoid(t);
  nn::Var spectra = nn::fft2c_crop_batch(mask, kdim_);
  nn::Var fields =
      nn::socs_field_from_spectrum_batch(spectra, kt_, config_.sim_px);
  return nn::abs2_sum0_batch(fields)->value;
}

std::vector<Grid<double>> OpcEngine::printed() const {
  const nn::Tensor aerial = forward_aerial();
  const int sim = config_.sim_px;
  std::vector<Grid<double>> out;
  out.reserve(static_cast<std::size_t>(batch_));
  for (int b = 0; b < batch_; ++b) {
    Grid<double> g(sim, sim);
    for (std::size_t i = 0; i < g.size(); ++i) {
      g[i] = aerial[static_cast<std::int64_t>(b) * sim * sim +
                    static_cast<std::int64_t>(i)];
    }
    out.push_back(binarize(g, config_.resist_threshold));
  }
  return out;
}

Grid<double> OpcEngine::intended_bin_sim(int b) const {
  const int s = config_.mask_px;
  Grid<double> g(s, s);
  for (std::size_t i = 0; i < g.size(); ++i)
    g[i] = intended_[static_cast<std::size_t>(b) * s * s + i];
  return binarize(downsample_area(g, s / config_.sim_px), 0.5);
}

double OpcEngine::mean_epe_px() const {
  const std::vector<Grid<double>> prints = printed();
  double total = 0.0;
  for (int b = 0; b < batch_; ++b) {
    total += mean_edge_placement_error(prints[static_cast<std::size_t>(b)],
                                       intended_bin_sim(b));
  }
  return total / static_cast<double>(batch_);
}

double mean_edge_placement_error(const Grid<double>& printed,
                                 const Grid<double>& intended) {
  check(printed.same_shape(intended) && !intended.empty(),
        "mean_edge_placement_error: shape mismatch");
  long edges = 0;
  double total = 0.0;
  // One pass over rows, one over columns; `at` abstracts the orientation.
  const auto scan = [&](bool rowwise) {
    const int lines = rowwise ? intended.rows() : intended.cols();
    const int len = rowwise ? intended.cols() : intended.rows();
    std::vector<int> ie, pe;
    for (int l = 0; l < lines; ++l) {
      ie.clear();
      pe.clear();
      const auto at = [&](const Grid<double>& g, int p) {
        return rowwise ? g(l, p) : g(p, l);
      };
      for (int p = 0; p + 1 < len; ++p) {
        if ((at(intended, p) > 0.5) != (at(intended, p + 1) > 0.5))
          ie.push_back(p);
        if ((at(printed, p) > 0.5) != (at(printed, p + 1) > 0.5))
          pe.push_back(p);
      }
      for (const int e : ie) {
        ++edges;
        if (pe.empty()) {
          total += len;  // the pattern's edge never printed in this line
          continue;
        }
        int best = std::numeric_limits<int>::max();
        for (const int q : pe) best = std::min(best, std::abs(q - e));
        total += best;
      }
    }
  };
  scan(true);
  scan(false);
  return edges == 0 ? 0.0 : total / static_cast<double>(edges);
}

}  // namespace nitho::opc
