#pragma once
// OpcEngine: gradient-based mask correction (ILT) as a batched, resumable
// job (DESIGN.md §10).
//
// The optimizer is the one examples/inverse_litho.cpp introduced —
//
//   theta --sigmoid--> mask --FFT crop--> spectrum --SOCS--> aerial,
//   loss = MSE(aerial, target) + w * mean(mask * (1 - mask))
//
// — lifted from one mask per graph to a whole batch per graph.  Each step
// builds a single autodiff graph over [B, S, S] theta through the batched
// FFT ops (fft2c_crop_batch / socs_field_from_spectrum_batch), recycled
// through a GraphArena, so steady-state steps allocate (almost) nothing.
// Per mask the arithmetic is bit-identical to running the per-mask loop:
// the batched ops are per-sample bit-identical, the loss is an ordered
// per-sample reduction, and Adam is elementwise over disjoint theta
// blocks, so one engine step over B masks produces exactly the thetas of
// B independent single-mask optimizers.
//
// Jobs are resumable: checkpoint() captures theta, the Adam moments and
// step count, the intended patterns and the loss trajectory; restore()
// continues the optimization bit-identically (same thetas, same losses) —
// the property the serving layer leans on to stop and resume long OPC
// jobs across server restarts.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "math/cplx.hpp"
#include "math/grid.hpp"
#include "nn/autodiff.hpp"
#include "nn/optimizer.hpp"
#include "nn/tensor.hpp"

namespace nitho::opc {

struct OpcConfig {
  int mask_px = 64;            ///< optimization grid (theta / mask side)
  int sim_px = 32;             ///< aerial grid the imaging loss lives on
  float lr = 0.05f;            ///< Adam learning rate
  float bin_weight = 0.02f;    ///< binarization penalty weight
  float theta_init = 1.5f;     ///< |theta| at init (sign from the intent)
  float target_bright = 0.6f;  ///< desired aerial inside the pattern
  float target_dark = 0.05f;   ///< desired aerial outside
  double resist_threshold = 0.25;  ///< print threshold for EPE evaluation
};

/// Scalars from one optimizer step (already divided by the batch size).
struct OpcStepStats {
  float fit_loss = 0.0f;    ///< mean per-mask imaging MSE
  float total_loss = 0.0f;  ///< fit + binarization penalty
};

/// Everything needed to resume a job bit-identically.  Serialized as one
/// flat float vector (io/tensor_io save_floats): a fixed header (version,
/// config, batch, iteration, Adam step count, loss count) followed by the
/// intended patterns, theta, the Adam first and second moments and the
/// fit-loss trajectory, each [B * mask_px^2] (losses: [loss count]).
struct OpcCheckpoint {
  OpcConfig config;
  int batch = 0;
  long iteration = 0;          ///< optimizer steps taken so far
  long adam_step = 0;          ///< Adam's bias-correction step count
  std::vector<float> intended; ///< [B, mask_px, mask_px] intent rasters
  std::vector<float> theta;    ///< [B, mask_px, mask_px]
  std::vector<float> adam_m;   ///< first moments, same shape as theta
  std::vector<float> adam_v;   ///< second moments
  std::vector<float> losses;   ///< fit loss per completed iteration

  void save(const std::string& path) const;
  static OpcCheckpoint load(const std::string& path);
};

class OpcEngine {
 public:
  /// Kernels are borrowed the way serving shards borrow them
  /// (FastLitho::kernels_shared) — shared, never copied.  All kernels must
  /// be square with one odd dimension <= sim_px.
  explicit OpcEngine(std::shared_ptr<const std::vector<Grid<cd>>> kernels,
                     OpcConfig config = {});

  /// Starts a fresh job: one intended pattern per mask, each mask_px
  /// square with values in [0,1].  Theta initializes to +-theta_init from
  /// the thresholded intent; targets are the intent box-filtered to
  /// sim_px and pushed to target_bright / target_dark.
  void start(const std::vector<Grid<double>>& intended);

  /// Resumes from a checkpoint (replacing this engine's config with the
  /// checkpoint's): subsequent step() calls produce bit-identical thetas
  /// and losses to the uninterrupted run.
  void restore(const OpcCheckpoint& ck);

  OpcCheckpoint checkpoint() const;

  /// One Adam step over the whole batch through a single recycled graph.
  OpcStepStats step();

  int batch() const { return batch_; }
  long iteration() const { return iteration_; }
  const OpcConfig& config() const { return config_; }
  /// Mean per-mask fit loss after each completed iteration.
  const std::vector<float>& losses() const { return losses_; }

  /// Current theta, flattened [B, mask_px, mask_px] — the bit-identity
  /// hook for tests and benches.
  std::vector<float> theta() const;
  /// Overwrites theta (evaluation hook: e.g. score a reference loop's
  /// result through the same EPE path).  Does not touch the Adam state.
  void load_theta(const std::vector<float>& theta);

  /// Continuous masks sigmoid(theta) at mask_px.
  std::vector<Grid<double>> masks() const;
  /// Masks thresholded at 0.5 (what would go to the writer).
  std::vector<Grid<double>> binary_masks() const;

  /// No-grad forward of the current masks: aerial images [B, sim, sim].
  nn::Tensor forward_aerial() const;
  /// Aerial thresholded at resist_threshold, per mask.
  std::vector<Grid<double>> printed() const;
  /// Mean edge-placement error (sim-grid pixels) of printed() against the
  /// intent box-filtered to sim_px, averaged over the batch.
  double mean_epe_px() const;

 private:
  void bind(int batch, std::vector<float> intended, std::vector<float> theta);
  Grid<double> intended_bin_sim(int b) const;

  OpcConfig config_;
  std::shared_ptr<const std::vector<Grid<cd>>> kernels_;
  int kdim_ = 0;
  nn::Tensor kt_;              ///< kernels as [r, kdim, kdim, 2]
  nn::GraphArena arena_;
  nn::Var vtheta_;             ///< [B, mask_px, mask_px] leaf
  std::unique_ptr<nn::Adam> opt_;
  nn::Tensor targets_;         ///< [B, sim, sim]
  std::vector<float> intended_;
  int batch_ = 0;
  long iteration_ = 0;
  std::vector<float> losses_;
};

/// Mean edge-placement error between two same-shape binary grids, in
/// pixels: every 0/1 transition in `intended` (along rows and along
/// columns) is matched to the nearest transition of `printed` in the same
/// scan line; a line with no printed transition scores the line length.
/// Returns 0 when the intent has no edges at all.
double mean_edge_placement_error(const Grid<double>& printed,
                                 const Grid<double>& intended);

}  // namespace nitho::opc
