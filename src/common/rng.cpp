#include "common/rng.hpp"

#include <sstream>

#include "common/check.hpp"

namespace nitho {

std::string Rng::state() const {
  std::ostringstream os;
  os << gen_;
  return os.str();
}

void Rng::set_state(const std::string& s) {
  std::istringstream is(s);
  std::mt19937_64 restored;
  is >> restored;
  check(!is.fail(), "Rng::set_state: malformed generator state");
  gen_ = restored;
}

}  // namespace nitho
