#include "common/rng.hpp"

// Header-only today; the translation unit anchors the library and keeps room
// for heavier samplers (e.g. Poisson-disk) without touching the interface.
