#pragma once
// Annotation-capable mutex wrappers for clang's thread-safety analysis
// (DESIGN.md §14).
//
// The concurrent layers (serve / rollout / opc / obs / litho caches) keep
// their lock discipline as *data*: every mutex-protected field is declared
// NITHO_GUARDED_BY its mutex, every must-hold helper NITHO_REQUIRES it, and
// the `tsa` preset (clang, -Wthread-safety -Werror=thread-safety) turns a
// violation — an unguarded access, a REQUIRES call without the lock, a
// scope that forgets to release — into a compile error.  Under GCC (which
// does not implement the attributes) every macro expands to nothing and the
// wrappers are zero-cost forwarding shims over the std primitives, so the
// annotated build is bit-identical to the unannotated one.
//
// Protocol notes for annotators:
//   * Condition-variable predicates must be written as explicit
//     `while (!cond) cv.wait(lk);` loops over NITHO_REQUIRES-visible
//     fields, not as lambdas passed to wait(): the analysis treats a
//     lambda body as a separate unannotated function with an empty
//     capability set, so guarded reads inside a predicate lambda would
//     be (false-positive) violations.
//   * Fields published before any thread can observe them (constructor
//     writes) still take the lock — a trivially uncontended acquire is
//     cheaper than a NITHO_NO_THREAD_SAFETY_ANALYSIS escape that also
//     turns the analysis off for real bugs in the same function.
//   * State kept consistent by a protocol the analysis cannot express
//     (epoch-published job pointers, join-barrier handoff) stays
//     unannotated with a comment saying so; the analysis only checks
//     what is annotated, it never guesses.

#include <chrono>
#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------------------
// Attribute macros (clang Thread Safety Analysis; no-ops elsewhere).
// ---------------------------------------------------------------------------
#if defined(__clang__) && !defined(SWIG)
#define NITHO_TSA(x) __attribute__((x))
#else
#define NITHO_TSA(x)  // GCC and friends: annotations compile away
#endif

#define NITHO_CAPABILITY(x) NITHO_TSA(capability(x))
#define NITHO_SCOPED_CAPABILITY NITHO_TSA(scoped_lockable)
#define NITHO_GUARDED_BY(x) NITHO_TSA(guarded_by(x))
#define NITHO_PT_GUARDED_BY(x) NITHO_TSA(pt_guarded_by(x))
#define NITHO_ACQUIRED_BEFORE(...) NITHO_TSA(acquired_before(__VA_ARGS__))
#define NITHO_ACQUIRED_AFTER(...) NITHO_TSA(acquired_after(__VA_ARGS__))
#define NITHO_REQUIRES(...) NITHO_TSA(requires_capability(__VA_ARGS__))
#define NITHO_ACQUIRE(...) NITHO_TSA(acquire_capability(__VA_ARGS__))
#define NITHO_RELEASE(...) NITHO_TSA(release_capability(__VA_ARGS__))
#define NITHO_TRY_ACQUIRE(...) NITHO_TSA(try_acquire_capability(__VA_ARGS__))
#define NITHO_EXCLUDES(...) NITHO_TSA(locks_excluded(__VA_ARGS__))
#define NITHO_RETURN_CAPABILITY(x) NITHO_TSA(lock_returned(x))
#define NITHO_ASSERT_CAPABILITY(x) NITHO_TSA(assert_capability(x))
#define NITHO_NO_THREAD_SAFETY_ANALYSIS NITHO_TSA(no_thread_safety_analysis)

namespace nitho {

/// std::mutex with the `capability` annotation: fields declared
/// NITHO_GUARDED_BY(mu_) can only be touched while mu_ is held, checked at
/// compile time under the tsa preset.
class NITHO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NITHO_ACQUIRE() { m_.lock(); }
  void unlock() NITHO_RELEASE() { m_.unlock(); }
  bool try_lock() NITHO_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// The underlying std::mutex, for CondVar's wait plumbing only — going
  /// through it for anything else bypasses the analysis.
  std::mutex& native() { return m_; }

 private:
  std::mutex m_;
};

/// std::lock_guard equivalent: acquires in the constructor, releases in the
/// destructor, no unlock in between (use UniqueLock when a wait or an early
/// release is needed).
class NITHO_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) NITHO_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() NITHO_RELEASE() { mu_.unlock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock equivalent: a scoped capability that can release and
/// re-acquire (CondVar waits through it).  Always constructed locked; the
/// destructor releases iff still held, which the analysis tracks through
/// the relockable-scope protocol (clang >= 9).
class NITHO_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) NITHO_ACQUIRE(mu) : lk_(mu.native()) {}
  ~UniqueLock() NITHO_RELEASE() = default;
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() NITHO_ACQUIRE() { lk_.lock(); }
  void unlock() NITHO_RELEASE() { lk_.unlock(); }
  bool owns_lock() const { return lk_.owns_lock(); }

  /// For CondVar only (waits need the underlying std::unique_lock).
  std::unique_lock<std::mutex>& native() { return lk_; }

 private:
  std::unique_lock<std::mutex> lk_;
};

/// Condition variable that waits through UniqueLock.  Deliberately has no
/// predicate-taking overloads: predicates over guarded fields must be
/// explicit `while (!cond) cv.wait(lk);` loops in the caller, where the
/// analysis can see the capability being held (see the header comment).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(UniqueLock& lk) { cv_.wait(lk.native()); }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      UniqueLock& lk, const std::chrono::time_point<Clock, Duration>& tp) {
    return cv_.wait_until(lk.native(), tp);
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(UniqueLock& lk,
                          const std::chrono::duration<Rep, Period>& d) {
    return cv_.wait_for(lk.native(), d);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace nitho
