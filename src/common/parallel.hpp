#pragma once
// A small shared thread pool and a blocking parallel_for on top of it.
// Used to batch FFTs over SOCS kernels and masks (the paper's "hierarchical
// GPU acceleration" becomes hierarchical CPU parallelism here).

#include <cstdint>
#include <functional>

namespace nitho {

/// Number of workers in the shared pool (hardware concurrency, >= 1).
int parallel_workers();

/// Override the pool size (0 restores the hardware default).  Takes effect
/// for subsequent parallel_for calls; intended for benches that want serial
/// baselines.
///
/// Thread-safety: may be called concurrently with parallel_for (including
/// from other threads while a dispatch is in flight).  Each parallel_for
/// snapshots the worker count once at entry, so an in-flight dispatch is
/// never resized mid-run; the new value applies to dispatches that start
/// after the store.
void set_parallel_workers(int n);

/// Runs fn(i) for i in [0, n) across the shared pool and blocks until done.
/// fn must be safe to invoke concurrently for distinct i.  Exceptions thrown
/// by fn are captured and the first one is rethrown on the calling thread.
///
/// May be called from any plain thread (concurrent callers serialize on the
/// pool, one dispatch at a time — long-lived pinned threads such as the
/// serving shards coexist with the pool this way), but must not be called
/// from inside a parallel_for callback: the shared pool does not nest.
void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn);

/// Grain-size variant: fn(begin, end) over chunks.
void parallel_for_chunked(
    std::int64_t n, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace nitho
