#pragma once
// Runtime-dispatched SIMD kernels under the bit-identity protocol
// (DESIGN.md §13).
//
// Every kernel here has one scalar arm plus (unless NITHO_NO_SIMD) SSE2 and
// AVX2 arms, and every arm produces *bit-identical* output: vector lanes
// only ever span independent elements (pixels, butterfly pairs, B-row
// columns of a fixed A entry), never a reduction, so each element sees
// exactly the scalar arm's operation sequence.  Fused multiply-add is never
// emitted (no FMA intrinsics; -ffp-contract=off project-wide), because
// contraction would round differently from the scalar arms.
//
// Dispatch: the arm is picked once per process from CPUID (AVX2 when the
// CPU has it, else SSE2 on x86-64, else scalar) and read from a relaxed
// atomic on each kernel call.  force_arm() overrides it — tests pin each
// arm against the scalar arm with it, benches use it for same-binary
// scalar-vs-SIMD ratios.  All kernels tolerate unaligned pointers and any
// length (vector body + scalar tail); alignment (common/aligned.hpp) is a
// performance contract only.

#include <complex>
#include <cstdint>

#include "math/cplx.hpp"

namespace nitho::simd {

enum class Arm : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Stable lowercase name ("scalar" / "sse2" / "avx2") for logs and CSVs.
const char* arm_name(Arm arm);

/// The arm every kernel currently dispatches to.
Arm active_arm();

/// Best arm this build + CPU supports (what active_arm() resets to).
Arm detected_arm();

/// Overrides the dispatch arm, clamped to detected_arm(); returns the arm
/// actually installed.  Safe to call concurrently with kernel calls (the
/// kernels read the arm once per call), though concurrent *mixed-arm*
/// output is only meaningful because all arms are bit-identical.
Arm force_arm(Arm arm);

/// False when the build carries only the scalar arm (NITHO_NO_SIMD).
bool simd_compiled();

// ---------------------------------------------------------------------------
// Kernels.  Lanes = independent elements; see each comment for the exact
// scalar arithmetic the vector arms replicate.
// ---------------------------------------------------------------------------

/// dst[i] = a[i] * b[i] (complex multiply; dst must not alias a or b).
/// Scalar arm: std::complex operator*.
void cmul(cd* dst, const cd* a, const cd* b, std::int64_t n);
void cmul(cf* dst, const cf* a, const cf* b, std::int64_t n);

/// a[i] *= b[i] (complex multiply in place).
void cmul_inplace(cd* a, const cd* b, std::int64_t n);
void cmul_inplace(cf* a, const cf* b, std::int64_t n);

/// acc[i] += |z[i] * scale|^2, as (re*scale)^2 + (im*scale)^2 — the
/// engine's scale-then-square abs²-accumulate (DESIGN.md §6.1).
void abs2_scale_accum(double* acc, const cd* z, double scale, std::int64_t n);

/// acc[i] += e[2i]^2 + e[2i+1]^2 over an interleaved complex float plane —
/// the batched training ops' per-pixel coherent-intensity accumulate.
void abs2_accum(float* acc, const float* e, std::int64_t n);

/// c[i] += a * b[i] (the dense GEMM row update).
void axpy(float* c, float a, const float* b, std::int64_t n);

/// Rows per gemm_panel call (the register-blocked microkernel height).
inline constexpr std::int64_t kGemmPanelRows = 4;

/// Dense GEMM panel: for each row r in [0, mr), mr <= kGemmPanelRows,
///   c[r*ldc + j] += fold over p in [0, k) of a[r*ars + p*aps] * b[p*ldb + j]
/// with the p fold serial per element — bit-identical to mr rows of k
/// successive axpy calls (lanes span j only; each element sees the same
/// mul-then-add sequence in ascending p, just held in registers between
/// folds instead of round-tripping memory, which cannot change a single
/// rounding in fp32).  `ars`/`aps` are A's row/p strides so the same kernel
/// serves gemm_nn (ars=k, aps=1) and gemm_tn (ars=1, aps=m).
void gemm_panel(float* c, std::int64_t ldc, const float* a, std::int64_t ars,
                std::int64_t aps, const float* b, std::int64_t ldb,
                std::int64_t mr, std::int64_t k, std::int64_t n);

/// g[2i] += (2 * e[2i]) * gy[i]; g[2i+1] += (2 * e[2i+1]) * gy[i] — the
/// batched abs²-sum backward (d|z|²/dz = 2z against a real upstream pixel
/// grad).  Lanes span pixels i; the scalar operand order (double the field
/// value, then scale by the pixel grad, then accumulate) is kept exactly.
void abs2_backprop(float* g, const float* e, const float* gy, std::int64_t n);

/// c[i] += t[i] (one-shot row accumulate for the packed gemm_nt path).
void add_inplace(float* c, const float* t, std::int64_t n);

/// One Adam update over n parameters, exactly the optimizer's scalar loop:
///   m[i] = beta1 * m[i] + (1 - beta1) * g[i];
///   v[i] = beta2 * v[i] + ((1 - beta2) * g[i]) * g[i];
///   p[i] -= (lr * (m[i] / bc1)) / (sqrt(v[i] / bc2) + eps);
/// Lanes span parameters i.  Every operation involved — mul, add, sub, div,
/// sqrt — is IEEE exactly-rounded in both scalar and vector forms (and FMA
/// is never emitted), so the vector arms are bit-identical by construction.
void adam_update(float* p, float* m, float* v, const float* g, std::int64_t n,
                 float beta1, float beta2, float bc1, float bc2, float lr,
                 float eps);

/// One radix-2 stage over the whole transform: for every block of 2*half
/// elements, butterflies x[base+k] / x[base+half+k] with twiddle tw[k]
/// (k in [0, half)).  tw is the stage's contiguous twiddle table, already
/// conjugated for inverse transforms.  Scalar arithmetic per butterfly:
///   t = x[base+half+k] * tw[k];
///   x[base+half+k] = x[base+k] - t;
///   x[base+k] += t;
/// Lanes span k within a block — butterflies touch disjoint elements.
void fft_stage(std::complex<double>* x, int len, int half,
               const std::complex<double>* tw);
void fft_stage(std::complex<float>* x, int len, int half,
               const std::complex<float>* tw);

}  // namespace nitho::simd
