#pragma once
// Minimal command-line flag parsing for benches and examples.
// Supported syntax: --name=value, --name value, and bare --name (bool true).

#include <map>
#include <string>
#include <string_view>

namespace nitho {

/// Parsed command-line flags.  Unknown flags are kept and queryable so bench
/// harnesses can share a parser; positional arguments are ignored.
class Flags {
 public:
  Flags() = default;
  Flags(int argc, char** argv);

  bool has(std::string_view name) const;
  std::string get(std::string_view name, std::string_view def = "") const;
  int get_int(std::string_view name, int def) const;
  double get_double(std::string_view name, double def) const;
  bool get_bool(std::string_view name, bool def = false) const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
};

}  // namespace nitho
