#pragma once
// Aligned heap allocation for hot-loop buffers (DESIGN.md §13.3).
//
// The SIMD kernels in common/simd.hpp use unaligned loads, so alignment is
// a performance contract, not a correctness one: buffers that live under
// the vector kernels (FFT workspaces, the engine's field scratch) come from
// aligned_vector so every vector load/store lands on one cache line.
// kSimdAlign is 64 bytes — a full cache line, and enough for any SSE/AVX
// register width the dispatch layer selects.

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace nitho {

inline constexpr std::size_t kSimdAlign = 64;

/// True when p sits on a kSimdAlign boundary.
inline bool is_aligned(const void* p, std::size_t align = kSimdAlign) {
  return (reinterpret_cast<std::uintptr_t>(p) & (align - 1)) == 0;
}

/// Minimal C++17 aligned allocator: operator new(size, align) under the
/// hood, so it composes with sanitizers (no posix_memalign / free pairing
/// mismatches).
template <typename T, std::size_t Align = kSimdAlign>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Align >= alignof(T), "alignment below the type's own");
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of 2");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Align));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// std::vector whose data() is kSimdAlign-aligned (asserted in
/// tests/test_simd.cpp).  Drop-in for the workspace buffers; element access
/// and iteration are unchanged.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace nitho
