#pragma once
// Wall-clock timing helpers for benches and the Fig. 5 throughput harness.

#include <chrono>

namespace nitho {

/// Monotonic stopwatch; starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace nitho
