#include "common/flags.hpp"

#include <cstdlib>

namespace nitho {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) continue;
    arg.remove_prefix(2);
    auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_.insert_or_assign(std::string(arg.substr(0, eq)),
                               std::string(arg.substr(eq + 1)));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      values_.insert_or_assign(std::string(arg), std::string(argv[++i]));
    } else {
      values_.insert_or_assign(std::string(arg), std::string("1"));
    }
  }
}

bool Flags::has(std::string_view name) const {
  return values_.find(name) != values_.end();
}

std::string Flags::get(std::string_view name, std::string_view def) const {
  auto it = values_.find(name);
  return it == values_.end() ? std::string(def) : it->second;
}

int Flags::get_int(std::string_view name, int def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::atoi(it->second.c_str());
}

double Flags::get_double(std::string_view name, double def) const {
  auto it = values_.find(name);
  return it == values_.end() ? def : std::atof(it->second.c_str());
}

bool Flags::get_bool(std::string_view name, bool def) const {
  auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second != "0" && it->second != "false";
}

}  // namespace nitho
