#include "common/simd.hpp"

#include <atomic>
#include <cmath>

// Arm availability is decided at compile time per arm and at runtime per
// process (DESIGN.md §13.1).  SSE2 is part of the x86-64 baseline so its
// arm compiles with the default flags; the AVX2 arm is compiled with a
// per-function target attribute and only ever *called* after CPUID says the
// instructions exist.  Neither arm uses FMA: contraction rounds differently
// from the scalar arms and would break the bit-identity protocol.
#if !defined(NITHO_NO_SIMD) && defined(__x86_64__) && defined(__GNUC__)
#define NITHO_SIMD_X86 1
#include <immintrin.h>
#else
#define NITHO_SIMD_X86 0
#endif

namespace nitho::simd {
namespace {

Arm detect() {
#if NITHO_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return Arm::kAvx2;
  return Arm::kSse2;
#else
  return Arm::kScalar;
#endif
}

std::atomic<int>& arm_slot() {
  static std::atomic<int> slot{static_cast<int>(detect())};
  return slot;
}

inline Arm current() {
  return static_cast<Arm>(arm_slot().load(std::memory_order_relaxed));
}

// ---------------------------------------------------------------------------
// Scalar arms.  These ARE the reference semantics: every expression below
// is the verbatim hot-loop arithmetic the call sites used before the SIMD
// layer existed, and the vector arms replicate it lane by lane.
// ---------------------------------------------------------------------------

template <typename C>
void cmul_scalar(C* dst, const C* a, const C* b, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = a[i] * b[i];
}

template <typename C>
void cmul_inplace_scalar(C* a, const C* b, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) a[i] *= b[i];
}

void abs2_scale_accum_scalar(double* acc, const cd* z, double scale,
                             std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const cd v = z[i] * scale;
    acc[i] += norm2(v);
  }
}

void abs2_accum_scalar(float* acc, const float* e, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    acc[i] += e[2 * i] * e[2 * i] + e[2 * i + 1] * e[2 * i + 1];
  }
}

void axpy_scalar(float* c, float a, const float* b, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) c[i] += a * b[i];
}

void add_inplace_scalar(float* c, const float* t, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) c[i] += t[i];
}

void adam_update_scalar(float* p, float* m, float* v, const float* g,
                        std::int64_t n, float beta1, float beta2, float bc1,
                        float bc2, float lr, float eps) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float gi = g[i];
    m[i] = beta1 * m[i] + (1.0f - beta1) * gi;
    v[i] = beta2 * v[i] + (1.0f - beta2) * gi * gi;
    const float mhat = m[i] / bc1;
    const float vhat = v[i] / bc2;
    p[i] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

void gemm_panel_scalar(float* c, std::int64_t ldc, const float* a,
                       std::int64_t ars, std::int64_t aps, const float* b,
                       std::int64_t ldb, std::int64_t mr, std::int64_t k,
                       std::int64_t n) {
  for (std::int64_t r = 0; r < mr; ++r) {
    float* crow = c + r * ldc;
    const float* ar = a + r * ars;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = ar[p * aps];
      const float* brow = b + p * ldb;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void abs2_backprop_scalar(float* g, const float* e, const float* gy,
                          std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    g[2 * i] += 2.0f * e[2 * i] * gy[i];
    g[2 * i + 1] += 2.0f * e[2 * i + 1] * gy[i];
  }
}

template <typename C>
void fft_stage_scalar(C* x, int len, int half, const C* tw) {
  for (int base = 0; base < len; base += 2 * half) {
    for (int k = 0; k < half; ++k) {
      const C t = x[base + half + k] * tw[k];
      x[base + half + k] = x[base + k] - t;
      x[base + k] += t;
    }
  }
}

#if NITHO_SIMD_X86

// ---------------------------------------------------------------------------
// SSE2 arms.  x86-64 baseline — no SSE3 addsub; a - b is written as
// a + (b ^ signmask), which is the IEEE definition of subtraction and
// therefore bit-identical.  Complex multiply follows the scalar formula
// (re1*re2 - im1*im2, re1*im2 + im1*re2); the imaginary part's two
// products may be summed in either order (IEEE addition is commutative).
// ---------------------------------------------------------------------------

// One complex<double> per vector: t = a*b as [re, im].
inline __m128d cmul1_sse2(__m128d a, __m128d b) {
  const __m128d br = _mm_shuffle_pd(b, b, 0x0);  // [br, br]
  const __m128d bi = _mm_shuffle_pd(b, b, 0x3);  // [bi, bi]
  const __m128d as = _mm_shuffle_pd(a, a, 0x1);  // [ai, ar]
  const __m128d t1 = _mm_mul_pd(a, br);          // [ar*br, ai*br]
  const __m128d t2 = _mm_mul_pd(as, bi);         // [ai*bi, ar*bi]
  const __m128d sign = _mm_set_pd(0.0, -0.0);    // negate lane 0
  return _mm_add_pd(t1, _mm_xor_pd(t2, sign));   // [ar*br-ai*bi, ai*br+ar*bi]
}

// Two complex<float> per vector.
inline __m128 cmul2_sse2(__m128 a, __m128 b) {
  const __m128 br = _mm_shuffle_ps(b, b, _MM_SHUFFLE(2, 2, 0, 0));
  const __m128 bi = _mm_shuffle_ps(b, b, _MM_SHUFFLE(3, 3, 1, 1));
  const __m128 as = _mm_shuffle_ps(a, a, _MM_SHUFFLE(2, 3, 0, 1));
  const __m128 t1 = _mm_mul_ps(a, br);
  const __m128 t2 = _mm_mul_ps(as, bi);
  const __m128 sign = _mm_set_ps(0.0f, -0.0f, 0.0f, -0.0f);
  return _mm_add_ps(t1, _mm_xor_ps(t2, sign));
}

void cmul_sse2(cd* dst, const cd* a, const cd* b, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) {
    const __m128d av = _mm_loadu_pd(reinterpret_cast<const double*>(a + i));
    const __m128d bv = _mm_loadu_pd(reinterpret_cast<const double*>(b + i));
    _mm_storeu_pd(reinterpret_cast<double*>(dst + i), cmul1_sse2(av, bv));
  }
}

void cmul_sse2(cf* dst, const cf* a, const cf* b, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128 av = _mm_loadu_ps(reinterpret_cast<const float*>(a + i));
    const __m128 bv = _mm_loadu_ps(reinterpret_cast<const float*>(b + i));
    _mm_storeu_ps(reinterpret_cast<float*>(dst + i), cmul2_sse2(av, bv));
  }
  for (; i < n; ++i) dst[i] = a[i] * b[i];
}

void abs2_scale_accum_sse2(double* acc, const cd* z, double scale,
                           std::int64_t n) {
  const __m128d sv = _mm_set1_pd(scale);
  std::int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128d z0 = _mm_loadu_pd(reinterpret_cast<const double*>(z + i));
    __m128d z1 = _mm_loadu_pd(reinterpret_cast<const double*>(z + i + 1));
    z0 = _mm_mul_pd(z0, sv);
    z1 = _mm_mul_pd(z1, sv);
    const __m128d s0 = _mm_mul_pd(z0, z0);  // [re0^2, im0^2]
    const __m128d s1 = _mm_mul_pd(z1, z1);
    // [re0^2, re1^2] + [im0^2, im1^2] = norm2 per pixel (re^2 + im^2,
    // matching the scalar operand order).
    const __m128d re = _mm_unpacklo_pd(s0, s1);
    const __m128d im = _mm_unpackhi_pd(s0, s1);
    const __m128d nrm = _mm_add_pd(re, im);
    _mm_storeu_pd(acc + i, _mm_add_pd(_mm_loadu_pd(acc + i), nrm));
  }
  for (; i < n; ++i) {
    const cd v = z[i] * scale;
    acc[i] += norm2(v);
  }
}

void abs2_accum_sse2(float* acc, const float* e, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 v0 = _mm_loadu_ps(e + 2 * i);      // [x0,y0,x1,y1]
    const __m128 v1 = _mm_loadu_ps(e + 2 * i + 4);  // [x2,y2,x3,y3]
    const __m128 ev = _mm_shuffle_ps(v0, v1, _MM_SHUFFLE(2, 0, 2, 0));
    const __m128 od = _mm_shuffle_ps(v0, v1, _MM_SHUFFLE(3, 1, 3, 1));
    const __m128 nrm = _mm_add_ps(_mm_mul_ps(ev, ev), _mm_mul_ps(od, od));
    _mm_storeu_ps(acc + i, _mm_add_ps(_mm_loadu_ps(acc + i), nrm));
  }
  for (; i < n; ++i) {
    acc[i] += e[2 * i] * e[2 * i] + e[2 * i + 1] * e[2 * i + 1];
  }
}

void axpy_sse2(float* c, float a, const float* b, std::int64_t n) {
  const __m128 av = _mm_set1_ps(a);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 prod = _mm_mul_ps(av, _mm_loadu_ps(b + i));
    _mm_storeu_ps(c + i, _mm_add_ps(_mm_loadu_ps(c + i), prod));
  }
  for (; i < n; ++i) c[i] += a * b[i];
}

void add_inplace_sse2(float* c, const float* t, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(c + i, _mm_add_ps(_mm_loadu_ps(c + i), _mm_loadu_ps(t + i)));
  }
  for (; i < n; ++i) c[i] += t[i];
}

// divps / sqrtps are IEEE correctly-rounded (unlike the rcpps / rsqrtps
// approximations, which are never used here), so every lane reproduces the
// scalar arm's mul/add/div/sqrt sequence bit for bit.
void adam_update_sse2(float* p, float* m, float* v, const float* g,
                      std::int64_t n, float beta1, float beta2, float bc1,
                      float bc2, float lr, float eps) {
  const __m128 b1 = _mm_set1_ps(beta1), ob1 = _mm_set1_ps(1.0f - beta1);
  const __m128 b2 = _mm_set1_ps(beta2), ob2 = _mm_set1_ps(1.0f - beta2);
  const __m128 c1 = _mm_set1_ps(bc1), c2 = _mm_set1_ps(bc2);
  const __m128 lrv = _mm_set1_ps(lr), ev = _mm_set1_ps(eps);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 gv = _mm_loadu_ps(g + i);
    const __m128 mv = _mm_add_ps(_mm_mul_ps(b1, _mm_loadu_ps(m + i)),
                                 _mm_mul_ps(ob1, gv));
    const __m128 vv = _mm_add_ps(_mm_mul_ps(b2, _mm_loadu_ps(v + i)),
                                 _mm_mul_ps(_mm_mul_ps(ob2, gv), gv));
    _mm_storeu_ps(m + i, mv);
    _mm_storeu_ps(v + i, vv);
    const __m128 step =
        _mm_div_ps(_mm_mul_ps(lrv, _mm_div_ps(mv, c1)),
                   _mm_add_ps(_mm_sqrt_ps(_mm_div_ps(vv, c2)), ev));
    _mm_storeu_ps(p + i, _mm_sub_ps(_mm_loadu_ps(p + i), step));
  }
  if (i < n) {
    adam_update_scalar(p + i, m + i, v + i, g + i, n - i, beta1, beta2, bc1,
                       bc2, lr, eps);
  }
}

// Register-blocked panel, MR rows held in accumulators across the whole k
// fold.  Each c[r][j] still receives one rounded mul + one rounded add per
// p, in ascending p — the axpy sequence, minus the per-p memory round trip
// (fp32 in xmm/ymm lanes is the same format as fp32 in memory, so keeping
// the fold in registers is bit-preserving).
template <int MR>
void gemm_panel_sse2_t(float* c, std::int64_t ldc, const float* a,
                       std::int64_t ars, std::int64_t aps, const float* b,
                       std::int64_t ldb, std::int64_t k, std::int64_t n) {
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m128 acc0[MR], acc1[MR];
    for (int r = 0; r < MR; ++r) {
      acc0[r] = _mm_loadu_ps(c + r * ldc + j);
      acc1[r] = _mm_loadu_ps(c + r * ldc + j + 4);
    }
    for (std::int64_t p = 0; p < k; ++p) {
      const __m128 b0 = _mm_loadu_ps(b + p * ldb + j);
      const __m128 b1 = _mm_loadu_ps(b + p * ldb + j + 4);
      for (int r = 0; r < MR; ++r) {
        const __m128 av = _mm_set1_ps(a[r * ars + p * aps]);
        acc0[r] = _mm_add_ps(acc0[r], _mm_mul_ps(av, b0));
        acc1[r] = _mm_add_ps(acc1[r], _mm_mul_ps(av, b1));
      }
    }
    for (int r = 0; r < MR; ++r) {
      _mm_storeu_ps(c + r * ldc + j, acc0[r]);
      _mm_storeu_ps(c + r * ldc + j + 4, acc1[r]);
    }
  }
  for (; j + 4 <= n; j += 4) {
    __m128 acc[MR];
    for (int r = 0; r < MR; ++r) acc[r] = _mm_loadu_ps(c + r * ldc + j);
    for (std::int64_t p = 0; p < k; ++p) {
      const __m128 bv = _mm_loadu_ps(b + p * ldb + j);
      for (int r = 0; r < MR; ++r) {
        const __m128 av = _mm_set1_ps(a[r * ars + p * aps]);
        acc[r] = _mm_add_ps(acc[r], _mm_mul_ps(av, bv));
      }
    }
    for (int r = 0; r < MR; ++r) _mm_storeu_ps(c + r * ldc + j, acc[r]);
  }
  if (j < n) {
    for (int r = 0; r < MR; ++r) {
      float* crow = c + r * ldc;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = a[r * ars + p * aps];
        const float* brow = b + p * ldb;
        for (std::int64_t jj = j; jj < n; ++jj) crow[jj] += av * brow[jj];
      }
    }
  }
}

void gemm_panel_sse2(float* c, std::int64_t ldc, const float* a,
                     std::int64_t ars, std::int64_t aps, const float* b,
                     std::int64_t ldb, std::int64_t mr, std::int64_t k,
                     std::int64_t n) {
  switch (mr) {
    case 1:
      gemm_panel_sse2_t<1>(c, ldc, a, ars, aps, b, ldb, k, n);
      return;
    case 2:
      gemm_panel_sse2_t<2>(c, ldc, a, ars, aps, b, ldb, k, n);
      return;
    case 3:
      gemm_panel_sse2_t<3>(c, ldc, a, ars, aps, b, ldb, k, n);
      return;
    default:
      gemm_panel_sse2_t<4>(c, ldc, a, ars, aps, b, ldb, k, n);
      return;
  }
}

void abs2_backprop_sse2(float* g, const float* e, const float* gy,
                        std::int64_t n) {
  const __m128 two = _mm_set1_ps(2.0f);
  std::int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128 ev = _mm_loadu_ps(e + 2 * i);  // [x0,y0,x1,y1]
    // 64-bit unaligned load of [g0,g1]: gy is only 4-byte aligned, so
    // _mm_load_sd (a plain double dereference under GCC) would be UB here.
    const __m128 gv2 = _mm_castsi128_ps(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(gy + i)));
    const __m128 gyp = _mm_shuffle_ps(gv2, gv2, _MM_SHUFFLE(1, 1, 0, 0));
    const __m128 t = _mm_mul_ps(_mm_mul_ps(two, ev), gyp);
    _mm_storeu_ps(g + 2 * i, _mm_add_ps(_mm_loadu_ps(g + 2 * i), t));
  }
  for (; i < n; ++i) {
    g[2 * i] += 2.0f * e[2 * i] * gy[i];
    g[2 * i + 1] += 2.0f * e[2 * i + 1] * gy[i];
  }
}

void fft_stage_sse2(std::complex<double>* x, int len, int half,
                    const std::complex<double>* tw) {
  if (half < 1) return;
  for (int base = 0; base < len; base += 2 * half) {
    double* top = reinterpret_cast<double*>(x + base);
    double* bot = reinterpret_cast<double*>(x + base + half);
    for (int k = 0; k < half; ++k) {
      const __m128d w =
          _mm_loadu_pd(reinterpret_cast<const double*>(tw + k));
      const __m128d bv = _mm_loadu_pd(bot + 2 * k);
      const __m128d tv = cmul1_sse2(bv, w);
      const __m128d tp = _mm_loadu_pd(top + 2 * k);
      _mm_storeu_pd(bot + 2 * k, _mm_sub_pd(tp, tv));
      _mm_storeu_pd(top + 2 * k, _mm_add_pd(tp, tv));
    }
  }
}

void fft_stage_sse2(std::complex<float>* x, int len, int half,
                    const std::complex<float>* tw) {
  if (half < 2) {
    fft_stage_scalar(x, len, half, tw);
    return;
  }
  for (int base = 0; base < len; base += 2 * half) {
    float* top = reinterpret_cast<float*>(x + base);
    float* bot = reinterpret_cast<float*>(x + base + half);
    for (int k = 0; k + 2 <= half; k += 2) {
      const __m128 w = _mm_loadu_ps(reinterpret_cast<const float*>(tw + k));
      const __m128 bv = _mm_loadu_ps(bot + 2 * k);
      const __m128 tv = cmul2_sse2(bv, w);
      const __m128 tp = _mm_loadu_ps(top + 2 * k);
      _mm_storeu_ps(bot + 2 * k, _mm_sub_ps(tp, tv));
      _mm_storeu_ps(top + 2 * k, _mm_add_ps(tp, tv));
    }
  }
}

// ---------------------------------------------------------------------------
// AVX2 arms.  Compiled with a per-function target attribute (the TU itself
// builds with baseline flags) and dispatched only when CPUID reports AVX2.
// Same formulas as SSE2, two complex<double> / four complex<float> lanes.
// _mm256_addsub_* computes t1 - t2 in even lanes and t1 + t2 in odd lanes —
// exactly the scalar (re1*re2 - im1*im2, im1*re2 + re1*im2).
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256d cmul2_avx2(__m256d a,
                                                          __m256d b) {
  const __m256d br = _mm256_movedup_pd(b);         // [br0,br0,br1,br1]
  const __m256d bi = _mm256_permute_pd(b, 0xF);    // [bi0,bi0,bi1,bi1]
  const __m256d as = _mm256_permute_pd(a, 0x5);    // [ai0,ar0,ai1,ar1]
  const __m256d t1 = _mm256_mul_pd(a, br);
  const __m256d t2 = _mm256_mul_pd(as, bi);
  return _mm256_addsub_pd(t1, t2);
}

__attribute__((target("avx2"))) inline __m256 cmul4_avx2(__m256 a, __m256 b) {
  const __m256 br = _mm256_moveldup_ps(b);
  const __m256 bi = _mm256_movehdup_ps(b);
  const __m256 as = _mm256_permute_ps(a, 0xB1);
  const __m256 t1 = _mm256_mul_ps(a, br);
  const __m256 t2 = _mm256_mul_ps(as, bi);
  return _mm256_addsub_ps(t1, t2);
}

__attribute__((target("avx2"))) void cmul_avx2(cd* dst, const cd* a,
                                               const cd* b, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d av =
        _mm256_loadu_pd(reinterpret_cast<const double*>(a + i));
    const __m256d bv =
        _mm256_loadu_pd(reinterpret_cast<const double*>(b + i));
    _mm256_storeu_pd(reinterpret_cast<double*>(dst + i), cmul2_avx2(av, bv));
  }
  for (; i < n; ++i) {
    const __m128d av = _mm_loadu_pd(reinterpret_cast<const double*>(a + i));
    const __m128d bv = _mm_loadu_pd(reinterpret_cast<const double*>(b + i));
    _mm_storeu_pd(reinterpret_cast<double*>(dst + i), cmul1_sse2(av, bv));
  }
}

__attribute__((target("avx2"))) void cmul_avx2(cf* dst, const cf* a,
                                               const cf* b, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256 av = _mm256_loadu_ps(reinterpret_cast<const float*>(a + i));
    const __m256 bv = _mm256_loadu_ps(reinterpret_cast<const float*>(b + i));
    _mm256_storeu_ps(reinterpret_cast<float*>(dst + i), cmul4_avx2(av, bv));
  }
  for (; i < n; ++i) dst[i] = a[i] * b[i];
}

__attribute__((target("avx2"))) void abs2_scale_accum_avx2(double* acc,
                                                           const cd* z,
                                                           double scale,
                                                           std::int64_t n) {
  const __m256d sv = _mm256_set1_pd(scale);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d z0 = _mm256_loadu_pd(reinterpret_cast<const double*>(z + i));
    __m256d z1 = _mm256_loadu_pd(reinterpret_cast<const double*>(z + i + 2));
    z0 = _mm256_mul_pd(z0, sv);
    z1 = _mm256_mul_pd(z1, sv);
    const __m256d s0 = _mm256_mul_pd(z0, z0);
    const __m256d s1 = _mm256_mul_pd(z1, z1);
    // hadd pairs re^2+im^2 (scalar operand order) but interleaves the two
    // sources as [p0, p2, p1, p3]; the 64-bit permute restores pixel order.
    const __m256d pairs = _mm256_hadd_pd(s0, s1);
    const __m256d nrm = _mm256_permute4x64_pd(pairs, _MM_SHUFFLE(3, 1, 2, 0));
    _mm256_storeu_pd(acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i), nrm));
  }
  for (; i < n; ++i) {
    const cd v = z[i] * scale;
    acc[i] += norm2(v);
  }
}

__attribute__((target("avx2"))) void abs2_accum_avx2(float* acc,
                                                     const float* e,
                                                     std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v0 = _mm256_loadu_ps(e + 2 * i);
    const __m256 v1 = _mm256_loadu_ps(e + 2 * i + 8);
    const __m256 ev = _mm256_shuffle_ps(v0, v1, _MM_SHUFFLE(2, 0, 2, 0));
    const __m256 od = _mm256_shuffle_ps(v0, v1, _MM_SHUFFLE(3, 1, 3, 1));
    const __m256 nrm = _mm256_add_ps(_mm256_mul_ps(ev, ev),
                                     _mm256_mul_ps(od, od));
    // Lanewise shuffle leaves pixels as [p0p1, p4p5, p2p3, p6p7] in 64-bit
    // chunks; permute them back into pixel order before accumulating.
    const __m256 ord = _mm256_castpd_ps(_mm256_permute4x64_pd(
        _mm256_castps_pd(nrm), _MM_SHUFFLE(3, 1, 2, 0)));
    _mm256_storeu_ps(acc + i, _mm256_add_ps(_mm256_loadu_ps(acc + i), ord));
  }
  for (; i < n; ++i) {
    acc[i] += e[2 * i] * e[2 * i] + e[2 * i + 1] * e[2 * i + 1];
  }
}

__attribute__((target("avx2"))) void axpy_avx2(float* c, float a,
                                               const float* b,
                                               std::int64_t n) {
  const __m256 av = _mm256_set1_ps(a);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(av, _mm256_loadu_ps(b + i));
    _mm256_storeu_ps(c + i, _mm256_add_ps(_mm256_loadu_ps(c + i), prod));
  }
  for (; i < n; ++i) c[i] += a * b[i];
}

__attribute__((target("avx2"))) void add_inplace_avx2(float* c, const float* t,
                                                      std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        c + i, _mm256_add_ps(_mm256_loadu_ps(c + i), _mm256_loadu_ps(t + i)));
  }
  for (; i < n; ++i) c[i] += t[i];
}

__attribute__((target("avx2"))) void adam_update_avx2(
    float* p, float* m, float* v, const float* g, std::int64_t n, float beta1,
    float beta2, float bc1, float bc2, float lr, float eps) {
  const __m256 b1 = _mm256_set1_ps(beta1), ob1 = _mm256_set1_ps(1.0f - beta1);
  const __m256 b2 = _mm256_set1_ps(beta2), ob2 = _mm256_set1_ps(1.0f - beta2);
  const __m256 c1 = _mm256_set1_ps(bc1), c2 = _mm256_set1_ps(bc2);
  const __m256 lrv = _mm256_set1_ps(lr), ev = _mm256_set1_ps(eps);
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 gv = _mm256_loadu_ps(g + i);
    const __m256 mv = _mm256_add_ps(_mm256_mul_ps(b1, _mm256_loadu_ps(m + i)),
                                    _mm256_mul_ps(ob1, gv));
    const __m256 vv =
        _mm256_add_ps(_mm256_mul_ps(b2, _mm256_loadu_ps(v + i)),
                      _mm256_mul_ps(_mm256_mul_ps(ob2, gv), gv));
    _mm256_storeu_ps(m + i, mv);
    _mm256_storeu_ps(v + i, vv);
    const __m256 step = _mm256_div_ps(
        _mm256_mul_ps(lrv, _mm256_div_ps(mv, c1)),
        _mm256_add_ps(_mm256_sqrt_ps(_mm256_div_ps(vv, c2)), ev));
    _mm256_storeu_ps(p + i, _mm256_sub_ps(_mm256_loadu_ps(p + i), step));
  }
  if (i < n) {
    adam_update_sse2(p + i, m + i, v + i, g + i, n - i, beta1, beta2, bc1,
                     bc2, lr, eps);
  }
}

// Same panel as SSE2 with 8-float lanes; MR=4, NR=16 uses 8 accumulator
// registers + 2 B-row registers + 1 broadcast, fitting the 16-ymm budget.
template <int MR>
__attribute__((target("avx2"))) void gemm_panel_avx2_t(
    float* c, std::int64_t ldc, const float* a, std::int64_t ars,
    std::int64_t aps, const float* b, std::int64_t ldb, std::int64_t k,
    std::int64_t n) {
  std::int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    __m256 acc0[MR], acc1[MR];
    for (int r = 0; r < MR; ++r) {
      acc0[r] = _mm256_loadu_ps(c + r * ldc + j);
      acc1[r] = _mm256_loadu_ps(c + r * ldc + j + 8);
    }
    for (std::int64_t p = 0; p < k; ++p) {
      const __m256 b0 = _mm256_loadu_ps(b + p * ldb + j);
      const __m256 b1 = _mm256_loadu_ps(b + p * ldb + j + 8);
      for (int r = 0; r < MR; ++r) {
        const __m256 av = _mm256_set1_ps(a[r * ars + p * aps]);
        acc0[r] = _mm256_add_ps(acc0[r], _mm256_mul_ps(av, b0));
        acc1[r] = _mm256_add_ps(acc1[r], _mm256_mul_ps(av, b1));
      }
    }
    for (int r = 0; r < MR; ++r) {
      _mm256_storeu_ps(c + r * ldc + j, acc0[r]);
      _mm256_storeu_ps(c + r * ldc + j + 8, acc1[r]);
    }
  }
  for (; j + 8 <= n; j += 8) {
    __m256 acc[MR];
    for (int r = 0; r < MR; ++r) acc[r] = _mm256_loadu_ps(c + r * ldc + j);
    for (std::int64_t p = 0; p < k; ++p) {
      const __m256 bv = _mm256_loadu_ps(b + p * ldb + j);
      for (int r = 0; r < MR; ++r) {
        const __m256 av = _mm256_set1_ps(a[r * ars + p * aps]);
        acc[r] = _mm256_add_ps(acc[r], _mm256_mul_ps(av, bv));
      }
    }
    for (int r = 0; r < MR; ++r) _mm256_storeu_ps(c + r * ldc + j, acc[r]);
  }
  if (j < n) {
    // SSE2 sub-panel on the remaining columns (4-wide body + scalar tail).
    gemm_panel_sse2_t<MR>(c + j, ldc, a, ars, aps, b + j, ldb, k, n - j);
  }
}

__attribute__((target("avx2"))) void gemm_panel_avx2(
    float* c, std::int64_t ldc, const float* a, std::int64_t ars,
    std::int64_t aps, const float* b, std::int64_t ldb, std::int64_t mr,
    std::int64_t k, std::int64_t n) {
  switch (mr) {
    case 1:
      gemm_panel_avx2_t<1>(c, ldc, a, ars, aps, b, ldb, k, n);
      return;
    case 2:
      gemm_panel_avx2_t<2>(c, ldc, a, ars, aps, b, ldb, k, n);
      return;
    case 3:
      gemm_panel_avx2_t<3>(c, ldc, a, ars, aps, b, ldb, k, n);
      return;
    default:
      gemm_panel_avx2_t<4>(c, ldc, a, ars, aps, b, ldb, k, n);
      return;
  }
}

__attribute__((target("avx2"))) void abs2_backprop_avx2(float* g,
                                                        const float* e,
                                                        const float* gy,
                                                        std::int64_t n) {
  const __m256 two = _mm256_set1_ps(2.0f);
  const __m256i dup = _mm256_setr_epi32(0, 0, 1, 1, 2, 2, 3, 3);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256 ev = _mm256_loadu_ps(e + 2 * i);  // 4 interleaved pixels
    const __m256 gv =
        _mm256_castps128_ps256(_mm_loadu_ps(gy + i));  // [g0..g3,·..·]
    const __m256 gyp = _mm256_permutevar8x32_ps(gv, dup);
    const __m256 t = _mm256_mul_ps(_mm256_mul_ps(two, ev), gyp);
    _mm256_storeu_ps(g + 2 * i, _mm256_add_ps(_mm256_loadu_ps(g + 2 * i), t));
  }
  for (; i < n; ++i) {
    g[2 * i] += 2.0f * e[2 * i] * gy[i];
    g[2 * i + 1] += 2.0f * e[2 * i + 1] * gy[i];
  }
}

__attribute__((target("avx2"))) void fft_stage_avx2(
    std::complex<double>* x, int len, int half,
    const std::complex<double>* tw) {
  if (half < 2) {
    fft_stage_sse2(x, len, half, tw);
    return;
  }
  for (int base = 0; base < len; base += 2 * half) {
    double* top = reinterpret_cast<double*>(x + base);
    double* bot = reinterpret_cast<double*>(x + base + half);
    for (int k = 0; k + 2 <= half; k += 2) {
      const __m256d w =
          _mm256_loadu_pd(reinterpret_cast<const double*>(tw + k));
      const __m256d bv = _mm256_loadu_pd(bot + 2 * k);
      const __m256d tv = cmul2_avx2(bv, w);
      const __m256d tp = _mm256_loadu_pd(top + 2 * k);
      _mm256_storeu_pd(bot + 2 * k, _mm256_sub_pd(tp, tv));
      _mm256_storeu_pd(top + 2 * k, _mm256_add_pd(tp, tv));
    }
  }
}

__attribute__((target("avx2"))) void fft_stage_avx2(
    std::complex<float>* x, int len, int half, const std::complex<float>* tw) {
  if (half < 4) {
    fft_stage_sse2(x, len, half, tw);
    return;
  }
  for (int base = 0; base < len; base += 2 * half) {
    float* top = reinterpret_cast<float*>(x + base);
    float* bot = reinterpret_cast<float*>(x + base + half);
    for (int k = 0; k + 4 <= half; k += 4) {
      const __m256 w = _mm256_loadu_ps(reinterpret_cast<const float*>(tw + k));
      const __m256 bv = _mm256_loadu_ps(bot + 2 * k);
      const __m256 tv = cmul4_avx2(bv, w);
      const __m256 tp = _mm256_loadu_ps(top + 2 * k);
      _mm256_storeu_ps(bot + 2 * k, _mm256_sub_ps(tp, tv));
      _mm256_storeu_ps(top + 2 * k, _mm256_add_ps(tp, tv));
    }
  }
}

#endif  // NITHO_SIMD_X86

}  // namespace

const char* arm_name(Arm arm) {
  switch (arm) {
    case Arm::kSse2:
      return "sse2";
    case Arm::kAvx2:
      return "avx2";
    default:
      return "scalar";
  }
}

Arm detected_arm() {
  static const Arm arm = detect();
  return arm;
}

Arm active_arm() { return current(); }

Arm force_arm(Arm arm) {
  Arm target = arm;
  if (static_cast<int>(target) > static_cast<int>(detected_arm())) {
    target = detected_arm();
  }
  arm_slot().store(static_cast<int>(target), std::memory_order_relaxed);
  return target;
}

bool simd_compiled() {
#if NITHO_SIMD_X86
  return true;
#else
  return false;
#endif
}

#if NITHO_SIMD_X86
#define NITHO_DISPATCH(fn, ...)              \
  switch (current()) {                       \
    case Arm::kAvx2:                         \
      fn##_avx2(__VA_ARGS__);                \
      return;                                \
    case Arm::kSse2:                         \
      fn##_sse2(__VA_ARGS__);                \
      return;                                \
    default:                                 \
      fn##_scalar(__VA_ARGS__);              \
      return;                                \
  }
#else
#define NITHO_DISPATCH(fn, ...) fn##_scalar(__VA_ARGS__);
#endif

void cmul(cd* dst, const cd* a, const cd* b, std::int64_t n) {
  NITHO_DISPATCH(cmul, dst, a, b, n)
}

void cmul(cf* dst, const cf* a, const cf* b, std::int64_t n) {
  NITHO_DISPATCH(cmul, dst, a, b, n)
}

void cmul_inplace(cd* a, const cd* b, std::int64_t n) { cmul(a, a, b, n); }

void cmul_inplace(cf* a, const cf* b, std::int64_t n) { cmul(a, a, b, n); }

void abs2_scale_accum(double* acc, const cd* z, double scale,
                      std::int64_t n) {
  NITHO_DISPATCH(abs2_scale_accum, acc, z, scale, n)
}

void abs2_accum(float* acc, const float* e, std::int64_t n) {
  NITHO_DISPATCH(abs2_accum, acc, e, n)
}

void axpy(float* c, float a, const float* b, std::int64_t n) {
  NITHO_DISPATCH(axpy, c, a, b, n)
}

void add_inplace(float* c, const float* t, std::int64_t n) {
  NITHO_DISPATCH(add_inplace, c, t, n)
}

void adam_update(float* p, float* m, float* v, const float* g, std::int64_t n,
                 float beta1, float beta2, float bc1, float bc2, float lr,
                 float eps) {
  NITHO_DISPATCH(adam_update, p, m, v, g, n, beta1, beta2, bc1, bc2, lr, eps)
}

void gemm_panel(float* c, std::int64_t ldc, const float* a, std::int64_t ars,
                std::int64_t aps, const float* b, std::int64_t ldb,
                std::int64_t mr, std::int64_t k, std::int64_t n) {
  NITHO_DISPATCH(gemm_panel, c, ldc, a, ars, aps, b, ldb, mr, k, n)
}

void abs2_backprop(float* g, const float* e, const float* gy,
                   std::int64_t n) {
  NITHO_DISPATCH(abs2_backprop, g, e, gy, n)
}

void fft_stage(std::complex<double>* x, int len, int half,
               const std::complex<double>* tw) {
  NITHO_DISPATCH(fft_stage, x, len, half, tw)
}

void fft_stage(std::complex<float>* x, int len, int half,
               const std::complex<float>* tw) {
  NITHO_DISPATCH(fft_stage, x, len, half, tw)
}

#undef NITHO_DISPATCH

}  // namespace nitho::simd
