#pragma once
// Runtime precondition / invariant checking.
//
// check(cond, msg) throws nitho::check_error with source location when cond is
// false.  It is used at public API boundaries and for internal invariants that
// are cheap to test; hot inner loops use plain assert-style reasoning instead.

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace nitho {

/// Error thrown when a runtime check fails.
class check_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void check_fail(std::string_view msg,
                                    const std::source_location& loc) {
  std::ostringstream os;
  os << loc.file_name() << ":" << loc.line() << " (" << loc.function_name()
     << "): check failed: " << msg;
  throw check_error(os.str());
}

/// Throws check_error when cond is false.
inline void check(bool cond, std::string_view msg = "condition violated",
                  const std::source_location& loc =
                      std::source_location::current()) {
  if (!cond) check_fail(msg, loc);
}

}  // namespace nitho
