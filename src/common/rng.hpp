#pragma once
// Seeded random number generation used across datasets, model init and tests.
// A thin wrapper over std::mt19937_64 so every consumer takes an explicit
// generator and experiments are reproducible from a single seed.

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace nitho {

/// Deterministic random source.  Copyable; copies diverge independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : gen_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(gen_);
  }

  /// Gaussian with the given mean / standard deviation.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(gen_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int randint(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(gen_);
  }

  /// True with probability p.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(gen_);
  }

  /// Derive an independent child generator (for per-worker streams).
  Rng fork() { return Rng(gen_()); }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), gen_);
  }

  std::mt19937_64& engine() { return gen_; }

  /// Full generator state as text (the standard's operator<< format) — the
  /// round trip is exact, so a restored generator produces the identical
  /// stream.  Used by trainer checkpoints.
  std::string state() const;
  /// Restores a state captured by state(); throws check_error on a string
  /// that does not parse as a complete mt19937_64 state.
  void set_state(const std::string& s);

 private:
  std::mt19937_64 gen_;
};

}  // namespace nitho
