#include "common/parallel.hpp"

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/mutex.hpp"

namespace nitho {
namespace {

// Relaxed is enough: the override is a plain size hint with no data guarded
// behind it, and Pool::run snapshots it exactly once per dispatch.
std::atomic<int> g_workers_override{0};

int hardware_workers() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

// Lazily constructed, process-lifetime pool.  Tasks are dispatched as a
// single atomic counter over [0, n): workers race on fetch_add, which keeps
// scheduling overhead negligible for the coarse-grained tasks we run.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(std::int64_t n, const std::function<void(std::int64_t)>& fn,
           int workers) {
    if (n <= 0) return;
    if (workers <= 1 || n == 1) {
      for (std::int64_t i = 0; i < n; ++i) fn(i);
      return;
    }
    LockGuard run_lock(run_mutex_);  // one job at a time
    ensure_threads(workers - 1);
    job_fn_ = &fn;
    job_n_ = n;
    next_.store(0, std::memory_order_relaxed);
    pending_.store(0, std::memory_order_relaxed);
    {
      LockGuard lk(mutex_);
      first_error_ = nullptr;
      ++epoch_;
      active_ = std::min<std::int64_t>(workers - 1,
                                       static_cast<std::int64_t>(threads_.size()));
      pending_.store(active_, std::memory_order_release);
    }
    cv_.notify_all();
    work();  // caller participates
    // Wait for helpers to finish.  pending_ is an atomic, not a guarded
    // field — the lock here only pairs the wait with done_cv_'s notify.
    UniqueLock lk(mutex_);
    while (pending_.load(std::memory_order_acquire) != 0) done_cv_.wait(lk);
    job_fn_ = nullptr;
    if (first_error_) std::rethrow_exception(first_error_);
  }

 private:
  Pool() = default;
  ~Pool() {
    {
      LockGuard lk(mutex_);
      stop_ = true;
      ++epoch_;
    }
    cv_.notify_all();
    // threads_ is stable here: ensure_threads only runs under run_mutex_,
    // and no run() can be active while the process-lifetime pool dies.
    for (auto& t : threads_) t.join();
  }

  void ensure_threads(int n) NITHO_REQUIRES(run_mutex_) {
    LockGuard lk(mutex_);
    while (static_cast<int>(threads_.size()) < n) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  void worker_loop() {
    std::uint64_t seen_epoch = 0;
    for (;;) {
      {
        UniqueLock lk(mutex_);
        while (!stop_ && epoch_ == seen_epoch) cv_.wait(lk);
        seen_epoch = epoch_;
        if (stop_) return;
        if (active_ <= 0) continue;  // not a participant this round
        --active_;
      }
      work();
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        LockGuard lk(mutex_);
        done_cv_.notify_all();
      }
    }
  }

  void work() {
    const auto* fn = job_fn_;
    if (!fn) return;
    for (;;) {
      std::int64_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= job_n_) break;
      try {
        (*fn)(i);
      } catch (...) {
        LockGuard lk(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
  }

  /// Serializes whole jobs; always taken before mutex_ (the only two-lock
  /// ordering in the codebase — DESIGN.md §14.3).
  Mutex run_mutex_ NITHO_ACQUIRED_BEFORE(mutex_);
  Mutex mutex_;
  CondVar cv_, done_cv_;
  /// Grown under mutex_ (ensure_threads), but read lock-free by run() —
  /// safe because ensure_threads is REQUIRES(run_mutex_) and run() holds
  /// it, so the vector cannot grow under a reader.  Left unannotated: the
  /// analysis cannot express "guarded by either of two locks".
  std::vector<std::thread> threads_;
  bool stop_ NITHO_GUARDED_BY(mutex_) = false;
  std::uint64_t epoch_ NITHO_GUARDED_BY(mutex_) = 0;
  std::int64_t active_ NITHO_GUARDED_BY(mutex_) = 0;
  std::atomic<std::int64_t> next_{0};
  std::atomic<std::int64_t> pending_{0};
  /// Epoch-published: written by run() before the epoch_ bump that wakes
  /// the workers, read by them only after observing the new epoch under
  /// mutex_ (and cleared only after pending_ drains).  That protocol, not a
  /// lock, is the guard — deliberately unannotated (common/mutex.hpp).
  const std::function<void(std::int64_t)>* job_fn_ = nullptr;
  std::int64_t job_n_ = 0;
  std::exception_ptr first_error_ NITHO_GUARDED_BY(mutex_);
};

}  // namespace

int parallel_workers() {
  const int n = g_workers_override.load(std::memory_order_relaxed);
  return n > 0 ? n : hardware_workers();
}

void set_parallel_workers(int n) {
  check(n >= 0, "worker override must be >= 0");
  g_workers_override.store(n, std::memory_order_relaxed);
}

void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn) {
  Pool::instance().run(n, fn, parallel_workers());
}

void parallel_for_chunked(
    std::int64_t n, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  check(grain >= 1, "grain must be >= 1");
  const std::int64_t chunks = (n + grain - 1) / grain;
  parallel_for(chunks, [&](std::int64_t c) {
    const std::int64_t b = c * grain;
    fn(b, std::min(n, b + grain));
  });
}

}  // namespace nitho
