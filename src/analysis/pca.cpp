#include "analysis/pca.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace nitho {
namespace {

// Modified Gram-Schmidt over the rows of v (k x d).
void orthonormalize_rows(Grid<double>& v) {
  const int k = v.rows(), d = v.cols();
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < i; ++j) {
      double dot = 0.0;
      for (int c = 0; c < d; ++c) dot += v(i, c) * v(j, c);
      for (int c = 0; c < d; ++c) v(i, c) -= dot * v(j, c);
    }
    double norm = 0.0;
    for (int c = 0; c < d; ++c) norm += v(i, c) * v(i, c);
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      // Degenerate direction; reset to a unit vector (rare, tiny data).
      for (int c = 0; c < d; ++c) v(i, c) = c == i % d ? 1.0 : 0.0;
    } else {
      for (int c = 0; c < d; ++c) v(i, c) /= norm;
    }
  }
}

}  // namespace

PcaResult pca(const Grid<double>& data, int k, int iters, std::uint64_t seed) {
  const int n = data.rows(), d = data.cols();
  check(n >= 2 && d >= 1, "pca needs at least two observations");
  check(k >= 1 && k <= std::min(n, d), "bad component count");

  PcaResult out;
  out.mean.assign(static_cast<std::size_t>(d), 0.0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < d; ++j) out.mean[static_cast<std::size_t>(j)] += data(i, j);
  for (double& m : out.mean) m /= n;

  Grid<double> x(n, d);  // centered
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < d; ++j)
      x(i, j) = data(i, j) - out.mean[static_cast<std::size_t>(j)];

  Grid<double> v(k, d);
  Rng rng(seed);
  for (auto& e : v) e = rng.normal();
  orthonormalize_rows(v);

  Grid<double> xv(n, k), next(k, d);
  for (int it = 0; it < iters; ++it) {
    // xv = X V^T ; next = (X^T xv)^T == xv^T X.
    for (int i = 0; i < n; ++i)
      for (int c = 0; c < k; ++c) {
        double acc = 0.0;
        for (int j = 0; j < d; ++j) acc += x(i, j) * v(c, j);
        xv(i, c) = acc;
      }
    next.fill(0.0);
    for (int i = 0; i < n; ++i)
      for (int c = 0; c < k; ++c) {
        const double w = xv(i, c);
        if (w == 0.0) continue;
        for (int j = 0; j < d; ++j) next(c, j) += w * x(i, j);
      }
    orthonormalize_rows(next);
    v = next;
  }

  out.components = v;
  out.projected = Grid<double>(n, k);
  out.variances.assign(static_cast<std::size_t>(k), 0.0);
  for (int i = 0; i < n; ++i)
    for (int c = 0; c < k; ++c) {
      double acc = 0.0;
      for (int j = 0; j < d; ++j) acc += x(i, j) * v(c, j);
      out.projected(i, c) = acc;
      out.variances[static_cast<std::size_t>(c)] += acc * acc / n;
    }
  return out;
}

}  // namespace nitho
