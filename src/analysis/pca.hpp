#pragma once
// Principal component analysis via subspace iteration on the (implicit)
// covariance.  Used to pre-reduce mask features and as the deterministic
// half of the Fig. 2(a) embedding pipeline.

#include <cstdint>
#include <vector>

#include "math/grid.hpp"

namespace nitho {

struct PcaResult {
  Grid<double> components;        ///< k x d, orthonormal rows
  std::vector<double> variances;  ///< explained variance per component
  Grid<double> projected;         ///< n x k scores (centered data . comp^T)
  std::vector<double> mean;       ///< d feature means
};

/// data: n x d observations (rows).  k <= min(n, d) components.
PcaResult pca(const Grid<double>& data, int k, int iters = 60,
              std::uint64_t seed = 1);

}  // namespace nitho
