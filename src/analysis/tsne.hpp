#pragma once
// Exact (O(n^2)) t-distributed Stochastic Neighbor Embedding, used to
// regenerate the dataset-distribution visualization of Fig. 2(a).

#include <cstdint>

#include "math/grid.hpp"

namespace nitho {

struct TsneConfig {
  double perplexity = 20.0;
  int iters = 400;
  /// <= 0 uses the openTSNE heuristic max(n / early_exaggeration, 50).
  double learning_rate = 0.0;
  double early_exaggeration = 12.0;  ///< applied for the first quarter
  std::uint64_t seed = 42;
};

/// data: n x d feature rows.  Returns an n x 2 embedding.
Grid<double> tsne(const Grid<double>& data, const TsneConfig& cfg = {});

}  // namespace nitho
