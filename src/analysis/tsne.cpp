#include "analysis/tsne.hpp"

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"

namespace nitho {
namespace {

// Row-wise conditional probabilities with a per-point bandwidth found by
// bisection so that the entropy matches log(perplexity).
Grid<double> conditional_p(const Grid<double>& d2, double perplexity) {
  const int n = d2.rows();
  Grid<double> p(n, n, 0.0);
  const double target_entropy = std::log(perplexity);
  parallel_for(n, [&](std::int64_t i) {
    double beta = 1.0, beta_lo = 0.0, beta_hi = 1e300;
    std::vector<double> row(static_cast<std::size_t>(n));
    for (int iter = 0; iter < 60; ++iter) {
      double sum = 0.0;
      for (int j = 0; j < n; ++j) {
        row[static_cast<std::size_t>(j)] =
            j == i ? 0.0 : std::exp(-beta * d2(static_cast<int>(i), j));
        sum += row[static_cast<std::size_t>(j)];
      }
      if (sum <= 0.0) {
        beta_hi = beta;
        beta = 0.5 * (beta_lo + beta);
        continue;
      }
      double entropy = 0.0;
      for (int j = 0; j < n; ++j) {
        const double pj = row[static_cast<std::size_t>(j)] / sum;
        if (pj > 1e-12) entropy -= pj * std::log(pj);
      }
      if (std::abs(entropy - target_entropy) < 1e-5) break;
      if (entropy > target_entropy) {
        beta_lo = beta;
        beta = beta_hi >= 1e300 ? beta * 2.0 : 0.5 * (beta + beta_hi);
      } else {
        beta_hi = beta;
        beta = 0.5 * (beta_lo + beta);
      }
    }
    double sum = 0.0;
    for (int j = 0; j < n; ++j) sum += row[static_cast<std::size_t>(j)];
    if (sum <= 0.0) sum = 1.0;
    for (int j = 0; j < n; ++j)
      p(static_cast<int>(i), j) = row[static_cast<std::size_t>(j)] / sum;
  });
  return p;
}

}  // namespace

Grid<double> tsne(const Grid<double>& data, const TsneConfig& cfg) {
  const int n = data.rows(), d = data.cols();
  check(n >= 5, "tsne needs at least a handful of points");
  check(cfg.perplexity > 1.0 && cfg.perplexity < n,
        "perplexity must lie in (1, n)");

  // Pairwise squared distances in feature space.
  Grid<double> d2(n, n, 0.0);
  parallel_for(n, [&](std::int64_t i) {
    for (int j = 0; j < n; ++j) {
      if (j == static_cast<int>(i)) continue;
      double acc = 0.0;
      for (int c = 0; c < d; ++c) {
        const double diff = data(static_cast<int>(i), c) - data(j, c);
        acc += diff * diff;
      }
      d2(static_cast<int>(i), j) = acc;
    }
  });

  // Symmetrized joint probabilities.
  Grid<double> p = conditional_p(d2, cfg.perplexity);
  Grid<double> pj(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      pj(i, j) = std::max((p(i, j) + p(j, i)) / (2.0 * n), 1e-12);

  Grid<double> y(n, 2);
  Rng rng(cfg.seed);
  for (auto& v : y) v = rng.normal(0.0, 1e-2);
  Grid<double> vel(n, 2, 0.0), gains(n, 2, 1.0);

  const double lr = cfg.learning_rate > 0.0
                        ? cfg.learning_rate
                        : std::max(n / cfg.early_exaggeration, 50.0);

  const int exaggeration_iters = cfg.iters / 4;
  std::vector<double> num(static_cast<std::size_t>(n) * n);
  for (int iter = 0; iter < cfg.iters; ++iter) {
    const double exag = iter < exaggeration_iters ? cfg.early_exaggeration : 1.0;
    // Student-t affinities.
    double qsum = 0.0;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) {
          num[static_cast<std::size_t>(i) * n + j] = 0.0;
          continue;
        }
        const double dy0 = y(i, 0) - y(j, 0);
        const double dy1 = y(i, 1) - y(j, 1);
        const double v = 1.0 / (1.0 + dy0 * dy0 + dy1 * dy1);
        num[static_cast<std::size_t>(i) * n + j] = v;
        qsum += v;
      }
    }
    const double inv_qsum = 1.0 / std::max(qsum, 1e-12);
    // Gradient + momentum update with adaptive gains.
    const double momentum = iter < cfg.iters / 2 ? 0.5 : 0.8;
    for (int i = 0; i < n; ++i) {
      double g0 = 0.0, g1 = 0.0;
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        const double v = num[static_cast<std::size_t>(i) * n + j];
        const double coeff = 4.0 * (exag * pj(i, j) - v * inv_qsum) * v;
        g0 += coeff * (y(i, 0) - y(j, 0));
        g1 += coeff * (y(i, 1) - y(j, 1));
      }
      const double g[2] = {g0, g1};
      for (int c = 0; c < 2; ++c) {
        gains(i, c) = (g[c] > 0.0) == (vel(i, c) > 0.0)
                          ? std::max(0.01, gains(i, c) * 0.8)
                          : std::min(gains(i, c) + 0.2, 20.0);
        vel(i, c) = momentum * vel(i, c) - lr * gains(i, c) * g[c];
        // Displacement clip: keeps miniature datasets from blowing up
        // during early exaggeration without affecting converged dynamics.
        vel(i, c) = std::clamp(vel(i, c), -25.0, 25.0);
        y(i, c) += vel(i, c);
      }
    }
    // Recenter.
    double m0 = 0.0, m1 = 0.0;
    for (int i = 0; i < n; ++i) {
      m0 += y(i, 0);
      m1 += y(i, 1);
    }
    m0 /= n;
    m1 /= n;
    for (int i = 0; i < n; ++i) {
      y(i, 0) -= m0;
      y(i, 1) -= m1;
    }
  }
  return y;
}

}  // namespace nitho
