#pragma once
// Exporters for the observability layer (DESIGN.md §12.4).
//
//  * write_chrome_trace: Chrome trace_event JSON ("JSON object format":
//    {"traceEvents": [...]}) with complete events (ph "X", ts/dur in
//    microseconds) — loads directly in Perfetto / chrome://tracing.
//  * write_metrics_text: human-readable snapshot (one metric per line,
//    histograms with count/mean/p50/p99) for example binaries and logs.
//  * write_metrics_csv: machine-readable snapshot, one row per metric.

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nitho::obs {

/// Renders the tracer's retained spans as Chrome trace_event JSON.  Each
/// span becomes a complete event: {"name", "cat", "ph": "X", "ts", "dur",
/// "pid": 1, "tid": track, "args": {"id": id}}.
void write_chrome_trace(std::ostream& os, const Tracer& tracer);
/// Merges several tracers into one file; tracer i's spans carry
/// "pid": i + 1, so each tracer renders as its own process group (e.g. the
/// serving tracer next to a rollout tracer).  Null entries are skipped.
/// Caveat: each tracer's timestamps are relative to its own construction;
/// construct the tracers together when the merged timeline should align.
void write_chrome_trace(std::ostream& os,
                        const std::vector<const Tracer*>& tracers);
/// Same, to a file; throws check_error when the file can't be written.
void write_chrome_trace_file(const std::string& path, const Tracer& tracer);
void write_chrome_trace_file(const std::string& path,
                             const std::vector<const Tracer*>& tracers);

/// One metric per line: "name counter 42", "name gauge 0.5",
/// "name hist count=N mean=... p50=... p99=...".
void write_metrics_text(std::ostream& os, const MetricsSnapshot& snap);

/// CSV with header "name,kind,value,count,mean,p50,p99"; value is filled
/// for counters/gauges, the histogram columns for histograms.
void write_metrics_csv(std::ostream& os, const MetricsSnapshot& snap);

}  // namespace nitho::obs
