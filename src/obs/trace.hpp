#pragma once
// Per-request / per-phase trace spans (DESIGN.md §12.3).
//
// A Tracer owns a fixed set of bounded per-track rings of completed spans.
// Tracks map onto the system's threads of activity (one per serving shard,
// one for OPC, one per trainer replica, one for the rollout controller), so
// each ring has a single writer in practice and its mutex is uncontended
// except while an exporter drains it.  Rings overwrite oldest-first when
// full; dropped() counts spans lost to overwrite so an exporter can say
// "trace is a suffix of the run".
//
// Tracing is OFF by default (TraceConfig::enabled == false).  When off,
// every instrumentation site reduces to one relaxed atomic load and a
// branch — no timestamps are taken and no ring is touched, which is what
// the obs_overhead bench gate (bench/baselines/obs_overhead.csv) measures.
// When on, spans are sampled: sample() admits every sample_every-th call,
// so at the default 1/16 sampling a traced request records ~5 spans while
// 15 others record none.
//
// Timestamps are microseconds since the Tracer's construction (steady
// clock), matching Chrome trace_event "ts"/"dur" units so the exporter in
// obs/export.hpp can emit them verbatim.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "common/mutex.hpp"

namespace nitho::obs {

struct TraceConfig {
  bool enabled = false;           ///< master switch; off = no timestamps taken
  std::uint32_t sample_every = 16;  ///< admit 1 of every N sample() calls
  std::size_t ring_capacity = 4096;  ///< completed spans kept per track
};

/// One completed span.  name/category must be string literals (or otherwise
/// outlive the Tracer) — rings store the pointers, not copies.
struct TraceEvent {
  const char* name = "";
  const char* category = "";
  std::uint64_t id = 0;    ///< correlates spans of one request / round
  std::uint32_t track = 0; ///< ring index; exported as the Chrome "tid"
  std::int64_t start_us = 0;
  std::int64_t dur_us = 0;
};

class Tracer {
 public:
  explicit Tracer(TraceConfig cfg, std::uint32_t tracks);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return cfg_.enabled; }
  std::uint32_t tracks() const { return static_cast<std::uint32_t>(rings_.size()); }

  /// Sampling decision: true for every sample_every-th call (first call
  /// included, so short runs still produce spans).  Always false when
  /// disabled.  One relaxed fetch_add when enabled; one relaxed load's
  /// worth of work when not.
  bool sample();

  /// Microseconds since construction on the steady clock.
  std::int64_t now_us() const;
  /// Converts a steady-clock time point (e.g. a request's enqueue stamp)
  /// into this tracer's timebase.
  std::int64_t us_since_epoch(std::chrono::steady_clock::time_point t) const;

  /// Appends a completed span to its track's ring, overwriting the oldest
  /// span when full.  No-op when disabled.  ev.track must be < tracks().
  void record(const TraceEvent& ev);

  /// All retained spans across tracks, sorted by start_us.  Takes each
  /// ring's mutex briefly; safe to call while writers are active.
  std::vector<TraceEvent> events() const;

  /// Spans lost to ring overwrite since construction.
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  struct Ring {
    mutable Mutex mu;
    /// Capacity cfg_.ring_capacity, circular.
    std::vector<TraceEvent> buf NITHO_GUARDED_BY(mu);
    std::size_t next NITHO_GUARDED_BY(mu) = 0;  ///< write cursor
    std::size_t size NITHO_GUARDED_BY(mu) = 0;  ///< entries (<= capacity)
  };

  TraceConfig cfg_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> sample_seq_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::vector<Ring> rings_;
};

}  // namespace nitho::obs
