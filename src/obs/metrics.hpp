#pragma once
// Observability core: a registry of named counters, gauges and log-bucket
// histograms shared by the serving, training, OPC and rollout subsystems
// (DESIGN.md §12).
//
// Design constraints, in order:
//   * Hot paths pay one relaxed atomic RMW per event.  Counter::inc,
//     Gauge::set/add and LogHistogram::record never take a lock; callers
//     hold references obtained once at setup time, so the registry's name
//     table is never touched per event.
//   * Reads never block writers.  snapshot() copies atomics with relaxed
//     loads; the registration mutex it takes is only ever contended by
//     other registrations and snapshots, not by metric updates.  A
//     snapshot is therefore *per-metric* atomic but not a consistent cut
//     across metrics (a counter read early may lag one read late) — the
//     same contract ShardStats has always had.
//   * Histograms are fixed-size arrays of buckets whose width grows
//     geometrically, so quantile estimates carry a bounded *relative*
//     error (≤ 1/(2·kSub), see LogHistogram) instead of the unbounded
//     absolute error of fixed-width buckets — and reading a quantile is
//     O(buckets), not O(samples·log samples) like the sort-the-window
//     path the serving stats used before.
//
// Metric names are dot-separated lowercase paths ("serve.shard0.
// latency_us").  Registration is get-or-create: asking twice for the same
// name returns the same metric; asking for an existing name as a
// different kind throws check_error.  References returned by the registry
// stay valid for the registry's lifetime (metrics are never deleted).

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.hpp"

namespace nitho::obs {

/// Nearest-rank index into a sorted sample of size n (>= 1), in integer
/// arithmetic: ceil(percent/100 * n) - 1.  This is the serving layer's
/// percentile definition (serve::percentile_index delegates here), used by
/// HistogramSnapshot::quantile so histogram-derived and exact small-window
/// percentiles agree on rank.
std::size_t nearest_rank_index(std::size_t n, int percent);

/// Monotone event count.  Writers call inc(); readers call value().  All
/// accesses are relaxed: the count is eventually consistent with the events
/// it mirrors, never torn.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-writer-wins instantaneous value (queue depth, loss, iteration).
/// add() is a CAS loop so concurrent adders never lose an update.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Read-side copy of a LogHistogram (or a merge of several — operator+=),
/// with quantile/mean derived from the bucket counts.
struct HistogramSnapshot {
  std::vector<std::uint64_t> counts;  ///< size LogHistogram::kBuckets
  std::uint64_t count = 0;            ///< total recorded values
  double sum = 0.0;                   ///< sum of recorded values

  /// Nearest-rank quantile estimate: the midpoint of the bucket holding
  /// sample rank nearest_rank_index(count, percent).  For values inside
  /// the histogram's range the estimate is within a relative error of
  /// 1/(2·LogHistogram::kSub) of the true sample at that rank (DESIGN.md
  /// §12.2 derives the bound); values clamped into the bottom or top
  /// bucket carry no bound.  NaN while count == 0.
  double quantile(int percent) const;
  double mean() const;  ///< NaN while count == 0

  /// Merges another snapshot bucket-wise (the all-shard aggregate).
  HistogramSnapshot& operator+=(const HistogramSnapshot& other);
};

/// Fixed-size log-scale bucket histogram: kSub linear subbuckets per
/// power-of-two octave (HdrHistogram's scheme), spanning
/// [2^kMinExp, 2^(kMinExp + kOctaves)).  Bucket i covers
///   [2^e · (1 + s/kSub), 2^e · (1 + (s+1)/kSub))   e = kMinExp + i/kSub,
///                                                  s = i % kSub,
/// so every bucket's width is at most 1/kSub of its lower edge and a
/// quantile reported as the bucket midpoint is within 1/(2·kSub) ≈ 3.1%
/// relative error of the true ranked sample.  Values at or below zero
/// (and NaN) clamp into bucket 0; values past the top clamp into the last
/// bucket — both tails are counted, never dropped, but carry no error
/// bound.  record() is one relaxed fetch_add per value plus the count/sum
/// updates; there is no lock anywhere.
class LogHistogram {
 public:
  static constexpr int kSubBits = 4;
  static constexpr int kSub = 1 << kSubBits;  ///< 16 subbuckets per octave
  static constexpr int kMinExp = -10;         ///< lowest edge 2^-10 ≈ 1e-3
  static constexpr int kOctaves = 42;         ///< top edge 2^32 ≈ 4.3e9
  static constexpr int kBuckets = kOctaves * kSub;

  void record(double v);

  /// The bucket a value lands in (clamped into [0, kBuckets - 1]); exact
  /// on bucket edges — an edge value starts its own bucket.
  static int bucket_index(double v);
  /// Inclusive lower / exclusive upper edge of bucket i.
  static double bucket_lower(int i);
  static double bucket_upper(int i);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  HistogramSnapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric in a MetricsSnapshot.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;       ///< counter / gauge value (0 for histograms)
  HistogramSnapshot hist;   ///< populated for histograms only
};

/// Point-in-time copy of a registry, name-sorted (the export layer in
/// obs/export.hpp renders it as text or CSV).
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;
  const MetricValue* find(const std::string& name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create.  The returned reference is valid for the registry's
  /// lifetime; a kind clash with an existing name throws check_error.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LogHistogram& histogram(const std::string& name);

  MetricsSnapshot snapshot() const;
  std::size_t size() const;

 private:
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LogHistogram> hist;
  };
  Entry& entry(const std::string& name, MetricKind kind);

  /// Guards the name table only — metric *values* are atomics updated
  /// lock-free through the references entry() hands out.
  mutable Mutex mu_;
  std::map<std::string, Entry> entries_ NITHO_GUARDED_BY(mu_);
};

}  // namespace nitho::obs
