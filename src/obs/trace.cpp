#include "obs/trace.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace nitho::obs {

Tracer::Tracer(TraceConfig cfg, std::uint32_t tracks)
    : cfg_(cfg), epoch_(std::chrono::steady_clock::now()) {
  check(tracks >= 1, "Tracer: need at least one track");
  check(cfg_.sample_every >= 1, "Tracer: sample_every must be >= 1");
  check(cfg_.ring_capacity >= 1, "Tracer: ring_capacity must be >= 1");
  rings_ = std::vector<Ring>(tracks);
  // No writer exists yet, but the guarded resize still takes its
  // (trivially uncontended) lock — see common/mutex.hpp's protocol notes.
  for (Ring& r : rings_) {
    LockGuard lk(r.mu);
    r.buf.resize(cfg_.ring_capacity);
  }
}

bool Tracer::sample() {
  if (!cfg_.enabled) return false;
  const std::uint64_t seq =
      sample_seq_.fetch_add(1, std::memory_order_relaxed);
  return seq % cfg_.sample_every == 0;
}

std::int64_t Tracer::now_us() const {
  return us_since_epoch(std::chrono::steady_clock::now());
}

std::int64_t Tracer::us_since_epoch(
    std::chrono::steady_clock::time_point t) const {
  return std::chrono::duration_cast<std::chrono::microseconds>(t - epoch_)
      .count();
}

void Tracer::record(const TraceEvent& ev) {
  if (!cfg_.enabled) return;
  check(ev.track < rings_.size(), "Tracer::record: track out of range");
  Ring& r = rings_[ev.track];
  LockGuard lk(r.mu);
  if (r.size == r.buf.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);  // overwriting oldest
  } else {
    ++r.size;
  }
  r.buf[r.next] = ev;
  r.next = (r.next + 1) % r.buf.size();
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  for (const Ring& r : rings_) {
    LockGuard lk(r.mu);
    // Oldest-first: the ring's logical start is next - size (mod capacity).
    const std::size_t cap = r.buf.size();
    const std::size_t start = (r.next + cap - r.size) % cap;
    for (std::size_t k = 0; k < r.size; ++k) {
      out.push_back(r.buf[(start + k) % cap]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_us < b.start_us;
                   });
  return out;
}

}  // namespace nitho::obs
