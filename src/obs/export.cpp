#include "obs/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace nitho::obs {
namespace {

// Span names/categories are string literals chosen by instrumentation
// sites, but escape anyway so the exporter can never emit invalid JSON.
std::string json_escape(const char* s) {
  std::string out;
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string num(double v) {
  if (std::isnan(v)) return "nan";
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

namespace {

void write_events(std::ostream& os, const std::vector<const Tracer*>& tracers) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (std::size_t t = 0; t < tracers.size(); ++t) {
    if (tracers[t] == nullptr) continue;
    const int pid = static_cast<int>(t) + 1;
    for (const TraceEvent& ev : tracers[t]->events()) {
      if (!first) os << ",";
      first = false;
      os << "\n{\"name\":\"" << json_escape(ev.name) << "\",\"cat\":\""
         << json_escape(ev.category) << "\",\"ph\":\"X\",\"ts\":" << ev.start_us
         << ",\"dur\":" << ev.dur_us << ",\"pid\":" << pid
         << ",\"tid\":" << ev.track << ",\"args\":{\"id\":" << ev.id << "}}";
    }
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Tracer& tracer) {
  write_events(os, {&tracer});
}

void write_chrome_trace(std::ostream& os,
                        const std::vector<const Tracer*>& tracers) {
  write_events(os, tracers);
}

void write_chrome_trace_file(const std::string& path, const Tracer& tracer) {
  write_chrome_trace_file(path, std::vector<const Tracer*>{&tracer});
}

void write_chrome_trace_file(const std::string& path,
                             const std::vector<const Tracer*>& tracers) {
  std::ofstream f(path);
  check(f.good(), "write_chrome_trace_file: cannot open " + path);
  write_events(f, tracers);
  f.flush();
  check(f.good(), "write_chrome_trace_file: write failed for " + path);
}

void write_metrics_text(std::ostream& os, const MetricsSnapshot& snap) {
  for (const MetricValue& m : snap.metrics) {
    switch (m.kind) {
      case MetricKind::kCounter:
        os << m.name << " counter "
           << static_cast<std::uint64_t>(m.value) << "\n";
        break;
      case MetricKind::kGauge:
        os << m.name << " gauge " << num(m.value) << "\n";
        break;
      case MetricKind::kHistogram:
        os << m.name << " hist count=" << m.hist.count
           << " mean=" << num(m.hist.mean())
           << " p50=" << num(m.hist.quantile(50))
           << " p99=" << num(m.hist.quantile(99)) << "\n";
        break;
    }
  }
}

void write_metrics_csv(std::ostream& os, const MetricsSnapshot& snap) {
  os << "name,kind,value,count,mean,p50,p99\n";
  for (const MetricValue& m : snap.metrics) {
    switch (m.kind) {
      case MetricKind::kCounter:
        os << m.name << ",counter,"
           << static_cast<std::uint64_t>(m.value) << ",,,,\n";
        break;
      case MetricKind::kGauge:
        os << m.name << ",gauge," << num(m.value) << ",,,,\n";
        break;
      case MetricKind::kHistogram:
        os << m.name << ",hist,," << m.hist.count << ","
           << num(m.hist.mean()) << "," << num(m.hist.quantile(50)) << ","
           << num(m.hist.quantile(99)) << "\n";
        break;
    }
  }
}

}  // namespace nitho::obs
