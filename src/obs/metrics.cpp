#include "obs/metrics.hpp"

#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace nitho::obs {

std::size_t nearest_rank_index(std::size_t n, int percent) {
  check(n >= 1, "nearest_rank_index: empty sample");
  check(percent >= 1 && percent <= 100, "nearest_rank_index: percent range");
  // ceil((percent/100) * n) - 1 without floating point: a double product
  // like 0.99 * 100 rounds up to 99.000...014, whose ceil would skip a rank.
  const std::size_t p = static_cast<std::size_t>(percent);
  return (p * n + 99) / 100 - 1;
}

// ---------------------------------------------------------------------------
// LogHistogram
// ---------------------------------------------------------------------------

int LogHistogram::bucket_index(double v) {
  // NaN, zero and negatives clamp into the bottom bucket (comparison with
  // NaN is false, so !(v > 0) catches it too).
  if (!(v > 0.0)) return 0;
  int e = 0;
  const double m = std::frexp(v, &e);  // v = m * 2^e, m in [0.5, 1)
  (void)m;
  const int octave = (e - 1) - kMinExp;  // floor(log2 v) - kMinExp
  if (octave < 0) return 0;
  if (octave >= kOctaves) return kBuckets - 1;
  // Position within the octave: v / 2^floor(log2 v) in [1, 2).  The
  // division by a power of two and the subtraction are exact in binary
  // floating point, so values sitting exactly on a subbucket edge
  // (2^e · (1 + s/kSub)) index their own bucket — the edge-exactness
  // tests in tests/test_obs.cpp pin this.
  const double frac = std::ldexp(v, -(e - 1)) - 1.0;  // in [0, 1)
  int sub = static_cast<int>(frac * kSub);
  if (sub >= kSub) sub = kSub - 1;  // paranoia against frac == 1.0 rounding
  return octave * kSub + sub;
}

double LogHistogram::bucket_lower(int i) {
  check(i >= 0 && i < kBuckets, "bucket_lower: index range");
  const int octave = i / kSub;
  const int sub = i % kSub;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSub, kMinExp + octave);
}

double LogHistogram::bucket_upper(int i) {
  check(i >= 0 && i < kBuckets, "bucket_upper: index range");
  const int octave = i / kSub;
  const int sub = i % kSub;
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSub,
                    kMinExp + octave);
}

void LogHistogram::record(double v) {
  counts_[static_cast<std::size_t>(bucket_index(v))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LogHistogram::snapshot() const {
  HistogramSnapshot s;
  s.counts.resize(kBuckets);
  // count_ is read first: it is incremented after the bucket, so the sum
  // of the bucket reads below can only be >= this count, never behind it
  // in a way that strands a rank past the last bucket.
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  for (int i = 0; i < kBuckets; ++i) {
    s.counts[static_cast<std::size_t>(i)] =
        counts_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  return s;
}

double HistogramSnapshot::quantile(int percent) const {
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  const std::uint64_t rank = nearest_rank_index(count, percent) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= rank) {
      const int b = static_cast<int>(i);
      return 0.5 * (LogHistogram::bucket_lower(b) +
                    LogHistogram::bucket_upper(b));
    }
  }
  // A racing record() can leave count ahead of the bucket copies; the
  // highest populated bucket is the best answer for the tail rank.
  for (std::size_t i = counts.size(); i-- > 0;) {
    if (counts[i] > 0) {
      const int b = static_cast<int>(i);
      return 0.5 * (LogHistogram::bucket_lower(b) +
                    LogHistogram::bucket_upper(b));
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

double HistogramSnapshot::mean() const {
  if (count == 0) return std::numeric_limits<double>::quiet_NaN();
  return sum / static_cast<double>(count);
}

HistogramSnapshot& HistogramSnapshot::operator+=(
    const HistogramSnapshot& other) {
  if (counts.empty()) counts.resize(LogHistogram::kBuckets);
  check(other.counts.empty() || other.counts.size() == counts.size(),
        "HistogramSnapshot: merging mismatched bucket layouts");
  for (std::size_t i = 0; i < other.counts.size(); ++i) {
    counts[i] += other.counts[i];
  }
  count += other.count;
  sum += other.sum;
  return *this;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry::Entry& MetricsRegistry::entry(const std::string& name,
                                               MetricKind kind) {
  check(!name.empty(), "metric name must not be empty");
  LockGuard lk(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    Entry e;
    e.kind = kind;
    switch (kind) {
      case MetricKind::kCounter:
        e.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        e.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        e.hist = std::make_unique<LogHistogram>();
        break;
    }
    it = entries_.emplace(name, std::move(e)).first;
  }
  check(it->second.kind == kind,
        "metric '" + name + "' already registered as a different kind");
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return *entry(name, MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return *entry(name, MetricKind::kGauge).gauge;
}

LogHistogram& MetricsRegistry::histogram(const std::string& name) {
  return *entry(name, MetricKind::kHistogram).hist;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  LockGuard lk(mu_);
  snap.metrics.reserve(entries_.size());
  for (const auto& [name, e] : entries_) {
    MetricValue v;
    v.name = name;
    v.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        v.value = static_cast<double>(e.counter->value());
        break;
      case MetricKind::kGauge:
        v.value = e.gauge->value();
        break;
      case MetricKind::kHistogram:
        v.hist = e.hist->snapshot();
        break;
    }
    snap.metrics.push_back(std::move(v));
  }
  return snap;  // std::map iteration is already name-sorted
}

std::size_t MetricsRegistry::size() const {
  LockGuard lk(mu_);
  return entries_.size();
}

const MetricValue* MetricsSnapshot::find(const std::string& name) const {
  for (const MetricValue& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

}  // namespace nitho::obs
