#pragma once
// DOINN-like baseline (Yang et al., DAC 2022): dual-band optics-inspired
// network.  A Fourier-Neural-Operator branch carries the global
// low-frequency response, a convolutional branch carries local
// high-frequency detail; the bands are fused by a small conv head.

#include <cstdint>

#include "baselines/image_trainer.hpp"

namespace nitho {

struct DoinnConfig {
  int channels = 12;  ///< lifted width of both branches
  int modes = 13;     ///< retained Fourier modes per axis (centered)
  std::uint64_t seed = 5;
};

class DoinnModel final : public ImageModel {
 public:
  explicit DoinnModel(const DoinnConfig& cfg = {});

  nn::Var forward(const nn::Var& mask) const override;
  std::vector<nn::Var> parameters() const override { return params_; }
  std::string name() const override { return "DOINN-like"; }

 private:
  nn::Var lift_w_, lift_b_;
  nn::Var spec1_, spec2_;      ///< FNO mode weights [C,C,mh,mw,2]
  nn::Var local1_w_, local1_b_, local2_w_, local2_b_;
  nn::Var fuse_w_, fuse_b_, head_w_, head_b_;
  std::vector<nn::Var> params_;
};

}  // namespace nitho
