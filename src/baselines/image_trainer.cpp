#include "baselines/image_trainer.hpp"

#include <cmath>
#include <cstdio>
#include <numeric>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "fft/spectral.hpp"
#include "nn/ops.hpp"
#include "nn/optimizer.hpp"

namespace nitho {
namespace {

Grid<double> sized_to(const Grid<double>& img, int px) {
  if (img.rows() == px) return img;
  if (img.rows() % px == 0) return downsample_area(img, img.rows() / px);
  return spectral_resample(img, px, px);
}

nn::Tensor grid_tensor(const Grid<double>& g, std::vector<int> shape) {
  nn::Tensor t(std::move(shape));
  check(t.numel() == static_cast<std::int64_t>(g.size()),
        "grid/tensor size mismatch");
  for (std::size_t i = 0; i < g.size(); ++i) {
    t[static_cast<std::int64_t>(i)] = static_cast<float>(g[i]);
  }
  return t;
}

}  // namespace

nn::Tensor mask_input(const Sample& sample, int px) {
  // Box-filtered mask: keeps the density information the optical model sees
  // (CNN baselines consume images, not spectra).
  return grid_tensor(sized_to(sample.mask_coarse, px), {1, px, px});
}

TrainStats train_image_model(ImageModel& model,
                             const std::vector<const Sample*>& data,
                             const ImageTrainConfig& cfg) {
  check(!data.empty(), "training needs at least one sample");
  const int n = static_cast<int>(data.size());
  std::vector<nn::Tensor> inputs, targets;
  inputs.reserve(static_cast<std::size_t>(n));
  targets.reserve(static_cast<std::size_t>(n));
  for (const Sample* s : data) {
    check(s != nullptr, "null sample");
    inputs.push_back(mask_input(*s, cfg.px));
    targets.push_back(
        grid_tensor(sized_to(s->aerial, cfg.px), {1, cfg.px, cfg.px}));
  }

  nn::Adam opt(model.parameters(), cfg.lr);
  Rng rng(cfg.seed);
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);

  // One graph per step; node shells and tensor buffers are recycled across
  // steps by the arena, as in the Algorithm-1 trainer (DESIGN.md §8).  The
  // model's parameters predate the arena, so reset() never reclaims them;
  // per-step nodes (input leaf, activations, loss) are dropped before each
  // reset.  Arithmetic is untouched — the loss trajectory and trained
  // weights stay bit-identical to per-step heap graphs
  // (tests/test_baselines.cpp pins this).
  nn::GraphArena arena;

  TrainStats stats;
  WallTimer timer;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    rng.shuffle(order);
    double epoch_loss = 0.0;
    for (int i : order) {
      arena.reset();
      nn::GraphArena::Scope scope(arena);
      opt.zero_grad();
      nn::Var pred = model.forward(
          nn::make_leaf(inputs[static_cast<std::size_t>(i)], false));
      nn::Var loss = nn::mse_loss(pred, targets[static_cast<std::size_t>(i)]);
      nn::backward(loss);
      opt.step();
      epoch_loss += loss->value[0];
      ++stats.steps;
    }
    stats.epoch_losses.push_back(epoch_loss / n);
    const double t = static_cast<double>(epoch + 1) / cfg.epochs;
    opt.set_lr(static_cast<float>(cfg.lr * (0.1 + 0.45 * (1.0 + std::cos(kPi * t)))));
    if (cfg.verbose) {
      std::printf("  [%s] epoch %3d/%d  loss %.3e\n", model.name().c_str(),
                  epoch + 1, cfg.epochs, stats.epoch_losses.back());
      std::fflush(stdout);
    }
  }
  stats.final_loss = stats.epoch_losses.back();
  stats.seconds = timer.seconds();
  return stats;
}

Grid<double> predict_aerial(const ImageModel& model, const Sample& sample,
                            int px, int out_px) {
  nn::Var pred = model.forward(nn::make_leaf(mask_input(sample, px), false));
  check(pred->value.numel() == static_cast<std::int64_t>(px) * px,
        "model output size mismatch");
  Grid<double> img(px, px);
  for (std::size_t i = 0; i < img.size(); ++i) {
    img[i] = static_cast<double>(pred->value[static_cast<std::int64_t>(i)]);
  }
  if (out_px == px) return img;
  return spectral_resample(img, out_px, out_px);
}

}  // namespace nitho
