#include "baselines/doinn.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "nn/ops.hpp"
#include "nn/ops_conv.hpp"
#include "nn/ops_fft.hpp"

namespace nitho {
namespace {

nn::Var make_conv_w(int cout, int cin, int k, Rng& rng) {
  nn::Tensor w({cout, cin, k, k});
  w.randn(rng, static_cast<float>(std::sqrt(2.0 / (cin * k * k))));
  return nn::make_leaf(std::move(w), true);
}

nn::Var make_spectral_w(int c, int modes, Rng& rng) {
  nn::Tensor w({c, c, modes, modes, 2});
  w.randn(rng, static_cast<float>(1.0 / c));
  return nn::make_leaf(std::move(w), true);
}

}  // namespace

DoinnModel::DoinnModel(const DoinnConfig& cfg) {
  Rng rng(cfg.seed);
  const int c = cfg.channels;
  lift_w_ = make_conv_w(c, 1, 3, rng);
  lift_b_ = nn::make_leaf(nn::Tensor({c}), true);
  spec1_ = make_spectral_w(c, cfg.modes, rng);
  spec2_ = make_spectral_w(c, cfg.modes, rng);
  local1_w_ = make_conv_w(c, c, 3, rng);
  local1_b_ = nn::make_leaf(nn::Tensor({c}), true);
  local2_w_ = make_conv_w(c, c, 3, rng);
  local2_b_ = nn::make_leaf(nn::Tensor({c}), true);
  fuse_w_ = make_conv_w(c, 2 * c, 3, rng);
  fuse_b_ = nn::make_leaf(nn::Tensor({c}), true);
  head_w_ = make_conv_w(1, c, 3, rng);
  // Positive head bias keeps the output ReLU alive at initialization.
  head_b_ = nn::make_leaf(nn::Tensor({1}, 0.2f), true);
  params_ = {lift_w_, lift_b_, spec1_,    spec2_,    local1_w_, local1_b_,
             local2_w_, local2_b_, fuse_w_, fuse_b_, head_w_,   head_b_};
}

nn::Var DoinnModel::forward(const nn::Var& mask) const {
  using namespace nn;
  Var lifted = leaky_relu(conv2d(mask, lift_w_, lift_b_));
  // Global (low-frequency) band: two FNO blocks with residual connections.
  Var g = add(lifted, spectral_conv2d(lifted, spec1_));
  g = leaky_relu(g);
  g = add(g, spectral_conv2d(g, spec2_));
  g = leaky_relu(g);
  // Local (high-frequency) band.
  Var l = leaky_relu(conv2d(lifted, local1_w_, local1_b_));
  l = leaky_relu(conv2d(l, local2_w_, local2_b_));
  // Fuse and decode.
  Var fused = leaky_relu(conv2d(concat0(g, l), fuse_w_, fuse_b_));
  return relu(conv2d(fused, head_w_, head_b_));
}

}  // namespace nitho
