#pragma once
// TEMPO-like baseline (Ye et al., ISPD 2020): a convolutional
// encoder-decoder mask -> aerial generator.
//
// Substitution note (DESIGN.md §3): the original is a cGAN; the adversarial
// term shapes texture, not the MSE/PSNR ordering the paper reports, so this
// repo trains the generator with MSE only.  Channel widths are scaled for
// CPU training while keeping TEMPO ≫ DOINN ≫ Nitho in parameter count.

#include <cstdint>

#include "baselines/image_trainer.hpp"

namespace nitho {

struct TempoConfig {
  int base_channels = 32;  ///< width of the first encoder stage
  std::uint64_t seed = 3;
};

class TempoModel final : public ImageModel {
 public:
  explicit TempoModel(const TempoConfig& cfg = {});

  nn::Var forward(const nn::Var& mask) const override;
  std::vector<nn::Var> parameters() const override { return params_; }
  std::string name() const override { return "TEMPO-like"; }

 private:
  struct Conv {
    nn::Var w, b;
  };
  Conv conv_[7];
  std::vector<nn::Var> params_;
};

}  // namespace nitho
