#include "baselines/tempo.hpp"

#include <cmath>

#include "common/rng.hpp"
#include "nn/ops.hpp"
#include "nn/ops_conv.hpp"

namespace nitho {
namespace {

nn::Var make_conv_w(int cout, int cin, int k, Rng& rng) {
  nn::Tensor w({cout, cin, k, k});
  w.randn(rng, static_cast<float>(std::sqrt(2.0 / (cin * k * k))));
  return nn::make_leaf(std::move(w), true);
}

}  // namespace

TempoModel::TempoModel(const TempoConfig& cfg) {
  Rng rng(cfg.seed);
  const int c = cfg.base_channels;
  // U-Net-style generator (TEMPO's cGAN uses a skip-connected generator):
  // encoder c -> 2c -> 4c bottleneck, decoder consumes upsampled features
  // concatenated with the matching encoder stage.
  const int chans[7][2] = {{1, c},          {c, 2 * c},    {2 * c, 4 * c},
                           {4 * c, 4 * c},  {6 * c, 2 * c}, {3 * c, c},
                           {c, 1}};
  for (int i = 0; i < 7; ++i) {
    conv_[i].w = make_conv_w(chans[i][1], chans[i][0], 3, rng);
    // The head starts with a positive bias so the final ReLU is not born
    // dead (aerial intensities are positive with mean ~0.2).
    conv_[i].b = nn::make_leaf(nn::Tensor({chans[i][1]}, i == 6 ? 0.2f : 0.0f),
                               true);
    params_.push_back(conv_[i].w);
    params_.push_back(conv_[i].b);
  }
}

nn::Var TempoModel::forward(const nn::Var& mask) const {
  using namespace nn;
  // Encoder: full res -> /2 -> /4.
  Var e1 = leaky_relu(conv2d(mask, conv_[0].w, conv_[0].b));
  Var e2 = leaky_relu(conv2d(avg_pool2(e1), conv_[1].w, conv_[1].b));
  // Bottleneck.
  Var b = leaky_relu(conv2d(avg_pool2(e2), conv_[2].w, conv_[2].b));
  b = leaky_relu(conv2d(b, conv_[3].w, conv_[3].b));
  // Decoder with skip connections.
  Var d2 = leaky_relu(
      conv2d(concat0(upsample2(b), e2), conv_[4].w, conv_[4].b));
  Var d1 = leaky_relu(
      conv2d(concat0(upsample2(d2), e1), conv_[5].w, conv_[5].b));
  // Bounded head: aerial intensities live in [0, ~1.3] and a sigmoid keeps
  // gradients alive regardless of the pre-activation scale (a plain ReLU
  // head dies when the deep decoder swings negative early in training).
  return scale(sigmoid(conv2d(d1, conv_[6].w, conv_[6].b)), 1.5f);
}

}  // namespace nitho
