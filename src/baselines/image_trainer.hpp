#pragma once
// Shared infrastructure for the image-to-image baselines (TEMPO-like and
// DOINN-like): a common model interface, an MSE trainer over
// (coarse mask -> golden aerial) pairs and the evaluation-time prediction
// path (forward at the training resolution, then band-limited upsampling to
// the analysis grid).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "litho/golden.hpp"
#include "nitho/trainer.hpp"  // TrainStats
#include "nn/autodiff.hpp"

namespace nitho {

/// Interface of a mask -> aerial image network operating on [1, px, px].
class ImageModel {
 public:
  virtual ~ImageModel() = default;
  virtual nn::Var forward(const nn::Var& mask) const = 0;
  virtual std::vector<nn::Var> parameters() const = 0;
  virtual std::string name() const = 0;

  std::int64_t parameter_count() const {
    return nn::parameter_count(parameters());
  }
  std::int64_t parameter_bytes() const {
    return parameter_count() * static_cast<std::int64_t>(sizeof(float));
  }
};

struct ImageTrainConfig {
  int epochs = 30;
  float lr = 2e-3f;
  int px = 64;  ///< training resolution (mask and aerial resampled here)
  std::uint64_t seed = 17;
  bool verbose = false;
};

/// Trains with per-sample Adam steps (batch size 1: CNN activations at this
/// resolution dominate memory, and the models are small).
TrainStats train_image_model(ImageModel& model,
                             const std::vector<const Sample*>& data,
                             const ImageTrainConfig& cfg);

/// Predicted aerial for one sample, spectrally upsampled to out_px.
Grid<double> predict_aerial(const ImageModel& model, const Sample& sample,
                            int px, int out_px);

/// Converts a sample's coarse mask to the [1, px, px] network input.
nn::Tensor mask_input(const Sample& sample, int px);

}  // namespace nitho
