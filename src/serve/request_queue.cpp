#include "serve/request_queue.hpp"

#include <utility>

#include "common/check.hpp"

namespace nitho::serve {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  check(capacity >= 1, "RequestQueue capacity must be >= 1");
}

bool RequestQueue::push_locked(std::unique_lock<std::mutex>& lk,
                               ServeRequest& req) {
  if (closed_) return false;
  items_.push_back(std::move(req));
  lk.unlock();
  not_empty_.notify_one();
  return true;
}

bool RequestQueue::push(ServeRequest& req) {
  std::unique_lock<std::mutex> lk(mu_);
  not_full_.wait(lk, [&] { return closed_ || items_.size() < capacity_; });
  return push_locked(lk, req);
}

RequestQueue::PushResult RequestQueue::try_push(ServeRequest& req) {
  std::unique_lock<std::mutex> lk(mu_);
  // Closed wins over full: both can hold at once, and the caller must see
  // the terminal condition rather than retrying against a stopped server.
  if (closed_) return PushResult::kClosed;
  if (items_.size() >= capacity_) return PushResult::kFull;
  return push_locked(lk, req) ? PushResult::kOk : PushResult::kClosed;
}

RequestQueue::PopResult RequestQueue::pop(ServeRequest& out) {
  std::unique_lock<std::mutex> lk(mu_);
  not_empty_.wait(lk, [&] { return closed_ || !items_.empty(); });
  if (items_.empty()) return PopResult::kClosed;
  out = std::move(items_.front());
  items_.pop_front();
  lk.unlock();
  not_full_.notify_one();
  return PopResult::kItem;
}

RequestQueue::PopResult RequestQueue::pop_until(
    ServeRequest& out, std::chrono::steady_clock::time_point deadline) {
  std::unique_lock<std::mutex> lk(mu_);
  const bool ready = not_empty_.wait_until(
      lk, deadline, [&] { return closed_ || !items_.empty(); });
  if (!ready) return PopResult::kTimeout;
  if (items_.empty()) return PopResult::kClosed;
  out = std::move(items_.front());
  items_.pop_front();
  lk.unlock();
  not_full_.notify_one();
  return PopResult::kItem;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

std::size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return items_.size();
}

}  // namespace nitho::serve
