#include "serve/request_queue.hpp"

#include <utility>

#include "common/check.hpp"

namespace nitho::serve {

RequestQueue::RequestQueue(std::size_t capacity) : capacity_(capacity) {
  check(capacity >= 1, "RequestQueue capacity must be >= 1");
}

bool RequestQueue::push_locked(ServeRequest& req) {
  if (closed_) return false;
  items_.push_back(std::move(req));
  return true;
}

bool RequestQueue::push(ServeRequest& req) {
  bool pushed;
  {
    UniqueLock lk(mu_);
    while (!closed_ && items_.size() >= capacity_) not_full_.wait(lk);
    pushed = push_locked(req);
  }
  // Notify after the lock drops so the woken consumer never stalls on mu_.
  if (pushed) not_empty_.notify_one();
  return pushed;
}

RequestQueue::PushResult RequestQueue::try_push(ServeRequest& req) {
  {
    LockGuard lk(mu_);
    // Closed wins over full: both can hold at once, and the caller must see
    // the terminal condition rather than retrying against a stopped server.
    if (closed_) return PushResult::kClosed;
    if (items_.size() >= capacity_) return PushResult::kFull;
    if (!push_locked(req)) return PushResult::kClosed;
  }
  not_empty_.notify_one();
  return PushResult::kOk;
}

RequestQueue::PopResult RequestQueue::pop(ServeRequest& out) {
  {
    UniqueLock lk(mu_);
    while (!closed_ && items_.empty()) not_empty_.wait(lk);
    if (items_.empty()) return PopResult::kClosed;
    out = std::move(items_.front());
    items_.pop_front();
  }
  not_full_.notify_one();
  return PopResult::kItem;
}

RequestQueue::PopResult RequestQueue::pop_until(
    ServeRequest& out, std::chrono::steady_clock::time_point deadline) {
  {
    UniqueLock lk(mu_);
    // Explicit wait loop (no predicate lambda — DESIGN.md §14.2), same
    // semantics as wait_until(lk, deadline, pred): on timeout the condition
    // gets one final check before kTimeout is reported.
    while (!closed_ && items_.empty()) {
      if (not_empty_.wait_until(lk, deadline) == std::cv_status::timeout) {
        if (closed_ || !items_.empty()) break;
        return PopResult::kTimeout;
      }
    }
    if (items_.empty()) return PopResult::kClosed;
    out = std::move(items_.front());
    items_.pop_front();
  }
  not_full_.notify_one();
  return PopResult::kItem;
}

void RequestQueue::close() {
  {
    LockGuard lk(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool RequestQueue::closed() const {
  LockGuard lk(mu_);
  return closed_;
}

std::size_t RequestQueue::depth() const {
  LockGuard lk(mu_);
  return items_.size();
}

}  // namespace nitho::serve
