#include "serve/batcher.hpp"

#include <utility>

#include "common/check.hpp"

namespace nitho::serve {

MicroBatcher::MicroBatcher(BatchPolicy policy) : policy_(policy) {
  check(policy_.max_batch >= 1, "max_batch must be >= 1");
  check(policy_.max_delay.count() >= 0, "max_delay must be >= 0");
}

Batch MicroBatcher::take_bucket(std::size_t i) {
  Batch batch = std::move(buckets_[i].batch);
  buckets_.erase(buckets_.begin() + static_cast<std::ptrdiff_t>(i));
  return batch;
}

void MicroBatcher::set_policy(BatchPolicy policy) {
  check(policy.max_batch >= 1, "max_batch must be >= 1");
  check(policy.max_delay.count() >= 0, "max_delay must be >= 0");
  policy_ = policy;
}

std::vector<ServeRequest> MicroBatcher::take_shed() {
  return std::exchange(shed_, {});
}

std::optional<Batch> MicroBatcher::add(
    ServeRequest req, std::chrono::steady_clock::time_point now) {
  check(req.litho != nullptr, "request without a kernel snapshot");
  if (req.deadline < now) {
    // Expired while queued: set the request aside for the owner to
    // account and fail (see the header contract) instead of spending a
    // batch slot on a result the client has given up on.
    shed_.push_back(std::move(req));
    return std::nullopt;
  }
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    Batch& b = buckets_[i].batch;
    if (b.litho.get() == req.litho.get() && b.out_px == req.out_px) {
      b.requests.push_back(std::move(req));
      if (static_cast<int>(b.requests.size()) >= policy_.max_batch) {
        return take_bucket(i);
      }
      return std::nullopt;
    }
  }
  Bucket bucket;
  bucket.batch.litho = req.litho;
  bucket.batch.out_px = req.out_px;
  bucket.deadline = now + policy_.max_delay;
  bucket.batch.requests.push_back(std::move(req));
  if (policy_.max_batch == 1) {
    Batch batch = std::move(bucket.batch);
    return batch;
  }
  buckets_.push_back(std::move(bucket));
  return std::nullopt;
}

std::optional<std::chrono::steady_clock::time_point>
MicroBatcher::next_deadline() const {
  std::optional<std::chrono::steady_clock::time_point> earliest;
  for (const Bucket& b : buckets_) {
    if (!earliest || b.deadline < *earliest) earliest = b.deadline;
  }
  return earliest;
}

std::optional<Batch> MicroBatcher::poll(
    std::chrono::steady_clock::time_point now) {
  std::size_t best = buckets_.size();
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i].deadline > now) continue;
    if (best == buckets_.size() ||
        buckets_[i].deadline < buckets_[best].deadline) {
      best = i;
    }
  }
  if (best == buckets_.size()) return std::nullopt;
  return take_bucket(best);
}

std::vector<Batch> MicroBatcher::drain() {
  std::vector<Batch> out;
  out.reserve(buckets_.size());
  for (Bucket& b : buckets_) out.push_back(std::move(b.batch));
  buckets_.clear();
  return out;
}

std::size_t MicroBatcher::pending_requests() const {
  std::size_t n = 0;
  for (const Bucket& b : buckets_) n += b.batch.requests.size();
  return n;
}

}  // namespace nitho::serve
