#pragma once
// LithoServer: sharded, micro-batching aerial-image serving on top of
// FastLitho / AerialEngine (DESIGN.md §7).
//
// The synchronous FastLitho API answers one caller at a time; the server
// turns it into a concurrent front end for heavy traffic:
//
//   * N shards, each a pinned worker thread with its own bounded
//     RequestQueue, its own MicroBatcher and its own FastLitho instance.
//     Shard instances share the kernel arrays (FastLitho::kernels_shared)
//     but keep private engine caches, so shard workers never contend on
//     workspaces.  Requests route to a shard by out_px affinity (default:
//     each shard only ever builds engines for the resolutions it serves,
//     which bounds memory together with the FastLitho LRU cap) or round
//     robin.
//   * A future-based client API: submit() moves the mask in and returns a
//     std::future<Grid<double>> that resolves to exactly the grid a direct
//     aerial_from_mask / resist_from_mask call would produce — served
//     results are bit-identical to the synchronous API.
//   * Backpressure: submit() blocks while the shard queue is full;
//     try_submit() fails fast instead.  Either way the server's memory is
//     bounded by shards * (queue_capacity + batcher buckets).
//   * Snapshot hot-swap: swap_kernels() atomically publishes a new kernel
//     set (e.g. a fresh NithoModel export) without draining the server.
//     Every request is served by the snapshot that was current at its
//     submit time; in-flight work on the old kernels finishes on its
//     shared_ptr and the old engines free once the last request drains.
//     Snapshots carry a monotonic generation number (0 = the construction
//     snapshot; swap_kernels returns the new one), so continual-learning
//     rollout (src/rollout/, DESIGN.md §11) can attribute every served
//     result to exactly one model generation — capture-at-submit means a
//     batch never mixes generations.
//   * stop() closes the queues, drains every accepted request and joins
//     the workers: all futures resolve (shutdown never breaks a promise).
//     The destructor calls stop().
//   * Admission control + latency SLO (DESIGN.md §9, off by default):
//     with a SloPolicy installed, every request carries a deadline and the
//     server sheds — at submit, when the shard's estimated wait already
//     exceeds it, or on dequeue, when it expired in the queue — resolving
//     shed futures with DeadlineExceeded instead of letting p99 collapse
//     under overload.  An optional per-shard autotuner (serve/autotune.hpp)
//     steers (max_batch, max_delay) toward the SLO target online.  The
//     policy hot-swaps like kernel snapshots (swap_slo).
//
// Per-shard stats (queue depth, batch count/occupancy, p50/p99 latency
// over a sliding window, shed/goodput accounting) are exported for load
// shedding and dashboards.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/autotune.hpp"
#include "serve/batcher.hpp"
#include "serve/opc_service.hpp"
#include "serve/request_queue.hpp"

namespace nitho::serve {

enum class RouteMode {
  /// Hash out_px to a fixed shard: maximal coalescing, each shard builds
  /// engines only for the resolutions routed to it.
  kOutPxAffinity,
  /// Spread requests evenly regardless of key (uniform load when the
  /// resolution mix is skewed; batches then form per shard).
  kRoundRobin,
};

/// Latency SLO for admission control (DESIGN.md §9).  Installing one (via
/// ServeOptions::slo or swap_slo) turns deadline shedding on; without it
/// the server behaves exactly as before (accepted work queues unboundedly
/// long rather than shedding, and results are bit-preserved either way).
struct SloPolicy {
  /// The latency objective the autotuner steers toward (submit→resolve).
  std::chrono::microseconds target_p99{10000};
  /// Default per-request deadline: a submit without an explicit deadline
  /// gets submit_time + max_queue_wait.  Bounds how long a request may sit
  /// in the shard queue before it is shed instead of served late.
  std::chrono::microseconds max_queue_wait{5000};
  /// Enables the per-shard (max_batch, max_delay) autotuner.
  bool autotune = false;
  AutotuneConfig tuner;
};

struct ServeOptions {
  int shards = 1;
  /// Per-shard queue bound — the backpressure knob.
  std::size_t queue_capacity = 64;
  BatchPolicy batch;
  RouteMode route = RouteMode::kOutPxAffinity;
  /// Admission control + SLO autotune; nullopt (default) = PR 3 behavior.
  std::optional<SloPolicy> slo;
  /// Metrics registry the server publishes into (DESIGN.md §12); null
  /// (default) = the server creates a private one.  Pass a shared registry
  /// to aggregate serve/train/rollout metrics in one snapshot.
  std::shared_ptr<obs::MetricsRegistry> metrics;
  /// Request-span tracing; disabled by default.  With it disabled, every
  /// instrumentation site is a single branch and served results are
  /// bit-identical to a server built without observability at all.
  obs::TraceConfig trace;
};

/// Admission-control accounting (all zero while no SloPolicy is active).
struct ShedStats {
  /// Admitted into a shard queue — mirrors ShardStats::submitted so the
  /// admission picture (accepted vs shed) reads from one struct.
  std::uint64_t accepted = 0;
  std::uint64_t shed_at_submit = 0;  ///< rejected by the wait estimate
  std::uint64_t shed_in_queue = 0;   ///< expired while queued (on dequeue)
  /// Value-resolved completions per second of server uptime — the rate the
  /// SLO gate compares against measured capacity (bench_serve overload).
  double goodput_rps = 0.0;
};

struct ShardStats {
  std::uint64_t submitted = 0;   ///< requests accepted into the queue
  /// Accepted requests whose futures resolved (value, engine error, or
  /// queue shed).  Submit-shed futures also resolve, but those requests
  /// were never accepted and appear only in ShedStats::shed_at_submit.
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;     ///< engine sweeps executed
  /// (completed - shed.shed_in_queue) / batches: queue sheds resolve
  /// without ever occupying a batch slot.
  double mean_batch_occupancy = 0.0;
  std::size_t queue_depth = 0;   ///< instantaneous
  /// Submit-to-resolve latency percentiles in microseconds.  Exact
  /// nearest-rank over every completed request while the sample is small
  /// (each shard keeps its first 64 latencies verbatim); beyond that,
  /// derived from a lifetime log-bucket histogram with a bounded relative
  /// error of ≤ 1/(2·16) ≈ 3.1% (obs::LogHistogram, DESIGN.md §12.2) —
  /// reading them no longer copies and sorts a ring under the stats mutex.
  /// NaN until the first request completes — a fresh server has no
  /// latency, not a ~0 µs one; printers should show "n/a" while
  /// latency_samples == 0.
  double p50_latency_us = std::numeric_limits<double>::quiet_NaN();
  double p99_latency_us = std::numeric_limits<double>::quiet_NaN();
  /// Completed requests contributing to the percentiles.
  std::uint64_t latency_samples = 0;
  /// EWMA of per-request service time (µs), the basis of the submit-path
  /// wait estimate; 0 until the first batch completes.
  double est_service_us = 0.0;
  ShedStats shed;
  /// The shard's current flush policy (moves under autotune) and how many
  /// tuning decisions have changed it.
  int max_batch = 0;
  double max_delay_us = 0.0;
  std::uint64_t autotune_updates = 0;
  /// Generation of the kernel snapshot a submit would capture now (0 until
  /// the first swap_kernels).  In the all-shard aggregate: the newest
  /// generation any shard serves.
  std::uint64_t kernel_generation = 0;
};

/// Renders a ShardStats latency percentile for humans: "123 us", or "n/a"
/// while the window is empty (the NaN sentinel must not print as 0 µs).
/// Shared by bench_serve and serve_demo so the sentinel handling cannot
/// drift between printers.
std::string latency_str(double us, std::uint64_t samples);

/// Nearest-rank percentile index into a sorted sample of size n (>= 1):
/// ceil(percent/100 * n) - 1, computed in integer arithmetic.  The ceil is
/// what makes small windows honest — the floor-style (99*(n-1))/100 the
/// stats used before returns the *minimum* for n <= 2 and biases the tail
/// low until the window fills.  Delegates to obs::nearest_rank_index so the
/// exact small-window path and the histogram quantile share one rank rule.
std::size_t percentile_index(std::size_t n, int percent);

class LithoServer {
 public:
  explicit LithoServer(FastLitho litho, ServeOptions options = {});
  ~LithoServer();
  LithoServer(const LithoServer&) = delete;
  LithoServer& operator=(const LithoServer&) = delete;

  /// Submits one mask for aerial (or resist) simulation at out_px.  Blocks
  /// while the target shard's queue is full (backpressure); throws
  /// check_error if the server is stopped or the request is invalid
  /// against the current kernel snapshot (out_px < kernel_dim).
  ///
  /// `deadline` bounds how long the request may wait in the shard queue.
  /// kNoDeadline means: the shard's SloPolicy default (submit time +
  /// max_queue_wait) when one is installed, otherwise no deadline at all.
  /// A request the server decides cannot meet its deadline is shed — its
  /// future resolves with DeadlineExceeded (the mask is consumed either
  /// way; shedding is an answer, not backpressure).
  std::future<Grid<double>> submit(
      Grid<double> mask, int out_px, RequestKind kind = RequestKind::kAerial,
      std::chrono::steady_clock::time_point deadline = kNoDeadline);

  /// Non-blocking submit: nullopt (mask intact) when the shard queue is
  /// full — the caller's load-shedding signal.  A stopped server is not
  /// retryable, so it throws check_error like submit() instead of
  /// masquerading as backpressure.  Deadline semantics as in submit(): an
  /// admission shed returns a DeadlineExceeded future, not nullopt.
  std::optional<std::future<Grid<double>>> try_submit(
      Grid<double>& mask, int out_px, RequestKind kind = RequestKind::kAerial,
      std::chrono::steady_clock::time_point deadline = kNoDeadline);

  /// Second request class: a long-running OPC job over the batched
  /// opc::OpcEngine (DESIGN.md §10).  Captures the kernel snapshot and the
  /// resist threshold a submit routed to shard 0 would see now — later
  /// swap_kernels calls do not retarget a running job, exactly like
  /// in-flight aerial requests.  The job runs on the OpcService's own
  /// worker and yields to queued latency traffic between steps, so it
  /// never starves the SLO'd aerial path; progress (iteration, loss, EPE)
  /// polls through the returned handle and the result future resolves on
  /// completion, cancel or stop() — always with a resumable checkpoint
  /// once the job has started.
  OpcJobHandle submit_opc(std::vector<Grid<double>> intended,
                          OpcJobOptions opts = {});
  /// Continues a checkpointed job (possibly from another server) toward
  /// opts.iterations, bit-identically to an uninterrupted run when the
  /// kernel snapshot is the same.
  OpcJobHandle resume_opc(opc::OpcCheckpoint checkpoint,
                          OpcJobOptions opts = {});

  /// Publishes a new kernel snapshot (shape may differ from the old one)
  /// and returns its generation number (monotonic, starting at 1; the
  /// construction snapshot is generation 0).  Requests submitted before
  /// the swap are still served by the old kernels; requests submitted
  /// after see the new ones.  Because every request captures its snapshot
  /// at submit, a served result belongs to exactly one generation.
  std::uint64_t swap_kernels(FastLitho fresh);

  /// Publishes a new SLO policy (or removes it with nullopt) without
  /// draining the server — the admission-control analogue of
  /// swap_kernels.  Requests submitted after the swap get deadlines (and
  /// shedding) under the new policy; queued requests keep the deadlines
  /// they were admitted with.  Each shard worker picks the change up on
  /// its next dequeue and rebuilds (or drops) its autotuner, starting
  /// again from the configured BatchPolicy.
  void swap_slo(std::optional<SloPolicy> slo);

  /// The SLO policy a submit routed to `shard` would see now (null when
  /// admission control is off).
  std::shared_ptr<const SloPolicy> slo(int shard = 0) const;

  /// The kernel snapshot a submit routed to `shard` would capture now.
  std::shared_ptr<const FastLitho> snapshot(int shard = 0) const;

  /// The generation of that snapshot.  Published under the same lock as
  /// the snapshot itself; to attribute a result to a generation, use the
  /// value swap_kernels returned rather than re-reading this across a
  /// racing swap.
  std::uint64_t generation(int shard = 0) const;

  /// Close queues, drain accepted requests, join workers.  Idempotent and
  /// safe to call concurrently; submits racing with stop either complete
  /// or throw, but an accepted future always resolves.
  void stop();

  int shards() const { return static_cast<int>(shards_.size()); }
  /// Routing decision, exposed for tests: the shard index under
  /// kOutPxAffinity, or -1 under kRoundRobin (any shard — the actual pick
  /// happens per submit).  Do not feed -1 to shard_stats/snapshot.
  int shard_of(int out_px) const;
  ShardStats shard_stats(int shard) const;
  ShardStats stats() const;  ///< aggregate over all shards

  /// The registry the server publishes into (ServeOptions::metrics, or the
  /// private one it created).  Valid for the server's lifetime.
  obs::MetricsRegistry& metrics() const { return *metrics_; }
  std::shared_ptr<obs::MetricsRegistry> metrics_shared() const {
    return metrics_;
  }
  /// The request tracer (tracks 0..shards-1 = shard workers, track shards =
  /// the OPC worker).  Always constructed; inert unless
  /// ServeOptions::trace.enabled.
  obs::Tracer& tracer() const { return *tracer_; }

 private:
  struct Shard;

  Shard& route(int out_px);
  /// Validates against the shard's current snapshot and only then moves
  /// the mask into the returned request (a throw leaves `mask` intact).
  /// Also stamps the request's deadline (explicit, or the SLO default).
  ServeRequest make_request(Shard& shard, Grid<double>& mask, int out_px,
                            RequestKind kind,
                            std::chrono::steady_clock::time_point deadline)
      const;
  /// Admission check (DESIGN.md §9.2): true when the request was shed at
  /// submit — its future is already resolved with DeadlineExceeded.
  bool shed_at_submit(Shard& shard, ServeRequest& req);
  void shard_loop(Shard& shard);
  void execute_batch(Shard& shard, Batch batch, TuneWindow* window);

  ServeOptions options_;
  /// Observability sinks; created before the shards, which cache borrowed
  /// metric references, so they must be declared (and thus destroyed)
  /// after-first / before-last relative to shards_.
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<obs::Tracer> tracer_;
  /// Ids handed to sampled (traced) requests; correlates a request's spans.
  std::atomic<std::uint64_t> trace_seq_{1};
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> round_robin_{0};
  /// Kernel-snapshot generations handed out so far (the construction
  /// snapshot is generation 0; the first swap publishes 1).
  std::atomic<std::uint64_t> generation_{0};
  /// OPC job runner; stopped (and its futures resolved) before the shard
  /// queues close, so a draining job stops probing shard state.
  std::unique_ptr<OpcService> opc_;
  Mutex stop_mu_;
  bool stopped_ NITHO_GUARDED_BY(stop_mu_) = false;
};

}  // namespace nitho::serve
