#pragma once
// LithoServer: sharded, micro-batching aerial-image serving on top of
// FastLitho / AerialEngine (DESIGN.md §7).
//
// The synchronous FastLitho API answers one caller at a time; the server
// turns it into a concurrent front end for heavy traffic:
//
//   * N shards, each a pinned worker thread with its own bounded
//     RequestQueue, its own MicroBatcher and its own FastLitho instance.
//     Shard instances share the kernel arrays (FastLitho::kernels_shared)
//     but keep private engine caches, so shard workers never contend on
//     workspaces.  Requests route to a shard by out_px affinity (default:
//     each shard only ever builds engines for the resolutions it serves,
//     which bounds memory together with the FastLitho LRU cap) or round
//     robin.
//   * A future-based client API: submit() moves the mask in and returns a
//     std::future<Grid<double>> that resolves to exactly the grid a direct
//     aerial_from_mask / resist_from_mask call would produce — served
//     results are bit-identical to the synchronous API.
//   * Backpressure: submit() blocks while the shard queue is full;
//     try_submit() fails fast instead.  Either way the server's memory is
//     bounded by shards * (queue_capacity + batcher buckets).
//   * Snapshot hot-swap: swap_kernels() atomically publishes a new kernel
//     set (e.g. a fresh NithoModel export) without draining the server.
//     Every request is served by the snapshot that was current at its
//     submit time; in-flight work on the old kernels finishes on its
//     shared_ptr and the old engines free once the last request drains.
//   * stop() closes the queues, drains every accepted request and joins
//     the workers: all futures resolve (shutdown never breaks a promise).
//     The destructor calls stop().
//
// Per-shard stats (queue depth, batch count/occupancy, p50/p99 latency
// over a sliding window) are exported for load shedding and dashboards.

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/request_queue.hpp"

namespace nitho::serve {

enum class RouteMode {
  /// Hash out_px to a fixed shard: maximal coalescing, each shard builds
  /// engines only for the resolutions routed to it.
  kOutPxAffinity,
  /// Spread requests evenly regardless of key (uniform load when the
  /// resolution mix is skewed; batches then form per shard).
  kRoundRobin,
};

struct ServeOptions {
  int shards = 1;
  /// Per-shard queue bound — the backpressure knob.
  std::size_t queue_capacity = 64;
  BatchPolicy batch;
  RouteMode route = RouteMode::kOutPxAffinity;
};

struct ShardStats {
  std::uint64_t submitted = 0;   ///< requests accepted into the queue
  std::uint64_t completed = 0;   ///< futures resolved (value or error)
  std::uint64_t batches = 0;     ///< engine sweeps executed
  double mean_batch_occupancy = 0.0;  ///< completed / batches
  std::size_t queue_depth = 0;   ///< instantaneous
  /// Submit-to-resolve latency percentiles over the last
  /// kLatencyWindow completed requests, in microseconds.
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
};

class LithoServer {
 public:
  explicit LithoServer(FastLitho litho, ServeOptions options = {});
  ~LithoServer();
  LithoServer(const LithoServer&) = delete;
  LithoServer& operator=(const LithoServer&) = delete;

  /// Submits one mask for aerial (or resist) simulation at out_px.  Blocks
  /// while the target shard's queue is full (backpressure); throws
  /// check_error if the server is stopped or the request is invalid
  /// against the current kernel snapshot (out_px < kernel_dim).
  std::future<Grid<double>> submit(Grid<double> mask, int out_px,
                                   RequestKind kind = RequestKind::kAerial);

  /// Non-blocking submit: nullopt (mask intact) when the shard queue is
  /// full — the caller's load-shedding signal.  A stopped server is not
  /// retryable, so it throws check_error like submit() instead of
  /// masquerading as backpressure.
  std::optional<std::future<Grid<double>>> try_submit(
      Grid<double>& mask, int out_px, RequestKind kind = RequestKind::kAerial);

  /// Publishes a new kernel snapshot (shape may differ from the old one).
  /// Requests submitted before the swap are still served by the old
  /// kernels; requests submitted after see the new ones.
  void swap_kernels(FastLitho fresh);

  /// The kernel snapshot a submit routed to `shard` would capture now.
  std::shared_ptr<const FastLitho> snapshot(int shard = 0) const;

  /// Close queues, drain accepted requests, join workers.  Idempotent and
  /// safe to call concurrently; submits racing with stop either complete
  /// or throw, but an accepted future always resolves.
  void stop();

  int shards() const { return static_cast<int>(shards_.size()); }
  /// Routing decision, exposed for tests: the shard index under
  /// kOutPxAffinity, or -1 under kRoundRobin (any shard — the actual pick
  /// happens per submit).  Do not feed -1 to shard_stats/snapshot.
  int shard_of(int out_px) const;
  ShardStats shard_stats(int shard) const;
  ShardStats stats() const;  ///< aggregate over all shards

 private:
  struct Shard;

  Shard& route(int out_px);
  /// Validates against the shard's current snapshot and only then moves
  /// the mask into the returned request (a throw leaves `mask` intact).
  ServeRequest make_request(Shard& shard, Grid<double>& mask, int out_px,
                            RequestKind kind) const;
  void shard_loop(Shard& shard);
  void execute_batch(Shard& shard, Batch batch);

  ServeOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> round_robin_{0};
  std::mutex stop_mu_;
  bool stopped_ = false;
};

}  // namespace nitho::serve
