#pragma once
// Latency-SLO autotuner for the serving layer (DESIGN.md §9.3).
//
// The micro-batcher has two knobs, and their best values move with the
// load: max_delay trades trickle-load latency for coalescing opportunity,
// max_batch bounds how much latency a size flush may accumulate.  PR 3
// fixed both at construction; this tuner adjusts them online, per shard,
// from the shard's own observed latency window:
//
//   * AIMD on max_delay — multiplicative decrease when the window's p99
//     overshoots the SLO target (back off hard: overload compounds),
//     additive increase when p99 sits below the low watermark (probe
//     gently for more coalescing).  The classic stable control rule.
//   * Occupancy-driven max_batch — when batches routinely fill, grow
//     max_batch (more amortization per sweep) but only while the SLO has
//     headroom; when occupancy collapses, shrink max_batch toward the
//     observed occupancy so size flushes fire before the delay deadline.
//
// The tuner itself is deliberately single-threaded decision logic: one
// instance lives inside each shard worker, consumes the worker's local
// TuneWindow, and its output is applied to the worker's own MicroBatcher
// via set_policy (hot-swapped between batches, like kernel snapshots —
// accepted requests are never touched, so results stay bit-identical).

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/batcher.hpp"

namespace nitho::serve {

/// Knobs of the AIMD / occupancy controller.  The defaults are sized for
/// micro-batched aerial sweeps (tens of microseconds per request).
struct AutotuneConfig {
  /// p99 below low_watermark * target_p99 counts as SLO headroom: the
  /// additive-increase side of AIMD, and the guard on growing max_batch.
  double low_watermark = 0.6;
  /// Additive increase applied to max_delay per decision with headroom.
  std::chrono::microseconds delay_step{50};
  /// Multiplicative decrease factor applied to max_delay on overshoot.
  double delay_backoff = 0.5;
  std::chrono::microseconds min_delay{20};
  std::chrono::microseconds max_delay{5000};
  int min_batch = 1;
  int max_batch = 128;
  /// Mean occupancy >= occupancy_high * max_batch: batches are filling,
  /// double max_batch (if the SLO has headroom).
  double occupancy_high = 0.85;
  /// Mean occupancy <= occupancy_low * max_batch: size flushes never fire,
  /// shrink max_batch to just above the observed occupancy.
  double occupancy_low = 0.35;
  /// Completed requests per tuning decision (the window length).
  std::uint64_t tune_every = 64;
};

/// One shard worker's observation window since its last tuning decision.
/// Worker-local (never locked): execute_batch records into it, the tuner
/// consumes and clears it.
struct TuneWindow {
  std::vector<double> latencies_us;  ///< submit-to-resolve, accepted reqs
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;

  void record_batch(const std::vector<double>& batch_latencies_us);
  void clear();
};

class SloAutotuner {
 public:
  /// Starts from `initial` (the server's configured BatchPolicy), so an
  /// autotuned shard behaves exactly like a static one until the first
  /// decision.
  SloAutotuner(std::chrono::microseconds target_p99, AutotuneConfig config,
               BatchPolicy initial);

  const BatchPolicy& policy() const { return policy_; }
  const AutotuneConfig& config() const { return config_; }
  std::chrono::microseconds target_p99() const { return target_; }
  /// Decisions that changed the policy (exported via ShardStats).
  std::uint64_t updates() const { return updates_; }

  /// True when the window holds enough completions for a decision.
  bool ready(const TuneWindow& window) const {
    return window.completed >= config_.tune_every;
  }

  /// Consumes the window (always cleared) and returns true iff the policy
  /// changed.  An empty window is a no-op.
  bool update(TuneWindow& window);

 private:
  std::chrono::microseconds target_;
  AutotuneConfig config_;
  BatchPolicy policy_;
  std::uint64_t updates_ = 0;
};

}  // namespace nitho::serve
