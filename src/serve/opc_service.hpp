#pragma once
// OpcService: mask-optimization jobs as a second request class next to the
// fast aerial queries (DESIGN.md §10).
//
// An OPC job is minutes of gradient descent, not microseconds of FFT — it
// cannot ride the shard queues, whose admission control is built around
// per-request deadlines.  Instead a single background worker runs jobs
// from its own queue on an opc::OpcEngine:
//
//   * submit() captures the server's kernel snapshot at submit time (the
//     same capture-at-submit rule aerial requests follow) and returns a
//     handle: a poll-able progress struct (iteration, fit loss, EPE) plus
//     a shared_future for the final result.
//   * Jobs yield to latency traffic: between optimizer steps the worker
//     checks the server's queues and backs off (bounded by
//     OpcJobOptions::max_yield) while latency-SLO requests are waiting,
//     so a long job never starves the aerial path of CPU at step
//     granularity.
//   * Jobs are resumable: cancel(), stop() or a server shutdown resolve
//     the future with the engine's checkpoint at the last completed
//     iteration (completed = false); resume() continues bit-identically
//     toward the same iteration target, even on another server.
//   * stop() resolves every accepted future (shutdown never breaks a
//     promise) — jobs that never started return completed = false with an
//     empty checkpoint (batch == 0).

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <future>
#include <limits>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "math/cplx.hpp"
#include "math/grid.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "opc/engine.hpp"

namespace nitho::serve {

struct OpcJobOptions {
  /// Engine configuration for fresh jobs; a resumed job keeps its
  /// checkpoint's config instead.
  opc::OpcConfig config;
  /// Absolute iteration target: a fresh job runs this many steps, a
  /// resumed job continues from its checkpoint to the same total — which
  /// is what makes stop-at-50 / resume-to-100 land exactly where an
  /// uninterrupted 100-step run does.
  long iterations = 100;
  /// Evaluate EPE into the progress struct every this many steps (and at
  /// completion); 0 disables the extra forward passes.
  int epe_every = 25;
  /// Upper bound on how long one step may be delayed while yielding to
  /// queued latency traffic.
  std::chrono::microseconds max_yield{2000};
};

struct OpcJobProgress {
  long iteration = 0;
  long total = 0;
  /// Mean per-mask imaging loss after the last step; NaN before the first.
  float fit_loss = std::numeric_limits<float>::quiet_NaN();
  /// Mean edge-placement error at the last epe_every evaluation; NaN until
  /// one ran.
  double mean_epe_px = std::numeric_limits<double>::quiet_NaN();
  bool done = false;       ///< the result future is resolved
  bool cancelled = false;  ///< done via cancel()/stop(), not completion
};

struct OpcJobResult {
  /// Continuous masks at the last completed iteration (empty when the job
  /// never started).
  std::vector<Grid<double>> masks;
  /// Resumable state at the last completed iteration; batch == 0 when the
  /// job never started (resubmit the original request instead).
  opc::OpcCheckpoint checkpoint;
  long iterations_done = 0;
  /// True iff the iteration target was reached.
  bool completed = false;
};

namespace detail {
struct OpcJobState {
  mutable Mutex mu;
  OpcJobProgress progress NITHO_GUARDED_BY(mu);
  std::atomic<bool> cancel{false};
  /// Resolved exactly once, by the worker (or stop() for never-started
  /// jobs) — single-resolver discipline, not a lock, is what keeps the
  /// promise safe.
  std::promise<OpcJobResult> promise;
  std::shared_future<OpcJobResult> future;
};
}  // namespace detail

class OpcJobHandle {
 public:
  OpcJobHandle() = default;

  bool valid() const { return state_ != nullptr; }
  OpcJobProgress progress() const;
  std::shared_future<OpcJobResult> result() const { return state_->future; }
  /// Requests a stop after the current step; the result future then
  /// resolves with the resumable partial state.  Idempotent.
  void cancel();

 private:
  friend class OpcService;
  explicit OpcJobHandle(std::shared_ptr<detail::OpcJobState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::OpcJobState> state_;
};

class OpcService {
 public:
  using KernelSnapshot = std::shared_ptr<const std::vector<Grid<cd>>>;
  /// True while latency traffic is waiting (the server's queue-depth
  /// probe); null = never yield.
  using BusyFn = std::function<bool()>;

  /// Observability sinks are borrowed (must outlive the service) and bound
  /// at construction — before the worker thread starts, so no publication
  /// race.  With them null the service runs exactly as before.  Job
  /// progress publishes as "opc.*" gauges; sampled per-step spans land on
  /// tracer track `track` (DESIGN.md §12.3).
  explicit OpcService(BusyFn busy, obs::MetricsRegistry* registry = nullptr,
                      obs::Tracer* tracer = nullptr, std::uint32_t track = 0);
  ~OpcService();
  OpcService(const OpcService&) = delete;
  OpcService& operator=(const OpcService&) = delete;

  OpcJobHandle submit(KernelSnapshot kernels,
                      std::vector<Grid<double>> intended, OpcJobOptions opts);
  OpcJobHandle resume(KernelSnapshot kernels, opc::OpcCheckpoint checkpoint,
                      OpcJobOptions opts);

  /// Interrupts the running job after its current step, resolves every
  /// accepted future and joins the worker.  Idempotent.
  void stop();

 private:
  struct Job {
    KernelSnapshot kernels;
    std::vector<Grid<double>> intended;          ///< fresh jobs
    std::optional<opc::OpcCheckpoint> checkpoint;  ///< resumed jobs
    OpcJobOptions opts;
    std::shared_ptr<detail::OpcJobState> state;
  };

  OpcJobHandle enqueue(Job job);
  void worker_loop();
  void run_job(Job& job);
  void throttle(const OpcJobOptions& opts) const;

  BusyFn busy_;
  obs::MetricsRegistry* registry_ = nullptr;  ///< borrowed; may be null
  obs::Tracer* tracer_ = nullptr;             ///< borrowed; may be null
  std::uint32_t track_ = 0;
  std::atomic<bool> stop_{false};
  mutable Mutex mu_;
  CondVar cv_;
  std::deque<Job> queue_ NITHO_GUARDED_BY(mu_);
  bool stopped_ NITHO_GUARDED_BY(mu_) = false;
  std::thread worker_;
};

}  // namespace nitho::serve
