#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/check.hpp"
#include "metrics/metrics.hpp"

namespace nitho::serve {

using Clock = std::chrono::steady_clock;

std::size_t percentile_index(std::size_t n, int percent) {
  check(n >= 1, "percentile_index: empty sample");
  check(percent >= 1 && percent <= 100, "percentile_index: percent range");
  // ceil((percent/100) * n) - 1 without touching floating point: a double
  // product like 0.99 * 100 rounds up to 99.000...014, whose ceil would
  // skip one rank.
  const std::size_t p = static_cast<std::size_t>(percent);
  return (p * n + 99) / 100 - 1;
}

std::string latency_str(double us, std::uint64_t samples) {
  if (samples == 0) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f us", us);
  return buf;
}

/// One pinned worker: queue in front, batcher inside, private FastLitho.
struct LithoServer::Shard {
  explicit Shard(std::size_t queue_capacity) : queue(queue_capacity) {}

  RequestQueue queue;
  std::thread worker;

  /// Current kernel snapshot + its generation number; replaced wholesale
  /// (as a pair, under one lock) by swap_kernels.
  mutable std::mutex snap_mu;
  std::shared_ptr<const FastLitho> snapshot;
  std::uint64_t generation = 0;

  /// Current SLO policy (null = admission control off); replaced wholesale
  /// by swap_slo, exactly like the kernel snapshot.  The submit path reads
  /// it per request; the worker re-reads it per dequeue and rebuilds its
  /// autotuner when the pointer changes.
  mutable std::mutex slo_mu;
  std::shared_ptr<const SloPolicy> slo;

  /// Counters + a sliding latency window (ring buffer, so a long-lived
  /// server keeps O(1) stats memory).  submitted is atomic — it sits on
  /// the client-facing submit path, which must not contend on stats_mu
  /// with the worker's per-batch accounting.
  static constexpr std::size_t kLatencyWindow = 4096;
  std::atomic<std::uint64_t> submitted{0};
  mutable std::mutex stats_mu;
  std::uint64_t completed = 0;
  std::uint64_t completed_ok = 0;  ///< resolved with a value (goodput)
  std::uint64_t batches = 0;
  std::vector<double> latencies_us;
  std::size_t latency_next = 0;

  /// Admission-control accounting.  shed_at_submit sits on client threads,
  /// shed_in_queue on the worker; both are read by stats readers.
  std::atomic<std::uint64_t> shed_at_submit{0};
  std::atomic<std::uint64_t> shed_in_queue{0};
  /// EWMA of per-request service time (µs), written by the worker after
  /// each batch, read by the submit path's wait estimate.  0 until the
  /// first batch completes (the estimate then admits everything and the
  /// dequeue-time check backstops it).
  std::atomic<double> est_service_us{0.0};
  /// The worker's current flush policy + tuning decisions, published for
  /// stats readers.
  std::atomic<int> cur_max_batch{0};
  std::atomic<std::int64_t> cur_max_delay_us{0};
  std::atomic<std::uint64_t> tune_updates{0};
  Clock::time_point started_at{};

  std::shared_ptr<const FastLitho> current_snapshot() const {
    std::lock_guard<std::mutex> lk(snap_mu);
    return snapshot;
  }
  std::uint64_t current_generation() const {
    std::lock_guard<std::mutex> lk(snap_mu);
    return generation;
  }
  std::shared_ptr<const SloPolicy> current_slo() const {
    std::lock_guard<std::mutex> lk(slo_mu);
    return slo;
  }
};

LithoServer::LithoServer(FastLitho litho, ServeOptions options)
    : options_(options) {
  check(options_.shards >= 1, "LithoServer needs at least one shard");
  const auto kernels = litho.kernels_shared();
  const double threshold = litho.resist_threshold();
  const std::shared_ptr<const SloPolicy> slo =
      options_.slo ? std::make_shared<const SloPolicy>(*options_.slo)
                   : nullptr;
  for (int s = 0; s < options_.shards; ++s) {
    auto shard = std::make_unique<Shard>(options_.queue_capacity);
    // Shard 0 adopts the caller's instance (keeping any engines it has
    // already warmed); the rest share its kernels with fresh caches.
    shard->snapshot =
        s == 0 ? std::make_shared<const FastLitho>(std::move(litho))
               : std::make_shared<const FastLitho>(
                     FastLitho(kernels, threshold));
    shard->slo = slo;
    shard->cur_max_batch.store(options_.batch.max_batch,
                               std::memory_order_relaxed);
    shard->cur_max_delay_us.store(options_.batch.max_delay.count(),
                                  std::memory_order_relaxed);
    shard->started_at = Clock::now();
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    Shard* sh = shard.get();
    sh->worker = std::thread([this, sh] { shard_loop(*sh); });
  }
  // OPC jobs yield whenever any shard has latency traffic queued.  The
  // probe reads queue depths only — shards_ is immutable after this
  // constructor and outlives opc_ (stop() tears the service down first).
  opc_ = std::make_unique<OpcService>([this] {
    for (const auto& shard : shards_) {
      if (shard->queue.depth() > 0) return true;
    }
    return false;
  });
}

LithoServer::~LithoServer() { stop(); }

int LithoServer::shard_of(int out_px) const {
  if (options_.route == RouteMode::kRoundRobin) return -1;  // any shard
  // Fibonacci hash of out_px: neighbouring resolutions land on different
  // shards even when the shard count is a power of two.
  const std::uint64_t h =
      static_cast<std::uint64_t>(out_px) * 0x9E3779B97F4A7C15ull;
  return static_cast<int>((h >> 32) % static_cast<std::uint64_t>(shards()));
}

LithoServer::Shard& LithoServer::route(int out_px) {
  int s = shard_of(out_px);
  if (s < 0) {
    s = static_cast<int>(round_robin_.fetch_add(1, std::memory_order_relaxed) %
                         static_cast<std::uint64_t>(shards()));
  }
  return *shards_[static_cast<std::size_t>(s)];
}

ServeRequest LithoServer::make_request(
    Shard& shard, Grid<double>& mask, int out_px, RequestKind kind,
    std::chrono::steady_clock::time_point deadline) const {
  // Validate before touching the caller's mask, so a rejected submission
  // (empty mask, out_px under the current snapshot's kernel support —
  // reachable when a hot-swap races a submit) leaves it intact.
  check(!mask.empty(), "submit: empty mask");
  auto snapshot = shard.current_snapshot();  // never null, even after stop()
  check(out_px >= snapshot->kernel_dim(),
        "submit: out_px smaller than the kernel support");
  ServeRequest req;
  req.kind = kind;
  req.mask = std::move(mask);
  req.out_px = out_px;
  req.litho = std::move(snapshot);
  req.enqueued_at = Clock::now();
  req.deadline = deadline;
  if (req.deadline == kNoDeadline) {
    // No explicit deadline: the shard's SLO policy supplies the default
    // (and without a policy the request keeps kNoDeadline — PR 3 behavior).
    if (const auto slo = shard.current_slo()) {
      req.deadline = req.enqueued_at + slo->max_queue_wait;
    }
  }
  return req;
}

bool LithoServer::shed_at_submit(Shard& shard, ServeRequest& req) {
  if (req.deadline == kNoDeadline) return false;
  // Estimated wait: everything already queued, served at the worker's
  // recent per-request pace.  Deliberately rough — it only has to reject
  // requests that are clearly doomed; the dequeue-time check in
  // MicroBatcher::add catches the rest.
  const double est_us = shard.est_service_us.load(std::memory_order_relaxed) *
                        static_cast<double>(shard.queue.depth());
  const auto eta =
      req.enqueued_at + std::chrono::microseconds(std::llround(est_us));
  if (eta <= req.deadline) return false;
  // Built once: overload means this fires per rejected request, and an
  // exception_ptr construction costs a throw/catch on this toolchain.
  static const std::exception_ptr kShedAtSubmit =
      std::make_exception_ptr(DeadlineExceeded(
          "litho request shed at submit: estimated queue wait exceeds "
          "deadline"));
  req.result.set_exception(kShedAtSubmit);
  shard.shed_at_submit.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::future<Grid<double>> LithoServer::submit(
    Grid<double> mask, int out_px, RequestKind kind,
    std::chrono::steady_clock::time_point deadline) {
  Shard& shard = route(out_px);
  ServeRequest req = make_request(shard, mask, out_px, kind, deadline);
  std::future<Grid<double>> fut = req.result.get_future();
  // A shed is an answer (DeadlineExceeded), not backpressure: the future
  // is already resolved and the request never occupies a queue slot.
  if (shed_at_submit(shard, req)) return fut;
  // Count before push so a stats reader can never observe a completed
  // request that is not yet in submitted; roll back if the queue refuses.
  shard.submitted.fetch_add(1, std::memory_order_relaxed);
  if (!shard.queue.push(req)) {
    shard.submitted.fetch_sub(1, std::memory_order_relaxed);
    check_fail("submit on a stopped server", std::source_location::current());
  }
  return fut;
}

std::optional<std::future<Grid<double>>> LithoServer::try_submit(
    Grid<double>& mask, int out_px, RequestKind kind,
    std::chrono::steady_clock::time_point deadline) {
  Shard& shard = route(out_px);
  ServeRequest req = make_request(shard, mask, out_px, kind, deadline);
  std::future<Grid<double>> fut = req.result.get_future();
  if (shed_at_submit(shard, req)) return fut;
  shard.submitted.fetch_add(1, std::memory_order_relaxed);
  switch (shard.queue.try_push(req)) {
    case RequestQueue::PushResult::kOk:
      return fut;
    case RequestQueue::PushResult::kFull:
      shard.submitted.fetch_sub(1, std::memory_order_relaxed);
      mask = std::move(req.mask);  // hand the mask back on rejection
      return std::nullopt;
    case RequestQueue::PushResult::kClosed:
      break;
  }
  shard.submitted.fetch_sub(1, std::memory_order_relaxed);
  mask = std::move(req.mask);
  // A full queue is the caller's load-shedding signal; a stopped server
  // is not retryable and must not masquerade as backpressure.
  check_fail("submit on a stopped server", std::source_location::current());
}

OpcJobHandle LithoServer::submit_opc(std::vector<Grid<double>> intended,
                                     OpcJobOptions opts) {
  const std::shared_ptr<const FastLitho> snap = snapshot(0);
  // The job evaluates EPE against the same print threshold the server's
  // resist requests use.
  opts.config.resist_threshold = snap->resist_threshold();
  return opc_->submit(snap->kernels_shared(), std::move(intended), opts);
}

OpcJobHandle LithoServer::resume_opc(opc::OpcCheckpoint checkpoint,
                                     OpcJobOptions opts) {
  return opc_->resume(snapshot(0)->kernels_shared(), std::move(checkpoint),
                      opts);
}

std::uint64_t LithoServer::swap_kernels(FastLitho fresh) {
  const auto kernels = fresh.kernels_shared();
  const double threshold = fresh.resist_threshold();
  // One generation per publish, serialized across concurrent swappers.
  const std::uint64_t gen =
      1 + generation_.fetch_add(1, std::memory_order_relaxed);
  for (auto& shard : shards_) {
    auto snap = std::make_shared<const FastLitho>(FastLitho(kernels, threshold));
    std::lock_guard<std::mutex> lk(shard->snap_mu);
    shard->snapshot = std::move(snap);
    shard->generation = gen;
  }
  return gen;
}

void LithoServer::swap_slo(std::optional<SloPolicy> slo) {
  const std::shared_ptr<const SloPolicy> snap =
      slo ? std::make_shared<const SloPolicy>(*slo) : nullptr;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lk(shard->slo_mu);
    shard->slo = snap;
  }
}

std::shared_ptr<const FastLitho> LithoServer::snapshot(int shard) const {
  check(shard >= 0 && shard < shards(), "snapshot: shard out of range");
  return shards_[static_cast<std::size_t>(shard)]->current_snapshot();
}

std::uint64_t LithoServer::generation(int shard) const {
  check(shard >= 0 && shard < shards(), "generation: shard out of range");
  return shards_[static_cast<std::size_t>(shard)]->current_generation();
}

std::shared_ptr<const SloPolicy> LithoServer::slo(int shard) const {
  check(shard >= 0 && shard < shards(), "slo: shard out of range");
  return shards_[static_cast<std::size_t>(shard)]->current_slo();
}

void LithoServer::stop() {
  std::lock_guard<std::mutex> lk(stop_mu_);
  if (stopped_) return;
  stopped_ = true;
  // OPC first: its worker probes shard queue depths between steps, and its
  // futures must resolve (with resumable checkpoints) before the shards
  // are torn down.
  if (opc_) opc_->stop();
  for (auto& shard : shards_) shard->queue.close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void LithoServer::shard_loop(Shard& shard) {
  MicroBatcher batcher(options_.batch);
  std::optional<SloAutotuner> tuner;
  TuneWindow window;
  std::shared_ptr<const SloPolicy> active;

  const auto publish_policy = [&] {
    shard.cur_max_batch.store(batcher.policy().max_batch,
                              std::memory_order_relaxed);
    shard.cur_max_delay_us.store(batcher.policy().max_delay.count(),
                                 std::memory_order_relaxed);
  };
  // (Re)build the tuning state for a freshly observed SLO policy.  The
  // batcher always restarts from the configured BatchPolicy so swapping a
  // policy in or out is deterministic, not a function of tuning history.
  const auto rebuild_slo = [&](std::shared_ptr<const SloPolicy> latest) {
    active = std::move(latest);
    tuner.reset();
    window.clear();
    batcher.set_policy(options_.batch);
    if (active && active->autotune) {
      tuner.emplace(active->target_p99, active->tuner, options_.batch);
      batcher.set_policy(tuner->policy());  // clamped into tuner bounds
    }
    publish_policy();
  };
  const auto maybe_tune = [&] {
    if (!tuner || !tuner->ready(window)) return;
    if (tuner->update(window)) {
      batcher.set_policy(tuner->policy());
      shard.tune_updates.fetch_add(1, std::memory_order_relaxed);
      publish_policy();
    }
  };
  // Queue sheds count as completed (a resolved future must be visible in
  // the stats), but never as goodput.  Account-then-resolve, like served
  // batches: completed (mutex) before shed_in_queue (atomic) before the
  // futures fail, so a client that has seen DeadlineExceeded also sees it
  // counted, and readers never see shed_in_queue > completed (their
  // occupancy subtraction must not underflow).
  const auto account_queue_sheds = [&] {
    std::vector<ServeRequest> shed = batcher.take_shed();
    if (shed.empty()) return;
    {
      std::lock_guard<std::mutex> lk(shard.stats_mu);
      shard.completed += shed.size();
    }
    shard.shed_in_queue.fetch_add(shed.size(), std::memory_order_release);
    // Built once: under overload this fires per expired request, and an
    // exception_ptr construction costs a throw/catch on this toolchain.
    static const std::exception_ptr kShedInQueue =
        std::make_exception_ptr(DeadlineExceeded(
            "litho request shed: deadline expired while queued"));
    for (ServeRequest& r : shed) r.result.set_exception(kShedInQueue);
  };

  rebuild_slo(shard.current_slo());
  for (;;) {
    if (auto latest = shard.current_slo(); latest != active) {
      rebuild_slo(std::move(latest));
    }
    ServeRequest req;
    const auto deadline = batcher.next_deadline();
    const RequestQueue::PopResult popped =
        deadline ? shard.queue.pop_until(req, *deadline)
                 : shard.queue.pop(req);
    TuneWindow* const w = tuner ? &window : nullptr;
    if (popped == RequestQueue::PopResult::kItem) {
      if (auto full = batcher.add(std::move(req), Clock::now())) {
        execute_batch(shard, std::move(*full), w);
      }
      account_queue_sheds();
    }
    // Deadline-triggered partial batches (also sweeps buckets that expired
    // while a size-triggered flush was executing).
    while (auto expired = batcher.poll(Clock::now())) {
      execute_batch(shard, std::move(*expired), w);
    }
    maybe_tune();
    if (popped == RequestQueue::PopResult::kClosed) {
      // Queue drained and closed: flush what the batcher still holds so
      // every accepted future resolves, then retire the worker.
      for (Batch& b : batcher.drain()) {
        execute_batch(shard, std::move(b), nullptr);
      }
      return;
    }
  }
}

void LithoServer::execute_batch(Shard& shard, Batch batch,
                                TuneWindow* window) {
  const auto t0 = Clock::now();
  std::vector<const Grid<double>*> masks;
  masks.reserve(batch.requests.size());
  for (const ServeRequest& r : batch.requests) masks.push_back(&r.mask);
  std::vector<Grid<double>> aerials;
  std::exception_ptr err;
  try {
    aerials = batch.litho->aerial_batch(masks, batch.out_px);
  } catch (...) {
    // A failed sweep (e.g. a mask/out_px combination the engine rejects)
    // fails every request in the batch instead of wedging their futures.
    err = std::current_exception();
  }
  // Account first, then resolve: a client that has seen its future resolve
  // must also see it counted in completed.  Latencies are computed outside
  // the lock; only the ring-buffer append holds stats_mu.
  const auto now = Clock::now();
  std::vector<double> batch_latencies_us;
  batch_latencies_us.reserve(batch.requests.size());
  for (const ServeRequest& r : batch.requests) {
    batch_latencies_us.push_back(
        std::chrono::duration<double, std::micro>(now - r.enqueued_at)
            .count());
  }
  // Feed the submit-path wait estimate: per-request share of this batch's
  // wall time, EWMA-smoothed (worker-written, client-read).
  {
    const double per_req_us =
        std::chrono::duration<double, std::micro>(now - t0).count() /
        static_cast<double>(batch.requests.size());
    const double prev =
        shard.est_service_us.load(std::memory_order_relaxed);
    shard.est_service_us.store(
        prev == 0.0 ? per_req_us : 0.8 * prev + 0.2 * per_req_us,
        std::memory_order_relaxed);
  }
  if (window != nullptr) window->record_batch(batch_latencies_us);
  {
    std::lock_guard<std::mutex> lk(shard.stats_mu);
    shard.completed += batch.requests.size();
    if (!err) shard.completed_ok += batch.requests.size();
    ++shard.batches;
    for (const double us : batch_latencies_us) {
      if (shard.latencies_us.size() < Shard::kLatencyWindow) {
        shard.latencies_us.push_back(us);
      } else {
        shard.latencies_us[shard.latency_next] = us;
        shard.latency_next = (shard.latency_next + 1) % Shard::kLatencyWindow;
      }
    }
  }
  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    ServeRequest& r = batch.requests[i];
    if (err) {
      r.result.set_exception(err);
    } else if (r.kind == RequestKind::kResist) {
      r.result.set_value(binarize(aerials[i], batch.litho->resist_threshold()));
    } else {
      r.result.set_value(std::move(aerials[i]));
    }
  }
}

namespace {

void fill_percentiles(std::vector<double> latencies, ShardStats& st) {
  st.latency_samples = latencies.size();
  if (latencies.empty()) return;  // keep the NaN sentinels: no data != 0 µs
  std::sort(latencies.begin(), latencies.end());
  const std::size_t n = latencies.size();
  st.p50_latency_us = latencies[percentile_index(n, 50)];
  st.p99_latency_us = latencies[percentile_index(n, 99)];
}

double uptime_seconds(Clock::time_point started_at) {
  return std::chrono::duration<double>(Clock::now() - started_at).count();
}

}  // namespace

ShardStats LithoServer::shard_stats(int shard) const {
  check(shard >= 0 && shard < shards(), "shard_stats: shard out of range");
  const Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  ShardStats st;
  std::vector<double> latencies;
  std::uint64_t completed_ok = 0;
  // Read shed_in_queue before completed: the worker bumps completed first,
  // so this order keeps shed_in_queue <= completed for readers (the
  // occupancy subtraction below must not underflow).
  st.shed.shed_in_queue = sh.shed_in_queue.load(std::memory_order_acquire);
  st.shed.shed_at_submit = sh.shed_at_submit.load(std::memory_order_acquire);
  {
    std::lock_guard<std::mutex> lk(sh.stats_mu);
    st.completed = sh.completed;
    completed_ok = sh.completed_ok;
    st.batches = sh.batches;
    latencies = sh.latencies_us;
  }
  // Read submitted after completed: every completion happens-after its own
  // submission count, so this order keeps completed <= submitted for
  // readers.
  st.submitted = sh.submitted.load(std::memory_order_acquire);
  st.queue_depth = sh.queue.depth();
  st.shed.accepted = st.submitted;
  // Occupancy counts only batch-served requests: queue sheds resolve
  // without a batch.
  const std::uint64_t batch_served = st.completed - st.shed.shed_in_queue;
  st.mean_batch_occupancy =
      st.batches == 0 ? 0.0
                      : static_cast<double>(batch_served) /
                            static_cast<double>(st.batches);
  const double up = uptime_seconds(sh.started_at);
  st.shed.goodput_rps = up > 0.0 ? static_cast<double>(completed_ok) / up : 0.0;
  st.max_batch = sh.cur_max_batch.load(std::memory_order_relaxed);
  st.max_delay_us = static_cast<double>(
      sh.cur_max_delay_us.load(std::memory_order_relaxed));
  st.autotune_updates = sh.tune_updates.load(std::memory_order_relaxed);
  st.est_service_us = sh.est_service_us.load(std::memory_order_relaxed);
  st.kernel_generation = sh.current_generation();
  fill_percentiles(std::move(latencies), st);
  return st;
}

ShardStats LithoServer::stats() const {
  ShardStats total;
  std::vector<double> latencies;
  std::uint64_t completed_ok = 0;
  double earliest_start = 0.0;
  for (int s = 0; s < shards(); ++s) {
    const Shard& sh = *shards_[static_cast<std::size_t>(s)];
    // Shed before completed, as in shard_stats: keeps the per-shard
    // shed_in_queue <= completed ordering for the occupancy subtraction.
    total.shed.shed_in_queue +=
        sh.shed_in_queue.load(std::memory_order_acquire);
    total.shed.shed_at_submit +=
        sh.shed_at_submit.load(std::memory_order_acquire);
    {
      std::lock_guard<std::mutex> lk(sh.stats_mu);
      total.completed += sh.completed;
      completed_ok += sh.completed_ok;
      total.batches += sh.batches;
      latencies.insert(latencies.end(), sh.latencies_us.begin(),
                       sh.latencies_us.end());
    }
    // After completed, as in shard_stats: keeps completed <= submitted.
    total.submitted += sh.submitted.load(std::memory_order_acquire);
    earliest_start = std::max(earliest_start, uptime_seconds(sh.started_at));
    // Policy/estimate fields have no single aggregate value; report the
    // widest currently in force so dashboards see how far tuning has
    // reached.
    total.est_service_us =
        std::max(total.est_service_us,
                 sh.est_service_us.load(std::memory_order_relaxed));
    total.max_batch = std::max(
        total.max_batch, sh.cur_max_batch.load(std::memory_order_relaxed));
    total.max_delay_us =
        std::max(total.max_delay_us,
                 static_cast<double>(
                     sh.cur_max_delay_us.load(std::memory_order_relaxed)));
    total.autotune_updates +=
        sh.tune_updates.load(std::memory_order_relaxed);
    // Swaps publish shard 0 first, so the max is the newest generation any
    // shard could hand to a submit right now.
    total.kernel_generation =
        std::max(total.kernel_generation, sh.current_generation());
  }
  for (int s = 0; s < shards(); ++s) {
    total.queue_depth += shards_[static_cast<std::size_t>(s)]->queue.depth();
  }
  const std::uint64_t batch_served =
      total.completed - total.shed.shed_in_queue;
  total.mean_batch_occupancy =
      total.batches == 0 ? 0.0
                         : static_cast<double>(batch_served) /
                               static_cast<double>(total.batches);
  total.shed.accepted = total.submitted;
  total.shed.goodput_rps =
      earliest_start > 0.0 ? static_cast<double>(completed_ok) / earliest_start
                           : 0.0;
  fill_percentiles(std::move(latencies), total);
  return total;
}

}  // namespace nitho::serve
