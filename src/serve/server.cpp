#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.hpp"
#include "metrics/metrics.hpp"

namespace nitho::serve {

using Clock = std::chrono::steady_clock;

/// One pinned worker: queue in front, batcher inside, private FastLitho.
struct LithoServer::Shard {
  explicit Shard(std::size_t queue_capacity) : queue(queue_capacity) {}

  RequestQueue queue;
  std::thread worker;

  /// Current kernel snapshot; replaced wholesale by swap_kernels.
  mutable std::mutex snap_mu;
  std::shared_ptr<const FastLitho> snapshot;

  /// Counters + a sliding latency window (ring buffer, so a long-lived
  /// server keeps O(1) stats memory).  submitted is atomic — it sits on
  /// the client-facing submit path, which must not contend on stats_mu
  /// with the worker's per-batch accounting.
  static constexpr std::size_t kLatencyWindow = 4096;
  std::atomic<std::uint64_t> submitted{0};
  mutable std::mutex stats_mu;
  std::uint64_t completed = 0;
  std::uint64_t batches = 0;
  std::vector<double> latencies_us;
  std::size_t latency_next = 0;

  std::shared_ptr<const FastLitho> current_snapshot() const {
    std::lock_guard<std::mutex> lk(snap_mu);
    return snapshot;
  }
};

LithoServer::LithoServer(FastLitho litho, ServeOptions options)
    : options_(options) {
  check(options_.shards >= 1, "LithoServer needs at least one shard");
  const auto kernels = litho.kernels_shared();
  const double threshold = litho.resist_threshold();
  for (int s = 0; s < options_.shards; ++s) {
    auto shard = std::make_unique<Shard>(options_.queue_capacity);
    // Shard 0 adopts the caller's instance (keeping any engines it has
    // already warmed); the rest share its kernels with fresh caches.
    shard->snapshot =
        s == 0 ? std::make_shared<const FastLitho>(std::move(litho))
               : std::make_shared<const FastLitho>(
                     FastLitho(kernels, threshold));
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    Shard* sh = shard.get();
    sh->worker = std::thread([this, sh] { shard_loop(*sh); });
  }
}

LithoServer::~LithoServer() { stop(); }

int LithoServer::shard_of(int out_px) const {
  if (options_.route == RouteMode::kRoundRobin) return -1;  // any shard
  // Fibonacci hash of out_px: neighbouring resolutions land on different
  // shards even when the shard count is a power of two.
  const std::uint64_t h =
      static_cast<std::uint64_t>(out_px) * 0x9E3779B97F4A7C15ull;
  return static_cast<int>((h >> 32) % static_cast<std::uint64_t>(shards()));
}

LithoServer::Shard& LithoServer::route(int out_px) {
  int s = shard_of(out_px);
  if (s < 0) {
    s = static_cast<int>(round_robin_.fetch_add(1, std::memory_order_relaxed) %
                         static_cast<std::uint64_t>(shards()));
  }
  return *shards_[static_cast<std::size_t>(s)];
}

ServeRequest LithoServer::make_request(Shard& shard, Grid<double>& mask,
                                       int out_px, RequestKind kind) const {
  // Validate before touching the caller's mask, so a rejected submission
  // (empty mask, out_px under the current snapshot's kernel support —
  // reachable when a hot-swap races a submit) leaves it intact.
  check(!mask.empty(), "submit: empty mask");
  auto snapshot = shard.current_snapshot();  // never null, even after stop()
  check(out_px >= snapshot->kernel_dim(),
        "submit: out_px smaller than the kernel support");
  ServeRequest req;
  req.kind = kind;
  req.mask = std::move(mask);
  req.out_px = out_px;
  req.litho = std::move(snapshot);
  req.enqueued_at = Clock::now();
  return req;
}

std::future<Grid<double>> LithoServer::submit(Grid<double> mask, int out_px,
                                              RequestKind kind) {
  Shard& shard = route(out_px);
  ServeRequest req = make_request(shard, mask, out_px, kind);
  std::future<Grid<double>> fut = req.result.get_future();
  // Count before push so a stats reader can never observe a completed
  // request that is not yet in submitted; roll back if the queue refuses.
  shard.submitted.fetch_add(1, std::memory_order_relaxed);
  if (!shard.queue.push(req)) {
    shard.submitted.fetch_sub(1, std::memory_order_relaxed);
    check_fail("submit on a stopped server", std::source_location::current());
  }
  return fut;
}

std::optional<std::future<Grid<double>>> LithoServer::try_submit(
    Grid<double>& mask, int out_px, RequestKind kind) {
  Shard& shard = route(out_px);
  ServeRequest req = make_request(shard, mask, out_px, kind);
  std::future<Grid<double>> fut = req.result.get_future();
  shard.submitted.fetch_add(1, std::memory_order_relaxed);
  if (!shard.queue.try_push(req)) {
    shard.submitted.fetch_sub(1, std::memory_order_relaxed);
    mask = std::move(req.mask);  // hand the mask back on rejection
    // A full queue is the caller's load-shedding signal; a stopped server
    // is not retryable and must not masquerade as backpressure.
    check(!shard.queue.closed(), "submit on a stopped server");
    return std::nullopt;
  }
  return fut;
}

void LithoServer::swap_kernels(FastLitho fresh) {
  const auto kernels = fresh.kernels_shared();
  const double threshold = fresh.resist_threshold();
  for (auto& shard : shards_) {
    auto snap = std::make_shared<const FastLitho>(FastLitho(kernels, threshold));
    std::lock_guard<std::mutex> lk(shard->snap_mu);
    shard->snapshot = std::move(snap);
  }
}

std::shared_ptr<const FastLitho> LithoServer::snapshot(int shard) const {
  check(shard >= 0 && shard < shards(), "snapshot: shard out of range");
  return shards_[static_cast<std::size_t>(shard)]->current_snapshot();
}

void LithoServer::stop() {
  std::lock_guard<std::mutex> lk(stop_mu_);
  if (stopped_) return;
  stopped_ = true;
  for (auto& shard : shards_) shard->queue.close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void LithoServer::shard_loop(Shard& shard) {
  MicroBatcher batcher(options_.batch);
  for (;;) {
    ServeRequest req;
    const auto deadline = batcher.next_deadline();
    const RequestQueue::PopResult popped =
        deadline ? shard.queue.pop_until(req, *deadline)
                 : shard.queue.pop(req);
    if (popped == RequestQueue::PopResult::kItem) {
      if (auto full = batcher.add(std::move(req), Clock::now())) {
        execute_batch(shard, std::move(*full));
      }
    }
    // Deadline-triggered partial batches (also sweeps buckets that expired
    // while a size-triggered flush was executing).
    while (auto expired = batcher.poll(Clock::now())) {
      execute_batch(shard, std::move(*expired));
    }
    if (popped == RequestQueue::PopResult::kClosed) {
      // Queue drained and closed: flush what the batcher still holds so
      // every accepted future resolves, then retire the worker.
      for (Batch& b : batcher.drain()) execute_batch(shard, std::move(b));
      return;
    }
  }
}

void LithoServer::execute_batch(Shard& shard, Batch batch) {
  std::vector<const Grid<double>*> masks;
  masks.reserve(batch.requests.size());
  for (const ServeRequest& r : batch.requests) masks.push_back(&r.mask);
  std::vector<Grid<double>> aerials;
  std::exception_ptr err;
  try {
    aerials = batch.litho->aerial_batch(masks, batch.out_px);
  } catch (...) {
    // A failed sweep (e.g. a mask/out_px combination the engine rejects)
    // fails every request in the batch instead of wedging their futures.
    err = std::current_exception();
  }
  // Account first, then resolve: a client that has seen its future resolve
  // must also see it counted in completed.  Latencies are computed outside
  // the lock; only the ring-buffer append holds stats_mu.
  const auto now = Clock::now();
  std::vector<double> batch_latencies_us;
  batch_latencies_us.reserve(batch.requests.size());
  for (const ServeRequest& r : batch.requests) {
    batch_latencies_us.push_back(
        std::chrono::duration<double, std::micro>(now - r.enqueued_at)
            .count());
  }
  {
    std::lock_guard<std::mutex> lk(shard.stats_mu);
    shard.completed += batch.requests.size();
    ++shard.batches;
    for (const double us : batch_latencies_us) {
      if (shard.latencies_us.size() < Shard::kLatencyWindow) {
        shard.latencies_us.push_back(us);
      } else {
        shard.latencies_us[shard.latency_next] = us;
        shard.latency_next = (shard.latency_next + 1) % Shard::kLatencyWindow;
      }
    }
  }
  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    ServeRequest& r = batch.requests[i];
    if (err) {
      r.result.set_exception(err);
    } else if (r.kind == RequestKind::kResist) {
      r.result.set_value(binarize(aerials[i], batch.litho->resist_threshold()));
    } else {
      r.result.set_value(std::move(aerials[i]));
    }
  }
}

namespace {

void fill_percentiles(std::vector<double> latencies, ShardStats& st) {
  if (latencies.empty()) return;
  std::sort(latencies.begin(), latencies.end());
  const std::size_t n = latencies.size();
  st.p50_latency_us = latencies[(n - 1) / 2];
  st.p99_latency_us = latencies[(99 * (n - 1)) / 100];
}

}  // namespace

ShardStats LithoServer::shard_stats(int shard) const {
  check(shard >= 0 && shard < shards(), "shard_stats: shard out of range");
  const Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  ShardStats st;
  std::vector<double> latencies;
  {
    std::lock_guard<std::mutex> lk(sh.stats_mu);
    st.completed = sh.completed;
    st.batches = sh.batches;
    latencies = sh.latencies_us;
  }
  // Read submitted after completed: every completion happens-after its own
  // submission count, so this order keeps completed <= submitted for
  // readers.
  st.submitted = sh.submitted.load(std::memory_order_acquire);
  st.queue_depth = sh.queue.depth();
  st.mean_batch_occupancy =
      st.batches == 0
          ? 0.0
          : static_cast<double>(st.completed) / static_cast<double>(st.batches);
  fill_percentiles(std::move(latencies), st);
  return st;
}

ShardStats LithoServer::stats() const {
  ShardStats total;
  std::vector<double> latencies;
  for (int s = 0; s < shards(); ++s) {
    const Shard& sh = *shards_[static_cast<std::size_t>(s)];
    {
      std::lock_guard<std::mutex> lk(sh.stats_mu);
      total.completed += sh.completed;
      total.batches += sh.batches;
      latencies.insert(latencies.end(), sh.latencies_us.begin(),
                       sh.latencies_us.end());
    }
    // After completed, as in shard_stats: keeps completed <= submitted.
    total.submitted += sh.submitted.load(std::memory_order_acquire);
  }
  for (int s = 0; s < shards(); ++s) {
    total.queue_depth += shards_[static_cast<std::size_t>(s)]->queue.depth();
  }
  total.mean_batch_occupancy =
      total.batches == 0 ? 0.0
                         : static_cast<double>(total.completed) /
                               static_cast<double>(total.batches);
  fill_percentiles(std::move(latencies), total);
  return total;
}

}  // namespace nitho::serve
