#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/check.hpp"
#include "common/simd.hpp"
#include "metrics/metrics.hpp"

namespace nitho::serve {

using Clock = std::chrono::steady_clock;

std::size_t percentile_index(std::size_t n, int percent) {
  // One rank rule for the whole system: the exact small-window path here
  // and obs::HistogramSnapshot::quantile share this definition, so the
  // switchover between them (Shard::kExactWindow) changes resolution, not
  // rank semantics.
  return obs::nearest_rank_index(n, percent);
}

std::string latency_str(double us, std::uint64_t samples) {
  if (samples == 0) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f us", us);
  return buf;
}

/// One pinned worker: queue in front, batcher inside, private FastLitho.
struct LithoServer::Shard {
  explicit Shard(std::size_t queue_capacity) : queue(queue_capacity) {}

  RequestQueue queue;
  std::thread worker;

  /// Current kernel snapshot + its generation number; replaced wholesale
  /// (as a pair, under one lock) by swap_kernels.
  mutable Mutex snap_mu;
  std::shared_ptr<const FastLitho> snapshot NITHO_GUARDED_BY(snap_mu);
  std::uint64_t generation NITHO_GUARDED_BY(snap_mu) = 0;

  /// Current SLO policy (null = admission control off); replaced wholesale
  /// by swap_slo, exactly like the kernel snapshot.  The submit path reads
  /// it per request; the worker re-reads it per dequeue and rebuilds its
  /// autotuner when the pointer changes.
  mutable Mutex slo_mu;
  std::shared_ptr<const SloPolicy> slo NITHO_GUARDED_BY(slo_mu);

  /// Counters + latency accounting.  submitted is atomic — it sits on
  /// the client-facing submit path, which must not contend on stats_mu
  /// with the worker's per-batch accounting.
  ///
  /// Latencies live in two places (DESIGN.md §12.2): the first
  /// kExactWindow samples verbatim in exact_latencies (exact nearest-rank
  /// percentiles while the sample is tiny — the regime where one bucket's
  /// resolution would be visible), and every sample in the lifetime
  /// obs::LogHistogram behind `latency` (bounded-error percentiles at any
  /// scale, read without copying or sorting anything).  lat_count is the
  /// authoritative sample count; both it and exact_latencies are guarded
  /// by stats_mu, the histogram is lock-free.
  static constexpr std::size_t kExactWindow = 64;
  std::atomic<std::uint64_t> submitted{0};
  mutable Mutex stats_mu;
  std::uint64_t completed NITHO_GUARDED_BY(stats_mu) = 0;
  /// Resolved with a value (goodput).
  std::uint64_t completed_ok NITHO_GUARDED_BY(stats_mu) = 0;
  std::uint64_t batches NITHO_GUARDED_BY(stats_mu) = 0;
  std::uint64_t lat_count NITHO_GUARDED_BY(stats_mu) = 0;
  std::vector<double> exact_latencies NITHO_GUARDED_BY(stats_mu);

  /// Admission-control accounting.  shed_at_submit sits on client threads,
  /// shed_in_queue on the worker; both are read by stats readers.
  std::atomic<std::uint64_t> shed_at_submit{0};
  std::atomic<std::uint64_t> shed_in_queue{0};
  /// EWMA of per-request service time (µs), written by the worker after
  /// each batch, read by the submit path's wait estimate.  0 until the
  /// first batch completes (the estimate then admits everything and the
  /// dequeue-time check backstops it).
  std::atomic<double> est_service_us{0.0};
  /// The worker's current flush policy + tuning decisions, published for
  /// stats readers.
  std::atomic<int> cur_max_batch{0};
  std::atomic<std::int64_t> cur_max_delay_us{0};
  std::atomic<std::uint64_t> tune_updates{0};
  Clock::time_point started_at{};

  /// Registry mirrors, bound once by the server constructor (the registry
  /// name table is never touched per event).  The shard's own accounting
  /// above stays authoritative for ShardStats and its ordering invariants;
  /// these are relaxed, eventually-consistent copies for export.  The
  /// histogram is the exception: it is the percentile source once
  /// lat_count exceeds kExactWindow.
  std::uint32_t track = 0;  ///< tracer ring index == shard index
  obs::Counter* m_submitted = nullptr;
  obs::Counter* m_completed = nullptr;
  obs::Counter* m_completed_ok = nullptr;
  obs::Counter* m_batches = nullptr;
  obs::Counter* m_shed_at_submit = nullptr;
  obs::Counter* m_shed_in_queue = nullptr;
  obs::Gauge* m_est_service_us = nullptr;
  obs::LogHistogram* latency = nullptr;

  std::shared_ptr<const FastLitho> current_snapshot() const {
    LockGuard lk(snap_mu);
    return snapshot;
  }
  std::uint64_t current_generation() const {
    LockGuard lk(snap_mu);
    return generation;
  }
  std::shared_ptr<const SloPolicy> current_slo() const {
    LockGuard lk(slo_mu);
    return slo;
  }
};

LithoServer::LithoServer(FastLitho litho, ServeOptions options)
    : options_(options) {
  check(options_.shards >= 1, "LithoServer needs at least one shard");
  metrics_ = options_.metrics ? options_.metrics
                              : std::make_shared<obs::MetricsRegistry>();
  // Which SIMD arm the kernels dispatch to, so metric snapshots (and the
  // bench CSVs derived from them) record which arm produced each number.
  metrics_->gauge("simd_arm").set(static_cast<double>(simd::active_arm()));
  // Tracks 0..shards-1 belong to the shard workers, track `shards` to the
  // OPC worker — one writer per ring.
  tracer_ = std::make_unique<obs::Tracer>(
      options_.trace, static_cast<std::uint32_t>(options_.shards) + 1);
  const auto kernels = litho.kernels_shared();
  const double threshold = litho.resist_threshold();
  const std::shared_ptr<const SloPolicy> slo =
      options_.slo ? std::make_shared<const SloPolicy>(*options_.slo)
                   : nullptr;
  for (int s = 0; s < options_.shards; ++s) {
    auto shard = std::make_unique<Shard>(options_.queue_capacity);
    const std::string prefix = "serve.shard" + std::to_string(s) + ".";
    shard->track = static_cast<std::uint32_t>(s);
    shard->m_submitted = &metrics_->counter(prefix + "submitted");
    shard->m_completed = &metrics_->counter(prefix + "completed");
    shard->m_completed_ok = &metrics_->counter(prefix + "completed_ok");
    shard->m_batches = &metrics_->counter(prefix + "batches");
    shard->m_shed_at_submit = &metrics_->counter(prefix + "shed_at_submit");
    shard->m_shed_in_queue = &metrics_->counter(prefix + "shed_in_queue");
    shard->m_est_service_us = &metrics_->gauge(prefix + "est_service_us");
    shard->latency = &metrics_->histogram(prefix + "latency_us");
    // Shard 0 adopts the caller's instance (keeping any engines it has
    // already warmed); the rest share its kernels with fresh caches.  No
    // worker exists yet, but the guarded writes still take their (trivially
    // uncontended) locks — see common/mutex.hpp's protocol notes.
    {
      LockGuard lk(shard->snap_mu);
      shard->snapshot =
          s == 0 ? std::make_shared<const FastLitho>(std::move(litho))
                 : std::make_shared<const FastLitho>(
                       FastLitho(kernels, threshold));
    }
    {
      LockGuard lk(shard->slo_mu);
      shard->slo = slo;
    }
    shard->cur_max_batch.store(options_.batch.max_batch,
                               std::memory_order_relaxed);
    shard->cur_max_delay_us.store(options_.batch.max_delay.count(),
                                  std::memory_order_relaxed);
    shard->started_at = Clock::now();
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    Shard* sh = shard.get();
    sh->worker = std::thread([this, sh] { shard_loop(*sh); });
  }
  // OPC jobs yield whenever any shard has latency traffic queued.  The
  // probe reads queue depths only — shards_ is immutable after this
  // constructor and outlives opc_ (stop() tears the service down first).
  opc_ = std::make_unique<OpcService>(
      [this] {
        for (const auto& shard : shards_) {
          if (shard->queue.depth() > 0) return true;
        }
        return false;
      },
      metrics_.get(), tracer_.get(),
      static_cast<std::uint32_t>(options_.shards));
}

LithoServer::~LithoServer() { stop(); }

int LithoServer::shard_of(int out_px) const {
  if (options_.route == RouteMode::kRoundRobin) return -1;  // any shard
  // Fibonacci hash of out_px: neighbouring resolutions land on different
  // shards even when the shard count is a power of two.
  const std::uint64_t h =
      static_cast<std::uint64_t>(out_px) * 0x9E3779B97F4A7C15ull;
  return static_cast<int>((h >> 32) % static_cast<std::uint64_t>(shards()));
}

LithoServer::Shard& LithoServer::route(int out_px) {
  int s = shard_of(out_px);
  if (s < 0) {
    s = static_cast<int>(round_robin_.fetch_add(1, std::memory_order_relaxed) %
                         static_cast<std::uint64_t>(shards()));
  }
  return *shards_[static_cast<std::size_t>(s)];
}

ServeRequest LithoServer::make_request(
    Shard& shard, Grid<double>& mask, int out_px, RequestKind kind,
    std::chrono::steady_clock::time_point deadline) const {
  // Validate before touching the caller's mask, so a rejected submission
  // (empty mask, out_px under the current snapshot's kernel support —
  // reachable when a hot-swap races a submit) leaves it intact.
  check(!mask.empty(), "submit: empty mask");
  auto snapshot = shard.current_snapshot();  // never null, even after stop()
  check(out_px >= snapshot->kernel_dim(),
        "submit: out_px smaller than the kernel support");
  ServeRequest req;
  req.kind = kind;
  req.mask = std::move(mask);
  req.out_px = out_px;
  req.litho = std::move(snapshot);
  req.enqueued_at = Clock::now();
  req.deadline = deadline;
  if (req.deadline == kNoDeadline) {
    // No explicit deadline: the shard's SLO policy supplies the default
    // (and without a policy the request keeps kNoDeadline — PR 3 behavior).
    if (const auto slo = shard.current_slo()) {
      req.deadline = req.enqueued_at + slo->max_queue_wait;
    }
  }
  return req;
}

bool LithoServer::shed_at_submit(Shard& shard, ServeRequest& req) {
  if (req.deadline == kNoDeadline) return false;
  // Estimated wait: everything already queued, served at the worker's
  // recent per-request pace.  Deliberately rough — it only has to reject
  // requests that are clearly doomed; the dequeue-time check in
  // MicroBatcher::add catches the rest.
  const double est_us = shard.est_service_us.load(std::memory_order_relaxed) *
                        static_cast<double>(shard.queue.depth());
  const auto eta =
      req.enqueued_at + std::chrono::microseconds(std::llround(est_us));
  if (eta <= req.deadline) return false;
  // Built once: overload means this fires per rejected request, and an
  // exception_ptr construction costs a throw/catch on this toolchain.
  static const std::exception_ptr kShedAtSubmit =
      std::make_exception_ptr(DeadlineExceeded(
          "litho request shed at submit: estimated queue wait exceeds "
          "deadline"));
  req.result.set_exception(kShedAtSubmit);
  shard.shed_at_submit.fetch_add(1, std::memory_order_relaxed);
  shard.m_shed_at_submit->inc();
  return true;
}

std::future<Grid<double>> LithoServer::submit(
    Grid<double> mask, int out_px, RequestKind kind,
    std::chrono::steady_clock::time_point deadline) {
  Shard& shard = route(out_px);
  ServeRequest req = make_request(shard, mask, out_px, kind, deadline);
  std::future<Grid<double>> fut = req.result.get_future();
  // A shed is an answer (DeadlineExceeded), not backpressure: the future
  // is already resolved and the request never occupies a queue slot.
  if (shed_at_submit(shard, req)) return fut;
  // Sampling decision at submit (one relaxed RMW when tracing is on, a
  // branch when off); spans are emitted by the shard worker at resolve.
  if (tracer_->sample()) {
    req.traced = true;
    req.trace_id = trace_seq_.fetch_add(1, std::memory_order_relaxed);
  }
  // Count before push so a stats reader can never observe a completed
  // request that is not yet in submitted; roll back if the queue refuses.
  shard.submitted.fetch_add(1, std::memory_order_relaxed);
  if (!shard.queue.push(req)) {
    shard.submitted.fetch_sub(1, std::memory_order_relaxed);
    check_fail("submit on a stopped server", std::source_location::current());
  }
  // Registry mirror after the push succeeds, so it never needs rolling
  // back (eventually consistent with `submitted`, never ahead of it).
  shard.m_submitted->inc();
  return fut;
}

std::optional<std::future<Grid<double>>> LithoServer::try_submit(
    Grid<double>& mask, int out_px, RequestKind kind,
    std::chrono::steady_clock::time_point deadline) {
  Shard& shard = route(out_px);
  ServeRequest req = make_request(shard, mask, out_px, kind, deadline);
  std::future<Grid<double>> fut = req.result.get_future();
  if (shed_at_submit(shard, req)) return fut;
  if (tracer_->sample()) {
    req.traced = true;
    req.trace_id = trace_seq_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.submitted.fetch_add(1, std::memory_order_relaxed);
  switch (shard.queue.try_push(req)) {
    case RequestQueue::PushResult::kOk:
      shard.m_submitted->inc();
      return fut;
    case RequestQueue::PushResult::kFull:
      shard.submitted.fetch_sub(1, std::memory_order_relaxed);
      mask = std::move(req.mask);  // hand the mask back on rejection
      return std::nullopt;
    case RequestQueue::PushResult::kClosed:
      break;
  }
  shard.submitted.fetch_sub(1, std::memory_order_relaxed);
  mask = std::move(req.mask);
  // A full queue is the caller's load-shedding signal; a stopped server
  // is not retryable and must not masquerade as backpressure.
  check_fail("submit on a stopped server", std::source_location::current());
}

OpcJobHandle LithoServer::submit_opc(std::vector<Grid<double>> intended,
                                     OpcJobOptions opts) {
  const std::shared_ptr<const FastLitho> snap = snapshot(0);
  // The job evaluates EPE against the same print threshold the server's
  // resist requests use.
  opts.config.resist_threshold = snap->resist_threshold();
  return opc_->submit(snap->kernels_shared(), std::move(intended), opts);
}

OpcJobHandle LithoServer::resume_opc(opc::OpcCheckpoint checkpoint,
                                     OpcJobOptions opts) {
  return opc_->resume(snapshot(0)->kernels_shared(), std::move(checkpoint),
                      opts);
}

std::uint64_t LithoServer::swap_kernels(FastLitho fresh) {
  const auto kernels = fresh.kernels_shared();
  const double threshold = fresh.resist_threshold();
  // One generation per publish, serialized across concurrent swappers.
  const std::uint64_t gen =
      1 + generation_.fetch_add(1, std::memory_order_relaxed);
  for (auto& shard : shards_) {
    auto snap = std::make_shared<const FastLitho>(FastLitho(kernels, threshold));
    LockGuard lk(shard->snap_mu);
    shard->snapshot = std::move(snap);
    shard->generation = gen;
  }
  return gen;
}

void LithoServer::swap_slo(std::optional<SloPolicy> slo) {
  const std::shared_ptr<const SloPolicy> snap =
      slo ? std::make_shared<const SloPolicy>(*slo) : nullptr;
  for (auto& shard : shards_) {
    LockGuard lk(shard->slo_mu);
    shard->slo = snap;
  }
}

std::shared_ptr<const FastLitho> LithoServer::snapshot(int shard) const {
  check(shard >= 0 && shard < shards(), "snapshot: shard out of range");
  return shards_[static_cast<std::size_t>(shard)]->current_snapshot();
}

std::uint64_t LithoServer::generation(int shard) const {
  check(shard >= 0 && shard < shards(), "generation: shard out of range");
  return shards_[static_cast<std::size_t>(shard)]->current_generation();
}

std::shared_ptr<const SloPolicy> LithoServer::slo(int shard) const {
  check(shard >= 0 && shard < shards(), "slo: shard out of range");
  return shards_[static_cast<std::size_t>(shard)]->current_slo();
}

void LithoServer::stop() {
  LockGuard lk(stop_mu_);
  if (stopped_) return;
  stopped_ = true;
  // OPC first: its worker probes shard queue depths between steps, and its
  // futures must resolve (with resumable checkpoints) before the shards
  // are torn down.
  if (opc_) opc_->stop();
  for (auto& shard : shards_) shard->queue.close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void LithoServer::shard_loop(Shard& shard) {
  MicroBatcher batcher(options_.batch);
  std::optional<SloAutotuner> tuner;
  TuneWindow window;
  std::shared_ptr<const SloPolicy> active;

  const auto publish_policy = [&] {
    shard.cur_max_batch.store(batcher.policy().max_batch,
                              std::memory_order_relaxed);
    shard.cur_max_delay_us.store(batcher.policy().max_delay.count(),
                                 std::memory_order_relaxed);
  };
  // (Re)build the tuning state for a freshly observed SLO policy.  The
  // batcher always restarts from the configured BatchPolicy so swapping a
  // policy in or out is deterministic, not a function of tuning history.
  const auto rebuild_slo = [&](std::shared_ptr<const SloPolicy> latest) {
    active = std::move(latest);
    tuner.reset();
    window.clear();
    batcher.set_policy(options_.batch);
    if (active && active->autotune) {
      tuner.emplace(active->target_p99, active->tuner, options_.batch);
      batcher.set_policy(tuner->policy());  // clamped into tuner bounds
    }
    publish_policy();
  };
  const auto maybe_tune = [&] {
    if (!tuner || !tuner->ready(window)) return;
    if (tuner->update(window)) {
      batcher.set_policy(tuner->policy());
      shard.tune_updates.fetch_add(1, std::memory_order_relaxed);
      publish_policy();
    }
  };
  // Queue sheds count as completed (a resolved future must be visible in
  // the stats), but never as goodput.  Account-then-resolve, like served
  // batches: completed (mutex) before shed_in_queue (atomic) before the
  // futures fail, so a client that has seen DeadlineExceeded also sees it
  // counted, and readers never see shed_in_queue > completed (their
  // occupancy subtraction must not underflow).
  const auto account_queue_sheds = [&] {
    std::vector<ServeRequest> shed = batcher.take_shed();
    if (shed.empty()) return;
    {
      LockGuard lk(shard.stats_mu);
      shard.completed += shed.size();
    }
    shard.shed_in_queue.fetch_add(shed.size(), std::memory_order_release);
    shard.m_completed->inc(shed.size());
    shard.m_shed_in_queue->inc(shed.size());
    // Built once: under overload this fires per expired request, and an
    // exception_ptr construction costs a throw/catch on this toolchain.
    static const std::exception_ptr kShedInQueue =
        std::make_exception_ptr(DeadlineExceeded(
            "litho request shed: deadline expired while queued"));
    for (ServeRequest& r : shed) r.result.set_exception(kShedInQueue);
  };

  rebuild_slo(shard.current_slo());
  for (;;) {
    if (auto latest = shard.current_slo(); latest != active) {
      rebuild_slo(std::move(latest));
    }
    ServeRequest req;
    const auto deadline = batcher.next_deadline();
    const RequestQueue::PopResult popped =
        deadline ? shard.queue.pop_until(req, *deadline)
                 : shard.queue.pop(req);
    TuneWindow* const w = tuner ? &window : nullptr;
    if (popped == RequestQueue::PopResult::kItem) {
      // Traced requests only: the extra timestamp splits queue-wait from
      // batch-assembly in the exported spans.
      if (req.traced) req.dequeued_at = Clock::now();
      if (auto full = batcher.add(std::move(req), Clock::now())) {
        execute_batch(shard, std::move(*full), w);
      }
      account_queue_sheds();
    }
    // Deadline-triggered partial batches (also sweeps buckets that expired
    // while a size-triggered flush was executing).
    while (auto expired = batcher.poll(Clock::now())) {
      execute_batch(shard, std::move(*expired), w);
    }
    maybe_tune();
    if (popped == RequestQueue::PopResult::kClosed) {
      // Queue drained and closed: flush what the batcher still holds so
      // every accepted future resolves, then retire the worker.
      for (Batch& b : batcher.drain()) {
        execute_batch(shard, std::move(b), nullptr);
      }
      return;
    }
  }
}

void LithoServer::execute_batch(Shard& shard, Batch batch,
                                TuneWindow* window) {
  const auto t0 = Clock::now();
  std::vector<const Grid<double>*> masks;
  masks.reserve(batch.requests.size());
  for (const ServeRequest& r : batch.requests) masks.push_back(&r.mask);
  std::vector<Grid<double>> aerials;
  std::exception_ptr err;
  try {
    aerials = batch.litho->aerial_batch(masks, batch.out_px);
  } catch (...) {
    // A failed sweep (e.g. a mask/out_px combination the engine rejects)
    // fails every request in the batch instead of wedging their futures.
    err = std::current_exception();
  }
  // Account first, then resolve: a client that has seen its future resolve
  // must also see it counted in completed.  Latencies are computed outside
  // the lock; only the ring-buffer append holds stats_mu.
  const auto now = Clock::now();
  std::vector<double> batch_latencies_us;
  batch_latencies_us.reserve(batch.requests.size());
  for (const ServeRequest& r : batch.requests) {
    batch_latencies_us.push_back(
        std::chrono::duration<double, std::micro>(now - r.enqueued_at)
            .count());
  }
  // Feed the submit-path wait estimate: per-request share of this batch's
  // wall time, EWMA-smoothed (worker-written, client-read).
  {
    const double per_req_us =
        std::chrono::duration<double, std::micro>(now - t0).count() /
        static_cast<double>(batch.requests.size());
    const double prev =
        shard.est_service_us.load(std::memory_order_relaxed);
    const double ewma =
        prev == 0.0 ? per_req_us : 0.8 * prev + 0.2 * per_req_us;
    shard.est_service_us.store(ewma, std::memory_order_relaxed);
    shard.m_est_service_us->set(ewma);
  }
  if (window != nullptr) window->record_batch(batch_latencies_us);
  // The histogram is recorded outside stats_mu (it is lock-free) and
  // *before* lat_count moves, so a reader that sees lat_count past the
  // exact window always finds at least that many samples in the histogram.
  for (const double us : batch_latencies_us) shard.latency->record(us);
  {
    LockGuard lk(shard.stats_mu);
    shard.completed += batch.requests.size();
    if (!err) shard.completed_ok += batch.requests.size();
    ++shard.batches;
    shard.lat_count += batch_latencies_us.size();
    for (const double us : batch_latencies_us) {
      if (shard.exact_latencies.size() >= Shard::kExactWindow) break;
      shard.exact_latencies.push_back(us);
    }
  }
  shard.m_completed->inc(batch.requests.size());
  if (!err) shard.m_completed_ok->inc(batch.requests.size());
  shard.m_batches->inc();
  // Span bookkeeping costs one branch per batch while tracing is off; the
  // sampled-request scan and timestamps only run when it is on.
  const bool tracing = tracer_->enabled();
  bool any_traced = false;
  if (tracing) {
    for (const ServeRequest& r : batch.requests) any_traced |= r.traced;
  }
  const auto t_resolve = any_traced ? Clock::now() : Clock::time_point{};
  for (std::size_t i = 0; i < batch.requests.size(); ++i) {
    ServeRequest& r = batch.requests[i];
    if (err) {
      r.result.set_exception(err);
    } else if (r.kind == RequestKind::kResist) {
      r.result.set_value(binarize(aerials[i], batch.litho->resist_threshold()));
    } else {
      r.result.set_value(std::move(aerials[i]));
    }
  }
  if (any_traced) {
    // Emitted by the shard worker — the ring's single writer.  Batch-level
    // spans (compute, resolve) carry the first traced request's id.
    const auto t_done = Clock::now();
    const auto us = [this](Clock::time_point t) {
      return tracer_->us_since_epoch(t);
    };
    std::uint64_t batch_id = 0;
    for (const ServeRequest& r : batch.requests) {
      if (!r.traced) continue;
      if (batch_id == 0) batch_id = r.trace_id;
      // Parent before children at the same start time, so the exporter's
      // stable sort keeps the nesting viewers expect.
      tracer_->record({"request", "serve", r.trace_id, shard.track,
                       us(r.enqueued_at), us(t_done) - us(r.enqueued_at)});
      tracer_->record({"queue_wait", "serve", r.trace_id, shard.track,
                       us(r.enqueued_at),
                       us(r.dequeued_at) - us(r.enqueued_at)});
      tracer_->record({"batch_assembly", "serve", r.trace_id, shard.track,
                       us(r.dequeued_at), us(t0) - us(r.dequeued_at)});
    }
    tracer_->record({"compute", "serve", batch_id, shard.track, us(t0),
                     us(now) - us(t0)});
    tracer_->record({"resolve", "serve", batch_id, shard.track,
                     us(t_resolve), us(t_done) - us(t_resolve)});
  }
}

namespace {

/// Exact nearest-rank percentiles for the small-window regime.  `latencies`
/// holds every sample the shard(s) have ever completed (the exact window
/// has not been exceeded), so sorting it is cheap by construction.
void fill_percentiles_exact(std::vector<double> latencies, ShardStats& st) {
  if (latencies.empty()) return;  // keep the NaN sentinels: no data != 0 µs
  std::sort(latencies.begin(), latencies.end());
  const std::size_t n = latencies.size();
  st.p50_latency_us = latencies[percentile_index(n, 50)];
  st.p99_latency_us = latencies[percentile_index(n, 99)];
}

/// Histogram-derived percentiles for everything past the exact window —
/// O(buckets), no lock against the worker, bounded relative error
/// (obs::LogHistogram).
void fill_percentiles_hist(const obs::HistogramSnapshot& snap,
                           ShardStats& st) {
  if (snap.count == 0) return;
  st.p50_latency_us = snap.quantile(50);
  st.p99_latency_us = snap.quantile(99);
}

double uptime_seconds(Clock::time_point started_at) {
  return std::chrono::duration<double>(Clock::now() - started_at).count();
}

}  // namespace

ShardStats LithoServer::shard_stats(int shard) const {
  check(shard >= 0 && shard < shards(), "shard_stats: shard out of range");
  const Shard& sh = *shards_[static_cast<std::size_t>(shard)];
  ShardStats st;
  std::vector<double> exact;
  std::uint64_t lat_count = 0;
  std::uint64_t completed_ok = 0;
  // Read shed_in_queue before completed: the worker bumps completed first,
  // so this order keeps shed_in_queue <= completed for readers (the
  // occupancy subtraction below must not underflow).
  st.shed.shed_in_queue = sh.shed_in_queue.load(std::memory_order_acquire);
  st.shed.shed_at_submit = sh.shed_at_submit.load(std::memory_order_acquire);
  {
    LockGuard lk(sh.stats_mu);
    st.completed = sh.completed;
    completed_ok = sh.completed_ok;
    st.batches = sh.batches;
    lat_count = sh.lat_count;
    if (lat_count <= Shard::kExactWindow) exact = sh.exact_latencies;
  }
  // Read submitted after completed: every completion happens-after its own
  // submission count, so this order keeps completed <= submitted for
  // readers.
  st.submitted = sh.submitted.load(std::memory_order_acquire);
  st.queue_depth = sh.queue.depth();
  st.shed.accepted = st.submitted;
  // Occupancy counts only batch-served requests: queue sheds resolve
  // without a batch.
  const std::uint64_t batch_served = st.completed - st.shed.shed_in_queue;
  st.mean_batch_occupancy =
      st.batches == 0 ? 0.0
                      : static_cast<double>(batch_served) /
                            static_cast<double>(st.batches);
  const double up = uptime_seconds(sh.started_at);
  st.shed.goodput_rps = up > 0.0 ? static_cast<double>(completed_ok) / up : 0.0;
  st.max_batch = sh.cur_max_batch.load(std::memory_order_relaxed);
  st.max_delay_us = static_cast<double>(
      sh.cur_max_delay_us.load(std::memory_order_relaxed));
  st.autotune_updates = sh.tune_updates.load(std::memory_order_relaxed);
  st.est_service_us = sh.est_service_us.load(std::memory_order_relaxed);
  st.kernel_generation = sh.current_generation();
  st.latency_samples = lat_count;
  // Exact nearest-rank while the shard's whole history fits the exact
  // window (this is where the tiny-window pins live: n == 1 must report
  // that sample, n == 2 must report the max as p99); histogram beyond it.
  // The worker records the histogram before bumping lat_count under the
  // same mutex we just held, so the snapshot cannot be behind lat_count.
  if (lat_count <= Shard::kExactWindow) {
    fill_percentiles_exact(std::move(exact), st);
  } else {
    fill_percentiles_hist(sh.latency->snapshot(), st);
  }
  return st;
}

ShardStats LithoServer::stats() const {
  ShardStats total;
  std::vector<double> exact;
  std::uint64_t lat_count = 0;
  bool all_exact = true;  // every shard's history fits its exact window
  std::uint64_t completed_ok = 0;
  double earliest_start = 0.0;
  for (int s = 0; s < shards(); ++s) {
    const Shard& sh = *shards_[static_cast<std::size_t>(s)];
    // Shed before completed, as in shard_stats: keeps the per-shard
    // shed_in_queue <= completed ordering for the occupancy subtraction.
    total.shed.shed_in_queue +=
        sh.shed_in_queue.load(std::memory_order_acquire);
    total.shed.shed_at_submit +=
        sh.shed_at_submit.load(std::memory_order_acquire);
    {
      LockGuard lk(sh.stats_mu);
      total.completed += sh.completed;
      completed_ok += sh.completed_ok;
      total.batches += sh.batches;
      lat_count += sh.lat_count;
      if (sh.lat_count <= Shard::kExactWindow) {
        exact.insert(exact.end(), sh.exact_latencies.begin(),
                     sh.exact_latencies.end());
      } else {
        all_exact = false;
      }
    }
    // After completed, as in shard_stats: keeps completed <= submitted.
    total.submitted += sh.submitted.load(std::memory_order_acquire);
    earliest_start = std::max(earliest_start, uptime_seconds(sh.started_at));
    // Policy/estimate fields have no single aggregate value; report the
    // widest currently in force so dashboards see how far tuning has
    // reached.
    total.est_service_us =
        std::max(total.est_service_us,
                 sh.est_service_us.load(std::memory_order_relaxed));
    total.max_batch = std::max(
        total.max_batch, sh.cur_max_batch.load(std::memory_order_relaxed));
    total.max_delay_us =
        std::max(total.max_delay_us,
                 static_cast<double>(
                     sh.cur_max_delay_us.load(std::memory_order_relaxed)));
    total.autotune_updates +=
        sh.tune_updates.load(std::memory_order_relaxed);
    // Swaps publish shard 0 first, so the max is the newest generation any
    // shard could hand to a submit right now.
    total.kernel_generation =
        std::max(total.kernel_generation, sh.current_generation());
  }
  for (int s = 0; s < shards(); ++s) {
    total.queue_depth += shards_[static_cast<std::size_t>(s)]->queue.depth();
  }
  const std::uint64_t batch_served =
      total.completed - total.shed.shed_in_queue;
  total.mean_batch_occupancy =
      total.batches == 0 ? 0.0
                         : static_cast<double>(batch_served) /
                               static_cast<double>(total.batches);
  total.shed.accepted = total.submitted;
  total.shed.goodput_rps =
      earliest_start > 0.0 ? static_cast<double>(completed_ok) / earliest_start
                           : 0.0;
  total.latency_samples = lat_count;
  // Exact concat-and-sort only while *every* shard is still inside its
  // exact window (the concatenation is then the complete sample); one
  // histogram past the window and the whole aggregate reads as a
  // bucket-wise histogram merge instead — mixing an exact vector into a
  // bucketed merge would bias ranks.
  if (all_exact) {
    fill_percentiles_exact(std::move(exact), total);
  } else {
    obs::HistogramSnapshot merged;
    for (int s = 0; s < shards(); ++s) {
      merged += shards_[static_cast<std::size_t>(s)]->latency->snapshot();
    }
    fill_percentiles_hist(merged, total);
  }
  return total;
}

}  // namespace nitho::serve
