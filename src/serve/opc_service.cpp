#include "serve/opc_service.hpp"

#include <exception>
#include <utility>

#include "common/check.hpp"

namespace nitho::serve {

namespace {

/// Marks the job done and resolves its future exactly once.
void finish(detail::OpcJobState& state, OpcJobResult result) {
  {
    LockGuard lk(state.mu);
    state.progress.iteration = result.iterations_done;
    state.progress.done = true;
    state.progress.cancelled = !result.completed;
  }
  state.promise.set_value(std::move(result));
}

}  // namespace

OpcJobProgress OpcJobHandle::progress() const {
  check(state_ != nullptr, "OpcJobHandle::progress on an empty handle");
  LockGuard lk(state_->mu);
  return state_->progress;
}

void OpcJobHandle::cancel() {
  check(state_ != nullptr, "OpcJobHandle::cancel on an empty handle");
  state_->cancel.store(true, std::memory_order_relaxed);
}

OpcService::OpcService(BusyFn busy, obs::MetricsRegistry* registry,
                       obs::Tracer* tracer, std::uint32_t track)
    : busy_(std::move(busy)),
      registry_(registry),
      tracer_(tracer),
      track_(track) {
  worker_ = std::thread([this] { worker_loop(); });
}

OpcService::~OpcService() { stop(); }

OpcJobHandle OpcService::submit(KernelSnapshot kernels,
                                std::vector<Grid<double>> intended,
                                OpcJobOptions opts) {
  check(kernels != nullptr && !kernels->empty(),
        "OpcService::submit: no kernels");
  check(!intended.empty(), "OpcService::submit: empty batch");
  check(opts.iterations >= 1, "OpcService::submit: iterations must be >= 1");
  Job job;
  job.kernels = std::move(kernels);
  job.intended = std::move(intended);
  job.opts = opts;
  return enqueue(std::move(job));
}

OpcJobHandle OpcService::resume(KernelSnapshot kernels,
                                opc::OpcCheckpoint checkpoint,
                                OpcJobOptions opts) {
  check(kernels != nullptr && !kernels->empty(),
        "OpcService::resume: no kernels");
  check(checkpoint.batch > 0, "OpcService::resume: empty checkpoint");
  Job job;
  job.kernels = std::move(kernels);
  job.checkpoint = std::move(checkpoint);
  job.opts = opts;
  return enqueue(std::move(job));
}

OpcJobHandle OpcService::enqueue(Job job) {
  job.state = std::make_shared<detail::OpcJobState>();
  job.state->future = job.state->promise.get_future().share();
  job.state->progress.total = job.opts.iterations;
  if (job.checkpoint) job.state->progress.iteration = job.checkpoint->iteration;
  OpcJobHandle handle(job.state);
  {
    LockGuard lk(mu_);
    check(!stopped_, "OpcService: submit on a stopped service");
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  return handle;
}

void OpcService::stop() {
  {
    LockGuard lk(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  stop_.store(true, std::memory_order_relaxed);
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  // The worker exits without touching jobs it never started; their futures
  // still must resolve (shutdown never breaks a promise).
  std::deque<Job> leftover;
  {
    LockGuard lk(mu_);
    leftover.swap(queue_);
  }
  for (Job& job : leftover) {
    OpcJobResult result;
    if (job.checkpoint) {
      result.iterations_done = job.checkpoint->iteration;
      result.checkpoint = std::move(*job.checkpoint);
    }
    finish(*job.state, std::move(result));
  }
}

void OpcService::worker_loop() {
  for (;;) {
    Job job;
    {
      UniqueLock lk(mu_);
      // Explicit wait loop over the guarded fields (DESIGN.md §14.2).
      while (!stopped_ && queue_.empty()) cv_.wait(lk);
      if (stopped_) return;  // stop() resolves whatever is still queued
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    run_job(job);
  }
}

void OpcService::throttle(const OpcJobOptions& opts) const {
  if (!busy_ || opts.max_yield.count() <= 0) return;
  // Back off in slices while latency traffic is queued; bounded so a
  // saturating aerial load degrades the job instead of stalling it.
  constexpr std::chrono::microseconds kSlice{50};
  std::chrono::microseconds waited{0};
  while (waited < opts.max_yield && busy_()) {
    std::this_thread::sleep_for(kSlice);
    waited += kSlice;
  }
}

void OpcService::run_job(Job& job) {
  detail::OpcJobState& state = *job.state;
  // Gauge references are bound once per job, not per step (the registry's
  // name table is never touched on the step loop).
  obs::Gauge* g_iter = nullptr;
  obs::Gauge* g_total = nullptr;
  obs::Gauge* g_fit = nullptr;
  obs::Gauge* g_epe = nullptr;
  obs::Counter* c_steps = nullptr;
  if (registry_ != nullptr) {
    registry_->counter("opc.jobs").inc();
    g_iter = &registry_->gauge("opc.iteration");
    g_total = &registry_->gauge("opc.total");
    g_fit = &registry_->gauge("opc.fit_loss");
    g_epe = &registry_->gauge("opc.mean_epe_px");
    c_steps = &registry_->counter("opc.steps");
    g_total->set(static_cast<double>(job.opts.iterations));
  }
  try {
    opc::OpcEngine engine(job.kernels, job.opts.config);
    if (job.checkpoint) {
      engine.restore(*job.checkpoint);
    } else {
      engine.start(job.intended);
    }
    const long target = job.opts.iterations;
    bool interrupted = false;
    while (engine.iteration() < target) {
      if (stop_.load(std::memory_order_relaxed) ||
          state.cancel.load(std::memory_order_relaxed)) {
        interrupted = true;
        break;
      }
      throttle(job.opts);
      const bool traced = tracer_ != nullptr && tracer_->sample();
      const std::int64_t span_t0 = traced ? tracer_->now_us() : 0;
      const opc::OpcStepStats stats = engine.step();
      if (traced) {
        tracer_->record({"opc_step", "opc",
                         static_cast<std::uint64_t>(engine.iteration()),
                         track_, span_t0, tracer_->now_us() - span_t0});
      }
      const bool epe_due =
          job.opts.epe_every > 0 &&
          (engine.iteration() % job.opts.epe_every == 0 ||
           engine.iteration() == target);
      const double epe = epe_due
                             ? engine.mean_epe_px()
                             : std::numeric_limits<double>::quiet_NaN();
      {
        LockGuard lk(state.mu);
        state.progress.iteration = engine.iteration();
        state.progress.fit_loss = stats.fit_loss;
        if (epe_due) state.progress.mean_epe_px = epe;
      }
      if (c_steps != nullptr) {
        c_steps->inc();
        g_iter->set(static_cast<double>(engine.iteration()));
        g_fit->set(static_cast<double>(stats.fit_loss));
        if (epe_due) g_epe->set(epe);
      }
    }
    OpcJobResult result;
    result.masks = engine.masks();
    result.checkpoint = engine.checkpoint();
    result.iterations_done = engine.iteration();
    result.completed = !interrupted;
    finish(state, std::move(result));
  } catch (...) {
    {
      LockGuard lk(state.mu);
      state.progress.done = true;
      state.progress.cancelled = true;
    }
    state.promise.set_exception(std::current_exception());
  }
}

}  // namespace nitho::serve
