#pragma once
// Dynamic micro-batching scheduler (DESIGN.md §7.2).
//
// The batcher coalesces in-flight requests into buckets keyed by
// (kernel-set snapshot, out_px) — exactly the configuration an AerialEngine
// fixes, so every bucket can be flushed through one
// FastLitho::aerial_batch sweep.  A bucket flushes when either
//   * it reaches policy.max_batch requests (size flush: add() returns the
//     full batch immediately), or
//   * policy.max_delay has elapsed since its oldest request arrived
//     (deadline flush: next_deadline() tells the shard worker how long it
//     may block on its queue; poll() then hands back expired buckets).
// Latency is therefore bounded by max_delay even at trickle load, while
// bursts amortize spectra + engine dispatch across up to max_batch masks.
//
// MicroBatcher is deliberately single-threaded: it is owned by one shard
// worker and never locked.  All cross-thread handoff happens in the
// RequestQueue in front of it.

#include <chrono>
#include <cstddef>
#include <memory>
#include <optional>
#include <vector>

#include "serve/request_queue.hpp"

namespace nitho::serve {

struct BatchPolicy {
  /// Size flush threshold (>= 1).
  int max_batch = 8;
  /// Deadline flush: max time a request may wait in a bucket.
  std::chrono::microseconds max_delay{500};
};

/// One flushable unit: requests sharing a kernel snapshot and out_px.
struct Batch {
  std::shared_ptr<const FastLitho> litho;
  int out_px = 0;
  std::vector<ServeRequest> requests;
};

class MicroBatcher {
 public:
  explicit MicroBatcher(BatchPolicy policy);

  /// Files the request into its (kernel-set, out_px) bucket.  Returns the
  /// bucket as a ready batch iff this request filled it to max_batch.
  ///
  /// Admission control (DESIGN.md §9.1): a request whose deadline has
  /// already passed at `now` is shed instead of filed — it is set aside
  /// for the caller to collect via take_shed(), account, and resolve with
  /// DeadlineExceeded (never silently).  The batcher does not touch the
  /// promise itself so the owner can count a shed *before* the client can
  /// observe its future resolve, the same account-then-resolve order the
  /// server keeps for served batches.  Requests with the default
  /// kNoDeadline are never shed.
  std::optional<Batch> add(ServeRequest req,
                           std::chrono::steady_clock::time_point now);

  /// Replaces the flush policy (the autotuner's hot-swap point).  Applies
  /// to future size checks and to deadlines of buckets opened from now on;
  /// an existing bucket keeps the flush deadline its oldest request
  /// established — tightening max_delay never extends a wait, and a bucket
  /// larger than a lowered max_batch flushes on its next add or deadline.
  void set_policy(BatchPolicy policy);
  const BatchPolicy& policy() const { return policy_; }

  /// Requests shed by add() since the last call, pending resolution (the
  /// shard worker accounts them, then fails their futures).
  std::vector<ServeRequest> take_shed();

  /// Earliest deadline across pending buckets; nullopt when empty.
  std::optional<std::chrono::steady_clock::time_point> next_deadline() const;

  /// Pops one bucket whose deadline has passed at `now` (oldest first);
  /// nullopt when nothing has expired.  Call in a loop to drain all
  /// expired buckets.
  std::optional<Batch> poll(std::chrono::steady_clock::time_point now);

  /// Flushes every pending bucket regardless of deadline (shutdown).
  std::vector<Batch> drain();

  std::size_t pending_requests() const;
  std::size_t pending_buckets() const { return buckets_.size(); }

 private:
  struct Bucket {
    Batch batch;
    std::chrono::steady_clock::time_point deadline{};
  };

  Batch take_bucket(std::size_t i);

  BatchPolicy policy_;
  /// Few distinct keys are in flight at once (a handful of out_px values
  /// times at most two kernel snapshots mid-swap), so a flat vector beats
  /// a hash map here.
  std::vector<Bucket> buckets_;
  std::vector<ServeRequest> shed_;  ///< expired on add, awaiting take_shed()
};

}  // namespace nitho::serve
