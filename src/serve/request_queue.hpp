#pragma once
// Bounded MPMC submission queue for the serving layer (DESIGN.md §7.3).
//
// One RequestQueue sits in front of each serving shard.  Producers are the
// client threads inside LithoServer::submit / try_submit; the single
// consumer is the shard's pinned worker (the queue itself supports multiple
// consumers — nothing in it assumes one).  The capacity bound is the
// server's backpressure mechanism: a full queue blocks push (or fails
// try_push), which throttles clients to the speed the shard can absorb
// instead of growing an unbounded backlog.
//
// Shutdown semantics: close() wakes every blocked producer and consumer.
// After close, push/try_push refuse new work (leaving the caller's request
// intact so its promise can be failed upstream), while pop continues to
// drain already-accepted requests and only then reports kClosed — accepted
// work is never dropped, which is what lets the server resolve every
// outstanding future on shutdown.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <stdexcept>

#include "common/mutex.hpp"
#include "math/grid.hpp"
#include "nitho/fast_litho.hpp"

namespace nitho::serve {

/// What the client asked for: raw aerial intensity or the thresholded
/// resist pattern (binarize(aerial, snapshot->resist_threshold())).
enum class RequestKind { kAerial, kResist };

/// The error a shed request's future resolves with (DESIGN.md §9.1): the
/// server decided the request could not meet its deadline — at submit
/// (estimated wait already past the deadline) or on dequeue (the deadline
/// expired while the request sat in the queue).  A shed future always
/// resolves with this exception; sheds are never silent.
class DeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Sentinel deadline: the request is never shed (PR 3 behavior, and the
/// default whenever no SloPolicy is installed).
inline constexpr std::chrono::steady_clock::time_point kNoDeadline =
    std::chrono::steady_clock::time_point::max();

/// One in-flight simulation request.  The kernel snapshot is captured at
/// submit time, so a request is always served by the kernels that were
/// current when the client submitted it, even if a hot-swap lands while it
/// waits in the queue or in a batcher bucket (DESIGN.md §7.4).
struct ServeRequest {
  RequestKind kind = RequestKind::kAerial;
  Grid<double> mask;
  int out_px = 0;
  std::shared_ptr<const FastLitho> litho;
  std::promise<Grid<double>> result;
  std::chrono::steady_clock::time_point enqueued_at{};
  /// Latest time at which the request may still be dequeued into a batch;
  /// kNoDeadline disables shedding for this request (DESIGN.md §9.1).
  std::chrono::steady_clock::time_point deadline = kNoDeadline;
  /// Tracing (DESIGN.md §12.3): set at submit when the server's tracer
  /// samples this request.  Untraced requests take no extra timestamps.
  bool traced = false;
  std::uint64_t trace_id = 0;
  /// Stamped by the shard worker at dequeue (traced requests only); splits
  /// the pre-compute span into queue-wait and batch-assembly.
  std::chrono::steady_clock::time_point dequeued_at{};
};

class RequestQueue {
 public:
  enum class PopResult { kItem, kTimeout, kClosed };
  /// try_push outcome: a full queue is retryable backpressure, a closed
  /// queue is terminal — callers must not treat them alike (a shed-and-
  /// retry loop against a stopped server would spin forever).
  enum class PushResult { kOk, kFull, kClosed };

  explicit RequestQueue(std::size_t capacity);

  /// Blocks while the queue is full (backpressure).  Returns false — with
  /// req left intact — iff the queue was closed before the push succeeded.
  bool push(ServeRequest& req);

  /// Non-blocking push; kFull / kClosed leave req intact.
  PushResult try_push(ServeRequest& req);

  /// Blocks until an item arrives or the queue is closed *and* drained.
  PopResult pop(ServeRequest& out);

  /// As pop, but gives up at `deadline` (the batcher's next flush time).
  PopResult pop_until(ServeRequest& out,
                      std::chrono::steady_clock::time_point deadline);

  /// Idempotent; wakes all waiters.  Items already accepted remain
  /// poppable — pop reports kClosed only once the queue is empty too.
  void close();

  bool closed() const;
  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }

 private:
  /// Files the request unless the queue is closed; the caller still holds
  /// mu_ afterwards and is responsible for the not_empty_ notify once the
  /// lock is dropped.
  bool push_locked(ServeRequest& req) NITHO_REQUIRES(mu_);

  const std::size_t capacity_;
  mutable Mutex mu_;
  CondVar not_full_;
  CondVar not_empty_;
  std::deque<ServeRequest> items_ NITHO_GUARDED_BY(mu_);
  bool closed_ NITHO_GUARDED_BY(mu_) = false;
};

}  // namespace nitho::serve
