#include "serve/autotune.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace nitho::serve {

namespace {

/// Same index rule as the server's stats percentiles (server.cpp): the
/// tuner and the dashboard must agree on what "p99" means.
double p99_of(std::vector<double> latencies) {
  std::sort(latencies.begin(), latencies.end());
  return latencies[(99 * (latencies.size() - 1)) / 100];
}

}  // namespace

void TuneWindow::record_batch(const std::vector<double>& batch_latencies_us) {
  latencies_us.insert(latencies_us.end(), batch_latencies_us.begin(),
                      batch_latencies_us.end());
  completed += batch_latencies_us.size();
  ++batches;
}

void TuneWindow::clear() {
  latencies_us.clear();
  completed = 0;
  batches = 0;
}

SloAutotuner::SloAutotuner(std::chrono::microseconds target_p99,
                           AutotuneConfig config, BatchPolicy initial)
    : target_(target_p99), config_(config), policy_(initial) {
  check(target_.count() > 0, "autotune target_p99 must be positive");
  check(config_.delay_backoff > 0.0 && config_.delay_backoff < 1.0,
        "delay_backoff must be in (0, 1)");
  check(config_.low_watermark > 0.0 && config_.low_watermark <= 1.0,
        "low_watermark must be in (0, 1]");
  check(config_.min_delay <= config_.max_delay, "min_delay > max_delay");
  check(config_.min_batch >= 1 && config_.min_batch <= config_.max_batch,
        "min_batch must be in [1, max_batch]");
  check(config_.occupancy_low < config_.occupancy_high,
        "occupancy watermarks must be ordered");
  check(config_.tune_every >= 1, "tune_every must be >= 1");
  // Start inside the tuner's own bounds so the first decision is a step,
  // not a jump.
  policy_.max_delay =
      std::clamp(policy_.max_delay, config_.min_delay, config_.max_delay);
  policy_.max_batch =
      std::clamp(policy_.max_batch, config_.min_batch, config_.max_batch);
}

bool SloAutotuner::update(TuneWindow& window) {
  if (window.completed == 0 || window.latencies_us.empty()) {
    window.clear();
    return false;
  }
  const double p99 = p99_of(window.latencies_us);
  const double occupancy = static_cast<double>(window.completed) /
                           static_cast<double>(std::max<std::uint64_t>(
                               window.batches, 1));
  window.clear();

  const double target = static_cast<double>(target_.count());
  BatchPolicy next = policy_;

  // AIMD on max_delay.
  if (p99 > target) {
    next.max_delay = std::max(
        config_.min_delay,
        std::chrono::microseconds(static_cast<std::int64_t>(
            static_cast<double>(policy_.max_delay.count()) *
            config_.delay_backoff)));
  } else if (p99 < config_.low_watermark * target) {
    next.max_delay =
        std::min(config_.max_delay, policy_.max_delay + config_.delay_step);
  }

  // Occupancy-driven max_batch.  Growing is gated on SLO headroom: a
  // bigger batch always adds latency, so only probe upward while p99 is
  // comfortably under target.
  const double cur_batch = static_cast<double>(policy_.max_batch);
  if (occupancy >= config_.occupancy_high * cur_batch &&
      p99 < config_.low_watermark * target) {
    next.max_batch = std::min(config_.max_batch, policy_.max_batch * 2);
  } else if (occupancy <= config_.occupancy_low * cur_batch) {
    next.max_batch = std::clamp(static_cast<int>(std::ceil(occupancy)) + 1,
                                config_.min_batch, config_.max_batch);
  }

  if (next.max_batch == policy_.max_batch &&
      next.max_delay == policy_.max_delay) {
    return false;
  }
  policy_ = next;
  ++updates_;
  return true;
}

}  // namespace nitho::serve
