#include "io/pgm.hpp"

#include <algorithm>
#include <fstream>

#include "common/check.hpp"

namespace nitho {
namespace {

Grid<double> normalized(const Grid<double>& img, double lo, double hi) {
  if (lo == hi) {
    lo = grid_min(img);
    hi = grid_max(img);
    if (hi <= lo) hi = lo + 1.0;
  }
  Grid<double> out(img.rows(), img.cols());
  const double scale = 1.0 / (hi - lo);
  for (std::size_t i = 0; i < img.size(); ++i)
    out[i] = std::clamp((img[i] - lo) * scale, 0.0, 1.0);
  return out;
}

}  // namespace

void write_pgm(const std::string& path, const Grid<double>& img, double lo,
               double hi) {
  check(!img.empty(), "cannot write empty image");
  Grid<double> norm = normalized(img, lo, hi);
  std::ofstream f(path, std::ios::binary);
  check(f.good(), "cannot open PGM for writing: " + path);
  f << "P5\n" << img.cols() << " " << img.rows() << "\n255\n";
  std::vector<unsigned char> row(img.cols());
  for (int r = 0; r < img.rows(); ++r) {
    for (int c = 0; c < img.cols(); ++c)
      row[c] = static_cast<unsigned char>(norm(r, c) * 255.0 + 0.5);
    f.write(reinterpret_cast<const char*>(row.data()), row.size());
  }
  check(f.good(), "short write to " + path);
}

Grid<double> read_pgm(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  check(f.good(), "cannot open PGM for reading: " + path);
  std::string magic;
  f >> magic;
  check(magic == "P5", "unsupported PGM magic in " + path);
  int cols = 0, rows = 0, maxval = 0;
  f >> cols >> rows >> maxval;
  check(cols > 0 && rows > 0 && maxval > 0 && maxval < 65536, "bad PGM header");
  f.get();  // single whitespace after header
  Grid<double> img(rows, cols);
  std::vector<unsigned char> row(cols);
  for (int r = 0; r < rows; ++r) {
    f.read(reinterpret_cast<char*>(row.data()), row.size());
    check(f.good(), "short PGM read");
    for (int c = 0; c < cols; ++c) img(r, c) = row[c] / static_cast<double>(maxval);
  }
  return img;
}

void write_pgm_montage(const std::string& path,
                       const std::vector<Grid<double>>& panels) {
  check(!panels.empty(), "montage needs at least one panel");
  const int rows = panels[0].rows(), cols = panels[0].cols();
  for (const auto& p : panels)
    check(p.rows() == rows && p.cols() == cols, "montage panels must match");
  const int sep = 2;
  const int n = static_cast<int>(panels.size());
  Grid<double> canvas(rows, n * cols + (n - 1) * sep, 0.5);
  for (int k = 0; k < n; ++k) {
    Grid<double> norm = normalized(panels[k], 0.0, 0.0);
    const int c0 = k * (cols + sep);
    for (int r = 0; r < rows; ++r)
      for (int c = 0; c < cols; ++c) canvas(r, c0 + c) = norm(r, c);
  }
  write_pgm(path, canvas, 0.0, 1.0);
}

}  // namespace nitho
