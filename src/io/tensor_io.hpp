#pragma once
// Raw binary persistence for real grids, complex kernel stacks and flat
// float buffers (model checkpoints).  Format: magic, dtype tag, rank,
// int64 dims, little-endian payload.

#include <cstdint>
#include <string>
#include <vector>

#include "math/cplx.hpp"
#include "math/grid.hpp"

namespace nitho {

void save_grid(const std::string& path, const Grid<double>& g);
Grid<double> load_grid(const std::string& path);

/// Kernel stacks are the paper's exported TCC optical kernels K in C^{r x n x m}.
void save_kernels(const std::string& path, const std::vector<Grid<cd>>& kernels);
std::vector<Grid<cd>> load_kernels(const std::string& path);

void save_floats(const std::string& path, const std::vector<float>& data);
std::vector<float> load_floats(const std::string& path);

}  // namespace nitho
