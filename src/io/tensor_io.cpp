#include "io/tensor_io.hpp"

#include <fstream>
#include <limits>

#include "common/check.hpp"

namespace nitho {
namespace {

constexpr std::uint32_t kMagic = 0x4E54484Fu;  // "NTHO"

enum class Dtype : std::uint32_t { f32 = 1, f64 = 2, c128 = 3 };

void write_header(std::ofstream& f, Dtype dt,
                  const std::vector<std::int64_t>& dims) {
  const std::uint32_t magic = kMagic;
  const auto tag = static_cast<std::uint32_t>(dt);
  const std::uint32_t rank = static_cast<std::uint32_t>(dims.size());
  f.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  f.write(reinterpret_cast<const char*>(&tag), sizeof tag);
  f.write(reinterpret_cast<const char*>(&rank), sizeof rank);
  for (std::int64_t d : dims) f.write(reinterpret_cast<const char*>(&d), sizeof d);
}

std::vector<std::int64_t> read_header(std::ifstream& f, Dtype expect,
                                      const std::string& path) {
  std::uint32_t magic = 0, tag = 0, rank = 0;
  f.read(reinterpret_cast<char*>(&magic), sizeof magic);
  f.read(reinterpret_cast<char*>(&tag), sizeof tag);
  f.read(reinterpret_cast<char*>(&rank), sizeof rank);
  check(f.good() && magic == kMagic, "bad tensor file: " + path);
  check(tag == static_cast<std::uint32_t>(expect), "dtype mismatch in " + path);
  check(rank <= 8, "implausible tensor rank in " + path);
  // Range-check the dims before anyone allocates with them: every caller
  // narrows to int (Grid dimensions), and a corrupt header must throw here
  // rather than overflow the cast or request a multi-terabyte buffer.
  constexpr std::int64_t kMaxDim = std::numeric_limits<int>::max();
  constexpr std::int64_t kMaxElems = std::int64_t{1} << 33;
  std::vector<std::int64_t> dims(rank);
  std::int64_t numel = rank == 0 ? 0 : 1;
  for (auto& d : dims) {
    f.read(reinterpret_cast<char*>(&d), sizeof d);
    check(f.good() && d >= 0 && d <= kMaxDim, "bad dims in " + path);
    check(d == 0 || numel <= kMaxElems / d,
          "implausible tensor size in " + path);
    numel = d == 0 ? 0 : numel * d;
  }
  return dims;
}

}  // namespace

void save_grid(const std::string& path, const Grid<double>& g) {
  std::ofstream f(path, std::ios::binary);
  check(f.good(), "cannot open for writing: " + path);
  write_header(f, Dtype::f64, {g.rows(), g.cols()});
  f.write(reinterpret_cast<const char*>(g.data()), g.size() * sizeof(double));
  check(f.good(), "short write: " + path);
}

Grid<double> load_grid(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  check(f.good(), "cannot open for reading: " + path);
  auto dims = read_header(f, Dtype::f64, path);
  check(dims.size() == 2, "grid file must be rank 2: " + path);
  Grid<double> g(static_cast<int>(dims[0]), static_cast<int>(dims[1]));
  f.read(reinterpret_cast<char*>(g.data()), g.size() * sizeof(double));
  check(f.good(), "short read: " + path);
  return g;
}

void save_kernels(const std::string& path, const std::vector<Grid<cd>>& kernels) {
  check(!kernels.empty(), "no kernels to save");
  const int n = kernels[0].rows(), m = kernels[0].cols();
  for (const auto& k : kernels)
    check(k.rows() == n && k.cols() == m, "kernel shapes must agree");
  std::ofstream f(path, std::ios::binary);
  check(f.good(), "cannot open for writing: " + path);
  write_header(f, Dtype::c128,
               {static_cast<std::int64_t>(kernels.size()), n, m});
  for (const auto& k : kernels)
    f.write(reinterpret_cast<const char*>(k.data()), k.size() * sizeof(cd));
  check(f.good(), "short write: " + path);
}

std::vector<Grid<cd>> load_kernels(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  check(f.good(), "cannot open for reading: " + path);
  auto dims = read_header(f, Dtype::c128, path);
  check(dims.size() == 3, "kernel file must be rank 3: " + path);
  std::vector<Grid<cd>> kernels(dims[0]);
  for (auto& k : kernels) {
    k = Grid<cd>(static_cast<int>(dims[1]), static_cast<int>(dims[2]));
    f.read(reinterpret_cast<char*>(k.data()), k.size() * sizeof(cd));
    check(f.good(), "short read: " + path);
  }
  return kernels;
}

void save_floats(const std::string& path, const std::vector<float>& data) {
  std::ofstream f(path, std::ios::binary);
  check(f.good(), "cannot open for writing: " + path);
  write_header(f, Dtype::f32, {static_cast<std::int64_t>(data.size())});
  f.write(reinterpret_cast<const char*>(data.data()), data.size() * sizeof(float));
  check(f.good(), "short write: " + path);
}

std::vector<float> load_floats(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  check(f.good(), "cannot open for reading: " + path);
  auto dims = read_header(f, Dtype::f32, path);
  check(dims.size() == 1, "float file must be rank 1: " + path);
  std::vector<float> data(static_cast<std::size_t>(dims[0]));
  f.read(reinterpret_cast<char*>(data.data()), data.size() * sizeof(float));
  check(f.good(), "short read: " + path);
  return data;
}

}  // namespace nitho
