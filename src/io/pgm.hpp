#pragma once
// Plain PGM (P5) image export/import for visual outputs (Fig. 2b / Fig. 4)
// and debugging.  Values are linearly mapped to 8-bit grayscale.

#include <string>

#include "math/grid.hpp"

namespace nitho {

/// Writes img to path (binary PGM).  Values are scaled from [lo, hi] onto
/// [0, 255]; pass lo == hi to auto-scale to the image's min/max.
void write_pgm(const std::string& path, const Grid<double>& img,
               double lo = 0.0, double hi = 0.0);

/// Reads a binary P5 PGM back as doubles in [0, 1].
Grid<double> read_pgm(const std::string& path);

/// Side-by-side montage of equally sized panels with a 2px separator,
/// auto-scaled per panel.  Convenience for the visual benches.
void write_pgm_montage(const std::string& path,
                       const std::vector<Grid<double>>& panels);

}  // namespace nitho
