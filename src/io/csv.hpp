#pragma once
// Tiny CSV writer so every bench can persist its table/series next to the
// printed output (EXPERIMENTS.md references these files).

#include <fstream>
#include <string>
#include <vector>

namespace nitho {

class CsvWriter {
 public:
  /// Opens path for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row; cell counts are checked against the header.
  void row(const std::vector<std::string>& cells);

  /// Convenience for numeric rows.
  void row_numeric(const std::vector<double>& cells);

 private:
  std::ofstream out_;
  std::size_t width_;
};

}  // namespace nitho
