#include "io/csv.hpp"

#include <sstream>

#include "common/check.hpp"

namespace nitho {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), width_(header.size()) {
  check(out_.good(), "cannot open CSV for writing: " + path);
  row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  check(cells.size() == width_, "CSV row width mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ",";
    out_ << cells[i];
  }
  out_ << "\n";
  out_.flush();
}

void CsvWriter::row_numeric(const std::vector<double>& cells) {
  std::vector<std::string> s;
  s.reserve(cells.size());
  for (double v : cells) {
    std::ostringstream os;
    os << v;
    s.push_back(os.str());
  }
  row(s);
}

}  // namespace nitho
