#include "litho/golden.hpp"

#include "common/check.hpp"
#include "fft/fft.hpp"
#include "fft/spectral.hpp"
#include "layout/raster.hpp"
#include "optics/resolution.hpp"

namespace nitho {

GoldenEngine::GoldenEngine(LithoConfig cfg) : cfg_(cfg) {
  check(cfg_.tile_nm > 0 && cfg_.raster_px > 0, "bad tile configuration");
  check(cfg_.tile_nm % cfg_.raster_px == 0 || cfg_.raster_px % cfg_.tile_nm == 0 ||
            cfg_.raster_px == cfg_.tile_nm,
        "raster must evenly sample the tile");
  check(cfg_.spectrum_crop % 2 == 1, "spectrum crop must be odd");
  check(cfg_.analysis_px % cfg_.sim_px == 0 || cfg_.analysis_px >= cfg_.sim_px,
        "analysis grid must be at least the simulation grid");
  kdim_ = ::nitho::kernel_dim(cfg_.tile_nm, cfg_.optics.wavelength_nm,
                              cfg_.optics.na);
  check(kdim_ <= cfg_.spectrum_crop,
        "spectrum crop smaller than the physical kernel support");
  check(2 * (kdim_ / 2) < cfg_.sim_px,
        "simulation grid cannot hold the kernel band");
  tcc_ = build_tcc(cfg_.optics, cfg_.tile_nm, kdim_);
  kernels_ = socs_decompose(tcc_, kdim_, cfg_.rank_tol, cfg_.max_rank);
  // Owning copy so the engine survives moves of this GoldenEngine.
  aerial_engine_ =
      std::make_unique<AerialEngine>(kernels_.kernels, cfg_.sim_px);
}

Sample GoldenEngine::make_sample(const Grid<double>& mask_raster) const {
  check(mask_raster.rows() == cfg_.raster_px &&
            mask_raster.cols() == cfg_.raster_px,
        "mask raster resolution mismatch");
  Sample s;
  // Fourier coefficients: DFT / N^2 so that DC equals the mean transmission.
  s.spectrum = fft2_crop_centered(mask_raster, cfg_.spectrum_crop);
  const double inv_n2 =
      1.0 / (static_cast<double>(cfg_.raster_px) * cfg_.raster_px);
  for (auto& z : s.spectrum) z *= inv_n2;

  check(cfg_.raster_px % cfg_.analysis_px == 0,
        "analysis grid must divide the raster");
  s.mask_coarse =
      downsample_area(mask_raster, cfg_.raster_px / cfg_.analysis_px);

  const Grid<double> aerial_sim = aerial_engine_->aerial(s.spectrum);
  s.aerial = cfg_.sim_px == cfg_.analysis_px
                 ? aerial_sim
                 : spectral_resample(aerial_sim, cfg_.analysis_px,
                                     cfg_.analysis_px);
  s.resist = develop(s.aerial, cfg_.resist);
  return s;
}

Dataset GoldenEngine::make_dataset(DatasetKind kind, int count,
                                   std::uint64_t seed) const {
  check(count >= 0, "negative dataset size");
  Dataset ds;
  ds.kind = kind;
  ds.name = dataset_name(kind);
  ds.samples.reserve(static_cast<std::size_t>(count));
  Rng rng(seed ^ (0x1000u + static_cast<std::uint64_t>(kind)));
  const int pixel_nm = cfg_.tile_nm / cfg_.raster_px;
  for (int i = 0; i < count; ++i) {
    const Layout layout = make_layout(kind, cfg_.tile_nm, rng);
    ds.samples.push_back(make_sample(rasterize(layout, pixel_nm)));
  }
  return ds;
}

Grid<double> GoldenEngine::reference_aerial(const Grid<double>& mask_raster,
                                            int out_px, int crop) const {
  // Deliberately takes the expensive path end to end: wide spectrum window,
  // per-source-point Abbe imaging directly at the output resolution.
  if (out_px <= 0) out_px = cfg_.analysis_px;
  if (crop <= 0) crop = cfg_.spectrum_crop;
  check(crop <= mask_raster.rows() && crop < out_px,
        "reference crop must fit the raster and output grid");
  Grid<cd> spectrum = fft2_crop_centered(mask_raster, crop);
  const double inv_n2 =
      1.0 / (static_cast<double>(cfg_.raster_px) * cfg_.raster_px);
  for (auto& z : spectrum) z *= inv_n2;
  return abbe_aerial(cfg_.optics, cfg_.tile_nm, spectrum, out_px);
}

}  // namespace nitho
