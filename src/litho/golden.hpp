#pragma once
// Golden data generation: the "litho engine" column of Table II.
//
// GoldenEngine owns one optical system: it builds the physical TCC at the
// Eq.-10 kernel dimension, eigendecomposes it at (numerically) full rank and
// renders ground-truth aerial / resist images for generated layouts.  This
// substitutes the paper's Lithosim/Calibre golden simulators (DESIGN.md §3).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "layout/datasets.hpp"
#include "litho/engine.hpp"
#include "litho/resist.hpp"
#include "litho/simulator.hpp"
#include "math/grid.hpp"
#include "optics/socs.hpp"

namespace nitho {

struct LithoConfig {
  OpticalSystem optics;
  int tile_nm = 1024;         ///< square tile side (paper: 2000 at 1 nm/px)
  int raster_px = 1024;       ///< mask raster resolution (1 nm/px default)
  int analysis_px = 128;      ///< aerial/resist grid for storage and metrics
  int sim_px = 64;            ///< internal aerial computation grid
  int spectrum_crop = 63;     ///< stored centered mask-spectrum crop (odd)
  ResistModel resist;         ///< constant threshold by default
  double rank_tol = 1e-6;     ///< golden SOCS eigenvalue cutoff (relative)
  int max_rank = 320;         ///< golden SOCS kernel cap
};

/// One training/testing tile: everything the models and metrics consume.
struct Sample {
  Grid<cd> spectrum;          ///< centered crop of F(M)/N^2, spectrum_crop^2
  Grid<double> mask_coarse;   ///< mask box-filtered to analysis_px
  Grid<double> aerial;        ///< golden aerial at analysis_px
  Grid<double> resist;        ///< thresholded golden aerial
};

struct Dataset {
  DatasetKind kind = DatasetKind::B1;
  std::string name;
  std::vector<Sample> samples;
};

class GoldenEngine {
 public:
  explicit GoldenEngine(LithoConfig cfg);

  const LithoConfig& config() const { return cfg_; }
  /// Physical kernel support from Eq. (10).
  int kernel_dim() const { return kdim_; }
  /// Full-rank golden kernels (rank() of them).
  const SocsKernels& kernels() const { return kernels_; }
  /// The raw TCC matrix (kdim^2 square).
  const Grid<cd>& tcc() const { return tcc_; }

  /// Renders one mask raster (raster_px square, values in [0,1]).
  Sample make_sample(const Grid<double>& mask_raster) const;

  /// Generates `count` random tiles of a family and renders them.
  Dataset make_dataset(DatasetKind kind, int count, std::uint64_t seed) const;

  /// Rigorous reference simulation used for the Fig. 5 runtime comparison:
  /// Abbe summation with no SOCS shortcuts.  out_px / crop default to the
  /// analysis grid and stored spectrum crop; a rigorous-simulator work
  /// profile passes a fine grid and a wide spectrum window (band-limit
  /// shortcuts are exactly what production rigorous engines do not take).
  Grid<double> reference_aerial(const Grid<double>& mask_raster,
                                int out_px = 0, int crop = 0) const;

 private:
  LithoConfig cfg_;
  int kdim_ = 0;
  Grid<cd> tcc_;
  SocsKernels kernels_;
  /// Persistent batched SOCS engine on the sim grid: make_sample reuses its
  /// FFT plans and workspaces instead of paying per-call setup.
  std::unique_ptr<AerialEngine> aerial_engine_;
};

}  // namespace nitho
