#include "litho/resist.hpp"

#include <cmath>

namespace nitho {

Grid<double> develop(const Grid<double>& aerial, const ResistModel& model) {
  Grid<double> out(aerial.rows(), aerial.cols());
  if (model.steepness <= 0.0) {
    for (std::size_t i = 0; i < aerial.size(); ++i)
      out[i] = aerial[i] >= model.threshold ? 1.0 : 0.0;
  } else {
    for (std::size_t i = 0; i < aerial.size(); ++i)
      out[i] = 1.0 /
               (1.0 + std::exp(-model.steepness * (aerial[i] - model.threshold)));
  }
  return out;
}

}  // namespace nitho
