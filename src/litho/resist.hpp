#pragma once
// Resist models: the paper uses a constant exposure-dose threshold on the
// aerial intensity (Z = H(I - I_thres)).  A smooth sigmoid variant is kept
// for differentiable pipelines and sensitivity studies.

#include "math/grid.hpp"

namespace nitho {

struct ResistModel {
  double threshold = 0.25;   ///< relative to clear-field intensity 1.0
  double steepness = 0.0;    ///< 0 = hard threshold; >0 = sigmoid slope
};

/// Develops an aerial image into a resist pattern.  Hard thresholding
/// returns exact {0,1}; the sigmoid variant returns values in (0,1).
Grid<double> develop(const Grid<double>& aerial, const ResistModel& model);

}  // namespace nitho
