#include "litho/engine.hpp"

#include <algorithm>

#include "common/aligned.hpp"
#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"

namespace nitho {
namespace {

// Kernel-chunk grain of the ordered reduction.  Fixed (not tuned per run)
// so the summation order — and therefore every output bit — is independent
// of worker count and scheduling.  Must stay in sync with DESIGN.md §6.1.
constexpr std::int64_t kGrain = 8;

// Cap on live per-chunk partial intensities during a batch sweep.  Large
// batches are processed in mask windows sized to stay under this, so peak
// memory is outputs + one window instead of batch * ceil(rank/8) grids.
// Windowing cannot change output bits: each mask's chunk partials and
// their reduction order are identical regardless of which window ran it.
constexpr std::int64_t kMaxPartialBytes = 256 << 20;

}  // namespace

/// Per-thread scratch: the out_px^2 field buffer the fused scatter writes
/// into (row-major, cache-line aligned for the SIMD kernels — DESIGN.md
/// §13.3) and the FFT workspace (column buffer + Bluestein scratch).
struct AerialEngine::Workspace {
  explicit Workspace(int out_px)
      : out(out_px),
        field(static_cast<std::size_t>(out_px) * static_cast<std::size_t>(out_px)) {}
  cd* row(int r) {
    return field.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(out);
  }
  int out;
  aligned_vector<cd> field;
  Fft2Workspace fft;
};

AerialEngine::AerialEngine(std::vector<Grid<cd>> kernels, int out_px)
    : AerialEngine(std::make_shared<const std::vector<Grid<cd>>>(
                       std::move(kernels)),
                   out_px) {}

AerialEngine::AerialEngine(
    std::shared_ptr<const std::vector<Grid<cd>>> kernels, int out_px)
    : kernels_(std::move(kernels)), out_px_(out_px) {
  check(kernels_ != nullptr && !kernels_->empty(),
        "AerialEngine needs at least one kernel");
  kdim_ = (*kernels_)[0].rows();
  for (const Grid<cd>& k : *kernels_) {
    check(k.rows() == kdim_ && k.cols() == kdim_, "kernel shape mismatch");
  }
  check(out_px_ >= kdim_, "output grid must fit the kernel support");
  out_plan_ = &fft_plan_d(out_px_);

  // Fused embed + ifftshift: kernel entry (r, c) lands on field row/col
  // scatter_[r] / scatter_[c], i.e. at (out/2 - kdim/2 + r + (out+1)/2)
  // mod out — exactly where ifftshift(center_embed(...)) would put it.
  const int e0 = out_px_ / 2 - kdim_ / 2;
  const int sh = (out_px_ + 1) / 2;
  scatter_.resize(static_cast<std::size_t>(kdim_));
  for (int r = 0; r < kdim_; ++r) {
    scatter_[static_cast<std::size_t>(r)] = (e0 + r + sh) % out_px_;
  }
  band_rows_.assign(scatter_.begin(), scatter_.end());
  std::sort(band_rows_.begin(), band_rows_.end());
}

AerialEngine::~AerialEngine() = default;

std::unique_ptr<AerialEngine::Workspace> AerialEngine::acquire_workspace()
    const {
  {
    LockGuard lk(ws_mu_);
    if (!ws_pool_.empty()) {
      std::unique_ptr<Workspace> ws = std::move(ws_pool_.back());
      ws_pool_.pop_back();
      return ws;
    }
  }
  return std::make_unique<Workspace>(out_px_);
}

void AerialEngine::release_workspace(std::unique_ptr<Workspace> ws) const {
  // Keep enough idle workspaces for a full pool dispatch plus a few pinned
  // external callers (serving shards); beyond that, burst workspaces are
  // cheaper to reallocate than to pin for the engine's lifetime.
  const std::size_t cap = static_cast<std::size_t>(parallel_workers()) + 4;
  LockGuard lk(ws_mu_);
  if (ws_pool_.size() < cap) ws_pool_.push_back(std::move(ws));
}

void AerialEngine::accumulate_kernel(const Grid<cd>& kernel,
                                     const Grid<cd>& spectrum, int r0, int c0,
                                     Workspace& ws,
                                     Grid<double>& local) const {
  std::fill(ws.field.begin(), ws.field.end(), cd(0.0, 0.0));
  // Fused crop -> kernel-multiply -> embed/shift: the product of kernel and
  // cropped-spectrum entries goes straight to its post-ifftshift slot.  The
  // column map (e0 + c + sh) mod out ascends by 1 per kernel column, so a
  // row scatters as at most two contiguous destination segments — each a
  // straight elementwise complex multiply the SIMD layer can vectorize
  // across pixels.
  const int seg_start = scatter_[0];
  const int seg1 = std::min(kdim_, out_px_ - seg_start);
  for (int r = 0; r < kdim_; ++r) {
    const cd* krow = kernel.row(r);
    const cd* srow = spectrum.row(r0 + r) + c0;
    cd* frow = ws.row(scatter_[static_cast<std::size_t>(r)]);
    simd::cmul(frow + seg_start, krow, srow, seg1);
    simd::cmul(frow, krow + seg1, srow + seg1, kdim_ - seg1);
  }
  // Inverse 2-D transform, rows then columns, pruned to the band rows: a
  // structurally zero row inverse-transforms to (signed) zeros, which only
  // ever enter the column pass additively, and |.|^2 erases the sign of
  // zero — so skipping them cannot change any bit of the intensity
  // (DESIGN.md §6.3).
  cd* scratch = ws.fft.scratch_for(*out_plan_);
  for (const int r : band_rows_) {
    out_plan_->inverse(ws.row(r), scratch);
  }
  cd* col = ws.fft.col_buffer(out_px_);
  const cd* field = ws.field.data();
  for (int c = 0; c < out_px_; ++c) {
    for (int r = 0; r < out_px_; ++r) {
      col[r] = field[static_cast<std::size_t>(r) * out_px_ + c];
    }
    out_plan_->inverse(col, scratch);
    for (int r = 0; r < out_px_; ++r) {
      ws.field[static_cast<std::size_t>(r) * out_px_ + c] = col[r];
    }
  }
  // Undo the inverse transforms' 1/out^2 so the field matches the
  // unnormalized Hopkins convention (DESIGN.md §5.1), then accumulate the
  // coherent intensity.  The kernel's scale-then-square order reproduces
  // the historical arithmetic exactly.
  const double scale = static_cast<double>(out_px_) * out_px_;
  simd::abs2_scale_accum(local.data(), field, scale,
                         static_cast<std::int64_t>(local.size()));
}

Grid<double> AerialEngine::aerial(const Grid<cd>& spectrum) const {
  std::vector<Grid<double>> out =
      aerial_batch(std::vector<const Grid<cd>*>{&spectrum});
  return std::move(out.front());
}

std::vector<Grid<double>> AerialEngine::aerial_batch(
    const std::vector<Grid<cd>>& spectra) const {
  std::vector<const Grid<cd>*> ptrs;
  ptrs.reserve(spectra.size());
  for (const Grid<cd>& s : spectra) ptrs.push_back(&s);
  return aerial_batch(ptrs);
}

std::vector<Grid<double>> AerialEngine::aerial_batch(
    const std::vector<const Grid<cd>*>& spectra) const {
  for (const Grid<cd>* s : spectra) {
    check(s != nullptr, "aerial_batch: null spectrum");
    check(s->rows() >= kdim_ && s->cols() >= kdim_,
          "spectrum crop smaller than the kernel support");
  }
  const std::int64_t batch = static_cast<std::int64_t>(spectra.size());
  if (batch == 0) return {};
  const std::int64_t n = rank();
  const std::int64_t chunks = (n + kGrain - 1) / kGrain;
  const std::int64_t per_mask_bytes =
      chunks * static_cast<std::int64_t>(out_px_) * out_px_ *
      static_cast<std::int64_t>(sizeof(double));
  const std::int64_t window =
      std::max<std::int64_t>(1, kMaxPartialBytes / per_mask_bytes);
  const std::vector<Grid<cd>>& kernels = *kernels_;
  std::vector<Grid<double>> out;
  out.reserve(static_cast<std::size_t>(batch));
  std::vector<Grid<double>> partial;
  for (std::int64_t w0 = 0; w0 < batch; w0 += window) {
    const std::int64_t wn = std::min(window, batch - w0);
    // One task per (mask, kernel chunk); partials are reduced per mask in
    // chunk order afterwards, which keeps the sum bit-identical regardless
    // of batch size, window placement, worker count, or scheduling.
    partial.assign(static_cast<std::size_t>(wn * chunks), Grid<double>());
    parallel_for(wn * chunks, [&](std::int64_t ti) {
      const std::int64_t b = w0 + ti / chunks;
      const std::int64_t ci = ti % chunks;
      const Grid<cd>& spectrum = *spectra[static_cast<std::size_t>(b)];
      const int r0 = spectrum.rows() / 2 - kdim_ / 2;
      const int c0 = spectrum.cols() / 2 - kdim_ / 2;
      std::unique_ptr<Workspace> ws = acquire_workspace();
      Grid<double> local(out_px_, out_px_, 0.0);
      const std::int64_t begin = ci * kGrain;
      const std::int64_t end = std::min(n, begin + kGrain);
      for (std::int64_t i = begin; i < end; ++i) {
        accumulate_kernel(kernels[static_cast<std::size_t>(i)], spectrum, r0,
                          c0, *ws, local);
      }
      partial[static_cast<std::size_t>(ti)] = std::move(local);
      release_workspace(std::move(ws));
    });
    for (std::int64_t b = 0; b < wn; ++b) {
      out.push_back(reduce_ordered(
          partial.data() + static_cast<std::size_t>(b * chunks),
          static_cast<std::size_t>(chunks), out_px_));
    }
  }
  return out;
}

Grid<double> reduce_ordered(const Grid<double>* partials, std::size_t count,
                            int out_px) {
  Grid<double> acc(out_px, out_px, 0.0);
  for (std::size_t i = 0; i < count; ++i) {
    const Grid<double>& p = partials[i];
    if (p.empty()) continue;
    check(p.rows() == out_px && p.cols() == out_px,
          "partial intensity shape mismatch");
    for (std::size_t a = 0; a < acc.size(); ++a) acc[a] += p[a];
  }
  return acc;
}

}  // namespace nitho
