#pragma once
// Batched SOCS aerial-image engine (DESIGN.md §6).
//
// AerialEngine fixes one (kernel set, out_px) configuration and owns
// everything the per-kernel hot loop needs: the cached FFT plan for the
// output grid, the precomputed embed/ifftshift scatter maps, and a pool of
// per-thread workspaces.  Evaluating a kernel is then a fused
// crop -> kernel-multiply -> embed/shift scatter -> pruned inverse FFT with
// zero heap allocation per kernel; batches of mask spectra are swept in a
// single parallel_for over (mask, kernel-chunk) tasks.
//
// The floating-point result is bit-identical to the historical per-mask
// socs_aerial: the same chunked ordered reduction (grain 8) is used, the
// scatter feeds the inverse transform exactly the grid
// ifftshift(center_embed(K . c, out_px, out_px)) would hold, and rows of
// that grid that are structurally zero are skipped — a pruning that cannot
// change any output bit because zero rows only ever enter the column pass
// additively and |.|^2 erases the sign of zero (DESIGN.md §6.3).
//
// Thread-safety: aerial / aerial_batch may be called concurrently from
// multiple threads (workspaces are leased from an internal pool), but not
// from inside a parallel_for callback — the shared thread pool does not
// nest.  The pool retains at most parallel_workers() + 4 idle workspaces
// (~out_px^2 complex doubles each); a burst of extra concurrent callers
// allocates transient workspaces that are freed on release instead of
// pinning memory for the engine's lifetime.

#include <memory>
#include <vector>

#include "common/mutex.hpp"
#include "fft/fft.hpp"
#include "math/cplx.hpp"
#include "math/grid.hpp"

namespace nitho {

class AerialEngine {
 public:
  /// Owning constructor: the engine keeps a private copy of the kernels.
  /// All kernels must be square with one common odd-or-even dimension, and
  /// out_px must fit the kernel support.
  AerialEngine(std::vector<Grid<cd>> kernels, int out_px);

  /// Shared-ownership constructor.  Pass an aliasing shared_ptr (empty
  /// deleter) to borrow a kernel vector that outlives the engine without
  /// copying it — socs_aerial builds its transient engines this way.
  AerialEngine(std::shared_ptr<const std::vector<Grid<cd>>> kernels,
               int out_px);

  ~AerialEngine();
  AerialEngine(const AerialEngine&) = delete;
  AerialEngine& operator=(const AerialEngine&) = delete;

  int kernel_dim() const { return kdim_; }
  int out_px() const { return out_px_; }
  int rank() const { return static_cast<int>(kernels_->size()); }
  const std::vector<Grid<cd>>& kernels() const { return *kernels_; }

  /// Aerial intensity of one centered cropped spectrum (>= kernel support).
  /// Bit-identical to socs_aerial(kernels(), spectrum, out_px()).
  Grid<double> aerial(const Grid<cd>& spectrum) const;

  /// Batched evaluation: one intensity grid per input spectrum.  The
  /// (mask, kernel-chunk) task grid keeps every pool worker busy even when
  /// a single mask has fewer chunks than workers; each mask's reduction
  /// stays in chunk order, so results match aerial() bit for bit.
  std::vector<Grid<double>> aerial_batch(
      const std::vector<Grid<cd>>& spectra) const;
  std::vector<Grid<double>> aerial_batch(
      const std::vector<const Grid<cd>*>& spectra) const;

 private:
  struct Workspace;

  std::unique_ptr<Workspace> acquire_workspace() const;
  void release_workspace(std::unique_ptr<Workspace> ws) const;
  void accumulate_kernel(const Grid<cd>& kernel, const Grid<cd>& spectrum,
                         int r0, int c0, Workspace& ws,
                         Grid<double>& local) const;

  std::shared_ptr<const std::vector<Grid<cd>>> kernels_;
  int kdim_ = 0;
  int out_px_ = 0;
  /// Set after the configuration checks pass (never null afterwards), so a
  /// bad out_px fails with the engine's own diagnostics and no plan is
  /// inserted into the process-wide cache.
  const FftPlan<double>* out_plan_ = nullptr;
  /// embed+ifftshift target index per kernel row/column (DESIGN.md §6.2).
  std::vector<int> scatter_;
  /// Sorted field rows that receive kernel data; the only rows the inverse
  /// transform's row pass must touch.
  std::vector<int> band_rows_;

  mutable Mutex ws_mu_;
  mutable std::vector<std::unique_ptr<Workspace>> ws_pool_
      NITHO_GUARDED_BY(ws_mu_);
};

/// Ordered sum of per-chunk partial intensities.  Shared by the engine and
/// abbe_aerial so the two reductions cannot drift apart; empty partials
/// (chunks that contributed nothing) are skipped.
Grid<double> reduce_ordered(const Grid<double>* partials, std::size_t count,
                            int out_px);

}  // namespace nitho
