#pragma once
// Forward lithography simulators.
//
// All three produce the aerial intensity on an out_px x out_px grid covering
// the tile, from a centered cropped mask spectrum holding Fourier
// coefficients c_k = F(M)[k] / N^2 (DC = mean transmission):
//
//   socs_aerial    — Eq. (9): I = sum_i |F^-1(K_i . c)|^2 using decomposed
//                    kernels; the production path (golden data, Nitho).
//   abbe_aerial    — direct source-point summation; independent of the TCC
//                    code path, used to cross-validate SOCS.
//   hopkins_aerial_direct — Eq. (1) quadratic form over the TCC; O(kdim^4),
//                    tests only.
//
// Intensities are normalized so a clear mask images to 1.0 everywhere.

#include <vector>

#include "math/cplx.hpp"
#include "math/grid.hpp"
#include "optics/socs.hpp"
#include "optics/tcc.hpp"

namespace nitho {

/// SOCS imaging.  spectrum must be a centered odd-sized crop at least as
/// large as the kernels; out_px must fit the kernel support.  One-shot
/// convenience over AerialEngine (litho/engine.hpp): callers that image
/// many spectra against one kernel set should hold an engine and use its
/// batch path instead.
Grid<double> socs_aerial(const std::vector<Grid<cd>>& kernels,
                         const Grid<cd>& spectrum, int out_px);

/// Abbe imaging: per-source-point coherent sums over the spectrum's own
/// support.  Slower; exercises none of the TCC/SOCS machinery.
Grid<double> abbe_aerial(const OpticalSystem& sys, int tile_nm,
                         const Grid<cd>& spectrum, int out_px);

/// Hopkins bilinear form evaluated directly from a TCC matrix.
Grid<double> hopkins_aerial_direct(const Grid<cd>& tcc, int kdim,
                                   const Grid<cd>& spectrum, int out_px);

}  // namespace nitho
