#include "litho/simulator.hpp"

#include <memory>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "fft/fft.hpp"
#include "fft/spectral.hpp"
#include "litho/engine.hpp"

namespace nitho {
namespace {

// E on the out grid = unnormalized inverse DFT of the centered spectrum
// a_k (k signed): E_j = sum_k a_k e^{+2 pi i k j / out}.
Grid<cd> field_from_centered(const Grid<cd>& centered, int out_px) {
  Grid<cd> spec = ifftshift(center_embed(centered, out_px, out_px));
  ifft2_inplace(spec);
  const double scale = static_cast<double>(out_px) * out_px;
  for (auto& z : spec) z *= scale;
  return spec;
}

}  // namespace

Grid<double> socs_aerial(const std::vector<Grid<cd>>& kernels,
                         const Grid<cd>& spectrum, int out_px) {
  // A transient engine borrowing the caller's kernels (aliasing shared_ptr,
  // no copy).  Callers with a stable (kernels, out_px) configuration should
  // hold an AerialEngine instead and reuse its plans and workspaces.
  const AerialEngine engine(
      std::shared_ptr<const std::vector<Grid<cd>>>(
          std::shared_ptr<const void>(), &kernels),
      out_px);
  return engine.aerial(spectrum);
}

Grid<double> abbe_aerial(const OpticalSystem& sys, int tile_nm,
                         const Grid<cd>& spectrum, int out_px) {
  const int sdim = spectrum.rows();
  check(spectrum.cols() == sdim && sdim % 2 == 1,
        "spectrum must be a centered odd-sized crop");
  check(out_px >= sdim, "output grid must fit the spectrum support");
  const Pupil pupil(sys.wavelength_nm, sys.na, sys.pupil);
  const std::vector<SourcePoint> src = sample_source(
      sys.source, sys.wavelength_nm, sys.na, tile_nm, sys.source_oversample);

  const std::int64_t n = static_cast<std::int64_t>(src.size());
  const std::int64_t grain = 32;
  const std::int64_t chunks = (n + grain - 1) / grain;
  std::vector<Grid<double>> partial(static_cast<std::size_t>(chunks));
  parallel_for(chunks, [&](std::int64_t ci) {
    // Allocated on the first contributing source point; chunks whose every
    // point is dark leave an empty partial that reduce_ordered skips.
    Grid<double> local;
    const std::int64_t begin = ci * grain, end = std::min(n, begin + grain);
    for (std::int64_t si = begin; si < end; ++si) {
      const SourcePoint& s = src[static_cast<std::size_t>(si)];
      Grid<cd> shifted(sdim, sdim);
      bool any = false;
      for (int r = 0; r < sdim; ++r) {
        const double fy = s.fy + kernel_freq(r, sdim, tile_nm);
        for (int c = 0; c < sdim; ++c) {
          const double fx = s.fx + kernel_freq(c, sdim, tile_nm);
          const cd h = pupil(fx, fy);
          shifted(r, c) = h * spectrum(r, c);
          any = any || (h != cd(0.0, 0.0) && spectrum(r, c) != cd(0.0, 0.0));
        }
      }
      if (!any) continue;
      if (local.empty()) local = Grid<double>(out_px, out_px, 0.0);
      const Grid<cd> e = field_from_centered(shifted, out_px);
      for (std::size_t a = 0; a < local.size(); ++a)
        local[a] += s.weight * norm2(e[a]);
    }
    partial[static_cast<std::size_t>(ci)] = std::move(local);
  });
  return reduce_ordered(partial.data(), partial.size(), out_px);
}

Grid<double> hopkins_aerial_direct(const Grid<cd>& tcc, int kdim,
                                   const Grid<cd>& spectrum, int out_px) {
  check(tcc.rows() == kdim * kdim && tcc.cols() == kdim * kdim,
        "TCC size does not match kdim");
  const Grid<cd> c = center_crop(spectrum, kdim, kdim);
  const int half = kdim / 2;
  const int idim = 2 * kdim - 1;  // intensity spectrum support
  check(out_px >= idim, "output grid must fit the intensity spectrum");

  // S(f) = sum_l T(l + f, l) c_{l+f} conj(c_l) over valid lattice points.
  Grid<cd> s(idim, idim, cd(0.0, 0.0));
  for (int fy = -2 * half; fy <= 2 * half; ++fy) {
    for (int fx = -2 * half; fx <= 2 * half; ++fx) {
      cd acc(0.0, 0.0);
      for (int ly = -half; ly <= half; ++ly) {
        const int my = ly + fy;
        if (my < -half || my > half) continue;
        for (int lx = -half; lx <= half; ++lx) {
          const int mx = lx + fx;
          if (mx < -half || mx > half) continue;
          const int a = (my + half) * kdim + (mx + half);
          const int b = (ly + half) * kdim + (lx + half);
          acc += tcc(a, b) * c(my + half, mx + half) *
                 std::conj(c(ly + half, lx + half));
        }
      }
      s(fy + 2 * half, fx + 2 * half) = acc;
    }
  }
  const Grid<cd> img = field_from_centered(s, out_px);
  return real_part(img);
}

}  // namespace nitho
