#include "layout/raster.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace nitho {
namespace {

// ceil(a / b) for b > 0 and any a.
int ceil_div(int a, int b) { return a >= 0 ? (a + b - 1) / b : -(-a / b); }

}  // namespace

Grid<double> rasterize(const Layout& layout, int pixel_nm) {
  check(layout.tile_nm > 0, "layout has no tile size");
  check(pixel_nm >= 1 && layout.tile_nm % pixel_nm == 0,
        "tile must be divisible by the pixel size");
  const int n = layout.tile_nm / pixel_nm;
  const int p = pixel_nm;
  Grid<double> img(n, n, 0.0);
  auto draw = [&](const Rect& rect) {
    if (!rect.valid()) return;
    // Pixel c has centre c*p + p/2; it is covered when x0 <= centre < x1,
    // i.e. ceil((2*x0 - p) / (2p)) <= c < ceil((2*x1 - p) / (2p)).
    int c0 = std::max(0, ceil_div(2 * rect.x0 - p, 2 * p));
    int c1 = std::min(n, ceil_div(2 * rect.x1 - p, 2 * p));
    int r0 = std::max(0, ceil_div(2 * rect.y0 - p, 2 * p));
    int r1 = std::min(n, ceil_div(2 * rect.y1 - p, 2 * p));
    for (int r = r0; r < r1; ++r) {
      double* row = img.row(r);
      for (int c = c0; c < c1; ++c) row[c] = 1.0;
    }
  };
  for (const Rect& r : layout.main) draw(r);
  for (const Rect& r : layout.sraf) draw(r);
  return img;
}

double pattern_density(const Grid<double>& mask) {
  if (mask.empty()) return 0.0;
  return grid_sum(mask) / static_cast<double>(mask.size());
}

}  // namespace nitho
