#pragma once
// Rectilinear layout geometry.  Masks are unions of axis-aligned rectangles
// in integer nanometre coordinates; this is sufficient for the Manhattan
// metal / via patterns of the ICCAD-2013 and ISPD-2019 style datasets.

#include <string>
#include <vector>

namespace nitho {

/// Half-open axis-aligned rectangle [x0, x1) x [y0, y1) in nm.
struct Rect {
  int x0 = 0, y0 = 0, x1 = 0, y1 = 0;

  int width() const { return x1 - x0; }
  int height() const { return y1 - y0; }
  long long area() const {
    return static_cast<long long>(width()) * height();
  }
  bool valid() const { return x1 > x0 && y1 > y0; }

  Rect expanded(int d) const { return Rect{x0 - d, y0 - d, x1 + d, y1 + d}; }
  bool intersects(const Rect& o) const {
    return x0 < o.x1 && o.x0 < x1 && y0 < o.y1 && o.y0 < y1;
  }
  friend bool operator==(const Rect&, const Rect&) = default;
};

/// A mask tile: a union of rectangles on a square tile of tile_nm per side.
/// main holds printing features; sraf holds sub-resolution assist features
/// (they expose on the mask identically but are tracked separately so OPC
/// and statistics can tell them apart).
struct Layout {
  int tile_nm = 0;
  std::vector<Rect> main;
  std::vector<Rect> sraf;

  /// All mask rectangles (main + SRAF).
  std::vector<Rect> all() const;
  /// Total drawn area in nm^2 ignoring overlaps (diagnostic only).
  long long drawn_area() const;
  /// Clips every rectangle to the tile and drops empty ones.
  void clip_to_tile();
};

}  // namespace nitho
