#include "layout/datasets.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "layout/opc.hpp"

namespace nitho {

std::string dataset_name(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::B1:
      return "B1";
    case DatasetKind::B1opc:
      return "B1opc";
    case DatasetKind::B2m:
      return "B2m";
    case DatasetKind::B2v:
      return "B2v";
  }
  check_fail("unknown dataset kind", std::source_location::current());
}

Layout make_b1_layout(int tile_nm, Rng& rng) {
  // ICCAD-2013 style: a handful of chunky rectilinear polygons built as
  // unions of overlapping rectangles (L / T / U shapes), generous spacing.
  Layout l;
  l.tile_nm = tile_nm;
  const int margin = tile_nm / 8;
  const int shapes = rng.randint(3, 5);
  for (int s = 0; s < shapes; ++s) {
    const int cx = rng.randint(margin, tile_nm - margin);
    const int cy = rng.randint(margin, tile_nm - margin);
    const int pieces = rng.randint(1, 3);
    int px = cx, py = cy;
    for (int p = 0; p < pieces; ++p) {
      const bool horizontal = rng.bernoulli(0.5);
      const int w = rng.randint(60, 140);   // critical dimension
      const int len = rng.randint(180, 420);
      Rect r = horizontal ? Rect{px - len / 2, py - w / 2, px + len / 2, py + w / 2}
                          : Rect{px - w / 2, py - len / 2, px + w / 2, py + len / 2};
      l.main.push_back(r);
      // Next piece grows from one end of this one -> rectilinear polygons.
      if (horizontal) {
        px = rng.bernoulli(0.5) ? r.x0 + w / 2 : r.x1 - w / 2;
        py = py + (rng.bernoulli(0.5) ? 1 : -1) * rng.randint(0, len / 3);
      } else {
        py = rng.bernoulli(0.5) ? r.y0 + w / 2 : r.y1 - w / 2;
        px = px + (rng.bernoulli(0.5) ? 1 : -1) * rng.randint(0, len / 3);
      }
    }
  }
  l.clip_to_tile();
  return l;
}

Layout make_b2m_layout(int tile_nm, Rng& rng) {
  // ISPD-2019 metal: parallel routed tracks on a fixed pitch with random
  // segment extents and occasional jogs to the neighbouring track.
  Layout l;
  l.tile_nm = tile_nm;
  const bool horizontal = rng.bernoulli(0.5);
  const int pitch = rng.randint(7, 10) * 16;       // 112..160 nm
  const int width = rng.randint(45, 70);
  const int first = rng.randint(width, pitch);
  for (int t = first; t + width < tile_nm; t += pitch) {
    if (!rng.bernoulli(0.85)) continue;  // track vacancy
    int pos = rng.randint(0, tile_nm / 4);
    const int segments = rng.randint(1, 2);
    for (int s = 0; s < segments && pos < tile_nm; ++s) {
      const int len = rng.randint(tile_nm / 4, (3 * tile_nm) / 4);
      const int end = std::min(pos + len, tile_nm);
      if (horizontal) {
        l.main.push_back(Rect{pos, t, end, t + width});
      } else {
        l.main.push_back(Rect{t, pos, t + width, end});
      }
      // Occasional jog to the next track (gives the layer its 2-D character).
      if (rng.bernoulli(0.25) && t + pitch + width < tile_nm) {
        const int jx = rng.randint(pos, std::max(pos + 1, end - width));
        if (horizontal) {
          l.main.push_back(Rect{jx, t, jx + width, t + pitch + width});
        } else {
          l.main.push_back(Rect{t, jx, t + pitch + width, jx + width});
        }
      }
      pos = end + rng.randint(pitch, 2 * pitch);
    }
  }
  l.clip_to_tile();
  return l;
}

Layout make_b2v_layout(int tile_nm, Rng& rng) {
  // ISPD-2019 via layer: small square contacts on a coarse virtual grid,
  // sparsely populated, with occasional 1x2 / 2x2 clusters.
  Layout l;
  l.tile_nm = tile_nm;
  const int via = rng.randint(60, 85);
  const int pitch = rng.randint(10, 16) * 16;  // 160..256 nm
  const double fill = rng.uniform(0.12, 0.3);
  for (int gy = pitch / 2; gy + via < tile_nm; gy += pitch) {
    for (int gx = pitch / 2; gx + via < tile_nm; gx += pitch) {
      if (!rng.bernoulli(fill)) continue;
      l.main.push_back(Rect{gx, gy, gx + via, gy + via});
      if (rng.bernoulli(0.15) && gx + pitch + via < tile_nm) {
        l.main.push_back(Rect{gx + pitch, gy, gx + pitch + via, gy + via});
      }
      if (rng.bernoulli(0.08) && gy + pitch + via < tile_nm) {
        l.main.push_back(Rect{gx, gy + pitch, gx + via, gy + pitch + via});
      }
    }
  }
  // Guarantee at least one feature so tiles are never blank.
  if (l.main.empty()) {
    const int c = tile_nm / 2;
    l.main.push_back(Rect{c - via / 2, c - via / 2, c + via / 2, c + via / 2});
  }
  l.clip_to_tile();
  return l;
}

Layout make_layout(DatasetKind kind, int tile_nm, Rng& rng) {
  check(tile_nm >= 256, "tile too small for the design rules");
  switch (kind) {
    case DatasetKind::B1:
      return make_b1_layout(tile_nm, rng);
    case DatasetKind::B1opc:
      return apply_rule_based_opc(make_b1_layout(tile_nm, rng));
    case DatasetKind::B2m:
      return make_b2m_layout(tile_nm, rng);
    case DatasetKind::B2v:
      return make_b2v_layout(tile_nm, rng);
  }
  check_fail("unknown dataset kind", std::source_location::current());
}

}  // namespace nitho
