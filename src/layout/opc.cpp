#include "layout/opc.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace nitho {
namespace {

bool clear_of(const Rect& candidate, const std::vector<Rect>& placed,
              int clearance) {
  const Rect grown = candidate.expanded(clearance);
  return std::none_of(placed.begin(), placed.end(),
                      [&](const Rect& m) { return grown.intersects(m); });
}

}  // namespace

Layout apply_rule_based_opc(const Layout& layout, const OpcRules& rules) {
  check(layout.tile_nm > 0, "layout has no tile size");
  Layout out;
  out.tile_nm = layout.tile_nm;

  // 1. Edge bias: grow every main feature uniformly.
  for (const Rect& r : layout.main) {
    out.main.push_back(r.expanded(rules.edge_bias_nm));
  }

  // 2. Corner serifs: a small square centred on each (biased) corner.
  if (rules.serif_size_nm > 0) {
    const int s = rules.serif_size_nm;
    const int h = s / 2;
    std::vector<Rect> serifs;
    for (const Rect& r : out.main) {
      const int xs[2] = {r.x0, r.x1};
      const int ys[2] = {r.y0, r.y1};
      for (int cx : xs) {
        for (int cy : ys) {
          serifs.push_back(Rect{cx - h, cy - h, cx - h + s, cy - h + s});
        }
      }
    }
    out.main.insert(out.main.end(), serifs.begin(), serifs.end());
  }

  // 3. SRAFs: thin bars parallel to long edges, offset into free space.
  // Candidates must be valid before any clearance test: an inverted rect
  // (possible when the edge is barely above sraf_min_edge_nm but shorter
  // than twice the bar width) never intersects anything, so it would pass
  // the checks and then poison later candidate tests, which intersect
  // against the *expanded* candidate.  They must also clear SRAFs placed
  // earlier, not just main features — adjacent features otherwise emit
  // overlapping assist bars, which print.
  if (rules.sraf_width_nm > 0) {
    const auto place = [&](const Rect& bar, int clearance) {
      if (!bar.valid()) return;
      if (!clear_of(bar, out.main, clearance)) return;
      if (!clear_of(bar, out.sraf, clearance)) return;
      out.sraf.push_back(bar);
    };
    for (const Rect& r : layout.main) {  // offsets from *original* edges
      const Rect b = r.expanded(rules.edge_bias_nm);
      const int w = rules.sraf_width_nm;
      const int off = rules.sraf_offset_nm;
      if (b.width() >= rules.sraf_min_edge_nm) {
        // horizontal bars above and below
        const int x0 = b.x0 + w, x1 = b.x1 - w;
        place(Rect{x0, b.y0 - off - w, x1, b.y0 - off}, off / 2);
        place(Rect{x0, b.y1 + off, x1, b.y1 + off + w}, off / 2);
      }
      if (b.height() >= rules.sraf_min_edge_nm) {
        const int y0 = b.y0 + w, y1 = b.y1 - w;
        place(Rect{b.x0 - off - w, y0, b.x0 - off, y1}, off / 2);
        place(Rect{b.x1 + off, y0, b.x1 + off + w, y1}, off / 2);
      }
    }
  }

  out.clip_to_tile();
  return out;
}

}  // namespace nitho
