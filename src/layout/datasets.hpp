#pragma once
// Synthetic layout generators standing in for the paper's four benchmarks
// (Table II): B1 (ICCAD-2013 metal tiles), B1opc (the same after rule-based
// OPC), B2m (ISPD-2019 metal routing) and B2v (ISPD-2019 via arrays).
// Each family has distinct shape statistics so they separate in t-SNE
// (Fig. 2a) and stress out-of-distribution generalization (Table IV).

#include <string>

#include "common/rng.hpp"
#include "layout/geometry.hpp"

namespace nitho {

enum class DatasetKind { B1, B1opc, B2m, B2v };

std::string dataset_name(DatasetKind kind);

/// One random tile of the given family.  The same seed stream produces the
/// same tile; B1opc tiles are OPC-decorated B1 tiles (use the same Rng state
/// to get the underlying B1 design of a B1opc tile).
Layout make_layout(DatasetKind kind, int tile_nm, Rng& rng);

/// Family-specific generators (exposed for tests / custom pipelines).
Layout make_b1_layout(int tile_nm, Rng& rng);    ///< chunky rectilinear metal
Layout make_b2m_layout(int tile_nm, Rng& rng);   ///< routed wire tracks
Layout make_b2v_layout(int tile_nm, Rng& rng);   ///< contact / via arrays

}  // namespace nitho
