#pragma once
// Layout -> binary mask image rasterization.

#include "layout/geometry.hpp"
#include "math/grid.hpp"

namespace nitho {

/// Rasterizes a layout at pixel_nm per pixel (tile_nm must be divisible).
/// Pixel (r, c) covers [c*pixel_nm, (c+1)*pixel_nm) x [r*pixel_nm, ...).
/// A pixel is 1.0 when any rectangle covers its centre; the default
/// 1 nm / pixel grid makes this exact for integer-nm geometry.
Grid<double> rasterize(const Layout& layout, int pixel_nm = 1);

/// Fraction of mask area that is drawn (pattern density in [0, 1]).
double pattern_density(const Grid<double>& mask);

}  // namespace nitho
