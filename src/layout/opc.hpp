#pragma once
// Rule-based optical proximity correction.
//
// The paper's B1opc dataset is the ICCAD-2013 tiles after OPC by MOSAIC;
// a full inverse-lithography OPC engine is out of scope, but the *mask
// statistics* that make B1opc out-of-distribution for image-learning models
// (edge bias, corner serifs, sub-resolution assist features) are produced by
// the classic rule-based decorations implemented here.

#include "layout/geometry.hpp"

namespace nitho {

struct OpcRules {
  int edge_bias_nm = 6;        ///< uniform grow of every main feature
  int serif_size_nm = 24;      ///< square serif edge length (0 disables)
  int sraf_width_nm = 18;      ///< assist-feature width (0 disables)
  int sraf_offset_nm = 52;     ///< gap between feature edge and SRAF
  int sraf_min_edge_nm = 160;  ///< only edges at least this long get SRAFs
};

/// Returns the decorated layout: biased features + corner serifs in main,
/// assist bars in sraf.  SRAFs that would touch another main feature are
/// dropped (they must stay sub-resolution and isolated).
Layout apply_rule_based_opc(const Layout& layout, const OpcRules& rules = {});

}  // namespace nitho
