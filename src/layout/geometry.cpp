#include "layout/geometry.hpp"

#include <algorithm>

namespace nitho {

std::vector<Rect> Layout::all() const {
  std::vector<Rect> out = main;
  out.insert(out.end(), sraf.begin(), sraf.end());
  return out;
}

long long Layout::drawn_area() const {
  long long a = 0;
  for (const Rect& r : main) a += r.area();
  for (const Rect& r : sraf) a += r.area();
  return a;
}

void Layout::clip_to_tile() {
  auto clip = [this](std::vector<Rect>& rs) {
    for (Rect& r : rs) {
      r.x0 = std::max(r.x0, 0);
      r.y0 = std::max(r.y0, 0);
      r.x1 = std::min(r.x1, tile_nm);
      r.y1 = std::min(r.y1, tile_nm);
    }
    std::erase_if(rs, [](const Rect& r) { return !r.valid(); });
  };
  clip(main);
  clip(sraf);
}

}  // namespace nitho
