#include "rollout/rollout.hpp"

#include <cmath>
#include <cstdio>
#include <exception>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "nitho/fast_litho.hpp"
#include "serve/server.hpp"

namespace nitho::rollout {

TrainerReplica::TrainerReplica(int id, const RolloutConfig& cfg,
                               const TrainingSet& train_set,
                               NithoTrainConfig train_cfg)
    : id_(id),
      model_(cfg.model, cfg.tile_nm, cfg.wavelength_nm, cfg.na),
      trainer_(model_, train_set, train_cfg) {}

void TrainerReplica::train_epochs(int n) {
  check(n >= 1, "train_epochs: need at least one epoch");
  for (int i = 0; i < n && !trainer_.done(); ++i) trainer_.run_epoch();
}

double TrainerReplica::evaluate(const TrainingSet& holdout, int batch) const {
  return evaluate_nitho(model_, holdout, batch);
}

void TrainerReplica::save_state(std::ostream& os) const {
  trainer_.save_state(os);
}

void TrainerReplica::load_state(std::istream& is) { trainer_.load_state(is); }

RolloutController::RolloutController(RolloutConfig cfg,
                                     const TrainingSet& train_set,
                                     const TrainingSet& holdout)
    : cfg_(cfg), train_set_(train_set), holdout_(holdout), rng_(cfg.seed) {
  check(cfg_.replicas >= 1, "rollout needs at least one replica");
  check(cfg_.rounds >= 1 && cfg_.epochs_per_round >= 1,
        "bad tournament cadence");
  check(cfg_.lr_spread >= 1.0f, "lr_spread must be >= 1");
  check(cfg_.eval_batch >= 1, "bad eval batch size");
  check(holdout_.kernel_dim == train_set_.kernel_dim,
        "train and holdout sets prepared for different kernel supports");
  // The trainer owns the LR schedule over the whole tournament.
  cfg_.train.epochs = cfg_.rounds * cfg_.epochs_per_round;
  for (int i = 0; i < cfg_.replicas; ++i) {
    NithoTrainConfig tc = cfg_.train;
    tc.seed = cfg_.train.seed + static_cast<std::uint64_t>(i);
    if (i > 0) tc.lr = perturbed_lr();
    replicas_.push_back(
        std::make_unique<TrainerReplica>(i, cfg_, train_set_, tc));
  }
}

TrainerReplica& RolloutController::replica(int i) {
  check(i >= 0 && i < replica_count(), "replica index out of range");
  return *replicas_[static_cast<std::size_t>(i)];
}

void RolloutController::set_observer(obs::MetricsRegistry* registry,
                                     obs::Tracer* tracer,
                                     std::uint32_t base_track) {
  obs_tracer_ = tracer;
  obs_base_track_ = base_track;
  if (registry != nullptr) {
    g_round_ = &registry->gauge("rollout.round");
    g_winner_ = &registry->gauge("rollout.winner");
    g_winner_loss_ = &registry->gauge("rollout.winner_loss");
    g_winner_lr_ = &registry->gauge("rollout.winner_lr");
    g_round_seconds_ = &registry->gauge("rollout.round_seconds");
    g_generation_ = &registry->gauge("rollout.generation");
    c_swaps_ = &registry->counter("rollout.swaps");
  } else {
    g_round_ = g_winner_ = g_winner_loss_ = g_winner_lr_ = nullptr;
    g_round_seconds_ = g_generation_ = nullptr;
    c_swaps_ = nullptr;
  }
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    replicas_[i]->trainer().set_observer(
        registry, tracer,
        base_track + 1 + static_cast<std::uint32_t>(i),
        "rollout.r" + std::to_string(i));
  }
}

float RolloutController::perturbed_lr() {
  // Log-uniform over [lr / spread, lr * spread]: multiplicative moves are
  // the natural exploration scale for learning rates.
  const double span = std::log(static_cast<double>(cfg_.lr_spread));
  const double factor = std::exp(rng_.uniform(-span, span));
  return static_cast<float>(static_cast<double>(cfg_.train.lr) * factor);
}

RoundResult RolloutController::run_round(serve::LithoServer* server) {
  check(!done(), "run_round: tournament already complete");
  WallTimer timer;
  RoundResult res;
  res.round = round_ + 1;
  // Controller spans are one-per-phase-per-round — far below any sampling
  // rate — so they bypass sample() and emit whenever tracing is on.
  const bool traced = obs_tracer_ != nullptr && obs_tracer_->enabled();
  const auto span_begin = [&]() -> std::int64_t {
    return traced ? obs_tracer_->now_us() : 0;
  };
  const auto span_end = [&](const char* name, std::int64_t t0) {
    if (!traced) return;
    obs_tracer_->record({name, "rollout",
                         static_cast<std::uint64_t>(res.round),
                         obs_base_track_, t0, obs_tracer_->now_us() - t0});
  };
  const std::int64_t t_round = span_begin();

  // Train phase: one background thread per replica (each touches only its
  // own model/trainer; the shared TrainingSet is read-only).  The join is
  // the tournament barrier.  A throwing replica fails the round, but only
  // after every thread has stopped.
  const std::int64_t t_train = span_begin();
  std::vector<std::exception_ptr> errors(replicas_.size());
  {
    std::vector<std::thread> workers;
    workers.reserve(replicas_.size());
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      workers.emplace_back([this, i, &errors] {
        try {
          replicas_[i]->train_epochs(cfg_.epochs_per_round);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  span_end("train", t_train);

  // Rank phase: held-out loss, deterministic (ordered reduction inside
  // evaluate_nitho; ties break toward the lowest replica id).
  const std::int64_t t_rank = span_begin();
  res.eval_losses.reserve(replicas_.size());
  res.winner = 0;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const double loss = replicas_[i]->evaluate(holdout_, cfg_.eval_batch);
    res.eval_losses.push_back(loss);
    if (loss < res.eval_losses[static_cast<std::size_t>(res.winner)]) {
      res.winner = static_cast<int>(i);
    }
  }
  TrainerReplica& winner = *replicas_[static_cast<std::size_t>(res.winner)];
  res.winner_loss = res.eval_losses[static_cast<std::size_t>(res.winner)];
  res.winner_lr = winner.trainer().config().lr;
  span_end("rank", t_rank);

  // Publish phase: the winner's kernels become the server's next snapshot
  // generation.  In-flight requests finish on the snapshot they captured
  // at submit, so the swap never mixes generations within a batch.
  if (server != nullptr) {
    const std::int64_t t_swap = span_begin();
    res.generation = server->swap_kernels(
        FastLitho::from_model(winner.model(), cfg_.resist_threshold));
    ++stats_.swaps;
    if (c_swaps_ != nullptr) c_swaps_->inc();
    span_end("swap", t_swap);
  }

  // Exploit + explore phase (LTFB): losers adopt the winner's entire
  // trainer state, then re-draw their learning rate from the configured
  // band (log-uniform around train.lr, so exploration never drifts
  // unboundedly).  Serialize once; each adoption reads a private stream.
  if (replicas_.size() > 1) {
    const std::int64_t t_adopt = span_begin();
    std::ostringstream state;
    winner.save_state(state);
    const std::string blob = state.str();
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (static_cast<int>(i) == res.winner) continue;
      std::istringstream is(blob);
      replicas_[i]->load_state(is);
      replicas_[i]->trainer().set_base_lr(perturbed_lr());
    }
    span_end("adopt", t_adopt);
  }

  ++round_;
  res.seconds = timer.seconds();
  stats_.rounds.push_back(res);
  stats_.final_winner = res.winner;
  span_end("round", t_round);
  if (g_round_ != nullptr) {
    g_round_->set(static_cast<double>(res.round));
    g_winner_->set(static_cast<double>(res.winner));
    g_winner_loss_->set(res.winner_loss);
    g_winner_lr_->set(static_cast<double>(res.winner_lr));
    g_round_seconds_->set(res.seconds);
    g_generation_->set(static_cast<double>(res.generation));
  }
  if (cfg_.verbose) {
    std::printf(
        "  [rollout] round %d/%d  winner r%d  loss %.3e  lr %.3e  gen %llu\n",
        res.round, cfg_.rounds, res.winner, res.winner_loss,
        static_cast<double>(res.winner_lr),
        static_cast<unsigned long long>(res.generation));
    std::fflush(stdout);
  }
  return res;
}

RolloutStats RolloutController::run(serve::LithoServer* server) {
  while (!done()) run_round(server);
  return stats_;
}

}  // namespace nitho::rollout
