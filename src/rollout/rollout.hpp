#pragma once
// Continual-learning rollout (DESIGN.md §11): K trainer replicas with
// perturbed hyperparameters train concurrently in background threads; at
// each tournament round they synchronize, are ranked by held-out imaging
// loss (evaluate_nitho), and the winner's kernels are hot-swapped into a
// live LithoServer via swap_kernels — zero downtime, and because every
// request captures its kernel snapshot at submit, each served result
// belongs to exactly one model generation (the value swap_kernels
// returned).  Losers adopt the winner's full trainer state (weights, Adam
// moments, RNG, trajectory — NithoTrainer::save_state/load_state) and then
// re-perturb their learning rate, LBANN's LTFB exploration scheme.
//
// Determinism: with a fixed RolloutConfig::seed the whole tournament —
// perturbed rates, per-round losses, winners and final weights — is
// reproducible; only the interleaving with served traffic varies.  The
// serialize→restore→resume path each adoption rides is pinned bit-exactly
// in tests/test_nitho.cpp; the tournament itself in tests/test_rollout.cpp.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "nitho/model.hpp"
#include "nitho/trainer.hpp"

namespace nitho::serve {
class LithoServer;
}  // namespace nitho::serve

namespace nitho::rollout {

struct RolloutConfig {
  /// Tournament width (K) and cadence.  Each replica trains
  /// epochs_per_round epochs between tournaments; rounds tournaments make
  /// a full run (so every replica trains rounds * epochs_per_round epochs
  /// — NithoTrainConfig::epochs is derived, not read).
  int replicas = 3;
  int rounds = 2;
  int epochs_per_round = 2;

  /// Replica model architecture.  All replicas share the same init (the
  /// model seed lives in NithoConfig), so they differ only in
  /// hyperparameters and shuffle streams, the LTFB setup.
  NithoConfig model;
  int tile_nm = 512;
  double wavelength_nm = 193.0;
  double na = 1.35;

  /// Base hyperparameters.  Replica 0 trains at train.lr; replica i > 0
  /// and every re-perturbed loser draw lr from
  /// [train.lr / lr_spread, train.lr * lr_spread] (log-uniform).  Each
  /// replica's shuffle seed is train.seed + id.
  NithoTrainConfig train;
  float lr_spread = 2.0f;

  /// Held-out ranking metric batch size (evaluate_nitho).
  int eval_batch = 4;
  /// Print threshold for the exported FastLitho snapshots.
  double resist_threshold = 0.25;
  /// Controller RNG seed: drives every lr perturbation.
  std::uint64_t seed = 7;
  bool verbose = false;
};

/// One tournament participant: a private model + resumable trainer.  The
/// training set is borrowed (shared, read-only, across all replicas) and
/// must outlive the replica.
class TrainerReplica {
 public:
  TrainerReplica(int id, const RolloutConfig& cfg,
                 const TrainingSet& train_set, NithoTrainConfig train_cfg);

  int id() const { return id_; }
  NithoModel& model() { return model_; }
  const NithoModel& model() const { return model_; }
  NithoTrainer& trainer() { return trainer_; }
  const NithoTrainer& trainer() const { return trainer_; }

  /// Runs up to n epochs (stops early at the trainer's configured total).
  void train_epochs(int n);

  /// Held-out mean imaging MSE (the tournament ranking metric).
  double evaluate(const TrainingSet& holdout, int batch) const;

  /// Full replica state (the trainer's save_state/load_state): a replica
  /// stopped here, restored into a fresh replica and resumed matches the
  /// uninterrupted run bit-exactly.  load_state never partially restores.
  void save_state(std::ostream& os) const;
  void load_state(std::istream& is);

 private:
  int id_;
  NithoModel model_;
  NithoTrainer trainer_;
};

/// One tournament round's outcome.
struct RoundResult {
  int round = 0;                   ///< 1-based round index
  std::vector<double> eval_losses; ///< per replica, holdout MSE
  int winner = -1;                 ///< replica id with the lowest loss
  double winner_loss = 0.0;
  float winner_lr = 0.0f;          ///< the winner's base lr this round
  /// Kernel-snapshot generation the winner was published as (0 when the
  /// round ran without a server).
  std::uint64_t generation = 0;
  double seconds = 0.0;            ///< wall time of the round
};

struct RolloutStats {
  std::vector<RoundResult> rounds;
  int final_winner = -1;
  std::uint64_t swaps = 0;  ///< snapshots published into the server
};

/// Drives the tournament.  Train and holdout sets must be disjoint for the
/// ranking to mean anything (the controller cannot verify that) and must
/// both be prepared for cfg.model's kernel support.
class RolloutController {
 public:
  RolloutController(RolloutConfig cfg, const TrainingSet& train_set,
                    const TrainingSet& holdout);

  /// One round: every replica trains epochs_per_round epochs on its own
  /// thread (the barrier is the round's join), replicas are ranked on the
  /// holdout, the winner is swapped into `server` (when non-null) and the
  /// losers adopt + re-perturb.  Throws if the tournament is complete;
  /// a replica's training error propagates out after all threads join.
  RoundResult run_round(serve::LithoServer* server);

  /// All remaining rounds; returns the accumulated stats.
  RolloutStats run(serve::LithoServer* server = nullptr);

  /// Binds observability sinks (borrowed; must outlive the controller —
  /// both may be null to unbind).  Round outcomes publish as "rollout.*"
  /// gauges/counters; each replica's trainer is wired with prefix
  /// "rollout.r<id>".  With a tracer, the controller's round/train/rank/
  /// swap/adopt spans go on track `base_track` and replica i's step spans
  /// on track base_track + 1 + i — size the tracer accordingly (controller
  /// spans are per round, so they bypass sampling; replica step spans
  /// sample as usual).  Timing-only: tournament arithmetic is unchanged.
  void set_observer(obs::MetricsRegistry* registry,
                    obs::Tracer* tracer = nullptr,
                    std::uint32_t base_track = 0);

  bool done() const { return round_ >= cfg_.rounds; }
  int rounds_done() const { return round_; }
  int replica_count() const { return static_cast<int>(replicas_.size()); }
  TrainerReplica& replica(int i);
  const RolloutConfig& config() const { return cfg_; }
  const RolloutStats& stats() const { return stats_; }

 private:
  float perturbed_lr();

  RolloutConfig cfg_;
  const TrainingSet& train_set_;
  const TrainingSet& holdout_;
  Rng rng_;
  std::vector<std::unique_ptr<TrainerReplica>> replicas_;
  RolloutStats stats_;
  int round_ = 0;
  /// Observability (set_observer); all borrowed, all optional.
  obs::Tracer* obs_tracer_ = nullptr;
  std::uint32_t obs_base_track_ = 0;
  obs::Gauge* g_round_ = nullptr;
  obs::Gauge* g_winner_ = nullptr;
  obs::Gauge* g_winner_loss_ = nullptr;
  obs::Gauge* g_winner_lr_ = nullptr;
  obs::Gauge* g_round_seconds_ = nullptr;
  obs::Gauge* g_generation_ = nullptr;
  obs::Counter* c_swaps_ = nullptr;
};

}  // namespace nitho::rollout
