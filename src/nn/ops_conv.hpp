#pragma once
// Convolutional building blocks for the image-to-image baselines
// (TEMPO-like encoder-decoder, DOINN-like high-frequency branch).

#include "nn/autodiff.hpp"

namespace nitho::nn {

/// Same-padded stride-1 2-D convolution.
/// x: [Cin, H, W]; w: [Cout, Cin, kh, kw] (odd kernels); b: [Cout].
Var conv2d(const Var& x, const Var& w, const Var& b);

/// 2x average pooling (H, W must be even).
Var avg_pool2(const Var& x);

/// 2x nearest-neighbour upsampling.
Var upsample2(const Var& x);

}  // namespace nitho::nn
