#include "nn/serialize.hpp"

#include <algorithm>
#include <istream>
#include <limits>
#include <ostream>

#include "common/check.hpp"
#include "io/tensor_io.hpp"

namespace nitho::nn {
namespace {

// Stream-record framing: [magic u32][kind u32][payload].  The magic is
// distinct from io/tensor_io's file magic so a state stream misread as a
// tensor file (or vice versa) fails loudly on the first record.
constexpr std::uint32_t kRecordMagic = 0x4E535452u;  // "RTSN"

enum class Rec : std::uint32_t {
  kTensor = 1,
  kFloats = 2,
  kDoubles = 3,
  kU64 = 4,
  kF32 = 5,
  kString = 6,
};

// Corrupt headers routinely decode as absurd element counts; cap what a
// single record may ask this process to allocate (2^33 floats = 32 GiB is
// already far past any checkpoint in this codebase).
constexpr std::int64_t kMaxRecordElems = std::int64_t{1} << 33;

template <typename T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
  check(os.good(), "state write failed");
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  check(is.good(), "state stream truncated");
  return v;
}

void write_header(std::ostream& os, Rec kind) {
  write_pod(os, kRecordMagic);
  write_pod(os, static_cast<std::uint32_t>(kind));
}

void expect_header(std::istream& is, Rec kind) {
  const auto magic = read_pod<std::uint32_t>(is);
  check(magic == kRecordMagic, "state stream corrupt: bad record magic");
  const auto tag = read_pod<std::uint32_t>(is);
  check(tag == static_cast<std::uint32_t>(kind),
        "state stream corrupt: unexpected record kind");
}

std::int64_t read_count(std::istream& is) {
  const auto n = read_pod<std::int64_t>(is);
  check(n >= 0 && n <= kMaxRecordElems,
        "state stream corrupt: implausible element count");
  return n;
}

template <typename T>
void write_span(std::ostream& os, const T* data, std::int64_t n) {
  write_pod(os, n);
  os.write(reinterpret_cast<const char*>(data),
           static_cast<std::streamsize>(n) *
               static_cast<std::streamsize>(sizeof(T)));
  check(os.good(), "state write failed");
}

template <typename T>
std::vector<T> read_span(std::istream& is) {
  const std::int64_t n = read_count(is);
  std::vector<T> out(static_cast<std::size_t>(n));
  if (n > 0) {
    is.read(reinterpret_cast<char*>(out.data()),
            static_cast<std::streamsize>(n) *
                static_cast<std::streamsize>(sizeof(T)));
    check(is.good(), "state stream truncated");
  }
  return out;
}

}  // namespace

std::vector<float> dump_parameters(std::span<const Var> params) {
  std::vector<float> out;
  out.reserve(static_cast<std::size_t>(parameter_count(params)));
  for (const Var& p : params) {
    check(p != nullptr, "null parameter");
    const float* d = p->value.data();
    out.insert(out.end(), d, d + p->value.numel());
  }
  return out;
}

void load_parameters(std::span<const Var> params,
                     const std::vector<float>& data) {
  check(static_cast<std::int64_t>(data.size()) == parameter_count(params),
        "parameter blob size mismatch");
  std::size_t off = 0;
  for (const Var& p : params) {
    float* d = p->value.data();
    const std::size_t n = static_cast<std::size_t>(p->value.numel());
    std::copy(data.begin() + off, data.begin() + off + n, d);
    off += n;
  }
}

void save_parameters_file(const std::string& path,
                          std::span<const Var> params) {
  save_floats(path, dump_parameters(params));
}

void load_parameters_file(const std::string& path,
                          std::span<const Var> params) {
  load_parameters(params, load_floats(path));
}

std::int64_t parameter_bytes(std::span<const Var> params) {
  return parameter_count(params) * static_cast<std::int64_t>(sizeof(float));
}

void write_tensor(std::ostream& os, const Tensor& t) {
  write_header(os, Rec::kTensor);
  write_pod(os, static_cast<std::uint32_t>(t.ndim()));
  for (int i = 0; i < t.ndim(); ++i) {
    write_pod(os, static_cast<std::int64_t>(t.dim(i)));
  }
  write_span(os, t.data(), t.numel());
}

Tensor read_tensor(std::istream& is) {
  expect_header(is, Rec::kTensor);
  const auto rank = read_pod<std::uint32_t>(is);
  check(rank <= 8, "state stream corrupt: implausible tensor rank");
  std::vector<int> shape(rank);
  std::int64_t numel = rank == 0 ? 0 : 1;
  for (auto& d : shape) {
    const auto dim = read_pod<std::int64_t>(is);
    check(dim >= 0 && dim <= std::numeric_limits<int>::max(),
          "state stream corrupt: tensor dim out of range");
    check(dim == 0 || numel <= kMaxRecordElems / dim,
          "state stream corrupt: tensor element count out of range");
    numel = dim == 0 ? 0 : numel * dim;
    d = static_cast<int>(dim);
  }
  const std::int64_t stored = read_count(is);
  check(stored == numel,
        "state stream corrupt: tensor payload disagrees with its shape");
  Tensor t(shape);
  if (numel > 0) {
    is.read(reinterpret_cast<char*>(t.data()),
            static_cast<std::streamsize>(numel) *
                static_cast<std::streamsize>(sizeof(float)));
    check(is.good(), "state stream truncated");
  }
  return t;
}

void write_floats(std::ostream& os, const std::vector<float>& v) {
  write_header(os, Rec::kFloats);
  write_span(os, v.data(), static_cast<std::int64_t>(v.size()));
}

std::vector<float> read_floats(std::istream& is) {
  expect_header(is, Rec::kFloats);
  return read_span<float>(is);
}

void write_doubles(std::ostream& os, const std::vector<double>& v) {
  write_header(os, Rec::kDoubles);
  write_span(os, v.data(), static_cast<std::int64_t>(v.size()));
}

std::vector<double> read_doubles(std::istream& is) {
  expect_header(is, Rec::kDoubles);
  return read_span<double>(is);
}

void write_u64(std::ostream& os, std::uint64_t v) {
  write_header(os, Rec::kU64);
  write_pod(os, v);
}

std::uint64_t read_u64(std::istream& is) {
  expect_header(is, Rec::kU64);
  return read_pod<std::uint64_t>(is);
}

void write_f32(std::ostream& os, float v) {
  write_header(os, Rec::kF32);
  write_pod(os, v);
}

float read_f32(std::istream& is) {
  expect_header(is, Rec::kF32);
  return read_pod<float>(is);
}

void write_string(std::ostream& os, const std::string& s) {
  write_header(os, Rec::kString);
  write_span(os, s.data(), static_cast<std::int64_t>(s.size()));
}

std::string read_string(std::istream& is) {
  expect_header(is, Rec::kString);
  const std::vector<char> bytes = read_span<char>(is);
  return std::string(bytes.begin(), bytes.end());
}

void write_parameters(std::ostream& os, std::span<const Var> params) {
  write_u64(os, static_cast<std::uint64_t>(params.size()));
  for (const Var& p : params) {
    check(p != nullptr, "null parameter");
    write_tensor(os, p->value);
  }
}

void read_parameters(std::istream& is, std::span<const Var> params) {
  const std::uint64_t stored = read_u64(is);
  check(stored == params.size(),
        "read_parameters: stored parameter count does not match the model");
  for (const Var& p : params) {
    check(p != nullptr, "null parameter");
    const Tensor t = read_tensor(is);
    check(t.shape() == p->value.shape(),
          "read_parameters: stored parameter shape does not match the model");
    std::copy(t.data(), t.data() + t.numel(), p->value.data());
  }
}

}  // namespace nitho::nn
