#include "nn/serialize.hpp"

#include "common/check.hpp"
#include "io/tensor_io.hpp"

namespace nitho::nn {

std::vector<float> dump_parameters(std::span<const Var> params) {
  std::vector<float> out;
  out.reserve(static_cast<std::size_t>(parameter_count(params)));
  for (const Var& p : params) {
    check(p != nullptr, "null parameter");
    const float* d = p->value.data();
    out.insert(out.end(), d, d + p->value.numel());
  }
  return out;
}

void load_parameters(std::span<const Var> params,
                     const std::vector<float>& data) {
  check(static_cast<std::int64_t>(data.size()) == parameter_count(params),
        "parameter blob size mismatch");
  std::size_t off = 0;
  for (const Var& p : params) {
    float* d = p->value.data();
    const std::size_t n = static_cast<std::size_t>(p->value.numel());
    std::copy(data.begin() + off, data.begin() + off + n, d);
    off += n;
  }
}

void save_parameters_file(const std::string& path,
                          std::span<const Var> params) {
  save_floats(path, dump_parameters(params));
}

void load_parameters_file(const std::string& path,
                          std::span<const Var> params) {
  load_parameters(params, load_floats(path));
}

std::int64_t parameter_bytes(std::span<const Var> params) {
  return parameter_count(params) * static_cast<std::int64_t>(sizeof(float));
}

}  // namespace nitho::nn
