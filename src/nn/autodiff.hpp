#pragma once
// Define-by-run reverse-mode automatic differentiation.
//
// A Var is a shared node holding a value tensor, a lazily allocated gradient
// and a closure that scatters the node's gradient into its inputs.  Complex
// tensors are real tensors with trailing dim 2, which makes real-valued
// reverse mode automatically Wirtinger-correct for the complex layers
// (DESIGN.md §5).

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace nitho::nn {

struct Node;
using Var = std::shared_ptr<Node>;

struct Node {
  Tensor value;
  Tensor grad;  // empty until ensure_grad()
  bool requires_grad = false;
  std::vector<Var> inputs;
  std::function<void(Node&)> backward_fn;  // may be empty (leaf / constant)
  const char* op = "leaf";

  /// Allocates a zero gradient of the value's shape if not present.
  Tensor& ensure_grad();
};

/// Creates a leaf node (parameter when requires_grad, constant otherwise).
Var make_leaf(Tensor value, bool requires_grad = false);

/// Creates an interior node; requires_grad is inherited from the inputs and
/// backward_fn is dropped when nothing upstream needs gradients.
Var make_node(Tensor value, std::vector<Var> inputs,
              std::function<void(Node&)> backward_fn, const char* op);

/// Reverse pass from a scalar root: seeds d(root)/d(root) = 1 and pushes
/// gradients through the graph in reverse topological order.
void backward(const Var& root);

/// Recycles graph storage across training steps (DESIGN.md §8).
///
/// A training loop rebuilds an identically shaped graph every step; without
/// reuse that is one heap allocation per node shell plus one per value /
/// gradient tensor, `epochs * n / batch` times over.  While a
/// GraphArena::Scope is active, make_leaf / make_node draw Node shells from
/// the arena, and ensure_grad / arena_tensor hand out tensor buffers
/// reclaimed from the previous step's graph, so steady-state steps allocate
/// (almost) nothing.
///
/// Contract: reset() reclaims every node handed out since the previous
/// reset(), so the caller must have dropped all references into that graph
/// first (the trainer drops its loss root before resetting).  Nodes that are
/// still referenced externally are evicted from the pool instead of being
/// recycled; their values stay intact, which keeps long-lived constant
/// leaves (e.g. a model's cached coordinate encoding) safe to create inside
/// a scope.  Arenas are single-threaded: one arena per training loop, and
/// the active scope is thread-local.
class GraphArena {
 public:
  /// Reclaims the previous step's node shells and tensor buffers.
  void reset();

  /// Pooled node shells / how many tensor buffers were re-issued (stats for
  /// tests and the throughput bench).
  std::size_t node_capacity() const { return nodes_.size(); }
  std::size_t tensors_reused() const { return reused_; }

  /// RAII activation: while alive, allocation hooks in this translation
  /// unit route through the arena.  Scopes do not nest across arenas.
  class Scope {
   public:
    explicit Scope(GraphArena& arena);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    GraphArena* prev_;
  };

 private:
  friend Var make_leaf(Tensor, bool);
  friend Var make_node(Tensor, std::vector<Var>, std::function<void(Node&)>,
                       const char*);
  friend Tensor arena_tensor(std::vector<int>, bool);
  friend struct Node;

  Var alloc_node();
  /// A buffer of matching element count from the free list (reshaped), or
  /// an empty tensor when none fits.
  Tensor take_buffer(const std::vector<int>& shape);
  void reclaim(Tensor&& t);

  std::vector<Var> nodes_;   ///< pool; [0, live_) are handed out
  std::size_t live_ = 0;
  std::vector<Tensor> buffers_;
  std::size_t reused_ = 0;
};

/// Allocates a tensor of the given shape, recycling a reclaimed buffer from
/// the active arena when one matches (plain `Tensor(shape)` otherwise).
/// With `zeroed` the result is all zeros like a fresh Tensor; pass
/// zeroed = false only when the caller overwrites every element.
Tensor arena_tensor(std::vector<int> shape, bool zeroed = true);

/// Clears gradients of the given parameters (keeps allocations).
void zero_grad(std::span<const Var> params);

/// Total number of scalar elements across parameters.
std::int64_t parameter_count(std::span<const Var> params);

}  // namespace nitho::nn
