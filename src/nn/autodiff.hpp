#pragma once
// Define-by-run reverse-mode automatic differentiation.
//
// A Var is a shared node holding a value tensor, a lazily allocated gradient
// and a closure that scatters the node's gradient into its inputs.  Complex
// tensors are real tensors with trailing dim 2, which makes real-valued
// reverse mode automatically Wirtinger-correct for the complex layers
// (DESIGN.md §5).

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace nitho::nn {

struct Node;
using Var = std::shared_ptr<Node>;

struct Node {
  Tensor value;
  Tensor grad;  // empty until ensure_grad()
  bool requires_grad = false;
  std::vector<Var> inputs;
  std::function<void(Node&)> backward_fn;  // may be empty (leaf / constant)
  const char* op = "leaf";

  /// Allocates a zero gradient of the value's shape if not present.
  Tensor& ensure_grad();
};

/// Creates a leaf node (parameter when requires_grad, constant otherwise).
Var make_leaf(Tensor value, bool requires_grad = false);

/// Creates an interior node; requires_grad is inherited from the inputs and
/// backward_fn is dropped when nothing upstream needs gradients.
Var make_node(Tensor value, std::vector<Var> inputs,
              std::function<void(Node&)> backward_fn, const char* op);

/// Reverse pass from a scalar root: seeds d(root)/d(root) = 1 and pushes
/// gradients through the graph in reverse topological order.
void backward(const Var& root);

/// Clears gradients of the given parameters (keeps allocations).
void zero_grad(std::span<const Var> params);

/// Total number of scalar elements across parameters.
std::int64_t parameter_count(std::span<const Var> params);

}  // namespace nitho::nn
