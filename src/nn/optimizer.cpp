#include "nn/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>

#include "common/check.hpp"
#include "common/simd.hpp"
#include "nn/serialize.hpp"

namespace nitho::nn {

Adam::Adam(std::vector<Var> params, float lr, float beta1, float beta2,
           float eps)
    : params_(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2),
      eps_(eps) {
  for (const Var& p : params_) {
    check(p != nullptr && p->requires_grad, "Adam: non-trainable parameter");
    m_.push_back(Tensor::zeros_like(p->value));
    v_.push_back(Tensor::zeros_like(p->value));
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Node& p = *params_[i];
    if (p.grad.numel() != p.value.numel()) continue;  // never touched
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    simd::adam_update(p.value.data(), m.data(), v.data(), p.grad.data(),
                      p.value.numel(), beta1_, beta2_, bc1, bc2, lr_, eps_);
  }
}

std::vector<float> Adam::dump_state() const {
  std::vector<float> flat;
  for (const Tensor& m : m_) {
    flat.insert(flat.end(), m.data(), m.data() + m.numel());
  }
  for (const Tensor& v : v_) {
    flat.insert(flat.end(), v.data(), v.data() + v.numel());
  }
  return flat;
}

void Adam::load_state(const std::vector<float>& flat) {
  std::int64_t total = 0;
  for (const Tensor& m : m_) total += m.numel();
  check(static_cast<std::int64_t>(flat.size()) == 2 * total,
        "Adam::load_state: size mismatch");
  const float* src = flat.data();
  for (Tensor& m : m_) {
    std::copy(src, src + m.numel(), m.data());
    src += m.numel();
  }
  for (Tensor& v : v_) {
    std::copy(src, src + v.numel(), v.data());
    src += v.numel();
  }
}

void Adam::save_state(std::ostream& os) const {
  write_u64(os, static_cast<std::uint64_t>(params_.size()));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    write_tensor(os, m_[i]);
    write_tensor(os, v_[i]);
  }
  write_u64(os, static_cast<std::uint64_t>(t_));
  write_f32(os, lr_);
}

void Adam::load_state(std::istream& is) {
  const std::uint64_t count = read_u64(is);
  check(count == params_.size(),
        "Adam::load_state: stored moment count does not match the bound "
        "parameters");
  // Validate the whole stream against the bound parameters before touching
  // any moment: a mismatch mid-stream must not leave the optimizer half
  // restored.
  std::vector<Tensor> m, v;
  m.reserve(params_.size());
  v.reserve(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor mi = read_tensor(is);
    Tensor vi = read_tensor(is);
    check(mi.shape() == params_[i]->value.shape() &&
              vi.shape() == params_[i]->value.shape(),
          "Adam::load_state: stored moment shape does not match the bound "
          "parameter");
    m.push_back(std::move(mi));
    v.push_back(std::move(vi));
  }
  const std::uint64_t t = read_u64(is);
  check(t <= static_cast<std::uint64_t>(std::numeric_limits<long>::max()),
        "Adam::load_state: step count out of range");
  const float lr = read_f32(is);
  m_ = std::move(m);
  v_ = std::move(v);
  t_ = static_cast<long>(t);
  lr_ = lr;
}

void Adam::set_step_count(long t) {
  check(t >= 0, "Adam::set_step_count: negative step count");
  t_ = t;
}

void Adam::zero_grad() { nn::zero_grad(params_); }

Sgd::Sgd(std::vector<Var> params, float lr, float momentum)
    : params_(std::move(params)), lr_(lr), momentum_(momentum) {
  for (const Var& p : params_) {
    check(p != nullptr && p->requires_grad, "Sgd: non-trainable parameter");
    vel_.push_back(Tensor::zeros_like(p->value));
  }
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Node& p = *params_[i];
    if (p.grad.numel() != p.value.numel()) continue;
    const std::int64_t n = p.value.numel();
    for (std::int64_t j = 0; j < n; ++j) {
      vel_[i][j] = momentum_ * vel_[i][j] - lr_ * p.grad[j];
      p.value[j] += vel_[i][j];
    }
  }
}

void Sgd::zero_grad() { nn::zero_grad(params_); }

}  // namespace nitho::nn
