#include "nn/ops_conv.hpp"

#include <vector>

#include "common/check.hpp"
#include "nn/gemm.hpp"

namespace nitho::nn {
namespace {

// col [H*W, Cin*kh*kw] with zero padding (same-size output).
void im2col(const float* x, int cin, int h, int w, int kh, int kw,
            std::vector<float>& col) {
  const int ph = kh / 2, pw = kw / 2;
  const std::int64_t k = static_cast<std::int64_t>(cin) * kh * kw;
  col.assign(static_cast<std::size_t>(h) * w * k, 0.0f);
  parallel_for(h, [&](std::int64_t y) {
    for (int xx = 0; xx < w; ++xx) {
      float* row = col.data() + (y * w + xx) * k;
      std::int64_t idx = 0;
      for (int ci = 0; ci < cin; ++ci) {
        const float* src = x + static_cast<std::int64_t>(ci) * h * w;
        for (int dy = 0; dy < kh; ++dy) {
          const int sy = static_cast<int>(y) + dy - ph;
          for (int dx = 0; dx < kw; ++dx, ++idx) {
            const int sx = xx + dx - pw;
            if (sy >= 0 && sy < h && sx >= 0 && sx < w) {
              row[idx] = src[static_cast<std::int64_t>(sy) * w + sx];
            }
          }
        }
      }
    }
  });
}

// Scatter col-layout gradients back to image layout (adjoint of im2col).
void col2im_acc(const std::vector<float>& col, int cin, int h, int w, int kh,
                int kw, float* gx) {
  const int ph = kh / 2, pw = kw / 2;
  const std::int64_t k = static_cast<std::int64_t>(cin) * kh * kw;
  // Parallel over channels: each channel's accumulation is independent.
  parallel_for(cin, [&](std::int64_t ci) {
    float* dst = gx + ci * h * w;
    for (int y = 0; y < h; ++y) {
      for (int xx = 0; xx < w; ++xx) {
        const float* row = col.data() + (static_cast<std::int64_t>(y) * w + xx) * k;
        std::int64_t idx = ci * kh * kw;
        for (int dy = 0; dy < kh; ++dy) {
          const int sy = y + dy - ph;
          for (int dx = 0; dx < kw; ++dx, ++idx) {
            const int sx = xx + dx - pw;
            if (sy >= 0 && sy < h && sx >= 0 && sx < w) {
              dst[static_cast<std::int64_t>(sy) * w + sx] += row[idx];
            }
          }
        }
      }
    }
  });
}

}  // namespace

Var conv2d(const Var& x, const Var& w, const Var& b) {
  check(x->value.ndim() == 3, "conv2d: x must be [Cin,H,W]");
  check(w->value.ndim() == 4, "conv2d: w must be [Cout,Cin,kh,kw]");
  check(b->value.ndim() == 1, "conv2d: b must be [Cout]");
  const int cin = x->value.dim(0), h = x->value.dim(1), wd = x->value.dim(2);
  const int cout = w->value.dim(0), kh = w->value.dim(2), kw = w->value.dim(3);
  check(w->value.dim(1) == cin, "conv2d: channel mismatch");
  check(b->value.dim(0) == cout, "conv2d: bias size mismatch");
  check(kh % 2 == 1 && kw % 2 == 1, "conv2d: kernels must be odd");

  const std::int64_t hw = static_cast<std::int64_t>(h) * wd;
  const std::int64_t k = static_cast<std::int64_t>(cin) * kh * kw;
  std::vector<float> col;
  im2col(x->value.data(), cin, h, wd, kh, kw, col);

  // out_flat [HW, Cout] = col [HW, K] * Wf [Cout, K]^T.
  std::vector<float> flat(static_cast<std::size_t>(hw) * cout);
  gemm_nt(hw, cout, k, col.data(), w->value.data(), flat.data(), false);

  Tensor out({cout, h, wd});
  for (int co = 0; co < cout; ++co) {
    const float bias = b->value[co];
    float* dst = out.data() + co * hw;
    for (std::int64_t p = 0; p < hw; ++p) dst[p] = flat[p * cout + co] + bias;
  }

  return make_node(
      std::move(out), {x, w, b},
      [cin, cout, h, wd, kh, kw, hw, k](Node& node) {
        Node& ix = *node.inputs[0];
        Node& iw = *node.inputs[1];
        Node& ib = *node.inputs[2];
        // g_flat [HW, Cout] from [Cout, H, W].
        std::vector<float> gflat(static_cast<std::size_t>(hw) * cout);
        for (int co = 0; co < cout; ++co) {
          const float* g = node.grad.data() + co * hw;
          for (std::int64_t p = 0; p < hw; ++p) gflat[p * cout + co] = g[p];
        }
        if (ib.requires_grad) {
          ib.ensure_grad();
          for (int co = 0; co < cout; ++co) {
            double acc = 0.0;
            const float* g = node.grad.data() + co * hw;
            for (std::int64_t p = 0; p < hw; ++p) acc += g[p];
            ib.grad[co] += static_cast<float>(acc);
          }
        }
        std::vector<float> col;
        if (iw.requires_grad || ix.requires_grad) {
          im2col(ix.value.data(), cin, h, wd, kh, kw, col);
        }
        if (iw.requires_grad) {
          iw.ensure_grad();
          // gW [Cout, K] = gflat^T [Cout, HW] * col [HW, K].
          gemm_tn(cout, k, hw, gflat.data(), col.data(), iw.grad.data(), true);
        }
        if (ix.requires_grad) {
          ix.ensure_grad();
          // g_col [HW, K] = gflat [HW, Cout] * Wf [Cout, K].
          std::vector<float> gcol(static_cast<std::size_t>(hw) * k);
          gemm_nn(hw, k, cout, gflat.data(), iw.value.data(), gcol.data(),
                  false);
          col2im_acc(gcol, cin, h, wd, kh, kw, ix.grad.data());
        }
      },
      "conv2d");
}

Var avg_pool2(const Var& x) {
  check(x->value.ndim() == 3, "avg_pool2: x must be [C,H,W]");
  const int c = x->value.dim(0), h = x->value.dim(1), w = x->value.dim(2);
  check(h % 2 == 0 && w % 2 == 0, "avg_pool2: H and W must be even");
  const int oh = h / 2, ow = w / 2;
  Tensor out({c, oh, ow});
  for (int ci = 0; ci < c; ++ci) {
    const float* src = x->value.data() + static_cast<std::int64_t>(ci) * h * w;
    float* dst = out.data() + static_cast<std::int64_t>(ci) * oh * ow;
    for (int y = 0; y < oh; ++y)
      for (int xx = 0; xx < ow; ++xx)
        dst[y * ow + xx] = 0.25f * (src[(2 * y) * w + 2 * xx] +
                                    src[(2 * y) * w + 2 * xx + 1] +
                                    src[(2 * y + 1) * w + 2 * xx] +
                                    src[(2 * y + 1) * w + 2 * xx + 1]);
  }
  return make_node(std::move(out), {x},
                   [c, h, w, oh, ow](Node& node) {
                     Node& ix = *node.inputs[0];
                     if (!ix.requires_grad) return;
                     ix.ensure_grad();
                     for (int ci = 0; ci < c; ++ci) {
                       const float* g =
                           node.grad.data() + static_cast<std::int64_t>(ci) * oh * ow;
                       float* dst =
                           ix.grad.data() + static_cast<std::int64_t>(ci) * h * w;
                       for (int y = 0; y < oh; ++y)
                         for (int xx = 0; xx < ow; ++xx) {
                           const float gv = 0.25f * g[y * ow + xx];
                           dst[(2 * y) * w + 2 * xx] += gv;
                           dst[(2 * y) * w + 2 * xx + 1] += gv;
                           dst[(2 * y + 1) * w + 2 * xx] += gv;
                           dst[(2 * y + 1) * w + 2 * xx + 1] += gv;
                         }
                     }
                   },
                   "avg_pool2");
}

Var upsample2(const Var& x) {
  check(x->value.ndim() == 3, "upsample2: x must be [C,H,W]");
  const int c = x->value.dim(0), h = x->value.dim(1), w = x->value.dim(2);
  const int oh = h * 2, ow = w * 2;
  Tensor out({c, oh, ow});
  for (int ci = 0; ci < c; ++ci) {
    const float* src = x->value.data() + static_cast<std::int64_t>(ci) * h * w;
    float* dst = out.data() + static_cast<std::int64_t>(ci) * oh * ow;
    for (int y = 0; y < oh; ++y)
      for (int xx = 0; xx < ow; ++xx)
        dst[y * ow + xx] = src[(y / 2) * w + xx / 2];
  }
  return make_node(std::move(out), {x},
                   [c, h, w, oh, ow](Node& node) {
                     Node& ix = *node.inputs[0];
                     if (!ix.requires_grad) return;
                     ix.ensure_grad();
                     for (int ci = 0; ci < c; ++ci) {
                       const float* g =
                           node.grad.data() + static_cast<std::int64_t>(ci) * oh * ow;
                       float* dst =
                           ix.grad.data() + static_cast<std::int64_t>(ci) * h * w;
                       for (int y = 0; y < oh; ++y)
                         for (int xx = 0; xx < ow; ++xx)
                           dst[(y / 2) * w + xx / 2] += g[y * ow + xx];
                     }
                   },
                   "upsample2");
}

}  // namespace nitho::nn
