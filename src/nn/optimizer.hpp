#pragma once
// First-order optimizers over autodiff parameters.

#include <iosfwd>
#include <vector>

#include "nn/autodiff.hpp"

namespace nitho::nn {

/// Adam (Kingma & Ba) with bias correction; the paper's training procedure
/// optimizes complex weights by gradient descent, which in the re/im
/// parametrization is exactly this.
class Adam {
 public:
  explicit Adam(std::vector<Var> params, float lr = 1e-3f, float beta1 = 0.9f,
                float beta2 = 0.999f, float eps = 1e-8f);

  void step();
  void zero_grad();
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

  /// Moment state for checkpointing: all first moments concatenated in
  /// parameter order, then all second moments.  Together with the step
  /// count and the parameter values this is the optimizer's entire state —
  /// restoring it resumes training bit-identically.
  std::vector<float> dump_state() const;
  void load_state(const std::vector<float>& flat);
  long step_count() const { return t_; }
  void set_step_count(long t);

  /// Shape-tagged stream checkpoint (nn/serialize records): parameter
  /// count, per-parameter first and second moments with their shapes, the
  /// step count and the learning rate.  Unlike the flat vector above,
  /// load_state(istream) range-checks the stored moment count and every
  /// stored shape against the parameters this optimizer is bound to and
  /// throws check_error on mismatch (wrong model, wrong layer sizes) or on
  /// a truncated/corrupt stream — restored state is the whole of Adam, so
  /// a silent misassignment would corrupt training invisibly.
  void save_state(std::ostream& os) const;
  void load_state(std::istream& is);

 private:
  std::vector<Var> params_;
  std::vector<Tensor> m_, v_;
  float lr_, beta1_, beta2_, eps_;
  long t_ = 0;
};

/// Plain SGD with optional momentum (used in tests / ablations).
class Sgd {
 public:
  explicit Sgd(std::vector<Var> params, float lr = 1e-2f, float momentum = 0.0f);

  void step();
  void zero_grad();
  void set_lr(float lr) { lr_ = lr; }

 private:
  std::vector<Var> params_;
  std::vector<Tensor> vel_;
  float lr_, momentum_;
};

}  // namespace nitho::nn
