#pragma once
// Small dense float GEMM kernels shared by the matmul / conv / complex ops.
// Loop orders are chosen so the innermost loop streams rows of the second
// operand (auto-vectorizable); big row counts are split across the pool.
//
// The kSkipZeroLhs template parameter controls the `av == 0.0f` fast path
// that skips a whole B-row when the left-hand entry is zero.  It pays off
// when the left operand is ReLU-sparse (conv backward, image baselines) and
// costs a branch per k otherwise; the CMLP's complex matmuls on the batched
// training path call the dense variants (bench_micro BM_Gemm* measures
// both).

#include <cstdint>

#include "common/parallel.hpp"

namespace nitho::nn {

/// Work threshold (multiply-accumulates) above which a GEMM splits its rows
/// across the shared pool; below it dispatch overhead dominates.  Shared by
/// every kernel in this header.
inline constexpr std::int64_t kGemmParallelMacs = std::int64_t{1} << 18;

/// C[M,N] (+)= A[M,K] * B[K,N]
template <bool kSkipZeroLhs = true>
inline void gemm_nn(std::int64_t m, std::int64_t n, std::int64_t k,
                    const float* a, const float* b, float* c,
                    bool accumulate) {
  const auto row_job = [&](std::int64_t i) {
    float* crow = c + i * n;
    if (!accumulate) {
      for (std::int64_t j = 0; j < n; ++j) crow[j] = 0.0f;
    }
    const float* arow = a + i * k;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (kSkipZeroLhs && av == 0.0f) continue;
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  };
  if (m * n * k > kGemmParallelMacs) {
    parallel_for(m, row_job);
  } else {
    for (std::int64_t i = 0; i < m; ++i) row_job(i);
  }
}

/// C[M,N] (+)= A[M,K] * B[N,K]^T  (no zero-skip: the dot-product loop order
/// cannot skip B work per left-hand zero.)
inline void gemm_nt(std::int64_t m, std::int64_t n, std::int64_t k,
                    const float* a, const float* b, float* c,
                    bool accumulate) {
  const auto row_job = [&](std::int64_t i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      crow[j] = accumulate ? crow[j] + acc : acc;
    }
  };
  if (m * n * k > kGemmParallelMacs) {
    parallel_for(m, row_job);
  } else {
    for (std::int64_t i = 0; i < m; ++i) row_job(i);
  }
}

/// C[M,N] (+)= A[K,M]^T * B[K,N]
template <bool kSkipZeroLhs = true>
inline void gemm_tn(std::int64_t m, std::int64_t n, std::int64_t k,
                    const float* a, const float* b, float* c,
                    bool accumulate) {
  // Serial over k to keep writes race-free; rows of C parallelized.
  const auto row_job = [&](std::int64_t i) {
    float* crow = c + i * n;
    if (!accumulate) {
      for (std::int64_t j = 0; j < n; ++j) crow[j] = 0.0f;
    }
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = a[p * m + i];
      if (kSkipZeroLhs && av == 0.0f) continue;
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  };
  if (m * n * k > kGemmParallelMacs) {
    parallel_for(m, row_job);
  } else {
    for (std::int64_t i = 0; i < m; ++i) row_job(i);
  }
}

}  // namespace nitho::nn
