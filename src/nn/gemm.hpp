#pragma once
// Small dense float GEMM kernels shared by the matmul / conv / complex ops.
// Loop orders are chosen so the innermost loop streams rows of the second
// operand; the dense variants hand 4-row panels to the SIMD layer's
// register-blocked `gemm_panel` (common/simd.hpp), whose arms are
// bit-identical to the scalar loop — lanes span B-row columns of one fixed
// A entry, never the k reduction, so every output element keeps its exact
// left-fold order (DESIGN.md §13.2).
//
// The kSkipZeroLhs template parameter controls the `av == 0.0f` fast path
// that skips a whole B-row when the left-hand entry is zero.  It pays off
// when the left operand is ReLU-sparse (conv backward, image baselines) and
// costs a branch per k otherwise; that variant stays scalar — the branch
// dominates and the CMLP's batched training path calls the dense variants
// (bench_micro BM_Gemm* measures both).

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/parallel.hpp"
#include "common/simd.hpp"

namespace nitho::nn {

/// Work threshold (multiply-accumulates) above which a GEMM splits its rows
/// across the shared pool; below it dispatch overhead dominates.  Shared by
/// every kernel in this header.
inline constexpr std::int64_t kGemmParallelMacs = std::int64_t{1} << 18;

/// C[M,N] (+)= A[M,K] * B[K,N]
template <bool kSkipZeroLhs = true>
inline void gemm_nn(std::int64_t m, std::int64_t n, std::int64_t k,
                    const float* a, const float* b, float* c,
                    bool accumulate) {
  if constexpr (!kSkipZeroLhs) {
    // Dense path: 4-row register-blocked panels with the k fold inside the
    // dispatch arm — one kernel call per row block instead of one axpy per
    // (row, p), same per-element fold order (DESIGN.md §13.2).
    const std::int64_t blocks =
        (m + simd::kGemmPanelRows - 1) / simd::kGemmPanelRows;
    const auto block_job = [&](std::int64_t blk) {
      const std::int64_t i0 = blk * simd::kGemmPanelRows;
      const std::int64_t mr = std::min(simd::kGemmPanelRows, m - i0);
      float* cblk = c + i0 * n;
      if (!accumulate) std::fill(cblk, cblk + mr * n, 0.0f);
      simd::gemm_panel(cblk, n, a + i0 * k, k, 1, b, n, mr, k, n);
    };
    if (m * n * k > kGemmParallelMacs) {
      parallel_for(blocks, block_job);
    } else {
      for (std::int64_t blk = 0; blk < blocks; ++blk) block_job(blk);
    }
    return;
  }
  const auto row_job = [&](std::int64_t i) {
    float* crow = c + i * n;
    if (!accumulate) std::fill(crow, crow + n, 0.0f);
    const float* arow = a + i * k;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  };
  if (m * n * k > kGemmParallelMacs) {
    parallel_for(m, row_job);
  } else {
    for (std::int64_t i = 0; i < m; ++i) row_job(i);
  }
}

namespace detail {

/// Packed-B^T threshold: below this many MACs the transpose costs more than
/// the vector arms win back, and the B^T scratch is capped so a pathological
/// (n, k) cannot pin a huge thread-local buffer.
inline constexpr std::int64_t kGemmNtPackMacs = std::int64_t{1} << 13;
inline constexpr std::int64_t kGemmNtPackCap = std::int64_t{1} << 22;

}  // namespace detail

/// C[M,N] (+)= A[M,K] * B[N,K]^T  (no zero-skip: the dot-product loop order
/// cannot skip B work per left-hand zero.)
///
/// When a vector arm is active and the problem is big enough, B is packed
/// as B^T once so every row update becomes the gemm_nn axpy stream.  Bit
/// identity is preserved: each output element is still the same left fold
/// over p from 0.0f (the packed path just keeps n folds in flight instead
/// of one), and with accumulate the fold lands in a scratch row that is
/// added to C in a single += — the same one add the scalar path does.
inline void gemm_nt(std::int64_t m, std::int64_t n, std::int64_t k,
                    const float* a, const float* b, float* c,
                    bool accumulate) {
  const bool pack = simd::active_arm() != simd::Arm::kScalar && m >= 2 &&
                    m * n * k >= detail::kGemmNtPackMacs &&
                    n * k <= detail::kGemmNtPackCap;
  if (pack) {
    // Grow-only scratch; the caller blocks for the whole parallel_for, so
    // the pack is stable while worker threads stream it.
    thread_local std::vector<float> bt_buf;
    if (static_cast<std::int64_t>(bt_buf.size()) < n * k) {
      bt_buf.resize(static_cast<std::size_t>(n * k));
    }
    float* bt = bt_buf.data();
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      for (std::int64_t p = 0; p < k; ++p) bt[p * n + j] = brow[p];
    }
    const std::int64_t blocks =
        (m + simd::kGemmPanelRows - 1) / simd::kGemmPanelRows;
    const auto block_job = [&, bt](std::int64_t blk) {
      const std::int64_t i0 = blk * simd::kGemmPanelRows;
      const std::int64_t mr = std::min(simd::kGemmPanelRows, m - i0);
      float* cblk = c + i0 * n;
      float* dst = cblk;
      thread_local std::vector<float> tmp_buf;
      if (accumulate) {
        const std::int64_t need = simd::kGemmPanelRows * n;
        if (static_cast<std::int64_t>(tmp_buf.size()) < need) {
          tmp_buf.resize(static_cast<std::size_t>(need));
        }
        dst = tmp_buf.data();
      }
      std::fill(dst, dst + mr * n, 0.0f);
      simd::gemm_panel(dst, n, a + i0 * k, k, 1, bt, n, mr, k, n);
      if (accumulate) {
        for (std::int64_t r = 0; r < mr; ++r) {
          simd::add_inplace(cblk + r * n, dst + r * n, n);
        }
      }
    };
    if (m * n * k > kGemmParallelMacs) {
      parallel_for(blocks, block_job);
    } else {
      for (std::int64_t blk = 0; blk < blocks; ++blk) block_job(blk);
    }
    return;
  }
  const auto row_job = [&](std::int64_t i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    // accumulate is loop-invariant; branch once per row, not per element.
    if (accumulate) {
      for (std::int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0f;
        for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] += acc;
      }
    } else {
      for (std::int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0f;
        for (std::int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] = acc;
      }
    }
  };
  if (m * n * k > kGemmParallelMacs) {
    parallel_for(m, row_job);
  } else {
    for (std::int64_t i = 0; i < m; ++i) row_job(i);
  }
}

/// C[M,N] (+)= A[K,M]^T * B[K,N]
template <bool kSkipZeroLhs = true>
inline void gemm_tn(std::int64_t m, std::int64_t n, std::int64_t k,
                    const float* a, const float* b, float* c,
                    bool accumulate) {
  // Serial over k to keep writes race-free; rows of C parallelized.
  if constexpr (!kSkipZeroLhs) {
    // Dense path: the same panel kernel as gemm_nn, with A^T's strides
    // (row stride 1, p stride m).
    const std::int64_t blocks =
        (m + simd::kGemmPanelRows - 1) / simd::kGemmPanelRows;
    const auto block_job = [&](std::int64_t blk) {
      const std::int64_t i0 = blk * simd::kGemmPanelRows;
      const std::int64_t mr = std::min(simd::kGemmPanelRows, m - i0);
      float* cblk = c + i0 * n;
      if (!accumulate) std::fill(cblk, cblk + mr * n, 0.0f);
      simd::gemm_panel(cblk, n, a + i0, 1, m, b, n, mr, k, n);
    };
    if (m * n * k > kGemmParallelMacs) {
      parallel_for(blocks, block_job);
    } else {
      for (std::int64_t blk = 0; blk < blocks; ++blk) block_job(blk);
    }
    return;
  }
  const auto row_job = [&](std::int64_t i) {
    float* crow = c + i * n;
    if (!accumulate) std::fill(crow, crow + n, 0.0f);
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = a[p * m + i];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  };
  if (m * n * k > kGemmParallelMacs) {
    parallel_for(m, row_job);
  } else {
    for (std::int64_t i = 0; i < m; ++i) row_job(i);
  }
}

}  // namespace nitho::nn
