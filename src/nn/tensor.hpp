#pragma once
// Dense float tensor for the autodiff engine.
//
// Row-major, arbitrary rank.  Complex tensors use the convention of a
// trailing dimension of size 2 holding (real, imaginary) — interleaved
// exactly like std::complex<float>, so FFT ops can reinterpret the buffer.

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace nitho::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape, float fill = 0.0f);

  static Tensor zeros_like(const Tensor& t) { return Tensor(t.shape()); }

  const std::vector<int>& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int dim(int i) const;
  std::int64_t numel() const { return static_cast<std::int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  bool same_shape(const Tensor& o) const { return shape_ == o.shape_; }

  /// Reshape without copying; the element count must match.
  Tensor reshaped(std::vector<int> shape) const;

  /// In-place reshape (no copy); the element count must match.  Used by the
  /// GraphArena to re-issue reclaimed buffers under a new shape.
  void reset_shape(std::vector<int> shape);

  /// Gaussian init (used by layer constructors).
  void randn(Rng& rng, float stddev);

  std::string shape_str() const;

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

/// Number of elements implied by a shape.
std::int64_t shape_numel(const std::vector<int>& shape);

}  // namespace nitho::nn
