#include "nn/tensor.hpp"

#include <sstream>

#include "common/check.hpp"

namespace nitho::nn {

std::int64_t shape_numel(const std::vector<int>& shape) {
  std::int64_t n = 1;
  for (int d : shape) {
    check(d >= 0, "negative tensor dimension");
    n *= d;
  }
  return shape.empty() ? 0 : n;
}

Tensor::Tensor(std::vector<int> shape, float fill) : shape_(std::move(shape)) {
  data_.assign(static_cast<std::size_t>(shape_numel(shape_)), fill);
}

int Tensor::dim(int i) const {
  check(i >= 0 && i < ndim(), "tensor dim index out of range");
  return shape_[static_cast<std::size_t>(i)];
}

Tensor Tensor::reshaped(std::vector<int> shape) const {
  check(shape_numel(shape) == numel(), "reshape changes element count");
  Tensor out = *this;
  out.shape_ = std::move(shape);
  return out;
}

void Tensor::reset_shape(std::vector<int> shape) {
  check(shape_numel(shape) == numel(), "reshape changes element count");
  shape_ = std::move(shape);
}

void Tensor::randn(Rng& rng, float stddev) {
  for (auto& v : data_) v = static_cast<float>(rng.normal(0.0, stddev));
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << "[";
  for (int i = 0; i < ndim(); ++i) {
    if (i) os << ",";
    os << shape_[static_cast<std::size_t>(i)];
  }
  os << "]";
  return os.str();
}

}  // namespace nitho::nn
