#pragma once
// Differentiable operations: elementwise math, dense and complex dense
// algebra, shape utilities and losses.  Convolution lives in ops_conv.hpp,
// FFT-based ops in ops_fft.hpp.
//
// Complex convention: trailing dimension of size 2 = (re, im).

#include "nn/autodiff.hpp"

namespace nitho::nn {

// ---- elementwise -----------------------------------------------------------
Var add(const Var& a, const Var& b);          ///< same shape
Var sub(const Var& a, const Var& b);
Var mul(const Var& a, const Var& b);          ///< Hadamard, same shape
Var scale(const Var& a, float s);
Var relu(const Var& a);                       ///< == CReLU on complex tensors
Var leaky_relu(const Var& a, float alpha = 0.1f);
Var sigmoid(const Var& a);
Var tanh_op(const Var& a);
Var square(const Var& a);

/// x + b with b broadcast over leading dims (b.numel must divide x.numel and
/// align with the trailing dims, e.g. [P,O,2] + [O,2]).
Var add_bias(const Var& x, const Var& b);

// ---- reductions / losses ---------------------------------------------------
Var sum(const Var& a);                        ///< scalar
Var mean(const Var& a);                       ///< scalar
Var mse_loss(const Var& pred, const Tensor& target);  ///< Eq. (5) as a loss

/// Batched per-sample MSE with an ordered reduction over the leading batch
/// axis: pred/targets [B, ...] -> scalar sum_b MSE(pred[b], targets[b]),
/// accumulated per sample in double over pixels and then left-folded over B
/// in float — exactly the arithmetic of per-sample mse_loss nodes chained
/// through add(), so the value (and gradient) is bit-identical to the
/// legacy per-mask loss chain.  Callers divide by B themselves (the trainer
/// scales by 1/batch, like the legacy loop).
Var mse_loss_batch_ordered(const Var& pred, const Tensor& targets);

// ---- dense algebra ---------------------------------------------------------
Var matmul(const Var& a, const Var& b);       ///< [M,K] x [K,N]
/// Complex matmul [M,K,2] x [K,N,2] -> [M,N,2] (the CLinear core).
Var cmatmul(const Var& a, const Var& b);
/// Complex Hadamard with a constant complex tensor c (same trailing shape,
/// broadcast over a leading dim of x when x.ndim == c.ndim + 1).
Var cmul_const(const Var& x, const Tensor& c);

// ---- shape utilities -------------------------------------------------------
Var reshape(const Var& a, std::vector<int> shape);
/// Swap the first two dimensions (rest treated as flat).
Var transpose01(const Var& a);
Var concat0(const Var& a, const Var& b);      ///< along dim 0
Var slice0(const Var& a, int begin, int end); ///< along dim 0

}  // namespace nitho::nn
