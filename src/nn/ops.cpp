#include "nn/ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "nn/gemm.hpp"

namespace nitho::nn {
namespace {

void check_same_shape(const Var& a, const Var& b, const char* op) {
  check(a->value.same_shape(b->value), std::string(op) + ": shape mismatch");
}

// Elementwise binary op with per-element backward weights.
template <typename Fwd, typename Bwd>
Var elementwise2(const Var& a, const Var& b, Fwd fwd, Bwd bwd, const char* op) {
  check_same_shape(a, b, op);
  Tensor out = arena_tensor(a->value.shape(), /*zeroed=*/false);
  const std::int64_t n = out.numel();
  for (std::int64_t i = 0; i < n; ++i) out[i] = fwd(a->value[i], b->value[i]);
  return make_node(std::move(out), {a, b},
                   [bwd](Node& node) {
                     Node& ia = *node.inputs[0];
                     Node& ib = *node.inputs[1];
                     const std::int64_t m = node.value.numel();
                     const bool need_a = ia.requires_grad;
                     const bool need_b = ib.requires_grad;
                     if (need_a) ia.ensure_grad();
                     if (need_b) ib.ensure_grad();
                     for (std::int64_t i = 0; i < m; ++i) {
                       float da = 0.0f, db = 0.0f;
                       bwd(ia.value[i], ib.value[i], node.grad[i], da, db);
                       if (need_a) ia.grad[i] += da;
                       if (need_b) ib.grad[i] += db;
                     }
                   },
                   op);
}

// Elementwise unary op; bwd maps (x, y, gy) -> gx.
template <typename Fwd, typename Bwd>
Var elementwise1(const Var& a, Fwd fwd, Bwd bwd, const char* op) {
  Tensor out = arena_tensor(a->value.shape(), /*zeroed=*/false);
  const std::int64_t n = out.numel();
  for (std::int64_t i = 0; i < n; ++i) out[i] = fwd(a->value[i]);
  return make_node(std::move(out), {a},
                   [bwd](Node& node) {
                     Node& ia = *node.inputs[0];
                     if (!ia.requires_grad) return;
                     ia.ensure_grad();
                     const std::int64_t m = node.value.numel();
                     for (std::int64_t i = 0; i < m; ++i) {
                       ia.grad[i] += bwd(ia.value[i], node.value[i], node.grad[i]);
                     }
                   },
                   op);
}

// De-interleave a [..., 2] tensor into planar re/im buffers.
void split_complex(const Tensor& t, std::vector<float>& re,
                   std::vector<float>& im) {
  const std::int64_t n = t.numel() / 2;
  re.resize(static_cast<std::size_t>(n));
  im.resize(static_cast<std::size_t>(n));
  const float* p = t.data();
  for (std::int64_t i = 0; i < n; ++i) {
    re[static_cast<std::size_t>(i)] = p[2 * i];
    im[static_cast<std::size_t>(i)] = p[2 * i + 1];
  }
}

void merge_complex(const std::vector<float>& re, const std::vector<float>& im,
                   float* out, bool accumulate) {
  const std::int64_t n = static_cast<std::int64_t>(re.size());
  for (std::int64_t i = 0; i < n; ++i) {
    if (accumulate) {
      out[2 * i] += re[static_cast<std::size_t>(i)];
      out[2 * i + 1] += im[static_cast<std::size_t>(i)];
    } else {
      out[2 * i] = re[static_cast<std::size_t>(i)];
      out[2 * i + 1] = im[static_cast<std::size_t>(i)];
    }
  }
}

}  // namespace

Var add(const Var& a, const Var& b) {
  return elementwise2(
      a, b, [](float x, float y) { return x + y; },
      [](float, float, float g, float& da, float& db) {
        da = g;
        db = g;
      },
      "add");
}

Var sub(const Var& a, const Var& b) {
  return elementwise2(
      a, b, [](float x, float y) { return x - y; },
      [](float, float, float g, float& da, float& db) {
        da = g;
        db = -g;
      },
      "sub");
}

Var mul(const Var& a, const Var& b) {
  return elementwise2(
      a, b, [](float x, float y) { return x * y; },
      [](float x, float y, float g, float& da, float& db) {
        da = g * y;
        db = g * x;
      },
      "mul");
}

Var scale(const Var& a, float s) {
  return elementwise1(
      a, [s](float x) { return s * x; },
      [s](float, float, float g) { return s * g; }, "scale");
}

Var relu(const Var& a) {
  return elementwise1(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float, float g) { return x > 0.0f ? g : 0.0f; }, "relu");
}

Var leaky_relu(const Var& a, float alpha) {
  return elementwise1(
      a, [alpha](float x) { return x > 0.0f ? x : alpha * x; },
      [alpha](float x, float, float g) { return x > 0.0f ? g : alpha * g; },
      "leaky_relu");
}

Var sigmoid(const Var& a) {
  return elementwise1(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y, float g) { return g * y * (1.0f - y); }, "sigmoid");
}

Var tanh_op(const Var& a) {
  return elementwise1(
      a, [](float x) { return std::tanh(x); },
      [](float, float y, float g) { return g * (1.0f - y * y); }, "tanh");
}

Var square(const Var& a) {
  return elementwise1(
      a, [](float x) { return x * x; },
      [](float x, float, float g) { return 2.0f * x * g; }, "square");
}

Var add_bias(const Var& x, const Var& b) {
  const std::int64_t bn = b->value.numel();
  check(bn > 0 && x->value.numel() % bn == 0,
        "add_bias: bias must tile the input");
  Tensor out = arena_tensor(x->value.shape(), /*zeroed=*/false);
  const std::int64_t n = out.numel();
  // Row-blocked so the bias index is a plain offset, not an i % bn divide
  // per element; each out[i] is the same single add either way.
  const float* xv = x->value.data();
  const float* bv = b->value.data();
  float* ov = out.data();
  for (std::int64_t r = 0; r < n; r += bn) {
    for (std::int64_t j = 0; j < bn; ++j) ov[r + j] = xv[r + j] + bv[j];
  }
  return make_node(std::move(out), {x, b},
                   [](Node& node) {
                     Node& ix = *node.inputs[0];
                     Node& ib = *node.inputs[1];
                     const std::int64_t n2 = node.value.numel();
                     const std::int64_t bn2 = ib.value.numel();
                     if (ix.requires_grad) {
                       ix.ensure_grad();
                       simd::add_inplace(ix.grad.data(), node.grad.data(), n2);
                     }
                     if (ib.requires_grad) {
                       ib.ensure_grad();
                       float* bg = ib.grad.data();
                       const float* g = node.grad.data();
                       // Ascending r keeps each bg[j] fold in the original
                       // ascending-i order.
                       for (std::int64_t r = 0; r < n2; r += bn2) {
                         for (std::int64_t j = 0; j < bn2; ++j)
                           bg[j] += g[r + j];
                       }
                     }
                   },
                   "add_bias");
}

Var sum(const Var& a) {
  Tensor out({1});
  double acc = 0.0;
  const std::int64_t n = a->value.numel();
  for (std::int64_t i = 0; i < n; ++i) acc += a->value[i];
  out[0] = static_cast<float>(acc);
  return make_node(std::move(out), {a},
                   [](Node& node) {
                     Node& ia = *node.inputs[0];
                     if (!ia.requires_grad) return;
                     ia.ensure_grad();
                     const float g = node.grad[0];
                     const std::int64_t n2 = ia.value.numel();
                     for (std::int64_t i = 0; i < n2; ++i) ia.grad[i] += g;
                   },
                   "sum");
}

Var mean(const Var& a) {
  check(a->value.numel() > 0, "mean of empty tensor");
  return scale(sum(a), 1.0f / static_cast<float>(a->value.numel()));
}

Var mse_loss(const Var& pred, const Tensor& target) {
  check(pred->value.same_shape(target), "mse_loss: shape mismatch");
  const std::int64_t n = pred->value.numel();
  check(n > 0, "mse_loss of empty tensors");
  double acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const double d = pred->value[i] - target[i];
    acc += d * d;
  }
  Tensor out({1});
  out[0] = static_cast<float>(acc / static_cast<double>(n));
  Tensor tgt = target;
  return make_node(std::move(out), {pred},
                   [tgt = std::move(tgt)](Node& node) {
                     Node& ip = *node.inputs[0];
                     if (!ip.requires_grad) return;
                     ip.ensure_grad();
                     const std::int64_t n2 = ip.value.numel();
                     const float w = 2.0f * node.grad[0] / static_cast<float>(n2);
                     for (std::int64_t i = 0; i < n2; ++i)
                       ip.grad[i] += w * (ip.value[i] - tgt[i]);
                   },
                   "mse_loss");
}

Var mse_loss_batch_ordered(const Var& pred, const Tensor& targets) {
  check(pred->value.same_shape(targets), "mse_loss_batch_ordered: shape mismatch");
  check(pred->value.ndim() >= 2, "mse_loss_batch_ordered: needs a batch axis");
  const int batch = pred->value.dim(0);
  check(batch >= 1, "mse_loss_batch_ordered: empty batch");
  const std::int64_t plane = pred->value.numel() / batch;
  check(plane > 0, "mse_loss_batch_ordered: empty samples");
  float total = 0.0f;
  for (int b = 0; b < batch; ++b) {
    const float* v = pred->value.data() + b * plane;
    const float* t = targets.data() + b * plane;
    double acc = 0.0;
    for (std::int64_t i = 0; i < plane; ++i) {
      // Float subtraction then widen, exactly like per-sample mse_loss.
      const double d = v[i] - t[i];
      acc += d * d;
    }
    const float lb = static_cast<float>(acc / static_cast<double>(plane));
    total = (b == 0) ? lb : total + lb;
  }
  Tensor out({1});
  out[0] = total;
  Tensor tgt = targets;
  return make_node(std::move(out), {pred},
                   [tgt = std::move(tgt), batch, plane](Node& node) {
                     Node& ip = *node.inputs[0];
                     if (!ip.requires_grad) return;
                     ip.ensure_grad();
                     // Every per-sample loss sees the root gradient
                     // unchanged (add() passes gradients through), so the
                     // per-pixel weight matches per-sample mse_loss.
                     const float w =
                         2.0f * node.grad[0] / static_cast<float>(plane);
                     for (int b = 0; b < batch; ++b) {
                       const std::int64_t off = b * plane;
                       for (std::int64_t i = 0; i < plane; ++i) {
                         ip.grad[off + i] +=
                             w * (ip.value[off + i] - tgt[off + i]);
                       }
                     }
                   },
                   "mse_loss_batch_ordered");
}

Var matmul(const Var& a, const Var& b) {
  check(a->value.ndim() == 2 && b->value.ndim() == 2, "matmul needs 2-D inputs");
  const int m = a->value.dim(0), k = a->value.dim(1), n = b->value.dim(1);
  check(b->value.dim(0) == k, "matmul inner dimension mismatch");
  Tensor out = arena_tensor({m, n}, /*zeroed=*/false);
  gemm_nn(m, n, k, a->value.data(), b->value.data(), out.data(), false);
  return make_node(std::move(out), {a, b},
                   [m, n, k](Node& node) {
                     Node& ia = *node.inputs[0];
                     Node& ib = *node.inputs[1];
                     if (ia.requires_grad) {
                       ia.ensure_grad();
                       gemm_nt(m, k, n, node.grad.data(), ib.value.data(),
                               ia.grad.data(), true);
                     }
                     if (ib.requires_grad) {
                       ib.ensure_grad();
                       gemm_tn(k, n, m, ia.value.data(), node.grad.data(),
                               ib.grad.data(), true);
                     }
                   },
                   "matmul");
}

Var cmatmul(const Var& a, const Var& b) {
  check(a->value.ndim() == 3 && a->value.dim(2) == 2, "cmatmul: a not complex");
  check(b->value.ndim() == 3 && b->value.dim(2) == 2, "cmatmul: b not complex");
  const int m = a->value.dim(0), k = a->value.dim(1), n = b->value.dim(1);
  check(b->value.dim(0) == k, "cmatmul inner dimension mismatch");

  std::vector<float> ar, ai, br, bi;
  split_complex(a->value, ar, ai);
  split_complex(b->value, br, bi);
  std::vector<float> cr(static_cast<std::size_t>(m) * n),
      ci(static_cast<std::size_t>(m) * n);
  // C = (Ar + i Ai)(Br + i Bi).  Dense kernels (no zero-skip): complex
  // operands are essentially never exactly zero, and bench_micro BM_Gemm*
  // measured the skip branch as a wash-to-loss even on CReLU-sparse
  // activations (random zeros defeat the branch predictor).
  gemm_nn<false>(m, n, k, ar.data(), br.data(), cr.data(), false);
  gemm_nn<false>(m, n, k, ai.data(), bi.data(), ci.data(), false);
  for (std::size_t i = 0; i < cr.size(); ++i) cr[i] -= ci[i];
  gemm_nn<false>(m, n, k, ar.data(), bi.data(), ci.data(), false);
  gemm_nn<false>(m, n, k, ai.data(), br.data(), ci.data(), true);

  Tensor out = arena_tensor({m, n, 2}, /*zeroed=*/false);
  merge_complex(cr, ci, out.data(), false);
  return make_node(
      std::move(out), {a, b},
      [m, n, k](Node& node) {
        Node& ia = *node.inputs[0];
        Node& ib = *node.inputs[1];
        std::vector<float> ar, ai, br, bi, gr, gi;
        split_complex(ia.value, ar, ai);
        split_complex(ib.value, br, bi);
        split_complex(node.grad, gr, gi);
        if (ia.requires_grad) {
          // dA = dC B^H: dAr = Gr Br^T + Gi Bi^T ; dAi = Gi Br^T - Gr Bi^T.
          std::vector<float> dar(static_cast<std::size_t>(m) * k),
              dai(static_cast<std::size_t>(m) * k);
          gemm_nt(m, k, n, gr.data(), br.data(), dar.data(), false);
          gemm_nt(m, k, n, gi.data(), bi.data(), dai.data(), false);
          for (std::size_t i = 0; i < dar.size(); ++i) dar[i] += dai[i];
          gemm_nt(m, k, n, gi.data(), br.data(), dai.data(), false);
          std::vector<float> tmp(static_cast<std::size_t>(m) * k);
          gemm_nt(m, k, n, gr.data(), bi.data(), tmp.data(), false);
          for (std::size_t i = 0; i < dai.size(); ++i) dai[i] -= tmp[i];
          ia.ensure_grad();
          merge_complex(dar, dai, ia.grad.data(), true);
        }
        if (ib.requires_grad) {
          // dB = A^H dC: dBr = Ar^T Gr + Ai^T Gi ; dBi = Ar^T Gi - Ai^T Gr.
          std::vector<float> dbr(static_cast<std::size_t>(k) * n),
              dbi(static_cast<std::size_t>(k) * n);
          gemm_tn<false>(k, n, m, ar.data(), gr.data(), dbr.data(), false);
          gemm_tn<false>(k, n, m, ai.data(), gi.data(), dbi.data(), false);
          for (std::size_t i = 0; i < dbr.size(); ++i) dbr[i] += dbi[i];
          gemm_tn<false>(k, n, m, ar.data(), gi.data(), dbi.data(), false);
          std::vector<float> tmp(static_cast<std::size_t>(k) * n);
          gemm_tn<false>(k, n, m, ai.data(), gr.data(), tmp.data(), false);
          for (std::size_t i = 0; i < dbi.size(); ++i) dbi[i] -= tmp[i];
          ib.ensure_grad();
          merge_complex(dbr, dbi, ib.grad.data(), true);
        }
      },
      "cmatmul");
}

Var cmul_const(const Var& x, const Tensor& c) {
  check(x->value.ndim() >= 2 && x->value.dim(x->value.ndim() - 1) == 2,
        "cmul_const: x not complex");
  check(c.ndim() >= 2 && c.dim(c.ndim() - 1) == 2, "cmul_const: c not complex");
  const std::int64_t cn = c.numel();
  check(cn > 0 && x->value.numel() % cn == 0,
        "cmul_const: constant must tile the input");
  Tensor out(x->value.shape());
  const std::int64_t pairs = x->value.numel() / 2;
  const std::int64_t cpairs = cn / 2;
  for (std::int64_t i = 0; i < pairs; ++i) {
    const std::int64_t j = i % cpairs;
    const float xr = x->value[2 * i], xi = x->value[2 * i + 1];
    const float cr = c[2 * j], cim = c[2 * j + 1];
    out[2 * i] = xr * cr - xi * cim;
    out[2 * i + 1] = xr * cim + xi * cr;
  }
  Tensor cc = c;
  return make_node(std::move(out), {x},
                   [cc = std::move(cc)](Node& node) {
                     Node& ix = *node.inputs[0];
                     if (!ix.requires_grad) return;
                     ix.ensure_grad();
                     const std::int64_t pairs2 = node.value.numel() / 2;
                     const std::int64_t cpairs2 = cc.numel() / 2;
                     for (std::int64_t i = 0; i < pairs2; ++i) {
                       const std::int64_t j = i % cpairs2;
                       const float gr = node.grad[2 * i], gi = node.grad[2 * i + 1];
                       const float cr = cc[2 * j], cim = cc[2 * j + 1];
                       // dX = conj(c) . dY
                       ix.grad[2 * i] += gr * cr + gi * cim;
                       ix.grad[2 * i + 1] += gi * cr - gr * cim;
                     }
                   },
                   "cmul_const");
}

Var reshape(const Var& a, std::vector<int> shape) {
  Tensor out = arena_tensor(std::move(shape), /*zeroed=*/false);
  check(out.numel() == a->value.numel(), "reshape changes element count");
  const float* src = a->value.data();
  std::copy(src, src + a->value.numel(), out.data());
  return make_node(std::move(out), {a},
                   [](Node& node) {
                     Node& ia = *node.inputs[0];
                     if (!ia.requires_grad) return;
                     ia.ensure_grad();
                     const std::int64_t n = node.value.numel();
                     for (std::int64_t i = 0; i < n; ++i)
                       ia.grad[i] += node.grad[i];
                   },
                   "reshape");
}

Var transpose01(const Var& a) {
  check(a->value.ndim() >= 2, "transpose01 needs >= 2 dims");
  const int d0 = a->value.dim(0), d1 = a->value.dim(1);
  const std::int64_t rest = a->value.numel() / (static_cast<std::int64_t>(d0) * d1);
  std::vector<int> shape = a->value.shape();
  std::swap(shape[0], shape[1]);
  Tensor out = arena_tensor(shape, /*zeroed=*/false);
  for (int i = 0; i < d0; ++i)
    for (int j = 0; j < d1; ++j) {
      const float* src = a->value.data() + (static_cast<std::int64_t>(i) * d1 + j) * rest;
      float* dst = out.data() + (static_cast<std::int64_t>(j) * d0 + i) * rest;
      for (std::int64_t r = 0; r < rest; ++r) dst[r] = src[r];
    }
  return make_node(std::move(out), {a},
                   [d0, d1, rest](Node& node) {
                     Node& ia = *node.inputs[0];
                     if (!ia.requires_grad) return;
                     ia.ensure_grad();
                     for (int i = 0; i < d0; ++i)
                       for (int j = 0; j < d1; ++j) {
                         const float* g =
                             node.grad.data() +
                             (static_cast<std::int64_t>(j) * d0 + i) * rest;
                         float* dst = ia.grad.data() +
                                      (static_cast<std::int64_t>(i) * d1 + j) * rest;
                         for (std::int64_t r = 0; r < rest; ++r) dst[r] += g[r];
                       }
                   },
                   "transpose01");
}

Var concat0(const Var& a, const Var& b) {
  check(a->value.ndim() == b->value.ndim() && a->value.ndim() >= 1,
        "concat0 rank mismatch");
  for (int i = 1; i < a->value.ndim(); ++i)
    check(a->value.dim(i) == b->value.dim(i), "concat0 trailing shape mismatch");
  std::vector<int> shape = a->value.shape();
  shape[0] += b->value.dim(0);
  Tensor out(shape);
  const std::int64_t na = a->value.numel();
  for (std::int64_t i = 0; i < na; ++i) out[i] = a->value[i];
  const std::int64_t nb = b->value.numel();
  for (std::int64_t i = 0; i < nb; ++i) out[na + i] = b->value[i];
  return make_node(std::move(out), {a, b},
                   [na](Node& node) {
                     Node& ia = *node.inputs[0];
                     Node& ib = *node.inputs[1];
                     if (ia.requires_grad) {
                       ia.ensure_grad();
                       for (std::int64_t i = 0; i < na; ++i)
                         ia.grad[i] += node.grad[i];
                     }
                     if (ib.requires_grad) {
                       ib.ensure_grad();
                       const std::int64_t nb2 = ib.value.numel();
                       for (std::int64_t i = 0; i < nb2; ++i)
                         ib.grad[i] += node.grad[na + i];
                     }
                   },
                   "concat0");
}

Var slice0(const Var& a, int begin, int end) {
  check(a->value.ndim() >= 1, "slice0 needs >= 1 dim");
  check(0 <= begin && begin < end && end <= a->value.dim(0), "bad slice range");
  std::vector<int> shape = a->value.shape();
  shape[0] = end - begin;
  const std::int64_t stride = a->value.numel() / a->value.dim(0);
  Tensor out(shape);
  const std::int64_t offset = begin * stride;
  const std::int64_t n = out.numel();
  for (std::int64_t i = 0; i < n; ++i) out[i] = a->value[offset + i];
  return make_node(std::move(out), {a},
                   [offset](Node& node) {
                     Node& ia = *node.inputs[0];
                     if (!ia.requires_grad) return;
                     ia.ensure_grad();
                     const std::int64_t n2 = node.value.numel();
                     for (std::int64_t i = 0; i < n2; ++i)
                       ia.grad[offset + i] += node.grad[i];
                   },
                   "slice0");
}

}  // namespace nitho::nn
