#pragma once
// Parameter and trainer-state (de)serialization.
//
// Two layers:
//
//   * Flat parameter blobs (dump/load_parameters): model checkpoints are
//     the concatenation of parameter values in registration order (shapes
//     are structural and come from the model definition).  This is the
//     historical NithoModel::save format and stays wire-compatible.
//
//   * Checked stream records (write_/read_*): the substrate of full
//     trainer/optimizer checkpoints (nitho::NithoTrainer, nn::Adam).  Every
//     record carries a magic + kind tag and its own sizes; every read
//     validates the tag, the sizes and the stream state and THROWS
//     check_error on truncation or corruption — a short or corrupt stream
//     must never silently zero-fill state that is then trained on.
//     read_parameters additionally checks the stored parameter count and
//     every stored shape against the parameters it is restoring into.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "nn/autodiff.hpp"

namespace nitho::nn {

/// Flattens parameter values in order.
std::vector<float> dump_parameters(std::span<const Var> params);

/// Restores values in order; sizes must match exactly.
void load_parameters(std::span<const Var> params, const std::vector<float>& data);

/// Convenience file round trip (io::save_floats format).
void save_parameters_file(const std::string& path, std::span<const Var> params);
void load_parameters_file(const std::string& path, std::span<const Var> params);

/// Model size in bytes (float32 storage), for the Table I comparison.
std::int64_t parameter_bytes(std::span<const Var> params);

// ---------------------------------------------------------------------------
// Checked stream records.  Values round-trip bit-exactly (NaN and Inf
// payloads included: the payload is the raw IEEE bytes, never re-parsed).
// ---------------------------------------------------------------------------

void write_tensor(std::ostream& os, const Tensor& t);
Tensor read_tensor(std::istream& is);

void write_floats(std::ostream& os, const std::vector<float>& v);
std::vector<float> read_floats(std::istream& is);

void write_doubles(std::ostream& os, const std::vector<double>& v);
std::vector<double> read_doubles(std::istream& is);

void write_u64(std::ostream& os, std::uint64_t v);
std::uint64_t read_u64(std::istream& is);

void write_f32(std::ostream& os, float v);
float read_f32(std::istream& is);

void write_string(std::ostream& os, const std::string& s);
std::string read_string(std::istream& is);

/// Shape-tagged parameter set: a count record followed by one tensor record
/// per parameter.  Unlike the flat blob, read_parameters range-checks the
/// stored count and every stored shape against the bound parameters and
/// throws on mismatch (wrong model, wrong layer sizes) instead of silently
/// misassigning values.
void write_parameters(std::ostream& os, std::span<const Var> params);
void read_parameters(std::istream& is, std::span<const Var> params);

}  // namespace nitho::nn
