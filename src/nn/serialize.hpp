#pragma once
// Parameter (de)serialization: model checkpoints are the flat concatenation
// of parameter tensors in registration order (shapes are structural and come
// from the model definition).

#include <string>
#include <vector>

#include "nn/autodiff.hpp"

namespace nitho::nn {

/// Flattens parameter values in order.
std::vector<float> dump_parameters(std::span<const Var> params);

/// Restores values in order; sizes must match exactly.
void load_parameters(std::span<const Var> params, const std::vector<float>& data);

/// Convenience file round trip (io::save_floats format).
void save_parameters_file(const std::string& path, std::span<const Var> params);
void load_parameters_file(const std::string& path, std::span<const Var> params);

/// Model size in bytes (float32 storage), for the Table I comparison.
std::int64_t parameter_bytes(std::span<const Var> params);

}  // namespace nitho::nn
