#include "nn/autodiff.hpp"

#include <unordered_set>

#include "common/check.hpp"

namespace nitho::nn {

Tensor& Node::ensure_grad() {
  if (grad.numel() != value.numel()) grad = Tensor::zeros_like(value);
  return grad;
}

Var make_leaf(Tensor value, bool requires_grad) {
  auto n = std::make_shared<Node>();
  n->value = std::move(value);
  n->requires_grad = requires_grad;
  return n;
}

Var make_node(Tensor value, std::vector<Var> inputs,
              std::function<void(Node&)> backward_fn, const char* op) {
  auto n = std::make_shared<Node>();
  n->value = std::move(value);
  n->op = op;
  for (const Var& in : inputs) {
    check(in != nullptr, "null input to op");
    n->requires_grad = n->requires_grad || in->requires_grad;
  }
  if (n->requires_grad) {
    n->inputs = std::move(inputs);
    n->backward_fn = std::move(backward_fn);
  }
  return n;
}

namespace {

// Iterative post-order DFS over nodes that require gradients.
void topo_sort(const Var& root, std::vector<Node*>& order) {
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, std::size_t>> stack;
  if (!root->requires_grad) return;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    if (next < node->inputs.size()) {
      Node* child = node->inputs[next++].get();
      if (child->requires_grad && !visited.count(child)) {
        visited.insert(child);
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void backward(const Var& root) {
  check(root != nullptr, "backward of null var");
  check(root->value.numel() == 1, "backward requires a scalar root");
  if (!root->requires_grad) return;
  std::vector<Node*> order;
  topo_sort(root, order);
  root->ensure_grad();
  root->grad[0] = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn && n->grad.numel() == n->value.numel()) {
      n->backward_fn(*n);
    }
  }
}

void zero_grad(std::span<const Var> params) {
  for (const Var& p : params) {
    if (p && p->grad.numel() > 0) p->grad.fill(0.0f);
  }
}

std::int64_t parameter_count(std::span<const Var> params) {
  std::int64_t total = 0;
  for (const Var& p : params) {
    if (p) total += p->value.numel();
  }
  return total;
}

}  // namespace nitho::nn
