#include "nn/autodiff.hpp"

#include <unordered_set>

#include "common/check.hpp"

namespace nitho::nn {
namespace {

thread_local GraphArena* g_active_arena = nullptr;

}  // namespace

GraphArena::Scope::Scope(GraphArena& arena) : prev_(g_active_arena) {
  g_active_arena = &arena;
}

GraphArena::Scope::~Scope() { g_active_arena = prev_; }

Var GraphArena::alloc_node() {
  if (live_ < nodes_.size()) return nodes_[live_++];
  nodes_.push_back(std::make_shared<Node>());
  ++live_;
  return nodes_.back();
}

Tensor GraphArena::take_buffer(const std::vector<int>& shape) {
  const std::int64_t want = shape_numel(shape);
  for (std::size_t i = buffers_.size(); i-- > 0;) {
    if (buffers_[i].numel() == want) {
      Tensor t = std::move(buffers_[i]);
      buffers_.erase(buffers_.begin() + static_cast<std::ptrdiff_t>(i));
      t.reset_shape(shape);
      ++reused_;
      return t;
    }
  }
  return Tensor{};
}

void GraphArena::reclaim(Tensor&& t) {
  // Bounded: a fixed-shape training step reclaims the same buffer set every
  // reset, so the cap only guards against pathological shape churn.
  if (t.numel() > 0 && buffers_.size() < 256) buffers_.push_back(std::move(t));
}

void GraphArena::reset() {
  // Pass 1: cut the graph edges so interior reference counts collapse to
  // the pool's own handle.
  for (std::size_t i = 0; i < live_; ++i) {
    nodes_[i]->inputs.clear();
    nodes_[i]->backward_fn = nullptr;
  }
  // Pass 2: recycle what is now exclusively pool-owned; evict (but leave
  // intact) anything the caller still holds, e.g. cached constant leaves.
  for (std::size_t i = 0; i < live_; ++i) {
    if (nodes_[i].use_count() != 1) {
      nodes_[i] = std::make_shared<Node>();
      continue;
    }
    Node& n = *nodes_[i];
    reclaim(std::move(n.value));
    reclaim(std::move(n.grad));
    n.value = Tensor{};
    n.grad = Tensor{};
    n.requires_grad = false;
    n.op = "leaf";
  }
  live_ = 0;
}

Tensor arena_tensor(std::vector<int> shape, bool zeroed) {
  if (g_active_arena != nullptr && shape_numel(shape) > 0) {
    Tensor t = g_active_arena->take_buffer(shape);
    if (t.numel() > 0) {
      if (zeroed) t.fill(0.0f);
      return t;
    }
  }
  return Tensor(std::move(shape));
}

Tensor& Node::ensure_grad() {
  if (grad.numel() != value.numel()) grad = arena_tensor(value.shape());
  return grad;
}

Var make_leaf(Tensor value, bool requires_grad) {
  auto n = g_active_arena ? g_active_arena->alloc_node()
                          : std::make_shared<Node>();
  n->value = std::move(value);
  n->requires_grad = requires_grad;
  return n;
}

Var make_node(Tensor value, std::vector<Var> inputs,
              std::function<void(Node&)> backward_fn, const char* op) {
  auto n = g_active_arena ? g_active_arena->alloc_node()
                          : std::make_shared<Node>();
  n->value = std::move(value);
  n->op = op;
  for (const Var& in : inputs) {
    check(in != nullptr, "null input to op");
    n->requires_grad = n->requires_grad || in->requires_grad;
  }
  if (n->requires_grad) {
    n->inputs = std::move(inputs);
    n->backward_fn = std::move(backward_fn);
  }
  return n;
}

namespace {

// Iterative post-order DFS over nodes that require gradients.
void topo_sort(const Var& root, std::vector<Node*>& order) {
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, std::size_t>> stack;
  if (!root->requires_grad) return;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    if (next < node->inputs.size()) {
      Node* child = node->inputs[next++].get();
      if (child->requires_grad && !visited.count(child)) {
        visited.insert(child);
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void backward(const Var& root) {
  check(root != nullptr, "backward of null var");
  check(root->value.numel() == 1, "backward requires a scalar root");
  if (!root->requires_grad) return;
  std::vector<Node*> order;
  topo_sort(root, order);
  root->ensure_grad();
  root->grad[0] = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    if (n->backward_fn && n->grad.numel() == n->value.numel()) {
      n->backward_fn(*n);
    }
  }
}

void zero_grad(std::span<const Var> params) {
  for (const Var& p : params) {
    if (p && p->grad.numel() > 0) p->grad.fill(0.0f);
  }
}

std::int64_t parameter_count(std::span<const Var> params) {
  std::int64_t total = 0;
  for (const Var& p : params) {
    if (p) total += p->value.numel();
  }
  return total;
}

}  // namespace nitho::nn
