#pragma once
// FFT-backed differentiable ops.
//
//   socs_field     — Algorithm 1 line 11: E_i = F^-1(K_i . F(M)) for every
//                    predicted kernel, with the (constant) cropped mask
//                    spectrum folded in.  Linear in K, so its vjp is the
//                    adjoint transform (unnormalized forward DFT + crop).
//   abs2_sum0      — Algorithm 1 line 12: I = sum_i |E_i|^2.
//   spectral_conv2d— the Fourier Neural Operator mixing layer used by the
//                    DOINN-like baseline.
//
// All complex tensors are interleaved (trailing dim 2), matching
// std::complex<float> layout so FFT plans run in place.

#include "nn/autodiff.hpp"

namespace nitho::nn {

/// kernels: [r, n, m, 2]; spectrum: constant [n, m, 2] (centered crop of the
/// mask's Fourier coefficients).  Returns the coherent fields [r, S, S, 2]
/// on the out_px training grid, scaled like litho::socs_aerial.
Var socs_field(const Var& kernels, const Tensor& spectrum, int out_px);

/// Batched socs_field over a whole mask batch in one graph node: kernels
/// [r, n, m, 2], spectra [B, n, m, 2] -> fields [B, r, S, S, 2].  Per
/// (mask, kernel) plane the arithmetic is bit-identical to socs_field;
/// the inverse FFT prunes structurally zero rows and the adjoint prunes
/// unread columns (DESIGN.md §8.2), FFT plans are hoisted out of the plane
/// loop, and workspaces come from a bounded pool, so steady-state training
/// steps allocate nothing here.  The kernel-gradient accumulation runs the
/// batch in descending order, matching the reverse-topological order of the
/// legacy per-mask graph.  The backward pass transforms node.grad in place
/// (the output gradient is consumed — never read it after backward()).
Var socs_field_batch(const Var& kernels, const Tensor& spectra, int out_px);

/// fields [r, S, S, 2] -> intensity [S, S]: sum over kernels of |E|^2.
Var abs2_sum0(const Var& fields);

/// Batched abs2_sum0: fields [B, r, S, S, 2] -> intensities [B, S, S],
/// accumulated over kernels in index order per sample (same summation order
/// as the per-mask op, so values are bit-identical).
Var abs2_sum0_batch(const Var& fields);

/// FNO spectral convolution: x [Cin, H, W] real, w [Cout, Cin, mh, mw, 2]
/// complex mode weights (centered layout).  Returns [Cout, H, W] real.
Var spectral_conv2d(const Var& x, const Var& w);

/// Differentiable mask -> Fourier-coefficient crop: mask [S, S] real ->
/// centered crop [n, n, 2] of DFT(mask)/S^2 (the same normalization as the
/// golden pipeline).  Enables inverse lithography: gradients flow from the
/// SOCS imaging loss back into mask pixels.
Var fft2c_crop(const Var& mask, int crop);

/// Companion to socs_field with the roles swapped: constant kernels
/// [r, n, n, 2], differentiable spectrum [n, n, 2] -> fields [r, S, S, 2].
Var socs_field_from_spectrum(const Var& spectrum, const Tensor& kernels,
                             int out_px);

/// Batched fft2c_crop over a whole mask batch in one graph node: masks
/// [B, S, S] -> spectra [B, n, n, 2].  Per sample the arithmetic is
/// bit-identical to fft2c_crop; the forward column pass transforms only the
/// crop's wrapped columns (unread columns never affect read values) and the
/// adjoint's inverse prunes structurally zero rows (DESIGN.md §8.2), FFT
/// plans are hoisted, and scratch planes come from the graph arena, so
/// steady-state OPC steps allocate nothing here.
Var fft2c_crop_batch(const Var& masks, int crop);

/// Batched socs_field_from_spectrum: differentiable spectra [B, n, n, 2],
/// constant kernels [r, n, n, 2] -> fields [B, r, S, S, 2].  Per
/// (mask, kernel) plane bit-identical to the per-mask op; spectrum-gradient
/// accumulation runs kernels in ascending order per sample, matching the
/// per-mask loop.  The backward pass transforms node.grad in place (the
/// output gradient is consumed — never read it after backward()).
Var socs_field_from_spectrum_batch(const Var& spectra, const Tensor& kernels,
                                   int out_px);

}  // namespace nitho::nn
