#include "nn/ops_fft.hpp"

#include <algorithm>
#include <complex>
#include <vector>

#include "common/check.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "fft/fft.hpp"

namespace nitho::nn {
namespace {

using cfl = std::complex<float>;

// In-place 2-D DFT over an interleaved [h, w, 2] plane.
// inverse=false: unnormalized forward (sign -).
// inverse=true:  unnormalized inverse (sign +), i.e. N * normalized inverse.
void fft2_plane(float* plane, int h, int w, bool inverse) {
  auto* z = reinterpret_cast<cfl*>(plane);
  const FftPlan<float>& row_plan = fft_plan_f(w);
  for (int r = 0; r < h; ++r) {
    if (inverse) {
      row_plan.inverse(z + static_cast<std::ptrdiff_t>(r) * w);
    } else {
      row_plan.forward(z + static_cast<std::ptrdiff_t>(r) * w);
    }
  }
  const FftPlan<float>& col_plan = fft_plan_f(h);
  std::vector<cfl> buf(static_cast<std::size_t>(h));
  for (int c = 0; c < w; ++c) {
    for (int r = 0; r < h; ++r) buf[static_cast<std::size_t>(r)] = z[r * w + c];
    if (inverse) {
      col_plan.inverse(buf.data());
    } else {
      col_plan.forward(buf.data());
    }
    for (int r = 0; r < h; ++r) z[r * w + c] = buf[static_cast<std::size_t>(r)];
  }
  if (inverse) {
    const float scale = static_cast<float>(h) * static_cast<float>(w);
    const std::int64_t n = static_cast<std::int64_t>(h) * w * 2;
    for (std::int64_t i = 0; i < n; ++i) plane[i] *= scale;
  }
}

// DFT index of centered-crop position a (crop size n) on an N-grid.
inline int wrapped_index(int a, int n, int big) {
  const int signed_freq = a - n / 2;
  return (signed_freq + big) % big;
}

// One float FFT workspace per worker thread for the batched training ops.
// parallel_for tasks never nest, so a function-local thread_local is held
// exclusively for the duration of a task — the same idiom as gemm_nt's
// packing buffers — and replaces the old mutexed pool, whose per-plane
// acquire/release was measurable next to a plane's ~60 tiny transforms.
Fft2WorkspaceF& train_ws() {
  static thread_local Fft2WorkspaceF ws;
  return ws;
}

// Unnormalized inverse 2-D DFT of an interleaved [s, s, 2] plane whose only
// nonzero rows are `band_rows`.  Those rows must hold dense data; every
// other row is treated as structurally zero and is NEVER READ, so callers
// do not pre-zero the plane — the column pass gathers +0 for the off-band
// positions itself, exactly the +0 a zeroed, row-pass-untouched plane held
// before.  The whole plane is written: the s² de-normalization is fused
// into the column write-back (still one multiply per element, at the same
// value the old separate scale pass rounded).  Bit-identical to
// fft2_plane(inverse): a structurally zero row inverse-transforms to zeros,
// which enter the column pass only additively (the AerialEngine's
// pruned-band argument, DESIGN.md §6.3 / §8.2).
// Shared skeleton of the pruned inverse.  Band-row pass: band_rows is
// sorted, and a centered crop wraps to at most two runs of consecutive rows
// — each run is contiguous memory, so one inverse_many per run amortizes the
// per-transform dispatch.  Column pass: a block of columns per sweep over the
// band rows (contiguous reads), transformed by one inverse_many; ~8 KB of
// gathered columns per block keeps the strip in L1 while amortizing the
// per-stage twiddle walk across the whole block.  `write(r, c0, cb, cols,
// scale)` stores row r of the current column block.  `prerev_rows` promises
// the caller scattered each band row's elements into bit-reversed positions
// (radix-2 sizes only; see fft.hpp bitrev_table()), so the row pass skips
// its permutation pass too.
template <typename WriteRow>
void ifft2_pruned_run(float* plane, int s, const std::vector<int>& band_rows,
                      const FftPlan<float>& plan, Fft2WorkspaceF& ws,
                      bool prerev_rows, WriteRow&& write) {
  auto* z = reinterpret_cast<cfl*>(plane);
  cfl* scratch = ws.scratch_for(plan);
  for (std::size_t i = 0; i < band_rows.size();) {
    std::size_t j = i + 1;
    while (j < band_rows.size() && band_rows[j] == band_rows[j - 1] + 1) ++j;
    cfl* seg = z + static_cast<std::ptrdiff_t>(band_rows[i]) * s;
    const int cnt = static_cast<int>(j - i);
    if (prerev_rows) {
      plan.inverse_many_prerev(seg, cnt, scratch);
    } else {
      plan.inverse_many(seg, cnt, scratch);
    }
    i = j;
  }
  const float scale = static_cast<float>(s) * static_cast<float>(s);
  const int col_block = std::max(4, 1024 / s);
  // Radix-2 sizes: gather straight into bit-reversed row positions and skip
  // the transforms' permutation pass (a permutation of the zero fills is
  // still all zeros, so the fill stays a plain memset).
  const int* brev = plan.bitrev_table();
  cfl* cols = ws.col_buffer(col_block * s);
  for (int c0 = 0; c0 < s; c0 += col_block) {
    const int cb = std::min(col_block, s - c0);
    std::fill(cols, cols + static_cast<std::ptrdiff_t>(cb) * s,
              cfl(0.0f, 0.0f));
    for (const int r : band_rows) {
      const cfl* src = z + static_cast<std::ptrdiff_t>(r) * s + c0;
      cfl* dst = cols + (brev != nullptr ? brev[r] : r);
      for (int q = 0; q < cb; ++q) dst[q * s] = src[q];
    }
    if (brev != nullptr) {
      plan.inverse_many_prerev(cols, cb, scratch);
    } else {
      plan.inverse_many(cols, cb, scratch);
    }
    for (int r = 0; r < s; ++r) write(r, c0, cb, cols, scale);
  }
}

void ifft2_plane_pruned(float* plane, int s, const std::vector<int>& band_rows,
                        const FftPlan<float>& plan, Fft2WorkspaceF& ws,
                        bool prerev_rows = false) {
  auto* z = reinterpret_cast<cfl*>(plane);
  ifft2_pruned_run(plane, s, band_rows, plan, ws, prerev_rows,
                   [z, s](int r, int c0, int cb, const cfl* cols,
                          float scale) {
                     cfl* dst = z + static_cast<std::ptrdiff_t>(r) * s + c0;
                     for (int q = 0; q < cb; ++q)
                       dst[q] = cols[q * s + r] * scale;
                   });
}

// ifft2_plane_pruned with the caller's real-part accumulate fused into the
// column write-back: acc[p] += Re(ifft2(plane))[p] — exactly
// `ifft2_plane_pruned(plane, ...); acc[p] += plane[2*p];` with the same
// cols[q*s+r].real() * scale product the plain write-back stored, minus the
// imaginary-lane multiplies and the full-plane round trip nobody reads.
void ifft2_pruned_real_accum(float* plane, int s,
                             const std::vector<int>& band_rows,
                             const FftPlan<float>& plan, Fft2WorkspaceF& ws,
                             float* acc, bool prerev_rows = false) {
  ifft2_pruned_run(plane, s, band_rows, plan, ws, prerev_rows,
                   [acc, s](int r, int c0, int cb, const cfl* cols,
                            float scale) {
                     float* dst = acc + static_cast<std::ptrdiff_t>(r) * s + c0;
                     for (int q = 0; q < cb; ++q)
                       dst[q] += cols[q * s + r].real() * scale;
                   });
}

}  // namespace

Var socs_field(const Var& kernels, const Tensor& spectrum, int out_px) {
  check(kernels->value.ndim() == 4 && kernels->value.dim(3) == 2,
        "socs_field: kernels must be [r,n,m,2]");
  const int r = kernels->value.dim(0);
  const int n = kernels->value.dim(1);
  const int m = kernels->value.dim(2);
  check(spectrum.ndim() == 3 && spectrum.dim(0) == n && spectrum.dim(1) == m &&
            spectrum.dim(2) == 2,
        "socs_field: spectrum must match the kernel support");
  check(out_px >= n && out_px >= m, "socs_field: output grid too small");

  const int s = out_px;
  Tensor out({r, s, s, 2});
  const std::int64_t plane = static_cast<std::int64_t>(s) * s * 2;
  const std::int64_t kplane = static_cast<std::int64_t>(n) * m * 2;
  Tensor spec = spectrum;

  parallel_for(r, [&](std::int64_t i) {
    float* dst = out.data() + i * plane;
    const float* k = kernels->value.data() + i * kplane;
    for (int a = 0; a < n; ++a) {
      const int rr = wrapped_index(a, n, s);
      for (int b = 0; b < m; ++b) {
        const int cc = wrapped_index(b, m, s);
        const std::int64_t ki = (static_cast<std::int64_t>(a) * m + b) * 2;
        const float kr = k[ki], kim = k[ki + 1];
        const float cr = spec[ki], ci = spec[ki + 1];
        dst[(static_cast<std::int64_t>(rr) * s + cc) * 2] = kr * cr - kim * ci;
        dst[(static_cast<std::int64_t>(rr) * s + cc) * 2 + 1] =
            kr * ci + kim * cr;
      }
    }
    fft2_plane(dst, s, s, /*inverse=*/true);
  });

  return make_node(
      std::move(out), {kernels},
      [spec = std::move(spec), r, n, m, s, plane, kplane](Node& node) {
        Node& ik = *node.inputs[0];
        if (!ik.requires_grad) return;
        ik.ensure_grad();
        parallel_for(r, [&](std::int64_t i) {
          // vjp of the unnormalized inverse DFT is the unnormalized forward
          // DFT; then gather the crop and multiply by conj(spectrum).
          std::vector<float> g(node.grad.data() + i * plane,
                               node.grad.data() + (i + 1) * plane);
          fft2_plane(g.data(), s, s, /*inverse=*/false);
          float* kg = ik.grad.data() + i * kplane;
          for (int a = 0; a < n; ++a) {
            const int rr = wrapped_index(a, n, s);
            for (int b = 0; b < m; ++b) {
              const int cc = wrapped_index(b, m, s);
              const std::int64_t gi =
                  (static_cast<std::int64_t>(rr) * s + cc) * 2;
              const float gr = g[static_cast<std::size_t>(gi)];
              const float gim = g[static_cast<std::size_t>(gi + 1)];
              const std::int64_t ki = (static_cast<std::int64_t>(a) * m + b) * 2;
              const float cr = spec[ki], ci = spec[ki + 1];
              kg[ki] += gr * cr + gim * ci;
              kg[ki + 1] += gim * cr - gr * ci;
            }
          }
        });
      },
      "socs_field");
}

Var socs_field_batch(const Var& kernels, const Tensor& spectra, int out_px) {
  check(kernels->value.ndim() == 4 && kernels->value.dim(3) == 2,
        "socs_field_batch: kernels must be [r,n,m,2]");
  const int r = kernels->value.dim(0);
  const int n = kernels->value.dim(1);
  const int m = kernels->value.dim(2);
  check(spectra.ndim() == 4 && spectra.dim(1) == n && spectra.dim(2) == m &&
            spectra.dim(3) == 2,
        "socs_field_batch: spectra must be [B,n,m,2] on the kernel support");
  const int batch = spectra.dim(0);
  check(batch >= 1, "socs_field_batch: empty batch");
  check(out_px >= n && out_px >= m, "socs_field_batch: output grid too small");

  const int s = out_px;
  const std::int64_t plane = static_cast<std::int64_t>(s) * s * 2;
  const std::int64_t kplane = static_cast<std::int64_t>(n) * m * 2;

  // Embed positions of the centered crop on the S-grid, hoisted out of the
  // plane loop; the sorted copy drives the pruned row pass.
  std::vector<int> rows(static_cast<std::size_t>(n));
  for (int a = 0; a < n; ++a) rows[static_cast<std::size_t>(a)] = wrapped_index(a, n, s);
  std::vector<int> cols(static_cast<std::size_t>(m));
  for (int b = 0; b < m; ++b) cols[static_cast<std::size_t>(b)] = wrapped_index(b, m, s);
  std::vector<int> band_rows = rows;
  std::sort(band_rows.begin(), band_rows.end());

  const FftPlan<float>& plan = fft_plan_f(s);
  // Radix-2 sizes: scatter each band row's entries into bit-reversed
  // positions so the pruned inverse's row pass skips its permutation pass
  // (pure data movement; see fft.hpp bitrev_table()).
  const int* brev = plan.bitrev_table();
  // Not pre-zeroed: the scatter writes the band rows densely (segments plus
  // explicit +0 gaps) and the pruned inverse never reads the other rows but
  // writes every row back, so the B·r·s² memset is pure waste.
  Tensor out = arena_tensor({batch, r, s, s, 2}, /*zeroed=*/false);
  Tensor spec = spectra;

  parallel_for(static_cast<std::int64_t>(batch) * r, [&](std::int64_t t) {
    const std::int64_t b = t / r;
    const std::int64_t i = t % r;
    float* dst = out.data() + t * plane;
    const float* k = kernels->value.data() + i * kplane;
    const float* sp = spec.data() + b * kplane;
    // cols ascends by 1 mod s, so each crop row scatters as at most two
    // contiguous destination segments — straight elementwise complex
    // multiplies for the SIMD layer (same arithmetic as the old
    // (kr*cr - kim*ci, kr*ci + kim*cr) scalar writes).  The fills zero the
    // row's uncovered spans (a permuted zero fill is still all zeros, so
    // the prerev path zeroes the whole row up front), making each band row
    // dense.
    const int col0 = cols[0];
    const int seg1 = std::min(m, s - col0);
    Fft2WorkspaceF& ws = train_ws();
    cfl* tmp = brev != nullptr ? ws.col_buffer(m) : nullptr;
    for (int a = 0; a < n; ++a) {
      const int rr = rows[static_cast<std::size_t>(a)];
      const cfl* krow =
          reinterpret_cast<const cfl*>(k) + static_cast<std::int64_t>(a) * m;
      const cfl* srow =
          reinterpret_cast<const cfl*>(sp) + static_cast<std::int64_t>(a) * m;
      cfl* drow =
          reinterpret_cast<cfl*>(dst) + static_cast<std::int64_t>(rr) * s;
      if (brev != nullptr) {
        // cmul lanes span independent elements, so one length-m call bits-
        // matches the two-segment split; the permuted stores just move the
        // products.
        std::fill(drow, drow + s, cfl(0.0f, 0.0f));
        simd::cmul(tmp, krow, srow, m);
        for (int c = 0; c < seg1; ++c) drow[brev[col0 + c]] = tmp[c];
        for (int c = seg1; c < m; ++c) drow[brev[c - seg1]] = tmp[c];
      } else {
        std::fill(drow + (m - seg1), drow + col0, cfl(0.0f, 0.0f));
        std::fill(drow + col0 + seg1, drow + s, cfl(0.0f, 0.0f));
        simd::cmul(drow + col0, krow, srow, seg1);
        simd::cmul(drow, krow + seg1, srow + seg1, m - seg1);
      }
    }
    ifft2_plane_pruned(dst, s, band_rows, plan, ws, brev != nullptr);
  });

  return make_node(
      std::move(out), {kernels},
      [spec = std::move(spec), rows = std::move(rows), cols = std::move(cols),
       batch, r, n, m, s, plane, kplane](Node& node) {
        Node& ik = *node.inputs[0];
        if (!ik.requires_grad) return;
        ik.ensure_grad();
        const FftPlan<float>& plan = fft_plan_f(s);
        // vjp of the unnormalized inverse DFT is the unnormalized forward
        // DFT; only the crop's columns are ever read back, so the column
        // pass transforms just those.  node.grad is transformed in place
        // (documented: the output gradient is consumed).  Kernel planes are
        // disjoint across i; within one kernel the batch accumulates in
        // descending order — exactly the reverse-topological order in which
        // the per-mask graph's socs_field nodes run their backward.
        const int col0 = cols[0];
        const int cseg = std::min(m, s - col0);
        // Strip positions are written bit-reversed so the strip transforms
        // skip their permutation pass (pure data movement; see fft.hpp).
        const int* brev = plan.bitrev_table();
        parallel_for(r, [&](std::int64_t i) {
          Fft2WorkspaceF& ws = train_ws();
          cfl* scratch = ws.scratch_for(plan);
          cfl* strip = ws.col_buffer(m * s);
          float* kg = ik.grad.data() + i * kplane;
          for (std::int64_t b = batch; b-- > 0;) {
            float* g = node.grad.data() + (b * r + i) * plane;
            auto* z = reinterpret_cast<cfl*>(g);
            plan.forward_many(z, s, scratch);
            // Gather every crop column into one strip, then transform the
            // strip as one forward_many — the columns stay independent.
            // Row-major gather: one sequential pass over the plane (the crop
            // columns are two contiguous spans per row, cols ascending by 1
            // mod s); the strided writes land in the L1-resident strip.
            for (int rr = 0; rr < s; ++rr) {
              const cfl* zrow = z + static_cast<std::ptrdiff_t>(rr) * s;
              const int pr = brev != nullptr ? brev[rr] : rr;
              for (int c = 0; c < cseg; ++c)
                strip[c * s + pr] = zrow[col0 + c];
              for (int c = cseg; c < m; ++c)
                strip[c * s + pr] = zrow[c - cseg];
            }
            if (brev != nullptr) {
              plan.forward_many_prerev(strip, m, scratch);
            } else {
              plan.forward_many(strip, m, scratch);
            }
            const float* sp = spec.data() + b * kplane;
            // a-major so the kg writes are contiguous; each (a, c) entry
            // still sees exactly one accumulate per (i, b) iteration, so no
            // element's fold reorders.
            for (int a = 0; a < n; ++a) {
              const int ra = rows[static_cast<std::size_t>(a)];
              for (int c = 0; c < m; ++c) {
                const cfl gz = strip[static_cast<std::ptrdiff_t>(c) * s + ra];
                const std::int64_t ki = (static_cast<std::int64_t>(a) * m + c) * 2;
                const float cr = sp[ki], ci = sp[ki + 1];
                kg[ki] += gz.real() * cr + gz.imag() * ci;
                kg[ki + 1] += gz.imag() * cr - gz.real() * ci;
              }
            }
          }
        });
      },
      "socs_field_batch");
}

Var abs2_sum0_batch(const Var& fields) {
  check(fields->value.ndim() == 5 && fields->value.dim(4) == 2,
        "abs2_sum0_batch: fields must be [B,r,S,S,2]");
  const int batch = fields->value.dim(0);
  const int r = fields->value.dim(1);
  const int h = fields->value.dim(2);
  const int w = fields->value.dim(3);
  const std::int64_t plane = static_cast<std::int64_t>(h) * w;
  Tensor out = arena_tensor({batch, h, w});
  parallel_for(batch, [&](std::int64_t b) {
    float* o = out.data() + b * plane;
    for (int i = 0; i < r; ++i) {
      const float* e = fields->value.data() + (b * r + i) * plane * 2;
      // Lanes span pixels; the kernel loop stays serial, so each pixel's
      // sum over kernels keeps its order.
      simd::abs2_accum(o, e, plane);
    }
  });
  return make_node(std::move(out), {fields},
                   [batch, r, plane](Node& node) {
                     Node& ie = *node.inputs[0];
                     if (!ie.requires_grad) return;
                     ie.ensure_grad();
                     parallel_for(batch, [&](std::int64_t b) {
                       const float* gy = node.grad.data() + b * plane;
                       for (int i = 0; i < r; ++i) {
                         const std::int64_t off = (b * r + i) * plane * 2;
                         // Lanes span pixels; same (2·e)·gy accumulate as
                         // the scalar loop, per field plane.
                         simd::abs2_backprop(ie.grad.data() + off,
                                             ie.value.data() + off, gy, plane);
                       }
                     });
                   },
                   "abs2_sum0_batch");
}

Var abs2_sum0(const Var& fields) {
  check(fields->value.ndim() == 4 && fields->value.dim(3) == 2,
        "abs2_sum0: fields must be [r,S,S,2]");
  const int r = fields->value.dim(0);
  const int h = fields->value.dim(1);
  const int w = fields->value.dim(2);
  Tensor out({h, w});
  const std::int64_t plane = static_cast<std::int64_t>(h) * w;
  for (int i = 0; i < r; ++i) {
    const float* e = fields->value.data() + i * plane * 2;
    simd::abs2_accum(out.data(), e, plane);
  }
  return make_node(std::move(out), {fields},
                   [r, plane](Node& node) {
                     Node& ie = *node.inputs[0];
                     if (!ie.requires_grad) return;
                     ie.ensure_grad();
                     for (int i = 0; i < r; ++i) {
                       const float* e = ie.value.data() + i * plane * 2;
                       float* g = ie.grad.data() + i * plane * 2;
                       for (std::int64_t p = 0; p < plane; ++p) {
                         const float gy = node.grad[p];
                         g[2 * p] += 2.0f * e[2 * p] * gy;
                         g[2 * p + 1] += 2.0f * e[2 * p + 1] * gy;
                       }
                     }
                   },
                   "abs2_sum0");
}

Var fft2c_crop(const Var& mask, int crop) {
  check(mask->value.ndim() == 2, "fft2c_crop: mask must be [S,S]");
  const int s = mask->value.dim(0);
  check(mask->value.dim(1) == s, "fft2c_crop: mask must be square");
  check(crop >= 1 && crop <= s && crop % 2 == 1,
        "fft2c_crop: crop must be odd and fit the mask");

  const std::int64_t plane = static_cast<std::int64_t>(s) * s;
  const float inv_n2 = 1.0f / static_cast<float>(plane);
  std::vector<float> buf(static_cast<std::size_t>(plane) * 2, 0.0f);
  for (std::int64_t p = 0; p < plane; ++p) {
    buf[static_cast<std::size_t>(2 * p)] = mask->value[p];
  }
  fft2_plane(buf.data(), s, s, /*inverse=*/false);
  Tensor out({crop, crop, 2});
  for (int a = 0; a < crop; ++a) {
    const int rr = wrapped_index(a, crop, s);
    for (int b = 0; b < crop; ++b) {
      const int cc = wrapped_index(b, crop, s);
      const std::int64_t src = (static_cast<std::int64_t>(rr) * s + cc) * 2;
      const std::int64_t dst = (static_cast<std::int64_t>(a) * crop + b) * 2;
      out[dst] = buf[static_cast<std::size_t>(src)] * inv_n2;
      out[dst + 1] = buf[static_cast<std::size_t>(src + 1)] * inv_n2;
    }
  }
  return make_node(
      std::move(out), {mask},
      [s, crop, plane, inv_n2](Node& node) {
        Node& im = *node.inputs[0];
        if (!im.requires_grad) return;
        im.ensure_grad();
        // vjp: scatter the crop back, unnormalized inverse DFT, real part.
        std::vector<float> buf(static_cast<std::size_t>(plane) * 2, 0.0f);
        for (int a = 0; a < crop; ++a) {
          const int rr = wrapped_index(a, crop, s);
          for (int b = 0; b < crop; ++b) {
            const int cc = wrapped_index(b, crop, s);
            const std::int64_t dst = (static_cast<std::int64_t>(rr) * s + cc) * 2;
            const std::int64_t src = (static_cast<std::int64_t>(a) * crop + b) * 2;
            buf[static_cast<std::size_t>(dst)] = node.grad[src] * inv_n2;
            buf[static_cast<std::size_t>(dst + 1)] = node.grad[src + 1] * inv_n2;
          }
        }
        fft2_plane(buf.data(), s, s, /*inverse=*/true);
        for (std::int64_t p = 0; p < plane; ++p) {
          im.grad[p] += buf[static_cast<std::size_t>(2 * p)];
        }
      },
      "fft2c_crop");
}

Var socs_field_from_spectrum(const Var& spectrum, const Tensor& kernels,
                             int out_px) {
  check(spectrum->value.ndim() == 3 && spectrum->value.dim(2) == 2,
        "socs_field_from_spectrum: spectrum must be [n,m,2]");
  check(kernels.ndim() == 4 && kernels.dim(3) == 2,
        "socs_field_from_spectrum: kernels must be [r,n,m,2]");
  const int r = kernels.dim(0);
  const int n = kernels.dim(1);
  const int m = kernels.dim(2);
  check(spectrum->value.dim(0) == n && spectrum->value.dim(1) == m,
        "socs_field_from_spectrum: shape mismatch");
  check(out_px >= n && out_px >= m, "output grid too small");

  const int s = out_px;
  Tensor out({r, s, s, 2});
  const std::int64_t plane = static_cast<std::int64_t>(s) * s * 2;
  const std::int64_t kplane = static_cast<std::int64_t>(n) * m * 2;
  parallel_for(r, [&](std::int64_t i) {
    float* dst = out.data() + i * plane;
    const float* k = kernels.data() + i * kplane;
    for (int a = 0; a < n; ++a) {
      const int rr = wrapped_index(a, n, s);
      for (int b = 0; b < m; ++b) {
        const int cc = wrapped_index(b, m, s);
        const std::int64_t ki = (static_cast<std::int64_t>(a) * m + b) * 2;
        const float kr = k[ki], kim = k[ki + 1];
        const float cr = spectrum->value[ki], ci = spectrum->value[ki + 1];
        dst[(static_cast<std::int64_t>(rr) * s + cc) * 2] = kr * cr - kim * ci;
        dst[(static_cast<std::int64_t>(rr) * s + cc) * 2 + 1] =
            kr * ci + kim * cr;
      }
    }
    fft2_plane(dst, s, s, /*inverse=*/true);
  });
  Tensor ks = kernels;
  return make_node(
      std::move(out), {spectrum},
      [ks = std::move(ks), r, n, m, s, plane, kplane](Node& node) {
        Node& is = *node.inputs[0];
        if (!is.requires_grad) return;
        is.ensure_grad();
        for (std::int64_t i = 0; i < r; ++i) {
          std::vector<float> g(node.grad.data() + i * plane,
                               node.grad.data() + (i + 1) * plane);
          fft2_plane(g.data(), s, s, /*inverse=*/false);
          const float* k = ks.data() + i * kplane;
          for (int a = 0; a < n; ++a) {
            const int rr = wrapped_index(a, n, s);
            for (int b = 0; b < m; ++b) {
              const int cc = wrapped_index(b, m, s);
              const std::int64_t gi =
                  (static_cast<std::int64_t>(rr) * s + cc) * 2;
              const float gr = g[static_cast<std::size_t>(gi)];
              const float gim = g[static_cast<std::size_t>(gi + 1)];
              const std::int64_t ki = (static_cast<std::int64_t>(a) * m + b) * 2;
              const float kr = k[ki], kim = k[ki + 1];
              // dC += conj(K) . dE
              is.grad[ki] += gr * kr + gim * kim;
              is.grad[ki + 1] += gim * kr - gr * kim;
            }
          }
        }
      },
      "socs_field_from_spectrum");
}

Var fft2c_crop_batch(const Var& masks, int crop) {
  check(masks->value.ndim() == 3, "fft2c_crop_batch: masks must be [B,S,S]");
  const int batch = masks->value.dim(0);
  const int s = masks->value.dim(1);
  check(batch >= 1, "fft2c_crop_batch: empty batch");
  check(masks->value.dim(2) == s, "fft2c_crop_batch: masks must be square");
  check(crop >= 1 && crop <= s && crop % 2 == 1,
        "fft2c_crop_batch: crop must be odd and fit the mask");

  const std::int64_t plane = static_cast<std::int64_t>(s) * s;
  const std::int64_t cplane = static_cast<std::int64_t>(crop) * crop * 2;
  const float inv_n2 = 1.0f / static_cast<float>(plane);
  std::vector<int> rows(static_cast<std::size_t>(crop));
  for (int a = 0; a < crop; ++a)
    rows[static_cast<std::size_t>(a)] = wrapped_index(a, crop, s);
  std::vector<int> cols = rows;  // square crop on a square grid
  std::vector<int> band_rows = rows;
  std::sort(band_rows.begin(), band_rows.end());

  const FftPlan<float>& plan = fft_plan_f(s);
  // Full-plane DFT scratch, one plane per sample.  Arena-allocated so a
  // steady-state OPC step recycles it along with the graph's own tensors.
  Tensor scratch = arena_tensor({batch, s, s, 2}, /*zeroed=*/false);
  Tensor out = arena_tensor({batch, crop, crop, 2}, /*zeroed=*/false);
  const int col0 = cols[0];
  const int cseg = std::min(crop, s - col0);
  // Strip positions are written bit-reversed so the strip transforms skip
  // their permutation pass (pure data movement; see fft.hpp).
  const int* brev = plan.bitrev_table();

  parallel_for(batch, [&](std::int64_t b) {
    float* buf = scratch.data() + b * plane * 2;
    const float* src = masks->value.data() + b * plane;
    for (std::int64_t p = 0; p < plane; ++p) {
      buf[2 * p] = src[p];
      buf[2 * p + 1] = 0.0f;
    }
    Fft2WorkspaceF& ws = train_ws();
    auto* z = reinterpret_cast<cfl*>(buf);
    cfl* fscratch = ws.scratch_for(plan);
    plan.forward_many(z, s, fscratch);
    // Only the crop's wrapped columns are ever read, and each column
    // transforms independently — transforming just those is bit-identical
    // on the read positions.  All crop columns are gathered into one strip
    // and transformed by one forward_many; the crop rows are read straight
    // out of the strip (same values the old scatter-back round-tripped
    // through the plane).
    // Row-major gather: one sequential pass over the plane (the crop
    // columns are two contiguous spans per row, cols ascending by 1 mod s);
    // the strided writes land in the L1-resident strip.
    cfl* strip = ws.col_buffer(crop * s);
    for (int rr = 0; rr < s; ++rr) {
      const cfl* zrow = z + static_cast<std::ptrdiff_t>(rr) * s;
      const int pr = brev != nullptr ? brev[rr] : rr;
      for (int c = 0; c < cseg; ++c) strip[c * s + pr] = zrow[col0 + c];
      for (int c = cseg; c < crop; ++c) strip[c * s + pr] = zrow[c - cseg];
    }
    if (brev != nullptr) {
      plan.forward_many_prerev(strip, crop, fscratch);
    } else {
      plan.forward_many(strip, crop, fscratch);
    }
    float* dst = out.data() + b * cplane;
    // a-major so the dst writes are contiguous (each element written once).
    for (int a = 0; a < crop; ++a) {
      const int ra = rows[static_cast<std::size_t>(a)];
      for (int c = 0; c < crop; ++c) {
        const cfl v = strip[static_cast<std::ptrdiff_t>(c) * s + ra];
        const std::int64_t di = (static_cast<std::int64_t>(a) * crop + c) * 2;
        dst[di] = v.real() * inv_n2;
        dst[di + 1] = v.imag() * inv_n2;
      }
    }
  });

  return make_node(
      std::move(out), {masks},
      [rows = std::move(rows), cols = std::move(cols),
       band_rows = std::move(band_rows), batch, s, crop, plane, cplane,
       inv_n2](Node& node) {
        Node& im = *node.inputs[0];
        if (!im.requires_grad) return;
        im.ensure_grad();
        const FftPlan<float>& plan = fft_plan_f(s);
        // vjp per sample: scatter the crop back, unnormalized inverse DFT
        // (rows pruned to the crop's — zero rows transform to zeros, which
        // enter the column pass additively), real part.  The scatter writes
        // each band row densely (crop entries + explicit +0 gaps) so the
        // plane needs no pre-zeroing (see ifft2_plane_pruned's contract).
        Tensor scatter = arena_tensor({batch, s, s, 2}, /*zeroed=*/false);
        const int col0 = cols[0];
        const int cseg1 = std::min(crop, s - col0);
        // Radix-2 sizes: bit-reversed row scatter so the pruned inverse's
        // row pass skips its permutation pass (see fft.hpp bitrev_table()).
        const int* brev = plan.bitrev_table();
        parallel_for(batch, [&](std::int64_t b) {
          float* buf = scatter.data() + b * plane * 2;
          const float* g = node.grad.data() + b * cplane;
          for (int a = 0; a < crop; ++a) {
            const int rr = rows[static_cast<std::size_t>(a)];
            cfl* brow =
                reinterpret_cast<cfl*>(buf) + static_cast<std::int64_t>(rr) * s;
            if (brev != nullptr) {
              // A permuted zero fill is still zeros -> one whole-row fill.
              std::fill(brow, brow + s, cfl(0.0f, 0.0f));
            } else {
              std::fill(brow + (crop - cseg1), brow + col0, cfl(0.0f, 0.0f));
              std::fill(brow + col0 + cseg1, brow + s, cfl(0.0f, 0.0f));
            }
            for (int c = 0; c < crop; ++c) {
              const int cc = cols[static_cast<std::size_t>(c)];
              const std::int64_t si =
                  (static_cast<std::int64_t>(a) * crop + c) * 2;
              brow[brev != nullptr ? brev[cc] : cc] =
                  cfl(g[si] * inv_n2, g[si + 1] * inv_n2);
            }
          }
          // Pruned inverse with the real-part accumulate fused into its
          // column write-back — the imaginary lanes and the full scattered
          // plane are never stored.
          ifft2_pruned_real_accum(buf, s, band_rows, plan, train_ws(),
                                  im.grad.data() + b * plane,
                                  brev != nullptr);
        });
      },
      "fft2c_crop_batch");
}

Var socs_field_from_spectrum_batch(const Var& spectra, const Tensor& kernels,
                                   int out_px) {
  check(spectra->value.ndim() == 4 && spectra->value.dim(3) == 2,
        "socs_field_from_spectrum_batch: spectra must be [B,n,m,2]");
  check(kernels.ndim() == 4 && kernels.dim(3) == 2,
        "socs_field_from_spectrum_batch: kernels must be [r,n,m,2]");
  const int r = kernels.dim(0);
  const int n = kernels.dim(1);
  const int m = kernels.dim(2);
  const int batch = spectra->value.dim(0);
  check(batch >= 1, "socs_field_from_spectrum_batch: empty batch");
  check(spectra->value.dim(1) == n && spectra->value.dim(2) == m,
        "socs_field_from_spectrum_batch: shape mismatch");
  check(out_px >= n && out_px >= m,
        "socs_field_from_spectrum_batch: output grid too small");

  const int s = out_px;
  const std::int64_t plane = static_cast<std::int64_t>(s) * s * 2;
  const std::int64_t kplane = static_cast<std::int64_t>(n) * m * 2;

  std::vector<int> rows(static_cast<std::size_t>(n));
  for (int a = 0; a < n; ++a)
    rows[static_cast<std::size_t>(a)] = wrapped_index(a, n, s);
  std::vector<int> cols(static_cast<std::size_t>(m));
  for (int b = 0; b < m; ++b)
    cols[static_cast<std::size_t>(b)] = wrapped_index(b, m, s);
  std::vector<int> band_rows = rows;
  std::sort(band_rows.begin(), band_rows.end());

  const FftPlan<float>& plan = fft_plan_f(s);
  // Radix-2 sizes: bit-reversed row scatter, as in socs_field_batch.
  const int* brev = plan.bitrev_table();
  // Not pre-zeroed — see socs_field_batch: dense band rows + a pruned
  // inverse that writes every row make the plane memset pure waste.
  Tensor out = arena_tensor({batch, r, s, s, 2}, /*zeroed=*/false);
  Tensor ks = kernels;

  parallel_for(static_cast<std::int64_t>(batch) * r, [&](std::int64_t t) {
    const std::int64_t b = t / r;
    const std::int64_t i = t % r;
    float* dst = out.data() + t * plane;
    const float* k = ks.data() + i * kplane;
    const float* sp = spectra->value.data() + b * kplane;
    // Same scatter as socs_field_batch: two contiguous segments per row
    // (plain path) or products placed at bit-reversed positions (prerev
    // path), with the fills making each band row dense either way.
    const int col0 = cols[0];
    const int seg1 = std::min(m, s - col0);
    Fft2WorkspaceF& ws = train_ws();
    cfl* tmp = brev != nullptr ? ws.col_buffer(m) : nullptr;
    for (int a = 0; a < n; ++a) {
      const int rr = rows[static_cast<std::size_t>(a)];
      const cfl* krow =
          reinterpret_cast<const cfl*>(k) + static_cast<std::int64_t>(a) * m;
      const cfl* srow =
          reinterpret_cast<const cfl*>(sp) + static_cast<std::int64_t>(a) * m;
      cfl* drow =
          reinterpret_cast<cfl*>(dst) + static_cast<std::int64_t>(rr) * s;
      if (brev != nullptr) {
        std::fill(drow, drow + s, cfl(0.0f, 0.0f));
        simd::cmul(tmp, krow, srow, m);
        for (int c = 0; c < seg1; ++c) drow[brev[col0 + c]] = tmp[c];
        for (int c = seg1; c < m; ++c) drow[brev[c - seg1]] = tmp[c];
      } else {
        std::fill(drow + (m - seg1), drow + col0, cfl(0.0f, 0.0f));
        std::fill(drow + col0 + seg1, drow + s, cfl(0.0f, 0.0f));
        simd::cmul(drow + col0, krow, srow, seg1);
        simd::cmul(drow, krow + seg1, srow + seg1, m - seg1);
      }
    }
    ifft2_plane_pruned(dst, s, band_rows, plan, ws, brev != nullptr);
  });

  return make_node(
      std::move(out), {spectra},
      [ks = std::move(ks), rows = std::move(rows), cols = std::move(cols),
       batch, r, n, m, s, plane, kplane](Node& node) {
        Node& is = *node.inputs[0];
        if (!is.requires_grad) return;
        is.ensure_grad();
        const FftPlan<float>& plan = fft_plan_f(s);
        // vjp of the unnormalized inverse DFT is the unnormalized forward
        // DFT; only the crop's columns are ever read back, so the column
        // pass transforms just those.  node.grad is transformed in place
        // (documented: the output gradient is consumed).  Spectrum planes
        // are disjoint across b; within one sample the kernels accumulate
        // in ascending order — the same order as the per-mask op's serial
        // kernel loop.
        const int col0 = cols[0];
        const int cseg = std::min(m, s - col0);
        // Strip positions are written bit-reversed so the strip transforms
        // skip their permutation pass (pure data movement; see fft.hpp).
        const int* brev = plan.bitrev_table();
        parallel_for(batch, [&](std::int64_t b) {
          Fft2WorkspaceF& ws = train_ws();
          cfl* scratch = ws.scratch_for(plan);
          cfl* strip = ws.col_buffer(m * s);
          float* sg = is.grad.data() + b * kplane;
          for (std::int64_t i = 0; i < r; ++i) {
            float* g = node.grad.data() + (b * r + i) * plane;
            auto* z = reinterpret_cast<cfl*>(g);
            plan.forward_many(z, s, scratch);
            // Gather every crop column into one strip, then transform the
            // strip as one forward_many — the columns stay independent.
            // Row-major gather: one sequential pass over the plane (the crop
            // columns are two contiguous spans per row, cols ascending by 1
            // mod s); the strided writes land in the L1-resident strip.
            for (int rr = 0; rr < s; ++rr) {
              const cfl* zrow = z + static_cast<std::ptrdiff_t>(rr) * s;
              const int pr = brev != nullptr ? brev[rr] : rr;
              for (int c = 0; c < cseg; ++c)
                strip[c * s + pr] = zrow[col0 + c];
              for (int c = cseg; c < m; ++c)
                strip[c * s + pr] = zrow[c - cseg];
            }
            if (brev != nullptr) {
              plan.forward_many_prerev(strip, m, scratch);
            } else {
              plan.forward_many(strip, m, scratch);
            }
            const float* k = ks.data() + i * kplane;
            // a-major so the sg writes are contiguous; each (a, c) entry is
            // distinct, so iterating a-major instead of c-major reorders no
            // element's fold — the serial i loop is what accumulates.
            for (int a = 0; a < n; ++a) {
              const int ra = rows[static_cast<std::size_t>(a)];
              for (int c = 0; c < m; ++c) {
                const cfl gz = strip[static_cast<std::ptrdiff_t>(c) * s + ra];
                const std::int64_t ki =
                    (static_cast<std::int64_t>(a) * m + c) * 2;
                const float kr = k[ki], kim = k[ki + 1];
                // dC += conj(K) . dE
                sg[ki] += gz.real() * kr + gz.imag() * kim;
                sg[ki + 1] += gz.imag() * kr - gz.real() * kim;
              }
            }
          }
        });
      },
      "socs_field_from_spectrum_batch");
}

Var spectral_conv2d(const Var& x, const Var& w) {
  check(x->value.ndim() == 3, "spectral_conv2d: x must be [Cin,H,W]");
  check(w->value.ndim() == 5 && w->value.dim(4) == 2,
        "spectral_conv2d: w must be [Cout,Cin,mh,mw,2]");
  const int cin = x->value.dim(0), h = x->value.dim(1), wd = x->value.dim(2);
  const int cout = w->value.dim(0), mh = w->value.dim(2), mw = w->value.dim(3);
  check(w->value.dim(1) == cin, "spectral_conv2d: channel mismatch");
  check(mh <= h && mw <= wd, "spectral_conv2d: more modes than pixels");

  const std::int64_t plane = static_cast<std::int64_t>(h) * wd;
  const std::int64_t modes = static_cast<std::int64_t>(mh) * mw;

  // X spectra crops: [Cin, mh, mw] complex.
  std::vector<float> xc(static_cast<std::size_t>(cin) * modes * 2, 0.0f);
  {
    std::vector<float> buf(static_cast<std::size_t>(plane) * 2);
    for (int ci = 0; ci < cin; ++ci) {
      const float* src = x->value.data() + ci * plane;
      for (std::int64_t p = 0; p < plane; ++p) {
        buf[static_cast<std::size_t>(2 * p)] = src[p];
        buf[static_cast<std::size_t>(2 * p + 1)] = 0.0f;
      }
      fft2_plane(buf.data(), h, wd, /*inverse=*/false);
      for (int a = 0; a < mh; ++a) {
        const int rr = (a - mh / 2 + h) % h;
        for (int b = 0; b < mw; ++b) {
          const int cc = (b - mw / 2 + wd) % wd;
          const std::int64_t dst = ((static_cast<std::int64_t>(ci) * mh + a) * mw + b) * 2;
          xc[static_cast<std::size_t>(dst)] =
              buf[static_cast<std::size_t>((rr * wd + cc) * 2)];
          xc[static_cast<std::size_t>(dst + 1)] =
              buf[static_cast<std::size_t>((rr * wd + cc) * 2 + 1)];
        }
      }
    }
  }

  Tensor out({cout, h, wd});
  const float inv_n = 1.0f / static_cast<float>(plane);
  std::vector<float> acc(static_cast<std::size_t>(plane) * 2);
  for (int co = 0; co < cout; ++co) {
    std::fill(acc.begin(), acc.end(), 0.0f);
    for (int ci = 0; ci < cin; ++ci) {
      const float* wm = w->value.data() +
                        ((static_cast<std::int64_t>(co) * cin + ci) * modes) * 2;
      const float* xm = xc.data() + static_cast<std::int64_t>(ci) * modes * 2;
      for (int a = 0; a < mh; ++a) {
        const int rr = (a - mh / 2 + h) % h;
        for (int b = 0; b < mw; ++b) {
          const int cc = (b - mw / 2 + wd) % wd;
          const std::int64_t mi = (static_cast<std::int64_t>(a) * mw + b) * 2;
          const float wr = wm[mi], wi = wm[mi + 1];
          const float xr = xm[mi], xi = xm[mi + 1];
          acc[static_cast<std::size_t>((rr * wd + cc) * 2)] += wr * xr - wi * xi;
          acc[static_cast<std::size_t>((rr * wd + cc) * 2 + 1)] +=
              wr * xi + wi * xr;
        }
      }
    }
    fft2_plane(acc.data(), h, wd, /*inverse=*/true);
    float* dst = out.data() + co * plane;
    // fft2_plane(inverse) is the *unnormalized* inverse; one 1/N factor
    // turns it into the normalized inverse this op is defined with.
    for (std::int64_t p = 0; p < plane; ++p)
      dst[p] = acc[static_cast<std::size_t>(2 * p)] * inv_n;
  }

  std::vector<float> xc_saved = xc;
  return make_node(
      std::move(out), {x, w},
      [xc = std::move(xc_saved), cin, cout, h, wd, mh, mw, plane,
       modes](Node& node) {
        Node& ix = *node.inputs[0];
        Node& iw = *node.inputs[1];
        const float inv_n2 = 1.0f / static_cast<float>(plane);
        // G_Y[co] crops of the forward transform of the output grad.
        std::vector<float> gy(static_cast<std::size_t>(cout) * modes * 2, 0.0f);
        {
          std::vector<float> buf(static_cast<std::size_t>(plane) * 2);
          for (int co = 0; co < cout; ++co) {
            const float* g = node.grad.data() + co * plane;
            for (std::int64_t p = 0; p < plane; ++p) {
              buf[static_cast<std::size_t>(2 * p)] = g[p] * inv_n2;
              buf[static_cast<std::size_t>(2 * p + 1)] = 0.0f;
            }
            fft2_plane(buf.data(), h, wd, /*inverse=*/false);
            for (int a = 0; a < mh; ++a) {
              const int rr = (a - mh / 2 + h) % h;
              for (int b = 0; b < mw; ++b) {
                const int cc = (b - mw / 2 + wd) % wd;
                const std::int64_t dst =
                    ((static_cast<std::int64_t>(co) * mh + a) * mw + b) * 2;
                gy[static_cast<std::size_t>(dst)] =
                    buf[static_cast<std::size_t>((rr * wd + cc) * 2)];
                gy[static_cast<std::size_t>(dst + 1)] =
                    buf[static_cast<std::size_t>((rr * wd + cc) * 2 + 1)];
              }
            }
          }
        }
        if (iw.requires_grad) {
          iw.ensure_grad();
          for (int co = 0; co < cout; ++co) {
            for (int ci = 0; ci < cin; ++ci) {
              float* wg = iw.grad.data() +
                          ((static_cast<std::int64_t>(co) * cin + ci) * modes) * 2;
              const float* xm = xc.data() + static_cast<std::int64_t>(ci) * modes * 2;
              const float* gm = gy.data() + static_cast<std::int64_t>(co) * modes * 2;
              for (std::int64_t mi = 0; mi < modes; ++mi) {
                const float xr = xm[2 * mi], xi = xm[2 * mi + 1];
                const float gr = gm[2 * mi], gi = gm[2 * mi + 1];
                // dW = conj(X) . G
                wg[2 * mi] += xr * gr + xi * gi;
                wg[2 * mi + 1] += xr * gi - xi * gr;
              }
            }
          }
        }
        if (ix.requires_grad) {
          ix.ensure_grad();
          std::vector<float> gx(static_cast<std::size_t>(modes) * 2);
          std::vector<float> buf(static_cast<std::size_t>(plane) * 2);
          for (int ci = 0; ci < cin; ++ci) {
            std::fill(gx.begin(), gx.end(), 0.0f);
            for (int co = 0; co < cout; ++co) {
              const float* wm =
                  iw.value.data() +
                  ((static_cast<std::int64_t>(co) * cin + ci) * modes) * 2;
              const float* gm = gy.data() + static_cast<std::int64_t>(co) * modes * 2;
              for (std::int64_t mi = 0; mi < modes; ++mi) {
                const float wr = wm[2 * mi], wi = wm[2 * mi + 1];
                const float gr = gm[2 * mi], gi = gm[2 * mi + 1];
                // dX += conj(W) . G
                gx[static_cast<std::size_t>(2 * mi)] += wr * gr + wi * gi;
                gx[static_cast<std::size_t>(2 * mi + 1)] += wr * gi - wi * gr;
              }
            }
            std::fill(buf.begin(), buf.end(), 0.0f);
            for (int a = 0; a < mh; ++a) {
              const int rr = (a - mh / 2 + h) % h;
              for (int b = 0; b < mw; ++b) {
                const int cc = (b - mw / 2 + wd) % wd;
                const std::int64_t mi = (static_cast<std::int64_t>(a) * mw + b) * 2;
                buf[static_cast<std::size_t>((rr * wd + cc) * 2)] =
                    gx[static_cast<std::size_t>(mi)];
                buf[static_cast<std::size_t>((rr * wd + cc) * 2 + 1)] =
                    gx[static_cast<std::size_t>(mi + 1)];
              }
            }
            // vjp of the unnormalized forward DFT = unnormalized inverse.
            fft2_plane(buf.data(), h, wd, /*inverse=*/true);
            float* xg = ix.grad.data() + ci * plane;
            for (std::int64_t p = 0; p < plane; ++p)
              xg[p] += buf[static_cast<std::size_t>(2 * p)];
          }
        }
      },
      "spectral_conv2d");
}

}  // namespace nitho::nn
