#include "math/stats.hpp"

#include <algorithm>
#include <cmath>

namespace nitho {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.min = xs[0];
  s.max = xs[0];
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(xs.size()));
  return s;
}

double mean_of(std::span<const double> xs) { return summarize(xs).mean; }

double median_of(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + mid, xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  std::nth_element(xs.begin(), xs.begin() + mid - 1, xs.begin() + mid);
  return 0.5 * (hi + xs[mid - 1]);
}

}  // namespace nitho
