#include "math/hermitian_eig.hpp"

#include <cmath>
#include <cstdlib>

#include "common/check.hpp"

namespace nitho {
namespace {

// Complex Householder reflector in LAPACK zlarfg convention.
// Given x (length m, x[0] = alpha), produce (v, tau, beta) with v[0] = 1 and
// (I - conj(tau) v v^H) x = beta e1, beta real.
struct Reflector {
  std::vector<cd> v;  // length m, v[0] == 1
  cd tau{0.0, 0.0};
  double beta = 0.0;
};

Reflector make_reflector(const std::vector<cd>& x) {
  const int m = static_cast<int>(x.size());
  Reflector r;
  r.v.assign(x.begin(), x.end());
  const cd alpha = x[0];
  double tail2 = 0.0;
  for (int i = 1; i < m; ++i) tail2 += norm2(x[i]);

  if (tail2 == 0.0 && alpha.imag() == 0.0) {
    r.v[0] = cd(1.0, 0.0);
    r.tau = cd(0.0, 0.0);
    r.beta = alpha.real();
    return r;
  }
  const double xnorm = std::sqrt(norm2(alpha) + tail2);
  const double beta = (alpha.real() >= 0.0) ? -xnorm : xnorm;
  r.beta = beta;
  r.tau = cd((beta - alpha.real()) / beta, -alpha.imag() / beta);
  const cd scale = 1.0 / (alpha - beta);
  r.v[0] = cd(1.0, 0.0);
  for (int i = 1; i < m; ++i) r.v[i] = x[i] * scale;
  return r;
}

// Implicit-shift QL on a real symmetric tridiagonal (d diag, e subdiag with
// e[i] coupling i and i+1), accumulating the real plane rotations into the
// complex column basis z.  Classic EISPACK tql2.
void tridiag_ql(std::vector<double>& d, std::vector<double>& e, Grid<cd>& z) {
  const int n = static_cast<int>(d.size());
  if (n <= 1) return;
  e.resize(n, 0.0);  // e[n-1] used as scratch

  // Deflation needs an absolute floor in addition to the classic relative
  // test: rank-deficient inputs (the TCC) produce clusters where both
  // neighbouring diagonals are ~0 and a purely relative test never fires.
  double anorm = 0.0;
  for (int i = 0; i < n; ++i) {
    double row = std::abs(d[i]);
    if (i > 0) row += std::abs(e[i - 1]);
    if (i < n - 1) row += std::abs(e[i]);
    anorm = std::max(anorm, row);
  }
  const double floor_tol = 1e-15 * anorm;

  for (int l = 0; l < n; ++l) {
    int iter = 0;
    int m = l;
    do {
      for (m = l; m < n - 1; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= 1e-15 * dd + floor_tol) break;
      }
      if (m != l) {
        check(iter++ < 64, "tridiagonal QL failed to converge");
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0, c = 1.0, p = 0.0;
        int i = m - 1;
        bool underflow = false;
        for (; i >= l; --i) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (int k = 0; k < n; ++k) {
            const cd fk = z(k, i + 1);
            z(k, i + 1) = s * z(k, i) + c * fk;
            z(k, i) = c * z(k, i) - s * fk;
          }
        }
        if (underflow && i >= l) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
}

void sort_ascending(EighResult& r) {
  const int n = static_cast<int>(r.eigenvalues.size());
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return r.eigenvalues[a] < r.eigenvalues[b];
  });
  std::vector<double> w(n);
  Grid<cd> v(n, n);
  for (int j = 0; j < n; ++j) {
    w[j] = r.eigenvalues[order[j]];
    for (int i = 0; i < n; ++i) v(i, j) = r.eigenvectors(i, order[j]);
  }
  r.eigenvalues = std::move(w);
  r.eigenvectors = std::move(v);
}

}  // namespace

EighResult eigh(const Grid<cd>& a_in) {
  const int n = a_in.rows();
  check(a_in.cols() == n, "eigh requires a square matrix");
  EighResult res;
  res.eigenvalues.assign(n, 0.0);
  res.eigenvectors = Grid<cd>(n, n);
  if (n == 0) return res;

  // Work on the Hermitian average so slightly asymmetric inputs (numerical
  // noise from TCC accumulation) are handled gracefully.
  Grid<cd> a(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      a(i, j) = 0.5 * (a_in(i, j) + std::conj(a_in(j, i)));

  Grid<cd>& q = res.eigenvectors;
  for (int i = 0; i < n; ++i) q(i, i) = cd(1.0, 0.0);

  std::vector<double> d(n), e(n > 1 ? n - 1 : 0, 0.0);

  // Householder tridiagonalization: for each column k zero A[k+2.., k] and
  // make the subdiagonal real; accumulate Q = H_0 H_1 ... .
  std::vector<cd> x, p, w;
  for (int k = 0; k + 1 < n; ++k) {
    const int m = n - 1 - k;  // reflector length
    x.assign(m, cd{});
    for (int i = 0; i < m; ++i) x[i] = a(k + 1 + i, k);
    Reflector h = make_reflector(x);
    e[k] = h.beta;

    if (h.tau != cd(0.0, 0.0)) {
      // Trailing block update B <- (I - conj(tau) v v^H) B (I - tau v v^H)
      //                        =  B - v w^H - w v^H,
      // with p = tau * B v and w = p - (tau |v^H p| / 2 ... ) see below.
      p.assign(m, cd{});
      for (int i = 0; i < m; ++i) {
        cd acc{};
        const cd* row = a.row(k + 1 + i) + (k + 1);
        for (int j = 0; j < m; ++j) acc += row[j] * h.v[j];
        p[i] = h.tau * acc;
      }
      cd vhp{};
      for (int i = 0; i < m; ++i) vhp += std::conj(h.v[i]) * p[i];
      const cd half = 0.5 * std::conj(h.tau) * vhp;
      // w = conj(tau) B v - (conj(tau) tau (v^H B v)/2) v;  expressed via p:
      // conj(tau) B v = conj(tau)/tau * p, but forming it through p keeps one
      // matvec.  Use w_i = conj(p_i scaled)...  Derivation (DESIGN.md §5):
      //   B' = B - conj(tau) v p0^H - tau p0 v^H + |tau|^2 s v v^H,
      // where p0 = B v, s = v^H p0 (real).  With p = tau p0 this groups as
      //   B' = B - v w^H - w v^H,  w = p - (conj(tau) (v^H p) / 2) v.
      w.assign(m, cd{});
      for (int i = 0; i < m; ++i) w[i] = p[i] - half * h.v[i];
      for (int i = 0; i < m; ++i) {
        cd* row = a.row(k + 1 + i) + (k + 1);
        const cd wi = w[i];
        const cd vi = h.v[i];
        for (int j = 0; j < m; ++j) {
          row[j] -= vi * std::conj(w[j]) + wi * std::conj(h.v[j]);
        }
      }
      // Accumulate Q <- Q (I - tau v v^H) over columns k+1..n-1.
      for (int i = 0; i < n; ++i) {
        cd* row = q.row(i) + (k + 1);
        cd coef{};
        for (int j = 0; j < m; ++j) coef += row[j] * h.v[j];
        coef *= h.tau;
        for (int j = 0; j < m; ++j) row[j] -= coef * std::conj(h.v[j]);
      }
    }
    a(k + 1, k) = cd(h.beta, 0.0);
  }
  for (int i = 0; i < n; ++i) d[i] = a(i, i).real();

  tridiag_ql(d, e, q);
  res.eigenvalues = std::move(d);
  sort_ascending(res);
  return res;
}

EighResult eigh_jacobi(const Grid<cd>& a_in, int max_sweeps) {
  const int n = a_in.rows();
  check(a_in.cols() == n, "eigh_jacobi requires a square matrix");
  Grid<cd> a(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      a(i, j) = 0.5 * (a_in(i, j) + std::conj(a_in(j, i)));

  EighResult res;
  res.eigenvalues.assign(n, 0.0);
  res.eigenvectors = Grid<cd>(n, n);
  Grid<cd>& v = res.eigenvectors;
  for (int i = 0; i < n; ++i) v(i, i) = cd(1.0, 0.0);
  if (n <= 1) {
    if (n == 1) res.eigenvalues[0] = a(0, 0).real();
    return res;
  }

  double off0 = 0.0;
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) off0 += norm2(a(i, j));
  const double tol = std::max(1e-26, off0 * 1e-24);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int i = 0; i < n; ++i)
      for (int j = i + 1; j < n; ++j) off += norm2(a(i, j));
    if (off <= tol) {
      for (int i = 0; i < n; ++i) res.eigenvalues[i] = a(i, i).real();
      sort_ascending(res);
      return res;
    }
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const cd apq = a(p, q);
        const double g = std::abs(apq);
        if (g < 1e-300) continue;
        const cd phase = apq / g;  // e^{i phi}
        const double app = a(p, p).real();
        const double aqq = a(q, q).real();
        const double theta = (aqq - app) / (2.0 * g);
        const double t = std::copysign(1.0, theta) /
                         (std::abs(theta) + std::hypot(theta, 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Unitary block U = diag(1, conj(phase)) * [[c, s], [-s, c]]:
        //   U = [[c, s], [-s conj(phase), c conj(phase)]].
        const cd u10 = -s * std::conj(phase);
        const cd u11 = c * std::conj(phase);
        // Columns: A <- A U.
        for (int i = 0; i < n; ++i) {
          const cd aip = a(i, p), aiq = a(i, q);
          a(i, p) = c * aip + u10 * aiq;
          a(i, q) = s * aip + u11 * aiq;
        }
        // Rows: A <- U^H A.
        for (int j = 0; j < n; ++j) {
          const cd apj = a(p, j), aqj = a(q, j);
          a(p, j) = c * apj + std::conj(u10) * aqj;
          a(q, j) = s * apj + std::conj(u11) * aqj;
        }
        a(p, q) = cd(0.0, 0.0);
        a(q, p) = cd(0.0, 0.0);
        a(p, p) = cd(a(p, p).real(), 0.0);
        a(q, q) = cd(a(q, q).real(), 0.0);
        // Accumulate V <- V U.
        for (int i = 0; i < n; ++i) {
          const cd vip = v(i, p), viq = v(i, q);
          v(i, p) = c * vip + u10 * viq;
          v(i, q) = s * vip + u11 * viq;
        }
      }
    }
  }
  check_fail("Jacobi eigensolver did not converge",
             std::source_location::current());
}

double eigh_residual(const Grid<cd>& a, const EighResult& r) {
  const int n = a.rows();
  double worst = 0.0;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      cd av{};
      for (int k = 0; k < n; ++k) av += a(i, k) * r.eigenvectors(k, j);
      const cd diff = av - r.eigenvalues[j] * r.eigenvectors(i, j);
      worst = std::max(worst, std::abs(diff));
    }
  }
  return worst;
}

}  // namespace nitho
