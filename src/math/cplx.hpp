#pragma once
// Complex scalar aliases and small helpers shared by optics / fft / nn.

#include <complex>

namespace nitho {

using cd = std::complex<double>;
using cf = std::complex<float>;

/// |z|^2 without the sqrt of std::abs.
template <typename R>
constexpr R norm2(std::complex<R> z) {
  return z.real() * z.real() + z.imag() * z.imag();
}

inline constexpr double kPi = 3.141592653589793238462643383279502884;

}  // namespace nitho
