#pragma once
// Scalar summary statistics used by metrics, datasets and benches.

#include <span>
#include <vector>

namespace nitho {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

/// Mean / population stddev / extrema of a sample (empty -> zeros).
Summary summarize(std::span<const double> xs);

double mean_of(std::span<const double> xs);

/// Median (copies and sorts; intended for small result vectors).
double median_of(std::vector<double> xs);

}  // namespace nitho
