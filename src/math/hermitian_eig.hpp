#pragma once
// Dense Hermitian eigendecomposition.
//
// The TCC matrix (DESIGN.md §2) is Hermitian positive semi-definite; SOCS
// needs its full spectrum.  Primary algorithm: complex Householder reduction
// to real symmetric tridiagonal form followed by implicit-shift QL with
// eigenvector accumulation (the classic EISPACK htridi/tql2 pair).  A cyclic
// Jacobi solver is provided as an independent cross-check for tests.

#include <vector>

#include "math/cplx.hpp"
#include "math/grid.hpp"

namespace nitho {

/// Eigendecomposition A = V diag(w) V^H of a Hermitian matrix.
struct EighResult {
  std::vector<double> eigenvalues;  ///< ascending order
  Grid<cd> eigenvectors;            ///< column j pairs with eigenvalues[j]
};

/// Householder + implicit QL.  A must be square Hermitian (only its lower
/// triangle is trusted).  O(n^3), suitable for n up to a few thousand.
EighResult eigh(const Grid<cd>& a);

/// Cyclic complex Jacobi rotations; slower but independently derived.
/// max_sweeps bounds the outer iteration; throws if not converged.
EighResult eigh_jacobi(const Grid<cd>& a, int max_sweeps = 50);

/// ||A v - w v||_inf over all eigenpairs: a residual diagnostic used in tests.
double eigh_residual(const Grid<cd>& a, const EighResult& r);

}  // namespace nitho
