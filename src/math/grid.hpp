#pragma once
// Dense row-major 2-D array.  The workhorse container for mask images, aerial
// images, spectra (Grid<cd>) and small dense matrices (the TCC).

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

#include "common/check.hpp"

namespace nitho {

/// Row-major rows x cols array of T with value semantics.
/// Indexing is (row, col) == (y, x); row 0 is the top of an image.
template <typename T>
class Grid {
 public:
  Grid() = default;
  Grid(int rows, int cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows) * cols, fill) {
    check(rows >= 0 && cols >= 0, "Grid dimensions must be non-negative");
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& operator()(int r, int c) { return data_[index(r, c)]; }
  const T& operator()(int r, int c) const { return data_[index(r, c)]; }

  /// Linear element access (row-major).
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  T* row(int r) { return data_.data() + static_cast<std::size_t>(r) * cols_; }
  const T* row(int r) const {
    return data_.data() + static_cast<std::size_t>(r) * cols_;
  }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  bool same_shape(const Grid& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

  friend bool operator==(const Grid& a, const Grid& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t index(int r, int c) const {
    check(r >= 0 && r < rows_ && c >= 0 && c < cols_, "Grid index out of range");
    return static_cast<std::size_t>(r) * cols_ + c;
  }

  int rows_ = 0;
  int cols_ = 0;
  std::vector<T> data_;
};

/// Elementwise sum of all entries.
template <typename T>
T grid_sum(const Grid<T>& g) {
  return std::accumulate(g.begin(), g.end(), T{});
}

/// Largest entry (requires operator<).
template <typename T>
T grid_max(const Grid<T>& g) {
  check(!g.empty(), "grid_max of empty grid");
  return *std::max_element(g.begin(), g.end());
}

template <typename T>
T grid_min(const Grid<T>& g) {
  check(!g.empty(), "grid_min of empty grid");
  return *std::min_element(g.begin(), g.end());
}

/// Convert between element types (e.g. mask Grid<float> -> Grid<double>).
template <typename U, typename T>
Grid<U> grid_cast(const Grid<T>& g) {
  Grid<U> out(g.rows(), g.cols());
  for (std::size_t i = 0; i < g.size(); ++i) out[i] = static_cast<U>(g[i]);
  return out;
}

}  // namespace nitho
