#include "fft/spectral.hpp"

#include "common/check.hpp"
#include "fft/fft.hpp"

namespace nitho {
namespace {

template <typename T>
Grid<T> roll(const Grid<T>& g, int dr, int dc) {
  Grid<T> out(g.rows(), g.cols());
  for (int r = 0; r < g.rows(); ++r) {
    const int rr = (r + dr) % g.rows();
    for (int c = 0; c < g.cols(); ++c) {
      const int cc = (c + dc) % g.cols();
      out(rr, cc) = g(r, c);
    }
  }
  return out;
}

}  // namespace

template <typename T>
Grid<T> fftshift(const Grid<T>& g) {
  return roll(g, g.rows() / 2, g.cols() / 2);
}

template <typename T>
Grid<T> ifftshift(const Grid<T>& g) {
  return roll(g, (g.rows() + 1) / 2, (g.cols() + 1) / 2);
}

template <typename T>
Grid<T> center_crop(const Grid<T>& g, int rows, int cols) {
  check(rows <= g.rows() && cols <= g.cols(), "center_crop target too large");
  const int r0 = g.rows() / 2 - rows / 2;
  const int c0 = g.cols() / 2 - cols / 2;
  Grid<T> out(rows, cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) out(r, c) = g(r0 + r, c0 + c);
  return out;
}

template <typename T>
Grid<T> center_embed(const Grid<T>& g, int rows, int cols) {
  check(rows >= g.rows() && cols >= g.cols(), "center_embed target too small");
  const int r0 = rows / 2 - g.rows() / 2;
  const int c0 = cols / 2 - g.cols() / 2;
  Grid<T> out(rows, cols);
  for (int r = 0; r < g.rows(); ++r)
    for (int c = 0; c < g.cols(); ++c) out(r0 + r, c0 + c) = g(r, c);
  return out;
}

template Grid<double> fftshift(const Grid<double>&);
template Grid<cd> fftshift(const Grid<cd>&);
template Grid<float> fftshift(const Grid<float>&);
template Grid<double> ifftshift(const Grid<double>&);
template Grid<cd> ifftshift(const Grid<cd>&);
template Grid<float> ifftshift(const Grid<float>&);
template Grid<double> center_crop(const Grid<double>&, int, int);
template Grid<cd> center_crop(const Grid<cd>&, int, int);
template Grid<double> center_embed(const Grid<double>&, int, int);
template Grid<cd> center_embed(const Grid<cd>&, int, int);

Grid<double> spectral_resample(const Grid<double>& img, int rows, int cols) {
  check(rows >= 1 && cols >= 1, "resample target must be positive");
  if (rows == img.rows() && cols == img.cols()) return img;
  Grid<cd> spec = fftshift(fft2(img));
  Grid<cd> sized;
  if (rows <= img.rows() && cols <= img.cols()) {
    sized = center_crop(spec, rows, cols);
  } else {
    check(rows >= img.rows() && cols >= img.cols(),
          "mixed up/down resampling is not supported");
    sized = center_embed(spec, rows, cols);
  }
  Grid<cd> back = ifft2(ifftshift(sized));
  const double scale = static_cast<double>(rows) * cols /
                       (static_cast<double>(img.rows()) * img.cols());
  Grid<double> out(rows, cols);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = back[i].real() * scale;
  return out;
}

Grid<cd> fft2_crop_centered(const Grid<double>& img, int crop) {
  const int rows = img.rows(), cols = img.cols();
  check(crop >= 1 && crop <= rows && crop <= cols, "bad spectrum crop");
  check(crop % 2 == 1, "spectrum crop must be odd (centered on DC)");
  const int half = crop / 2;
  const FftPlan<double>& row_plan = fft_plan_d(cols);
  Fft2Workspace ws;
  cd* row_scratch = ws.scratch_for(row_plan);
  // Signed frequency k in [-half, half] lives at unshifted index (k+N)%N and
  // at crop position k + half.
  Grid<cd> partial(rows, crop);
  std::vector<cd> buf(cols);
  // The rows are real, so two of them ride one complex transform: with
  // Z = F(a + i b), conjugate symmetry splits them back as
  // A[k] = (Z[k] + conj(Z[-k]))/2 and B[k] = (Z[k] - conj(Z[-k]))/(2i)
  // (DESIGN.md §5.5).  Only the crop band is ever unpacked, so the split
  // costs O(rows * crop) against the O(rows * cols log cols) it halves.
  int r = 0;
  for (; r + 1 < rows; r += 2) {
    const double* a = img.row(r);
    const double* b = img.row(r + 1);
    for (int c = 0; c < cols; ++c) buf[c] = cd(a[c], b[c]);
    row_plan.forward(buf.data(), row_scratch);
    for (int k = -half; k <= half; ++k) {
      const int idx = (k + cols) % cols;
      const cd z = buf[idx];
      const cd zc = std::conj(buf[(cols - idx) % cols]);
      partial(r, k + half) = 0.5 * (z + zc);
      const cd d = z - zc;
      partial(r + 1, k + half) = cd(0.5 * d.imag(), -0.5 * d.real());
    }
  }
  if (r < rows) {  // odd row count: transform the last row on its own
    const double* a = img.row(r);
    for (int c = 0; c < cols; ++c) buf[c] = cd(a[c], 0.0);
    row_plan.forward(buf.data(), row_scratch);
    for (int k = -half; k <= half; ++k) {
      partial(r, k + half) = buf[(k + cols) % cols];
    }
  }
  const FftPlan<double>& col_plan = fft_plan_d(rows);
  cd* col_scratch = ws.scratch_for(col_plan);
  Grid<cd> out(crop, crop);
  std::vector<cd> col(rows);
  for (int j = 0; j < crop; ++j) {
    for (int r2 = 0; r2 < rows; ++r2) col[r2] = partial(r2, j);
    col_plan.forward(col.data(), col_scratch);
    for (int k = -half; k <= half; ++k) {
      out(k + half, j) = col[(k + rows) % rows];
    }
  }
  return out;
}

Grid<double> downsample_area(const Grid<double>& img, int factor) {
  check(factor >= 1, "downsample factor must be >= 1");
  check(img.rows() % factor == 0 && img.cols() % factor == 0,
        "image size must be divisible by the downsample factor");
  const int rows = img.rows() / factor, cols = img.cols() / factor;
  Grid<double> out(rows, cols);
  const double inv = 1.0 / (static_cast<double>(factor) * factor);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      double acc = 0.0;
      for (int i = 0; i < factor; ++i)
        for (int j = 0; j < factor; ++j)
          acc += img(r * factor + i, c * factor + j);
      out(r, c) = acc * inv;
    }
  }
  return out;
}

Grid<double> upsample_nearest(const Grid<double>& img, int factor) {
  check(factor >= 1, "upsample factor must be >= 1");
  Grid<double> out(img.rows() * factor, img.cols() * factor);
  for (int r = 0; r < out.rows(); ++r)
    for (int c = 0; c < out.cols(); ++c) out(r, c) = img(r / factor, c / factor);
  return out;
}

}  // namespace nitho
