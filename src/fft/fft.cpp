#include "fft/fft.hpp"

#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "common/aligned.hpp"
#include "common/check.hpp"
#include "common/mutex.hpp"
#include "common/simd.hpp"

namespace nitho {
namespace {

bool is_pow2(int n) { return n > 0 && (n & (n - 1)) == 0; }

int next_pow2(int n) {
  int p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

template <typename R>
struct FftPlan<R>::Impl {
  using C = std::complex<R>;

  explicit Impl(int n) : n(n) {
    check(n >= 1, "FFT size must be >= 1");
    if (is_pow2(n)) {
      init_pow2(n, twiddle, bitrev);
      build_stage_tables(n);
      // transform_many repeats the input permutation once per segment, so
      // flatten it to the (i, j) swaps with j > i — half the iterations and
      // no branch per element.  Same swaps, same bits.
      for (int i = 0; i < n; ++i) {
        if (bitrev[i] > i) {
          brev_pairs.push_back(i);
          brev_pairs.push_back(bitrev[i]);
        }
      }
    } else {
      // Bluestein: convolve with the chirp b_j = e^{i pi j^2 / n} using a
      // power-of-two FFT of length m >= 2n - 1.
      m = next_pow2(2 * n - 1);
      init_pow2(m, twiddle, bitrev);
      build_stage_tables(m);
      chirp.resize(n);
      for (int j = 0; j < n; ++j) {
        // j^2 mod 2n keeps the argument small for large n.
        const long long j2 = (static_cast<long long>(j) * j) % (2LL * n);
        const double ang = kPi * static_cast<double>(j2) / n;
        chirp[j] = C(static_cast<R>(std::cos(ang)), static_cast<R>(std::sin(ang)));
      }
      bfft.assign(m, C{});
      bfft[0] = chirp[0];
      for (int j = 1; j < n; ++j) {
        bfft[j] = chirp[j];
        bfft[m - j] = chirp[j];
      }
      pow2_transform(bfft.data(), m, /*inverse=*/false);
    }
  }

  static void init_pow2(int n, std::vector<C>& tw, std::vector<int>& rev) {
    tw.resize(n / 2);
    for (int k = 0; k < n / 2; ++k) {
      const double ang = -2.0 * kPi * k / n;
      tw[k] = C(static_cast<R>(std::cos(ang)), static_cast<R>(std::sin(ang)));
    }
    rev.resize(n);
    rev[0] = 0;
    int bits = 0;
    while ((1 << bits) < n) ++bits;
    for (int i = 1; i < n; ++i) {
      rev[i] = (rev[i >> 1] >> 1) | ((i & 1) << (bits - 1));
    }
  }

  // Flatten the strided twiddle walk into one contiguous table per radix-2
  // stage so the vector butterflies load twiddles with plain vector loads.
  // The stage with half-size h reads h entries at offset h - 1 (total
  // len - 1 per direction); the inverse table holds the pre-conjugated
  // twiddles, which is the same bits the scalar conj-in-loop produced.
  void build_stage_tables(int len) {
    stage_fwd.resize(static_cast<std::size_t>(len) - 1);
    stage_inv.resize(static_cast<std::size_t>(len) - 1);
    for (int half = 1; half < len; half <<= 1) {
      const int step = len / (2 * half);
      C* fwd = stage_fwd.data() + (half - 1);
      C* inv = stage_inv.data() + (half - 1);
      for (int k = 0; k < half; ++k) {
        const C w = twiddle[static_cast<std::size_t>(k) * step];
        fwd[k] = w;
        inv[k] = std::conj(w);
      }
    }
  }

  // Iterative radix-2 over the cached tables (len must be this plan's pow2
  // length: n for native plans, m for Bluestein plans).  Each stage runs as
  // one simd::fft_stage call — butterflies within a stage touch disjoint
  // elements, so the vector arms stay bit-identical to the scalar one.
  void pow2_transform(C* x, int len, bool inverse) const {
    for (int i = 0; i < len; ++i) {
      const int j = bitrev[i];
      if (j > i) std::swap(x[i], x[j]);
    }
    const C* tables = inverse ? stage_inv.data() : stage_fwd.data();
    for (int half = 1; half < len; half <<= 1) {
      simd::fft_stage(x, len, half, tables + (half - 1));
    }
  }

  void transform(C* x, bool inverse, C* scratch) const {
    if (m == 0) {
      pow2_transform(x, n, inverse);
    } else if (scratch != nullptr) {
      bluestein(x, inverse, scratch);
    } else {
      std::vector<C> local(static_cast<std::size_t>(m));
      bluestein(x, inverse, local.data());
    }
    if (inverse) {
      const R scale = static_cast<R>(1.0 / n);
      for (int i = 0; i < n; ++i) x[i] *= scale;
    }
  }

  // `count` contiguous segments in one pass: per-segment bit-reversal, then
  // one fft_stage call per stage over all segments.  Stage blocks (2*half
  // elements) tile each segment exactly, so the butterflies — and therefore
  // the bits — match `count` separate transform() calls; only the dispatch
  // count changes.  The inverse 1/n scale stays one multiply per element.
  void transform_many(C* x, int count, bool inverse, C* scratch,
                      bool prerev = false) const {
    check(count >= 0 &&
              (count == 0 ||
               n <= std::numeric_limits<int>::max() / count),
          "FftPlan: transform_many length overflow");
    if (m != 0) {
      check(!prerev, "FftPlan: prerev transforms need a radix-2 size");
      // Bluestein reuses the serial convolution scratch per segment.
      for (int t = 0; t < count; ++t) {
        transform(x + static_cast<std::ptrdiff_t>(t) * n, inverse, scratch);
      }
      return;
    }
    if (!prerev) {
      const int np = static_cast<int>(brev_pairs.size());
      const int* pairs = brev_pairs.data();
      for (int t = 0; t < count; ++t) {
        C* seg = x + static_cast<std::ptrdiff_t>(t) * n;
        for (int k = 0; k < np; k += 2) {
          std::swap(seg[pairs[k]], seg[pairs[k + 1]]);
        }
      }
    }
    const C* tables = inverse ? stage_inv.data() : stage_fwd.data();
    const int total = count * n;
    for (int half = 1; half < n; half <<= 1) {
      simd::fft_stage(x, total, half, tables + (half - 1));
    }
    if (inverse) {
      const R scale = static_cast<R>(1.0 / n);
      for (int i = 0; i < total; ++i) x[i] *= scale;
    }
  }

  void bluestein(C* x, bool inverse, C* a) const {
    // Forward (sign -): X_k = conj(b_k) * sum_j x_j conj(b_j) b_{k-j}.
    // Inverse reuses the identity ifft(x) = conj(fft(conj(x))) (scaling is
    // applied by the caller).  `a` is the length-m convolution scratch.
    for (int j = 0; j < n; ++j) {
      const C xj = inverse ? std::conj(x[j]) : x[j];
      a[j] = xj * std::conj(chirp[j]);
    }
    for (int j = n; j < m; ++j) a[j] = C{};
    pow2_transform(a, m, false);
    simd::cmul_inplace(a, bfft.data(), m);
    pow2_transform(a, m, true);
    const R inv_m = static_cast<R>(1.0 / m);
    for (int k = 0; k < n; ++k) {
      C v = a[k] * inv_m * std::conj(chirp[k]);
      x[k] = inverse ? std::conj(v) : v;
    }
  }

  int n;
  int m = 0;  // Bluestein pow2 length; 0 when n itself is a power of two
  std::vector<C> twiddle;
  std::vector<int> bitrev;
  std::vector<int> brev_pairs;  // flattened (i, j) swaps, j > i; pow2 only
  std::vector<C> chirp;
  aligned_vector<C> bfft;
  aligned_vector<C> stage_fwd, stage_inv;  // contiguous per-stage twiddles
};

template <typename R>
FftPlan<R>::FftPlan(int n) : impl_(std::make_unique<Impl>(n)) {}
template <typename R>
FftPlan<R>::~FftPlan() = default;
template <typename R>
FftPlan<R>::FftPlan(FftPlan&&) noexcept = default;
template <typename R>
FftPlan<R>& FftPlan<R>::operator=(FftPlan&&) noexcept = default;

template <typename R>
int FftPlan<R>::size() const {
  return impl_->n;
}

template <typename R>
int FftPlan<R>::scratch_size() const {
  return impl_->m;
}

template <typename R>
void FftPlan<R>::forward(std::complex<R>* x) const {
  impl_->transform(x, false, nullptr);
}

template <typename R>
void FftPlan<R>::inverse(std::complex<R>* x) const {
  impl_->transform(x, true, nullptr);
}

template <typename R>
void FftPlan<R>::forward(std::complex<R>* x, std::complex<R>* scratch) const {
  impl_->transform(x, false, scratch);
}

template <typename R>
void FftPlan<R>::inverse(std::complex<R>* x, std::complex<R>* scratch) const {
  impl_->transform(x, true, scratch);
}

template <typename R>
void FftPlan<R>::forward_many(std::complex<R>* x, int count,
                              std::complex<R>* scratch) const {
  impl_->transform_many(x, count, false, scratch);
}

template <typename R>
void FftPlan<R>::inverse_many(std::complex<R>* x, int count,
                              std::complex<R>* scratch) const {
  impl_->transform_many(x, count, true, scratch);
}

template <typename R>
const int* FftPlan<R>::bitrev_table() const {
  return impl_->m == 0 ? impl_->bitrev.data() : nullptr;
}

template <typename R>
void FftPlan<R>::forward_many_prerev(std::complex<R>* x, int count,
                                     std::complex<R>* scratch) const {
  impl_->transform_many(x, count, false, scratch, /*prerev=*/true);
}

template <typename R>
void FftPlan<R>::inverse_many_prerev(std::complex<R>* x, int count,
                                     std::complex<R>* scratch) const {
  impl_->transform_many(x, count, true, scratch, /*prerev=*/true);
}

template class FftPlan<double>;
template class FftPlan<float>;

namespace {

template <typename R>
const FftPlan<R>& cached_plan(int n) {
  // Function-local statics: the analysis cannot attach GUARDED_BY to them,
  // but the whole access path sits inside this one locked scope, so the
  // discipline is structural.  Plans are immutable once built; the returned
  // reference outlives the lock safely.
  static Mutex mu;
  static std::map<int, std::unique_ptr<FftPlan<R>>> cache;
  LockGuard lk(mu);
  auto& slot = cache[n];
  if (!slot) slot = std::make_unique<FftPlan<R>>(n);
  return *slot;
}

void fft2_dir(Grid<cd>& g, bool inverse, Fft2Workspace& ws) {
  const int rows = g.rows(), cols = g.cols();
  if (rows == 0 || cols == 0) return;
  const FftPlan<double>& row_plan = fft_plan_d(cols);
  cd* row_scratch = ws.scratch_for(row_plan);
  for (int r = 0; r < rows; ++r) {
    if (inverse) {
      row_plan.inverse(g.row(r), row_scratch);
    } else {
      row_plan.forward(g.row(r), row_scratch);
    }
  }
  const FftPlan<double>& col_plan = fft_plan_d(rows);
  cd* col_scratch = ws.scratch_for(col_plan);
  cd* buf = ws.col_buffer(rows);
  for (int c = 0; c < cols; ++c) {
    for (int r = 0; r < rows; ++r) buf[r] = g(r, c);
    if (inverse) {
      col_plan.inverse(buf, col_scratch);
    } else {
      col_plan.forward(buf, col_scratch);
    }
    for (int r = 0; r < rows; ++r) g(r, c) = buf[r];
  }
}

}  // namespace

const FftPlan<double>& fft_plan_d(int n) { return cached_plan<double>(n); }
const FftPlan<float>& fft_plan_f(int n) { return cached_plan<float>(n); }

template <typename R>
std::complex<R>* Fft2WorkspaceT<R>::col_buffer(int rows) {
  if (static_cast<int>(col_.size()) < rows) col_.resize(rows);
  return col_.data();
}

template <typename R>
std::complex<R>* Fft2WorkspaceT<R>::scratch_for(const FftPlan<R>& plan) {
  const int need = plan.scratch_size();
  if (need == 0) return nullptr;
  if (static_cast<int>(scratch_.size()) < need) scratch_.resize(need);
  return scratch_.data();
}

template class Fft2WorkspaceT<double>;
template class Fft2WorkspaceT<float>;

void fft2_inplace(Grid<cd>& g) {
  Fft2Workspace ws;
  fft2_dir(g, false, ws);
}

void ifft2_inplace(Grid<cd>& g) {
  Fft2Workspace ws;
  fft2_dir(g, true, ws);
}

void fft2_inplace(Grid<cd>& g, Fft2Workspace& ws) { fft2_dir(g, false, ws); }
void ifft2_inplace(Grid<cd>& g, Fft2Workspace& ws) { fft2_dir(g, true, ws); }

Grid<cd> fft2(const Grid<cd>& g) {
  Grid<cd> out = g;
  fft2_inplace(out);
  return out;
}

Grid<cd> ifft2(const Grid<cd>& g) {
  Grid<cd> out = g;
  ifft2_inplace(out);
  return out;
}

Grid<cd> fft2(const Grid<double>& g) {
  Grid<cd> out(g.rows(), g.cols());
  for (std::size_t i = 0; i < g.size(); ++i) out[i] = cd(g[i], 0.0);
  fft2_inplace(out);
  return out;
}

Grid<double> abs2(const Grid<cd>& g) {
  Grid<double> out(g.rows(), g.cols());
  for (std::size_t i = 0; i < g.size(); ++i) out[i] = norm2(g[i]);
  return out;
}

Grid<double> real_part(const Grid<cd>& g) {
  Grid<double> out(g.rows(), g.cols());
  for (std::size_t i = 0; i < g.size(); ++i) out[i] = g[i].real();
  return out;
}

}  // namespace nitho
