#pragma once
// Spectrum bookkeeping: fftshift, centered crop / embed, and band-limited
// resampling.  These are the "non-parametric mask operations" of the paper
// (Algorithm 1 lines 6-7): shift the mask spectrum, crop it to the optical
// kernel support, and later embed kernel-sized spectra back into an image
// grid for the inverse transform.

#include "math/cplx.hpp"
#include "math/grid.hpp"

namespace nitho {

/// Moves DC (index 0) to the center bin floor(n/2) along both axes.
template <typename T>
Grid<T> fftshift(const Grid<T>& g);

/// Inverse of fftshift for any (even or odd) size.
template <typename T>
Grid<T> ifftshift(const Grid<T>& g);

/// Centered crop of a *shifted* spectrum to rows x cols (both <= input).
/// The DC bin floor(N/2) maps onto floor(rows/2).
template <typename T>
Grid<T> center_crop(const Grid<T>& g, int rows, int cols);

/// Centered zero-padded embedding of a *shifted* spectrum into rows x cols
/// (both >= input); exact inverse of center_crop.
template <typename T>
Grid<T> center_embed(const Grid<T>& g, int rows, int cols);

/// Band-limited (Fourier) resampling of a real image to rows x cols.
/// Values are preserved (interpolation, not energy, normalization).
Grid<double> spectral_resample(const Grid<double>& img, int rows, int cols);

/// Centered crop x crop window of fftshift(fft2(img)) computed without the
/// full 2-D transform: real rows are transformed in conjugate-symmetric
/// pairs (two rows per complex FFT, DESIGN.md §5.5), then only the crop's
/// columns are.  Matches center_crop(fftshift(fft2(img)), crop, crop) to
/// rounding but runs ~4x faster for small crops of large masks (the hot
/// path of both the golden engine and Nitho's inference, Algorithm 1
/// lines 6-7).
Grid<cd> fft2_crop_centered(const Grid<double>& img, int crop);

/// Box-filter downsampling by an integer factor (mask -> coarse grid).
Grid<double> downsample_area(const Grid<double>& img, int factor);

/// Nearest-neighbour upsample by an integer factor (for visualization).
Grid<double> upsample_nearest(const Grid<double>& img, int factor);

}  // namespace nitho
