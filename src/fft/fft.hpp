#pragma once
// Fast Fourier transforms.
//
// FftPlan precomputes twiddle tables for a fixed length: radix-2 for powers
// of two, Bluestein's chirp-z algorithm for everything else, so any size is
// supported (kernel supports are odd per Eq. 10 of the paper).  Forward
// transforms are unnormalized (matching the Hopkins conventions in
// DESIGN.md §5); inverse transforms scale by 1/n.

#include <complex>
#include <memory>

#include "math/cplx.hpp"
#include "math/grid.hpp"

namespace nitho {

/// Precomputed 1-D FFT of a fixed size.  Immutable after construction and
/// safe to share across threads.
template <typename R>
class FftPlan {
 public:
  explicit FftPlan(int n);
  ~FftPlan();
  FftPlan(FftPlan&&) noexcept;
  FftPlan& operator=(FftPlan&&) noexcept;
  FftPlan(const FftPlan&) = delete;
  FftPlan& operator=(const FftPlan&) = delete;

  int size() const;

  /// In-place unnormalized DFT with exponent e^{-2*pi*i*jk/n}.
  void forward(std::complex<R>* x) const;
  /// In-place inverse DFT (exponent +) scaled by 1/n.
  void inverse(std::complex<R>* x) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Process-wide plan caches (thread-safe; plans are built once per size).
const FftPlan<double>& fft_plan_d(int n);
const FftPlan<float>& fft_plan_f(int n);

/// 2-D transforms over Grid<complex>: rows then columns.
void fft2_inplace(Grid<cd>& g);
void ifft2_inplace(Grid<cd>& g);
Grid<cd> fft2(const Grid<cd>& g);
Grid<cd> ifft2(const Grid<cd>& g);
/// Forward transform of a real image.
Grid<cd> fft2(const Grid<double>& g);

/// Elementwise |z|^2 -> real grid.
Grid<double> abs2(const Grid<cd>& g);
/// Real parts of a complex grid.
Grid<double> real_part(const Grid<cd>& g);

}  // namespace nitho
