#pragma once
// Fast Fourier transforms.
//
// FftPlan precomputes twiddle tables for a fixed length: radix-2 for powers
// of two, Bluestein's chirp-z algorithm for everything else, so any size is
// supported (kernel supports are odd per Eq. 10 of the paper).  Forward
// transforms are unnormalized (matching the Hopkins conventions in
// DESIGN.md §5); inverse transforms scale by 1/n.
//
// Hot paths that transform many same-sized grids (the AerialEngine,
// DESIGN.md §6) pass an Fft2Workspace so no per-transform heap allocation
// happens: the workspace holds the column gather buffer and the Bluestein
// convolution scratch that the plain entry points otherwise allocate per
// call.

#include <complex>
#include <memory>
#include <vector>

#include "common/aligned.hpp"
#include "math/cplx.hpp"
#include "math/grid.hpp"

namespace nitho {

/// Precomputed 1-D FFT of a fixed size.  Immutable after construction and
/// safe to share across threads.
template <typename R>
class FftPlan {
 public:
  explicit FftPlan(int n);
  ~FftPlan();
  FftPlan(FftPlan&&) noexcept;
  FftPlan& operator=(FftPlan&&) noexcept;
  FftPlan(const FftPlan&) = delete;
  FftPlan& operator=(const FftPlan&) = delete;

  int size() const;

  /// Complex elements of external scratch the workspace overloads need:
  /// 0 for power-of-two sizes, the Bluestein convolution length otherwise.
  int scratch_size() const;

  /// In-place unnormalized DFT with exponent e^{-2*pi*i*jk/n}.
  void forward(std::complex<R>* x) const;
  /// In-place inverse DFT (exponent +) scaled by 1/n.
  void inverse(std::complex<R>* x) const;

  /// Workspace overloads: bit-identical to the plain calls, but any
  /// Bluestein scratch comes from `scratch` (>= scratch_size() elements;
  /// may be null when scratch_size() == 0) instead of the heap.
  void forward(std::complex<R>* x, std::complex<R>* scratch) const;
  void inverse(std::complex<R>* x, std::complex<R>* scratch) const;

  /// `count` independent in-place transforms over contiguous length-size()
  /// segments starting at x.  Bit-identical to calling the single-segment
  /// overloads on each segment in turn: segments are bit-reversed
  /// individually, then each radix-2 stage runs as ONE simd::fft_stage call
  /// across all segments — a stage's butterfly blocks span 2*half elements
  /// with half a power of two below size(), so no block ever straddles a
  /// segment boundary and every segment sees exactly the per-segment stage
  /// sequence.  This amortizes per-transform dispatch for the batched
  /// training ops' many small row/column transforms (DESIGN.md §13.2).
  /// Bluestein sizes fall back to the per-segment path over `scratch`.
  void forward_many(std::complex<R>* x, int count,
                    std::complex<R>* scratch) const;
  void inverse_many(std::complex<R>* x, int count,
                    std::complex<R>* scratch) const;

  /// Input permutation of the radix-2 path, or nullptr for Bluestein sizes:
  /// the transforms above first swap x[i] <-> x[table[i]] within each
  /// segment.  Callers that BUILD a transform's input by scatter can write
  /// position i to table[i] instead and call the *_prerev entry points,
  /// which skip that permutation pass — the permutation is pure data
  /// movement, so results stay bit-identical (the batched training ops'
  /// gather paths, DESIGN.md §13.2).
  const int* bitrev_table() const;

  /// forward_many/inverse_many over segments whose elements were written in
  /// bit-reversed order (see bitrev_table(); radix-2 sizes only).
  void forward_many_prerev(std::complex<R>* x, int count,
                           std::complex<R>* scratch) const;
  void inverse_many_prerev(std::complex<R>* x, int count,
                           std::complex<R>* scratch) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Process-wide plan caches (thread-safe; plans are built once per size).
const FftPlan<double>& fft_plan_d(int n);
const FftPlan<float>& fft_plan_f(int n);

/// Reusable scratch for the workspace-taking 2-D transforms: one column
/// gather buffer plus Bluestein scratch, both sized on demand and retained
/// across calls.  Not thread-safe — use one workspace per thread.
/// Templated on the scalar type so the double-precision litho substrate and
/// the float autodiff ops (nn/ops_fft) share one implementation.
template <typename R>
class Fft2WorkspaceT {
 public:
  /// Column gather buffer holding `rows` elements (grown, never shrunk).
  std::complex<R>* col_buffer(int rows);
  /// Scratch sized for `plan` (nullptr when the plan needs none).
  std::complex<R>* scratch_for(const FftPlan<R>& plan);

 private:
  // Aligned so the SIMD butterfly/pointwise kernels run on cache-line
  // boundaries (common/aligned.hpp; alignment asserted in test_simd).
  aligned_vector<std::complex<R>> col_;
  aligned_vector<std::complex<R>> scratch_;
};

using Fft2Workspace = Fft2WorkspaceT<double>;
using Fft2WorkspaceF = Fft2WorkspaceT<float>;

/// 2-D transforms over Grid<complex>: rows then columns.
void fft2_inplace(Grid<cd>& g);
void ifft2_inplace(Grid<cd>& g);
/// Workspace variants: bit-identical results, zero heap allocation per call
/// once the workspace has warmed up.
void fft2_inplace(Grid<cd>& g, Fft2Workspace& ws);
void ifft2_inplace(Grid<cd>& g, Fft2Workspace& ws);
Grid<cd> fft2(const Grid<cd>& g);
Grid<cd> ifft2(const Grid<cd>& g);
/// Forward transform of a real image.
Grid<cd> fft2(const Grid<double>& g);

/// Elementwise |z|^2 -> real grid.
Grid<double> abs2(const Grid<cd>& g);
/// Real parts of a complex grid.
Grid<double> real_part(const Grid<cd>& g);

}  // namespace nitho
