#pragma once
// Evaluation metrics from the paper, Eqs. (5)-(8):
//   aerial stage  — MSE, PSNR, max error (ME), pixel-wise regression;
//   resist stage  — mIOU, mPA over the k=2 classes (resist / background).

#include "math/grid.hpp"

namespace nitho {

/// Eq. (5): mean squared error over all pixels.
double mse(const Grid<double>& truth, const Grid<double>& pred);

/// Eq. (6): 10*log10(max(I)^2 / MSE), in dB (max over the ground truth).
double psnr(const Grid<double>& truth, const Grid<double>& pred);

/// Eq. (8): max |I - I_hat| over all pixels.
double max_error(const Grid<double>& truth, const Grid<double>& pred);

/// Threshold an aerial image into a binary resist pattern (Z = I >= thres).
Grid<double> binarize(const Grid<double>& aerial, double threshold);

/// Eq. (7): mean intersection-over-union over the two resist classes.
/// Inputs are binary grids (values 0 or 1).  An empty class present in
/// neither image counts as IOU 1 for that class.
double miou(const Grid<double>& truth, const Grid<double>& pred);

/// Eq. (7): mean pixel accuracy over the two classes.
double mpa(const Grid<double>& truth, const Grid<double>& pred);

/// All aerial + resist metrics for one prediction at a given resist
/// threshold, as used throughout the bench harnesses.
struct EvalResult {
  double mse = 0.0;
  double psnr = 0.0;
  double max_error = 0.0;
  double miou = 0.0;
  double mpa = 0.0;
};

EvalResult evaluate(const Grid<double>& aerial_truth,
                    const Grid<double>& aerial_pred, double resist_threshold);

/// Averages a set of per-tile results.
EvalResult average(const std::vector<EvalResult>& rs);

}  // namespace nitho
