#include "metrics/metrics.hpp"

#include <cmath>

#include "common/check.hpp"

namespace nitho {

double mse(const Grid<double>& truth, const Grid<double>& pred) {
  check(truth.same_shape(pred), "mse shape mismatch");
  check(!truth.empty(), "mse of empty grids");
  double acc = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - pred[i];
    acc += d * d;
  }
  return acc / static_cast<double>(truth.size());
}

double psnr(const Grid<double>& truth, const Grid<double>& pred) {
  const double m = mse(truth, pred);
  const double peak = grid_max(truth);
  if (m <= 0.0) return 150.0;  // identical images: clamp instead of inf
  return 10.0 * std::log10(peak * peak / m);
}

double max_error(const Grid<double>& truth, const Grid<double>& pred) {
  check(truth.same_shape(pred), "max_error shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i)
    worst = std::max(worst, std::abs(truth[i] - pred[i]));
  return worst;
}

Grid<double> binarize(const Grid<double>& aerial, double threshold) {
  Grid<double> out(aerial.rows(), aerial.cols());
  for (std::size_t i = 0; i < aerial.size(); ++i)
    out[i] = aerial[i] >= threshold ? 1.0 : 0.0;
  return out;
}

namespace {

struct Confusion {
  // [truth][pred] counts over classes {0, 1}.
  double n[2][2] = {{0.0, 0.0}, {0.0, 0.0}};
};

Confusion confusion(const Grid<double>& truth, const Grid<double>& pred) {
  check(truth.same_shape(pred), "confusion shape mismatch");
  Confusion c;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const int t = truth[i] >= 0.5 ? 1 : 0;
    const int p = pred[i] >= 0.5 ? 1 : 0;
    c.n[t][p] += 1.0;
  }
  return c;
}

}  // namespace

double miou(const Grid<double>& truth, const Grid<double>& pred) {
  const Confusion c = confusion(truth, pred);
  double acc = 0.0;
  for (int k = 0; k < 2; ++k) {
    const double inter = c.n[k][k];
    // union = |truth k| + |pred k| - inter; the row total already holds
    // inter once, so only the off-diagonal of the prediction column adds.
    const double uni = c.n[k][0] + c.n[k][1] + c.n[1 - k][k];
    acc += uni > 0.0 ? inter / uni : 1.0;
  }
  return acc / 2.0;
}

double mpa(const Grid<double>& truth, const Grid<double>& pred) {
  const Confusion c = confusion(truth, pred);
  double acc = 0.0;
  for (int k = 0; k < 2; ++k) {
    const double total = c.n[k][0] + c.n[k][1];
    acc += total > 0.0 ? c.n[k][k] / total : 1.0;
  }
  return acc / 2.0;
}

EvalResult evaluate(const Grid<double>& aerial_truth,
                    const Grid<double>& aerial_pred, double resist_threshold) {
  EvalResult r;
  r.mse = mse(aerial_truth, aerial_pred);
  r.psnr = psnr(aerial_truth, aerial_pred);
  r.max_error = max_error(aerial_truth, aerial_pred);
  const Grid<double> zt = binarize(aerial_truth, resist_threshold);
  const Grid<double> zp = binarize(aerial_pred, resist_threshold);
  r.miou = miou(zt, zp);
  r.mpa = mpa(zt, zp);
  return r;
}

EvalResult average(const std::vector<EvalResult>& rs) {
  EvalResult avg;
  if (rs.empty()) return avg;
  for (const auto& r : rs) {
    avg.mse += r.mse;
    avg.psnr += r.psnr;
    avg.max_error += r.max_error;
    avg.miou += r.miou;
    avg.mpa += r.mpa;
  }
  const double n = static_cast<double>(rs.size());
  avg.mse /= n;
  avg.psnr /= n;
  avg.max_error /= n;
  avg.miou /= n;
  avg.mpa /= n;
  return avg;
}

}  // namespace nitho
