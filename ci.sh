#!/usr/bin/env bash
# Tier-1 verification, runnable anywhere the toolchain exists (mirrors
# .github/workflows/ci.yml for environments without Actions).  Builds and
# tests Debug and Release with -Wall -Wextra -Werror.
set -euo pipefail
cd "$(dirname "$0")"

jobs=$(nproc 2>/dev/null || echo 2)

for cfg in Release Debug; do
  echo "=== ${cfg} ==="
  build="build-ci-${cfg,,}"
  cmake -B "${build}" -S . \
        -DCMAKE_BUILD_TYPE="${cfg}" \
        -DNITHO_WERROR=ON
  cmake --build "${build}" -j "${jobs}"
  ctest --test-dir "${build}" --output-on-failure -j "${jobs}"
done

echo "=== Scalar fallback (NITHO_NO_SIMD) ==="
cmake --preset scalar
cmake --build --preset scalar -j "${jobs}"
ctest --preset scalar -j "${jobs}"

echo "=== ThreadSanitizer (serve / autotune / engine / common / nn / opc / serialize / rollout / obs / simd) ==="
cmake --preset tsan
cmake --build --preset tsan -j "${jobs}" --target test_serve test_autotune test_engine test_common test_nn test_opc test_serialize test_rollout test_obs test_simd
ctest --preset tsan -j 1

echo "CI OK: both configurations built warning-clean, all suites passed"
echo "(including the scalar-only kernel arms), and the threaded suites are"
echo "TSan-clean."
