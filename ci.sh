#!/usr/bin/env bash
# Tier-1 verification, runnable anywhere the toolchain exists (mirrors
# .github/workflows/ci.yml for environments without Actions).  Builds and
# tests Debug and Release with -Wall -Wextra -Werror.
set -euo pipefail
cd "$(dirname "$0")"

jobs=$(nproc 2>/dev/null || echo 2)

for cfg in Release Debug; do
  echo "=== ${cfg} ==="
  build="build-ci-${cfg,,}"
  cmake -B "${build}" -S . \
        -DCMAKE_BUILD_TYPE="${cfg}" \
        -DNITHO_WERROR=ON
  cmake --build "${build}" -j "${jobs}"
  ctest --test-dir "${build}" --output-on-failure -j "${jobs}"
done

echo "=== Scalar fallback (NITHO_NO_SIMD) ==="
cmake --preset scalar
cmake --build --preset scalar -j "${jobs}"
ctest --preset scalar -j "${jobs}"

echo "=== ThreadSanitizer (serve / autotune / engine / common / nn / opc / serialize / rollout / obs / simd) ==="
cmake --preset tsan
cmake --build --preset tsan -j "${jobs}" --target test_serve test_autotune test_engine test_common test_nn test_opc test_serialize test_rollout test_obs test_simd
ctest --preset tsan -j 1

echo "=== Lint: bit-identity protocol + gate-config self-tests ==="
python3 tools/lint_bit_identity.py --root .
python3 tools/lint_bit_identity.py --self-test
python3 bench/check_baselines.py --lint-config

echo "=== UndefinedBehaviorSanitizer (full suite) ==="
cmake --preset ubsan
cmake --build --preset ubsan -j "${jobs}"
ctest --preset ubsan -j "${jobs}"

echo "=== Thread-safety analysis (clang -Wthread-safety, whole tree) ==="
if command -v clang++ >/dev/null 2>&1; then
  cmake --preset tsa
  cmake --build --preset tsa -j "${jobs}"
  ctest --preset tsa -j "${jobs}"   # negative_compile_* cases
else
  echo "clang++ not found; skipping (the analysis is clang-only and runs"
  echo "in the CI thread-safety job — install clang to run it locally)."
fi

echo "CI OK: both configurations built warning-clean, all suites passed"
echo "(including the scalar-only kernel arms), the threaded suites are"
echo "TSan-clean, the suite is UBSan-clean, and the bit-identity linter"
echo "and its self-tests are green."
