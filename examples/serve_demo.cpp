// Serving demo: a closed-loop load generator against LithoServer.
//
// Physical SOCS kernels from the golden engine stand in for a trained
// model's export (the server cannot tell the difference — that is the
// paper's §III-C1 point).  Four closed-loop clients stream mixed
// aerial/resist requests at two output resolutions through a 2-shard
// micro-batching server; halfway through, the kernel set is hot-swapped
// to a truncated rank — requests keep flowing, each served by the
// snapshot that was current when it was submitted.  At the end the
// per-shard stats (batches, occupancy, latency percentiles) and a
// served-vs-direct spot check are printed.

#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/timer.hpp"
#include "litho/golden.hpp"
#include "nitho/fast_litho.hpp"
#include "serve/server.hpp"

using namespace nitho;

namespace {

Grid<double> random_tile(int px, Rng& rng) {
  Grid<double> m(px, px, 0.0);
  for (int r = 0; r < 8; ++r) {
    const int h = rng.randint(4, px / 4), w = rng.randint(4, px / 4);
    const int r0 = rng.randint(0, px - h), c0 = rng.randint(0, px - w);
    for (int y = r0; y < r0 + h; ++y)
      for (int x = c0; x < c0 + w; ++x) m(y, x) = 1.0;
  }
  return m;
}

}  // namespace

int main() {
  std::printf("LithoServer: sharded micro-batching aerial-image serving\n");
  std::printf("========================================================\n\n");

  // Physical optics at a small tile (fast to build, no training needed).
  LithoConfig litho;
  litho.tile_nm = 512;
  litho.raster_px = 256;
  litho.analysis_px = 64;
  litho.sim_px = 32;
  litho.spectrum_crop = 31;
  GoldenEngine golden(litho);
  std::vector<Grid<cd>> kernels = golden.kernels().kernels;
  std::printf("golden kernels: %d x %d, rank %zu\n", golden.kernel_dim(),
              golden.kernel_dim(), kernels.size());

  serve::ServeOptions opts;
  opts.shards = 2;
  opts.queue_capacity = 64;
  opts.batch.max_batch = 8;
  opts.batch.max_delay = std::chrono::microseconds(300);
  // Two resolutions over two shards: spread by round robin so both shards
  // stay busy (out_px affinity would pin each resolution to one shard).
  opts.route = serve::RouteMode::kRoundRobin;
  serve::LithoServer server(FastLitho{std::vector<Grid<cd>>(kernels)}, opts);

  constexpr int kClients = 4;
  constexpr int kPerClient = 48;
  constexpr int kDepth = 8;  // outstanding requests per client (closed loop)
  const int out_pxs[] = {32, 48};

  // Pre-rasterize the tiles (all strategies share this cost in production).
  Rng rng(7);
  std::vector<std::vector<Grid<double>>> tiles(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kPerClient; ++i) {
      tiles[c].push_back(random_tile(litho.raster_px, rng));
    }
  }

  std::printf("\n%d closed-loop clients x %d requests, pipeline depth %d, "
              "out_px in {32, 48}, aerial+resist mix\n",
              kClients, kPerClient, kDepth);

  WallTimer timer;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::future<Grid<double>>> window;
      for (int i = 0; i < kPerClient; ++i) {
        const int out_px = out_pxs[(c + i) % 2];
        const auto kind = (i % 3 == 0) ? serve::RequestKind::kResist
                                       : serve::RequestKind::kAerial;
        window.push_back(server.submit(tiles[c][i], out_px, kind));
        if (static_cast<int>(window.size()) >= kDepth) {
          for (auto& f : window) (void)f.get();
          window.clear();
        }
      }
      for (auto& f : window) (void)f.get();
    });
  }

  // Hot-swap mid-stream: truncate to half rank (a cheaper snapshot, as if a
  // freshly trained model had just been exported).  Clients never pause.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::vector<Grid<cd>> truncated(kernels.begin(),
                                  kernels.begin() + kernels.size() / 2);
  server.swap_kernels(FastLitho{std::vector<Grid<cd>>(truncated)});
  std::printf("hot-swapped kernels mid-stream: rank %zu -> %zu\n",
              kernels.size(), truncated.size());

  for (auto& t : clients) t.join();
  const double secs = timer.seconds();
  const int total = kClients * kPerClient;

  std::printf("\nserved %d requests in %.2fs  (%.0f reqs/s)\n\n", total, secs,
              total / secs);
  for (int s = 0; s < server.shards(); ++s) {
    const serve::ShardStats st = server.shard_stats(s);
    std::printf(
        "shard %d: %llu reqs in %llu batches (%.1f avg), queue %zu, "
        "p50 %.0f us, p99 %.0f us\n",
        s, static_cast<unsigned long long>(st.completed),
        static_cast<unsigned long long>(st.batches), st.mean_batch_occupancy,
        st.queue_depth, st.p50_latency_us, st.p99_latency_us);
  }

  // Spot check: the server's answer equals the direct synchronous call on
  // the post-swap snapshot, bit for bit.
  const FastLitho direct{std::vector<Grid<cd>>(truncated)};
  Grid<double> probe = random_tile(litho.raster_px, rng);
  const Grid<double> served = server.submit(probe, 48).get();
  const bool identical = served == direct.aerial_from_mask(probe, 48);
  std::printf("\nspot check vs direct aerial_from_mask: %s\n",
              identical ? "bit-identical" : "MISMATCH");

  server.stop();
  std::printf("server drained and stopped; all futures resolved.\n");
  return identical ? 0 : 1;
}
