// Serving demo: a closed-loop load generator against LithoServer.
//
// Physical SOCS kernels from the golden engine stand in for a trained
// model's export (the server cannot tell the difference — that is the
// paper's §III-C1 point).  Four closed-loop clients stream mixed
// aerial/resist requests at two output resolutions through a 2-shard
// micro-batching server; halfway through, the kernel set is hot-swapped
// to a truncated rank — requests keep flowing, each served by the
// snapshot that was current when it was submitted.  At the end the
// per-shard stats (batches, occupancy, latency percentiles, shed
// accounting) and a served-vs-direct spot check are printed.
//
// The server runs with a latency SLO installed (DESIGN.md §9): every
// request carries a deadline and is shed with DeadlineExceeded rather
// than served arbitrarily late, and the per-shard autotuner may move
// (max_batch, max_delay) toward the target.  The deadlines are sized so
// that only the burstiest moments shed a handful of requests — which the
// clients count and carry on, demonstrating the error path without
// making it the common case (overload proper is bench_serve's scenario).

#include <cstdint>
#include <cstdio>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "litho/golden.hpp"
#include "nitho/fast_litho.hpp"
#include "obs/export.hpp"
#include "serve/server.hpp"

using namespace nitho;

namespace {

Grid<double> random_tile(int px, Rng& rng) {
  Grid<double> m(px, px, 0.0);
  for (int r = 0; r < 8; ++r) {
    const int h = rng.randint(4, px / 4), w = rng.randint(4, px / 4);
    const int r0 = rng.randint(0, px - h), c0 = rng.randint(0, px - w);
    for (int y = r0; y < r0 + h; ++y)
      for (int x = c0; x < c0 + w; ++x) m(y, x) = 1.0;
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  // --trace=<path>: turn on request tracing (default 1/16 sampling) and
  // dump a Perfetto-loadable Chrome trace_event JSON at exit.  Serving is
  // bit-identical either way — the spot check below runs with tracing on.
  const Flags flags(argc, argv);
  const std::string trace_path = flags.get("trace");

  std::printf("LithoServer: sharded micro-batching aerial-image serving\n");
  std::printf("========================================================\n\n");

  // Physical optics at a small tile (fast to build, no training needed).
  LithoConfig litho;
  litho.tile_nm = 512;
  litho.raster_px = 256;
  litho.analysis_px = 64;
  litho.sim_px = 32;
  litho.spectrum_crop = 31;
  GoldenEngine golden(litho);
  std::vector<Grid<cd>> kernels = golden.kernels().kernels;
  std::printf("golden kernels: %d x %d, rank %zu\n", golden.kernel_dim(),
              golden.kernel_dim(), kernels.size());

  serve::ServeOptions opts;
  opts.shards = 2;
  opts.queue_capacity = 64;
  opts.batch.max_batch = 8;
  opts.batch.max_delay = std::chrono::microseconds(300);
  // Two resolutions over two shards: spread by round robin so both shards
  // stay busy (out_px affinity would pin each resolution to one shard).
  opts.route = serve::RouteMode::kRoundRobin;
  // Latency SLO: sized so only the burstiest moments shed (see header).
  serve::SloPolicy slo;
  slo.target_p99 = std::chrono::milliseconds(250);
  slo.max_queue_wait = std::chrono::milliseconds(200);
  slo.autotune = true;
  opts.slo = slo;
  opts.trace.enabled = !trace_path.empty();
  serve::LithoServer server(FastLitho{std::vector<Grid<cd>>(kernels)}, opts);

  constexpr int kClients = 4;
  constexpr int kPerClient = 48;
  constexpr int kDepth = 8;  // outstanding requests per client (closed loop)
  const int out_pxs[] = {32, 48};

  // Pre-rasterize the tiles (all strategies share this cost in production).
  Rng rng(7);
  std::vector<std::vector<Grid<double>>> tiles(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kPerClient; ++i) {
      tiles[c].push_back(random_tile(litho.raster_px, rng));
    }
  }

  std::printf("\n%d closed-loop clients x %d requests, pipeline depth %d, "
              "out_px in {32, 48}, aerial+resist mix\n",
              kClients, kPerClient, kDepth);

  WallTimer timer;
  std::vector<std::thread> clients;
  std::vector<int> client_sheds(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      // A shed future resolves with DeadlineExceeded — an answer to
      // handle (count, retry, degrade), never a hang.
      const auto drain = [&](std::vector<std::future<Grid<double>>>& w) {
        for (auto& f : w) {
          try {
            (void)f.get();
          } catch (const serve::DeadlineExceeded&) {
            ++client_sheds[c];
          }
        }
        w.clear();
      };
      std::vector<std::future<Grid<double>>> window;
      for (int i = 0; i < kPerClient; ++i) {
        const int out_px = out_pxs[(c + i) % 2];
        const auto kind = (i % 3 == 0) ? serve::RequestKind::kResist
                                       : serve::RequestKind::kAerial;
        window.push_back(server.submit(tiles[c][i], out_px, kind));
        if (static_cast<int>(window.size()) >= kDepth) drain(window);
      }
      drain(window);
    });
  }

  // Hot-swap mid-stream: truncate to half rank (a cheaper snapshot, as if a
  // freshly trained model had just been exported).  Clients never pause.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::vector<Grid<cd>> truncated(kernels.begin(),
                                  kernels.begin() + kernels.size() / 2);
  server.swap_kernels(FastLitho{std::vector<Grid<cd>>(truncated)});
  std::printf("hot-swapped kernels mid-stream: rank %zu -> %zu\n",
              kernels.size(), truncated.size());

  for (auto& t : clients) t.join();
  const double secs = timer.seconds();
  const int total = kClients * kPerClient;

  std::printf("\nserved %d requests in %.2fs  (%.0f reqs/s)\n\n", total, secs,
              total / secs);
  int total_sheds = 0;
  for (int c = 0; c < kClients; ++c) total_sheds += client_sheds[c];
  for (int s = 0; s < server.shards(); ++s) {
    const serve::ShardStats st = server.shard_stats(s);
    std::printf(
        "shard %d: %llu reqs in %llu batches (%.1f avg), queue %zu, "
        "p50 %s, p99 %s\n",
        s, static_cast<unsigned long long>(st.completed),
        static_cast<unsigned long long>(st.batches), st.mean_batch_occupancy,
        st.queue_depth,
        serve::latency_str(st.p50_latency_us, st.latency_samples).c_str(),
        serve::latency_str(st.p99_latency_us, st.latency_samples).c_str());
    std::printf(
        "         slo: %llu shed at submit, %llu shed in queue, "
        "goodput %.0f reqs/s, tuned (max_batch %d, max_delay %.0f us, "
        "%llu updates)\n",
        static_cast<unsigned long long>(st.shed.shed_at_submit),
        static_cast<unsigned long long>(st.shed.shed_in_queue),
        st.shed.goodput_rps, st.max_batch, st.max_delay_us,
        static_cast<unsigned long long>(st.autotune_updates));
  }
  std::printf("clients saw %d shed request(s) resolve with DeadlineExceeded\n",
              total_sheds);

  // Spot check: the server's answer equals the direct synchronous call on
  // the post-swap snapshot, bit for bit.
  const FastLitho direct{std::vector<Grid<cd>>(truncated)};
  Grid<double> probe = random_tile(litho.raster_px, rng);
  const Grid<double> served = server.submit(probe, 48).get();
  const bool identical = served == direct.aerial_from_mask(probe, 48);
  std::printf("\nspot check vs direct aerial_from_mask: %s\n",
              identical ? "bit-identical" : "MISMATCH");

  // Metrics snapshot (obs::MetricsRegistry): the same counters the stats
  // above read, exported through the text exporter.
  {
    std::ostringstream os;
    obs::write_metrics_text(os, server.metrics().snapshot());
    std::printf("\nmetrics snapshot:\n%s", os.str().c_str());
  }
  if (!trace_path.empty()) {
    obs::write_chrome_trace_file(trace_path, server.tracer());
    std::printf("\nwrote %zu trace span(s) to %s (%llu overwritten)\n",
                server.tracer().events().size(), trace_path.c_str(),
                static_cast<unsigned long long>(server.tracer().dropped()));
  }

  server.stop();
  std::printf("server drained and stopped; all futures resolved.\n");
  return identical ? 0 : 1;
}
