// Kernel inspection: how close are the *learned* optical kernels to the
// physical SOCS kernels of the golden TCC?
//
// Individual kernels are only identified up to a unitary mixing within
// eigenvalue clusters, so we compare the induced operators: the learned
// sum K K^H against the golden TCC restricted to the same rank, plus
// energy-capture statistics.  Kernel magnitude images are written as PGM.

#include <cmath>
#include <cstdio>

#include "fft/fft.hpp"
#include "io/pgm.hpp"
#include "litho/golden.hpp"
#include "nitho/fast_litho.hpp"
#include "nitho/trainer.hpp"
#include "optics/socs.hpp"

using namespace nitho;

int main() {
  std::printf("Learned vs physical optical kernels\n");
  std::printf("===================================\n\n");

  LithoConfig litho;
  litho.tile_nm = 512;
  litho.raster_px = 512;
  litho.analysis_px = 64;
  litho.sim_px = 32;
  litho.spectrum_crop = 31;
  GoldenEngine engine(litho);
  const int kdim = engine.kernel_dim();

  const Dataset train = engine.make_dataset(DatasetKind::B2v, 24, 7);
  NithoConfig mc;
  mc.rank = 14;
  mc.encoding.features = 64;
  mc.hidden = 32;
  NithoModel model(mc, litho.tile_nm, litho.optics.wavelength_nm,
                   litho.optics.na);
  NithoTrainConfig tc;
  tc.epochs = 100;
  tc.batch = 4;
  tc.train_px = 32;
  train_nitho(model, sample_ptrs(train), tc);

  const std::vector<Grid<cd>> learned = model.export_kernels();
  SocsKernels learned_socs;
  learned_socs.kdim = kdim;
  learned_socs.kernels = learned;
  learned_socs.eigenvalues.assign(learned.size(), 0.0);
  const Grid<cd> learned_op = tcc_from_kernels(learned_socs);

  // Golden operator truncated to the same rank (the best any rank-14 model
  // could represent) and at full rank.
  const SocsKernels& golden = engine.kernels();
  SocsKernels truncated;
  truncated.kdim = kdim;
  truncated.kernels.assign(golden.kernels.begin(),
                           golden.kernels.begin() + model.rank());
  truncated.eigenvalues.assign(golden.eigenvalues.begin(),
                               golden.eigenvalues.begin() + model.rank());
  const Grid<cd> truncated_op = tcc_from_kernels(truncated);
  const Grid<cd>& full_op = engine.tcc();

  auto rel_err = [](const Grid<cd>& a, const Grid<cd>& b) {
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      num += norm2(a[i] - b[i]);
      den += norm2(b[i]);
    }
    return std::sqrt(num / den);
  };
  std::printf("||learned - golden_full||_F / ||golden_full||_F      = %.4f\n",
              rel_err(learned_op, full_op));
  std::printf("||learned - golden_rank%d||_F / ||golden_rank%d||_F  = %.4f\n",
              model.rank(), model.rank(), rel_err(learned_op, truncated_op));
  std::printf("||golden_rank%d - golden_full|| (truncation floor)   = %.4f\n",
              model.rank(), rel_err(truncated_op, full_op));

  // Diagonal energy in the spatial-frequency domain: captured intensity
  // response per frequency pair.
  double learned_trace = 0.0, golden_trace = 0.0;
  for (int i = 0; i < learned_op.rows(); ++i) {
    learned_trace += learned_op(i, i).real();
    golden_trace += full_op(i, i).real();
  }
  std::printf("trace ratio (learned / golden): %.4f\n\n",
              learned_trace / golden_trace);

  // Visualize the dominant kernels in both spectral and spatial domains.
  std::vector<Grid<double>> panels;
  for (int i = 0; i < 4; ++i) {
    panels.push_back(abs2(learned[static_cast<std::size_t>(i)]));
    panels.push_back(abs2(golden.kernels[static_cast<std::size_t>(i)]));
  }
  write_pgm_montage("kernel_spectra.pgm", panels);
  std::printf(
      "wrote kernel_spectra.pgm: |K|^2 pairs (learned, golden) for the four\n"
      "dominant kernels.  NOTE: learned kernels mix degenerate eigenspaces,\n"
      "so pairs match in support/extent rather than pixel-by-pixel; the\n"
      "operator-level errors above are the faithful comparison.\n");
  return 0;
}
