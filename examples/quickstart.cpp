// Quickstart: the full Nitho pipeline end to end on a laptop-sized problem.
//
//   1. Build a golden lithography engine (Hopkins TCC + full-rank SOCS).
//   2. Generate a small via-layer dataset with golden aerial images.
//   3. Train Nitho: a complex-valued neural field regresses the optical
//      kernels from coordinates (Algorithm 1).
//   4. Predict aerial/resist images for held-out masks and report metrics.
//
// Runs in well under a minute on two cores.

#include <cstdio>

#include "io/pgm.hpp"
#include "litho/golden.hpp"
#include "metrics/metrics.hpp"
#include "nitho/fast_litho.hpp"
#include "nitho/model.hpp"
#include "nitho/trainer.hpp"

using namespace nitho;

int main() {
  std::printf("Nitho quickstart\n================\n\n");

  // 1. Optical system: lambda=193 nm, NA=1.35, annular source, 0.5 um tile.
  LithoConfig litho;
  litho.tile_nm = 512;
  litho.raster_px = 512;
  litho.analysis_px = 64;
  litho.sim_px = 32;
  litho.spectrum_crop = 31;
  GoldenEngine engine(litho);
  std::printf("golden engine: kernel dim %d (Eq. 10), full rank %d\n",
              engine.kernel_dim(), engine.kernels().rank());

  // 2. Data: 20 via tiles to train on, 4 held out.
  Dataset train = engine.make_dataset(DatasetKind::B2v, 20, 1);
  Dataset test = engine.make_dataset(DatasetKind::B2v, 4, 2);
  std::printf("dataset: %zu train / %zu test tiles\n\n", train.samples.size(),
              test.samples.size());

  // 3. Model + training.
  NithoConfig mc;
  mc.rank = 14;
  mc.encoding.features = 64;
  mc.hidden = 32;
  mc.blocks = 2;
  NithoModel model(mc, litho.tile_nm, litho.optics.wavelength_nm,
                   litho.optics.na);
  std::printf("model: %lld parameters (%.3f MB), %d kernels of %dx%d\n",
              static_cast<long long>(model.parameter_count()),
              model.parameter_bytes() / 1048576.0, model.rank(),
              model.kernel_dim(), model.kernel_dim());

  NithoTrainConfig tc;
  tc.epochs = 60;
  tc.batch = 4;
  tc.train_px = 32;
  const TrainStats stats = train_nitho(model, sample_ptrs(train), tc);
  std::printf("trained %d steps in %.1fs; loss %.2e -> %.2e\n\n", stats.steps,
              stats.seconds, stats.epoch_losses.front(), stats.final_loss);

  // 4. Evaluate on held-out masks.
  std::printf("held-out evaluation (aerial PSNR / resist mIOU):\n");
  for (std::size_t i = 0; i < test.samples.size(); ++i) {
    const Sample& s = test.samples[i];
    const Grid<double> aerial = predict_aerial(model, s, litho.analysis_px);
    const EvalResult r = evaluate(s.aerial, aerial, litho.resist.threshold);
    std::printf("  tile %zu: %.2f dB / %.4f\n", i, r.psnr, r.miou);
  }

  // Bonus: persist the learned kernels and render one result.
  const FastLitho fast = FastLitho::from_model(model, litho.resist.threshold);
  fast.save("nitho_kernels.bin");
  const Sample& s = test.samples[0];
  write_pgm_montage("quickstart_result.pgm",
                    {s.mask_coarse, s.aerial,
                     predict_aerial(model, s, litho.analysis_px), s.resist});
  std::printf(
      "\nwrote nitho_kernels.bin (reusable TCC kernels) and "
      "quickstart_result.pgm\n(panels: mask | golden aerial | Nitho aerial | "
      "golden resist).\n");
  return 0;
}
