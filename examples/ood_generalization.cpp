// Out-of-distribution generalization (the paper's Fig. 2b / Table IV story):
// train Nitho and a DOINN-like image-learning baseline on *via* masks only,
// then simulate *metal* and *OPC'ed* masks.  The neural field transfers
// because it learned the optical system, not the mask distribution.

#include <cstdio>

#include "baselines/doinn.hpp"
#include "litho/golden.hpp"
#include "metrics/metrics.hpp"
#include "nitho/fast_litho.hpp"
#include "nitho/model.hpp"
#include "nitho/trainer.hpp"

using namespace nitho;

namespace {

double avg_psnr_nitho(const NithoModel& m, const Dataset& ds, int px) {
  double acc = 0.0;
  for (const Sample& s : ds.samples) acc += psnr(s.aerial, predict_aerial(m, s, px));
  return acc / static_cast<double>(ds.samples.size());
}

double avg_psnr_image(const ImageModel& m, const Dataset& ds, int px) {
  double acc = 0.0;
  for (const Sample& s : ds.samples) {
    acc += psnr(s.aerial, predict_aerial(m, s, 32, px));
  }
  return acc / static_cast<double>(ds.samples.size());
}

}  // namespace

int main() {
  std::printf("Out-of-distribution generalization demo\n");
  std::printf("=======================================\n\n");

  LithoConfig litho;
  litho.tile_nm = 512;
  litho.raster_px = 512;
  litho.analysis_px = 64;
  litho.sim_px = 32;
  litho.spectrum_crop = 31;
  GoldenEngine engine(litho);

  const Dataset train_vias = engine.make_dataset(DatasetKind::B2v, 24, 10);
  const Dataset test_vias = engine.make_dataset(DatasetKind::B2v, 4, 20);
  const Dataset test_metal = engine.make_dataset(DatasetKind::B2m, 4, 30);
  const Dataset test_opc = engine.make_dataset(DatasetKind::B1opc, 4, 40);
  std::printf("training distribution: %zu via tiles ONLY\n\n",
              train_vias.samples.size());

  NithoConfig mc;
  mc.rank = 14;
  mc.encoding.features = 64;
  mc.hidden = 32;
  NithoModel nitho(mc, litho.tile_nm, litho.optics.wavelength_nm,
                   litho.optics.na);
  NithoTrainConfig tc;
  tc.epochs = 100;
  tc.batch = 4;
  tc.train_px = 32;
  train_nitho(nitho, sample_ptrs(train_vias), tc);

  DoinnModel doinn;
  ImageTrainConfig ic;
  ic.epochs = 12;
  ic.px = 32;
  train_image_model(doinn, sample_ptrs(train_vias), ic);

  const int px = litho.analysis_px;
  std::printf("%-22s %-12s %-12s\n", "test set", "DOINN-like", "Nitho");
  std::printf("%-22s %-12.2f %-12.2f\n", "vias (in-dist)",
              avg_psnr_image(doinn, test_vias, px),
              avg_psnr_nitho(nitho, test_vias, px));
  std::printf("%-22s %-12.2f %-12.2f\n", "metal (OOD)",
              avg_psnr_image(doinn, test_metal, px),
              avg_psnr_nitho(nitho, test_metal, px));
  std::printf("%-22s %-12.2f %-12.2f   (aerial PSNR, dB)\n", "OPC'ed (OOD)",
              avg_psnr_image(doinn, test_opc, px),
              avg_psnr_nitho(nitho, test_opc, px));

  std::printf(
      "\nThe image-learning baseline collapses on mask families it never\n"
      "saw; Nitho's kernels are mask-independent, like a real simulator.\n");
  return 0;
}
