// Inverse lithography (ILT) with learned optical kernels.
//
// The paper motivates SOCS kernels for "inverse imaging calculation tasks
// such as mask optimization".  Because this repo's whole imaging chain is
// differentiable, the learned kernels drop straight into a gradient-based
// mask optimizer (MOSAIC-style ILT at miniature scale):
//
//   theta  --sigmoid-->  mask  --FFT crop-->  spectrum  --SOCS-->  aerial
//
// descending || aerial - target ||^2 plus a binarization penalty.  That
// loop now lives in OpcEngine (src/opc, DESIGN.md §10) — batched,
// arena-recycled, checkpointable — so this example drives the engine
// instead of hand-rolling the graph, and additionally demonstrates the
// resumability the serving layer depends on: the job is stopped halfway,
// the checkpoint is round-tripped through disk, and a fresh engine
// finishes it bit-identically.

#include <cstdio>
#include <memory>
#include <vector>

#include "fft/spectral.hpp"
#include "io/pgm.hpp"
#include "layout/datasets.hpp"
#include "layout/raster.hpp"
#include "litho/golden.hpp"
#include "metrics/metrics.hpp"
#include "nitho/trainer.hpp"
#include "opc/engine.hpp"

using namespace nitho;

int main() {
  std::printf("Inverse lithography with learned kernels\n");
  std::printf("========================================\n\n");

  LithoConfig litho;
  litho.tile_nm = 512;
  litho.raster_px = 512;
  litho.analysis_px = 64;
  litho.sim_px = 32;
  litho.spectrum_crop = 31;
  GoldenEngine engine(litho);

  // 1. Learn the optical kernels from imaging data (as a fab without TCC
  //    access would).
  const Dataset train = engine.make_dataset(DatasetKind::B1, 16, 11);
  NithoConfig mc;
  mc.rank = 14;
  mc.encoding.features = 64;
  mc.hidden = 32;
  NithoModel model(mc, litho.tile_nm, litho.optics.wavelength_nm,
                   litho.optics.na);
  NithoTrainConfig tc;
  tc.epochs = 60;
  tc.batch = 4;
  tc.train_px = 32;
  train_nitho(model, sample_ptrs(train), tc);

  // 2. Target: the *intended* design of a fresh tile (what should print).
  Rng rng(77);
  const Layout design = make_b1_layout(512, rng);
  const Grid<double> design_raster = rasterize(design, 1);
  const int s = 64;  // optimization grid
  const Grid<double> intended64 = downsample_area(design_raster, 512 / s);
  const Grid<double> intended_bin = binarize(intended64, 0.5);

  // 3. Optimize mask pixels through the differentiable SOCS forward.  The
  //    engine owns theta, the targets and the Adam state; defaults match
  //    the original hand-rolled loop (lr 0.05, binarization weight 0.02).
  opc::OpcConfig cfg;
  cfg.mask_px = s;
  cfg.sim_px = litho.sim_px;
  cfg.resist_threshold = litho.resist.threshold;
  const auto kernels = std::make_shared<const std::vector<Grid<cd>>>(
      model.export_kernels());
  opc::OpcEngine opt(kernels, cfg);
  opt.start({intended64});

  const int iters = 150;
  for (int it = 0; it < iters / 2; ++it) (void)opt.step();

  // Stop/resume: serialize the half-done job, reload it into a *fresh*
  // engine, finish there.  Bit-identical continuation is the contract
  // LithoServer leans on to park long OPC jobs (pinned by test_opc).
  const std::string ck_path = "inverse_litho.ckpt";
  opt.checkpoint().save(ck_path);
  opc::OpcEngine resumed(kernels);
  resumed.restore(opc::OpcCheckpoint::load(ck_path));
  std::printf("checkpointed at iteration %ld, resumed from %s\n",
              resumed.iteration(), ck_path.c_str());
  for (int it = iters / 2; it < iters; ++it) (void)opt.step();
  while (resumed.iteration() < iters) (void)resumed.step();
  std::printf("ILT: %d iterations, imaging loss %.3e -> %.3e "
              "(resumed run: %.3e), mean EPE %.2f sim px\n",
              iters, opt.losses().front(), opt.losses().back(),
              resumed.losses().back(), resumed.mean_epe_px());

  // 4. Verify with the *golden* engine (not the learned kernels): print
  //    fidelity of the unoptimized vs optimized mask.
  auto print_with_golden = [&](const Grid<double>& mask64) {
    const Grid<double> mask512 = upsample_nearest(mask64, 512 / s);
    const Sample sm = engine.make_sample(binarize(mask512, 0.5));
    return sm.resist;
  };
  const Grid<double> printed_plain = print_with_golden(intended_bin);
  const Grid<double> optimized_bin = resumed.binary_masks()[0];
  const Grid<double> printed_opt = print_with_golden(optimized_bin);

  const double fidelity_plain = miou(intended_bin, printed_plain);
  const double fidelity_opt = miou(intended_bin, printed_opt);
  std::printf("print fidelity vs intent (mIOU): unoptimized %.4f -> "
              "ILT mask %.4f\n",
              fidelity_plain, fidelity_opt);
  write_pgm_montage("inverse_litho.pgm",
                    {intended_bin, optimized_bin, printed_plain, printed_opt});
  std::printf(
      "wrote inverse_litho.pgm (intent | optimized mask | print of intent |\n"
      "print of optimized mask).  Gradients flowed through the learned\n"
      "kernels; fidelity verified with the independent golden simulator.\n");
  return fidelity_opt >= fidelity_plain ? 0 : 1;
}
