// Inverse lithography (ILT) with learned optical kernels.
//
// The paper motivates SOCS kernels for "inverse imaging calculation tasks
// such as mask optimization".  Because this repo's whole imaging chain is
// differentiable, the learned kernels drop straight into a gradient-based
// mask optimizer (MOSAIC-style ILT at miniature scale):
//
//   theta  --sigmoid-->  mask  --FFT crop-->  spectrum  --SOCS-->  aerial
//
// and we descend || aerial - target ||^2 plus a binarization penalty.
// The optimized mask prints the intended pattern with visibly higher
// fidelity than the unoptimized design.

#include <cstdio>

#include "fft/spectral.hpp"
#include "io/pgm.hpp"
#include "layout/raster.hpp"
#include "litho/golden.hpp"
#include "metrics/metrics.hpp"
#include "nitho/fast_litho.hpp"
#include "nitho/trainer.hpp"
#include "nn/ops.hpp"
#include "nn/ops_fft.hpp"
#include "nn/optimizer.hpp"

using namespace nitho;

int main() {
  std::printf("Inverse lithography with learned kernels\n");
  std::printf("========================================\n\n");

  LithoConfig litho;
  litho.tile_nm = 512;
  litho.raster_px = 512;
  litho.analysis_px = 64;
  litho.sim_px = 32;
  litho.spectrum_crop = 31;
  GoldenEngine engine(litho);
  const int kdim = engine.kernel_dim();

  // 1. Learn the optical kernels from imaging data (as a fab without TCC
  //    access would).
  const Dataset train = engine.make_dataset(DatasetKind::B1, 16, 11);
  NithoConfig mc;
  mc.rank = 14;
  mc.encoding.features = 64;
  mc.hidden = 32;
  NithoModel model(mc, litho.tile_nm, litho.optics.wavelength_nm,
                   litho.optics.na);
  NithoTrainConfig tc;
  tc.epochs = 60;
  tc.batch = 4;
  tc.train_px = 32;
  train_nitho(model, sample_ptrs(train), tc);

  // Kernels as a constant tensor [r, kdim, kdim, 2].
  const std::vector<Grid<cd>> ks = model.export_kernels();
  nn::Tensor kt({static_cast<int>(ks.size()), kdim, kdim, 2});
  for (std::size_t i = 0; i < ks.size(); ++i) {
    for (std::size_t p = 0; p < ks[i].size(); ++p) {
      kt[static_cast<std::int64_t>((i * ks[i].size() + p) * 2)] =
          static_cast<float>(ks[i][p].real());
      kt[static_cast<std::int64_t>((i * ks[i].size() + p) * 2 + 1)] =
          static_cast<float>(ks[i][p].imag());
    }
  }

  // 2. Target: the *intended* design of a fresh tile (what should print).
  Rng rng(77);
  const Layout design = make_b1_layout(512, rng);
  const Grid<double> design_raster = rasterize(design, 1);
  const int s = 64;  // optimization grid
  const Grid<double> intended64 = downsample_area(design_raster, 512 / s);
  const Grid<double> intended_bin = binarize(intended64, 0.5);
  // Desired aerial: bright where the design prints, dark elsewhere, pushed
  // past the resist threshold with margin.
  nn::Tensor target({32, 32});
  const Grid<double> intended32 = downsample_area(intended64, 2);
  for (std::size_t i = 0; i < intended32.size(); ++i) {
    target[static_cast<std::int64_t>(i)] =
        intended32[i] > 0.5 ? 0.6f : 0.05f;
  }

  // 3. Optimize mask pixels through the differentiable SOCS forward.
  nn::Tensor theta({s, s});
  for (std::size_t i = 0; i < intended64.size(); ++i) {
    theta[static_cast<std::int64_t>(i)] = intended64[i] > 0.5 ? 1.5f : -1.5f;
  }
  nn::Var vtheta = nn::make_leaf(theta, true);
  nn::Adam opt({vtheta}, 0.05f);
  double first_loss = 0.0, last_loss = 0.0;
  const int iters = 150;
  for (int it = 0; it < iters; ++it) {
    opt.zero_grad();
    nn::Var mask = nn::sigmoid(vtheta);
    nn::Var spectrum = nn::fft2c_crop(mask, kdim);
    nn::Var aerial =
        nn::abs2_sum0(nn::socs_field_from_spectrum(spectrum, kt, 32));
    nn::Var fit = nn::mse_loss(aerial, target);
    // Binarization penalty mean(mask * (1 - mask)) = mean(mask) - mean(mask^2).
    nn::Var bin = nn::sub(nn::mean(mask), nn::mean(nn::square(mask)));
    nn::Var loss = nn::add(fit, nn::scale(bin, 0.02f));
    nn::backward(loss);
    opt.step();
    if (it == 0) first_loss = fit->value[0];
    last_loss = fit->value[0];
  }
  std::printf("ILT: %d iterations, imaging loss %.3e -> %.3e\n", iters,
              first_loss, last_loss);

  // 4. Verify with the *golden* engine (not the learned kernels): print
  //    fidelity of the unoptimized vs optimized mask.
  auto print_with_golden = [&](const Grid<double>& mask64) {
    const Grid<double> mask512 = upsample_nearest(mask64, 512 / s);
    const Sample sm = engine.make_sample(binarize(mask512, 0.5));
    return sm.resist;
  };
  const Grid<double> printed_plain = print_with_golden(intended_bin);
  Grid<double> optimized(s, s);
  for (int i = 0; i < s * s; ++i) {
    optimized[static_cast<std::size_t>(i)] =
        1.0 / (1.0 + std::exp(-vtheta->value[i]));
  }
  const Grid<double> optimized_bin = binarize(optimized, 0.5);
  const Grid<double> printed_opt = print_with_golden(optimized_bin);

  const double fidelity_plain = miou(intended_bin, printed_plain);
  const double fidelity_opt = miou(intended_bin, printed_opt);
  std::printf("print fidelity vs intent (mIOU): unoptimized %.4f -> "
              "ILT mask %.4f\n",
              fidelity_plain, fidelity_opt);
  write_pgm_montage("inverse_litho.pgm",
                    {intended_bin, optimized_bin, printed_plain, printed_opt});
  std::printf(
      "wrote inverse_litho.pgm (intent | optimized mask | print of intent |\n"
      "print of optimized mask).  Gradients flowed through the learned\n"
      "kernels; fidelity verified with the independent golden simulator.\n");
  return fidelity_opt >= fidelity_plain ? 0 : 1;
}
