// Continual-learning demo: an LTFB-style rollout tournament feeding a live
// server (DESIGN.md §11).
//
// Three trainer replicas share one model init but perturbed learning rates
// and private shuffle streams.  Each round they train a couple of epochs
// concurrently, are ranked by held-out imaging loss, and the winner's
// kernels are hot-swapped into a LithoServer that is serving a client the
// whole time — zero downtime, and because every request captures its
// kernel snapshot at submit, each served aerial belongs to exactly one
// model generation.  Losers adopt the winner's full trainer state (the
// serialize/restore/resume path of nn/serialize) and re-perturb.
//
// The tournament itself is deterministic for a fixed RolloutConfig::seed;
// only the interleaving with the served traffic varies run to run.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "litho/golden.hpp"
#include "nitho/fast_litho.hpp"
#include "nitho/trainer.hpp"
#include "obs/export.hpp"
#include "rollout/rollout.hpp"
#include "serve/server.hpp"

using namespace nitho;

namespace {

Grid<double> random_tile(int px, Rng& rng) {
  Grid<double> m(px, px, 0.0);
  for (int r = 0; r < 8; ++r) {
    const int h = rng.randint(4, px / 4), w = rng.randint(4, px / 4);
    const int r0 = rng.randint(0, px - h), c0 = rng.randint(0, px - w);
    for (int y = r0; y < r0 + h; ++y)
      for (int x = c0; x < c0 + w; ++x) m(y, x) = 1.0;
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  // --trace=<path>: trace the serving shards AND the tournament (round /
  // train / rank / swap phases, sampled trainer steps) into one Perfetto-
  // loadable JSON — the server's tracer and the rollout tracer merge as
  // two process groups.
  const Flags flags(argc, argv);
  const std::string trace_path = flags.get("trace");
  const bool tracing = !trace_path.empty();

  std::printf("Rollout: background trainer tournament -> live hot-swaps\n");
  std::printf("========================================================\n\n");

  // Golden data at a small tile: 8 samples, 6 to train on, 2 held out for
  // the tournament ranking (the split must be disjoint — the controller
  // cannot verify that for you).
  LithoConfig litho;
  litho.tile_nm = 512;
  litho.raster_px = 512;
  litho.analysis_px = 64;
  litho.sim_px = 32;
  litho.spectrum_crop = 31;
  litho.max_rank = 200;
  const GoldenEngine golden(litho);
  const Dataset ds = golden.make_dataset(DatasetKind::B1, 8, 2026);
  std::vector<const Sample*> train_ptrs, holdout_ptrs;
  for (std::size_t i = 0; i < ds.samples.size(); ++i) {
    (i < 6 ? train_ptrs : holdout_ptrs).push_back(&ds.samples[i]);
  }

  rollout::RolloutConfig cfg;
  cfg.replicas = 3;
  cfg.rounds = 3;
  cfg.epochs_per_round = 2;
  cfg.model.kernel_dim = 9;
  cfg.model.rank = 4;
  cfg.model.encoding.features = 16;
  cfg.model.hidden = 8;
  cfg.model.blocks = 1;
  cfg.tile_nm = litho.tile_nm;
  cfg.train.batch = 2;
  cfg.train.train_px = 32;
  cfg.resist_threshold = golden.config().resist.threshold;

  const TrainingSet train_set =
      prepare_training_set(train_ptrs, cfg.model.kernel_dim, cfg.train.train_px);
  const TrainingSet holdout =
      prepare_training_set(holdout_ptrs, cfg.model.kernel_dim, cfg.train.train_px);
  std::printf("train %d / holdout %d samples, %d replicas x %d rounds x "
              "%d epochs\n\n",
              train_set.size(), holdout.size(), cfg.replicas, cfg.rounds,
              cfg.epochs_per_round);

  // Generation 0: the shared untrained init, exported the same way every
  // round winner will be.
  NithoModel init(cfg.model, cfg.tile_nm, cfg.wavelength_nm, cfg.na);
  // One registry for the whole system: serving counters/histograms and
  // rollout/trainer gauges land in the same snapshot.
  auto registry = std::make_shared<obs::MetricsRegistry>();
  serve::ServeOptions opts;
  opts.shards = 2;
  opts.batch.max_batch = 8;
  opts.metrics = registry;
  opts.trace.enabled = tracing;
  serve::LithoServer server(
      FastLitho::from_model(init, cfg.resist_threshold), opts);
  // The tournament gets its own tracer (track 0 = controller phases,
  // 1..replicas = trainer replicas), constructed next to the server's so
  // the merged timelines align.
  obs::TraceConfig rollout_trace;
  rollout_trace.enabled = tracing;
  obs::Tracer rollout_tracer(rollout_trace,
                             1 + static_cast<std::uint32_t>(cfg.replicas));

  // A closed-loop client streams aerial requests for the entire tournament;
  // it never pauses for a swap.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0};
  std::thread client([&] {
    Rng rng(7);
    std::vector<Grid<double>> tiles;
    for (int i = 0; i < 16; ++i) tiles.push_back(random_tile(64, rng));
    std::vector<std::future<Grid<double>>> window;
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      window.push_back(server.submit(tiles[i++ % tiles.size()], 32));
      if (window.size() >= 4) {
        for (auto& f : window) {
          (void)f.get();
          served.fetch_add(1, std::memory_order_relaxed);
        }
        window.clear();
      }
    }
    for (auto& f : window) {
      (void)f.get();
      served.fetch_add(1, std::memory_order_relaxed);
    }
  });

  rollout::RolloutController controller(cfg, train_set, holdout);
  controller.set_observer(registry.get(), &rollout_tracer);
  WallTimer timer;
  const rollout::RolloutStats stats = controller.run(&server);
  const double secs = timer.seconds();
  stop.store(true, std::memory_order_relaxed);
  client.join();

  std::printf("round  winner  base_lr    holdout_mse   generation  secs\n");
  for (const rollout::RoundResult& r : stats.rounds) {
    std::printf("%5d  %6d  %.2e  %.5e  %10llu  %.2f\n", r.round, r.winner,
                static_cast<double>(r.winner_lr), r.winner_loss,
                static_cast<unsigned long long>(r.generation), r.seconds);
  }
  std::printf("\nserved %llu requests across %llu hot-swaps in %.2fs "
              "(server now at generation %llu)\n",
              static_cast<unsigned long long>(served.load()),
              static_cast<unsigned long long>(stats.swaps), secs,
              static_cast<unsigned long long>(server.generation()));

  // Spot check: the live server now answers with the final winner's
  // kernels, bit for bit.
  Rng rng(99);
  const Grid<double> probe = random_tile(64, rng);
  const FastLitho direct = FastLitho::from_model(
      controller.replica(stats.final_winner).model(), cfg.resist_threshold);
  const bool identical =
      server.submit(probe, 32).get() == direct.aerial_from_mask(probe, 32);
  std::printf("spot check vs final winner's direct FastLitho: %s\n",
              identical ? "bit-identical" : "MISMATCH");

  // Unified metrics snapshot: serving shards, tournament outcome and
  // per-replica trainer phase seconds from the one shared registry.
  {
    std::ostringstream os;
    obs::write_metrics_text(os, registry->snapshot());
    std::printf("\nmetrics snapshot:\n%s", os.str().c_str());
  }
  if (tracing) {
    obs::write_chrome_trace_file(trace_path,
                                 {&server.tracer(), &rollout_tracer});
    std::printf("\nwrote trace to %s (serve + rollout process groups)\n",
                trace_path.c_str());
  }

  server.stop();
  return identical ? 0 : 1;
}
