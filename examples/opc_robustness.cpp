// OPC robustness: rule-based OPC (edge bias, serifs, SRAFs) changes mask
// statistics drastically — and OPC'ed masks are exactly what production
// lithography simulators must handle.  Nitho trained on plain B1 masks is
// evaluated on their OPC'ed counterparts (the paper's B1 -> B1opc row),
// and the printed-image improvement from OPC is demonstrated with the
// golden engine.

#include <cstdio>

#include "fft/spectral.hpp"
#include "layout/opc.hpp"
#include "layout/raster.hpp"
#include "litho/golden.hpp"
#include "metrics/metrics.hpp"
#include "nitho/fast_litho.hpp"
#include "nitho/trainer.hpp"

using namespace nitho;

int main() {
  std::printf("OPC robustness demo\n===================\n\n");

  LithoConfig litho;
  litho.tile_nm = 512;
  litho.raster_px = 512;
  litho.analysis_px = 64;
  litho.sim_px = 32;
  litho.spectrum_crop = 31;
  GoldenEngine engine(litho);

  // Train on plain B1 only.
  const Dataset train = engine.make_dataset(DatasetKind::B1, 20, 3);
  NithoConfig mc;
  mc.rank = 14;
  mc.encoding.features = 64;
  mc.hidden = 32;
  NithoModel model(mc, litho.tile_nm, litho.optics.wavelength_nm,
                   litho.optics.na);
  NithoTrainConfig tc;
  tc.epochs = 80;
  tc.batch = 4;
  tc.train_px = 32;
  train_nitho(model, sample_ptrs(train), tc);

  // Evaluate the same designs plain vs OPC'ed.
  std::printf("%-8s %-14s %-14s %-16s\n", "design", "plain PSNR", "OPC'ed PSNR",
              "OPC print gain");
  Rng rng(99);
  double plain_acc = 0.0, opc_acc = 0.0;
  const int n = 4;
  for (int i = 0; i < n; ++i) {
    const Layout base = make_b1_layout(512, rng);
    const Layout opc = apply_rule_based_opc(base);
    const Sample sp = engine.make_sample(rasterize(base, 1));
    const Sample so = engine.make_sample(rasterize(opc, 1));

    const double psnr_plain =
        psnr(sp.aerial, predict_aerial(model, sp, litho.analysis_px));
    const double psnr_opc =
        psnr(so.aerial, predict_aerial(model, so, litho.analysis_px));
    plain_acc += psnr_plain / n;
    opc_acc += psnr_opc / n;

    // How much closer is the OPC'ed print to the *intended* design?
    const Grid<double> target = downsample_area(rasterize(base, 1), 8);
    const Grid<double> intended = binarize(target, 0.5);
    const double fidelity_plain = miou(intended, sp.resist);
    const double fidelity_opc = miou(intended, so.resist);
    std::printf("%-8d %-14.2f %-14.2f %+.4f mIOU\n", i, psnr_plain, psnr_opc,
                fidelity_opc - fidelity_plain);
  }
  std::printf("\naverage Nitho PSNR: plain %.2f dB, OPC'ed %.2f dB "
              "(drop %.2f dB)\n",
              plain_acc, opc_acc, plain_acc - opc_acc);
  std::printf(
      "Nitho simulates decorated masks it never saw with nearly the same\n"
      "accuracy (paper Table IV: 0.02%% mPA drop B1 -> B1opc), and the\n"
      "golden engine confirms OPC decorations improve pattern fidelity.\n");
  return 0;
}
