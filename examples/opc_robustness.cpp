// OPC robustness: rule-based OPC (edge bias, serifs, SRAFs) changes mask
// statistics drastically — and OPC'ed masks are exactly what production
// lithography simulators must handle.  Nitho trained on plain B1 masks is
// evaluated on their OPC'ed counterparts (the paper's B1 -> B1opc row),
// and the printed-image improvement from correction is demonstrated with
// the golden engine — for the rule-based decorations and for gradient-based
// ILT, run as ONE batched OpcEngine job over every design at once
// (src/opc, DESIGN.md §10): the same engine LithoServer::submit_opc drives.

#include <cstdio>
#include <memory>
#include <vector>

#include "fft/spectral.hpp"
#include "layout/opc.hpp"
#include "layout/raster.hpp"
#include "litho/golden.hpp"
#include "metrics/metrics.hpp"
#include "nitho/fast_litho.hpp"
#include "nitho/trainer.hpp"
#include "opc/engine.hpp"

using namespace nitho;

int main() {
  std::printf("OPC robustness demo\n===================\n\n");

  LithoConfig litho;
  litho.tile_nm = 512;
  litho.raster_px = 512;
  litho.analysis_px = 64;
  litho.sim_px = 32;
  litho.spectrum_crop = 31;
  GoldenEngine engine(litho);

  // Train on plain B1 only.
  const Dataset train = engine.make_dataset(DatasetKind::B1, 20, 3);
  NithoConfig mc;
  mc.rank = 14;
  mc.encoding.features = 64;
  mc.hidden = 32;
  NithoModel model(mc, litho.tile_nm, litho.optics.wavelength_nm,
                   litho.optics.na);
  NithoTrainConfig tc;
  tc.epochs = 80;
  tc.batch = 4;
  tc.train_px = 32;
  train_nitho(model, sample_ptrs(train), tc);

  // The evaluation designs, their rule-OPC'ed variants and their golden
  // prints.  The 64px intents feed the batched ILT job below.
  const int n = 4;
  const int s = 64;
  Rng rng(99);
  std::vector<Layout> bases;
  std::vector<Sample> plain_samples, opc_samples;
  std::vector<Grid<double>> intents, intended_bins;
  for (int i = 0; i < n; ++i) {
    bases.push_back(make_b1_layout(512, rng));
    const Grid<double> raster = rasterize(bases.back(), 1);
    plain_samples.push_back(engine.make_sample(raster));
    opc_samples.push_back(
        engine.make_sample(rasterize(apply_rule_based_opc(bases.back()), 1)));
    intents.push_back(downsample_area(raster, 512 / s));
    intended_bins.push_back(binarize(downsample_area(raster, 8), 0.5));
  }

  // Gradient-based correction of all n designs as ONE batched job on the
  // learned kernels (one graph per step, bit-identical per mask to n
  // independent optimizers).
  opc::OpcConfig cfg;
  cfg.mask_px = s;
  cfg.sim_px = litho.sim_px;
  cfg.resist_threshold = litho.resist.threshold;
  opc::OpcEngine ilt(std::make_shared<const std::vector<Grid<cd>>>(
                         model.export_kernels()),
                     cfg);
  ilt.start(intents);
  const int iters = 120;
  for (int it = 0; it < iters; ++it) (void)ilt.step();
  std::printf("batched ILT over %d designs: %d iterations, imaging loss "
              "%.3e -> %.3e, mean EPE %.2f sim px\n\n",
              n, iters, ilt.losses().front(), ilt.losses().back(),
              ilt.mean_epe_px());
  const std::vector<Grid<double>> ilt_masks = ilt.binary_masks();

  // Evaluate the same designs plain vs OPC'ed, and each correction's print
  // fidelity against the intent with the independent golden simulator.
  std::printf("%-8s %-12s %-12s %-15s %-15s\n", "design", "plain PSNR",
              "OPC'ed PSNR", "rule-OPC gain", "ILT gain");
  double plain_acc = 0.0, opc_acc = 0.0;
  for (int i = 0; i < n; ++i) {
    const Sample& sp = plain_samples[static_cast<std::size_t>(i)];
    const Sample& so = opc_samples[static_cast<std::size_t>(i)];
    const double psnr_plain =
        psnr(sp.aerial, predict_aerial(model, sp, litho.analysis_px));
    const double psnr_opc =
        psnr(so.aerial, predict_aerial(model, so, litho.analysis_px));
    plain_acc += psnr_plain / n;
    opc_acc += psnr_opc / n;

    // How much closer is each corrected print to the *intended* design?
    const Grid<double>& intended = intended_bins[static_cast<std::size_t>(i)];
    const Sample si = engine.make_sample(binarize(
        upsample_nearest(ilt_masks[static_cast<std::size_t>(i)], 512 / s),
        0.5));
    const double fidelity_plain = miou(intended, sp.resist);
    const double fidelity_opc = miou(intended, so.resist);
    const double fidelity_ilt = miou(intended, si.resist);
    std::printf("%-8d %-12.2f %-12.2f %+.4f mIOU    %+.4f mIOU\n", i,
                psnr_plain, psnr_opc, fidelity_opc - fidelity_plain,
                fidelity_ilt - fidelity_plain);
  }
  std::printf("\naverage Nitho PSNR: plain %.2f dB, OPC'ed %.2f dB "
              "(drop %.2f dB)\n",
              plain_acc, opc_acc, plain_acc - opc_acc);
  std::printf(
      "Nitho simulates decorated masks it never saw with nearly the same\n"
      "accuracy (paper Table IV: 0.02%% mPA drop B1 -> B1opc), and the\n"
      "golden engine scores both correction styles against the intent.\n");
  return 0;
}
