// Fast lithography (paper §III-C1): learned kernels are stored and used
// exactly like calibrated TCC kernels — SOCS only, no network inference.
// This example trains once, exports kernels, then batch-simulates a stream
// of fresh masks, comparing throughput and accuracy against the rigorous
// reference simulator.

#include <cstdio>

#include "common/timer.hpp"
#include "layout/raster.hpp"
#include "litho/golden.hpp"
#include "metrics/metrics.hpp"
#include "nitho/fast_litho.hpp"
#include "nitho/trainer.hpp"

using namespace nitho;

int main() {
  std::printf("Fast lithography with learned optical kernels\n");
  std::printf("=============================================\n\n");

  LithoConfig litho;
  litho.tile_nm = 512;
  litho.raster_px = 512;
  litho.analysis_px = 64;
  litho.sim_px = 32;
  litho.spectrum_crop = 31;
  GoldenEngine engine(litho);

  // Train briefly on mixed layouts and export the kernels.
  const Dataset train = engine.make_dataset(DatasetKind::B2m, 16, 5);
  NithoConfig mc;
  mc.rank = 14;
  mc.encoding.features = 64;
  mc.hidden = 32;
  NithoModel model(mc, litho.tile_nm, litho.optics.wavelength_nm,
                   litho.optics.na);
  NithoTrainConfig tc;
  tc.epochs = 80;
  tc.batch = 4;
  tc.train_px = 32;
  train_nitho(model, sample_ptrs(train), tc);
  const FastLitho fast = FastLitho::from_model(model, litho.resist.threshold);
  fast.save("learned_kernels.bin");
  std::printf("exported %d learned kernels (%dx%d) to learned_kernels.bin\n\n",
              fast.rank(), fast.kernel_dim(), fast.kernel_dim());

  // Stream fresh masks through both engines.
  const int n = 12;
  Rng rng(777);
  std::vector<Grid<double>> masks;
  for (int i = 0; i < n; ++i) {
    masks.push_back(rasterize(make_layout(DatasetKind::B2m, 512, rng), 1));
  }
  const double tile_um2 = 0.512 * 0.512;

  // Single engine sweep over the whole stream: plans, workspaces and pool
  // dispatch are shared across masks (bit-identical to per-mask calls).
  WallTimer t;
  const std::vector<Grid<double>> fast_aerials =
      fast.aerial_batch(masks, litho.analysis_px);
  const double fast_s = t.seconds();

  t.reset();
  for (const auto& m : masks) {
    (void)fast.aerial_from_mask(m, litho.analysis_px);
  }
  const double single_s = t.seconds();

  t.reset();
  std::vector<Grid<double>> ref_aerials;
  for (const auto& m : masks) ref_aerials.push_back(engine.reference_aerial(m));
  const double ref_s = t.seconds();

  double worst_psnr = 1e9;
  for (int i = 0; i < n; ++i) {
    worst_psnr = std::min(worst_psnr, psnr(ref_aerials[static_cast<std::size_t>(i)],
                                           fast_aerials[static_cast<std::size_t>(i)]));
  }
  std::printf("fast SOCS, batched sweep:    %6.2f um^2/s\n",
              n * tile_um2 / fast_s);
  std::printf("fast SOCS, one mask a time:  %6.2f um^2/s\n",
              n * tile_um2 / single_s);
  std::printf("rigorous Abbe reference:     %6.2f um^2/s\n",
              n * tile_um2 / ref_s);
  std::printf("speedup: %.0fx, worst-tile PSNR vs reference: %.2f dB\n",
              ref_s / fast_s, worst_psnr);
  std::printf(
      "\n(The paper reports ~90x over its reference simulator with <1%%\n"
      "accuracy loss; the exact factor depends on the reference's source\n"
      "sampling, the shape — orders of magnitude at high fidelity — holds.)\n");
  return 0;
}
