#!/usr/bin/env python3
"""Perf-regression gate over the committed CSV baselines.

Compares bench output CSVs (``build/bench_out/*.csv``) against the
snapshots committed under ``bench/baselines/`` and fails (exit 1) when a
gated ratio regresses.  Only machine-independent *ratio* columns are gated
(e.g. ``vs_prerefactor``, ``vs_naive``): absolute throughputs move with the
hardware, but a ratio of two runs on the same box should not fall below its
committed value by more than the tolerance, and acceptance floors from the
PR that introduced each subsystem must keep holding outright.

Usage:
  check_baselines.py [--baseline-dir bench/baselines] [--out-dir build/bench_out]
                     [--tol 0.25] [--require] [--self-test] [--lint-config]

Typical flow (see bench/README.md):
  1. cmake --preset release && cmake --build --preset release
  2. ./build/bench_fig5_runtime <flags>  &&  ./build/bench_serve
  3. python3 bench/check_baselines.py          # or: cmake --build build --target check_baselines

By default a bench whose output CSV is absent is skipped (so the gate can
run after any subset of benches); --require turns a missing candidate into
a failure, which is what CI uses after running the full set.
"""

import argparse
import csv
import os
import sys
import tempfile

# file -> list of (row key, ratio column, absolute floor or None,
# relative-checked, absolute ceiling or None).  A floor is the acceptance
# threshold from the PR that introduced the subsystem; the relative check
# (candidate >= (1 - tol) * baseline) guards against creeping regressions
# from later PRs and only applies to machine-independent ratios —
# slo_headroom divides a fixed target by an *absolute* p99, so it is
# floor-only (a slower box legitimately has less headroom).  A *ceiling*
# gates a smaller-is-better ratio (e.g. a tail-latency ratio): the
# candidate fails when it rises above the ceiling, and has no relative
# check — it may improve (drop) freely.
GATES = {
    "fig5_runtime.csv": [
        ("Nitho_single", "vs_prerefactor", None, True, None),
        ("Nitho_batch", "vs_prerefactor", 1.5, True, None),
    ],
    "serve_throughput.csv": [
        ("served_open_loop", "vs_naive", 1.3, True, None),
    ],
    "serve_slo.csv": [
        # Overload acceptance (ISSUE 5): at ~2x single-shard capacity with
        # admission control + autotune on, accepted-request p99 must meet
        # the SLO (headroom = target_p99 / p99 >= 1) and goodput must hold
        # >= 0.9x the measured closed-loop capacity.
        ("overload_admission", "slo_headroom", 1.0, False, None),
        ("overload_admission", "goodput_vs_capacity", 0.9, True, None),
    ],
    "train_throughput.csv": [
        ("batched", "vs_legacy", 1.3, True, None),
    ],
    "opc_throughput.csv": [
        ("batched", "vs_permask", 1.3, True, None),
    ],
    "rollout_swap.csv": [
        # Rollout hot-swap acceptance (ISSUE 7): served p99 across
        # swap_kernels() under open-loop load must stay within 1.5x the
        # steady-state p99.  Smaller is better, so this is ceiling-only:
        # both p99s come from the same run on the same box, and the ratio
        # may shrink freely as swaps get cheaper.
        ("across_swap", "swap_p99_vs_steady", None, False, 1.5),
    ],
    "simd_kernels.csv": [
        # SIMD acceptance (ISSUE 9): the vector arms must stay >= 1.2x the
        # scalar arm on the fused scatter pass, the float complex butterfly
        # and the dense GEMM.  Both times come from the same binary on the
        # same box (force_arm-interleaved best-of-reps), so the ratio is
        # machine-independent and relative-checked like the other speedups.
        ("fused_scatter", "vs_scalar", 1.2, True, None),
        ("butterfly_f32", "vs_scalar", 1.2, True, None),
        ("gemm_nn_dense", "vs_scalar", 1.2, True, None),
    ],
    "obs_overhead.csv": [
        # Observability overhead acceptance (ISSUE 8): trace-off throughput
        # over trace-on (default 1/16 sampling) on the batch-friendly
        # open-loop workload.  Ceiling-only, smaller is better: 1.05 means
        # instrumented serving keeps >= 0.95x the uninstrumented
        # throughput, and the ratio may drop below 1 freely (run-to-run
        # noise can make the traced run the faster one).
        ("trace_on_sampled", "overhead_vs_off", None, False, 1.05),
    ],
}


def read_csv(path):
    """Returns {first-column value: {column: value}}.

    Duplicate row keys are an error: the gate looks rows up by key, so a
    bench that accidentally writes a key twice would otherwise have its
    first row silently shadowed by the last one.
    """
    with open(path, newline="") as f:
        rows = list(csv.DictReader(f))
    if not rows:
        raise ValueError(f"{path}: empty CSV")
    key_col = next(iter(rows[0]))
    table = {}
    for row in rows:
        key = row[key_col]
        if key in table:
            raise ValueError(f"{path}: duplicate row key {key!r}")
        table[key] = row
    return table


def ratio(table, key, column, path):
    row = table.get(key)
    if row is None:
        raise ValueError(f"{path}: missing row '{key}'")
    if column not in row:
        raise ValueError(f"{path}: missing column '{column}'")
    try:
        return float(row[column])
    except ValueError as err:
        raise ValueError(
            f"{path}: row '{key}' column '{column}' is not numeric "
            f"({row[column]!r})"
        ) from err


def check_file(name, baseline_path, candidate_path, tol):
    """Returns a list of failure strings (empty = gate passed).

    Every gate in the file is evaluated even when an earlier one fails or
    cannot be read (missing row/column, non-numeric value): one broken gate
    must not mask the verdict on the others — a single run reports ALL
    failing gates.
    """
    failures = []
    baseline = read_csv(baseline_path)
    candidate = read_csv(candidate_path)
    for key, column, floor, relative, ceiling in GATES[name]:
        try:
            base = ratio(baseline, key, column, baseline_path)
            cand = ratio(candidate, key, column, candidate_path)
        except ValueError as err:
            failures.append(str(err))
            continue
        min_rel = (1.0 - tol) * base
        if relative and cand < min_rel:
            failures.append(
                f"{name}: {key}.{column} = {cand:.3f} regressed below "
                f"(1 - {tol}) * baseline {base:.3f} = {min_rel:.3f}"
            )
        if floor is not None and cand < floor:
            failures.append(
                f"{name}: {key}.{column} = {cand:.3f} is under the "
                f"acceptance floor {floor}"
            )
        if ceiling is not None and cand > ceiling:
            failures.append(
                f"{name}: {key}.{column} = {cand:.3f} is over the "
                f"acceptance ceiling {ceiling}"
            )
    return failures


def run(baseline_dir, out_dir, tol, require):
    failures = []
    checked = 0
    for name in sorted(GATES):
        baseline_path = os.path.join(baseline_dir, name)
        candidate_path = os.path.join(out_dir, name)
        if not os.path.exists(baseline_path):
            print(f"SKIP {name}: no committed baseline")
            continue
        if not os.path.exists(candidate_path):
            msg = f"{name}: bench output not found at {candidate_path}"
            if require:
                failures.append(msg)
            else:
                print(f"SKIP {msg} (run the bench first; --require makes this fail)")
            continue
        try:
            file_failures = check_file(name, baseline_path, candidate_path, tol)
        except ValueError as err:
            file_failures = [str(err)]
        checked += 1
        if file_failures:
            failures.extend(file_failures)
        else:
            print(f"OK   {name}")
    for f in failures:
        print(f"FAIL {f}", file=sys.stderr)
    if not failures and checked == 0 and not require:
        print("note: nothing checked (no bench outputs found)")
    return 1 if failures else 0


def write_csv(path, header, rows):
    with open(path, "w", newline="") as f:
        w = csv.writer(f)
        w.writerow(header)
        w.writerows(rows)


def lint_gate_table(gates, baseline_dir):
    """Structural lint of a GATES-style table; returns failure strings.

    Guards the gate script itself: a typo'd column name, a gate whose
    ceiling also claims a relative floor check, or a committed baseline
    that no longer satisfies its own acceptance floor would all silently
    weaken the perf gate.  Baseline checks are skipped for files with no
    committed snapshot (the gate skips those at run time too).
    """
    failures = []
    for name, entries in sorted(gates.items()):
        if not name.endswith(".csv"):
            failures.append(f"{name}: gated file name is not a .csv")
        if not entries:
            failures.append(f"{name}: gate list is empty")
        seen = set()
        for entry in entries:
            if len(entry) != 5:
                failures.append(f"{name}: entry {entry!r} is not a 5-tuple")
                continue
            key, column, floor, relative, ceiling = entry
            where = f"{name}: {key}.{column}"
            if not key or not column:
                failures.append(f"{where}: empty row key or column")
            if (key, column) in seen:
                failures.append(f"{where}: duplicate gate")
            seen.add((key, column))
            if floor is not None and not floor > 0:
                failures.append(f"{where}: floor {floor!r} must be > 0")
            if ceiling is not None:
                if not ceiling > 0:
                    failures.append(f"{where}: ceiling {ceiling!r} must be > 0")
                # A ceiling gates a smaller-is-better ratio; a floor or a
                # relative (larger-is-better) check on the same value is a
                # contradiction, not a stricter gate.
                if relative or floor is not None:
                    failures.append(
                        f"{where}: ceiling-gated ratio must not also carry "
                        f"a floor or relative check")
            if floor is None and ceiling is None and not relative:
                failures.append(f"{where}: gate checks nothing")
        baseline_path = os.path.join(baseline_dir, name)
        if not os.path.exists(baseline_path):
            continue
        try:
            table = read_csv(baseline_path)
        except ValueError as err:
            failures.append(str(err))
            continue
        for key, column, floor, _relative, ceiling in entries:
            try:
                value = ratio(table, key, column, baseline_path)
            except ValueError as err:
                failures.append(f"lint-config: {err}")
                continue
            if floor is not None and value < floor:
                failures.append(
                    f"{name}: committed baseline {key}.{column} = {value} "
                    f"is under its own acceptance floor {floor}")
            if ceiling is not None and value > ceiling:
                failures.append(
                    f"{name}: committed baseline {key}.{column} = {value} "
                    f"is over its own acceptance ceiling {ceiling}")
    return failures


def lint_config(baseline_dir):
    """--lint-config: the real table must lint clean AND the linter must
    catch each seeded defect (so the checker itself stays covered)."""
    failures = list(lint_gate_table(GATES, baseline_dir))

    def expect(broken, fragment, label):
        hits = lint_gate_table(broken, baseline_dir)
        if not any(fragment in h for h in hits):
            failures.append(
                f"lint-config self-check: seeded defect not caught ({label}: "
                f"expected a failure mentioning {fragment!r}, got {hits!r})")

    expect({"x.csv": [("row", "col", None, True, None),
                      ("row", "col", None, True, None)]},
           "duplicate gate", "duplicate")
    expect({"x.csv": [("row", "col", None, False, None)]},
           "checks nothing", "vacuous gate")
    expect({"x.csv": [("row", "col", 1.2, True, 1.5)]},
           "must not also carry", "floor+ceiling contradiction")
    expect({"x.csv": [("row", "col", -1.0, True, None)]},
           "must be > 0", "negative floor")
    expect({"x.txt": [("row", "col", 1.0, True, None)]},
           "not a .csv", "non-csv name")
    expect({"fig5_runtime.csv": [("Nitho_batch", "no_such_column", 1.0,
                                  True, None)]},
           "no_such_column", "column missing from committed baseline")
    expect({"fig5_runtime.csv": [("Nitho_batch", "vs_prerefactor", 99.0,
                                  True, None)]},
           "under its own acceptance floor", "baseline below floor")

    for f in failures:
        print(f"FAIL {f}", file=sys.stderr)
    if not failures:
        print(f"lint-config OK ({sum(len(v) for v in GATES.values())} gates "
              f"across {len(GATES)} files, 7 seeded defects caught)")
    return 1 if failures else 0


def self_test():
    """Exercises the gate logic on synthetic CSVs (run from ctest)."""
    with tempfile.TemporaryDirectory() as tmp:
        basedir = os.path.join(tmp, "baselines")
        outdir = os.path.join(tmp, "out")
        os.mkdir(basedir)
        os.mkdir(outdir)
        header = ["model", "um2_per_s", "vs_prerefactor"]
        base_rows = [
            ["Nitho_prerefactor", "55.4", "1.00"],
            ["Nitho_single", "95.7", "1.73"],
            ["Nitho_batch", "95.2", "1.72"],
        ]
        write_csv(os.path.join(basedir, "fig5_runtime.csv"), header, base_rows)

        # 1. identical candidate passes.
        write_csv(os.path.join(outdir, "fig5_runtime.csv"), header, base_rows)
        assert run(basedir, outdir, 0.25, require=False) == 0

        # 2. absolute throughput may move freely; the ratio within tolerance
        #    still passes (1.60 >= 0.75 * 1.72 and >= floor 1.5).
        write_csv(
            os.path.join(outdir, "fig5_runtime.csv"),
            header,
            [
                ["Nitho_prerefactor", "31.0", "1.00"],
                ["Nitho_single", "52.1", "1.68"],
                ["Nitho_batch", "49.6", "1.60"],
            ],
        )
        assert run(basedir, outdir, 0.25, require=False) == 0

        # 3. a collapsed ratio fails both the relative check and the floor.
        write_csv(
            os.path.join(outdir, "fig5_runtime.csv"),
            header,
            [
                ["Nitho_prerefactor", "55.0", "1.00"],
                ["Nitho_single", "56.0", "1.02"],
                ["Nitho_batch", "57.0", "1.04"],
            ],
        )
        assert run(basedir, outdir, 0.25, require=False) == 1

        # 4. above the floor but > tol below the committed ratio fails.
        write_csv(
            os.path.join(outdir, "fig5_runtime.csv"),
            header,
            [
                ["Nitho_prerefactor", "55.0", "1.00"],
                ["Nitho_single", "60.0", "1.09"],
                ["Nitho_batch", "85.0", "1.55"],
            ],
        )
        assert run(basedir, outdir, 0.10, require=False) == 1

        # 5. a missing gated row is a failure, not a silent pass.
        write_csv(
            os.path.join(outdir, "fig5_runtime.csv"),
            header,
            [["Nitho_prerefactor", "55.0", "1.00"]],
        )
        assert run(basedir, outdir, 0.25, require=False) == 1

        # 6. missing candidate: skip by default, failure under --require.
        os.remove(os.path.join(outdir, "fig5_runtime.csv"))
        assert run(basedir, outdir, 0.25, require=False) == 0
        assert run(basedir, outdir, 0.25, require=True) == 1

        # 7. serve gate: the 1.3x acceptance floor binds even when the
        #    committed baseline is higher.
        serve_header = ["mode", "reqs_per_s", "vs_naive"]
        write_csv(
            os.path.join(basedir, "serve_throughput.csv"),
            serve_header,
            [
                ["naive_thread_per_request", "1000", "1.00"],
                ["served_open_loop", "1800", "1.80"],
            ],
        )
        write_csv(
            os.path.join(outdir, "serve_throughput.csv"),
            serve_header,
            [
                ["naive_thread_per_request", "900", "1.00"],
                ["served_open_loop", "1150", "1.28"],
            ],
        )
        assert run(basedir, outdir, 0.40, require=False) == 1
        write_csv(
            os.path.join(outdir, "serve_throughput.csv"),
            serve_header,
            [
                ["naive_thread_per_request", "900", "1.00"],
                ["served_open_loop", "1500", "1.67"],
            ],
        )
        assert run(basedir, outdir, 0.25, require=False) == 0

        # 8. train gate: the 1.3x batched-vs-legacy acceptance floor binds,
        #    and extra (ungated) timing columns are ignored.
        train_header = ["mode", "steps_per_s", "fwd_s", "bwd_s", "step_s",
                        "vs_legacy"]
        write_csv(
            os.path.join(basedir, "train_throughput.csv"),
            train_header,
            [
                ["legacy_per_mask", "2.0", "", "", "", "1.00"],
                ["batched", "3.0", "1.0", "1.2", "0.1", "1.50"],
            ],
        )
        write_csv(
            os.path.join(outdir, "train_throughput.csv"),
            train_header,
            [
                ["legacy_per_mask", "2.1", "", "", "", "1.00"],
                ["batched", "2.6", "1.1", "1.4", "0.1", "1.24"],
            ],
        )
        assert run(basedir, outdir, 0.40, require=False) == 1
        write_csv(
            os.path.join(outdir, "train_throughput.csv"),
            train_header,
            [
                ["legacy_per_mask", "2.1", "", "", "", "1.00"],
                ["batched", "3.1", "1.1", "1.3", "0.1", "1.48"],
            ],
        )
        assert run(basedir, outdir, 0.25, require=False) == 0

        # 9. duplicate row keys in a gated CSV are an error, not a silent
        #    last-row-wins (either side of the comparison).
        write_csv(
            os.path.join(outdir, "train_throughput.csv"),
            train_header,
            [
                ["legacy_per_mask", "2.1", "", "", "", "1.00"],
                ["batched", "3.1", "1.1", "1.3", "0.1", "1.48"],
                ["batched", "0.1", "9.9", "9.9", "9.9", "0.05"],
            ],
        )
        assert run(basedir, outdir, 0.25, require=False) == 1
        os.remove(os.path.join(outdir, "train_throughput.csv"))

        # 10. serve_slo gate: both overload floors bind (SLO headroom >= 1,
        #     goodput >= 0.9x capacity).
        slo_header = ["mode", "offered_rps", "goodput_rps", "p99_us",
                      "slo_headroom", "goodput_vs_capacity"]
        write_csv(
            os.path.join(basedir, "serve_slo.csv"),
            slo_header,
            [
                ["capacity_open_loop", "20000", "20000", "800", "", ""],
                ["overload_admission", "40000", "19000", "6000", "1.67",
                 "0.95"],
            ],
        )
        write_csv(
            os.path.join(outdir, "serve_slo.csv"),
            slo_header,
            [
                ["capacity_open_loop", "21000", "21000", "780", "", ""],
                ["overload_admission", "42000", "18500", "11000", "0.91",
                 "0.88"],
            ],
        )
        assert run(basedir, outdir, 0.50, require=False) == 1
        write_csv(
            os.path.join(outdir, "serve_slo.csv"),
            slo_header,
            [
                ["capacity_open_loop", "21000", "21000", "780", "", ""],
                ["overload_admission", "42000", "20000", "6400", "1.56",
                 "0.95"],
            ],
        )
        assert run(basedir, outdir, 0.25, require=False) == 0
        # slo_headroom is floor-only: 1.10 is far below 0.75 * the committed
        # 1.67 but still meets the SLO (>= 1.0), so it must pass — headroom
        # divides the fixed target by an absolute p99 and may legitimately
        # shrink on a slower box.
        write_csv(
            os.path.join(outdir, "serve_slo.csv"),
            slo_header,
            [
                ["capacity_open_loop", "9000", "9000", "1900", "", ""],
                ["overload_admission", "18000", "8600", "18100", "1.10",
                 "0.95"],
            ],
        )
        assert run(basedir, outdir, 0.25, require=False) == 0

        # 11. opc gate: the 1.3x batched-vs-per-mask acceptance floor binds;
        #     the (ungated) EPE column is informational only.
        opc_header = ["mode", "masks_per_s", "mean_epe_px", "vs_permask"]
        write_csv(
            os.path.join(basedir, "opc_throughput.csv"),
            opc_header,
            [
                ["per_mask", "800.0", "16.5", "1.00"],
                ["batched", "3000.0", "16.5", "3.75"],
            ],
        )
        write_csv(
            os.path.join(outdir, "opc_throughput.csv"),
            opc_header,
            [
                ["per_mask", "790.0", "16.5", "1.00"],
                ["batched", "950.0", "16.5", "1.20"],
            ],
        )
        assert run(basedir, outdir, 0.75, require=False) == 1
        write_csv(
            os.path.join(outdir, "opc_throughput.csv"),
            opc_header,
            [
                ["per_mask", "790.0", "17.1", "1.00"],
                ["batched", "2700.0", "17.1", "3.42"],
            ],
        )
        assert run(basedir, outdir, 0.25, require=False) == 0

        # 12. rollout gate: swap_p99_vs_steady is *ceiling*-gated (smaller
        #     is better).  Over the 1.5 ceiling fails; far *below* the
        #     committed baseline passes — an improved (cheaper) swap must
        #     never trip the relative floor that guards larger-is-better
        #     ratios.
        rollout_header = ["mode", "offered_rps", "goodput_rps", "p99_us",
                          "swaps", "swap_p99_vs_steady"]
        write_csv(
            os.path.join(basedir, "rollout_swap.csv"),
            rollout_header,
            [
                ["capacity_open_loop", "9000", "9000", "1400", "0", ""],
                ["steady_open_loop", "5400", "5400", "900", "0", "1.00"],
                ["across_swap", "5400", "5300", "1080", "4", "1.20"],
            ],
        )
        write_csv(
            os.path.join(outdir, "rollout_swap.csv"),
            rollout_header,
            [
                ["capacity_open_loop", "8800", "8800", "1500", "0", ""],
                ["steady_open_loop", "5300", "5300", "950", "0", "1.00"],
                ["across_swap", "5300", "5100", "1570", "4", "1.65"],
            ],
        )
        assert run(basedir, outdir, 0.25, require=False) == 1
        write_csv(
            os.path.join(outdir, "rollout_swap.csv"),
            rollout_header,
            [
                ["capacity_open_loop", "8800", "8800", "1500", "0", ""],
                ["steady_open_loop", "5300", "5300", "950", "0", "1.00"],
                ["across_swap", "5300", "5200", "960", "4", "1.01"],
            ],
        )
        assert run(basedir, outdir, 0.25, require=False) == 0

        # 13. obs gate: overhead_vs_off is ceiling-gated at 1.05 (smaller
        #     is better).  Instrumentation costing > 5% fails; a traced run
        #     that happens to beat the untraced one (ratio < 1) passes.
        obs_header = ["mode", "reqs_per_s", "overhead_vs_off"]
        write_csv(
            os.path.join(basedir, "obs_overhead.csv"),
            obs_header,
            [
                ["trace_off", "9000", "1.00"],
                ["trace_on_sampled", "8900", "1.01"],
            ],
        )
        write_csv(
            os.path.join(outdir, "obs_overhead.csv"),
            obs_header,
            [
                ["trace_off", "9100", "1.00"],
                ["trace_on_sampled", "8300", "1.10"],
            ],
        )
        assert run(basedir, outdir, 0.25, require=False) == 1
        write_csv(
            os.path.join(outdir, "obs_overhead.csv"),
            obs_header,
            [
                ["trace_off", "9100", "1.00"],
                ["trace_on_sampled", "9300", "0.98"],
            ],
        )
        assert run(basedir, outdir, 0.25, require=False) == 0

        # 14. one run reports ALL failing gates: a candidate whose first
        #     gated row is missing AND whose second gated value fails must
        #     surface both problems — a broken gate never masks another.
        write_csv(
            os.path.join(outdir, "serve_slo.csv"),
            slo_header,
            [
                ["capacity_open_loop", "21000", "21000", "780", "", ""],
                # overload_admission row absent -> slo_headroom unreadable...
            ],
        )
        failures = check_file(
            "serve_slo.csv",
            os.path.join(basedir, "serve_slo.csv"),
            os.path.join(outdir, "serve_slo.csv"),
            0.25,
        )
        assert len(failures) == 2, failures  # both gates report, not just one
        # ...and a present-but-failing pair also reports both at once.
        write_csv(
            os.path.join(outdir, "serve_slo.csv"),
            slo_header,
            [
                ["capacity_open_loop", "21000", "21000", "780", "", ""],
                ["overload_admission", "42000", "17000", "25000", "0.80",
                 "0.81"],
            ],
        )
        failures = check_file(
            "serve_slo.csv",
            os.path.join(basedir, "serve_slo.csv"),
            os.path.join(outdir, "serve_slo.csv"),
            0.25,
        )
        assert len(failures) >= 2, failures
        # restore a passing serve_slo.csv so the case-13 state stays green.
        write_csv(
            os.path.join(outdir, "serve_slo.csv"),
            slo_header,
            [
                ["capacity_open_loop", "21000", "21000", "780", "", ""],
                ["overload_admission", "42000", "20000", "6400", "1.56",
                 "0.95"],
            ],
        )
        assert run(basedir, outdir, 0.25, require=False) == 0
        # 15. simd gate: all three vector-vs-scalar floors bind at 1.2x and
        #     the relative check guards committed headroom; the arm column
        #     is informational and ignored by the gate.
        simd_header = ["kernel", "scalar_ns", "simd_ns", "vs_scalar", "arm"]
        write_csv(
            os.path.join(basedir, "simd_kernels.csv"),
            simd_header,
            [
                ["fused_scatter", "18000", "12000", "1.50", "avx2"],
                ["butterfly_f64", "5800", "2400", "2.42", "avx2"],
                ["butterfly_f32", "5700", "1600", "3.56", "avx2"],
                ["gemm_nn_dense", "19700", "14600", "1.35", "avx2"],
            ],
        )
        write_csv(
            os.path.join(outdir, "simd_kernels.csv"),
            simd_header,
            [
                ["fused_scatter", "18100", "15500", "1.17", "avx2"],
                ["butterfly_f64", "5900", "2500", "2.36", "avx2"],
                ["butterfly_f32", "5800", "1700", "3.41", "avx2"],
                ["gemm_nn_dense", "19800", "14800", "1.34", "avx2"],
            ],
        )
        assert run(basedir, outdir, 0.25, require=False) == 1  # floor binds
        write_csv(
            os.path.join(outdir, "simd_kernels.csv"),
            simd_header,
            [
                ["fused_scatter", "18100", "12100", "1.49", "sse2"],
                ["butterfly_f64", "5900", "2500", "2.36", "sse2"],
                ["butterfly_f32", "5800", "1700", "3.41", "sse2"],
                ["gemm_nn_dense", "19800", "14800", "1.34", "sse2"],
            ],
        )
        assert run(basedir, outdir, 0.25, require=False) == 0
        # A ratio above the floor but collapsed far below the committed
        # baseline (3.56 -> 1.30 on butterfly_f32) fails the relative check.
        write_csv(
            os.path.join(outdir, "simd_kernels.csv"),
            simd_header,
            [
                ["fused_scatter", "18100", "12100", "1.49", "avx2"],
                ["butterfly_f64", "5900", "2500", "2.36", "avx2"],
                ["butterfly_f32", "5800", "4460", "1.30", "avx2"],
                ["gemm_nn_dense", "19800", "14800", "1.34", "avx2"],
            ],
        )
        assert run(basedir, outdir, 0.25, require=False) == 1
        os.remove(os.path.join(outdir, "simd_kernels.csv"))
        os.remove(os.path.join(basedir, "simd_kernels.csv"))
        assert run(basedir, outdir, 0.25, require=False) == 0

    print("self-test OK")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--out-dir", default="build/bench_out")
    ap.add_argument("--tol", type=float, default=0.25,
                    help="allowed relative drop of a gated ratio vs baseline")
    ap.add_argument("--require", action="store_true",
                    help="fail when a gated bench output CSV is missing")
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("--lint-config", action="store_true",
                    help="lint the GATES table against the committed "
                         "baselines and verify the linter catches seeded "
                         "defects")
    args = ap.parse_args()
    if args.self_test:
        sys.exit(self_test())
    if args.lint_config:
        sys.exit(lint_config(args.baseline_dir))
    sys.exit(run(args.baseline_dir, args.out_dir, args.tol, args.require))


if __name__ == "__main__":
    main()
