#include "common.hpp"

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "baselines/image_trainer.hpp"
#include "common/check.hpp"
#include "common/simd.hpp"
#include "common/timer.hpp"
#include "nn/serialize.hpp"

namespace nitho::bench {

BenchConfig BenchConfig::from_flags(const Flags& flags) {
  BenchConfig cfg;
  if (flags.get_bool("quick")) {
    cfg.train_count = 16;
    cfg.test_count = 4;
    cfg.nitho_epochs = 30;
    cfg.tempo_epochs = 3;
    cfg.doinn_epochs = 5;
  }
  if (flags.get_bool("full")) {
    cfg.train_count = 96;
    cfg.test_count = 16;
    cfg.nitho_epochs = 120;
    cfg.tempo_epochs = 12;
    cfg.doinn_epochs = 20;
  }
  cfg.train_count = flags.get_int("train", cfg.train_count);
  cfg.test_count = flags.get_int("test", cfg.test_count);
  cfg.nitho_epochs = flags.get_int("nitho-epochs", cfg.nitho_epochs);
  cfg.tempo_epochs = flags.get_int("tempo-epochs", cfg.tempo_epochs);
  cfg.doinn_epochs = flags.get_int("doinn-epochs", cfg.doinn_epochs);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2023));
  return cfg;
}

BenchEnv::BenchEnv(const BenchConfig& cfg) : cfg_(cfg) {
  WallTimer t;
  LithoConfig lc;  // paper optics on 1 um tiles (DESIGN.md §5)
  engine_ = std::make_unique<GoldenEngine>(lc);
  std::printf("[env] golden engine ready: kdim=%d rank=%d (%.1fs)\n",
              engine_->kernel_dim(), engine_->kernels().rank(), t.seconds());
}

const Dataset& BenchEnv::dataset(DatasetKind kind, int count,
                                 std::uint64_t seed, const std::string& key) {
  for (const auto& [k, ds] : cache_) {
    if (k == key) return *ds;
  }
  WallTimer t;
  auto ds = std::make_unique<Dataset>(engine_->make_dataset(kind, count, seed));
  std::printf("[env] dataset %s: %d tiles (%.1fs)\n", key.c_str(), count,
              t.seconds());
  cache_.emplace_back(key, std::move(ds));
  return *cache_.back().second;
}

const Dataset& BenchEnv::train_set(DatasetKind kind) {
  return dataset(kind, cfg_.train_count, cfg_.seed,
                 dataset_name(kind) + "-train");
}

const Dataset& BenchEnv::test_set(DatasetKind kind) {
  return dataset(kind, cfg_.test_count, cfg_.seed + 1000,
                 dataset_name(kind) + "-test");
}

NithoConfig BenchEnv::nitho_config() const {
  NithoConfig mc;
  mc.rank = 24;
  mc.encoding.features = 96;
  mc.hidden = 48;
  mc.blocks = 2;
  return mc;
}

namespace {

std::string cache_path(const std::string& name) {
  return cache_dir() + "/" + name + ".bin";
}

}  // namespace

std::unique_ptr<NithoModel> BenchEnv::trained_nitho(
    const std::string& tag, const std::vector<const Sample*>& data, int epochs,
    int rank, int kernel_dim, EncodingKind pe) {
  NithoConfig mc = nitho_config();
  if (rank > 0) mc.rank = rank;
  if (kernel_dim > 0) mc.kernel_dim = kernel_dim;
  mc.encoding.kind = pe;
  const int ep = epochs > 0 ? epochs : cfg_.nitho_epochs;

  std::ostringstream key;
  key << "nitho-" << tag << "-n" << data.size() << "-e" << ep << "-r"
      << mc.rank << "-k" << mc.kernel_dim << "-pe"
      << static_cast<int>(pe) << "-s" << cfg_.seed;
  auto model = std::make_unique<NithoModel>(mc, litho().tile_nm,
                                            litho().optics.wavelength_nm,
                                            litho().optics.na);
  const std::string path = cache_path(key.str());
  if (std::filesystem::exists(path)) {
    model->load(path);
    std::printf("[env] nitho '%s': loaded from cache\n", tag.c_str());
    return model;
  }
  NithoTrainConfig tc;
  tc.epochs = ep;
  tc.batch = 4;
  WallTimer t;
  const TrainingSet set =
      prepare_training_set(data, model->kernel_dim(), tc.train_px);
  const TrainStats st = train_nitho(*model, set, tc);
  std::printf(
      "[env] nitho '%s': trained %d epochs, loss %.2e (%.0fs; fwd %.0fs "
      "bwd %.0fs)\n",
      tag.c_str(), ep, st.final_loss, t.seconds(), st.forward_seconds,
      st.backward_seconds);
  model->save(path);
  return model;
}

namespace {

template <typename M>
std::unique_ptr<M> train_baseline(const std::string& kind_tag,
                                  const std::string& tag,
                                  const std::vector<const Sample*>& data,
                                  int epochs, int px, std::uint64_t seed,
                                  float lr) {
  auto model = std::make_unique<M>();
  std::ostringstream key;
  key << kind_tag << "-" << tag << "-n" << data.size() << "-e" << epochs
      << "-px" << px << "-s" << seed;
  const std::string path = cache_path(key.str());
  const auto params = model->parameters();
  if (std::filesystem::exists(path)) {
    nn::load_parameters_file(path, params);
    std::printf("[env] %s '%s': loaded from cache\n", kind_tag.c_str(),
                tag.c_str());
    return model;
  }
  ImageTrainConfig ic;
  ic.epochs = epochs;
  ic.px = px;
  ic.lr = lr;
  WallTimer t;
  const TrainStats st = train_image_model(*model, data, ic);
  std::printf("[env] %s '%s': trained %d epochs, loss %.2e (%.0fs)\n",
              kind_tag.c_str(), tag.c_str(), epochs, st.final_loss, t.seconds());
  nn::save_parameters_file(path, params);
  return model;
}

}  // namespace

std::unique_ptr<TempoModel> BenchEnv::trained_tempo(
    const std::string& tag, const std::vector<const Sample*>& data,
    int epochs) {
  // The sigmoid-headed U-Net saturates above ~1e-3 (see baselines/tempo.cpp).
  return train_baseline<TempoModel>(
      "tempo", tag, data, epochs > 0 ? epochs : cfg_.tempo_epochs,
      cfg_.baseline_px, cfg_.seed, 1e-3f);
}

std::unique_ptr<DoinnModel> BenchEnv::trained_doinn(
    const std::string& tag, const std::vector<const Sample*>& data,
    int epochs) {
  return train_baseline<DoinnModel>(
      "doinn", tag, data, epochs > 0 ? epochs : cfg_.doinn_epochs,
      cfg_.baseline_px, cfg_.seed, 2e-3f);
}

EvalResult BenchEnv::eval_nitho(const NithoModel& model, const Dataset& test) {
  std::vector<EvalResult> rs;
  const int px = litho().analysis_px;
  for (const Sample& s : test.samples) {
    rs.push_back(evaluate(s.aerial, predict_aerial(model, s, px),
                          resist_threshold()));
  }
  return average(rs);
}

EvalResult BenchEnv::eval_image(const ImageModel& model, const Dataset& test) {
  std::vector<EvalResult> rs;
  const int px = litho().analysis_px;
  for (const Sample& s : test.samples) {
    rs.push_back(evaluate(s.aerial,
                          predict_aerial(model, s, cfg_.baseline_px, px),
                          resist_threshold()));
  }
  return average(rs);
}

TablePrinter::TablePrinter(std::vector<std::string> headers, int width)
    : cols_(headers.size()), width_(width) {
  row(headers);
  rule();
}

void TablePrinter::row(const std::vector<std::string>& cells) {
  check(cells.size() == cols_, "table row width mismatch");
  for (const auto& c : cells) std::printf("%-*s", width_, c.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

void TablePrinter::rule() {
  for (std::size_t i = 0; i < cols_ * static_cast<std::size_t>(width_); ++i) {
    std::printf("-");
  }
  std::printf("\n");
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string out_dir() {
  std::filesystem::create_directories("bench_out");
  return "bench_out";
}

std::string cache_dir() {
  std::filesystem::create_directories("bench_cache");
  return "bench_cache";
}

const char* log_simd_arm() {
  const char* name = simd::arm_name(simd::active_arm());
  std::printf("[simd] dispatch arm: %s\n", name);
  return name;
}

}  // namespace nitho::bench
