// Extension ablation: "restoring the lithography system".
//
// The paper argues Nitho learns the *system* (source + pupil), not the
// masks.  Here we instantiate four different optical systems — annular,
// circular, quadrupole illumination, and an aberrated (defocused) pupil —
// build golden data for each, train one neural field per system on the same
// mask family, and show each field restores its own system's imaging.  The
// cross-system matrix quantifies how different the systems actually are.

#include <cstdio>
#include <memory>

#include "common.hpp"
#include "io/csv.hpp"

using namespace nitho;
using namespace nitho::bench;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int train_n = flags.get_int("train", 20);
  const int test_n = flags.get_int("test", 4);
  const int epochs = flags.get_int("nitho-epochs", 80);
  std::printf("== Ablation: one neural field per optical system ==\n\n");

  struct System {
    const char* name;
    LithoConfig cfg;
  };
  std::vector<System> systems;
  {
    LithoConfig base;
    base.tile_nm = 512;
    base.raster_px = 512;
    base.analysis_px = 64;
    base.sim_px = 32;
    base.spectrum_crop = 31;
    System annular{"annular", base};
    System circular{"circular", base};
    circular.cfg.optics.source.shape = SourceShape::Circular;
    circular.cfg.optics.source.sigma_in = 0.0;
    circular.cfg.optics.source.sigma_out = 0.7;
    System quad{"quadrupole", base};
    quad.cfg.optics.source.shape = SourceShape::Quadrupole;
    System defocus{"defocus60nm", base};
    defocus.cfg.optics.pupil.defocus_nm = 60.0;
    systems = {annular, circular, quad, defocus};
  }

  CsvWriter csv(out_dir() + "/ablation_source.csv",
                {"trained_on", "evaluated_on", "psnr_db"});
  TablePrinter tp({"train\\eval", "annular", "circular", "quadrupole",
                   "defocus60nm"},
                  13);

  std::vector<std::unique_ptr<GoldenEngine>> engines;
  std::vector<Dataset> tests;
  for (const System& s : systems) {
    engines.push_back(std::make_unique<GoldenEngine>(s.cfg));
    tests.push_back(engines.back()->make_dataset(DatasetKind::B2m, test_n, 50));
  }

  for (std::size_t i = 0; i < systems.size(); ++i) {
    const Dataset train = engines[i]->make_dataset(DatasetKind::B2m, train_n, 60);
    NithoConfig mc;
    mc.rank = 14;
    mc.encoding.features = 64;
    mc.hidden = 32;
    NithoModel model(mc, systems[i].cfg.tile_nm,
                     systems[i].cfg.optics.wavelength_nm,
                     systems[i].cfg.optics.na);
    NithoTrainConfig tc;
    tc.epochs = epochs;
    tc.batch = 4;
    tc.train_px = 32;
    train_nitho(model, sample_ptrs(train), tc);

    std::vector<std::string> row = {systems[i].name};
    for (std::size_t j = 0; j < systems.size(); ++j) {
      double acc = 0.0;
      for (const Sample& s : tests[j].samples) {
        acc += psnr(s.aerial, predict_aerial(model, s, 64));
      }
      acc /= static_cast<double>(tests[j].samples.size());
      row.push_back(fmt(acc, 2));
      csv.row({systems[i].name, systems[j].name, fmt(acc, 3)});
    }
    tp.row(row);
  }
  tp.rule();
  std::printf(
      "\nExpected shape: the diagonal dominates every row — each field\n"
      "restores exactly the optical system whose images it was fit to,\n"
      "including the complex-valued (defocused) pupil.  Off-diagonal decay\n"
      "measures how distinguishable the systems are through 1 um tiles.\n");
  return 0;
}
