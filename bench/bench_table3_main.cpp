// Table III: result comparison with state of the art.
//
// For each benchmark row (B1, B2m, B2v, B2m+B2v) trains TEMPO-like,
// DOINN-like and Nitho on the train split and reports aerial-stage
// MSE (x1e-5), ME (x1e-2), PSNR (dB) and resist-stage mPA / mIOU (%) on the
// held-out split, with the paper's numbers for reference.  Trained models
// are cached for the downstream benches (Table IV, Fig. 2b, Fig. 4).

#include <cstdio>

#include "common.hpp"
#include "io/csv.hpp"

using namespace nitho;
using namespace nitho::bench;

namespace {

struct PaperRow {
  const char* name;
  double tempo_mse, tempo_psnr, doinn_mse, doinn_psnr, nitho_mse, nitho_psnr;
};

// Aerial MSE (x1e-5) / PSNR from the paper's Table III.
constexpr PaperRow kPaper[] = {
    {"B1", 108.29, 32.01, 5.55, 47.10, 1.32, 50.75},
    {"B2m", 1899.04, 30.77, 1202.39, 31.64, 25.48, 49.06},
    {"B2v", 6.54, 42.76, 2.26, 46.37, 2.01, 48.06},
    {"B2m+B2v", 4352.25, 27.10, 3114.24, 29.92, 33.13, 47.88},
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  BenchEnv env(BenchConfig::from_flags(flags));
  std::printf("== Table III: result comparison with state of the art ==\n\n");

  CsvWriter csv(out_dir() + "/table3_main.csv",
                {"bench", "model", "mse_1e5", "me_1e2", "psnr_db", "mpa_pct",
                 "miou_pct"});
  TablePrinter tp({"Bench", "Model", "MSE(1e-5)", "ME(1e-2)", "PSNR", "mPA%",
                   "mIOU%", "paperMSE", "paperPSNR"},
                  11);

  EvalResult totals[3];
  int row_count = 0;
  for (int row = 0; row < 4; ++row) {
    const PaperRow& paper = kPaper[row];
    std::vector<const Sample*> train;
    const Dataset* tests[2] = {nullptr, nullptr};
    std::string tag;
    if (row < 3) {
      const DatasetKind kind = row == 0   ? DatasetKind::B1
                               : row == 1 ? DatasetKind::B2m
                                          : DatasetKind::B2v;
      tag = dataset_name(kind);
      train = sample_ptrs(env.train_set(kind));
      tests[0] = &env.test_set(kind);
    } else {
      tag = "B2mv";
      const int half = env.cfg().train_count / 2;
      train = sample_ptrs({&env.train_set(DatasetKind::B2m),
                           &env.train_set(DatasetKind::B2v)},
                          half);
      tests[0] = &env.test_set(DatasetKind::B2m);
      tests[1] = &env.test_set(DatasetKind::B2v);
    }

    auto tempo = env.trained_tempo(tag, train);
    auto doinn = env.trained_doinn(tag, train);
    auto nitho = env.trained_nitho(tag, train);

    auto eval_joint = [&](auto&& evaluator) {
      std::vector<EvalResult> rs;
      for (const Dataset* t : tests) {
        if (t) rs.push_back(evaluator(*t));
      }
      return average(rs);
    };
    const EvalResult rs[3] = {
        eval_joint([&](const Dataset& t) { return env.eval_image(*tempo, t); }),
        eval_joint([&](const Dataset& t) { return env.eval_image(*doinn, t); }),
        eval_joint([&](const Dataset& t) { return env.eval_nitho(*nitho, t); }),
    };
    const char* names[3] = {"TEMPO", "DOINN", "Nitho"};
    const double paper_mse[3] = {paper.tempo_mse, paper.doinn_mse,
                                 paper.nitho_mse};
    const double paper_psnr[3] = {paper.tempo_psnr, paper.doinn_psnr,
                                  paper.nitho_psnr};
    for (int m = 0; m < 3; ++m) {
      tp.row({paper.name, names[m], fmt(rs[m].mse * 1e5, 1),
              fmt(rs[m].max_error * 1e2, 2), fmt(rs[m].psnr, 2),
              fmt(rs[m].mpa * 100.0, 2), fmt(rs[m].miou * 100.0, 2),
              fmt(paper_mse[m], 1), fmt(paper_psnr[m], 2)});
      csv.row({paper.name, names[m], fmt(rs[m].mse * 1e5, 3),
               fmt(rs[m].max_error * 1e2, 3), fmt(rs[m].psnr, 3),
               fmt(rs[m].mpa * 100.0, 3), fmt(rs[m].miou * 100.0, 3)});
      totals[m].mse += rs[m].mse;
      totals[m].psnr += rs[m].psnr;
      totals[m].max_error += rs[m].max_error;
      totals[m].mpa += rs[m].mpa;
      totals[m].miou += rs[m].miou;
    }
    ++row_count;
    tp.rule();
  }

  std::printf("\nAverages over %d rows (ratio vs Nitho in parentheses):\n",
              row_count);
  for (int m = 0; m < 3; ++m) {
    const char* names[3] = {"TEMPO", "DOINN", "Nitho"};
    std::printf("  %-6s MSE %.2e (%.1fx)  PSNR %.2f dB  mPA %.2f%%  mIOU %.2f%%\n",
                names[m], totals[m].mse / row_count,
                totals[m].mse / totals[2].mse,
                totals[m].psnr / row_count, 100.0 * totals[m].mpa / row_count,
                100.0 * totals[m].miou / row_count);
  }
  std::printf(
      "\nPaper shape: Nitho MSE 69x smaller than DOINN and 102x smaller than\n"
      "TEMPO, highest PSNR, >=99%% resist metrics. Expect the same ordering\n"
      "here (absolute factors differ with the scaled-down training budget).\n");
  return 0;
}
